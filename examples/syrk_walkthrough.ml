(* The Figure 5 walkthrough: the SYRK kernel traced through every level of
   the ScaleHLS representation, with each transform applied one at a time
   and its effect printed — the multi-level story of the paper in one run.

     dune exec examples/syrk_walkthrough.exe

   Stages (matching Figure 5's P transformations):
     P_i->ii   : HLS C  -> scf   (front-end) -> affine (raising)
     P_ii->iii : loop perfectization, loop order opt, remove variable bound,
                 loop tiling (the loop-level transforms)
     P_iii->iv : loop pipelining + array partition (directive level)
     P_iv->v   : HLS C++ emission
   Each stage is also validated against the interpreter: the transformed
   program must compute the same C matrix. *)

open Mir
open Dialects
open Scalehls

let n = 16

let source = Models.Polybench.source Models.Polybench.Syrk ~n

(* Reference execution via the interpreter. *)
let run_syrk m =
  let a =
    Interp.buffer_init [ n; n ] Ty.F32 (fun i -> float_of_int ((i mod 5) - 2))
  in
  let c =
    Interp.buffer_init [ n; n ] Ty.F32 (fun i -> float_of_int (i mod 3))
  in
  let args = [ Interp.VFloat 1.5; Interp.VFloat 0.5; Interp.VBuf c; Interp.VBuf a ] in
  ignore (Interp.run_func m "syrk" args);
  c.Interp.data

let check reference m stage =
  let got = run_syrk m in
  let ok = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-3) got reference in
  Fmt.pr "    [semantics after %-28s %s]@." (stage ^ ":") (if ok then "OK" else "MISMATCH!");
  if not ok then exit 1

let excerpt ?(lines = 24) text =
  String.concat "\n" (List.filteri (fun i _ -> i < lines) (String.split_on_char '\n' text))

let () =
  let ctx = Ir.Ctx.create () in
  Fmt.pr "=== (i) SYRK in HLS C ===@.%s@." source;

  let m = Frontend.Codegen.compile_source ctx source in
  Fmt.pr "=== (ii) affine-level IR after P_i->ii ===@.";
  let m = Pass.run_one ~verify:true Frontend.Raise_affine.pass ctx m in
  Fmt.pr "%s@.@." (excerpt (Printer.op_to_string m));
  let reference = run_syrk m in

  Fmt.pr "=== (iii) loop-level transforms (P_ii->iii) ===@.";
  Fmt.pr "  - affine-loop-perfectization (sink C[i][j]*=beta under a first-iteration guard)@.";
  let m = Pass.run_one ~verify:true Loop_perfectization.pass ctx m in
  check reference m "perfectization";
  Fmt.pr "  - remove-variable-bound (the j <= i bound becomes constant + affine.if)@.";
  let m = Pass.run_one ~verify:true Remove_var_bound.pass ctx m in
  check reference m "remove-variable-bound";
  let m = Pass.run_one Canonicalize.pass ctx m in
  Fmt.pr "  - affine-loop-order-opt (permute the reduction loop outward)@.";
  let m = Pass.run_one ~verify:true Loop_order_opt.pass ctx m in
  check reference m "loop-order-opt";
  Fmt.pr "  - affine-loop-tile (tile the innermost loop by 4; point loops sink inward)@.";
  let f = Ir.find_func_exn m "syrk" in
  let f =
    Ir.with_body f
      (List.map
         (fun o ->
           if Affine_d.is_for o then
             let band = Affine_d.band o in
             let sizes = List.mapi (fun i _ -> if i = List.length band - 1 then 4 else 1) band in
             match Loop_tile.tile_band ctx band ~sizes with
             | Some root -> root
             | None -> o
           else o)
         (Func.func_body f))
  in
  let m = Ir.replace_func m f in
  check reference m "loop-tiling";

  Fmt.pr "@.=== (iv) directive-level transforms (P_iii->iv) ===@.";
  Fmt.pr "  - loop-pipelining (full-unroll point loops, pipeline, flatten outers)@.";
  let f = Ir.find_func_exn m "syrk" in
  let f =
    Ir.with_body f
      (List.map
         (fun o ->
           if Affine_d.is_for o then
             match Loop_pipeline.pipeline_band ctx ~target_ii:1 ~depth:2 o with
             | Some o' -> o'
             | None -> o
           else o)
         (Func.func_body f))
  in
  let m = Ir.replace_func m f in
  let m = Pass.run_pipeline Dse.cleanup_passes ctx m in
  check reference m "loop-pipelining";
  Fmt.pr "  - array-partition (factors inferred from the unrolled access pattern)@.";
  let m = Array_partition.run ctx m in
  let m = Pass.run_one Canonicalize.pass ctx m in
  check reference m "array-partition";
  List.iter
    (fun (v : Ir.value) ->
      match v.Ir.vty with
      | Ty.Memref mr ->
          Fmt.pr "    partition of arg: [%a]@."
            Fmt.(list ~sep:comma Hlscpp.pp_partition)
            (Hlscpp.partitions_of_memref mr)
      | _ -> ())
    (Func.func_args (Ir.find_func_exn m "syrk"));

  let est = Estimator.estimate m ~top:"syrk" in
  let rep = Vhls.Synth.synthesize m ~top:"syrk" in
  Fmt.pr "@.QoR estimate      : %a@." Estimator.pp_estimate est;
  Fmt.pr "virtual synthesis : %a@." Vhls.Synth.pp_report rep;

  Fmt.pr "@.=== (v) emitted HLS C++ (P_iv->v, excerpt) ===@.";
  Fmt.pr "%s@." (excerpt ~lines:30 (Emit.Emit_cpp.emit_module m))
