(* Graph-level dataflow optimization (Figure 4) and the DNN flow (§7.2).

     dune exec examples/dataflow_dnn.exe

   Part 1 rebuilds the paper's Figure 4 five-procedure dataflow with a
   bypass path and shows the three legalization outcomes:
     (a) original (illegal for dataflow pipelining),
     (b) conservative merging,
     (c) aggressive copy insertion,
     (d) coarser granularity via min-gran.
   Part 2 runs a ResNet basic block through the full multi-level DNN flow
   and reports throughput/resources at several optimization levels. *)

open Mir
open Dialects
open Scalehls

(* Figure 4(a): Proc0 -> Proc1 -> Proc2 -> Proc3 -> Proc4, plus a bypass
   edge Proc0 -> Proc3. relu chains + an add for the 2-input Proc3. *)
let figure4_module ctx =
  Models.Nn.build ctx ~input_shape:[ 1; 4; 8; 8 ] (fun b input ->
      let p0 = Models.Nn.relu b input in
      let p1 = Models.Nn.relu b p0 in
      let p2 = Models.Nn.relu b p1 in
      let p3 = Models.Nn.add b p2 p0 (* bypass: consumes Proc0's output *) in
      Models.Nn.relu b p3)

let show_stages label f =
  let stages =
    List.filter_map
      (fun o ->
        match Legalize_dataflow.stage_of o with
        | Some s -> Some (o.Ir.name, s)
        | None -> None)
      (Func.func_body f)
  in
  Fmt.pr "%-36s %a@." label
    Fmt.(list ~sep:sp (pair ~sep:(any ":") string int))
    stages

let () =
  Fmt.pr "=== Part 1: Figure 4 — dataflow legalization ===@.";
  let ctx = Ir.Ctx.create () in

  let m = figure4_module ctx in
  let f = Ir.find_func_exn m "forward" in

  let conservative = Legalize_dataflow.legalize ctx f in
  show_stages "(b) conservative (merge stages):" conservative;
  Fmt.pr "    -> %d dataflow stages (interval 3t in the paper's example)@."
    (Legalize_dataflow.num_stages conservative);

  let aggressive = Legalize_dataflow.legalize ~insert_copy:true ctx f in
  show_stages "(c) aggressive (insert copies):" aggressive;
  Fmt.pr "    -> %d dataflow stages (interval 1t; more memory)@."
    (Legalize_dataflow.num_stages aggressive);

  let m_fine = Ir.replace_func m aggressive in
  let split_fine = Split_function.split ~min_gran:1 ctx m_fine ~func_name:"forward" in
  Fmt.pr "(c) split-function min-gran=1: %d functions@."
    (List.length (Ir.module_funcs split_fine));
  let split_coarse = Split_function.split ~min_gran:2 ctx m_fine ~func_name:"forward" in
  Fmt.pr "(d) split-function min-gran=2: %d functions (2t interval, fewer resources)@.@."
    (List.length (Ir.module_funcs split_coarse));

  Fmt.pr "=== Part 2: a ResNet basic block through the DNN flow ===@.";
  let block ctx =
    Models.Nn.build ctx ~input_shape:[ 1; 16; 16; 16 ] (fun b input ->
        Models.Resnet.basic_block b ~oc:16 ~stride:1 input)
  in
  let platform = Vhls.Platform.vu9p_slr in
  let configs =
    [
      Pipeline.baseline_config;
      { Pipeline.graph_level = 0; loop_level = 0; directive = true };
      { Pipeline.graph_level = 0; loop_level = 4; directive = true };
      { Pipeline.graph_level = 7; loop_level = 4; directive = true };
      { Pipeline.graph_level = 7; loop_level = 7; directive = true };
    ]
  in
  Fmt.pr "  %-12s %-14s %-14s %-8s %-10s@." "config" "latency" "interval" "DSP" "speedup";
  let base_interval = ref 0 in
  List.iter
    (fun config ->
      let ctx = Ir.Ctx.create () in
      let m = block ctx in
      let r, _ = Pipeline.dnn_synth ctx m ~config ~platform in
      if !base_interval = 0 then base_interval := r.Vhls.Synth.interval;
      Fmt.pr "  %-12s %-14d %-14d %-8d %-10.1f@."
        (Fmt.str "%a" Pipeline.pp_config config)
        r.Vhls.Synth.latency r.Vhls.Synth.interval r.Vhls.Synth.usage.Vhls.Platform.u_dsp
        (float_of_int !base_interval /. float_of_int r.Vhls.Synth.interval))
    configs;
  ignore m
