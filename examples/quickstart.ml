(* Quickstart: the end-to-end ScaleHLS flow on a small matrix-multiply
   kernel written in HLS C.

     dune exec examples/quickstart.exe

   Demonstrates:
   1. the HLS-C front-end (C -> scf dialect),
   2. -raise-scf-to-affine (scf -> affine, Figure 1 in reverse),
   3. automated DSE under XC7Z020 resource constraints,
   4. QoR estimation vs. virtual downstream synthesis,
   5. synthesizable HLS C++ emission,
   and, as a coda, the Figure 1 lowering chain affine -> scf -> unstructured
   control flow. *)

open Mir
open Scalehls

let source =
  {|
void matmul(float C[32][32], float A[32][32], float B[32][32]) {
  for (int i = 0; i < 32; i++) {
    for (int j = 0; j < 32; j++) {
      C[i][j] = 0.0;
      for (int k = 0; k < 32; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
}
|}

let () =
  let ctx = Ir.Ctx.create () in

  Fmt.pr "=== 1. HLS-C source ===@.%s@." source;

  let scf_module = Frontend.Codegen.compile_source ctx source in
  Fmt.pr "=== 2. scf-level IR (front-end output, excerpt) ===@.";
  let text = Printer.op_to_string scf_module in
  Fmt.pr "%s@.@."
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 18) (String.split_on_char '\n' text)));

  let affine_module = Pass.run_one Frontend.Raise_affine.pass ctx scf_module in
  Fmt.pr "=== 3. affine-level IR (-raise-scf-to-affine, excerpt) ===@.";
  let text = Printer.op_to_string affine_module in
  Fmt.pr "%s@.@."
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 18) (String.split_on_char '\n' text)));

  Fmt.pr "=== 4. automated DSE (platform: XC7Z020) ===@.";
  let platform = Vhls.Platform.xc7z020 in
  let result = Dse.run ~samples:24 ~iterations:48 ctx affine_module ~top:"matmul" ~platform in
  Fmt.pr "explored %d design points@." result.Dse.explored;
  (match result.Dse.best with
  | Some best ->
      Fmt.pr "chosen point: %a@." Dse.pp_point best.Dse.point;
      Fmt.pr "QoR estimate: %a@." Estimator.pp_estimate best.Dse.estimate
  | None -> Fmt.pr "no feasible point@.");

  let baseline = Vhls.Synth.synthesize affine_module ~top:"matmul" in
  let optimized = Vhls.Synth.synthesize result.Dse.module_ ~top:"matmul" in
  Fmt.pr "@.virtual synthesis, baseline : %a@." Vhls.Synth.pp_report baseline;
  Fmt.pr "virtual synthesis, optimized: %a@." Vhls.Synth.pp_report optimized;
  Fmt.pr "speedup: %.1fx@.@."
    (float_of_int baseline.Vhls.Synth.latency /. float_of_int optimized.Vhls.Synth.latency);

  Fmt.pr "=== 5. emitted HLS C++ (excerpt) ===@.";
  let cpp = Emit.Emit_cpp.emit_module result.Dse.module_ in
  Fmt.pr "%s@.@."
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 24) (String.split_on_char '\n' cpp)));

  Fmt.pr "=== 6. Figure 1: lowering affine -> scf -> unstructured CFG ===@.";
  let copy_src =
    {|
void foo(float A[16], float B[16]) {
  for (int i = 0; i < 16; i++) {
    B[i] = A[i];
  }
}
|}
  in
  let m = Pipeline.compile_c ctx copy_src in
  Fmt.pr "--- affine ---@.";
  Printer.print m;
  let m_scf = Pass.run_one Lower.affine_to_scf ctx m in
  Fmt.pr "--- scf ---@.";
  Printer.print m_scf;
  let m_cf = Pass.run_one Lower.scf_to_cf ctx m_scf in
  Fmt.pr "--- unstructured (cf) ---@.";
  Printer.print m_cf
