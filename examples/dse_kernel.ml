(* Automated DSE on a PolyBench kernel: reproduces one row of the paper's
   Table 3 and prints the latency-area Pareto frontier the 4-step
   neighbor-traversing algorithm discovered.

     dune exec examples/dse_kernel.exe -- [kernel] [size]

   e.g.  dune exec examples/dse_kernel.exe -- gemm 64 *)

open Mir
open Scalehls

let () =
  let kernel =
    if Array.length Sys.argv > 1 then Models.Polybench.of_name Sys.argv.(1)
    else Models.Polybench.Gemm
  in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 64 in
  let top = Models.Polybench.name kernel in
  let platform = Vhls.Platform.xc7z020 in

  Fmt.pr "kernel: %s, problem size: %d, platform: %s (%d DSP, %d LUT)@.@." top n
    platform.Vhls.Platform.name platform.Vhls.Platform.dsp platform.Vhls.Platform.lut;

  let ctx = Ir.Ctx.create () in
  let m = Pipeline.compile_c ctx (Models.Polybench.source kernel ~n) in

  let t0 = Unix.gettimeofday () in
  let r = Dse.run ~samples:32 ~iterations:96 ctx m ~top ~platform in
  let dt = Unix.gettimeofday () -. t0 in

  let base = Vhls.Synth.synthesize m ~top in
  Fmt.pr "baseline synthesis: %a@.@." Vhls.Synth.pp_report base;
  Fmt.pr "DSE explored %d points in %.2fs; Pareto frontier:@." r.Dse.explored dt;
  Fmt.pr "  %-12s %-6s %-8s %s@." "latency" "DSP" "speedup" "design point";
  List.iter
    (fun p ->
      Fmt.pr "  %-12d %-6d %-8.1f %a@." p.Dse.estimate.Estimator.latency
        p.Dse.estimate.Estimator.usage.Vhls.Platform.u_dsp
        (float_of_int base.Vhls.Synth.latency
        /. float_of_int p.Dse.estimate.Estimator.latency)
        Dse.pp_point p.Dse.point)
    r.Dse.pareto;

  match r.Dse.best with
  | Some best ->
      let opt = Vhls.Synth.synthesize r.Dse.module_ ~top in
      Fmt.pr "@.chosen (min-latency feasible) point: %a@." Dse.pp_point best.Dse.point;
      Fmt.pr "virtual synthesis of the chosen design: %a@." Vhls.Synth.pp_report opt;
      Fmt.pr "speedup vs baseline: %.1fx@."
        (float_of_int base.Vhls.Synth.latency /. float_of_int opt.Vhls.Synth.latency)
  | None -> Fmt.pr "no feasible design point found@."
