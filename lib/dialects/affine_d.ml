(** The [affine] dialect: structured loops and conditionals with affine
    bounds, plus affine memory accesses (§2.2 and §4.2).

    Encoding conventions:
    - [affine.for]: attrs [lower_bound]/[upper_bound] (affine maps),
      [step] (int), [lb_operands] (how many leading operands feed the
      lower-bound map). Bound semantics follow MLIR: lb = max of lb-map
      results, ub = min of ub-map results, iteration space [lb, ub) by step.
      The single region has one block whose single argument is the induction
      variable.
    - [affine.load]/[affine.store]: attr [map] composed over the index
      operands; the map's results are the logical array indices.
    - [affine.if]: attr [set] (integer set) over the operands; two regions. *)

open Mir
open Ir

module A = Affine

(* ---- affine.for ---------------------------------------------------------- *)

let for_op ~lb_map ~lb_operands ~ub_map ~ub_operands ~step ~iv body =
  mk "affine.for"
    ~attrs:
      [
        ("lower_bound", Attr.Map lb_map);
        ("upper_bound", Attr.Map ub_map);
        ("step", Attr.Int step);
        ("lb_operands", Attr.Int (List.length lb_operands));
      ]
    ~operands:(lb_operands @ ub_operands)
    ~results:[]
    ~regions:[ [ block ~args:[ iv ] body ] ]

(** Constant-bound loop [for iv = lb to ub step step]. *)
let for_const ctx ~lb ~ub ?(step = 1) body_fn =
  let iv = Ctx.fresh ctx Ty.Index in
  let body = body_fn iv in
  for_op
    ~lb_map:(A.Map.constant [ lb ])
    ~lb_operands:[]
    ~ub_map:(A.Map.constant [ ub ])
    ~ub_operands:[] ~step ~iv body

(** Loop with an affine-expression upper bound over the given operands. *)
let for_expr ctx ~lb ~ub_expr ~ub_operands ?(step = 1) body_fn =
  let iv = Ctx.fresh ctx Ty.Index in
  let body = body_fn iv in
  for_op
    ~lb_map:(A.Map.constant [ lb ])
    ~lb_operands:[]
    ~ub_map:(A.Map.of_expr ~num_dims:(List.length ub_operands) ub_expr)
    ~ub_operands ~step ~iv body

let is_for o = o.name = "affine.for"
let is_if o = o.name = "affine.if"

type bounds = {
  lb_map : A.Map.t;
  lb_operands : value list;
  ub_map : A.Map.t;
  ub_operands : value list;
  step : int;
}

let bounds o =
  if not (is_for o) then invalid_arg "Affine_d.bounds: not an affine.for";
  let n_lb = int_attr o "lb_operands" in
  let lb_operands = List.filteri (fun i _ -> i < n_lb) o.operands in
  let ub_operands = List.filteri (fun i _ -> i >= n_lb) o.operands in
  {
    lb_map = map_attr o "lower_bound";
    lb_operands;
    ub_map = map_attr o "upper_bound";
    ub_operands;
    step = int_attr o "step";
  }

let with_bounds o (b : bounds) =
  let o =
    set_attr o "lower_bound" (Attr.Map b.lb_map)
    |> fun o ->
    set_attr o "upper_bound" (Attr.Map b.ub_map)
    |> fun o ->
    set_attr o "step" (Attr.Int b.step)
    |> fun o -> set_attr o "lb_operands" (Attr.Int (List.length b.lb_operands))
  in
  { o with operands = b.lb_operands @ b.ub_operands }

let induction_var o =
  match (body_block o).bargs with
  | [ iv ] -> iv
  | _ -> invalid_arg "Affine_d.induction_var"

(** Constant bounds [(lb, ub)] when both maps are single-constant. *)
let const_bounds o =
  let b = bounds o in
  match (A.Map.is_single_constant b.lb_map, A.Map.is_single_constant b.ub_map) with
  | Some lb, Some ub -> Some (lb, ub)
  | _ -> None

(** Trip count for constant-bound loops. *)
let const_trip_count o =
  match const_bounds o with
  | Some (lb, ub) ->
      let step = (bounds o).step in
      Some (max 0 (A.Expr.ceil_div (ub - lb) step))
  | None -> None

(** Does the loop have constant bounds? *)
let has_const_bounds o = Option.is_some (const_bounds o)

(* ---- affine.load / store ------------------------------------------------- *)

let load ctx mem ~map idxs =
  let m = Ty.as_memref mem.vty in
  let o, rs =
    mk_fresh ctx "affine.load"
      ~attrs:[ ("map", Attr.Map map) ]
      ~operands:(mem :: idxs) ~result_tys:[ m.Ty.elt ]
  in
  (o, List.hd rs)

(** Load with the identity access map over [idxs]. *)
let load_id ctx mem idxs = load ctx mem ~map:(A.Map.identity (List.length idxs)) idxs

let store ctx value mem ~map idxs =
  ignore ctx;
  mk "affine.store"
    ~attrs:[ ("map", Attr.Map map) ]
    ~operands:(value :: mem :: idxs)
    ~results:[]

let store_id ctx value mem idxs =
  store ctx value mem ~map:(A.Map.identity (List.length idxs)) idxs

let access_map o = map_attr o "map"

let with_access_map o map = set_attr o "map" (Attr.Map map)

(** Do two affine accesses to the same memref provably touch different
    elements at every iteration? True when, over identical index operands,
    some dimension's address expressions differ by a nonzero constant. *)
let accesses_distinct a b =
  let idx o =
    match o.Ir.name with
    | "affine.load" -> List.tl o.Ir.operands
    | "affine.store" -> List.tl (List.tl o.Ir.operands)
    | _ -> invalid_arg "Affine_d.accesses_distinct"
  in
  let va = idx a and vb = idx b in
  List.length va = List.length vb
  && List.for_all2 (fun (x : Ir.value) (y : Ir.value) -> x.Ir.vid = y.Ir.vid) va vb
  &&
  let ra = A.Map.results (access_map a) and rb = A.Map.results (access_map b) in
  List.length ra = List.length rb
  && List.exists2
       (fun ea eb ->
         match A.Expr.as_const (A.Expr.simplify (A.Expr.sub ea eb)) with
         | Some d -> d <> 0
         | None -> false)
       ra rb

(* ---- affine.apply / if --------------------------------------------------- *)

let apply ctx ~map operands =
  let o, rs =
    mk_fresh ctx "affine.apply" ~attrs:[ ("map", Attr.Map map) ] ~operands
      ~result_tys:[ Ty.Index ]
  in
  (o, List.hd rs)

let if_ ~set ~operands ~then_ ~else_ =
  mk "affine.if"
    ~attrs:[ ("set", Attr.Set set) ]
    ~operands ~results:[]
    ~regions:[ [ block then_ ]; [ block else_ ] ]

let if_set o = Attr.as_set (attr_exn o "set")

let yield = mk "affine.yield" ~operands:[] ~results:[]

(* ---- Loop-band utilities -------------------------------------------------
   A loop band (Table 2) is a maximal chain of singly-nested affine.for ops. *)

(** Ops of the loop body that are not the terminator. *)
let body_nonterm o =
  List.filter (fun op -> op.name <> "affine.yield" && op.name <> "scf.yield") (body_ops o)

(** The nested loop chain starting at [o]: follows while the body contains
    exactly one affine.for (other ops may sit between — the band is then
    imperfect). Returns outermost-first. *)
let rec band o =
  if not (is_for o) then []
  else
    match List.filter is_for (body_nonterm o) with
    | [ inner ] -> o :: band inner
    | _ -> [ o ]

(** A band is perfect when each non-innermost loop's body contains only the
    nested loop (plus terminator). *)
let band_is_perfect b =
  let rec go = function
    | [] | [ _ ] -> true
    | o :: (inner :: _ as rest) ->
        (match body_nonterm o with [ x ] -> x == inner || x = inner | _ -> false)
        && go rest
  in
  go b

(** Rebuild a band: given the original band (outermost first) and a
    replacement body for the innermost loop, rebuild the chain preserving
    in-between ops. Returns the new outermost loop. *)
let rebuild_band b ~innermost_body =
  match List.rev b with
  | [] -> invalid_arg "Affine_d.rebuild_band: empty band"
  | innermost :: outer_rev ->
      let rebuilt = with_body innermost innermost_body in
      List.fold_left
        (fun inner_new outer ->
          (* Replace the old inner loop inside outer's body with inner_new. *)
          let body =
            List.map (fun op -> if is_for op then inner_new else op) (body_ops outer)
          in
          with_body outer body)
        rebuilt outer_rev
