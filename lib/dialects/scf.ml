(** The [scf] (structured control flow) dialect: loops and conditionals whose
    bounds/conditions are arbitrary SSA values (§2.2). *)

open Mir
open Ir

(** [for_ ctx ~lb ~ub ~step body_fn]: body_fn receives the induction
    variable. *)
let for_ ctx ~lb ~ub ~step body_fn =
  let iv = Ctx.fresh ctx Ty.Index in
  let body = body_fn iv in
  mk "scf.for" ~operands:[ lb; ub; step ] ~results:[]
    ~regions:[ [ block ~args:[ iv ] body ] ]

let for_raw ~lb ~ub ~step ~iv body =
  mk "scf.for" ~operands:[ lb; ub; step ] ~results:[]
    ~regions:[ [ block ~args:[ iv ] body ] ]

let if_ ~cond ~then_ ~else_ =
  mk "scf.if" ~operands:[ cond ] ~results:[]
    ~regions:[ [ block then_ ]; [ block else_ ] ]

let yield = mk "scf.yield" ~operands:[] ~results:[]

let is_for o = o.name = "scf.for"
let is_if o = o.name = "scf.if"

let for_bounds o =
  match o.operands with
  | [ lb; ub; step ] -> (lb, ub, step)
  | _ -> invalid_arg "Scf.for_bounds"

let induction_var o =
  match (body_block o).bargs with
  | [ iv ] -> iv
  | _ -> invalid_arg "Scf.induction_var"
