(** The [func] dialect: functions, calls, returns. A function op has attrs
    [sym_name] and [function_type] and a single-block region whose block
    arguments are the parameters. *)

open Mir
open Ir

let func ctx ~name ~inputs ~outputs body_fn =
  let args = List.map (Ctx.fresh ctx) inputs in
  let body = body_fn args in
  mk "func"
    ~attrs:
      [
        ("sym_name", Attr.Str name);
        ("function_type", Attr.Ty (Ty.fn inputs outputs));
      ]
    ~operands:[] ~results:[]
    ~regions:[ [ block ~args body ] ]

(** Build a function from pre-made argument values and body ops. *)
let func_raw ~name ~args ~outputs body =
  mk "func"
    ~attrs:
      [
        ("sym_name", Attr.Str name);
        ("function_type", Attr.Ty (Ty.fn (List.map (fun v -> v.vty) args) outputs));
      ]
    ~operands:[] ~results:[]
    ~regions:[ [ block ~args body ] ]

let call ctx ~callee ~result_tys args =
  mk_fresh ctx "func.call" ~attrs:[ ("callee", Attr.Str callee) ] ~operands:args
    ~result_tys

let return_ vs = mk "func.return" ~operands:vs ~results:[]

let is_func o = o.name = "func"
let is_call o = o.name = "func.call"
let is_return o = o.name = "func.return"

let callee o = str_attr o "callee"

let func_args f =
  match f.regions with
  | [ [ b ] ] -> b.bargs
  | _ -> invalid_arg "Func.func_args"

let func_body f =
  match f.regions with
  | [ [ b ] ] -> b.bops
  | _ -> invalid_arg "Func.func_body"

let with_func_body f ops = with_body f ops

(** Rename a function (updating its [sym_name]); callers are NOT updated. *)
let rename f name = set_attr f "sym_name" (Attr.Str name)
