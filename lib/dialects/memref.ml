(** The [memref] dialect: allocation and non-affine memory accesses. *)

open Mir
open Ir

let alloc ctx ?(layout = None) ?(memspace = Ty.Memspace.default) shape elt =
  let ty = Ty.memref ~layout ~memspace shape elt in
  let o, rs = mk_fresh ctx "memref.alloc" ~operands:[] ~result_tys:[ ty ] in
  (o, List.hd rs)

let load ctx mem idxs =
  let m = Ty.as_memref mem.vty in
  let o, rs = mk_fresh ctx "memref.load" ~operands:(mem :: idxs) ~result_tys:[ m.Ty.elt ] in
  (o, List.hd rs)

let store value mem idxs =
  mk "memref.store" ~operands:(value :: mem :: idxs) ~results:[]

let copy src dst = mk "memref.copy" ~operands:[ src; dst ] ~results:[]

let is_load o = o.name = "memref.load" || o.name = "affine.load"
let is_store o = o.name = "memref.store" || o.name = "affine.store"
let is_access o = is_load o || is_store o

(** The memref value accessed by a load/store (affine or plain). *)
let accessed_memref o =
  match o.name with
  | "memref.load" | "affine.load" -> List.hd o.operands
  | "memref.store" | "affine.store" -> List.nth o.operands 1
  | _ -> invalid_arg "Memref.accessed_memref: not a memory access"

(** Index operand values of a load/store. *)
let access_indices o =
  match o.name with
  | "memref.load" | "affine.load" -> List.tl o.operands
  | "memref.store" | "affine.store" -> List.tl (List.tl o.operands)
  | _ -> invalid_arg "Memref.access_indices: not a memory access"

(** Stored value of a store op. *)
let stored_value o =
  match o.name with
  | "memref.store" | "affine.store" -> List.hd o.operands
  | _ -> invalid_arg "Memref.stored_value: not a store"
