(** The [arith] (and small [math]) dialect: constants, integer/float
    arithmetic, comparisons, casts. Builders return [op * result]. *)

open Mir
open Ir

let constant_i ctx ?(ty = Ty.Index) i =
  mk_fresh ctx "arith.constant" ~attrs:[ ("value", Attr.Int i) ] ~operands:[]
    ~result_tys:[ ty ]
  |> fun (o, rs) -> (o, List.hd rs)

let constant_f ctx ?(ty = Ty.F32) f =
  mk_fresh ctx "arith.constant" ~attrs:[ ("value", Attr.Float f) ] ~operands:[]
    ~result_tys:[ ty ]
  |> fun (o, rs) -> (o, List.hd rs)

let binary ctx name a b ~ty =
  let o, rs = mk_fresh ctx name ~operands:[ a; b ] ~result_tys:[ ty ] in
  (o, List.hd rs)

let addf ctx a b = binary ctx "arith.addf" a b ~ty:a.vty
let subf ctx a b = binary ctx "arith.subf" a b ~ty:a.vty
let mulf ctx a b = binary ctx "arith.mulf" a b ~ty:a.vty
let divf ctx a b = binary ctx "arith.divf" a b ~ty:a.vty
let maxf ctx a b = binary ctx "arith.maxf" a b ~ty:a.vty
let minf ctx a b = binary ctx "arith.minf" a b ~ty:a.vty
let addi ctx a b = binary ctx "arith.addi" a b ~ty:a.vty
let subi ctx a b = binary ctx "arith.subi" a b ~ty:a.vty
let muli ctx a b = binary ctx "arith.muli" a b ~ty:a.vty
let divi ctx a b = binary ctx "arith.divi" a b ~ty:a.vty
let remi ctx a b = binary ctx "arith.remi" a b ~ty:a.vty
let floordivi ctx a b = binary ctx "arith.floordivi" a b ~ty:a.vty
let ceildivi ctx a b = binary ctx "arith.ceildivi" a b ~ty:a.vty
let maxi ctx a b = binary ctx "arith.maxi" a b ~ty:a.vty
let mini ctx a b = binary ctx "arith.mini" a b ~ty:a.vty

let negf ctx a =
  let o, rs = mk_fresh ctx "arith.negf" ~operands:[ a ] ~result_tys:[ a.vty ] in
  (o, List.hd rs)

let cmpi ctx pred a b =
  let o, rs =
    mk_fresh ctx "arith.cmpi"
      ~attrs:[ ("predicate", Attr.Str pred) ]
      ~operands:[ a; b ] ~result_tys:[ Ty.I1 ]
  in
  (o, List.hd rs)

let cmpf ctx pred a b =
  let o, rs =
    mk_fresh ctx "arith.cmpf"
      ~attrs:[ ("predicate", Attr.Str pred) ]
      ~operands:[ a; b ] ~result_tys:[ Ty.I1 ]
  in
  (o, List.hd rs)

let select ctx c a b =
  let o, rs = mk_fresh ctx "arith.select" ~operands:[ c; a; b ] ~result_tys:[ a.vty ] in
  (o, List.hd rs)

let index_cast ctx v ~ty =
  let o, rs = mk_fresh ctx "arith.index_cast" ~operands:[ v ] ~result_tys:[ ty ] in
  (o, List.hd rs)

let sitofp ctx v ~ty =
  let o, rs = mk_fresh ctx "arith.sitofp" ~operands:[ v ] ~result_tys:[ ty ] in
  (o, List.hd rs)

let is_constant o = o.name = "arith.constant"

let constant_value o =
  if is_constant o then
    match attr_exn o "value" with
    | Attr.Int i -> Some (`Int i)
    | Attr.Float f -> Some (`Float f)
    | _ -> None
  else None

let constant_int_value o =
  match constant_value o with Some (`Int i) -> Some i | _ -> None

(** True for side-effect-free scalar compute ops (CSE / canonicalize fodder). *)
let is_pure o =
  match o.name with
  | "arith.constant" | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.negf" | "arith.maxf" | "arith.minf" | "arith.addi" | "arith.subi"
  | "arith.muli" | "arith.divi" | "arith.remi" | "arith.floordivi"
  | "arith.ceildivi" | "arith.maxi" | "arith.mini"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.shli" | "arith.shri"
  | "arith.cmpi" | "arith.cmpf" | "arith.select" | "arith.index_cast"
  | "arith.sitofp" | "arith.fptosi" | "arith.extf" | "arith.truncf"
  | "math.exp" | "math.log" | "math.sqrt" | "math.tanh" | "affine.apply" -> true
  | _ -> false
