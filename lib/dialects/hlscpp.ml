(** The [hlscpp] dialect (§4.3): HLS-specific directive attributes.

    - Function directives ({!func_directive}): dataflow / pipeline / target
      II, stored as a [Dict] attribute ["hlscpp.func_directive"] on func ops.
    - Loop directives ({!loop_directive}): dataflow / pipeline / target II /
      flatten, stored as ["hlscpp.loop_directive"] on affine/scf.for ops.
    - Array partitioning: encoded into the memref layout affine map — for an
      N-d array the map has N inputs and 2N results; the first N results are
      partition indices, the last N physical indices (§4.3.3, Figure 3).
    - Array resource/interface: encoded in the memref memory space
      ({!Mir.Ty.Memspace}). *)

open Mir
open Ir

module A = Affine

(* ---- Function directive -------------------------------------------------- *)

type func_directive = { dataflow : bool; pipeline : bool; target_ii : int }

let default_func_directive = { dataflow = false; pipeline = false; target_ii = 1 }

let func_directive_attr (d : func_directive) =
  Attr.Dict
    [
      ("dataflow", Attr.bool_ d.dataflow);
      ("pipeline", Attr.bool_ d.pipeline);
      ("targetII", Attr.int_ d.target_ii);
    ]

let func_directive_key = Attr.Key.func_directive

let get_func_directive o =
  match attr o func_directive_key with
  | None -> None
  | Some a ->
      Some
        {
          dataflow = Attr.as_bool (Option.get (Attr.dict_find "dataflow" a));
          pipeline = Attr.as_bool (Option.get (Attr.dict_find "pipeline" a));
          target_ii = Attr.as_int (Option.get (Attr.dict_find "targetII" a));
        }

let set_func_directive o d = set_attr o func_directive_key (func_directive_attr d)

(* ---- Loop directive ------------------------------------------------------ *)

type loop_directive = {
  loop_dataflow : bool;
  loop_pipeline : bool;
  loop_target_ii : int;
  flatten : bool;
}

let default_loop_directive =
  { loop_dataflow = false; loop_pipeline = false; loop_target_ii = 1; flatten = false }

let loop_directive_attr (d : loop_directive) =
  Attr.Dict
    [
      ("dataflow", Attr.bool_ d.loop_dataflow);
      ("pipeline", Attr.bool_ d.loop_pipeline);
      ("targetII", Attr.int_ d.loop_target_ii);
      ("flatten", Attr.bool_ d.flatten);
    ]

let loop_directive_key = Attr.Key.loop_directive

let get_loop_directive o =
  match attr o loop_directive_key with
  | None -> None
  | Some a ->
      Some
        {
          loop_dataflow = Attr.as_bool (Option.get (Attr.dict_find "dataflow" a));
          loop_pipeline = Attr.as_bool (Option.get (Attr.dict_find "pipeline" a));
          loop_target_ii = Attr.as_int (Option.get (Attr.dict_find "targetII" a));
          flatten = Attr.as_bool (Option.get (Attr.dict_find "flatten" a));
        }

let set_loop_directive o d = set_attr o loop_directive_key (loop_directive_attr d)

let is_pipelined o =
  match get_loop_directive o with Some d -> d.loop_pipeline | None -> false

let pipeline_ii o =
  match get_loop_directive o with
  | Some d when d.loop_pipeline -> Some d.loop_target_ii
  | _ -> None

(* ---- Array partition ------------------------------------------------------
   Figure 3 running example:
   (b) cyclic, factor 2, dim 0 of a 2-d array:
       (d0, d1) -> (d0 mod 2, 0, d0 floordiv 2, d1)
   (c) + block, factor 4, dim 1 of 8-wide array:
       (d0, d1) -> (d0 mod 2, d1 floordiv 2, d0 floordiv 2, d1 mod 2) *)

type partition = None_p | Cyclic of int | Block of int

let partition_factor = function None_p -> 1 | Cyclic f | Block f -> f

let pp_partition fmt = function
  | None_p -> Fmt.string fmt "none"
  | Cyclic f -> Fmt.pf fmt "cyclic(%d)" f
  | Block f -> Fmt.pf fmt "block(%d)" f

(** Build the layout map for [shape] with per-dim partitions [parts].
    Partition index expressions come first, physical index expressions last. *)
let partition_layout ~shape parts =
  if List.length shape <> List.length parts then
    invalid_arg "Hlscpp.partition_layout: rank mismatch";
  let n = List.length shape in
  let part_exprs =
    List.mapi
      (fun i p ->
        let d = A.Expr.dim i in
        match p with
        | None_p -> A.Expr.const 0
        | Cyclic f -> A.Expr.mod_ d (A.Expr.const f)
        | Block f ->
            let size = List.nth shape i in
            let blk = A.Expr.ceil_div size f in
            A.Expr.fdiv d (A.Expr.const blk))
      parts
  in
  let phys_exprs =
    List.mapi
      (fun i p ->
        let d = A.Expr.dim i in
        match p with
        | None_p -> d
        | Cyclic f -> A.Expr.fdiv d (A.Expr.const f)
        | Block f ->
            let size = List.nth shape i in
            let blk = A.Expr.ceil_div size f in
            A.Expr.mod_ d (A.Expr.const blk))
      parts
  in
  A.Map.make ~num_dims:n ~num_syms:0 (part_exprs @ phys_exprs)

(** Decode the partition spec from a layout map built by
    {!partition_layout}. *)
let partition_of_layout ~shape map =
  let n = List.length shape in
  if A.Map.num_dims map <> n || A.Map.num_results map <> 2 * n then None
  else
    let part_exprs = List.filteri (fun i _ -> i < n) (A.Map.results map) in
    let decode i e =
      match A.Expr.simplify e with
      | A.Expr.Const 0 -> Some None_p
      | A.Expr.Mod (A.Expr.Dim d, A.Expr.Const f) when d = i -> Some (Cyclic f)
      | A.Expr.Floor_div (A.Expr.Dim d, A.Expr.Const blk) when d = i ->
          let size = List.nth shape i in
          Some (Block (A.Expr.ceil_div size blk))
      | _ -> None
    in
    let decoded = List.mapi decode part_exprs in
    if List.for_all Option.is_some decoded then Some (List.map Option.get decoded)
    else None

(** Partition spec of a memref type ([None_p] per dim if unpartitioned). *)
let partitions_of_memref (m : Ty.memref) =
  match m.Ty.layout with
  | None -> List.map (fun _ -> None_p) m.Ty.shape
  | Some map -> (
      match partition_of_layout ~shape:m.Ty.shape map with
      | Some ps -> ps
      | None -> List.map (fun _ -> None_p) m.Ty.shape)

(** Total number of physical banks after partitioning. *)
let num_banks (m : Ty.memref) =
  List.fold_left (fun acc p -> acc * partition_factor p) 1 (partitions_of_memref m)

(** Apply a partition spec to a memref type. *)
let partitioned_memref (m : Ty.memref) parts =
  let layout =
    if List.for_all (fun p -> p = None_p) parts then None
    else Some (partition_layout ~shape:m.Ty.shape parts)
  in
  Ty.Memref { m with Ty.layout }

(** The partition bank an access with constant indices falls in, via affine
    composition of the layout map (used by the QoR estimator). *)
let bank_of_indices (m : Ty.memref) idxs =
  match m.Ty.layout with
  | None -> 0
  | Some map ->
      let n = List.length m.Ty.shape in
      let results = A.Map.eval map ~dims:(Array.of_list idxs) ~syms:[||] in
      let part_idx = List.filteri (fun i _ -> i < n) results in
      let parts = partitions_of_memref m in
      (* Linearize partition indices over the per-dim factors. *)
      List.fold_left2
        (fun acc p i -> (acc * partition_factor p) + i)
        0 parts part_idx

(* ---- Interfaces (§4.3.4) -------------------------------------------------- *)

type interface = Axi | Bram_if

(** Interface category of a top-function array argument: DRAM-resident arrays
    get AXI masters, on-chip arrays a plain BRAM interface. *)
let interface_of_memref (m : Ty.memref) =
  if m.Ty.memspace = Ty.Memspace.dram then Axi else Bram_if
