(** The graph-level dialect (§4.1): tensor operations standing in for the
    onnx/aten dialects the paper imports from ONNX-MLIR and NPComp. All
    operands and results are tensor-typed, so define–use analysis suffices
    for graph optimization. Weights appear as [graph.weight] ops (compile-time
    parameters bufferized to on-chip memories). *)

open Mir
open Ir

let tensor_shape v = fst (Ty.as_tensor v.vty)

let weight ctx ~name ~shape ?(elt = Ty.I8) () =
  let o, rs =
    mk_fresh ctx "graph.weight"
      ~attrs:[ ("name", Attr.Str name) ]
      ~operands:[]
      ~result_tys:[ Ty.tensor shape elt ]
  in
  (o, List.hd rs)

(** 2-D convolution, NCHW / OIHW. Output spatial size:
    [(h + 2*pad - kh) / stride + 1]. *)
let conv2d ctx ?(stride = 1) ?(pad = 0) ~input ~weight () =
  match (tensor_shape input, tensor_shape weight) with
  | [ n; _c; h; w ], [ oc; _ic; kh; kw ] ->
      let oh = ((h + (2 * pad) - kh) / stride) + 1 in
      let ow = ((w + (2 * pad) - kw) / stride) + 1 in
      let o, rs =
        mk_fresh ctx "graph.conv2d"
          ~attrs:[ ("stride", Attr.Int stride); ("pad", Attr.Int pad) ]
          ~operands:[ input; weight ]
          ~result_tys:[ Ty.tensor [ n; oc; oh; ow ] Ty.F32 ]
      in
      (o, List.hd rs)
  | _ -> invalid_arg "Graph.conv2d: expected 4-d input and weight"

(** Depthwise 2-D convolution (MobileNet): weight [C;1;KH;KW]. *)
let dwconv2d ctx ?(stride = 1) ?(pad = 0) ~input ~weight () =
  match (tensor_shape input, tensor_shape weight) with
  | [ n; c; h; w ], [ _c; 1; kh; kw ] ->
      let oh = ((h + (2 * pad) - kh) / stride) + 1 in
      let ow = ((w + (2 * pad) - kw) / stride) + 1 in
      let o, rs =
        mk_fresh ctx "graph.dwconv2d"
          ~attrs:[ ("stride", Attr.Int stride); ("pad", Attr.Int pad) ]
          ~operands:[ input; weight ]
          ~result_tys:[ Ty.tensor [ n; c; oh; ow ] Ty.F32 ]
      in
      (o, List.hd rs)
  | _ -> invalid_arg "Graph.dwconv2d: expected 4-d input and [C;1;KH;KW] weight"

(** Fully-connected layer: input [N;I], weight [O;I]. *)
let dense ctx ~input ~weight () =
  match (tensor_shape input, tensor_shape weight) with
  | [ n; _i ], [ oc; _i2 ] ->
      let o, rs =
        mk_fresh ctx "graph.dense" ~operands:[ input; weight ]
          ~result_tys:[ Ty.tensor [ n; oc ] Ty.F32 ]
      in
      (o, List.hd rs)
  | _ -> invalid_arg "Graph.dense: expected 2-d input and weight"

let unary ctx name input =
  let o, rs = mk_fresh ctx name ~operands:[ input ] ~result_tys:[ input.vty ] in
  (o, List.hd rs)

let relu ctx input = unary ctx "graph.relu" input

(** Elementwise add (residual connections). *)
let add ctx a b =
  let o, rs = mk_fresh ctx "graph.add" ~operands:[ a; b ] ~result_tys:[ a.vty ] in
  (o, List.hd rs)

let pool ctx kind ~kernel ~stride input =
  match tensor_shape input with
  | [ n; c; h; w ] ->
      let oh = ((h - kernel) / stride) + 1 in
      let ow = ((w - kernel) / stride) + 1 in
      let name = match kind with `Max -> "graph.maxpool" | `Avg -> "graph.avgpool" in
      let o, rs =
        mk_fresh ctx name
          ~attrs:[ ("kernel", Attr.Int kernel); ("stride", Attr.Int stride) ]
          ~operands:[ input ]
          ~result_tys:[ Ty.tensor [ n; c; oh; ow ] Ty.F32 ]
      in
      (o, List.hd rs)
  | _ -> invalid_arg "Graph.pool: expected 4-d input"

let maxpool ctx ~kernel ~stride input = pool ctx `Max ~kernel ~stride input
let avgpool ctx ~kernel ~stride input = pool ctx `Avg ~kernel ~stride input

(** Flatten to [N; rest]. *)
let flatten ctx input =
  match tensor_shape input with
  | n :: rest ->
      let o, rs =
        mk_fresh ctx "graph.flatten" ~operands:[ input ]
          ~result_tys:[ Ty.tensor [ n; Ty.num_elements rest ] Ty.F32 ]
      in
      (o, List.hd rs)
  | _ -> invalid_arg "Graph.flatten"

(** Copy node inserted by aggressive dataflow legalization (Figure 4c). *)
let copy ctx input = unary ctx "graph.copy" input

let is_graph_op o =
  String.length o.name > 6 && String.sub o.name 0 6 = "graph."

let is_weight o = o.name = "graph.weight"

(** A dataflow "procedure" node: a compute graph op (weights are parameters,
    not procedures). *)
let is_proc o = is_graph_op o && not (is_weight o)

(** Rough multiply-accumulate count of a graph op (2 OPs per MAC), used for
    the DSP-efficiency metric of Table 4. *)
let flops o =
  let shape v = tensor_shape v in
  match o.name with
  | "graph.conv2d" ->
      let out = shape (result o) in
      let w = shape (List.nth o.operands 1) in
      (match (out, w) with
      | [ n; oc; oh; ow ], [ _; ic; kh; kw ] -> 2 * n * oc * oh * ow * ic * kh * kw
      | _ -> 0)
  | "graph.dwconv2d" ->
      let out = shape (result o) in
      let w = shape (List.nth o.operands 1) in
      (match (out, w) with
      | [ n; c; oh; ow ], [ _; _; kh; kw ] -> 2 * n * c * oh * ow * kh * kw
      | _ -> 0)
  | "graph.dense" ->
      let out = shape (result o) in
      let w = shape (List.nth o.operands 1) in
      (match (out, w) with
      | [ n; oc ], [ _; ic ] -> 2 * n * oc * ic
      | _ -> 0)
  | "graph.relu" | "graph.add" | "graph.copy" ->
      Ty.num_elements (shape (result o))
  | "graph.maxpool" | "graph.avgpool" ->
      let k = int_attr o "kernel" in
      Ty.num_elements (shape (result o)) * k * k
  | _ -> 0
