(** Affine memory dependence analysis over loop bands. Access functions are
    assumed (and checked to be) linear over the band's induction variables;
    dependences between accesses with equal coefficient matrices are {e
    uniform} and yield constant distance/direction vectors. Anything else is
    treated conservatively. Used by loop-order legality (§5.2.2), pipelining
    II estimation (Eq. 4), and loop fusion. *)

open Mir

module A = Affine

type direction = Eq | Lt of int  (** forced positive distance *) | Star

type dep = {
  src : Mem_access.t;
  dst : Mem_access.t;
  dirs : direction list;  (** one per band dim, outermost first *)
}

(* ---- Rational feasibility via Fourier-Motzkin --------------------------------
   Constraints are [coeffs . x + cst >= 0]. Rational relaxation of the integer
   dependence problem: infeasible (rational) implies infeasible (integer), so
   pruning a direction is sound; feasible keeps the dependence
   (conservative). *)

module Fm = struct
  type lin = { coeffs : int array; cst : int }

  exception Give_up

  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

  let normalize (c : lin) =
    let g = Array.fold_left (fun acc x -> gcd acc x) (abs c.cst) c.coeffs in
    if g > 1 then
      { coeffs = Array.map (fun x -> x / g) c.coeffs; cst = c.cst / g }
    else c

  (* b*p + a*n eliminates variable v when p.(v) = a > 0 and n.(v) = -b < 0. *)
  let combine v (p : lin) (n : lin) =
    let a = p.coeffs.(v) and b = -n.coeffs.(v) in
    let coeffs =
      Array.init (Array.length p.coeffs) (fun i ->
          (b * p.coeffs.(i)) + (a * n.coeffs.(i)))
    in
    normalize { coeffs; cst = (b * p.cst) + (a * n.cst) }

  (** Rational feasibility of the conjunction of [cons] over [nvars]
      variables. Raises [Give_up] past the blowup cap. *)
  let feasible ~nvars cons =
    let cap = 3000 in
    let rec go v cons =
      if List.length cons > cap then raise Give_up;
      if v = nvars then
        List.for_all (fun (c : lin) -> c.cst >= 0) cons
      else begin
        let pos, rest = List.partition (fun c -> c.coeffs.(v) > 0) cons in
        let neg, zero = List.partition (fun c -> c.coeffs.(v) < 0) rest in
        let combined =
          List.concat_map (fun p -> List.map (fun n -> combine v p n) neg) pos
        in
        go (v + 1) (zero @ combined)
      end
    in
    go 0 (List.map normalize cons)
end

(** Linear form of an access: per array dim, (coeffs over band dims, const).
    [None] when some dim expression is not linear. *)
let linear_form ~num_dims (a : Mem_access.t) =
  let rows = List.map (A.Expr.coefficients ~num_dims) a.Mem_access.exprs in
  if List.for_all Option.is_some rows then Some (List.map Option.get rows)
  else None

(** Compute the dependence between two accesses to the same memref, as a
    family of direction vectors over [num_dims] band dims. Returns [None] if
    the accesses provably never touch the same element; [Some dirs] otherwise.
    Conservative fallback: all-[Star].

    Uniform case (equal coefficient rows): solving
    [A·I + k_src = A·(I + delta) + k_dst] gives [A·delta = k_src - k_dst];
    dims appearing with nonzero coefficient get a forced delta, dims absent
    from every row are free ([Star]). *)
let dependence_forms ~num_dims (src : Mem_access.t) forms_src
    (dst : Mem_access.t) forms_dst =
  if src.Mem_access.memref.Ir.vid <> dst.Mem_access.memref.Ir.vid then None
  else if not (src.Mem_access.is_store || dst.Mem_access.is_store) then None
  else
    match (forms_src, forms_dst) with
    | Some rows_s, Some rows_d ->
        let coeffs_equal =
          List.for_all2 (fun (cs, _) (cd, _) -> cs = cd) rows_s rows_d
        in
        if not coeffs_equal then
          (* Non-uniform: first the GCD test, then a rational feasibility
             refinement with iteration domains and affine.if guards
             (Fourier-Motzkin). Without domain info, fall back to all-Star. *)
          let impossible =
            List.exists2
              (fun (cs, ks) (cd, kd) ->
                (* src indices over I, dst over I' — treat as 2n dims:
                   cs·I - cd·I' + (ks - kd) = 0 must be solvable. *)
                let coeffs = Array.append cs (Array.map (fun c -> -c) cd) in
                not (A.Solve.gcd_test coeffs (ks - kd)))
              rows_s rows_d
          in
          if impossible then None
          else Some (List.init num_dims (fun _ -> Star))
        else
          (* Uniform: per band dim j, collect the forced delta_j if some row
             has a nonzero coefficient on j. Allocation-free inner loops:
             this runs once per ordered same-memref access pair, which is
             quadratic in the body's access count on wide unrolled bodies. *)
          let exception Independent in
          let rows =
            List.map2 (fun (cs, ks) (_, kd) -> (cs, ks - kd)) rows_s rows_d
          in
          let dir_of j =
            (* Tentatively solve assuming all other deltas are 0:
               cs.(j) * delta_j = bd for each row where only dim j appears;
               a row with several nonzero coeffs cannot isolate — Star. *)
            let seen = ref false and forced = ref 0 in
            List.iter
              (fun ((cs : int array), bd) ->
                if cs.(j) <> 0 then begin
                  let others = ref false in
                  Array.iteri
                    (fun i c -> if i <> j && c <> 0 then others := true)
                    cs;
                  if not !others then
                    if bd mod cs.(j) <> 0 then raise Independent
                    else begin
                      let d = bd / cs.(j) in
                      if !seen then begin
                        if d <> !forced then raise Independent
                      end
                      else begin
                        seen := true;
                        forced := d
                      end
                    end
                end)
              rows;
            if not !seen then Star else if !forced = 0 then Eq else Lt !forced
          in
          (try
             let ds = List.init num_dims dir_of in
             (* Rows with coefficient only outside j were ignored; check the
                pure-constant rows: coeffs all zero -> need b = 0. *)
             let const_rows_ok =
               List.for_all
                 (fun ((cs : int array), bd) ->
                   Array.exists (fun c -> c <> 0) cs || bd = 0)
                 rows
             in
             if const_rows_ok then Some ds else None
           with Independent -> None)
    | _ -> Some (List.init num_dims (fun _ -> Star))

let dependence ~num_dims (src : Mem_access.t) (dst : Mem_access.t) =
  dependence_forms ~num_dims src
    (linear_form ~num_dims src)
    dst
    (linear_form ~num_dims dst)

(* ---- Guard- and domain-aware refinement ----------------------------------- *)

(* The src-before-dst direction of a non-uniform pair, carried at band level
   [level]: is it feasible, given iteration domains [ranges] (inclusive, in
   iteration space) and the accesses' affine.if guards? Variables are
   x = I ++ I' (2*num_dims). *)
let direction_feasible ~num_dims ~ranges (src : Mem_access.t) (dst : Mem_access.t)
    ~level =
  let nvars = 2 * num_dims in
  let lin coeffs cst = { Fm.coeffs; cst } in
  let var side d =
    (* unit vector for I_d (side=0) or I'_d (side=1) *)
    let a = Array.make nvars 0 in
    a.((side * num_dims) + d) <- 1;
    a
  in
  let cons = ref [] in
  let add c = cons := c :: !cons in
  (* domains *)
  Array.iteri
    (fun d (lo, hi) ->
      List.iter
        (fun side ->
          add (lin (var side d) (-lo));
          add (lin (Array.map (fun x -> -x) (var side d)) hi))
        [ 0; 1 ])
    ranges;
  (* touch equalities from the linear rows *)
  let rows side (a : Mem_access.t) =
    List.map
      (fun e ->
        match A.Expr.coefficients ~num_dims (A.Expr.simplify e) with
        | Some (coeffs, cst) ->
            let full = Array.make nvars 0 in
            Array.iteri (fun d c -> full.((side * num_dims) + d) <- c) coeffs;
            Some (full, cst)
        | None -> None)
      a.Mem_access.exprs
  in
  let rs = rows 0 src and rd = rows 1 dst in
  let ok = ref true in
  List.iter2
    (fun r1 r2 ->
      match (r1, r2) with
      | Some (c1, k1), Some (c2, k2) ->
          let diff = Array.init nvars (fun i -> c1.(i) - c2.(i)) in
          add (lin diff (k1 - k2));
          add (lin (Array.map (fun x -> -x) diff) (k2 - k1))
      | _ -> ok := false)
    rs rd;
  (* guards *)
  let add_guards side (a : Mem_access.t) =
    List.iter
      (fun (c : A.Set_.constraint_) ->
        match A.Expr.coefficients ~num_dims (A.Expr.simplify c.A.Set_.expr) with
        | Some (coeffs, cst) ->
            let full = Array.make nvars 0 in
            Array.iteri (fun d v -> full.((side * num_dims) + d) <- v) coeffs;
            add (lin full cst);
            if c.A.Set_.eq then add (lin (Array.map (fun x -> -x) full) (-cst))
        | None -> () (* unrepresentable guard: drop (sound) *))
      a.Mem_access.guards
  in
  add_guards 0 src;
  add_guards 1 dst;
  (* lexicographic ordering: I_d = I'_d for d < level; I'_level >= I_level+1 *)
  for d = 0 to level - 1 do
    let diff = Array.init nvars (fun i ->
        if i = d then 1 else if i = num_dims + d then -1 else 0)
    in
    add (lin diff 0);
    add (lin (Array.map (fun x -> -x) diff) 0)
  done;
  let lt = Array.init nvars (fun i ->
      if i = level then -1 else if i = num_dims + level then 1 else 0)
  in
  add (lin lt (-1));
  if not !ok then true
  else try Fm.feasible ~nvars !cons with Fm.Give_up -> true

(* Replace an all-Star (non-uniform) dependence by one dep per feasible
   carried level; [] when no level is feasible (no loop-carried dep). *)
let refine_star_dep ~num_dims ~ranges (dep : dep) =
  if not (List.for_all (( = ) Star) dep.dirs) then [ dep ]
  else
    List.filter_map
      (fun level ->
        if direction_feasible ~num_dims ~ranges dep.src dep.dst ~level then
          Some
            {
              dep with
              dirs =
                List.init num_dims (fun d ->
                    if d < level then Eq else if d = level then Lt 1 else Star);
            }
        else None)
      (List.init num_dims Fun.id)

(** All dependences among [accs] (ordered pairs, both directions), over
    [num_dims] band dims. [ranges] (inclusive iteration-space bounds per
    dim) enables the guard-aware Fourier-Motzkin refinement of non-uniform
    dependences. *)
(* Residue signature of a linear form within a coefficient class: one entry
   per access-map row — the full constant for all-zero rows (the uniform
   solve requires equal constants there), the constant modulo the stride for
   rows with exactly one nonzero coefficient (the solve requires the
   constant difference divisible by it), and a don't-care marker for
   multi-coefficient rows (the solve derives no divisibility from them).
   Two same-class accesses with different signatures provably have no
   dependence: [dependence_forms] would raise [Independent] on the
   divisibility check or fail the constant-row check. *)
let residue_sig rows =
  List.map
    (fun ((cs : int array), k) ->
      let nz = ref 0 and last = ref 0 in
      Array.iter
        (fun c ->
          if c <> 0 then begin
            incr nz;
            last := c
          end)
        cs;
      match !nz with
      | 0 -> k
      | 1 ->
          let m = abs !last in
          ((k mod m) + m) mod m
      | _ -> min_int)
    rows

let all_deps ?ranges ~num_dims accs =
  (* Linear forms are a pure function of the access: compute each once
     instead of once per ordered pair (the dominant cost on wide unrolled
     bodies with hundreds of accesses). *)
  let forms = List.map (fun a -> (a, linear_form ~num_dims a)) accs in
  let dep_of ((src : Mem_access.t), fs) ((dst : Mem_access.t), fd) =
    match dependence_forms ~num_dims src fs dst fd with
    | Some dirs -> Some { src; dst; dirs }
    | None -> None
  in
  (* Pair enumeration avoids the all-pairs scan, which was quadratic in the
     access count and dominated estimation on wide unrolled bodies (a
     symbolically expanded gemm band carries ~1000 accesses = ~10^6 ordered
     pairs, nearly all provably independent). Accesses are grouped by
     memref (cross-memref pairs can never depend), load-only groups are
     skipped (a dependence needs a store), and same-coefficient-class
     accesses are bucketed by residue signature so only pairs that survive
     the uniform solve's divisibility sieve are enumerated. Cross-class and
     non-linear pairs keep the exhaustive scan — they are rare, and their
     non-uniform path is cheap. The dep *set* is unchanged; only its order
     differs (consumers max-fold or treat it as a set). *)
  let pair_deps =
    let gorder = ref [] in
    let groups : (int, (Mem_access.t * (int array * int) list option) list ref) Hashtbl.t
        =
      Hashtbl.create 8
    in
    List.iter
      (fun (((a : Mem_access.t), _) as af) ->
        let vid = a.Mem_access.memref.Ir.vid in
        match Hashtbl.find_opt groups vid with
        | Some r -> r := af :: !r
        | None ->
            gorder := vid :: !gorder;
            Hashtbl.add groups vid (ref [ af ]))
      forms;
    let group_deps vid =
      let members = List.rev !(Hashtbl.find groups vid) in
      if
        not
          (List.exists
             (fun ((a : Mem_access.t), _) -> a.Mem_access.is_store)
             members)
      then []
      else begin
        (* Split into same-coefficient classes (first-appearance order) with
           residue buckets inside each, plus non-linear irregulars. *)
        let class_tbl = Hashtbl.create 4 in
        let corder = ref [] and irregular = ref [] in
        List.iter
          (fun ((_, fo) as m) ->
            match fo with
            | None -> irregular := m :: !irregular
            | Some rows -> (
                let ckey = List.map fst rows in
                let skey = residue_sig rows in
                let sorder, buckets =
                  match Hashtbl.find_opt class_tbl ckey with
                  | Some c -> c
                  | None ->
                      let c = (ref [], Hashtbl.create 8) in
                      Hashtbl.add class_tbl ckey c;
                      corder := ckey :: !corder;
                      c
                in
                match Hashtbl.find_opt buckets skey with
                | Some r -> r := m :: !r
                | None ->
                    sorder := skey :: !sorder;
                    Hashtbl.add buckets skey (ref [ m ])))
          members;
        let classes =
          List.rev_map
            (fun ckey ->
              let sorder, buckets = Hashtbl.find class_tbl ckey in
              List.rev_map (fun skey -> List.rev !(Hashtbl.find buckets skey)) !sorder)
            !corder
        in
        let irregular = List.rev !irregular in
        let ordered_pairs ms =
          List.concat_map
            (fun ((s, _) as src) ->
              List.filter_map
                (fun ((d, _) as dst) -> if s == d then None else dep_of src dst)
                ms)
            ms
        in
        (* same class, same residue bucket: the only uniform pairs that can
           depend *)
        let flat = List.mapi (fun i c -> (i, List.concat c)) classes in
        List.concat_map (List.concat_map ordered_pairs) classes
        (* different classes: exhaustive ordered pairs (non-uniform path) *)
        @ List.concat_map
            (fun (i, ci) ->
              List.concat_map
                (fun (j, cj) ->
                  if i = j then []
                  else
                    List.concat_map
                      (fun src ->
                        List.filter_map (fun dst -> dep_of src dst) cj)
                      ci)
                flat)
            flat
        (* non-linear accesses: against every regular member both ways, and
           among themselves *)
        @ (let regulars =
             List.filter (fun (_, fo) -> Option.is_some fo) members
           in
           List.concat_map
             (fun ir ->
               List.concat_map
                 (fun reg ->
                   List.filter_map Fun.id [ dep_of ir reg; dep_of reg ir ])
                 regulars)
             irregular
           @ ordered_pairs irregular)
      end
    in
    List.concat_map group_deps (List.rev !gorder)
  in
  pair_deps
  @ List.filter_map
      (fun (a, fa) ->
        (* Self-dependence of a store with itself across iterations. *)
        if a.Mem_access.is_store then
          match dependence_forms ~num_dims a fa a fa with
          | Some dirs -> Some { src = a; dst = a; dirs }
          | None -> None
        else None)
      forms
  |> fun deps ->
  match ranges with
  | None -> deps
  | Some ranges -> List.concat_map (refine_star_dep ~num_dims ~ranges) deps

(** Expand [Star] entries into [Lt 1] and [Eq] alternatives, producing the
    set of concrete direction vectors to check for permutation legality.
    Reverse directions are covered because {!all_deps} emits ordered pairs
    both ways. *)
let expand_dirs dirs =
  List.fold_left
    (fun acc d ->
      match d with
      | Star -> List.concat_map (fun v -> [ v @ [ Eq ]; v @ [ Lt 1 ] ]) acc
      | d -> List.map (fun v -> v @ [ d ]) acc)
    [ [] ] dirs

(** Is a permuted direction vector legal (lexicographically non-negative)?
    [perm.(i)] is the new position of original dim [i]. *)
let permuted_legal perm dirs =
  let n = List.length dirs in
  let arr = Array.make n Eq in
  List.iteri (fun i d -> arr.(perm.(i)) <- d) dirs;
  let rec scan i =
    if i >= n then true
    else
      match arr.(i) with
      | Eq -> scan (i + 1)
      | Lt d when d > 0 -> true
      | Lt _ -> false
      | Star -> false
  in
  scan 0

(** Is permutation [perm] legal for all dependences [deps]? *)
let permutation_legal perm deps =
  List.for_all
    (fun dep -> List.for_all (permuted_legal perm) (expand_dirs dep.dirs))
    deps

(** Is the band fully permutable — every dependence direction component
    non-negative? This is the legality condition for rectangular tiling with
    point loops sunk innermost (the tile execution order interleaves all band
    dims, so lexicographic non-negativity alone is not enough). A
    lexicographically negative vector is the reverse image of an ordered pair
    and does not constrain; [Star] components are conservatively rejected
    (unknown sign, could become a backward component inside a tile). *)
let fully_permutable deps =
  let rec lex_negative = function
    | Eq :: rest -> lex_negative rest
    | Lt d :: _ -> d < 0
    | (Star :: _ | []) -> false
  in
  let component_nonneg = function Eq -> true | Lt d -> d > 0 | Star -> false in
  List.for_all
    (fun dep -> lex_negative dep.dirs || List.for_all component_nonneg dep.dirs)
    deps

(** Loop-carried dependence distance on band dim [dim], assuming all other
    dims are equal ([Eq]): for II computation of a pipelined loop. Returns
    [None] when no dependence is carried by [dim];
    [Some d] with the (positive) forced distance otherwise. [Star] at [dim]
    means carried at every distance: returns [Some 1]. *)
let carried_distance ~dim dep =
  let ok_elsewhere =
    List.for_all
      (fun (j, d) -> j = dim || d = Eq || d = Star)
      (List.mapi (fun j d -> (j, d)) dep.dirs)
  in
  if not ok_elsewhere then None
  else
    match List.nth dep.dirs dim with
    | Eq -> None
    | Lt d when d > 0 -> Some d
    | Lt _ -> None
    | Star -> Some 1
