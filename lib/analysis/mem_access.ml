(** Memory-access collection and normalization: every affine load/store in a
    region is re-expressed over a chosen basis of induction variables so that
    dependence analysis, array partitioning (Eq. 1), and the QoR estimator
    (Eqs. 3–4) can reason uniformly about access functions. *)

open Mir
open Dialects

module A = Affine

type t = {
  op : Ir.op;
  memref : Ir.value;
  is_store : bool;
  exprs : A.Expr.t list;
      (** one access expression per array dimension, over the basis dims *)
  guards : A.Set_.constraint_ list;
      (** enclosing affine.if conditions (then-branches only) normalized over
          the basis dims; conditions that could not be normalized are dropped
          (sound: fewer constraints only widens the dependence relation) *)
}

(** Re-express the access map of [op] over [basis] (a list of iv values,
    outermost first), in {e iteration space}: a basis iv whose loop has
    constant lower bound [lb] and step [s] becomes [lb + s*Dim j], so that
    dependence distances are iteration counts and step-strided ivs do not
    fake aliasing. Map inputs fed by:
    - a basis iv become [lb + step*Dim j] (j = basis position);
    - a constant (via [consts]: value id -> int) become [Const c];
    - anything else fails ([None]).
    [consts] resolves non-basis operands to constants when possible;
    [iv_info] gives [(lb, step)] per basis value (default [(0, 1)]). *)
let normalize_access ?(iv_info = fun (_ : Ir.value) -> (0, 1)) ~basis ~consts op =
  let basis_pos =
    List.mapi (fun j (v : Ir.value) -> (v.Ir.vid, (j, iv_info v))) basis
  in
  let operands = Memref.access_indices op in
  let reps =
    List.map
      (fun (v : Ir.value) ->
        match List.assoc_opt v.Ir.vid basis_pos with
        | Some (j, (lb, step)) ->
            Some
              (A.Expr.add (A.Expr.const lb)
                 (A.Expr.mul (A.Expr.const step) (A.Expr.dim j)))
        | None -> (
            match consts v with
            | Some c -> Some (A.Expr.const c)
            | None -> None))
      operands
  in
  if List.exists Option.is_none reps then None
  else
    let reps = List.map Option.get reps in
    let map = Affine_d.access_map op in
    let composed =
      A.Map.replace_dims ~num_dims:(List.length basis) reps map
    in
    Some (A.Map.results composed)

(** Collect the affine accesses inside [region_op] (inclusive), normalized
    over [basis]. [scope] is used to resolve constant operands. Accesses that
    cannot be normalized are reported via [~on_opaque] (default: dropped). *)
let collect ?(on_opaque = fun (_ : Ir.op) -> ()) ~scope ~basis region_op =
  let consts v = Loop_utils.constant_of_value scope v in
  let ivs = Loop_utils.iv_defs scope in
  let iv_info (v : Ir.value) =
    match Hashtbl.find_opt ivs v.Ir.vid with
    | Some l ->
        let step = (Affine_d.bounds l).Affine_d.step in
        let lb =
          match Affine_d.const_bounds l with Some (lb, _) -> lb | None -> 0
        in
        (lb, step)
    | None -> (0, 1)
  in
  let basis_pos = List.mapi (fun j (v : Ir.value) -> (v.Ir.vid, j)) basis in
  (* Normalize an affine.if condition over the basis: substitute each set
     operand like an access index. Unrepresentable conditions are dropped. *)
  let normalize_guard (o : Ir.op) =
    let set = Attr.as_set (Ir.attr_exn o "set") in
    let reps =
      List.map
        (fun (v : Ir.value) ->
          match List.assoc_opt v.Ir.vid basis_pos with
          | Some j ->
              let lb, step = iv_info v in
              Some
                (A.Expr.add (A.Expr.const lb)
                   (A.Expr.mul (A.Expr.const step) (A.Expr.dim j)))
          | None -> Option.map A.Expr.const (consts v))
        o.Ir.operands
    in
    if List.exists Option.is_none reps then []
    else
      let reps = Array.of_list (List.map Option.get reps) in
      List.map
        (fun (c : A.Set_.constraint_) ->
          {
            c with
            A.Set_.expr =
              A.Expr.simplify
                (A.Expr.substitute ~dims:(fun i -> reps.(i)) c.A.Set_.expr);
          })
        (A.Set_.constraints set)
  in
  let accs = ref [] in
  let rec go guards (o : Ir.op) =
    if o.Ir.name = "affine.load" || o.Ir.name = "affine.store" then (
      match normalize_access ~iv_info ~basis ~consts o with
      | Some exprs ->
          accs :=
            {
              op = o;
              memref = Memref.accessed_memref o;
              is_store = o.Ir.name = "affine.store";
              exprs;
              guards;
            }
            :: !accs
      | None -> on_opaque o)
    else if o.Ir.name = "memref.load" || o.Ir.name = "memref.store" then
      on_opaque o
    else if o.Ir.name = "affine.if" then begin
      let gs = normalize_guard o in
      (* then branch inherits the guards; else branch does not (a negated
         conjunction is not a conjunction) *)
      List.iter
        (fun (b : Ir.block) -> List.iter (go (guards @ gs)) b.Ir.bops)
        (Ir.region o 0);
      List.iter (fun (b : Ir.block) -> List.iter (go guards) b.Ir.bops) (Ir.region o 1)
    end
    else
      List.iter
        (List.iter (fun (b : Ir.block) -> List.iter (go guards) b.Ir.bops))
        o.Ir.regions
  in
  go [] region_op;
  List.rev !accs

(** Group accesses by the memref value they touch. *)
let by_memref accs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a.memref.Ir.vid) in
      Hashtbl.replace tbl a.memref.Ir.vid (a :: cur))
    accs;
  Hashtbl.fold (fun _ accs acc -> (List.rev accs |> List.hd).memref :: acc) tbl []
  |> fun mems ->
  List.map
    (fun (m : Ir.value) ->
      (m, List.rev (Hashtbl.find tbl m.Ir.vid)))
    (List.sort_uniq (fun a b -> compare a.Ir.vid b.Ir.vid) mems)

(** Unique access expressions (per full index vector) among [accs]. *)
let unique_exprs accs =
  List.sort_uniq compare (List.map (fun a -> List.map A.Expr.simplify a.exprs) accs)
