(** Loop-band analysis utilities shared by the transform passes, the QoR
    estimator, and the DSE engine. A {e loop band} (Table 2) is a maximal
    chain of singly-nested [affine.for] ops. *)

open Mir
open Dialects

module A = Affine

(** Top-level affine loops of a function body (band roots). *)
let top_loops f = List.filter Affine_d.is_for (Func.func_body f)

(** All affine.for ops anywhere in [o]. *)
let all_loops o = Walk.collect Affine_d.is_for o

(** All bands of a function: one per top-level loop. *)
let bands f = List.map Affine_d.band (top_loops f)

(** The induction variables of a band, outermost first. *)
let band_ivs band = List.map Affine_d.induction_var band

(** Constant iteration ranges [(lb, ub-1)] of each band loop (inclusive), for
    interval reasoning. [None] if some loop has non-constant bounds. *)
let band_ranges band =
  let rs =
    List.map
      (fun l ->
        match Affine_d.const_bounds l with
        | Some (lb, ub) -> Some (lb, ub - 1)
        | None -> None)
      band
  in
  if List.for_all Option.is_some rs then Some (Array.of_list (List.map Option.get rs))
  else None

(** Product of constant trip counts of a band ([None] if any is unknown). *)
let band_trip_count band =
  List.fold_left
    (fun acc l ->
      match (acc, Affine_d.const_trip_count l) with
      | Some a, Some t -> Some (a * t)
      | _ -> None)
    (Some 1) band

(** Replace the band rooted at [old_root] inside function [f] by
    [new_root]. *)
let replace_band_in f ~old_root ~new_root =
  let replaced = ref false in
  let rec rewrite ops =
    List.map
      (fun o ->
        if (not !replaced) && o == old_root then begin
          replaced := true;
          new_root
        end
        else
          {
            o with
            Ir.regions =
              List.map
                (List.map (fun b -> { b with Ir.bops = rewrite b.Ir.bops }))
                o.Ir.regions;
          })
      ops
  in
  let f' = Ir.with_body f (rewrite (Func.func_body f)) in
  if not !replaced then invalid_arg "Loop_utils.replace_band_in: root not found";
  f'

(** Apply [transform] to every band of [f] (top-level loops). The transform
    receives the band root and returns a replacement op. *)
let map_bands ctx f transform =
  Ir.with_body f
    (List.map
       (fun o -> if Affine_d.is_for o then transform ctx o else o)
       (Func.func_body f))

(** Is the value [v] defined by an [arith.constant]? Search [scope] for the
    defining op and return the constant. *)
let constant_of_value scope (v : Ir.value) =
  let found = ref None in
  Walk.iter_op
    (fun o ->
      if Arith.is_constant o && List.exists (fun r -> Ir.value_equal r v) o.Ir.results
      then found := Arith.constant_int_value o)
    scope;
  !found

(** Map from value id to the affine.for op (within [scope]) whose induction
    variable it is. *)
let iv_defs scope =
  let tbl = Hashtbl.create 32 in
  Walk.iter_op
    (fun o ->
      if Affine_d.is_for o then
        Hashtbl.replace tbl (Affine_d.induction_var o).Ir.vid o)
    scope;
  tbl

(** Inclusive value range of an index value inside [scope]:
    constants give [(c, c)], affine ivs with constant bounds give
    [(lb, ub-1)]. *)
let range_of_value scope (v : Ir.value) =
  match constant_of_value scope v with
  | Some c -> Some (c, c)
  | None -> (
      let ivs = iv_defs scope in
      match Hashtbl.find_opt ivs v.Ir.vid with
      | Some l -> (
          match Affine_d.const_bounds l with
          | Some (lb, ub) when ub > lb -> Some (lb, ub - 1)
          | _ -> None)
      | None -> None)

(** Precomputed {!range_of_value} environment: one walk over [scope] builds a
    table from value id to inclusive range, covering every [arith.constant]
    result ([(c, c)]) and every affine induction variable with constant
    bounds ([(lb, ub-1)]). [Hashtbl.find_opt (range_env scope) v.vid] agrees
    with [range_of_value scope v]; the table form amortizes the per-query
    scope walk on hot paths (the estimator's band-memo keys hash the ranges
    of every free value of a band). *)
let range_env scope =
  let tbl : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  Walk.iter_op
    (fun o ->
      if Arith.is_constant o then (
        match Arith.constant_int_value o with
        | Some c ->
            List.iter
              (fun (r : Ir.value) -> Hashtbl.replace tbl r.Ir.vid (c, c))
              o.Ir.results
        | None -> ())
      else if Affine_d.is_for o then
        match Affine_d.const_bounds o with
        | Some (lb, ub) when ub > lb ->
            Hashtbl.replace tbl (Affine_d.induction_var o).Ir.vid (lb, ub - 1)
        | _ -> ())
    scope;
  tbl

(** Depth of nesting of affine loops containing each loop: association list
    from loop (physical identity) to depth, outermost = 0. *)
let loop_depths f =
  let acc = ref [] in
  let rec go depth o =
    if Affine_d.is_for o then begin
      acc := (o, depth) :: !acc;
      List.iter (go (depth + 1)) (Ir.body_ops o)
    end
    else
      List.iter
        (List.iter (fun b -> List.iter (go depth) b.Ir.bops))
        o.Ir.regions
  in
  List.iter (go 0) (Func.func_body f);
  List.rev !acc
