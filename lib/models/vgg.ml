(** VGG-16 for CIFAR-10 (Simonyan & Zisserman [45]): thirteen 3x3
    convolutions in five max-pooled groups, followed by the CIFAR classifier
    head (512 -> 512 -> 10). A pure feed-forward chain — the easy case for
    dataflow legalization (no bypass paths). *)

let conv_relu b ~oc x = Nn.relu b (Nn.conv2d b ~stride:1 ~pad:1 ~oc ~k:3 x)

let build ctx =
  Nn.build ctx ~input_shape:[ 1; 3; 32; 32 ] (fun b input ->
      let pool = Nn.maxpool b ~kernel:2 ~stride:2 in
      let x = conv_relu b ~oc:64 input in
      let x = conv_relu b ~oc:64 x in
      let x = pool x in
      let x = conv_relu b ~oc:128 x in
      let x = conv_relu b ~oc:128 x in
      let x = pool x in
      let x = conv_relu b ~oc:256 x in
      let x = conv_relu b ~oc:256 x in
      let x = conv_relu b ~oc:256 x in
      let x = pool x in
      let x = conv_relu b ~oc:512 x in
      let x = conv_relu b ~oc:512 x in
      let x = conv_relu b ~oc:512 x in
      let x = pool x in
      let x = conv_relu b ~oc:512 x in
      let x = conv_relu b ~oc:512 x in
      let x = conv_relu b ~oc:512 x in
      let x = pool x in
      let x = Nn.flatten b x in
      let x = Nn.relu b (Nn.dense b ~oc:512 x) in
      Nn.dense b ~oc:10 x)

let name = "vgg16"
