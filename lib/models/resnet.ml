(** ResNet-18 for CIFAR-10 (He et al. [16]): 3x3 stem, four groups of two
    basic blocks (64/128/256/512 channels, stride-2 downsampling between
    groups), global average pooling and a 10-way classifier. The residual
    connections create exactly the bypass paths that the graph-level
    dataflow legalization (§5.1.1) must handle. *)

let basic_block b ~oc ~stride x =
  let identity =
    if stride = 1 then x
    else
      (* 1x1 strided projection shortcut *)
      Nn.conv2d b ~stride ~pad:0 ~oc ~k:1 x
  in
  let y = Nn.relu b (Nn.conv2d b ~stride ~pad:1 ~oc ~k:3 x) in
  let y = Nn.conv2d b ~stride:1 ~pad:1 ~oc ~k:3 y in
  Nn.relu b (Nn.add b y identity)

(** Build the graph-level module (input 1x3x32x32). *)
let build ctx =
  Nn.build ctx ~input_shape:[ 1; 3; 32; 32 ] (fun b input ->
      let x = Nn.relu b (Nn.conv2d b ~stride:1 ~pad:1 ~oc:64 ~k:3 input) in
      let x = basic_block b ~oc:64 ~stride:1 x in
      let x = basic_block b ~oc:64 ~stride:1 x in
      let x = basic_block b ~oc:128 ~stride:2 x in
      let x = basic_block b ~oc:128 ~stride:1 x in
      let x = basic_block b ~oc:256 ~stride:2 x in
      let x = basic_block b ~oc:256 ~stride:1 x in
      let x = basic_block b ~oc:512 ~stride:2 x in
      let x = basic_block b ~oc:512 ~stride:1 x in
      let x = Nn.avgpool b ~kernel:4 ~stride:4 x in
      let x = Nn.flatten b x in
      Nn.dense b ~oc:10 x)

let name = "resnet18"
