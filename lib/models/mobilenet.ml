(** MobileNet-v1 for CIFAR-10 (Howard et al. [17]): a 3x3 stem followed by
    thirteen depthwise-separable blocks (depthwise 3x3 + pointwise 1x1),
    global average pooling and a 10-way classifier. Exercises the depthwise
    convolution lowering. *)

let dw_pw b ~oc ~stride x =
  let x = Nn.relu b (Nn.dwconv2d b ~stride ~pad:1 ~k:3 x) in
  Nn.relu b (Nn.conv2d b ~stride:1 ~pad:0 ~oc ~k:1 x)

let build ctx =
  Nn.build ctx ~input_shape:[ 1; 3; 32; 32 ] (fun b input ->
      let x = Nn.relu b (Nn.conv2d b ~stride:1 ~pad:1 ~oc:32 ~k:3 input) in
      let x = dw_pw b ~oc:64 ~stride:1 x in
      let x = dw_pw b ~oc:128 ~stride:2 x in
      let x = dw_pw b ~oc:128 ~stride:1 x in
      let x = dw_pw b ~oc:256 ~stride:2 x in
      let x = dw_pw b ~oc:256 ~stride:1 x in
      let x = dw_pw b ~oc:512 ~stride:2 x in
      let x = dw_pw b ~oc:512 ~stride:1 x in
      let x = dw_pw b ~oc:512 ~stride:1 x in
      let x = dw_pw b ~oc:512 ~stride:1 x in
      let x = dw_pw b ~oc:512 ~stride:1 x in
      let x = dw_pw b ~oc:512 ~stride:1 x in
      let x = dw_pw b ~oc:1024 ~stride:2 x in
      let x = dw_pw b ~oc:1024 ~stride:1 x in
      let x = Nn.avgpool b ~kernel:2 ~stride:2 x in
      let x = Nn.flatten b x in
      Nn.dense b ~oc:10 x)

let name = "mobilenet"
