(** The six PolyBench-C computation kernels evaluated in §7.1 (BICG, GEMM,
    GESUMMV, SYR2K, SYRK, TRMM), emitted as HLS-C source at any problem size
    and parsed through the ScaleHLS C front-end exactly as the paper's flow
    parses PolyBench sources. Loop structures follow PolyBench-4.2 (including
    the variable loop bounds of SYRK/SYR2K/TRMM and the imperfect nests that
    exercise loop perfectization). *)

type kernel = Bicg | Gemm | Gesummv | Syr2k | Syrk | Trmm | Atax | Mvt | Two_mm

(** The six kernels of the paper's Table 3. *)
let all = [ Bicg; Gemm; Gesummv; Syr2k; Syrk; Trmm ]

(** Extension kernels beyond the paper's set (same machinery, wider
    coverage). *)
let extras = [ Atax; Mvt; Two_mm ]

let name = function
  | Bicg -> "bicg"
  | Gemm -> "gemm"
  | Gesummv -> "gesummv"
  | Syr2k -> "syr2k"
  | Syrk -> "syrk"
  | Trmm -> "trmm"
  | Atax -> "atax"
  | Mvt -> "mvt"
  | Two_mm -> "two_mm"

let of_name s =
  match String.lowercase_ascii s with
  | "bicg" -> Bicg
  | "gemm" -> Gemm
  | "gesummv" -> Gesummv
  | "syr2k" -> Syr2k
  | "syrk" -> Syrk
  | "trmm" -> Trmm
  | "atax" -> Atax
  | "mvt" -> Mvt
  | "2mm" | "two_mm" -> Two_mm
  | _ -> invalid_arg (Printf.sprintf "Polybench.of_name: unknown kernel %s" s)

(** HLS-C source of a kernel at problem size [n]. *)
let source kernel ~n =
  match kernel with
  | Gemm ->
      Printf.sprintf
        {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      C[i][j] = C[i][j] * beta;
      for (int k = 0; k < %d; k++) {
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
      }
    }
  }
}
|}
        n n n n n n n n n
  | Bicg ->
      Printf.sprintf
        {|
void bicg(float A[%d][%d], float s[%d], float q[%d], float p[%d], float r[%d]) {
  for (int i = 0; i < %d; i++) {
    s[i] = 0.0;
  }
  for (int i = 0; i < %d; i++) {
    q[i] = 0.0;
    for (int j = 0; j < %d; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
|}
        n n n n n n n n n
  | Gesummv ->
      Printf.sprintf
        {|
void gesummv(float alpha, float beta, float A[%d][%d], float B[%d][%d],
             float tmp[%d], float x[%d], float y[%d]) {
  for (int i = 0; i < %d; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < %d; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}
|}
        n n n n n n n n n
  | Syrk ->
      Printf.sprintf
        {|
void syrk(float alpha, float beta, float C[%d][%d], float A[%d][%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j <= i; j++) {
      C[i][j] = C[i][j] * beta;
      for (int k = 0; k < %d; k++) {
        C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
      }
    }
  }
}
|}
        n n n n n n
  | Syr2k ->
      Printf.sprintf
        {|
void syr2k(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j <= i; j++) {
      C[i][j] = C[i][j] * beta;
      for (int k = 0; k < %d; k++) {
        C[i][j] = C[i][j] + A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
      }
    }
  }
}
|}
        n n n n n n n n
  | Trmm ->
      Printf.sprintf
        {|
void trmm(float alpha, float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      for (int k = i + 1; k < %d; k++) {
        B[i][j] = B[i][j] + A[k][i] * B[k][j];
      }
      B[i][j] = alpha * B[i][j];
    }
  }
}
|}
        n n n n n n n

  | Atax ->
      Printf.sprintf
        {|
void atax(float A[%d][%d], float x[%d], float y[%d], float tmp[%d]) {
  for (int i = 0; i < %d; i++) {
    y[i] = 0.0;
  }
  for (int i = 0; i < %d; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < %d; j++) {
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }
    for (int j = 0; j < %d; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
|}
        n n n n n n n n n
  | Mvt ->
      Printf.sprintf
        {|
void mvt(float A[%d][%d], float x1[%d], float x2[%d], float y1[%d], float y2[%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      x2[i] = x2[i] + A[j][i] * y2[j];
    }
  }
}
|}
        n n n n n n n n n n
  | Two_mm ->
      Printf.sprintf
        {|
void two_mm(float alpha, float beta, float tmp[%d][%d], float A[%d][%d],
            float B[%d][%d], float C[%d][%d], float D[%d][%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < %d; k++) {
        tmp[i][j] = tmp[i][j] + alpha * A[i][k] * B[k][j];
      }
    }
  }
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      D[i][j] = D[i][j] * beta;
      for (int k = 0; k < %d; k++) {
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
      }
    }
  }
}
|}
        n n n n n n n n n n n n n n n n

(** Argument shapes of a kernel at size [n]: scalars are [None], arrays
    [Some dims] — used by the test/bench harnesses to build interpreter
    inputs. *)
let arg_shapes kernel ~n =
  match kernel with
  | Gemm -> [ None; None; Some [ n; n ]; Some [ n; n ]; Some [ n; n ] ]
  | Bicg -> [ Some [ n; n ]; Some [ n ]; Some [ n ]; Some [ n ]; Some [ n ] ]
  | Gesummv ->
      [ None; None; Some [ n; n ]; Some [ n; n ]; Some [ n ]; Some [ n ]; Some [ n ] ]
  | Syrk -> [ None; None; Some [ n; n ]; Some [ n; n ] ]
  | Syr2k -> [ None; None; Some [ n; n ]; Some [ n; n ]; Some [ n; n ] ]
  | Trmm -> [ None; Some [ n; n ]; Some [ n; n ] ]
  | Atax -> [ Some [ n; n ]; Some [ n ]; Some [ n ]; Some [ n ] ]
  | Mvt -> [ Some [ n; n ]; Some [ n ]; Some [ n ]; Some [ n ]; Some [ n ] ]
  | Two_mm ->
      [ None; None; Some [ n; n ]; Some [ n; n ]; Some [ n; n ]; Some [ n; n ]; Some [ n; n ] ]

(** Multiply–accumulate operation count (2 OP per MAC) for reference. *)
let flops kernel ~n =
  match kernel with
  | Gemm -> 2 * n * n * n
  | Bicg -> 4 * n * n
  | Gesummv -> 4 * n * n
  | Syrk -> n * n * n (* triangular *)
  | Syr2k -> 2 * n * n * n
  | Trmm -> n * n * n
  | Atax -> 4 * n * n
  | Mvt -> 4 * n * n
  | Two_mm -> 4 * n * n * n

(** Argument names (paper Table 3 uses these for partition-factor columns). *)
let arg_names = function
  | Gemm -> [ "alpha"; "beta"; "C"; "A"; "B" ]
  | Bicg -> [ "A"; "s"; "q"; "p"; "r" ]
  | Gesummv -> [ "alpha"; "beta"; "A"; "B"; "tmp"; "x"; "y" ]
  | Syrk -> [ "alpha"; "beta"; "C"; "A" ]
  | Syr2k -> [ "alpha"; "beta"; "C"; "A"; "B" ]
  | Trmm -> [ "alpha"; "A"; "B" ]
  | Atax -> [ "A"; "x"; "y"; "tmp" ]
  | Mvt -> [ "A"; "x1"; "x2"; "y1"; "y2" ]
  | Two_mm -> [ "alpha"; "beta"; "tmp"; "A"; "B"; "C"; "D" ]
