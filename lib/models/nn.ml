(** A tiny PyTorch-like model builder producing graph-level IR — the stand-in
    for the NPComp/ONNX-MLIR front-ends (§2.3): models are described as
    OCaml functions over tensor values and materialize as a [forward]
    function of graph-dialect ops. Weights are int8 (the paper's DNN memory
    footprints match 8-bit quantized parameters). *)

open Mir
open Dialects

type t = {
  ctx : Ir.Ctx.t;
  mutable ops : Ir.op list;  (** reversed *)
  mutable n_weights : int;
  prefix : string;
}

let create ?(prefix = "w") ctx = { ctx; ops = []; n_weights = 0; prefix }

let emit b (op, r) =
  b.ops <- op :: b.ops;
  r

let weight b shape =
  b.n_weights <- b.n_weights + 1;
  emit b
    (Graph.weight b.ctx
       ~name:(Printf.sprintf "%s%d" b.prefix b.n_weights)
       ~shape ())

(** 2-D convolution [ic -> oc] with a [k]x[k] kernel. *)
let conv2d b ?(stride = 1) ?(pad = 0) ~oc ~k x =
  let ic = match Graph.tensor_shape x with [ _; c; _; _ ] -> c | _ -> invalid_arg "conv2d" in
  let w = weight b [ oc; ic; k; k ] in
  emit b (Graph.conv2d b.ctx ~stride ~pad ~input:x ~weight:w ())

let dwconv2d b ?(stride = 1) ?(pad = 0) ~k x =
  let c = match Graph.tensor_shape x with [ _; c; _; _ ] -> c | _ -> invalid_arg "dwconv2d" in
  let w = weight b [ c; 1; k; k ] in
  emit b (Graph.dwconv2d b.ctx ~stride ~pad ~input:x ~weight:w ())

let dense b ~oc x =
  let ic = match Graph.tensor_shape x with [ _; i ] -> i | _ -> invalid_arg "dense" in
  let w = weight b [ oc; ic ] in
  emit b (Graph.dense b.ctx ~input:x ~weight:w ())

let relu b x = emit b (Graph.relu b.ctx x)
let add b x y = emit b (Graph.add b.ctx x y)
let maxpool b ~kernel ~stride x = emit b (Graph.maxpool b.ctx ~kernel ~stride x)
let avgpool b ~kernel ~stride x = emit b (Graph.avgpool b.ctx ~kernel ~stride x)
let flatten b x = emit b (Graph.flatten b.ctx x)

(** Finish the model: build a module with a single [forward] function from
    input shape to the produced output tensor. *)
let build ctx ~input_shape f =
  let b = create ctx in
  let input = Ir.Ctx.fresh ctx (Ty.tensor input_shape Ty.F32) in
  let output = f b input in
  let body = List.rev b.ops @ [ Func.return_ [ output ] ] in
  Ir.module_
    [ Func.func_raw ~name:"forward" ~args:[ input ] ~outputs:[ output.Ir.vty ] body ]

(** Total parameter count of a graph-level module. *)
let num_params m =
  Walk.fold_ops
    (fun acc o ->
      if Graph.is_weight o then acc + Ty.num_elements (Graph.tensor_shape (Ir.result o))
      else acc)
    0 m

(** Total MAC-based operation count (2 OP per MAC), the numerator of the
    DSP-efficiency metric (Eq. 5). *)
let num_ops m = Walk.fold_ops (fun acc o -> acc + Graph.flops o) 0 m
