(** Lightweight affine "solvers" used by dependence analysis and the
    remove-variable-bound pass: interval bounds of linear expressions over
    boxed iteration domains, constant-distance extraction, and the GCD
    dependence test. *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Interval [lo, hi] of a linear expression over dims with inclusive ranges
    [ranges.(i) = (lo_i, hi_i)]. [None] if the expression is not linear in the
    dims. *)
let range_of_expr ~num_dims ~ranges e =
  match Expr.coefficients ~num_dims (Expr.simplify e) with
  | None -> None
  | Some (coeffs, cst) ->
      let lo = ref cst and hi = ref cst in
      Array.iteri
        (fun i c ->
          if c <> 0 then begin
            let l, h = ranges.(i) in
            if c > 0 then begin
              lo := !lo + (c * l);
              hi := !hi + (c * h)
            end
            else begin
              lo := !lo + (c * h);
              hi := !hi + (c * l)
            end
          end)
        coeffs;
      Some (!lo, !hi)

(** [constant_difference ~num_dims a b] returns [Some k] when
    [a - b] simplifies to the constant [k]. *)
let constant_difference ~num_dims a b =
  ignore num_dims;
  Expr.as_const (Expr.simplify (Expr.sub a b))

(** Difference of two access expressions as per-dim coefficient deltas plus a
    constant: [a - b = sum_i coeff_i * d_i + cst]. *)
let linear_difference ~num_dims a b =
  Expr.coefficients ~num_dims (Expr.simplify (Expr.sub a b))

(** GCD test: can [sum_i coeff_i * d_i + cst = 0] have an integer solution?
    Returns [false] only when a dependence is definitely impossible. *)
let gcd_test coeffs cst =
  let g = Array.fold_left (fun acc c -> gcd acc c) 0 coeffs in
  if g = 0 then cst = 0 else cst mod g = 0

(** Dependence distance along one loop dimension for a pair of accesses whose
    index expressions (in the shared loop-dim space) are [src] and [dst]:
    solve [src(i) = dst(i + delta)] assuming both are linear with equal
    coefficients on the tested dim. Returns:
    - [Some 0]: same iteration,
    - [Some k]: constant distance k,
    - [None]: distance is not a constant (or accesses never alias). *)
let constant_distance ~num_dims ~dim src dst =
  match
    ( Expr.coefficients ~num_dims (Expr.simplify src),
      Expr.coefficients ~num_dims (Expr.simplify dst) )
  with
  | Some (cs, k1), Some (cd, k2) ->
      let same_elsewhere = ref true in
      Array.iteri
        (fun i c -> if i <> dim && c <> cd.(i) then same_elsewhere := false)
        cs;
      if (not !same_elsewhere) || cd.(dim) = 0 then None
      else
        let num = k1 - k2 + ((cs.(dim) - cd.(dim)) * 0) in
        (* src(i) = dst(i') with i' = i + delta on [dim] only:
           cs.(dim)*i + k1 = cd.(dim)*(i+delta) + k2.
           With cs.(dim) = cd.(dim) = c: delta = (k1 - k2) / c. *)
        if cs.(dim) <> cd.(dim) then None
        else
          let c = cd.(dim) in
          if num mod c = 0 then Some (num / c) else None
  | _ -> None

(** All divisors of [n] in increasing order. *)
let divisors n =
  if n <= 0 then []
  else
    let rec go i acc = if i > n then List.rev acc else go (i + 1) (if n mod i = 0 then i :: acc else acc) in
    go 1 []

(** Powers of two [<= n] (at least [1]). *)
let powers_of_two n =
  let rec go p acc = if p > n then List.rev acc else go (p * 2) (p :: acc) in
  go 1 []
