(** Affine maps: functions [(d0..dn-1)[s0..sm-1] -> (e0, ..., ek-1)] mapping a
    list of dimension and symbol values to a list of affine results, mirroring
    MLIR's [AffineMap]. Used for loop bounds, memory access functions, and
    (crucially, §4.3.3 of the paper) memref layout / array-partition
    encodings. *)

type t = { num_dims : int; num_syms : int; results : Expr.t list }

let make ~num_dims ~num_syms results =
  List.iter
    (fun e ->
      if Expr.num_dims e > num_dims then
        invalid_arg "Map.make: result references out-of-range dim";
      if Expr.num_syms e > num_syms then
        invalid_arg "Map.make: result references out-of-range sym")
    results;
  { num_dims; num_syms; results }

let num_dims m = m.num_dims
let num_syms m = m.num_syms
let results m = m.results
let num_results m = List.length m.results

(** The d-dimensional identity map [(d0..dn-1) -> (d0..dn-1)]. *)
let identity n =
  { num_dims = n; num_syms = 0; results = List.init n (fun i -> Expr.dim i) }

(** A map with no dims producing constant results. *)
let constant cs =
  { num_dims = 0; num_syms = 0; results = List.map Expr.const cs }

(** A single-result map. *)
let of_expr ~num_dims ?(num_syms = 0) e = make ~num_dims ~num_syms [ e ]

let equal a b =
  a.num_dims = b.num_dims && a.num_syms = b.num_syms
  && List.length a.results = List.length b.results
  && List.for_all2 Expr.equal a.results b.results

let simplify m = { m with results = List.map Expr.simplify m.results }

let is_identity m =
  m.num_syms = 0
  && num_results m = m.num_dims
  && List.for_all2 Expr.equal (List.map Expr.simplify m.results)
       (List.init m.num_dims Expr.dim)

(** Evaluate all results. *)
let eval m ~dims ~syms =
  if Array.length dims < m.num_dims then invalid_arg "Map.eval: too few dims";
  List.map (Expr.eval ~dims ~syms) m.results

let eval1 m ~dims ~syms =
  match eval m ~dims ~syms with
  | [ r ] -> r
  | _ -> invalid_arg "Map.eval1: map has multiple results"

(** [compose f g] is the map [x -> f (g x)]: [g]'s results feed [f]'s dims.
    Symbol spaces are concatenated ([f]'s symbols first). *)
let compose f g =
  if num_results g <> f.num_dims then
    invalid_arg "Map.compose: result/dim arity mismatch";
  let g_results = Array.of_list g.results in
  let g_shift = Expr.substitute ~syms:(fun i -> Expr.sym (i + f.num_syms)) in
  let results =
    List.map
      (fun e -> Expr.simplify (Expr.substitute ~dims:(fun i -> g_shift g_results.(i)) e))
      f.results
  in
  { num_dims = g.num_dims; num_syms = f.num_syms + g.num_syms; results }

(** Replace dims with the given expressions (over a fresh dim space of size
    [num_dims]). *)
let replace_dims ~num_dims reps m =
  let reps = Array.of_list reps in
  if Array.length reps <> m.num_dims then
    invalid_arg "Map.replace_dims: arity mismatch";
  {
    num_dims;
    num_syms = m.num_syms;
    results =
      List.map
        (fun e -> Expr.simplify (Expr.substitute ~dims:(fun i -> reps.(i)) e))
        m.results;
  }

(** Keep only the listed result positions. *)
let sub_map positions m =
  let rs = Array.of_list m.results in
  { m with results = List.map (fun i -> rs.(i)) positions }

(** Concatenate the results of two maps over the same dim/sym space. *)
let concat a b =
  if a.num_dims <> b.num_dims || a.num_syms <> b.num_syms then
    invalid_arg "Map.concat: space mismatch";
  { a with results = a.results @ b.results }

(** Permutation map: result [i] is [Dim (perm.(i))]. *)
let permutation perm =
  let n = Array.length perm in
  {
    num_dims = n;
    num_syms = 0;
    results = Array.to_list (Array.map Expr.dim perm);
  }

let is_single_constant m =
  match m.results with [ e ] -> Expr.as_const (Expr.simplify e) | _ -> None

let pp fmt m =
  let dims = List.init m.num_dims (fun i -> Fmt.str "d%d" i) in
  let syms = List.init m.num_syms (fun i -> Fmt.str "s%d" i) in
  Fmt.pf fmt "(%a)" Fmt.(list ~sep:comma string) dims;
  if syms <> [] then Fmt.pf fmt "[%a]" Fmt.(list ~sep:comma string) syms;
  Fmt.pf fmt " -> (%a)" Fmt.(list ~sep:comma Expr.pp) m.results

let to_string m = Fmt.str "%a" pp m
