(** Affine expressions over dimension and symbol variables, mirroring MLIR's
    [AffineExpr]. Expressions are kept in a lightly-normalized form by the
    smart constructors; {!simplify} canonicalizes further into a
    sum-of-scaled-terms representation when possible. *)

type t =
  | Dim of int
  | Sym of int
  | Const of int
  | Add of t * t
  | Mul of t * t
  | Mod of t * t
  | Floor_div of t * t
  | Ceil_div of t * t

let dim i = Dim i
let sym i = Sym i
let const c = Const c

let rec equal a b =
  match (a, b) with
  | Dim i, Dim j | Sym i, Sym j -> i = j
  | Const c, Const d -> c = d
  | Add (a1, a2), Add (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Mod (a1, a2), Mod (b1, b2)
  | Floor_div (a1, a2), Floor_div (b1, b2)
  | Ceil_div (a1, a2), Ceil_div (b1, b2) -> equal a1 b1 && equal a2 b2
  | (Dim _ | Sym _ | Const _ | Add _ | Mul _ | Mod _ | Floor_div _ | Ceil_div _), _
    -> false

(* Floor/ceil division with mathematically correct semantics for negative
   numerators, matching MLIR's affine semantics. *)
let floor_div a b =
  if b = 0 then invalid_arg "Expr.floor_div: division by zero";
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ceil_div a b =
  if b = 0 then invalid_arg "Expr.ceil_div: division by zero";
  -floor_div (-a) b

let euclid_mod a b =
  if b = 0 then invalid_arg "Expr.mod_: modulo by zero";
  let r = a mod b in
  if r < 0 then r + abs b else r

(* Smart constructors performing constant folding and simple identities. *)
let rec add a b =
  match (a, b) with
  | Const 0, e | e, Const 0 -> e
  | Const x, Const y -> Const (x + y)
  | Add (e, Const x), Const y -> add e (Const (x + y))
  | Const _, e -> add e a
  | _ -> Add (a, b)

let rec mul a b =
  match (a, b) with
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, e | e, Const 1 -> e
  | Const x, Const y -> Const (x * y)
  | e, (Const _ as c) -> Mul (e, c)
  | (Const _ as c), e -> mul e c
  | _ -> Mul (a, b)

let neg e = mul e (Const (-1))
let sub a b = add a (neg b)

let mod_ a b =
  match (a, b) with
  | Const x, Const y when y > 0 -> Const (euclid_mod x y)
  | _, Const 1 -> Const 0
  | _ -> Mod (a, b)

let fdiv a b =
  match (a, b) with
  | Const x, Const y when y <> 0 -> Const (floor_div x y)
  | e, Const 1 -> e
  | _ -> Floor_div (a, b)

let cdiv a b =
  match (a, b) with
  | Const x, Const y when y <> 0 -> Const (ceil_div x y)
  | e, Const 1 -> e
  | _ -> Ceil_div (a, b)

(** [eval ~dims ~syms e] evaluates [e] with [Dim i] bound to [dims.(i)] and
    [Sym i] bound to [syms.(i)]. *)
let rec eval ~dims ~syms = function
  | Dim i ->
      if i >= Array.length dims then invalid_arg "Expr.eval: dim out of range";
      dims.(i)
  | Sym i ->
      if i >= Array.length syms then invalid_arg "Expr.eval: sym out of range";
      syms.(i)
  | Const c -> c
  | Add (a, b) -> eval ~dims ~syms a + eval ~dims ~syms b
  | Mul (a, b) -> eval ~dims ~syms a * eval ~dims ~syms b
  | Mod (a, b) -> euclid_mod (eval ~dims ~syms a) (eval ~dims ~syms b)
  | Floor_div (a, b) -> floor_div (eval ~dims ~syms a) (eval ~dims ~syms b)
  | Ceil_div (a, b) -> ceil_div (eval ~dims ~syms a) (eval ~dims ~syms b)

(** Substitute dims and syms with arbitrary expressions. [dims] maps dim index
    to replacement; same for [syms]. Missing entries keep the variable. *)
let rec substitute ?(dims = fun i -> Dim i) ?(syms = fun i -> Sym i) = function
  | Dim i -> dims i
  | Sym i -> syms i
  | Const c -> Const c
  | Add (a, b) -> add (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | Mul (a, b) -> mul (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | Mod (a, b) -> mod_ (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | Floor_div (a, b) -> fdiv (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | Ceil_div (a, b) -> cdiv (substitute ~dims ~syms a) (substitute ~dims ~syms b)

(** Shift all dim indices by [delta] (used when concatenating dim spaces). *)
let shift_dims delta e = substitute ~dims:(fun i -> Dim (i + delta)) e

(* ---- Linear-form normalization ----------------------------------------- *)

(* A purely linear affine expression is a map var -> coefficient plus a
   constant. Variables are [`D i] or [`S i]. Mod/div subexpressions are
   treated as opaque atoms keyed by their structure. *)

module Term = struct
  type atom = D of int | S of int | Opaque of t

  let compare_atom a b =
    match (a, b) with
    | D i, D j | S i, S j -> compare i j
    | D _, _ -> -1
    | _, D _ -> 1
    | S _, _ -> -1
    | _, S _ -> 1
    | Opaque x, Opaque y -> compare x y
end

module Atom_map = Stdlib.Map.Make (struct
  type t = Term.atom

  let compare = Term.compare_atom
end)

type linear = { terms : int Atom_map.t; cst : int }

let linear_zero = { terms = Atom_map.empty; cst = 0 }

let linear_add_term atom coeff l =
  if coeff = 0 then l
  else
    let c = Option.value ~default:0 (Atom_map.find_opt atom l.terms) + coeff in
    let terms =
      if c = 0 then Atom_map.remove atom l.terms else Atom_map.add atom c l.terms
    in
    { l with terms }

let linear_plus a b =
  let terms =
    Atom_map.union (fun _ x y -> if x + y = 0 then None else Some (x + y)) a.terms b.terms
  in
  { terms; cst = a.cst + b.cst }

let linear_scale k l =
  if k = 0 then linear_zero
  else { terms = Atom_map.map (fun c -> c * k) l.terms; cst = l.cst * k }

(** Convert an expression into the canonical linear form. Mod/div atoms are
    first recursively simplified, then treated as opaque variables. *)
let rec to_linear e : linear =
  match e with
  | Const c -> { terms = Atom_map.empty; cst = c }
  | Dim i -> linear_add_term (Term.D i) 1 linear_zero
  | Sym i -> linear_add_term (Term.S i) 1 linear_zero
  | Add (a, b) -> linear_plus (to_linear a) (to_linear b)
  | Mul (a, b) -> (
      let la = to_linear a and lb = to_linear b in
      match (linear_is_const la, linear_is_const lb) with
      | Some ka, _ -> linear_scale ka lb
      | _, Some kb -> linear_scale kb la
      | None, None ->
          (* Non-affine product: keep opaque. *)
          linear_add_term (Term.Opaque (Mul (of_linear la, of_linear lb))) 1 linear_zero)
  | Mod (a, b) -> simplify_divmod (fun x y -> Mod (x, y)) a b
  | Floor_div (a, b) -> simplify_divmod (fun x y -> Floor_div (x, y)) a b
  | Ceil_div (a, b) -> simplify_divmod (fun x y -> Ceil_div (x, y)) a b

and linear_is_const l = if Atom_map.is_empty l.terms then Some l.cst else None

and simplify_divmod mk a b =
  let a' = of_linear (to_linear a) and b' = of_linear (to_linear b) in
  match (a', b', mk a' b') with
  | _, _, Const c -> { terms = Atom_map.empty; cst = c }
  | Const x, Const y, _ when y <> 0 -> (
      match mk (Const 0) (Const 1) with
      | Mod _ -> { terms = Atom_map.empty; cst = euclid_mod x y }
      | Floor_div _ -> { terms = Atom_map.empty; cst = floor_div x y }
      | _ -> { terms = Atom_map.empty; cst = ceil_div x y })
  | _ -> (
      (* When every variable coefficient of the numerator is divisible by a
         constant positive denominator k, the variable part contributes
         exactly (terms/k) to the floor/ceil quotient and nothing to the
         modulus, so only the constant offset remains to fold:
           (k*e + c) mod k      = c mod k
           (k*e + c) floordiv k = e + floor(c/k)
           (k*e + c) ceildiv k  = e + ceil(c/k)   (when c mod k = 0; else
                                                   keep ceil opaque unless
                                                   terms are empty) *)
      match b' with
      | Const k when k > 0 -> (
          let la = to_linear a' in
          let vars_divisible = Atom_map.for_all (fun _ c -> c mod k = 0) la.terms in
          match mk (Const 0) (Const 1) with
          | Mod _ when vars_divisible ->
              { terms = Atom_map.empty; cst = euclid_mod la.cst k }
          | Floor_div _ when vars_divisible ->
              {
                terms = Atom_map.map (fun c -> c / k) la.terms;
                cst = floor_div la.cst k;
              }
          | Ceil_div _ when vars_divisible && la.cst mod k = 0 ->
              { terms = Atom_map.map (fun c -> c / k) la.terms; cst = la.cst / k }
          | Ceil_div _ when Atom_map.is_empty la.terms ->
              { terms = Atom_map.empty; cst = ceil_div la.cst k }
          | _ -> linear_add_term (Term.Opaque (mk a' b')) 1 linear_zero)
      | _ -> linear_add_term (Term.Opaque (mk a' b')) 1 linear_zero)

and of_linear l =
  let sorted = Atom_map.bindings l.terms in
  let term_expr (atom, coeff) =
    let base =
      match atom with Term.D i -> Dim i | Term.S i -> Sym i | Term.Opaque e -> e
    in
    mul base (Const coeff)
  in
  let sum =
    List.fold_left (fun acc t -> add acc (term_expr t)) (Const 0) sorted
  in
  add sum (Const l.cst)

(** Canonicalize an affine expression. Linear parts are flattened and sorted;
    div/mod atoms are simplified where statically possible. *)
let simplify e = of_linear (to_linear e)

(** [coefficients ~num_dims e] returns [Some (dim_coeffs, const)] when [e] is
    purely linear in dims (symbols or opaque atoms make it [None]). *)
let coefficients ~num_dims e =
  let l = to_linear e in
  let coeffs = Array.make num_dims 0 in
  let ok =
    Atom_map.for_all
      (fun atom c ->
        match atom with
        | Term.D i when i < num_dims ->
            coeffs.(i) <- c;
            true
        | Term.D _ | Term.S _ | Term.Opaque _ -> false)
      l.terms
  in
  if ok then Some (coeffs, l.cst) else None

(** Largest dim index referenced, plus one ([0] if none). *)
let rec num_dims = function
  | Dim i -> i + 1
  | Sym _ | Const _ -> 0
  | Add (a, b) | Mul (a, b) | Mod (a, b) | Floor_div (a, b) | Ceil_div (a, b) ->
      max (num_dims a) (num_dims b)

let rec num_syms = function
  | Sym i -> i + 1
  | Dim _ | Const _ -> 0
  | Add (a, b) | Mul (a, b) | Mod (a, b) | Floor_div (a, b) | Ceil_div (a, b) ->
      max (num_syms a) (num_syms b)

let is_const = function Const _ -> true | _ -> false

let as_const = function Const c -> Some c | _ -> None

(** True when the expression is affine: no products of two non-constant
    subexpressions and divisors/moduli are positive constants. *)
let rec is_pure_affine = function
  | Dim _ | Sym _ | Const _ -> true
  | Add (a, b) -> is_pure_affine a && is_pure_affine b
  | Mul (a, b) -> (
      match (as_const (simplify a), as_const (simplify b)) with
      | None, None -> false
      | _ -> is_pure_affine a && is_pure_affine b)
  | Mod (a, b) | Floor_div (a, b) | Ceil_div (a, b) -> (
      match as_const (simplify b) with
      | Some k when k > 0 -> is_pure_affine a
      | Some _ | None -> false)

let rec pp fmt = function
  | Dim i -> Fmt.pf fmt "d%d" i
  | Sym i -> Fmt.pf fmt "s%d" i
  | Const c -> Fmt.pf fmt "%d" c
  | Add (a, Mul (b, Const -1)) -> Fmt.pf fmt "(%a - %a)" pp a pp b
  | Add (a, Const c) when c < 0 -> Fmt.pf fmt "(%a - %d)" pp a (-c)
  | Add (a, b) -> Fmt.pf fmt "(%a + %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf fmt "(%a * %a)" pp a pp b
  | Mod (a, b) -> Fmt.pf fmt "(%a mod %a)" pp a pp b
  | Floor_div (a, b) -> Fmt.pf fmt "(%a floordiv %a)" pp a pp b
  | Ceil_div (a, b) -> Fmt.pf fmt "(%a ceildiv %a)" pp a pp b

let to_string e = Fmt.str "%a" pp e
