(** Integer sets: conjunctions of affine constraints [e >= 0] or [e = 0] over
    dims and symbols, mirroring MLIR's [IntegerSet]. Used as the condition of
    [affine.if] operations. *)

type constraint_ = { expr : Expr.t; eq : bool }
(** [eq = true] means [expr = 0]; otherwise [expr >= 0]. *)

type t = { num_dims : int; num_syms : int; constraints : constraint_ list }

let make ~num_dims ~num_syms constraints =
  List.iter
    (fun c ->
      if Expr.num_dims c.expr > num_dims || Expr.num_syms c.expr > num_syms then
        invalid_arg "Set_.make: constraint references out-of-range variable")
    constraints;
  { num_dims; num_syms; constraints }

let ge_zero e = { expr = e; eq = false }
let eq_zero e = { expr = e; eq = true }

(** [e1 >= e2] as a constraint. *)
let ge e1 e2 = ge_zero (Expr.sub e1 e2)

(** [e1 <= e2] as a constraint. *)
let le e1 e2 = ge_zero (Expr.sub e2 e1)

let num_dims s = s.num_dims
let num_syms s = s.num_syms
let constraints s = s.constraints

let always_true ~num_dims = { num_dims; num_syms = 0; constraints = [] }

(** Evaluate set membership for concrete dim/sym values. *)
let contains s ~dims ~syms =
  List.for_all
    (fun c ->
      let v = Expr.eval ~dims ~syms c.expr in
      if c.eq then v = 0 else v >= 0)
    s.constraints

let simplify s =
  let constraints =
    List.filter_map
      (fun c ->
        let e = Expr.simplify c.expr in
        match Expr.as_const e with
        | Some v when (c.eq && v = 0) || ((not c.eq) && v >= 0) ->
            None (* trivially true: drop *)
        | _ -> Some { c with expr = e })
      s.constraints
  in
  { s with constraints }

(** [Some true] if the set is trivially the whole space, [Some false] if some
    constraint is statically violated, [None] when undecided syntactically. *)
let trivial s =
  let decide c =
    match Expr.as_const (Expr.simplify c.expr) with
    | Some v -> Some (if c.eq then v = 0 else v >= 0)
    | None -> None
  in
  let rec go = function
    | [] -> Some true
    | c :: rest -> (
        match decide c with
        | Some false -> Some false
        | Some true -> go rest
        | None -> ( match go rest with Some false -> Some false | _ -> None))
  in
  go s.constraints

(** Decide constraints using known per-dim ranges [lo, hi] (inclusive):
    returns the set with all constraints provably true removed, or [None] if a
    constraint is provably false. Linear-only analysis; non-linear constraints
    are kept undecided. *)
let simplify_with_ranges s ~ranges =
  if Array.length ranges < s.num_dims then
    invalid_arg "Set_.simplify_with_ranges: not enough ranges";
  let bound_of_expr e =
    (* Interval arithmetic over the linear form. *)
    match Expr.coefficients ~num_dims:s.num_dims (Expr.simplify e) with
    | None -> None
    | Some (coeffs, cst) ->
        let lo = ref cst and hi = ref cst in
        Array.iteri
          (fun i c ->
            if c <> 0 then begin
              let l, h = ranges.(i) in
              if c > 0 then begin
                lo := !lo + (c * l);
                hi := !hi + (c * h)
              end
              else begin
                lo := !lo + (c * h);
                hi := !hi + (c * l)
              end
            end)
          coeffs;
        Some (!lo, !hi)
  in
  let rec go acc = function
    | [] -> Some { s with constraints = List.rev acc }
    | c :: rest -> (
        match bound_of_expr c.expr with
        | Some (lo, hi) when not c.eq ->
            if lo >= 0 then go acc rest (* always true *)
            else if hi < 0 then None (* always false *)
            else go (c :: acc) rest
        | Some (lo, hi) when c.eq ->
            if lo = 0 && hi = 0 then go acc rest
            else if lo > 0 || hi < 0 then None
            else go (c :: acc) rest
        | _ -> go (c :: acc) rest)
  in
  go [] s.constraints

let pp fmt s =
  let pp_c fmt c =
    Fmt.pf fmt "%a %s 0" Expr.pp c.expr (if c.eq then "==" else ">=")
  in
  Fmt.pf fmt "{ %a }" Fmt.(list ~sep:(any " and ") pp_c) s.constraints

let to_string s = Fmt.str "%a" pp s
