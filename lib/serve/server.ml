(** The daemon: a Unix-domain-socket accept loop dispatching the
    {!Protocol} over per-connection threads.

    Concurrency model: every accepted connection gets a system thread that
    reads requests sequentially; a [search] request runs the full DSE on
    that thread, streaming its point evaluations onto the one shared
    {!Scalehls.Parpool}, whose workers dequeue round-robin across the
    searches' streams — [k] concurrent client searches interleave at
    single-eval granularity without oversubscribing the machine, with the
    {!Scheduler} accounting each evaluation (turn spans, queue-wait
    histogram). Search coordination (admission, in-order commit, Pareto
    maintenance) is cheap and interleaves on the runtime lock; the
    evaluation work itself runs on the pool's worker domains. Results
    stream back as they form: one [frontier] line per traversal round,
    then the final [result].

    State shared across requests: the {!Store} (per-platform evaluation
    caches + estimator band memos, disk-backed), checkpointed every
    [checkpoint_every] seconds from a dedicated background thread — never
    the scheduling/accept path, so a large-store checkpoint cannot stall
    job turns — and once more on graceful shutdown. {!stop} only flips an
    atomic — safe from a signal handler — and the accept loop (select with
    a short timeout) notices it within a beat, drains running searches,
    checkpoints, and returns. *)

open Scalehls
module Json = Obs.Json

type t = {
  socket_path : string;
  store : Store.t;
  pool : Parpool.t;
  sched : Scheduler.t;
  registry : Jobs.t;
  stop_flag : bool Atomic.t;
  checkpoint_every : float;
  metrics_port : int;  (** [> 0]: serve Prometheus text over HTTP on localhost *)
  start_ns : int64;
  last_ckpt_ns : int64 Atomic.t;  (** completion time of the last checkpoint *)
  last_ckpt_duration_s : float Atomic.t;  (** [-1.] until a checkpoint ran *)
  ckpt_in_progress : bool Atomic.t;  (** a [Store.save] is running right now *)
}

(* Refresh the "serve" registry's health gauges from the live server state.
   Runs as a pull collector at every metrics export (scrape, snapshot,
   summary), so readings are scrape-time-fresh without any instrumentation
   on the hot paths. Stops updating once the server is told to stop (the
   pool is shut down on the way out; stale last values are fine). *)
let publish_gauges t =
  if not (Atomic.get t.stop_flag) then begin
    let open Obs.Metrics in
    let reg = registry "serve" in
    let queued, running, done_, failed = Jobs.counts t.registry in
    let evals_active, evals_granted = Scheduler.stats t.sched in
    set (gauge reg "jobs.queued") (float_of_int queued);
    set (gauge reg "jobs.in_flight") (float_of_int running);
    set (gauge reg "jobs.done") (float_of_int done_);
    set (gauge reg "jobs.failed") (float_of_int failed);
    (* Point-granular queue: evaluations waiting for a worker, across all
       concurrent searches' streams. *)
    set (gauge reg "queue.depth") (float_of_int (Parpool.queued t.pool));
    set (gauge reg "queue.evals_active") (float_of_int evals_active);
    counter_set (counter reg "queue.evals_granted") (float_of_int evals_granted);
    set (gauge reg "checkpoint_in_progress")
      (if Atomic.get t.ckpt_in_progress then 1. else 0.);
    let evals, hits, misses = Store.eval_stats t.store in
    set (gauge reg "store.evals") (float_of_int evals);
    set (gauge reg "store.eval_hit_rate")
      (let total = hits + misses in
       if total = 0 then 0. else float_of_int hits /. float_of_int total);
    let memos = Store.memos t.store in
    set (gauge reg "store.bands") (float_of_int (Estimator.memo_length memos));
    set (gauge reg "store.band_hit_rate")
      (let h = Estimator.memo_hits memos and m = Estimator.memo_misses memos in
       let total = h + m in
       if total = 0 then 0. else float_of_int h /. float_of_int total);
    List.iter
      (fun (i, f) ->
        set (gauge ~labels:[ ("worker", string_of_int i) ] reg "worker.busy_fraction") f)
      (Parpool.busy_fractions t.pool);
    set (gauge reg "uptime_s") (Obs.Clock.since_s t.start_ns);
    set (gauge reg "checkpoint_age_s") (Obs.Clock.since_s (Atomic.get t.last_ckpt_ns));
    let d = Atomic.get t.last_ckpt_duration_s in
    if d >= 0. then set (gauge reg "checkpoint_duration_s") d
  end

(** [create ~socket ()] prepares a server (no socket is bound until {!run}).
    [store_path] enables persistence; [jobs] sizes the shared worker pool
    ([0] = one per core); [checkpoint_every] is the periodic-checkpoint
    interval in seconds ([0.] disables periodic checkpoints — shutdown still
    saves); [metrics_port > 0] additionally serves the Prometheus exposition
    over HTTP on [127.0.0.1:port] (the socket [metrics] request works
    regardless). *)
let create ~socket ?store_path ?(jobs = 0) ?(checkpoint_every = 60.)
    ?(metrics_port = 0) () =
  let now = Obs.Clock.now_ns () in
  let t =
    {
      socket_path = socket;
      store = Store.open_ ?path:store_path ();
      pool = Parpool.create ~jobs ();
      sched = Scheduler.create ();
      registry = Jobs.create ();
      stop_flag = Atomic.make false;
      checkpoint_every;
      metrics_port;
      start_ns = now;
      last_ckpt_ns = Atomic.make now;
      last_ckpt_duration_s = Atomic.make (-1.);
      ckpt_in_progress = Atomic.make false;
    }
  in
  Obs.Metrics.register_collector (fun () -> publish_gauges t);
  t

let store t = t.store

(** Request shutdown. Async-signal-safe (a single atomic store): install it
    directly as the SIGINT/SIGTERM handler. *)
let stop t = Atomic.set t.stop_flag true

let checkpoint_seconds =
  Obs.Metrics.histogram (Obs.Metrics.registry "serve") "checkpoint_seconds"

(* Every store checkpoint goes through here so age/duration telemetry can't
   drift from reality: times the save, stamps the completion, feeds the
   duration histogram. [ckpt_in_progress] brackets the save so [status] can
   report a running checkpoint (periodic ones happen off-thread). *)
let checkpoint t =
  Atomic.set t.ckpt_in_progress true;
  Fun.protect
    ~finally:(fun () -> Atomic.set t.ckpt_in_progress false)
    (fun () ->
      let records, secs =
        Obs.Clock.time_s (fun () ->
            Obs.Trace.with_span ~cat:"serve" "serve.checkpoint" (fun () ->
                Store.save t.store))
      in
      Atomic.set t.last_ckpt_ns (Obs.Clock.now_ns ());
      Atomic.set t.last_ckpt_duration_s secs;
      Obs.Metrics.observe checkpoint_seconds secs;
      records)

let platform_of_name = function
  | "xc7z020" -> Some Vhls.Platform.xc7z020
  | "vu9p" | "vu9p-slr" -> Some Vhls.Platform.vu9p_slr
  | _ -> None

let status_json t =
  let queued, running, done_, failed = Jobs.counts t.registry in
  let evals_active, evals_granted = Scheduler.stats t.sched in
  Protocol.resp "status"
    [
      ( "queue",
        Json.Obj
          [
            ("queued", Json.Int queued);
            ("running", Json.Int running);
            ("done", Json.Int done_);
            ("failed", Json.Int failed);
            ("evals_waiting", Json.Int (Parpool.queued t.pool));
            ("evals_active", Json.Int evals_active);
            ("evals_granted", Json.Int evals_granted);
          ] );
      ("jobs", Jobs.to_status_json t.registry);
      ("store", Store.to_status_json t.store);
      ( "workers",
        Json.List
          (List.map
             (fun (i, f) ->
               Json.Obj
                 [ ("worker", Json.Int i); ("busy_fraction", Json.Float f) ])
             (Parpool.busy_fractions t.pool)) );
      ("uptime_s", Json.Float (Obs.Clock.since_s t.start_ns));
      ( "checkpoint_age_s",
        Json.Float (Obs.Clock.since_s (Atomic.get t.last_ckpt_ns)) );
      ( "checkpoint_duration_s",
        let d = Atomic.get t.last_ckpt_duration_s in
        if d >= 0. then Json.Float d else Json.Null );
      ("checkpoint_in_progress", Json.Bool (Atomic.get t.ckpt_in_progress));
      ("metrics", Obs.Metrics.snapshot ());
    ]

let searches_total ~design ~strategy =
  Obs.Metrics.counter
    ~labels:[ ("design", design); ("strategy", strategy) ]
    (Obs.Metrics.registry "serve") "searches_total"

let run_search t send (design : Protocol.design) (config : Protocol.config) =
  let label = Protocol.design_label design in
  let job = Jobs.submit t.registry ~label in
  (* The job id is the trace identity: every dse.* span this search emits
     carries it, so concurrent searches stay separable in one Chrome trace
     even though they interleave on the same worker domains. *)
  let job_tag = string_of_int job.Jobs.id in
  Obs.Metrics.add (searches_total ~design:label ~strategy:config.Protocol.strategy) 1.;
  send (Protocol.ack ~job_id:job.Jobs.id ~label);
  match
    let src, top =
      match design with
      | Protocol.Kernel { kernel; size } ->
          let k = Models.Polybench.of_name kernel in
          (Models.Polybench.source k ~n:size, Models.Polybench.name k)
      | Protocol.C_source { src; top } -> (src, top)
    in
    let platform =
      match platform_of_name config.Protocol.platform with
      | Some p -> p
      | None ->
          invalid_arg
            (Printf.sprintf "unknown platform %S (xc7z020 | vu9p-slr)"
               config.Protocol.platform)
    in
    let strategy =
      match Qor_ml.strategy_of_name config.Protocol.strategy with
      | Some s -> s
      | None ->
          invalid_arg
            (Printf.sprintf "unknown strategy %S (%s)" config.Protocol.strategy
               (String.concat " | " Qor_ml.strategy_names))
    in
    let ctx = Mir.Ir.Ctx.create () in
    let m = Pipeline.compile_c ctx src in
    Jobs.start t.registry job;
    (* The shared, disk-warmed caches: merging semantics in [Dse.run] keep
       the frontier bit-identical to a cold in-process run. *)
    let cache = Store.cache_for t.store config.Protocol.platform in
    let memos = Store.memos t.store in
    Obs.Clock.time_s (fun () ->
        Dse.run ~samples:config.Protocol.samples
          ~iterations:config.Protocol.iterations ~seed:config.Protocol.seed
          ~symbolic:config.Protocol.symbolic ~window:config.Protocol.window
          ~strategy ~cache ~memos ~pool:t.pool ~job:job_tag
          ~batch_wrap:(fun f -> Scheduler.with_eval ~label:job_tag t.sched f)
          ~queue_wait:(Scheduler.note_wait t.sched)
          ~on_frontier:(fun frontier explored ->
            Jobs.progress t.registry job ~explored
              ~frontier_size:(List.length frontier);
            send (Protocol.frontier_update ~job_id:job.Jobs.id ~explored frontier))
          ctx m ~top ~platform)
  with
  | r, wall_s ->
      Jobs.finish t.registry job;
      send
        (Protocol.search_result ~job_id:job.Jobs.id ~explored:r.Dse.explored
           ~wall_s r)
  | exception e ->
      let msg = Printexc.to_string e in
      Jobs.fail t.registry job msg;
      (try send (Protocol.error msg) with _ -> ())

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let out_lock = Mutex.create () in
  let send j =
    Mutex.lock out_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_lock)
      (fun () ->
        output_string oc (Json.to_string j);
        output_char oc '\n';
        flush oc)
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        match Protocol.request_of_line line with
        | Error msg ->
            send (Protocol.error msg);
            loop ()
        | Ok (Protocol.Search { design; config }) ->
            run_search t send design config;
            loop ()
        | Ok Protocol.Status ->
            send (status_json t);
            loop ()
        | Ok Protocol.Ping ->
            send Protocol.pong;
            loop ()
        | Ok Protocol.Checkpoint ->
            let records = checkpoint t in
            send (Protocol.resp "checkpointed" [ ("records", Json.Int records) ]);
            loop ()
        | Ok Protocol.Metrics ->
            send (Protocol.metrics_response (Obs.Metrics.to_prometheus ()));
            loop ()
        | Ok (Protocol.Trace { job }) ->
            let tag = Json.String (string_of_int job) in
            let events =
              if not (Obs.Trace.enabled ()) then []
              else
                List.filter_map
                  (fun (e : Obs.Trace.event) ->
                    if List.exists (fun (k, v) -> k = "job" && v = tag) e.args
                    then Some (Obs.Trace.event_json e)
                    else None)
                  (Obs.Trace.events ())
            in
            send
              (Protocol.trace_response ~job ~enabled:(Obs.Trace.enabled ())
                 events);
            loop ()
        | Ok Protocol.Shutdown ->
            send (Protocol.resp "stopping" []);
            stop t)
  in
  (try loop () with _ -> ());
  (* [ic] owns the descriptor; closing it closes [oc]'s fd too. *)
  try close_in ic with Sys_error _ -> ()

(* ---- The Prometheus scrape listener ----------------------------------------- *)

(* Minimal HTTP/1.0 responder: any request gets the full text exposition.
   One short-lived connection per scrape (Connection: close) keeps this
   free of keep-alive state; Prometheus is happy with that. *)
let answer_scrape conn =
  let ic = Unix.in_channel_of_descr conn in
  let oc = Unix.out_channel_of_descr conn in
  (try
     (* Drain the request head (request line + headers, up to blank). *)
     let rec drain n =
       if n > 0 then
         match input_line ic with
         | exception (End_of_file | Sys_error _) -> ()
         | line when String.trim line = "" -> ()
         | _ -> drain (n - 1)
     in
     drain 64;
     let body = Obs.Metrics.to_prometheus () in
     output_string oc "HTTP/1.0 200 OK\r\n";
     output_string oc "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
     output_string oc
       (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
     output_string oc "Connection: close\r\n\r\n";
     output_string oc body;
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  try close_in ic with Sys_error _ -> ()

(* Accept loop for [--metrics-port], run on its own thread; polls the stop
   flag like the main loop so shutdown brings it down within a beat. *)
let metrics_listener t port =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 16
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception e ->
      (* A taken port must not take the daemon down — the socket protocol's
         [metrics] request still works. *)
      Logs.warn (fun k ->
          k "scalehls-serve: cannot serve metrics on port %d: %s" port
            (Printexc.to_string e))
  | fd ->
      Logs.app (fun k ->
          k "scalehls-serve: metrics on http://127.0.0.1:%d/metrics" port);
      while not (Atomic.get t.stop_flag) do
        match Unix.select [ fd ] [] [] 0.25 with
        | [ _ ], _, _ -> (
            try
              let conn, _ = Unix.accept fd in
              answer_scrape conn
            with Unix.Unix_error _ -> ())
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Unix.close fd

(** Bind the socket and serve until {!stop} (or a [shutdown] request). On
    the way out: running searches drain (bounded wait), the store is
    checkpointed, the worker pool is shut down, and the socket file is
    removed. Idle connection threads are abandoned — they die with the
    process. *)
let run t =
  (* A client that disconnects mid-stream (Ctrl-C on [--remote]) must not
     take the daemon down: with SIGPIPE ignored, the failed write surfaces
     as EPIPE ([Sys_error]/[Unix_error]), which [run_search]/[handle_conn]
     already treat as end-of-connection. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists t.socket_path then Unix.unlink t.socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX t.socket_path);
  Unix.listen fd 16;
  Logs.app (fun k ->
      k "scalehls-serve: listening on %s (%d worker%s)" t.socket_path
        (Parpool.jobs t.pool)
        (if Parpool.jobs t.pool = 1 then "" else "s"));
  let scrape_thread =
    if t.metrics_port <= 0 then None
    else Some (Thread.create (fun () -> metrics_listener t t.metrics_port) ())
  in
  (* Periodic checkpoints run on their own thread so a slow [Store.save] of
     a large store never stalls the accept loop or any search's turns; the
     atomic tmp+rename inside [Store.save] keeps the on-disk store
     consistent no matter when this fires. Polls the stop flag between
     short sleeps so shutdown brings it down within a beat. *)
  let ckpt_thread =
    if t.checkpoint_every <= 0. then None
    else
      Some
        (Thread.create
           (fun () ->
             let last_ckpt = ref (Obs.Clock.now_ns ()) in
             while not (Atomic.get t.stop_flag) do
               Thread.delay 0.25;
               if
                 (not (Atomic.get t.stop_flag))
                 && Obs.Clock.since_s !last_ckpt >= t.checkpoint_every
               then begin
                 ignore (checkpoint t);
                 last_ckpt := Obs.Clock.now_ns ()
               end
             done)
           ())
  in
  while not (Atomic.get t.stop_flag) do
    (match Unix.select [ fd ] [] [] 0.25 with
    | [ _ ], _, _ -> (
        (* Transient accept failures must not abort the daemon (that would
           skip the drain, the final checkpoint, and the socket unlink):
           a client can vanish between select and accept (ECONNABORTED),
           and idle connections each pin an fd, so EMFILE/ENFILE is
           plausible under load — log, back off briefly, keep serving. *)
        try
          let conn, _ = Unix.accept fd in
          ignore (Thread.create (fun () -> handle_conn t conn) ())
        with
        | Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
        | Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) as e ->
            Logs.warn (fun k ->
                k "scalehls-serve: accept: %s (backing off)"
                  (Printexc.to_string e));
            Thread.delay 0.5
        | Unix.Unix_error _ as e ->
            Logs.warn (fun k ->
                k "scalehls-serve: accept: %s" (Printexc.to_string e)))
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  Unix.close fd;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  (* Bounded drain: let running searches finish so their results reach both
     their clients and the checkpoint. *)
  let deadline = Obs.Clock.now_ns () in
  let rec drain () =
    let queued, running, _, _ = Jobs.counts t.registry in
    if queued + running > 0 && Obs.Clock.since_s deadline < 30. then begin
      Thread.delay 0.1;
      drain ()
    end
  in
  drain ();
  (* Join the checkpoint thread before the final save so the two can't
     overlap on the store file. *)
  Option.iter Thread.join ckpt_thread;
  let records = checkpoint t in
  Logs.app (fun k -> k "scalehls-serve: checkpointed %d records, bye" records);
  Option.iter Thread.join scrape_thread;
  Parpool.shutdown t.pool
