(** Point-granular accounting for concurrent searches sharing one worker
    pool.

    The DSE engine is asynchronous: each search keeps a bounded window of
    point evaluations in flight on its own {!Scalehls.Parpool} stream, and
    the pool's workers dequeue round-robin {e across} streams — so [k]
    concurrent searches already interleave fairly at single-eval
    granularity, with no search able to monopolize the workers and no
    scheduler lock on the submission path. What remains for the daemon is
    accounting, which is this module: every evaluation runs inside
    {!with_eval} (via [Dse.run ~batch_wrap]), which tags it with a
    [serve.turn] trace span carrying the job identity (evals from different
    jobs interleave on the same workers, so spans carry the identity; tids
    do not) and counts concurrently-running evals; {!note_wait} (via
    [Dse.run ~queue_wait]) lands every evaluation's pool-queue latency in
    the [serve.turn_wait_seconds] histogram — the fair-share wait a point
    experiences behind other jobs' points. *)

type t = {
  lock : Mutex.t;
  mutable active : int;  (** evaluations running right now, across jobs *)
  mutable granted : int;  (** evaluations started so far (telemetry) *)
}

let create () = { lock = Mutex.create (); active = 0; granted = 0 }

let wait_seconds =
  Obs.Metrics.histogram (Obs.Metrics.registry "serve") "turn_wait_seconds"

(** Record one evaluation's pool-queue wait (seconds from submission to a
    worker picking it up). Called on the dequeuing worker — thread-safe. *)
let note_wait _t secs = Obs.Metrics.observe wait_seconds secs

(** Run one point evaluation [f], counted and span-tagged. Runs on the pool
    worker that dequeued the point; evaluations from any number of jobs
    proceed concurrently — this deliberately excludes nothing (fairness
    lives in the pool's cross-stream round-robin dequeue). [?label] names
    the owning search in the [serve.turn] span. *)
let with_eval ?label t f =
  Mutex.lock t.lock;
  t.active <- t.active + 1;
  t.granted <- t.granted + 1;
  Mutex.unlock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      Mutex.unlock t.lock)
    (fun () ->
      Obs.Trace.with_span ~cat:"serve"
        ~args:
          (match label with
          | Some l -> [ ("job", Obs.Json.String l) ]
          | None -> [])
        "serve.turn" f)

(** (evaluations running now, evaluations granted so far). *)
let stats t =
  Mutex.lock t.lock;
  let r = (t.active, t.granted) in
  Mutex.unlock t.lock;
  r
