(** Fair round-robin scheduling of concurrent searches onto one shared
    worker pool.

    The DSE engine is batch-synchronous: each round submits one batch to the
    {!Scalehls.Parpool} and blocks for the results. The scheduler exploits
    exactly that grain — every search wraps its pool submissions in
    {!with_turn} (via [Dse.run ~batch_wrap]), and turns are granted in FIFO
    order of request. A search that just finished a batch re-queues behind
    every other waiting search before its next one, so [k] concurrent
    searches interleave round-robin at batch granularity: the pool is never
    oversubscribed (one batch owns all workers at a time, keeping per-batch
    wall time and worker utilization as in a solo run) and no search starves.
    Searches, not points, are the unit of concurrency — matching the service
    model where throughput comes from many independent requests. *)

type t = {
  lock : Mutex.t;
  turn_free : Condition.t;
  mutable waiting : int list;  (** ticket queue, FIFO (head holds the floor next) *)
  mutable active : int option;  (** ticket currently holding the pool *)
  mutable next_ticket : int;
  mutable granted : int;  (** turns granted so far (telemetry) *)
}

let create () =
  {
    lock = Mutex.create ();
    turn_free = Condition.create ();
    waiting = [];
    active = None;
    next_ticket = 0;
    granted = 0;
  }

let wait_seconds =
  Obs.Metrics.histogram (Obs.Metrics.registry "serve") "turn_wait_seconds"

(** Run [f] while holding the pool: blocks until every earlier requester has
    had its turn, runs [f], releases. Reentrant calls would self-deadlock —
    the engine never nests batches. [?label] names the search in the
    [serve.turn] trace span (jobs interleave on the same pool, so spans
    carry the identity; tids do not); the time spent queued behind other
    searches lands in the [serve.turn_wait_seconds] histogram either way. *)
let with_turn ?label t f =
  let t0 = Obs.Clock.now_ns () in
  Mutex.lock t.lock;
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  t.waiting <- t.waiting @ [ ticket ];
  while not (t.active = None && List.hd t.waiting = ticket) do
    Condition.wait t.turn_free t.lock
  done;
  t.waiting <- List.tl t.waiting;
  t.active <- Some ticket;
  t.granted <- t.granted + 1;
  Mutex.unlock t.lock;
  Obs.Metrics.observe wait_seconds (Obs.Clock.since_s t0);
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      t.active <- None;
      Condition.broadcast t.turn_free;
      Mutex.unlock t.lock)
    (fun () ->
      Obs.Trace.with_span ~cat:"serve"
        ~args:
          (match label with
          | Some l -> [ ("job", Obs.Json.String l) ]
          | None -> [])
        "serve.turn" f)

(** (waiting searches, a turn is active, turns granted so far). *)
let stats t =
  Mutex.lock t.lock;
  let r = (List.length t.waiting, t.active <> None, t.granted) in
  Mutex.unlock t.lock;
  r
