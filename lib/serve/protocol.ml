(** The wire protocol: line-delimited JSON over a Unix-domain socket. Every
    request is one JSON object on one line with a ["req"] discriminator;
    every response is one JSON object on one line with a ["resp"]
    discriminator. A [search] request streams: an [ack], then a [frontier]
    update per traversal round, then one final [result] (or [error]). The
    other requests are single-shot. This module is pure parse/build — the
    socket loop lives in {!Server}.

    Requests:
    {v
    {"req":"search","design":{"kernel":"gemm","size":64},
     "config":{"samples":32,"iterations":80,"seed":42,
               "symbolic":true,"platform":"xc7z020"}}
    {"req":"search","design":{"c":"void f(...){...}","top":"f"},...}
    {"req":"status"} {"req":"ping"} {"req":"checkpoint"} {"req":"shutdown"}
    {"req":"metrics"} {"req":"trace","job":3}
    v}

    [metrics] returns the daemon's Prometheus text exposition (for ad-hoc
    scraping over the socket; [--metrics-port] serves the same body over
    HTTP). [trace] returns the daemon-side spans recorded for one job, so a
    remote client can merge the server's half of the work into its own
    Chrome trace.

    There is no IR parser in this repository, so designs are either a named
    PolyBench kernel with a problem size or HLS-C source compiled by the
    frontend — not MLIR text. Config fields are optional and default to the
    [scalehls-dse] CLI defaults, so a remote search with the same flags
    reproduces the in-process run bit-for-bit. *)

open Scalehls
module Json = Obs.Json

type design =
  | Kernel of { kernel : string; size : int }
  | C_source of { src : string; top : string }

type config = {
  samples : int;
  iterations : int;
  seed : int;
  symbolic : bool;
  platform : string;
  strategy : string;  (** search strategy name: "exhaustive" | "surrogate" *)
  window : int;  (** executor in-flight window; 0 = legacy batch rounds *)
}

(* Defaults mirror the scalehls-dse CLI (not the engine's internal
   defaults): a remote request and a local run with no flags agree. *)
let default_config =
  {
    samples = 32;
    iterations = 80;
    seed = 42;
    symbolic = true;
    platform = "xc7z020";
    strategy = "exhaustive";
    window = Dse.default_window;
  }

type request =
  | Search of { design : design; config : config }
  | Status
  | Ping
  | Checkpoint
  | Metrics
  | Trace of { job : int }
  | Shutdown

let design_label = function
  | Kernel { kernel; size } -> Printf.sprintf "%s-%d" kernel size
  | C_source { top; _ } -> top

let design_of_json j =
  match (Json.member "kernel" j, Json.member "c" j) with
  | Some k, None ->
      let size =
        match Json.member "size" j with Some s -> Codec.to_int s | None -> 64
      in
      Kernel { kernel = Codec.to_string k; size }
  | None, Some src ->
      C_source
        {
          src = Codec.to_string src;
          top = Codec.to_string (Codec.member "top" j);
        }
  | _ -> raise (Codec.Malformed "design needs either \"kernel\" or \"c\"")

let config_of_json = function
  | None -> default_config
  | Some j ->
      let int k d = match Json.member k j with Some v -> Codec.to_int v | None -> d in
      let bool k d = match Json.member k j with Some v -> Codec.to_bool v | None -> d in
      let str k d = match Json.member k j with Some v -> Codec.to_string v | None -> d in
      {
        samples = int "samples" default_config.samples;
        iterations = int "iterations" default_config.iterations;
        seed = int "seed" default_config.seed;
        symbolic = bool "symbolic" default_config.symbolic;
        platform = str "platform" default_config.platform;
        strategy = str "strategy" default_config.strategy;
        window = int "window" default_config.window;
      }

(* ---- Client-side request builders (the [scalehls-dse --remote] mode) -------- *)

let design_to_json = function
  | Kernel { kernel; size } ->
      Json.Obj [ ("kernel", Json.String kernel); ("size", Json.Int size) ]
  | C_source { src; top } ->
      Json.Obj [ ("c", Json.String src); ("top", Json.String top) ]

let config_to_json c =
  Json.Obj
    [
      ("samples", Json.Int c.samples);
      ("iterations", Json.Int c.iterations);
      ("seed", Json.Int c.seed);
      ("symbolic", Json.Bool c.symbolic);
      ("platform", Json.String c.platform);
      ("strategy", Json.String c.strategy);
      ("window", Json.Int c.window);
    ]

let search_request ~design ~config =
  Json.Obj
    [
      ("req", Json.String "search");
      ("design", design_to_json design);
      ("config", config_to_json config);
    ]

let status_request = Json.Obj [ ("req", Json.String "status") ]
let metrics_request = Json.Obj [ ("req", Json.String "metrics") ]

let trace_request ~job =
  Json.Obj [ ("req", Json.String "trace"); ("job", Json.Int job) ]

let shutdown_request = Json.Obj [ ("req", Json.String "shutdown") ]

(** Parse one request line. [Error] carries a client-facing message. *)
let request_of_line line : (request, string) result =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "malformed JSON: %s" msg)
  | Ok j -> (
      match
        match Json.member "req" j with
        | Some (Json.String "search") ->
            Search
              {
                design = design_of_json (Codec.member "design" j);
                config = config_of_json (Json.member "config" j);
              }
        | Some (Json.String "status") -> Status
        | Some (Json.String "ping") -> Ping
        | Some (Json.String "checkpoint") -> Checkpoint
        | Some (Json.String "metrics") -> Metrics
        | Some (Json.String "trace") ->
            Trace { job = Codec.to_int (Codec.member "job" j) }
        | Some (Json.String "shutdown") -> Shutdown
        | Some (Json.String other) ->
            raise (Codec.Malformed (Printf.sprintf "unknown request %S" other))
        | _ -> raise (Codec.Malformed "missing \"req\" field")
      with
      | req -> Ok req
      | exception Codec.Malformed msg -> Error msg)

(* ---- Response builders ------------------------------------------------------- *)

let resp kind fields = Json.Obj (("resp", Json.String kind) :: fields)
let pong = resp "pong" []
let error msg = resp "error" [ ("message", Json.String msg) ]

let ack ~job_id ~label =
  resp "ack" [ ("job", Json.Int job_id); ("label", Json.String label) ]

(** The Prometheus text exposition, carried as one JSON string field. *)
let metrics_response body = resp "metrics" [ ("prometheus", Json.String body) ]

(** The daemon-side Chrome trace events recorded for [job] (already in
    trace_event JSON form). [enabled=false] tells the client the daemon ran
    without [--trace], so an empty list means "not recorded", not "no
    work". *)
let trace_response ~job ~enabled events =
  resp "trace"
    [
      ("job", Json.Int job);
      ("enabled", Json.Bool enabled);
      ("events", Json.List events);
    ]

(** One streamed frontier update: the current Pareto frontier (latency-
    increasing) and how many points have been explored so far. *)
let frontier_update ~job_id ~explored frontier =
  resp "frontier"
    [
      ("job", Json.Int job_id);
      ("explored", Json.Int explored);
      ("points", Json.List (List.map Codec.evaluated_to_json frontier));
    ]

let search_result ~job_id ~explored ~wall_s (r : Dse.result) =
  let s = r.Dse.stats in
  resp "result"
    [
      ("job", Json.Int job_id);
      ("explored", Json.Int explored);
      ("wall_s", Json.Float wall_s);
      ( "best",
        match r.Dse.best with
        | Some b -> Codec.evaluated_to_json b
        | None -> Json.Null );
      ("pareto", Json.List (List.map Codec.evaluated_to_json r.Dse.pareto));
      ( "stats",
        Json.Obj
          [
            ("cache_hits", Json.Int s.Dse.cache_hits);
            ("cache_misses", Json.Int s.Dse.cache_misses);
            ("est_memo_hits", Json.Int s.Dse.est_memo_hits);
            ("est_memo_misses", Json.Int s.Dse.est_memo_misses);
            ("symbolic_points", Json.Int s.Dse.symbolic_points);
            ("fallback_points", Json.Int s.Dse.fallback_points);
            ("strategy", Json.String s.Dse.strategy);
            ( "strategy_counters",
              Json.Obj
                (List.map
                   (fun (k, v) -> (k, Json.Int v))
                   s.Dse.strategy_counters) );
          ] );
    ]
