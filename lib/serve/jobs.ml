(** The job registry: one record per submitted search, driving the [status]
    endpoint. Connection threads update their own job; status readers
    snapshot under the lock. Finished jobs are retained (bounded) so a
    client can see recent history. *)

module Json = Obs.Json

type state = Queued | Running | Done | Failed of string

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

type job = {
  id : int;
  label : string;  (** e.g. ["gemm-64"] or the top function name *)
  mutable state : state;
  mutable explored : int;  (** points merged so far (streamed progress) *)
  mutable frontier_size : int;
  submitted_ns : int64;
  mutable wall_s : float;  (** running: elapsed so far; finished: total *)
}

type t = {
  lock : Mutex.t;
  mutable jobs : job list;  (** newest first *)
  mutable next_id : int;
  keep : int;  (** max finished jobs retained *)
}

let create ?(keep = 64) () =
  { lock = Mutex.create (); jobs = []; next_id = 0; keep }

let finished j = match j.state with Done | Failed _ -> true | _ -> false

let submit t ~label =
  Mutex.lock t.lock;
  let j =
    {
      id = t.next_id;
      label;
      state = Queued;
      explored = 0;
      frontier_size = 0;
      submitted_ns = Obs.Clock.now_ns ();
      wall_s = 0.;
    }
  in
  t.next_id <- t.next_id + 1;
  let fresh, old = List.partition (fun j -> not (finished j)) t.jobs in
  t.jobs <- (j :: fresh) @ List.filteri (fun i _ -> i < t.keep) old;
  Mutex.unlock t.lock;
  j

(* Field writes are single-word stores under the registry lock so status
   snapshots never observe a half-updated record. *)
let update t j f =
  Mutex.lock t.lock;
  f j;
  j.wall_s <- Obs.Clock.since_s j.submitted_ns;
  Mutex.unlock t.lock

let start t j = update t j (fun j -> j.state <- Running)
let finish t j = update t j (fun j -> j.state <- Done)
let fail t j msg = update t j (fun j -> j.state <- Failed msg)

let progress t j ~explored ~frontier_size =
  update t j (fun j ->
      j.explored <- explored;
      j.frontier_size <- frontier_size)

let counts t =
  Mutex.lock t.lock;
  let count p = List.length (List.filter p t.jobs) in
  let r =
    ( count (fun j -> j.state = Queued),
      count (fun j -> j.state = Running),
      count (fun j -> j.state = Done),
      count (fun j -> match j.state with Failed _ -> true | _ -> false) )
  in
  Mutex.unlock t.lock;
  r

let to_status_json t =
  Mutex.lock t.lock;
  let jobs = t.jobs in
  let rows =
    List.map
      (fun j ->
        Json.Obj
          ([
             ("id", Json.Int j.id);
             ("label", Json.String j.label);
             ("state", Json.String (state_to_string j.state));
             ("explored", Json.Int j.explored);
             ("frontier_size", Json.Int j.frontier_size);
             ("wall_s", Json.Float j.wall_s);
           ]
          @
          match j.state with
          | Failed msg -> [ ("error", Json.String msg) ]
          | _ -> []))
      jobs
  in
  Mutex.unlock t.lock;
  Json.List rows
