(** The disk-backed fingerprint cache: persists the DSE evaluation cache and
    the estimator's band memos across daemon restarts, so a design (or a
    design sharing band shapes with one) that was ever searched starts hot.

    On-disk format: JSON Lines. The first line is a header
    [{"magic":"scalehls-store","version":N}]; every following line is one
    record, [{"t":"eval","platform":P,"k":{...},"v":...}] for an
    evaluation-cache entry or [{"t":"band","k":"<fp-hex>","v":{...}}] for a
    band summary. Evaluation entries are segregated per platform name — the
    cache key does not encode the platform, but feasibility does depend on
    it — while band summaries are platform-independent and shared.

    Loading is corruption-tolerant by construction: a version or magic
    mismatch discards the whole file (the service starts cold, never
    migrates), and any undecodable line — truncated tail from a killed
    writer, stray garbage — is skipped and counted, keeping every record
    that did survive. Saving goes through a temp file and rename, so a crash
    mid-checkpoint leaves the previous store intact. *)

open Scalehls
module Json = Obs.Json

let magic = "scalehls-store"
let version = 1

type t = {
  path : string option;  (** [None] = in-memory only (no persistence) *)
  lock : Mutex.t;  (** serializes checkpoints and the platform-cache table *)
  caches : (string, Dse.eval_cache) Hashtbl.t;  (** per platform name *)
  memos : Estimator.memos;
  mutable loaded_evals : int;  (** records restored by the initial load *)
  mutable loaded_bands : int;
  mutable skipped_lines : int;  (** undecodable lines ignored by the load *)
  mutable cold_reason : string option;
      (** why the load started cold ([None] = warm or no file) *)
}

(** The evaluation cache for [platform], created on first use. Safe from any
    thread. *)
let cache_for t platform =
  Mutex.lock t.lock;
  let c =
    match Hashtbl.find_opt t.caches platform with
    | Some c -> c
    | None ->
        let c : Dse.eval_cache = Eval_cache.create () in
        Hashtbl.replace t.caches platform c;
        c
  in
  Mutex.unlock t.lock;
  c

let memos t = t.memos

let load_line t line =
  match Json.of_string line with
  | Error _ -> t.skipped_lines <- t.skipped_lines + 1
  | Ok j -> (
      match
        match Json.member "t" j with
        | Some (Json.String "eval") ->
            let platform = Codec.to_string (Codec.member "platform" j) in
            let k = Codec.eval_key_of_json (Codec.member "k" j) in
            let v = Codec.evaluated_opt_of_json (Codec.member "v" j) in
            Eval_cache.add (cache_for t platform) k v;
            t.loaded_evals <- t.loaded_evals + 1
        | Some (Json.String "band") ->
            let k = Codec.fp_of_json (Codec.member "k" j) in
            let v = Codec.band_summary_of_json (Codec.member "v" j) in
            Estimator.import_bands t.memos [ (k, v) ];
            t.loaded_bands <- t.loaded_bands + 1
        | _ -> raise (Codec.Malformed "unknown record type")
      with
      | () -> ()
      | exception Codec.Malformed _ -> t.skipped_lines <- t.skipped_lines + 1)

let load_file t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file -> t.cold_reason <- Some "empty store file"
      | header -> (
          match Json.of_string header with
          | Ok j
            when Json.member "magic" j = Some (Json.String magic)
                 && Json.member "version" j = Some (Json.Int version) -> (
              let rec lines () =
                match input_line ic with
                | line ->
                    load_line t line;
                    lines ()
                | exception End_of_file -> ()
              in
              lines ())
          | Ok _ -> t.cold_reason <- Some "version or magic mismatch"
          | Error _ -> t.cold_reason <- Some "unreadable header"))

(** Open a store. With [?path] pointing at an existing file, its records are
    loaded (tolerantly — see the header comment); otherwise, or with no
    [path], the store starts cold. *)
let open_ ?path () =
  let t =
    {
      path;
      lock = Mutex.create ();
      caches = Hashtbl.create 4;
      memos = Estimator.create_memos ();
      loaded_evals = 0;
      loaded_bands = 0;
      skipped_lines = 0;
      cold_reason = None;
    }
  in
  (match path with
  | Some p when Sys.file_exists p -> (
      try load_file t p
      with Sys_error msg -> t.cold_reason <- Some msg)
  | _ -> ());
  t

(* Records are written in sorted key order so identical contents produce
   identical files (useful for tests and for diffing checkpoints). *)
let rows t =
  Mutex.lock t.lock;
  let caches = Hashtbl.fold (fun p c acc -> (p, c) :: acc) t.caches [] in
  Mutex.unlock t.lock;
  let evals =
    List.concat_map
      (fun (platform, cache) ->
        List.map
          (fun (k, v) ->
            Json.Obj
              [
                ("t", Json.String "eval");
                ("platform", Json.String platform);
                ("k", Codec.eval_key_to_json k);
                ("v", Codec.evaluated_opt_to_json v);
              ])
          (List.sort compare (Eval_cache.bindings cache)))
      (* Sort on the platform key only: [Eval_cache.t] holds a [Mutex.t],
         which polymorphic compare would reject if it ever reached it. *)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) caches)
  in
  let bands =
    List.map
      (fun (k, v) ->
        Json.Obj
          [
            ("t", Json.String "band");
            ("k", Codec.fp_to_json k);
            ("v", Codec.band_summary_to_json v);
          ])
      (List.sort compare (Estimator.export_bands t.memos))
  in
  evals @ bands

(** Checkpoint the store to disk (no-op for an in-memory store). Atomic:
    writes [<path>.tmp] and renames over [path]. Returns the record count
    written. *)
let save t =
  match t.path with
  | None -> 0
  | Some path ->
      (* Snapshot first ([rows] takes the lock itself), then hold the lock
         only around the file write so concurrent checkpoints serialize. *)
      let rows = rows t in
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          let tmp = path ^ ".tmp" in
          let oc = open_out tmp in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc
                (Json.to_string
                   (Json.Obj
                      [
                        ("magic", Json.String magic);
                        ("version", Json.Int version);
                      ]));
              output_char oc '\n';
              List.iter
                (fun row ->
                  output_string oc (Json.to_string row);
                  output_char oc '\n')
                rows);
          Sys.rename tmp path;
          List.length rows)

(* ---- Introspection ----------------------------------------------------------- *)

let eval_stats t =
  Mutex.lock t.lock;
  let caches = Hashtbl.fold (fun _ c acc -> c :: acc) t.caches [] in
  Mutex.unlock t.lock;
  List.fold_left
    (fun (len, hits, misses) c ->
      (len + Eval_cache.length c, hits + Eval_cache.hits c, misses + Eval_cache.misses c))
    (0, 0, 0) caches

let to_status_json t =
  let evals, eval_hits, eval_misses = eval_stats t in
  Json.Obj
    [
      ( "path",
        match t.path with Some p -> Json.String p | None -> Json.Null );
      ("evals", Json.Int evals);
      ("bands", Json.Int (Estimator.memo_length t.memos));
      ("eval_hits", Json.Int eval_hits);
      ("eval_misses", Json.Int eval_misses);
      ("band_hits", Json.Int (Estimator.memo_hits t.memos));
      ("band_misses", Json.Int (Estimator.memo_misses t.memos));
      ("loaded_evals", Json.Int t.loaded_evals);
      ("loaded_bands", Json.Int t.loaded_bands);
      ("skipped_lines", Json.Int t.skipped_lines);
      ( "cold_reason",
        match t.cold_reason with Some r -> Json.String r | None -> Json.Null );
    ]
