(** JSON codecs for the service protocol and the persistent store: design
    points, estimates, evaluated records, estimator band summaries, and the
    evaluation-cache keys. Decoders raise {!Malformed} on any shape mismatch
    — callers (the store loader, the request dispatcher) catch it and treat
    the input as corrupt rather than crash. *)

open Scalehls
open Vhls
module Json = Obs.Json

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let member key j =
  match Json.member key j with
  | Some v -> v
  | None -> fail "missing field %S" key

let to_int = function
  | Json.Int i -> i
  | Json.Float f when Float.is_integer f -> int_of_float f
  | _ -> fail "expected an integer"

let to_bool = function Json.Bool b -> b | _ -> fail "expected a bool"
let to_string = function Json.String s -> s | _ -> fail "expected a string"
let to_list = function Json.List l -> l | _ -> fail "expected a list"
let int_field k j = to_int (member k j)

let int_list_to_json l = Json.List (List.map (fun i -> Json.Int i) l)
let int_list_of_json j = List.map to_int (to_list j)

(* Fingerprints travel as the 16-hex-digit form {!Mir.Fingerprint.to_hex}
   prints; parsing goes through the unsigned 0x reading so the full int64
   range round-trips. *)
let fp_to_json fp = Json.String (Mir.Fingerprint.to_hex fp)

let fp_of_json j =
  let s = to_string j in
  match Int64.of_string_opt ("0x" ^ s) with
  | Some fp -> fp
  | None -> fail "bad fingerprint %S" s

(* ---- Design points and evaluations ---------------------------------------- *)

let point_to_json (p : Dse.point) =
  Json.Obj
    [
      ("lp", Json.Bool p.Dse.lp);
      ("rvb", Json.Bool p.Dse.rvb);
      ("perm", int_list_to_json p.Dse.perm);
      ("tiles", int_list_to_json p.Dse.tiles);
      ("ii", Json.Int p.Dse.target_ii);
    ]

let point_of_json j =
  {
    Dse.lp = to_bool (member "lp" j);
    rvb = to_bool (member "rvb" j);
    perm = int_list_of_json (member "perm" j);
    tiles = int_list_of_json (member "tiles" j);
    target_ii = int_field "ii" j;
  }

let usage_to_json (u : Platform.usage) =
  Json.Obj
    [
      ("bram18", Json.Int u.Platform.u_bram18);
      ("dsp", Json.Int u.Platform.u_dsp);
      ("lut", Json.Int u.Platform.u_lut);
      ("ff", Json.Int u.Platform.u_ff);
      ("bits", Json.Int u.Platform.u_bits);
    ]

let usage_of_json j =
  {
    Platform.u_bram18 = int_field "bram18" j;
    u_dsp = int_field "dsp" j;
    u_lut = int_field "lut" j;
    u_ff = int_field "ff" j;
    u_bits = int_field "bits" j;
  }

let estimate_to_json (e : Estimator.estimate) =
  Json.Obj
    [
      ("latency", Json.Int e.Estimator.latency);
      ("interval", Json.Int e.Estimator.interval);
      ("usage", usage_to_json e.Estimator.usage);
    ]

let estimate_of_json j =
  {
    Estimator.latency = int_field "latency" j;
    interval = int_field "interval" j;
    usage = usage_of_json (member "usage" j);
  }

let evaluated_to_json (ev : Dse.evaluated) =
  Json.Obj
    [
      ("point", point_to_json ev.Dse.point);
      ("estimate", estimate_to_json ev.Dse.estimate);
      ("feasible", Json.Bool ev.Dse.feasible);
    ]

let evaluated_of_json j =
  {
    Dse.point = point_of_json (member "point" j);
    estimate = estimate_of_json (member "estimate" j);
    feasible = to_bool (member "feasible" j);
  }

(** The evaluation-cache value: [Null] encodes an inapplicable point. *)
let evaluated_opt_to_json = function
  | None -> Json.Null
  | Some ev -> evaluated_to_json ev

let evaluated_opt_of_json = function
  | Json.Null -> None
  | j -> Some (evaluated_of_json j)

(** An evaluation-cache key, {!Dse.cache_key}'s
    (pre-module fingerprint, canonical perm, canonical tiles, target II). *)
let eval_key_to_json ((fp, perm, tiles, ii) : int64 * int list * int list * int) =
  Json.Obj
    [
      ("fp", fp_to_json fp);
      ("perm", int_list_to_json perm);
      ("tiles", int_list_to_json tiles);
      ("ii", Json.Int ii);
    ]

let eval_key_of_json j =
  ( fp_of_json (member "fp" j),
    int_list_of_json (member "perm" j),
    int_list_of_json (member "tiles" j),
    int_field "ii" j )

(* ---- Estimator band summaries ---------------------------------------------- *)

let band_summary_to_json (s : Estimator.band_summary) =
  Json.Obj
    [
      ("ii_base", Json.Int s.Estimator.bs_ii_base);
      ("iter_lat", Json.Int s.Estimator.bs_iter_lat);
      ("trip", Json.Int s.Estimator.bs_total_trip);
      ( "fu",
        Json.List
          (List.map
             (fun (op, n) -> Json.List [ Json.String op; Json.Int n ])
             s.Estimator.bs_fu_counts) );
    ]

let band_summary_of_json j =
  {
    Estimator.bs_ii_base = int_field "ii_base" j;
    bs_iter_lat = int_field "iter_lat" j;
    bs_total_trip = int_field "trip" j;
    bs_fu_counts =
      List.map
        (fun pair ->
          match to_list pair with
          | [ op; n ] -> (to_string op, to_int n)
          | _ -> fail "bad fu pair")
        (to_list (member "fu" j));
  }
