(** Block-level dependency-graph construction and ASAP/ALAP scheduling shared
    by the virtual synthesizer. Nodes are the ops of one block (composite ops
    — loops, ifs, calls — appear as single nodes whose delay is their
    recursively computed latency); edges are SSA def–use plus conservative
    memory ordering (same-memref accesses are ordered unless both are
    reads). *)

open Mir
open Dialects

type node = {
  idx : int;
  op : Ir.op;
  delay : int;
  accesses : (int * bool) list;  (** (memref vid, is_store) inside the node *)
}

type graph = { nodes : node array; preds : (int * int) list array }
(** [preds.(j)] = [(i, w)]: node j must start at least [w] cycles after node i
    starts. *)

let node_accesses (o : Ir.op) =
  let acc = ref [] in
  Walk.iter_op
    (fun x ->
      if Memref.is_access x then
        acc := ((Memref.accessed_memref x).Ir.vid, Memref.is_store x) :: !acc)
    o;
  !acc

(** Build the dependency graph of [ops], with composite delays supplied by
    [delay_of]. *)
let build ~delay_of (ops : Ir.op list) : graph =
  let nodes =
    Array.of_list
      (List.mapi
         (fun idx op -> { idx; op; delay = delay_of op; accesses = node_accesses op })
         ops)
  in
  let n = Array.length nodes in
  let preds = Array.make n [] in
  (* def-use edges: producer of any free value used by node j. *)
  let producer : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nd ->
      List.iter
        (fun (r : Ir.value) -> Hashtbl.replace producer r.Ir.vid nd.idx)
        nd.op.Ir.results)
    nodes;
  Array.iter
    (fun nd ->
      Walk.iter_free_values
        (fun (v : Ir.value) ->
          match Hashtbl.find_opt producer v.Ir.vid with
          | Some i when i <> nd.idx -> preds.(nd.idx) <- (i, nodes.(i).delay) :: preds.(nd.idx)
          | _ -> ())
        nd.op)
    nodes;
  (* Memory ordering edges between nodes touching the same memref, at least
     one writing — built per memref as last-store / reads-since-store chains
     instead of the all-pairs conflict scan. The chain edges are a subset of
     the all-pairs edges, and every omitted edge (i, j) is dominated by a
     chain path i -> ... -> j of total weight >= delay(i) (delays are
     non-negative), so ASAP/ALAP start times — hence latency and FU
     concurrency — are exactly those of the full conflict graph. *)
  let last_store : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let reads_since : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  for j = 0 to n - 1 do
    (* Aggregate node j's accesses into per-memref read/write flags first:
       composite nodes (loops) carry one entry per contained access. *)
    let flags : (int, bool ref * bool ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (m, st) ->
        let r, w =
          match Hashtbl.find_opt flags m with
          | Some rw -> rw
          | None ->
              let rw = (ref false, ref false) in
              Hashtbl.replace flags m rw;
              rw
        in
        if st then w := true else r := true)
      nodes.(j).accesses;
    Hashtbl.iter
      (fun m (r, w) ->
        let add i =
          if i <> j then preds.(j) <- (i, nodes.(i).delay) :: preds.(j)
        in
        (match Hashtbl.find_opt last_store m with Some i -> add i | None -> ());
        if !w then begin
          List.iter add
            (Option.value ~default:[] (Hashtbl.find_opt reads_since m));
          Hashtbl.replace last_store m j;
          Hashtbl.replace reads_since m []
        end
        else if !r then
          Hashtbl.replace reads_since m
            (j :: Option.value ~default:[] (Hashtbl.find_opt reads_since m)))
      flags
  done;
  { nodes; preds }

(** ASAP start times (longest path from sources). *)
let asap (g : graph) =
  let n = Array.length g.nodes in
  let t = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter (fun (i, w) -> t.(j) <- max t.(j) (t.(i) + w)) g.preds.(j)
  done;
  t

(** Critical-path latency of the block (max finish time). *)
let latency (g : graph) =
  let t = asap g in
  Array.fold_left max 0 (Array.mapi (fun i ti -> ti + g.nodes.(i).delay) t)

(** ALAP start times for a given overall deadline (the paper's QoR estimator
    schedules blocks as-late-as-possible, §5.5.1). *)
let alap (g : graph) ~deadline =
  let n = Array.length g.nodes in
  let t = Array.make n deadline in
  (* successors: invert preds *)
  let succs = Array.make n [] in
  Array.iteri
    (fun j ps -> List.iter (fun (i, w) -> succs.(i) <- (j, w) :: succs.(i)) ps)
    g.preds;
  for i = n - 1 downto 0 do
    t.(i) <- deadline - g.nodes.(i).delay;
    List.iter (fun (j, w) -> t.(i) <- min t.(i) (t.(j) - w)) succs.(i)
  done;
  t

(** Max number of simultaneously live instances per FU-op name, given start
    times: how many units each op type needs. *)
let fu_concurrency (g : graph) (t : int array) =
  let events : (string, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i nd ->
      if Fu.is_fu_op nd.op.Ir.name && nd.op.Ir.regions = [] then
        let cur = Option.value ~default:[] (Hashtbl.find_opt events nd.op.Ir.name) in
        Hashtbl.replace events nd.op.Ir.name ((t.(i), max 1 nd.delay) :: cur))
    g.nodes;
  Hashtbl.fold
    (fun name intervals acc ->
      (* max overlap via sweep *)
      let pts =
        List.concat_map (fun (s, d) -> [ (s, 1); (s + d, -1) ]) intervals
        |> List.sort compare
      in
      let cur = ref 0 and best = ref 0 in
      List.iter
        (fun (_, delta) ->
          cur := !cur + delta;
          best := max !best !cur)
        pts;
      (name, !best) :: acc)
    events []
