(** The virtual downstream HLS synthesizer — the stand-in for Xilinx Vivado
    HLS 2019.1 (see DESIGN.md, substitutions). Given a directive-level module
    it produces a synthesis report: latency (cycles), initiation interval,
    and resource usage, with the same scheduling semantics as the real tool:

    - straight-line code: dependency-graph (list) scheduling with FU reuse;
    - non-pipelined loops: trip * (body latency + exit check) + control;
    - pipelined loops: II = max(target II, resource-constrained II over
      memory-bank ports, dependence-constrained II over loop-carried
      recurrences), latency = II*(trip-1) + iteration latency; perfect outer
      loops annotated [flatten] multiply the trip count;
    - dataflow functions: stages overlap — interval = max stage interval,
      latency = sum of stage latencies, inter-stage buffers are ping-pong
      doubled;
    - arrays: one physical bank per partition (§4.3.3), BRAM/URAM blocks per
      bank, memory ports per the resource directive (§4.3.4). Top-level
      function arguments are external interfaces and consume no on-chip
      memory. *)

open Mir
open Dialects
open Analysis

module A = Affine

type report = {
  latency : int;
  interval : int;
  usage : Platform.usage;
}

let report_zero = { latency = 0; interval = 0; usage = Platform.usage_zero }

(* Field accessors, so oracles and external QoR consumers do not depend on
   the record layout (the fuzzing subsystem compares reports across
   transformations through these). *)
let latency r = r.latency
let interval r = r.interval
let usage r = r.usage

(** [a] is pointwise no worse than [b] on the timing axes. *)
let report_timing_leq a b = a.latency <= b.latency && a.interval <= b.interval

let pp_report fmt r =
  Fmt.pf fmt "latency=%d interval=%d %a" r.latency r.interval Platform.pp_usage
    r.usage

type t = {
  module_ : Ir.op;
  func_reports : (string, report) Hashtbl.t;
}

let create module_ = { module_; func_reports = Hashtbl.create 16 }

(* ---- Memory usage ---------------------------------------------------------- *)

let memref_usage (mr : Ty.memref) =
  if mr.Ty.memspace = Ty.Memspace.dram then Platform.usage_zero
  else
    let banks = Hlscpp.num_banks mr in
    let bits = Ty.storage_bits (Ty.Memref mr) in
    let per_bank = (bits + banks - 1) / banks in
    let blocks =
      if mr.Ty.memspace = Ty.Memspace.uram then 0
      else banks * Fu.bram18_for_bits per_bank
    in
    {
      Platform.usage_zero with
      Platform.u_bram18 = blocks;
      u_bits = bits;
      u_lut = banks (* bank mux glue, negligible *);
    }

(* Allocations directly inside a function (not nested in called funcs). *)
let local_memory_usage ?(pingpong = fun (_ : Ir.op) -> false) f =
  Walk.fold_ops
    (fun acc o ->
      if o.Ir.name = "memref.alloc" then begin
        let u = memref_usage (Ty.as_memref (Ir.result o).Ir.vty) in
        let u =
          if pingpong o then
            {
              u with
              Platform.u_bram18 = 2 * u.Platform.u_bram18;
              u_bits = 2 * u.Platform.u_bits;
            }
          else u
        in
        Platform.usage_add acc u
      end
      else acc)
    Platform.usage_zero f

(* ---- Pipelined loop analysis ------------------------------------------------ *)

(** Trip-count estimate of a loop: exact for constant bounds; for variable
    bounds, the average over the outer iteration box (e.g. the triangular
    j <= i loop of SYRK counts N/2 iterations), so baselines with variable
    bounds are costed realistically. *)
let trip_estimate ~scope (l : Ir.op) =
  match Affine_d.const_trip_count l with
  | Some t -> t
  | None -> (
      let b = Affine_d.bounds l in
      let avg_bound map operands =
        match A.Map.results map with
        | [ e ] -> (
            let ranges =
              List.map (fun v -> Loop_utils.range_of_value scope v) operands
            in
            if List.for_all Option.is_some ranges then
              Option.map
                (fun (lo, hi) -> (lo + hi) / 2)
                (A.Solve.range_of_expr ~num_dims:(A.Map.num_dims map)
                   ~ranges:(Array.of_list (List.map Option.get ranges))
                   e)
            else None)
        | _ -> None
      in
      match
        (avg_bound b.Affine_d.lb_map b.Affine_d.lb_operands,
         avg_bound b.Affine_d.ub_map b.Affine_d.ub_operands)
      with
      | Some lb, Some ub ->
          max 1 (A.Expr.ceil_div (max 0 (ub - lb)) b.Affine_d.step)
      | _ -> 1)

(* Descend through [flatten]-annotated perfect loops to the pipelined target.
   Returns (enclosing flattened loops incl. target, target) or None. *)
let rec pipelined_chain (l : Ir.op) =
  if not (Affine_d.is_for l) then None
  else if Hlscpp.is_pipelined l then Some ([ l ], l)
  else
    match Hlscpp.get_loop_directive l with
    | Some d when d.Hlscpp.flatten -> (
        match List.filter Affine_d.is_for (Affine_d.body_nonterm l) with
        | [ inner ] -> (
            match pipelined_chain inner with
            | Some (chain, tgt) -> Some (l :: chain, tgt)
            | None -> None)
        | _ -> None)
    | _ -> None

(* Resource-constrained minimal II (Eq. 3): accesses per memory bank divided
   by ports. Bank of an access is resolved by composing the partition layout
   with the access function; non-constant banks are spread optimistically.
   [?accs] lets the caller share one [Mem_access.collect ~basis] result with
   {!ii_dep} (both use the pipelined chain's induction variables as basis). *)
let ii_res ?accs ~scope ~basis (target : Ir.op) =
  let accs =
    match accs with
    | Some a -> a
    | None -> Mem_access.collect ~scope ~basis target
  in
  let by_mem = Mem_access.by_memref accs in
  List.fold_left
    (fun acc ((m : Ir.value), maccs) ->
      let mr = Ty.as_memref m.Ir.vty in
      let banks = Hlscpp.num_banks mr in
      let ports = Ty.Memspace.ports mr.Ty.memspace in
      let counts = Hashtbl.create 16 in
      let unknown = ref 0 in
      List.iter
        (fun (a : Mem_access.t) ->
          match mr.Ty.layout with
          | None -> incr unknown
          | Some layout ->
              let n = List.length mr.Ty.shape in
              let part_exprs = List.filteri (fun i _ -> i < n) (A.Map.results layout) in
              let reps = Array.of_list a.Mem_access.exprs in
              let bank_exprs =
                List.map
                  (fun e ->
                    A.Expr.simplify
                      (A.Expr.substitute ~dims:(fun i -> reps.(i)) e))
                  part_exprs
              in
              if List.for_all A.Expr.is_const bank_exprs then begin
                let parts = Hlscpp.partitions_of_memref mr in
                let bank =
                  List.fold_left2
                    (fun acc p e ->
                      (acc * Hlscpp.partition_factor p)
                      + Option.get (A.Expr.as_const e))
                    0 parts bank_exprs
                in
                Hashtbl.replace counts bank
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts bank))
              end
              else incr unknown)
        maccs;
      let unknown_per_bank = (!unknown + banks - 1) / banks in
      let max_bank =
        Hashtbl.fold (fun _ c m -> max c m) counts 0 + unknown_per_bank
      in
      let max_bank = if Hashtbl.length counts = 0 then unknown_per_bank else max_bank in
      max acc ((max_bank + ports - 1) / ports))
    1 by_mem

(* Dependence-constrained minimal II (Eq. 4) for pipelining [target] with the
   (possibly flattened) enclosing chain [chain]. *)
let ii_dep ?accs ~scope ~chain (target : Ir.op) =
  let basis = List.map Affine_d.induction_var chain in
  let num_dims = List.length basis in
  let accs =
    match accs with
    | Some a -> a
    | None -> Mem_access.collect ~scope ~basis target
  in
  (* iteration-space domains enable the guard-aware FM refinement *)
  let ranges =
    let rs = List.map Affine_d.const_trip_count chain in
    if List.for_all Option.is_some rs then
      Some (Array.of_list (List.map (fun t -> (0, Option.get t - 1)) rs))
    else None
  in
  let deps = Dependence.all_deps ?ranges ~num_dims accs in
  if deps = [] then 1
  else begin
    (* strides: iterations of the flattened space per unit step of each dim *)
    let trips =
      List.map
        (fun l -> Option.value ~default:1 (Affine_d.const_trip_count l))
        chain
    in
    let strides = Array.make num_dims 1 in
    let rec fill i = function
      | [] -> ()
      | _ :: rest ->
          strides.(i) <- List.fold_left ( * ) 1 rest;
          fill (i + 1) rest
    in
    fill 0 trips;
    (* per-op ASAP start times within an iteration of the target body *)
    let body =
      List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops target)
    in
    let g = Sched.build ~delay_of:(fun o -> Fu.op_delay o.Ir.name) body in
    let t = Sched.asap g in
    (* one pass: physical-identity table from access op to its node's time
       (ops may be nested inside affine.if nodes). Keyed by physical
       identity behind a (bounded-depth) structural hash: [==] implies
       structural equality implies equal hashes, so the table is exact while
       lookups stay O(1) — wide unrolled bodies pair thousands of deps
       against hundreds of accesses, and the former assoc-list scan made
       this quadratic. *)
    let module Op_tbl = Hashtbl.Make (struct
      type nonrec t = Ir.op

      let equal = ( == )
      let hash = Hashtbl.hash
    end) in
    let times = Op_tbl.create 64 in
    Array.iteri
      (fun i nd ->
        Walk.iter_op
          (fun x -> if Memref.is_access x then Op_tbl.replace times x t.(i))
          nd.Sched.op)
      g.Sched.nodes;
    let time_of (op : Ir.op) =
      match Op_tbl.find_opt times op with Some v -> v | None -> 0
    in
    let trips_arr = Array.of_list trips in
    let flat_distance (dep : Dependence.dep) =
      let entries = List.mapi (fun j d -> (j, d)) dep.Dependence.dirs in
      (* Star dims with a single iteration cannot carry a dependence. *)
      let stars =
        List.filter
          (fun (j, d) -> d = Dependence.Star && trips_arr.(j) > 1)
          entries
      in
      let forced =
        List.filter_map
          (fun (j, d) -> match d with Dependence.Lt k -> Some (j, k) | _ -> None)
          entries
      in
      match (forced, stars) with
      | [], [] -> None (* loop-independent *)
      | _, [] ->
          let dist =
            List.fold_left (fun acc (j, k) -> acc + (k * strides.(j))) 0 forced
          in
          if dist > 0 then Some dist else None
      | [], _ ->
          (* free deltas on the star dims: the smallest positive flattened
             distance is the stride of the innermost star dim *)
          let j, _ = List.nth stars (List.length stars - 1) in
          Some strides.(j)
      | _ -> Some 1 (* forced + free mix: conservative *)
    in
    List.fold_left
      (fun acc (dep : Dependence.dep) ->
        match flat_distance dep with
        | None -> acc
        | Some dist ->
            let src_op = dep.Dependence.src.Mem_access.op in
            let dst_op = dep.Dependence.dst.Mem_access.op in
            let delay =
              time_of src_op + Fu.op_delay src_op.Ir.name - time_of dst_op
            in
            if delay <= 0 then acc else max acc ((delay + dist - 1) / dist))
      1 deps
  end

(* FU usage of a pipelined body: units shared across II cycles. *)
let pipelined_fu_usage body ~ii =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun o ->
      Walk.iter_op
        (fun x ->
          if Fu.is_fu_op x.Ir.name then
            Hashtbl.replace counts x.Ir.name
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts x.Ir.name)))
        o)
    body;
  Hashtbl.fold
    (fun name count acc ->
      let units = (count + ii - 1) / ii in
      let c = Fu.op_cost name in
      Platform.usage_add acc
        {
          Platform.usage_zero with
          Platform.u_dsp = units * c.Fu.dsp;
          u_lut = units * c.Fu.lut;
          u_ff = units * c.Fu.ff;
        })
    counts Platform.usage_zero

(* Non-FU glue LUTs of a region (rough): loads/stores/ifs contribute mux
   logic. *)
let glue_usage o =
  Walk.fold_ops
    (fun acc x ->
      if Fu.is_fu_op x.Ir.name then acc
      else
        let c = Fu.op_cost x.Ir.name in
        {
          acc with
          Platform.u_lut = acc.Platform.u_lut + c.Fu.lut;
          u_ff = acc.Platform.u_ff + c.Fu.ff;
        })
    Platform.usage_zero o

(* ---- Recursive analysis ------------------------------------------------------ *)

let rec analyze_func st (f : Ir.op) : report =
  let name = Ir.func_name f in
  match Hashtbl.find_opt st.func_reports name with
  | Some r -> r
  | None ->
      let r =
        match Hlscpp.get_func_directive f with
        | Some d when d.Hlscpp.dataflow -> analyze_dataflow st f
        | _ ->
            let lat, usage = analyze_ops st ~scope:f (Func.func_body f) in
            let usage = Platform.usage_add usage (local_memory_usage f) in
            let interval =
              match Hlscpp.get_func_directive f with
              | Some d when d.Hlscpp.pipeline -> max 1 d.Hlscpp.target_ii
              | _ -> lat
            in
            { latency = lat; interval = max 1 interval; usage }
      in
      Hashtbl.replace st.func_reports name r;
      r

and analyze_dataflow st (f : Ir.op) : report =
  let body = Func.func_body f in
  let stages = List.filter Func.is_call body in
  let stage_reports =
    List.map
      (fun call ->
        match Ir.find_func st.module_ (Func.callee call) with
        | Some callee -> analyze_func st callee
        | None -> report_zero)
      stages
  in
  let latency =
    List.fold_left (fun acc r -> acc + r.latency) 0 stage_reports
    + List.length stages
  in
  let interval =
    List.fold_left (fun acc r -> max acc (max r.interval r.latency)) 1 stage_reports
  in
  let stage_usage =
    List.fold_left
      (fun acc r -> Platform.usage_add acc r.usage)
      Platform.usage_zero stage_reports
  in
  (* Inter-stage buffers allocated here are ping-pong doubled. *)
  let mem = local_memory_usage ~pingpong:(fun _ -> true) f in
  { latency; interval; usage = Platform.usage_add stage_usage mem }

(* Latency and FU usage of a straight-line op list (composite ops analyzed
   recursively). Memory (allocs) is accounted at the function level. *)
and analyze_ops st ~scope (ops : Ir.op list) : int * Platform.usage =
  let ops = List.filter (fun o -> o.Ir.name <> "affine.yield" && o.Ir.name <> "scf.yield") ops in
  (* Analyze composite ops first. *)
  let composite : (int, report) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i o ->
      match o.Ir.name with
      | "affine.for" | "scf.for" -> Hashtbl.replace composite i (analyze_loop st ~scope o)
      | "affine.if" | "scf.if" ->
          let lt, ut = analyze_region st ~scope o 0 in
          let le, ue = analyze_region st ~scope o 1 in
          Hashtbl.replace composite i
            { latency = 1 + max lt le; interval = 1 + max lt le; usage = Platform.usage_max ut ue }
      | "func.call" ->
          let r =
            match Ir.find_func st.module_ (Func.callee o) with
            | Some callee -> analyze_func st callee
            | None -> report_zero
          in
          Hashtbl.replace composite i r
      | _ -> ())
    ops;
  let delay_of_idx = ref [] in
  List.iteri
    (fun i o ->
      let d =
        match Hashtbl.find_opt composite i with
        | Some r -> r.latency
        | None -> Fu.op_delay o.Ir.name
      in
      delay_of_idx := (o, d) :: !delay_of_idx)
    ops;
  let delays = List.rev !delay_of_idx in
  let delay_of o =
    match List.find_opt (fun (x, _) -> x == o) delays with
    | Some (_, d) -> d
    | None -> Fu.op_delay o.Ir.name
  in
  let g = Sched.build ~delay_of ops in
  let lat = Sched.latency g in
  let t = Sched.asap g in
  (* Leaf FU usage by concurrency; composite usage shared via max. *)
  let leaf_usage =
    List.fold_left
      (fun acc (name, units) ->
        let c = Fu.op_cost name in
        Platform.usage_add acc
          {
            Platform.usage_zero with
            Platform.u_dsp = units * c.Fu.dsp;
            u_lut = units * c.Fu.lut;
            u_ff = units * c.Fu.ff;
          })
      Platform.usage_zero (Sched.fu_concurrency g t)
  in
  let composite_usage =
    Hashtbl.fold (fun _ r acc -> Platform.usage_max acc r.usage) composite
      Platform.usage_zero
  in
  (lat, Platform.usage_add leaf_usage composite_usage)

and analyze_region st ~scope o i =
  List.fold_left
    (fun (lat, usage) (b : Ir.block) ->
      let l, u = analyze_ops st ~scope b.Ir.bops in
      (max lat l, Platform.usage_max usage u))
    (0, Platform.usage_zero) (Ir.region o i)

and analyze_loop st ~scope (l : Ir.op) : report =
  match pipelined_chain l with
  | Some (chain, target) ->
      let total_trip =
        List.fold_left (fun acc loop -> acc * trip_estimate ~scope loop) 1 chain
      in
      let body =
        List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops target)
      in
      let iter_lat, _ = analyze_ops st ~scope body in
      let target_ii =
        match Hlscpp.get_loop_directive target with
        | Some d -> max 1 d.Hlscpp.loop_target_ii
        | None -> 1
      in
      let basis = List.map Affine_d.induction_var chain in
      let accs = Mem_access.collect ~scope ~basis target in
      let ii =
        max target_ii
          (max (ii_res ~accs ~scope ~basis target) (ii_dep ~accs ~scope ~chain target))
      in
      let latency = (ii * max 0 (total_trip - 1)) + iter_lat + Fu.loop_overhead + 1 in
      let usage =
        Platform.usage_add (pipelined_fu_usage body ~ii) (glue_usage target)
      in
      { latency; interval = latency; usage }
  | None ->
      let trip =
        match l.Ir.name with
        | "affine.for" -> trip_estimate ~scope l
        | _ -> 1
      in
      let body_lat, usage = analyze_ops st ~scope (Ir.body_ops l) in
      let latency = (trip * (body_lat + Fu.iter_overhead)) + Fu.loop_overhead in
      { latency; interval = latency; usage }

(** Synthesize the module with [top] as the top-level function. *)
let synthesize module_ ~top =
  let st = create module_ in
  match Ir.find_func module_ top with
  | Some f -> analyze_func st f
  | None -> invalid_arg (Printf.sprintf "Synth.synthesize: no function %s" top)
