(** Functional-unit characterization of the virtual downstream HLS tool: per
    operation latency (cycles at a 10 ns clock) and resource cost, modelled
    after Vivado HLS 2019.1 floating-point/integer IP characteristics. Both
    the in-flow QoR estimator and the virtual synthesizer read this table, so
    calibration lives in exactly one place. *)

type cost = { delay : int; dsp : int; lut : int; ff : int }

let zero = { delay = 0; dsp = 0; lut = 0; ff = 0 }

(** Cost of one operation instance. Unknown ops are treated as free (they are
    structural: yields, constants, etc.). *)
let op_cost name =
  match name with
  | "arith.addf" | "arith.subf" -> { delay = 5; dsp = 2; lut = 214; ff = 324 }
  | "arith.mulf" -> { delay = 4; dsp = 3; lut = 135; ff = 128 }
  | "arith.divf" -> { delay = 16; dsp = 0; lut = 802; ff = 1446 }
  | "arith.negf" -> { delay = 1; dsp = 0; lut = 32; ff = 32 }
  | "arith.maxf" | "arith.minf" | "arith.cmpf" -> { delay = 2; dsp = 0; lut = 66; ff = 66 }
  | "arith.muli" -> { delay = 3; dsp = 1; lut = 20; ff = 20 } (* narrow int8 MAC: one DSP48 *)
  | "arith.divi" | "arith.remi" | "arith.floordivi" | "arith.ceildivi" ->
      { delay = 18; dsp = 0; lut = 650; ff = 750 }
  | "arith.addi" | "arith.subi" | "arith.cmpi" | "arith.maxi" | "arith.mini"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.shli" | "arith.shri" ->
      { delay = 1; dsp = 0; lut = 32; ff = 16 }
  | "arith.select" -> { delay = 1; dsp = 0; lut = 32; ff = 0 }
  | "arith.index_cast" | "arith.extf" | "arith.truncf" | "arith.sitofp" | "arith.fptosi"
    -> { delay = 1; dsp = 0; lut = 40; ff = 40 }
  | "math.exp" | "math.log" -> { delay = 20; dsp = 7; lut = 1500; ff = 1800 }
  | "math.sqrt" -> { delay = 16; dsp = 0; lut = 800; ff = 1200 }
  | "math.tanh" -> { delay = 24; dsp = 9; lut = 2000; ff = 2400 }
  | "affine.load" | "memref.load" -> { delay = 2; dsp = 0; lut = 12; ff = 8 }
  | "affine.store" | "memref.store" -> { delay = 1; dsp = 0; lut = 12; ff = 8 }
  | "affine.apply" -> { delay = 0; dsp = 0; lut = 16; ff = 0 }
  | _ -> zero

let op_delay name = (op_cost name).delay

(** Cycles of loop entry/exit control overhead for a non-pipelined loop. *)
let loop_overhead = 1

(** Extra iteration-latency cycle for the exit check of non-pipelined
    bodies. *)
let iter_overhead = 1

(** Is this op a compute op occupying a shareable functional unit? *)
let is_fu_op name =
  match name with
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.muli"
  | "arith.divi" | "arith.remi" | "arith.floordivi" | "arith.ceildivi"
  | "math.exp" | "math.log" | "math.sqrt" | "math.tanh" -> true
  | _ -> false

(** BRAM-18K blocks for one physical bank holding [bits] of data. A bank
    always costs at least one block. *)
let bram18_for_bits bits = max 1 ((bits + (18 * 1024) - 1) / (18 * 1024))

(** URAM blocks (288 Kb) for one bank. *)
let uram_for_bits bits = max 1 ((bits + (288 * 1024) - 1) / (288 * 1024))
