(** FPGA platform resource budgets used as DSE constraints and utilization
    denominators (the paper's §7 targets). *)

type t = {
  name : string;
  bram18 : int;  (** BRAM-18K blocks *)
  uram : int;
  dsp : int;
  lut : int;
  ff : int;
  memory_bits : int;  (** total on-chip memory bits (BRAM + URAM) *)
}

(** Xilinx XC7Z020 (Zynq-7020): the edge FPGA of §7.1 — 4.9 Mb memory,
    220 DSPs, 53,200 LUTs. *)
let xc7z020 =
  {
    name = "xc7z020";
    bram18 = 280;
    uram = 0;
    dsp = 220;
    lut = 53_200;
    ff = 106_400;
    memory_bits = 280 * 18 * 1024;
  }

(** One SLR (super logic region) of a Xilinx VU9P: the large FPGA of §7.2 —
    115.3 Mb memories, 2280 DSPs, 394,080 LUTs per SLR. *)
let vu9p_slr =
  {
    name = "vu9p-slr";
    bram18 = 1440;
    uram = 320;
    dsp = 2280;
    lut = 394_080;
    ff = 788_160;
    memory_bits = (1440 * 18 * 1024) + (320 * 288 * 1024);
  }

type usage = { u_bram18 : int; u_dsp : int; u_lut : int; u_ff : int; u_bits : int }

let usage_zero = { u_bram18 = 0; u_dsp = 0; u_lut = 0; u_ff = 0; u_bits = 0 }

let usage_add a b =
  {
    u_bram18 = a.u_bram18 + b.u_bram18;
    u_dsp = a.u_dsp + b.u_dsp;
    u_lut = a.u_lut + b.u_lut;
    u_ff = a.u_ff + b.u_ff;
    u_bits = a.u_bits + b.u_bits;
  }

let usage_max a b =
  {
    u_bram18 = max a.u_bram18 b.u_bram18;
    u_dsp = max a.u_dsp b.u_dsp;
    u_lut = max a.u_lut b.u_lut;
    u_ff = max a.u_ff b.u_ff;
    u_bits = max a.u_bits b.u_bits;
  }

(** Does the usage fit within the platform budget? Memory is checked against
    total bits; DSP/LUT against their budgets. *)
let fits p u =
  u.u_dsp <= p.dsp && u.u_lut <= p.lut && u.u_bits <= p.memory_bits
  && u.u_ff <= p.ff

let pp_usage fmt u =
  Fmt.pf fmt "dsp=%d lut=%d ff=%d bram18=%d mem=%.1fMb" u.u_dsp u.u_lut u.u_ff
    u.u_bram18
    (float_of_int u.u_bits /. 1024. /. 1024.)
