(** Recursive-descent parser for the HLS-C subset. Produces {!Cast.program}.
    Rejects constructs outside the synthesizable subset with a descriptive
    {!Parse_error} (mirroring the paper's front-end, which rejects e.g.
    pointer-to-pointer inputs). *)

open Cast

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let expect lx tok =
  let t = Lexer.next lx in
  if t <> tok then
    error "expected %s but found %s" (Lexer.token_to_string tok) (Lexer.token_to_string t)

let expect_punct lx s = expect lx (Lexer.Punct s)

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.Ident s -> s
  | t -> error "expected identifier but found %s" (Lexer.token_to_string t)

let base_type_of_kw = function
  | "int" | "unsigned" -> Some Cint
  | "float" -> Some Cfloat
  | "double" -> Some Cdouble
  | _ -> None

(* ---- Expressions (precedence climbing) ---------------------------------- *)

let binop_precedence = function
  | "||" -> 1
  | "&&" -> 2
  | "==" | "!=" -> 3
  | "<" | "<=" | ">" | ">=" -> 4
  | "+" | "-" -> 5
  | "*" | "/" | "%" -> 6
  | _ -> 0

let rec parse_expr lx = parse_ternary lx

and parse_ternary lx =
  let c = parse_binary lx 1 in
  match Lexer.peek lx with
  | Lexer.Punct "?" ->
      Lexer.advance lx;
      let a = parse_expr lx in
      expect_punct lx ":";
      let b = parse_expr lx in
      Cond (c, a, b)
  | _ -> c

and parse_binary lx min_prec =
  let lhs = ref (parse_unary lx) in
  let continue_ = ref true in
  while !continue_ do
    match Lexer.peek lx with
    | Lexer.Punct p when binop_precedence p >= min_prec && binop_precedence p > 0 ->
        Lexer.advance lx;
        let rhs = parse_binary lx (binop_precedence p + 1) in
        lhs := Bin (p, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary lx =
  match Lexer.peek lx with
  | Lexer.Punct "-" ->
      Lexer.advance lx;
      Neg (parse_unary lx)
  | Lexer.Punct "!" ->
      Lexer.advance lx;
      Not (parse_unary lx)
  | Lexer.Punct "+" ->
      Lexer.advance lx;
      parse_unary lx
  | _ -> parse_postfix lx

and parse_postfix lx =
  match Lexer.next lx with
  | Lexer.Int_lit i -> Int_lit i
  | Lexer.Float_lit f -> Float_lit f
  | Lexer.Punct "(" ->
      (* parenthesized expr or C-style cast like (float)x — treat casts as
         transparent. *)
      (match (Lexer.peek lx, Lexer.peek2 lx) with
      | Lexer.Kw k, Lexer.Punct ")" when Option.is_some (base_type_of_kw k) ->
          Lexer.advance lx;
          Lexer.advance lx;
          parse_unary lx
      | _ ->
          let e = parse_expr lx in
          expect_punct lx ")";
          e)
  | Lexer.Ident name -> (
      match Lexer.peek lx with
      | Lexer.Punct "(" ->
          Lexer.advance lx;
          let args = ref [] in
          if Lexer.peek lx <> Lexer.Punct ")" then begin
            args := [ parse_expr lx ];
            while Lexer.peek lx = Lexer.Punct "," do
              Lexer.advance lx;
              args := parse_expr lx :: !args
            done
          end;
          expect_punct lx ")";
          Call (name, List.rev !args)
      | Lexer.Punct "[" ->
          let idxs = ref [] in
          while Lexer.peek lx = Lexer.Punct "[" do
            Lexer.advance lx;
            idxs := parse_expr lx :: !idxs;
            expect_punct lx "]"
          done;
          Index (name, List.rev !idxs)
      | _ -> Var name)
  | t -> error "unexpected token %s in expression" (Lexer.token_to_string t)

(* ---- Statements ---------------------------------------------------------- *)

let const_int_expr = function
  | Int_lit i -> i
  | Neg (Int_lit i) -> -i
  | _ -> error "expected integer constant"

let rec parse_stmt lx : stmt =
  match Lexer.peek lx with
  | Lexer.Punct "{" ->
      Lexer.advance lx;
      let stmts = parse_stmts_until lx "}" in
      Block stmts
  | Lexer.Kw "for" -> For (parse_for lx)
  | Lexer.Kw "if" -> parse_if lx
  | Lexer.Kw "while" -> error "while loops are outside the synthesizable subset accepted here"
  | Lexer.Kw "return" ->
      Lexer.advance lx;
      if Lexer.peek lx = Lexer.Punct ";" then begin
        Lexer.advance lx;
        Return None
      end
      else begin
        let e = parse_expr lx in
        expect_punct lx ";";
        Return (Some e)
      end
  | Lexer.Kw ("const" | "static") ->
      Lexer.advance lx;
      parse_stmt lx
  | Lexer.Kw k when Option.is_some (base_type_of_kw k) -> parse_decl lx
  | _ -> parse_assign_or_expr lx

and parse_stmts_until lx closer =
  let stmts = ref [] in
  while Lexer.peek lx <> Lexer.Punct closer do
    if Lexer.peek lx = Lexer.Eof then error "unexpected end of input (missing %s)" closer;
    stmts := parse_stmt lx :: !stmts
  done;
  Lexer.advance lx;
  List.rev !stmts

and parse_decl lx =
  let base =
    match Lexer.next lx with
    | Lexer.Kw k -> Option.get (base_type_of_kw k)
    | t -> error "expected type but found %s" (Lexer.token_to_string t)
  in
  let name = expect_ident lx in
  let dims = ref [] in
  while Lexer.peek lx = Lexer.Punct "[" do
    Lexer.advance lx;
    (match Lexer.next lx with
    | Lexer.Int_lit i -> dims := i :: !dims
    | t -> error "array dimensions must be integer constants, found %s" (Lexer.token_to_string t));
    expect_punct lx "]"
  done;
  let ty = if !dims = [] then base else Carr (base, List.rev !dims) in
  let init =
    if Lexer.peek lx = Lexer.Punct "=" then begin
      Lexer.advance lx;
      Some (parse_expr lx)
    end
    else None
  in
  expect_punct lx ";";
  Decl (ty, name, init)

and parse_if lx =
  expect lx (Lexer.Kw "if");
  expect_punct lx "(";
  let cond = parse_expr lx in
  expect_punct lx ")";
  let then_ = stmt_as_list (parse_stmt lx) in
  let else_ =
    if Lexer.peek lx = Lexer.Kw "else" then begin
      Lexer.advance lx;
      stmt_as_list (parse_stmt lx)
    end
    else []
  in
  If (cond, then_, else_)

and stmt_as_list = function Block ss -> ss | s -> [ s ]

and parse_for lx =
  expect lx (Lexer.Kw "for");
  expect_punct lx "(";
  (* init: [int i = e;] or [i = e;] *)
  (match Lexer.peek lx with
  | Lexer.Kw k when Option.is_some (base_type_of_kw k) -> Lexer.advance lx
  | _ -> ());
  let var = expect_ident lx in
  expect_punct lx "=";
  let init = parse_expr lx in
  expect_punct lx ";";
  (* condition: var < bound | var <= bound *)
  let cvar = expect_ident lx in
  if cvar <> var then error "for condition must test the induction variable %s" var;
  let cmp =
    match Lexer.next lx with
    | Lexer.Punct (("<" | "<=") as p) -> p
    | t -> error "for condition must be < or <=, found %s" (Lexer.token_to_string t)
  in
  let bound = parse_expr lx in
  expect_punct lx ";";
  (* increment: i++ | ++i | i += c | i = i + c *)
  let step =
    match Lexer.next lx with
    | Lexer.Ident v when v = var -> (
        match Lexer.next lx with
        | Lexer.Punct "++" -> 1
        | Lexer.Punct "+=" -> const_int_expr (parse_expr lx)
        | Lexer.Punct "=" -> (
            match parse_expr lx with
            | Bin ("+", Var v', e) when v' = var -> const_int_expr e
            | Bin ("+", e, Var v') when v' = var -> const_int_expr e
            | _ -> error "unsupported for-loop increment")
        | t -> error "unsupported for-loop increment: %s" (Lexer.token_to_string t))
    | Lexer.Punct "++" ->
        let v = expect_ident lx in
        if v <> var then error "for increment must update %s" var;
        1
    | t -> error "unsupported for-loop increment: %s" (Lexer.token_to_string t)
  in
  if step <= 0 then error "for-loop step must be positive";
  expect_punct lx ")";
  let body = stmt_as_list (parse_stmt lx) in
  { var; init; cmp; bound; step; body }

and parse_assign_or_expr lx =
  let e = parse_expr lx in
  match (e, Lexer.peek lx) with
  | _, Lexer.Punct (("=" | "+=" | "-=" | "*=" | "/=") as op) ->
      Lexer.advance lx;
      let lhs =
        match e with
        | Var v -> Lvar v
        | Index (v, idxs) -> Lindex (v, idxs)
        | _ -> error "invalid assignment target"
      in
      let rhs = parse_expr lx in
      expect_punct lx ";";
      Assign (lhs, op, rhs)
  | _, _ ->
      expect_punct lx ";";
      Expr_stmt e

(* ---- Top level ------------------------------------------------------------ *)

let parse_param lx : param =
  (match Lexer.peek lx with
  | Lexer.Kw "const" -> Lexer.advance lx
  | _ -> ());
  let base =
    match Lexer.next lx with
    | Lexer.Kw k when Option.is_some (base_type_of_kw k) -> Option.get (base_type_of_kw k)
    | t -> error "expected parameter type, found %s" (Lexer.token_to_string t)
  in
  (* pointer-to-scalar parameters become 1-element arrays (§6.1); reject
     pointer-to-pointer. *)
  let stars = ref 0 in
  while Lexer.peek lx = Lexer.Punct "*" do
    Lexer.advance lx;
    incr stars
  done;
  if !stars > 1 then error "pointer-to-pointer parameters are rejected by the front-end";
  let pname = expect_ident lx in
  let dims = ref [] in
  while Lexer.peek lx = Lexer.Punct "[" do
    Lexer.advance lx;
    (match Lexer.next lx with
    | Lexer.Int_lit i -> dims := i :: !dims
    | t -> error "array dimensions must be constants, found %s" (Lexer.token_to_string t));
    expect_punct lx "]"
  done;
  let pty =
    if !stars = 1 then Carr (base, [ 1 ])
    else if !dims = [] then base
    else Carr (base, List.rev !dims)
  in
  { pname; pty }

let parse_fndef lx : fndef =
  let ret =
    match Lexer.next lx with
    | Lexer.Kw "void" -> None
    | Lexer.Kw k when Option.is_some (base_type_of_kw k) -> base_type_of_kw k
    | t -> error "expected return type, found %s" (Lexer.token_to_string t)
  in
  let fname = expect_ident lx in
  expect_punct lx "(";
  let params = ref [] in
  if Lexer.peek lx <> Lexer.Punct ")" then begin
    params := [ parse_param lx ];
    while Lexer.peek lx = Lexer.Punct "," do
      Lexer.advance lx;
      params := parse_param lx :: !params
    done
  end;
  expect_punct lx ")";
  expect_punct lx "{";
  let fbody = parse_stmts_until lx "}" in
  { fname; ret; params = List.rev !params; fbody }

(** Parse a full translation unit (a list of function definitions). *)
let parse_program src : program =
  let lx = Lexer.tokenize src in
  let fns = ref [] in
  while Lexer.peek lx <> Lexer.Eof do
    fns := parse_fndef lx :: !fns
  done;
  List.rev !fns
