(** Abstract syntax of the HLS-C subset accepted by the front-end: fixed-size
    arrays, scalar ints and floats, structured control flow. Pointers to
    scalars are treated as 1-element arrays (§6.1). *)

type cty = Cint | Cfloat | Cdouble | Carr of cty * int list

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Bin of string * expr * expr  (** + - * / % == != < <= > >= && || *)
  | Neg of expr
  | Not of expr
  | Call of string * expr list  (** expf / logf / sqrtf / tanhf *)
  | Cond of expr * expr * expr  (** ternary [c ? a : b] *)

type lhs = Lvar of string | Lindex of string * expr list

type stmt =
  | Decl of cty * string * expr option
  | Assign of lhs * string * expr  (** the string is "=", "+=", "-=", "*=", "/=" *)
  | For of for_loop
  | If of expr * stmt list * stmt list
  | Block of stmt list
  | Return of expr option
  | Expr_stmt of expr

and for_loop = {
  var : string;  (** induction variable declared in the init clause *)
  init : expr;
  cmp : string;  (** "<" or "<=" *)
  bound : expr;
  step : int;  (** from [i++] or [i += c] *)
  body : stmt list;
}

type param = { pname : string; pty : cty }

type fndef = {
  fname : string;
  ret : cty option;  (** [None] for void *)
  params : param list;
  fbody : stmt list;
}

type program = fndef list

let rec pp_cty fmt = function
  | Cint -> Fmt.string fmt "int"
  | Cfloat -> Fmt.string fmt "float"
  | Cdouble -> Fmt.string fmt "double"
  | Carr (t, dims) ->
      Fmt.pf fmt "%a%a" pp_cty t Fmt.(list ~sep:nop (fmt "[%d]")) dims
