(** The [-raise-scf-to-affine] pass (§6.1): walks each function outside-in,
    tracking which SSA index values are affine expressions of the enclosing
    affine induction variables, and raises:
    - [scf.for] with affine bounds and constant step to [affine.for];
    - [memref.load]/[memref.store] with affine indices to
      [affine.load]/[affine.store];
    - [scf.if] over integer comparisons of affine values to [affine.if].

    Unlike all-or-nothing approaches, raising is per-statement: a non-affine
    statement leaves only itself (and loops whose bounds depend on it) at the
    scf/memref level. *)

open Mir
open Dialects

module A = Affine

type env = {
  ctx : Ir.Ctx.t;
  exprs : (int, A.Expr.t) Hashtbl.t;  (** value id -> expr over current dims *)
}

let expr_of env (v : Ir.value) = Hashtbl.find_opt env.exprs v.Ir.vid

let record env (v : Ir.value) e = Hashtbl.replace env.exprs v.Ir.vid (A.Expr.simplify e)

(* The affine map over the full dim list for a list of result exprs. *)
let map_over_dims dims results =
  A.Map.make ~num_dims:(List.length dims) ~num_syms:0 results

(* cmpi definitions (value id -> predicate and operands), scanned before
   conversion so that scf.if conditions can be raised to integer sets. *)
let cmp_defs : (int, string * Ir.value * Ir.value) Hashtbl.t = Hashtbl.create 64

let rec convert_ops env (dims : Ir.value list) (ops : Ir.op list) : Ir.op list =
  List.concat_map (convert_op env dims) ops

and convert_op env dims (o : Ir.op) : Ir.op list =
  match o.Ir.name with
  | "arith.constant" -> (
      match Arith.constant_int_value o with
      | Some c when Ty.equal (Ir.result o).Ir.vty Ty.Index ->
          record env (Ir.result o) (A.Expr.const c);
          [ o ]
      | _ -> [ o ])
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi" -> (
      match List.map (expr_of env) o.Ir.operands with
      | [ Some a; Some b ] ->
          let e =
            match o.Ir.name with
            | "arith.addi" -> Some (A.Expr.add a b)
            | "arith.subi" -> Some (A.Expr.sub a b)
            | "arith.muli" ->
                let sa = A.Expr.simplify a and sb = A.Expr.simplify b in
                if A.Expr.is_const sa || A.Expr.is_const sb then
                  Some (A.Expr.mul a b)
                else None
            | "arith.divi" -> (
                match A.Expr.as_const (A.Expr.simplify b) with
                | Some k when k > 0 -> Some (A.Expr.fdiv a b)
                | _ -> None)
            | _ -> (
                match A.Expr.as_const (A.Expr.simplify b) with
                | Some k when k > 0 -> Some (A.Expr.mod_ a b)
                | _ -> None)
          in
          Option.iter (record env (Ir.result o)) e;
          [ o ]
      | _ -> [ o ])
  | "scf.for" -> convert_for env dims o
  | "scf.if" -> convert_if env dims o
  | "memref.load" -> (
      let idxs = Memref.access_indices o in
      match all_exprs env idxs with
      | Some index_exprs ->
          let map = map_over_dims dims index_exprs in
          let mem = Memref.accessed_memref o in
          [
            Ir.mk "affine.load"
              ~attrs:[ ("map", Attr.Map map) ]
              ~operands:(mem :: dims) ~results:o.Ir.results;
          ]
      | None -> [ o ])
  | "memref.store" -> (
      let idxs = Memref.access_indices o in
      match all_exprs env idxs with
      | Some index_exprs ->
          let map = map_over_dims dims index_exprs in
          let mem = Memref.accessed_memref o in
          let value = Memref.stored_value o in
          [
            Ir.mk "affine.store"
              ~attrs:[ ("map", Attr.Map map) ]
              ~operands:(value :: mem :: dims)
              ~results:[];
          ]
      | None -> [ o ])
  | "scf.yield" -> [ Affine_d.yield ]
  | _ ->
      (* Generic: recurse into any nested regions without extending dims. *)
      [ Walk.expand_in_op (fun op -> [ op ]) { o with Ir.regions = List.map (List.map (fun b -> { b with Ir.bops = convert_ops env dims b.Ir.bops })) o.Ir.regions } ]

and all_exprs env vs =
  let es = List.map (expr_of env) vs in
  if List.for_all Option.is_some es then Some (List.map Option.get es) else None

and convert_for env dims o =
  let lb, ub, step = Scf.for_bounds o in
  let step_const =
    match expr_of env step with
    | Some e -> A.Expr.as_const (A.Expr.simplify e)
    | None -> None
  in
  match (expr_of env lb, expr_of env ub, step_const) with
  | Some lb_e, Some ub_e, Some step_c
    when step_c > 0 && A.Expr.is_pure_affine lb_e && A.Expr.is_pure_affine ub_e ->
      let iv = Scf.induction_var o in
      record env iv (A.Expr.dim (List.length dims));
      let body = convert_ops env (dims @ [ iv ]) (Ir.body_ops o) in
      [
        Affine_d.for_op
          ~lb_map:(map_over_dims dims [ lb_e ])
          ~lb_operands:dims
          ~ub_map:(map_over_dims dims [ ub_e ])
          ~ub_operands:dims ~step:step_c ~iv body;
      ]
  | _ ->
      (* Bounds are not affine: keep scf.for; the body may still raise
         statements that only involve enclosing affine dims. *)
      let body = convert_ops env dims (Ir.body_ops o) in
      [ Ir.with_body o body ]

and convert_if env dims o =
  let cond = List.hd o.Ir.operands in
  let then_ops () = convert_ops env dims (List.concat_map (fun b -> b.Ir.bops) (Ir.region o 0)) in
  let else_ops () = convert_ops env dims (List.concat_map (fun b -> b.Ir.bops) (Ir.region o 1)) in
  let keep_scf () =
    [
      Ir.mk o.Ir.name ~attrs:o.Ir.attrs ~operands:o.Ir.operands ~results:o.Ir.results
        ~regions:[ [ Ir.block (then_ops ()) ]; [ Ir.block (else_ops ()) ] ];
    ]
  in
  (* We raise only when the condition value is produced by an integer
     comparison of two affine expressions (located via the cmp scan). *)
  match Hashtbl.find_opt cmp_defs cond.Ir.vid with
  | Some (pred, a, b) -> (
      match (expr_of env a, expr_of env b) with
      | Some ea, Some eb -> (
          let c =
            match pred with
            | "slt" -> Some (A.Set_.ge_zero (A.Expr.sub (A.Expr.sub eb ea) (A.Expr.const 1)))
            | "sle" -> Some (A.Set_.ge_zero (A.Expr.sub eb ea))
            | "sgt" -> Some (A.Set_.ge_zero (A.Expr.sub (A.Expr.sub ea eb) (A.Expr.const 1)))
            | "sge" -> Some (A.Set_.ge_zero (A.Expr.sub ea eb))
            | "eq" -> Some (A.Set_.eq_zero (A.Expr.sub ea eb))
            | _ -> None
          in
          match c with
          | Some c ->
              let set = A.Set_.make ~num_dims:(List.length dims) ~num_syms:0 [ c ] in
              [
                Affine_d.if_ ~set ~operands:dims
                  ~then_:(then_ops () @ [ Affine_d.yield ])
                  ~else_:(else_ops () @ [ Affine_d.yield ]);
              ]
          | None -> keep_scf ())
      | _ -> keep_scf ())
  | None -> keep_scf ()

(* Record cmpi definitions before conversion so convert_if can find them. *)
let scan_cmps f =
  Walk.iter_op
    (fun o ->
      if o.Ir.name = "arith.cmpi" then
        match o.Ir.operands with
        | [ a; b ] -> Hashtbl.replace cmp_defs (Ir.result o).Ir.vid (Ir.str_attr o "predicate", a, b)
        | _ -> ())
    f

let raise_func ctx f =
  Hashtbl.reset cmp_defs;
  scan_cmps f;
  let env = { ctx; exprs = Hashtbl.create 128 } in
  Ir.with_body f (convert_ops env [] (Func.func_body f))

(** The [-raise-scf-to-affine] pass. *)
let pass = Pass.on_funcs "raise-scf-to-affine" raise_func
