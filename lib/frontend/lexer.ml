(** Hand-written lexer for the synthesizable HLS-C subset (§6.1). Skips
    preprocessor lines (#include / #define / #pragma) and comments. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Kw of string  (** void int float double if else for return const static *)
  | Punct of string
      (** ( ) [ ] { } ; , and operators: + - * / % = += -= *= /= == != < <= >
          >= && || ! ++ -- *)
  | Eof

type t = { tokens : token array; mutable pos : int; src_lines : string array }

exception Lex_error of string

let keywords =
  [ "void"; "int"; "float"; "double"; "if"; "else"; "for"; "while"; "return"; "const"; "static"; "unsigned" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '#' then begin
      (* preprocessor line: skip to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do
        incr i
      done;
      i := !i + 2
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      push (if List.mem s keywords then Kw s else Ident s)
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      (* trailing f/F/l/L suffix *)
      let s = String.sub src start (!i - start) in
      if !i < n && (src.[!i] = 'f' || src.[!i] = 'F' || src.[!i] = 'l' || src.[!i] = 'L')
      then incr i;
      if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
        push (Float_lit (float_of_string s))
      else push (Int_lit (int_of_string s))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||" | "+=" | "-=" | "*=" | "/=" | "++" | "--") as p) ->
          push (Punct p);
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | '+' | '-' | '*' | '/'
          | '%' | '=' | '<' | '>' | '!' | '&' | '|' | '?' | ':' ->
              push (Punct (String.make 1 c));
              incr i
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C at offset %d" c !i)))
    end
  done;
  push Eof;
  {
    tokens = Array.of_list (List.rev !toks);
    pos = 0;
    src_lines = Array.of_list (String.split_on_char '\n' src);
  }

let peek lx = lx.tokens.(lx.pos)
let peek2 lx = if lx.pos + 1 < Array.length lx.tokens then lx.tokens.(lx.pos + 1) else Eof
let advance lx = lx.pos <- lx.pos + 1

let next lx =
  let t = peek lx in
  advance lx;
  t

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Float_lit f -> Printf.sprintf "float %g" f
  | Kw s -> Printf.sprintf "keyword %S" s
  | Punct s -> Printf.sprintf "%S" s
  | Eof -> "end of input"
