(** Lowering of the C AST to the scf-level IR (§6.1): [for] loops become
    [scf.for], conditionals [scf.if], arrays become fixed-size memrefs, and
    mutable scalar locals become 1-element memref slots (cleaned up later by
    store-forwarding). The result is then raised into the affine dialect by
    {!Raise_affine}. *)

open Mir
open Dialects
open Cast

exception Codegen_error of string

let error fmt = Fmt.kstr (fun s -> raise (Codegen_error s)) fmt

let scalar_ty = function
  | Cint -> Ty.Index
  | Cfloat -> Ty.F32
  | Cdouble -> Ty.F64
  | Carr _ -> error "array type where scalar expected"

let ir_ty = function
  | Carr (base, dims) -> Ty.memref dims (scalar_ty base)
  | t -> scalar_ty t

type binding =
  | Scalar of Ir.value  (** immutable SSA scalar: parameters, loop ivs *)
  | Slot of Ir.value  (** 1-element memref holding a mutable scalar *)
  | Array of Ir.value

type env = {
  ctx : Ir.Ctx.t;
  mutable vars : (string * binding) list;
  mutable ops : Ir.op list;  (** reversed *)
  module_fns : (string * (Ty.t list * Ty.t list)) list ref;
      (** signatures of previously generated functions, for calls *)
}

let emit env op = env.ops <- op :: env.ops

let emitr env (op, r) =
  emit env op;
  r

let take_ops env =
  let ops = List.rev env.ops in
  env.ops <- [];
  ops

let in_scope env f =
  (* Run [f] with a fresh op buffer and a savable variable scope; returns the
     ops emitted by [f]. *)
  let saved_ops = env.ops and saved_vars = env.vars in
  env.ops <- [];
  f ();
  let ops = List.rev env.ops in
  env.ops <- saved_ops;
  env.vars <- saved_vars;
  ops

let lookup env name =
  match List.assoc_opt name env.vars with
  | Some b -> b
  | None -> error "use of undeclared identifier %s" name

let bind env name b = env.vars <- (name, b) :: env.vars

let const_i env i = emitr env (Arith.constant_i env.ctx i)
let const_f env ?ty f = emitr env (Arith.constant_f env.ctx ?ty f)

(** Convert a value to float (f32) if it is an integer. *)
let to_float env v =
  if Ty.is_float v.Ir.vty then v else emitr env (Arith.sitofp env.ctx v ~ty:Ty.F32)

let to_index env v =
  if Ty.equal v.Ir.vty Ty.Index then v
  else if Ty.is_float v.Ir.vty then
    emitr env (Arith.binary env.ctx "arith.fptosi" v v ~ty:Ty.Index)
  else emitr env (Arith.index_cast env.ctx v ~ty:Ty.Index)

let math_builtins =
  [
    ("expf", "math.exp"); ("exp", "math.exp");
    ("logf", "math.log"); ("log", "math.log");
    ("sqrtf", "math.sqrt"); ("sqrt", "math.sqrt");
    ("tanhf", "math.tanh"); ("tanh", "math.tanh");
  ]

let rec gen_expr env (e : expr) : Ir.value =
  match e with
  | Int_lit i -> const_i env i
  | Float_lit f -> const_f env f
  | Var name -> (
      match lookup env name with
      | Scalar v -> v
      | Slot m -> emitr env (Memref.load env.ctx m [ const_i env 0 ])
      | Array m -> m (* arrays decay to references, e.g. as call arguments *))
  | Index (name, idx_exprs) -> (
      match lookup env name with
      | Array m ->
          let idxs = List.map (fun e -> to_index env (gen_expr env e)) idx_exprs in
          emitr env (Memref.load env.ctx m idxs)
      | Slot m when idx_exprs = [] -> emitr env (Memref.load env.ctx m [ const_i env 0 ])
      | Scalar _ | Slot _ -> error "%s is not an array" name)
  | Neg e ->
      let v = gen_expr env e in
      if Ty.is_float v.Ir.vty then emitr env (Arith.negf env.ctx v)
      else
        let zero = const_i env 0 in
        emitr env (Arith.subi env.ctx zero v)
  | Not e ->
      let v = gen_expr env e in
      let one = emitr env (Arith.constant_i env.ctx ~ty:Ty.I1 1) in
      emitr env (Arith.binary env.ctx "arith.xori" v one ~ty:Ty.I1)
  | Cond (c, a, b) ->
      let vc = gen_expr env c in
      let va = gen_expr env a and vb = gen_expr env b in
      let va, vb =
        if Ty.is_float va.Ir.vty || Ty.is_float vb.Ir.vty then
          (to_float env va, to_float env vb)
        else (va, vb)
      in
      emitr env (Arith.select env.ctx vc va vb)
  | Call (name, args) -> (
      match List.assoc_opt name math_builtins with
      | Some op_name ->
          let v = to_float env (gen_expr env (List.hd args)) in
          let o, rs =
            Ir.mk_fresh env.ctx op_name ~operands:[ v ] ~result_tys:[ v.Ir.vty ]
          in
          emit env o;
          List.hd rs
      | None -> (
          match List.assoc_opt name !(env.module_fns) with
          | Some (_, outputs) -> (
              let vargs = List.map (gen_expr env) args in
              let o, rs = Func.call env.ctx ~callee:name ~result_tys:outputs vargs in
              emit env o;
              match rs with
              | [ r ] -> r
              | _ -> error "call to %s used as an expression but it returns %d values" name (List.length rs))
          | None -> error "call to unknown function %s" name))
  | Bin (op, a, b) -> gen_binop env op a b

and gen_binop env op a b =
  let va = gen_expr env a and vb = gen_expr env b in
  let float_op = Ty.is_float va.Ir.vty || Ty.is_float vb.Ir.vty in
  match op with
  | "+" | "-" | "*" | "/" | "%" ->
      if float_op then
        let va = to_float env va and vb = to_float env vb in
        let name =
          match op with
          | "+" -> "arith.addf"
          | "-" -> "arith.subf"
          | "*" -> "arith.mulf"
          | "/" -> "arith.divf"
          | _ -> error "operator %% is not defined on floats"
        in
        emitr env (Arith.binary env.ctx name va vb ~ty:va.Ir.vty)
      else
        let name =
          match op with
          | "+" -> "arith.addi"
          | "-" -> "arith.subi"
          | "*" -> "arith.muli"
          | "/" -> "arith.divi"
          | _ -> "arith.remi"
        in
        emitr env (Arith.binary env.ctx name va vb ~ty:va.Ir.vty)
  | "<" | "<=" | ">" | ">=" | "==" | "!=" ->
      if float_op then
        let pred =
          match op with
          | "<" -> "olt" | "<=" -> "ole" | ">" -> "ogt" | ">=" -> "oge"
          | "==" -> "oeq" | _ -> "one"
        in
        emitr env (Arith.cmpf env.ctx pred (to_float env va) (to_float env vb))
      else
        let pred =
          match op with
          | "<" -> "slt" | "<=" -> "sle" | ">" -> "sgt" | ">=" -> "sge"
          | "==" -> "eq" | _ -> "ne"
        in
        emitr env (Arith.cmpi env.ctx pred va vb)
  | "&&" -> emitr env (Arith.binary env.ctx "arith.andi" va vb ~ty:Ty.I1)
  | "||" -> emitr env (Arith.binary env.ctx "arith.ori" va vb ~ty:Ty.I1)
  | _ -> error "unsupported binary operator %s" op

let coerce_to env ty v =
  if Ty.equal v.Ir.vty ty then v
  else if Ty.is_float ty && Ty.is_int v.Ir.vty then to_float env v
  else if Ty.is_int ty && Ty.is_float v.Ir.vty then to_index env v
  else v

let rec gen_stmt env (s : stmt) : unit =
  match s with
  | Block ss -> List.iter (gen_stmt env) ss
  | Expr_stmt (Call (name, args)) when not (List.mem_assoc name math_builtins) -> (
      (* void call statements, e.g. stage(A); *)
      match List.assoc_opt name !(env.module_fns) with
      | Some (_, outputs) ->
          let vargs = List.map (gen_expr env) args in
          let o, _ = Func.call env.ctx ~callee:name ~result_tys:outputs vargs in
          emit env o
      | None -> error "call to unknown function %s" name)
  | Expr_stmt e -> ignore (gen_expr env e)
  | Return None -> emit env (Func.return_ [])
  | Return (Some e) ->
      let v = gen_expr env e in
      emit env (Func.return_ [ v ])
  | Decl (Carr (base, dims), name, init) ->
      if Option.is_some init then error "array initializers are not supported";
      let m = emitr env (Memref.alloc env.ctx dims (scalar_ty base)) in
      bind env name (Array m)
  | Decl (ty, name, init) ->
      let elt = scalar_ty ty in
      let m = emitr env (Memref.alloc env.ctx [ 1 ] elt) in
      bind env name (Slot m);
      Option.iter
        (fun e ->
          let v = coerce_to env elt (gen_expr env e) in
          emit env (Memref.store v m [ const_i env 0 ]))
        init
  | Assign (lhs, op, rhs) ->
      let current () =
        match lhs with
        | Lvar name -> gen_expr env (Var name)
        | Lindex (name, idxs) -> gen_expr env (Index (name, idxs))
      in
      let rhs_v = gen_expr env rhs in
      let value =
        match op with
        | "=" -> rhs_v
        | "+=" | "-=" | "*=" | "/=" ->
            let cur = current () in
            let sym = String.sub op 0 1 in
            let cur, rhs_v =
              if Ty.is_float cur.Ir.vty || Ty.is_float rhs_v.Ir.vty then
                (to_float env cur, to_float env rhs_v)
              else (cur, rhs_v)
            in
            let name =
              if Ty.is_float cur.Ir.vty then
                match sym with
                | "+" -> "arith.addf" | "-" -> "arith.subf"
                | "*" -> "arith.mulf" | _ -> "arith.divf"
              else
                match sym with
                | "+" -> "arith.addi" | "-" -> "arith.subi"
                | "*" -> "arith.muli" | _ -> "arith.divi"
            in
            emitr env (Arith.binary env.ctx name cur rhs_v ~ty:cur.Ir.vty)
        | _ -> error "unsupported assignment operator %s" op
      in
      (match lhs with
      | Lvar name -> (
          match lookup env name with
          | Slot m ->
              let elt = (Ty.as_memref m.Ir.vty).Ty.elt in
              emit env (Memref.store (coerce_to env elt value) m [ const_i env 0 ])
          | Scalar _ -> error "cannot assign to parameter %s (pass it as a pointer)" name
          | Array _ -> error "cannot assign to array %s" name)
      | Lindex (name, idx_exprs) -> (
          match lookup env name with
          | Array m ->
              let idxs = List.map (fun e -> to_index env (gen_expr env e)) idx_exprs in
              let elt = (Ty.as_memref m.Ir.vty).Ty.elt in
              emit env (Memref.store (coerce_to env elt value) m idxs)
          | Slot m ->
              emit env (Memref.store (coerce_to env (Ty.as_memref m.Ir.vty).Ty.elt value) m [ const_i env 0 ])
          | Scalar _ -> error "%s is not an array" name))
  | If (cond, then_, else_) ->
      let vc = gen_expr env cond in
      let then_ops = in_scope env (fun () -> List.iter (gen_stmt env) then_) in
      let else_ops = in_scope env (fun () -> List.iter (gen_stmt env) else_) in
      emit env (Scf.if_ ~cond:vc ~then_:(then_ops @ [ Scf.yield ]) ~else_:(else_ops @ [ Scf.yield ]))
  | For { var; init; cmp; bound; step; body } ->
      let lb = to_index env (gen_expr env init) in
      let bound_v = to_index env (gen_expr env bound) in
      let ub =
        if cmp = "<" then bound_v
        else
          let one = const_i env 1 in
          emitr env (Arith.addi env.ctx bound_v one)
      in
      let step_v = const_i env step in
      let iv = Ir.Ctx.fresh env.ctx Ty.Index in
      let body_ops =
        in_scope env (fun () ->
            bind env var (Scalar iv);
            List.iter (gen_stmt env) body)
      in
      emit env (Scf.for_raw ~lb ~ub ~step:step_v ~iv (body_ops @ [ Scf.yield ]))

let gen_fndef ctx module_fns (f : fndef) : Ir.op =
  let env = { ctx; vars = []; ops = []; module_fns } in
  let param_tys = List.map (fun p -> ir_ty p.pty) f.params in
  let args = List.map (Ir.Ctx.fresh ctx) param_tys in
  List.iter2
    (fun p v ->
      match p.pty with
      | Carr _ -> bind env p.pname (Array v)
      | _ -> bind env p.pname (Scalar v))
    f.params args;
  List.iter (gen_stmt env) f.fbody;
  let outputs = match f.ret with None -> [] | Some t -> [ scalar_ty t ] in
  let body = take_ops env in
  (* Ensure the body ends with a return. *)
  let body =
    match List.rev body with
    | last :: _ when Func.is_return last -> body
    | _ -> body @ [ Func.return_ [] ]
  in
  module_fns := (f.fname, (param_tys, outputs)) :: !module_fns;
  Func.func_raw ~name:f.fname ~args ~outputs body

(** Compile a C translation unit into an IR module at the scf level. *)
let compile ctx (prog : program) : Ir.op =
  let module_fns = ref [] in
  Ir.module_ (List.map (gen_fndef ctx module_fns) prog)

(** Front-end entry point: C source text to an scf-level module. *)
let compile_source ctx src = compile ctx (Parser.parse_program src)
