(** Seeded, deterministic random program generator.

    Produces well-typed loop-level modules — affine loop nests with
    parameterizable depth and trip counts, memref allocations of random
    shapes, arith/math bodies, loop-carried reductions through memory, and
    conditionals via [affine.if] — plus random-but-valid transform
    configurations (pass pipelines that are applicable stage by stage, per
    {!Pass_probe}).

    Determinism contract: the whole program is a pure function of [(params,
    seed)] — the same seed yields byte-identical printed IR on every run
    (asserted by [test_fuzz.ml]). All random draws go through the
    fully-specified {!Rng}; list construction uses explicitly ordered helpers
    so no draw order depends on unspecified evaluation order.

    Value-safety invariants (so the differential oracle never chases NaN/inf
    ghosts): memory accesses are wrapped in [mod shape_i] and stay in bounds;
    integer divisors are strictly positive; float division is by nonzero
    constants only; multiplication depth is budgeted per statement so values
    stay far from overflow even across reduction loops; [math] calls are
    limited to the bounded [tanh]. *)

open Mir
open Dialects
open Scalehls
module A = Affine

type params = {
  max_nests : int;  (** top-level loop nests per function *)
  max_depth : int;  (** loop-nest depth *)
  max_args : int;  (** memref arguments *)
  max_dim : int;  (** largest memref dimension / trip count *)
  allow_if : bool;  (** generate [affine.if] conditionals *)
  allow_int_ops : bool;  (** generate integer arith feeding [sitofp] *)
  allow_locals : bool;  (** generate local [memref.alloc] scratch buffers *)
  max_pipeline : int;  (** transform-pipeline length *)
}

let default_params =
  {
    max_nests = 3;
    max_depth = 3;
    max_args = 3;
    max_dim = 8;
    allow_if = true;
    allow_int_ops = true;
    allow_locals = true;
    max_pipeline = 5;
  }

type t = {
  seed : int;
  params : params;
  module_ : Ir.op;
  top : string;
}

let top_name = "fuzz_kernel"

(* Explicitly ordered list construction: [f 0; f 1; ...] with f applied in
   increasing order (List.init's evaluation order is unspecified, which
   would silently break seed determinism with an effectful [f]). *)
let gen_list n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let map_ordered f l =
  let rec go acc = function [] -> List.rev acc | x :: r -> go (f x :: acc) r in
  go [] l

(* ---- Generation environment ---------------------------------------------- *)

type env = {
  ctx : Ir.Ctx.t;
  rng : Rng.t;
  p : params;
  ivs : (Ir.value * int) list;  (** in-scope induction vars with const ubs, outer first *)
  mems : (Ir.value * int list) list;  (** accessible memrefs with shapes *)
  scalars : Ir.value list;  (** float scalar arguments *)
}

let gen_shape rng ~max_dim =
  let rank = 1 + Rng.int rng 2 in
  gen_list rank (fun _ -> 2 + Rng.int rng (max_dim - 1))

(* An affine access (map, operands) into [shape] that is in-bounds for every
   in-scope iv valuation: each index expression is [e mod dim] or a small
   constant. *)
let gen_access env shape =
  let n_ivs = List.length env.ivs in
  let exprs =
    map_ordered
      (fun dimsize ->
        if n_ivs = 0 || Rng.chance env.rng 15 then A.Expr.const (Rng.int env.rng dimsize)
        else
          let base = A.Expr.dim (Rng.int env.rng n_ivs) in
          let base =
            match Rng.int env.rng 4 with
            | 0 -> A.Expr.add base (A.Expr.const (1 + Rng.int env.rng 3))
            | 1 when n_ivs > 1 -> A.Expr.add base (A.Expr.dim (Rng.int env.rng n_ivs))
            | _ -> base
          in
          A.Expr.mod_ base (A.Expr.const dimsize))
      shape
  in
  (A.Map.make ~num_dims:n_ivs ~num_syms:0 exprs, List.map fst env.ivs)

let gen_load env =
  let mem, shape = Rng.pick env.rng env.mems in
  let map, opnds = gen_access env shape in
  let op, v = Affine_d.load env.ctx mem ~map opnds in
  ([ op ], v)

(* ---- Integer expressions (feeding sitofp / select conditions) ------------- *)

let rec gen_iexpr env ~depth : Ir.op list * Ir.value =
  let leaf () =
    if env.ivs <> [] && Rng.chance env.rng 70 then ([], fst (Rng.pick env.rng env.ivs))
    else
      let o, v = Arith.constant_i env.ctx (Rng.int env.rng 7 - 2) in
      ([ o ], v)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int env.rng 8 with
    | 0 | 1 ->
        let a_ops, a = gen_iexpr env ~depth:(depth - 1) in
        let b_ops, b = gen_iexpr env ~depth:(depth - 1) in
        let o, v = Arith.addi env.ctx a b in
        (a_ops @ b_ops @ [ o ], v)
    | 2 ->
        let a_ops, a = gen_iexpr env ~depth:(depth - 1) in
        let b_ops, b = gen_iexpr env ~depth:(depth - 1) in
        let o, v = Arith.subi env.ctx a b in
        (a_ops @ b_ops @ [ o ], v)
    | 3 ->
        let a_ops, a = gen_iexpr env ~depth:(depth - 1) in
        let b_ops, b = gen_iexpr env ~depth:(depth - 1) in
        let o, v = Arith.muli env.ctx a b in
        (a_ops @ b_ops @ [ o ], v)
    | 4 ->
        (* Division family over a strictly positive divisor: exercises the
           documented round-toward-zero / floor / ceil semantics. *)
        let a_ops, a = gen_iexpr env ~depth:(depth - 1) in
        let d_op, d = Arith.constant_i env.ctx (1 + Rng.int env.rng 4) in
        let f = Rng.pick env.rng [ Arith.divi; Arith.remi; Arith.floordivi; Arith.ceildivi ] in
        let o, v = f env.ctx a d in
        (a_ops @ [ d_op; o ], v)
    | 5 ->
        let a_ops, a = gen_iexpr env ~depth:(depth - 1) in
        let b_ops, b = gen_iexpr env ~depth:(depth - 1) in
        let f = Rng.pick env.rng [ Arith.maxi; Arith.mini ] in
        let o, v = f env.ctx a b in
        (a_ops @ b_ops @ [ o ], v)
    | 6 ->
        let a_ops, a = gen_iexpr env ~depth:(depth - 1) in
        let b_ops, b = gen_iexpr env ~depth:(depth - 1) in
        let pred = Rng.pick env.rng [ "slt"; "sle"; "sgt"; "sge"; "eq"; "ne" ] in
        let c_op, c = Arith.cmpi env.ctx pred a b in
        let s_op, v = Arith.select env.ctx c a b in
        (a_ops @ b_ops @ [ c_op; s_op ], v)
    | _ -> leaf ()

(* ---- Float expressions ---------------------------------------------------- *)

(* [mul_budget] caps multiplications per statement so magnitudes stay
   polynomial in the inputs even through reduction loops. *)
let rec gen_fexpr env ~depth mul_budget : Ir.op list * Ir.value =
  let leaf () =
    match Rng.int env.rng 4 with
    | 0 when env.scalars <> [] -> ([], Rng.pick env.rng env.scalars)
    | 1 ->
        let o, v =
          Arith.constant_f env.ctx (float_of_int (Rng.int env.rng 17 - 8) /. 2.)
        in
        ([ o ], v)
    | _ -> gen_load env
  in
  if depth <= 0 then leaf ()
  else
    let bin f =
      let a_ops, a = gen_fexpr env ~depth:(depth - 1) mul_budget in
      let b_ops, b = gen_fexpr env ~depth:(depth - 1) mul_budget in
      let o, v = f env.ctx a b in
      (a_ops @ b_ops @ [ o ], v)
    in
    match Rng.int env.rng 12 with
    | 0 | 1 -> bin Arith.addf
    | 2 -> bin Arith.subf
    | 3 when !mul_budget > 0 ->
        decr mul_budget;
        bin Arith.mulf
    | 4 -> bin Arith.maxf
    | 5 -> bin Arith.minf
    | 6 ->
        let a_ops, a = gen_fexpr env ~depth:(depth - 1) mul_budget in
        let o, v = Arith.negf env.ctx a in
        (a_ops @ [ o ], v)
    | 7 ->
        (* Division by a nonzero constant only: no NaN/inf source. *)
        let a_ops, a = gen_fexpr env ~depth:(depth - 1) mul_budget in
        let d_op, d = Arith.constant_f env.ctx (Rng.pick env.rng [ 2.; 4.; 8.; 0.5 ]) in
        let o, v = Arith.divf env.ctx a d in
        (a_ops @ [ d_op; o ], v)
    | 8 when env.p.allow_int_ops ->
        let i_ops, iv = gen_iexpr env ~depth:2 in
        let o, v = Arith.sitofp env.ctx iv ~ty:Ty.F32 in
        (i_ops @ [ o ], v)
    | 9 ->
        let a_ops, a = gen_fexpr env ~depth:(depth - 1) mul_budget in
        let b_ops, b = gen_fexpr env ~depth:(depth - 1) mul_budget in
        let pred = Rng.pick env.rng [ "olt"; "ole"; "ogt"; "oge" ] in
        let c_op, c = Arith.cmpf env.ctx pred a b in
        let s_op, v = Arith.select env.ctx c a b in
        (a_ops @ b_ops @ [ c_op; s_op ], v)
    | 10 when Rng.chance env.rng 25 ->
        (* tanh is the one math op with a bounded range — always safe. *)
        let a_ops, a = gen_fexpr env ~depth:(depth - 1) mul_budget in
        let o, rs =
          Ir.mk_fresh env.ctx "math.tanh" ~operands:[ a ] ~result_tys:[ Ty.F32 ]
        in
        (a_ops @ [ o ], List.hd rs)
    | _ -> bin Arith.addf

(* ---- Statements ----------------------------------------------------------- *)

(* A store statement: expression ops immediately followed by the store, all
   in one block (self-contained SSA). With some probability it is a
   loop-carried reduction: combine the current cell value additively. *)
let gen_store env : Ir.op list =
  let mem, shape = Rng.pick env.rng env.mems in
  let map, opnds = gen_access env shape in
  let mul_budget = ref 2 in
  let e_ops, ev = gen_fexpr env ~depth:(1 + Rng.int env.rng 2) mul_budget in
  if Rng.chance env.rng 40 then begin
    let l_op, lv = Affine_d.load env.ctx mem ~map opnds in
    let comb = Rng.pick env.rng [ Arith.addf; Arith.subf; Arith.maxf; Arith.minf ] in
    let c_op, cv = comb env.ctx lv ev in
    e_ops @ [ l_op; c_op; Affine_d.store env.ctx cv mem ~map opnds ]
  end
  else e_ops @ [ Affine_d.store env.ctx ev mem ~map opnds ]

(* Wrap [stmts] in an affine.if over the in-scope ivs. *)
let wrap_if env stmts : Ir.op list =
  let n = List.length env.ivs in
  if n = 0 then stmts
  else begin
    let iv_j = Rng.int env.rng n in
    let _, ub_j = List.nth env.ivs iv_j in
    let constraint_ =
      match Rng.int env.rng 4 with
      | 0 -> A.Set_.ge (A.Expr.dim iv_j) (A.Expr.const 1)
      | 1 -> A.Set_.le (A.Expr.dim iv_j) (A.Expr.const (max 0 (ub_j - 2)))
      | 2 when n > 1 ->
          let k = Rng.int env.rng n in
          A.Set_.eq_zero (A.Expr.sub (A.Expr.dim iv_j) (A.Expr.dim k))
      | _ ->
          let k = Rng.int env.rng n in
          A.Set_.ge (A.Expr.add (A.Expr.dim iv_j) (A.Expr.dim k)) (A.Expr.const 2)
    in
    let set = A.Set_.make ~num_dims:n ~num_syms:0 [ constraint_ ] in
    let else_ = if Rng.chance env.rng 50 then [] else gen_store env in
    [
      Affine_d.if_ ~set
        ~operands:(List.map fst env.ivs)
        ~then_:(stmts @ [ Affine_d.yield ])
        ~else_:(else_ @ [ Affine_d.yield ]);
    ]
  end

let gen_body env : Ir.op list =
  let n = 1 + Rng.int env.rng 3 in
  List.concat
    (gen_list n (fun _ ->
         let s = gen_store env in
         if env.p.allow_if && Rng.chance env.rng 30 then wrap_if env s else s))

let rec gen_nest env ~depth : Ir.op =
  let ub = Rng.pick env.rng (List.filter (fun u -> u <= env.p.max_dim) [ 2; 3; 4; 6; 8 ]) in
  let step = if Rng.chance env.rng 15 then 2 else 1 in
  Affine_d.for_const env.ctx ~lb:0 ~ub ~step (fun iv ->
      let env = { env with ivs = env.ivs @ [ (iv, ub) ] } in
      let body =
        if depth <= 1 then gen_body env
        else begin
          (* Occasionally imperfect: a statement between loop levels. *)
          let pre = if Rng.chance env.rng 30 then gen_store env else [] in
          pre @ [ gen_nest env ~depth:(depth - 1) ]
        end
      in
      body @ [ Affine_d.yield ])

(* ---- Whole programs ------------------------------------------------------- *)

let program ?(params = default_params) ~seed () : t =
  let rng = Rng.create seed in
  let ctx = Ir.Ctx.create () in
  let n_args = 1 + Rng.int rng params.max_args in
  let arg_shapes = gen_list n_args (fun _ -> gen_shape rng ~max_dim:params.max_dim) in
  let has_scalar = Rng.chance rng 50 in
  let inputs =
    map_ordered (fun s -> Ty.memref s Ty.F32) arg_shapes
    @ (if has_scalar then [ Ty.F32 ] else [])
  in
  let f =
    Func.func ctx ~name:top_name ~inputs ~outputs:[] (fun args ->
        let mems, scalars =
          List.partition (fun (v : Ir.value) -> Ty.is_memref v.Ir.vty) args
        in
        let mems = List.map2 (fun v s -> (v, s)) mems arg_shapes in
        (* Local scratch buffers, deterministically pre-initialized via the
           interpreter's [init_seed] convention. *)
        let locals =
          if params.allow_locals && Rng.chance rng 50 then begin
            let shape = gen_shape rng ~max_dim:params.max_dim in
            let op, v = Memref.alloc ctx shape Ty.F32 in
            let op = Ir.set_attr op "init_seed" (Attr.Int (Rng.int rng 1000)) in
            [ (op, (v, shape)) ]
          end
          else []
        in
        let env =
          {
            ctx;
            rng;
            p = params;
            ivs = [];
            mems = mems @ List.map snd locals;
            scalars;
          }
        in
        let n_nests = 1 + Rng.int rng params.max_nests in
        let nests =
          gen_list n_nests (fun _ -> gen_nest env ~depth:(1 + Rng.int rng params.max_depth))
        in
        List.map fst locals @ nests @ [ Func.return_ [] ])
  in
  { seed; params; module_ = Ir.module_ [ f ]; top = top_name }

(** Printed IR of the generated module — the canonical form for determinism
    assertions and reproducer files. *)
let to_string t = Printer.op_to_string t.module_

(* ---- Transform configurations -------------------------------------------- *)

type config = { pipeline : string list }

(** A random-but-valid pass pipeline for [prog]: stages are drawn from
    {!Pass_probe.fuzz_pool} of the *intermediate* module, so every stage is
    applicable to what the previous stages produce. Deterministic in
    [prog.seed]. *)
let config ?max_len (prog : t) : config =
  let max_len = Option.value max_len ~default:prog.params.max_pipeline in
  let rng = Rng.create (Rng.derive prog.seed 0x9c0f) in
  let len = 1 + Rng.int rng max_len in
  let rec go m acc k =
    if k <= 0 then List.rev acc
    else
      match Pass_probe.fuzz_pool m with
      | [] -> List.rev acc
      | pool -> (
          let name = Rng.pick rng pool in
          match Transform_lib.find_pass name with
          | None -> List.rev acc
          | Some p ->
              let m' = Pass.run_one p (Ir.Ctx.of_op m) m in
              go m' (name :: acc) (k - 1))
  in
  { pipeline = go prog.module_ [] len }
