(** The fuzzing campaign driver: generate → oracle → (reduce) loop.

    Each iteration derives an independent program seed from the campaign seed
    ({!Rng.derive}), generates a program and a valid pipeline, and runs the
    differential oracle. The QoR metamorphic oracles run on every program
    (they are cheap); the DSE determinism oracle runs every [dse_every]
    programs (a DSE run is ~10^3 oracle-interpretations worth of work).

    Failures are optionally reduced on the spot with the oracle that caught
    them re-checked at every shrink step, so a campaign's output is a list of
    minimal reproducers ready to land in [test/corpus/]. *)

type finding = {
  prog_seed : int;
  oracle : Corpus.oracle_kind;
  failure : Oracle.failure;  (** the original (pre-reduction) failure *)
  reduced : Reduce.candidate option;  (** present when reduction ran *)
  reduced_failure : Oracle.failure option;  (** the failure of the reduced case *)
}

type stats = {
  programs : int;
  oracle_runs : int;
  failures : int;
  elapsed : float;
}

let classify (f : Oracle.failure) : Corpus.oracle_kind =
  match f.Oracle.oracle with
  | "qor-pipeline" -> Corpus.Qor_pipeline
  | "qor-estimator" -> Corpus.Qor_estimator
  | "dse-jobs" -> Corpus.Dse_jobs
  | "dse-symbolic" -> Corpus.Dse_symbolic
  | "dse-incremental" -> Corpus.Dse_incremental
  | "dse-strategy" -> Corpus.Dse_strategy
  | _ -> Corpus.Interp_diff

(* Re-check predicate for the reducer, per oracle family. *)
let still_fails_for ~prog_seed ~top kind (c : Reduce.candidate) =
  let m = c.Reduce.module_ in
  (match kind with
  | Corpus.Interp_diff ->
      Oracle.differential ~seed:prog_seed m ~top ~pipeline:c.Reduce.pipeline
  | Corpus.Qor_pipeline -> Oracle.qor_pipelining_monotone m ~top
  | Corpus.Qor_estimator -> Oracle.qor_estimator_agrees m ~top
  | Corpus.Dse_jobs -> Oracle.dse_jobs_deterministic ~seed:prog_seed m ~top
  | Corpus.Dse_symbolic -> Oracle.dse_symbolic_equiv ~seed:prog_seed m ~top
  | Corpus.Dse_incremental -> Oracle.dse_incremental ~seed:prog_seed m ~top
  | Corpus.Dse_strategy ->
      Oracle.dse_strategy_frontier_consistent ~seed:prog_seed m ~top)
  <> []

let first_failure_of (c : Reduce.candidate) ~prog_seed ~top kind =
  match
    match kind with
    | Corpus.Interp_diff ->
        Oracle.differential ~seed:prog_seed c.Reduce.module_ ~top
          ~pipeline:c.Reduce.pipeline
    | Corpus.Qor_pipeline -> Oracle.qor_pipelining_monotone c.Reduce.module_ ~top
    | Corpus.Qor_estimator -> Oracle.qor_estimator_agrees c.Reduce.module_ ~top
    | Corpus.Dse_jobs ->
        Oracle.dse_jobs_deterministic ~seed:prog_seed c.Reduce.module_ ~top
    | Corpus.Dse_symbolic ->
        Oracle.dse_symbolic_equiv ~seed:prog_seed c.Reduce.module_ ~top
    | Corpus.Dse_incremental ->
        Oracle.dse_incremental ~seed:prog_seed c.Reduce.module_ ~top
    | Corpus.Dse_strategy ->
        Oracle.dse_strategy_frontier_consistent ~seed:prog_seed
          c.Reduce.module_ ~top
  with
  | f :: _ -> Some f
  | [] -> None

(** Run a campaign of [iters] programs from [seed]. [log] receives one-line
    progress messages. Returns the campaign stats and all findings (one per
    failing program: the first failure, reduced when [reduce] is set). *)
let run ?(params = Gen.default_params) ?eps ?(dse_every = 0) ?(reduce = false)
    ?(log = fun _ -> ()) ~seed ~iters () : stats * finding list =
  let t0 = Obs.Clock.now_ns () in
  (* Campaign telemetry: counters accumulate per program / oracle run /
     verdict / reducer step, and each program runs inside a span so a traced
     campaign shows where the time goes (generation vs oracles vs reduction). *)
  let reg = Obs.Metrics.registry "fuzz" in
  let c_programs = Obs.Metrics.counter reg "programs" in
  let c_oracle_runs = Obs.Metrics.counter reg "oracle_runs" in
  let c_failures = Obs.Metrics.counter reg "failures" in
  let c_reduce_steps = Obs.Metrics.counter reg "reduce.steps" in
  let findings = ref [] in
  let oracle_runs = ref 0 in
  let count_oracles n =
    oracle_runs := !oracle_runs + n;
    Obs.Metrics.add c_oracle_runs (float_of_int n)
  in
  for i = 0 to iters - 1 do
    let prog_seed = Rng.derive seed i in
    Obs.Trace.with_span ~cat:"fuzz" "fuzz.program"
      ~args:[ ("prog_seed", Obs.Json.Int prog_seed) ]
    @@ fun () ->
    let p =
      Obs.Trace.with_span ~cat:"fuzz" "fuzz.generate" (fun () ->
          Gen.program ~params ~seed:prog_seed ())
    in
    Obs.Metrics.incr c_programs;
    let cfg = Gen.config p in
    let top = p.Gen.top in
    let failures =
      Obs.Trace.with_span ~cat:"fuzz" "fuzz.oracles" @@ fun () ->
      let diff =
        Oracle.differential ?eps ~seed:prog_seed p.Gen.module_ ~top
          ~pipeline:cfg.Gen.pipeline
      in
      count_oracles 1;
      let qor =
        Oracle.qor_pipelining_monotone p.Gen.module_ ~top
        @ Oracle.qor_estimator_agrees p.Gen.module_ ~top
      in
      count_oracles 2;
      let dse =
        if dse_every > 0 && i mod dse_every = 0 then begin
          count_oracles 4;
          Oracle.dse_symbolic_equiv ~seed:prog_seed p.Gen.module_ ~top
          @ Oracle.dse_incremental ~seed:prog_seed p.Gen.module_ ~top
          @ Oracle.dse_jobs_deterministic ~seed:prog_seed p.Gen.module_ ~top
          @ Oracle.dse_strategy_frontier_consistent ~seed:prog_seed
              p.Gen.module_ ~top
        end
        else []
      in
      diff @ qor @ dse
    in
    (match failures with
    | [] -> ()
    | failure :: _ ->
        log
          (Fmt.str "iter %d (prog seed %d): %a" i prog_seed Oracle.pp_failure failure);
        let kind = classify failure in
        Obs.Metrics.incr c_failures;
        Obs.Metrics.incr
          (Obs.Metrics.counter reg
             ("verdict." ^ Corpus.oracle_kind_to_string kind));
        let reduced, reduced_failure =
          if not reduce then (None, None)
          else begin
            let c0 =
              {
                Reduce.module_ = p.Gen.module_;
                pipeline =
                  (match kind with Corpus.Interp_diff -> cfg.Gen.pipeline | _ -> []);
              }
            in
            let still_fails = still_fails_for ~prog_seed ~top kind in
            match
              Obs.Trace.with_span ~cat:"fuzz" "fuzz.reduce" (fun () ->
                  Reduce.run ~still_fails c0)
            with
            | o ->
                let c = o.Reduce.reduced in
                Obs.Metrics.add c_reduce_steps (float_of_int o.Reduce.steps);
                log
                  (Fmt.str "  reduced: size %d -> %d in %d steps"
                     o.Reduce.initial_size o.Reduce.final_size o.Reduce.steps);
                (Some c, first_failure_of c ~prog_seed ~top kind)
            | exception e ->
                Oracle.reraise_terminated e;
                log (Fmt.str "  reduction failed: %s" (Printexc.to_string e));
                (None, None)
          end
        in
        findings := { prog_seed; oracle = kind; failure; reduced; reduced_failure } :: !findings);
    if (i + 1) mod 50 = 0 then
      log (Fmt.str "progress: %d/%d programs, %d findings" (i + 1) iters
             (List.length !findings))
  done;
  let stats =
    {
      programs = iters;
      oracle_runs = !oracle_runs;
      failures = List.length !findings;
      elapsed = Obs.Clock.since_s t0;
    }
  in
  (stats, List.rev !findings)
