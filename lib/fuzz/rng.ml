(** A self-contained splitmix64 PRNG for the fuzzing subsystem.

    The generator's determinism contract — identical seed ⇒ identical program
    stream, on every platform and OCaml release — is part of the corpus
    format ({!Corpus}), so the fuzzer cannot depend on [Stdlib.Random]'s
    unspecified, version-dependent algorithm. Splitmix64 is exactly specified
    over 64-bit integers, which [Int64] models losslessly everywhere. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* Finalization mix of splitmix64. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

(** Uniform draw in [0, bound); [bound] must be positive. Modulo bias is
    immaterial at fuzzing bounds (all well below 2^32). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int bound))

let bool t = int t 2 = 1

(** True with probability [pct]/100. *)
let chance t pct = int t 100 < pct

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

(** An independent deterministic sub-stream: used to derive the per-program
    seed [i] of a run from the run seed without coupling the streams. *)
let derive seed i = Int64.to_int (Int64.shift_right_logical (mix (Int64.add (mix (Int64.of_int seed)) (Int64.of_int i))) 1)
