(** The seeded regression corpus: reproducer files for fuzzer findings.

    There is no IR parser in this repository, so a reproducer does not store
    IR — it stores the *recipe*: the program seed and the pass pipeline. The
    generator's determinism contract ({!Rng}, {!Gen}) guarantees the seed
    regenerates the exact module on any platform. The printed IR may be
    embedded as ["#"] comments for human readers; it is ignored on load.

    File format (one finding per [.repro] file, [key: value] lines):
    {v
    name: cse-constant-type-confusion
    oracle: interp-diff
    seed: 49
    pipeline: affine-loop-unroll cse
    note: CSE merged 4 : index with 4.0 : f32 (same printed attr)
    gen: v1-default
    # <printed IR, informational only>
    v} *)

type oracle_kind =
  | Interp_diff  (** differential interpretation over the pipeline *)
  | Qor_pipeline  (** pipelining-latency monotonicity *)
  | Qor_estimator  (** estimator vs virtual-synth agreement *)
  | Dse_jobs  (** -j N vs -j 1 determinism *)
  | Dse_symbolic  (** symbolic vs materialized point evaluation *)
  | Dse_incremental  (** warm band-delta estimates vs cold full re-estimation *)
  | Dse_strategy  (** surrogate frontier eps-covers the exhaustive frontier *)

let oracle_kind_to_string = function
  | Interp_diff -> "interp-diff"
  | Qor_pipeline -> "qor-pipeline"
  | Qor_estimator -> "qor-estimator"
  | Dse_jobs -> "dse-jobs"
  | Dse_symbolic -> "dse-symbolic"
  | Dse_incremental -> "dse-incremental"
  | Dse_strategy -> "dse-strategy"

let oracle_kind_of_string = function
  | "interp-diff" -> Some Interp_diff
  | "qor-pipeline" -> Some Qor_pipeline
  | "qor-estimator" -> Some Qor_estimator
  | "dse-jobs" -> Some Dse_jobs
  | "dse-symbolic" -> Some Dse_symbolic
  | "dse-incremental" -> Some Dse_incremental
  | "dse-strategy" -> Some Dse_strategy
  | _ -> None

type entry = {
  name : string;
  oracle : oracle_kind;
  seed : int;
  pipeline : string list;  (** empty for the non-differential oracles *)
  note : string;
  gen : string;  (** generator revision tag; only ["v1-default"] exists *)
}

let gen_current = "v1-default"

let to_string ?ir e =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "name: %s\n" e.name);
  Buffer.add_string b (Printf.sprintf "oracle: %s\n" (oracle_kind_to_string e.oracle));
  Buffer.add_string b (Printf.sprintf "seed: %d\n" e.seed);
  Buffer.add_string b
    (Printf.sprintf "pipeline: %s\n"
       (match e.pipeline with [] -> "-" | ps -> String.concat " " ps));
  Buffer.add_string b (Printf.sprintf "note: %s\n" e.note);
  Buffer.add_string b (Printf.sprintf "gen: %s\n" e.gen);
  (match ir with
  | None -> ()
  | Some ir ->
      String.split_on_char '\n' ir
      |> List.iter (fun l -> Buffer.add_string b ("# " ^ l ^ "\n")));
  Buffer.contents b

let of_string s =
  let kv = Hashtbl.create 8 in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match String.index_opt line ':' with
           | Some i ->
               let k = String.trim (String.sub line 0 i) in
               let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
               Hashtbl.replace kv k v
           | None -> ());
  let find k = Hashtbl.find_opt kv k in
  match (find "name", find "oracle", find "seed") with
  | Some name, Some oracle_s, Some seed_s -> (
      match (oracle_kind_of_string oracle_s, int_of_string_opt seed_s) with
      | Some oracle, Some seed ->
          let pipeline =
            match find "pipeline" with
            | None | Some "-" | Some "" -> []
            | Some ps -> String.split_on_char ' ' ps |> List.filter (( <> ) "")
          in
          Ok
            {
              name;
              oracle;
              seed;
              pipeline;
              note = Option.value (find "note") ~default:"";
              gen = Option.value (find "gen") ~default:gen_current;
            }
      | _ -> Error "corpus entry: bad oracle or seed field")
  | _ -> Error "corpus entry: missing name/oracle/seed field"

let save ?ir path e =
  let oc = open_out path in
  output_string oc (to_string ?ir e);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(** Replay [e]: regenerate the program from its seed and run the recorded
    oracle. Returns the oracle's failures — the empty list means the finding
    is fixed (the expected state for checked-in corpus entries). *)
let replay (e : entry) : Oracle.failure list =
  let p = Gen.program ~seed:e.seed () in
  let m = p.Gen.module_ and top = p.Gen.top in
  match e.oracle with
  | Interp_diff -> Oracle.differential ~seed:e.seed m ~top ~pipeline:e.pipeline
  | Qor_pipeline -> Oracle.qor_pipelining_monotone m ~top
  | Qor_estimator -> Oracle.qor_estimator_agrees m ~top
  | Dse_jobs -> Oracle.dse_jobs_deterministic ~seed:e.seed m ~top
  | Dse_symbolic -> Oracle.dse_symbolic_equiv ~seed:e.seed m ~top
  | Dse_incremental -> Oracle.dse_incremental ~seed:e.seed m ~top
  | Dse_strategy -> Oracle.dse_strategy_frontier_consistent ~seed:e.seed m ~top
