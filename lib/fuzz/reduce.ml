(** Delta-debugging test-case reduction.

    Shrinks a failing [(module, pipeline)] pair to a minimal reproducer by
    greedily applying structural shrink candidates — dropping pipeline
    stages, dropping ops whose results are unused, unwrapping loops and
    conditionals, halving trip counts — and keeping a candidate only when
    (a) the shrunk module still verifies and (b) the caller's [still_fails]
    oracle still reports a failure.

    Termination is guaranteed by a strictly decreasing {!size} metric: every
    candidate constructively removes at least one op, one pipeline stage, or
    at least one unit of constant trip extent, all of which the metric
    counts. *)

open Mir
open Dialects

type candidate = { module_ : Ir.op; pipeline : string list }

(* ---- Size metric ----------------------------------------------------------- *)

(* Ops weigh 1; affine.for ops additionally weigh their constant trip extent
   (so trip halving is a strict shrink even when no op disappears); the
   pipeline weighs its length. *)
let size (c : candidate) =
  let op_weight =
    Walk.fold_ops
      (fun acc o ->
        let extra =
          if Affine_d.is_for o then
            1 + (match Affine_d.const_trip_count o with Some t -> t | None -> 0)
          else 0
        in
        acc + 1 + extra)
      0 c.module_
  in
  op_weight + List.length c.pipeline

(* ---- Candidate enumeration -------------------------------------------------- *)

(* Replace the [k]-th op (pre-order over nested regions) matching [p] with
   [rewrite op] (a list of ops). Purely structural; returns [None] if fewer
   than [k+1] ops match. *)
let rewrite_nth_matching p rewrite k (m : Ir.op) : Ir.op option =
  let count = ref 0 in
  let hit = ref false in
  let m' =
    Walk.expand_in_op
      (fun o ->
        if p o && not !hit then begin
          let i = !count in
          incr count;
          if i = k then begin
            hit := true;
            rewrite o
          end
          else [ o ]
        end
        else [ o ])
      m
  in
  if !hit then Some m' else None

let count_matching p m = Walk.fold_ops (fun n o -> if p o then n + 1 else n) 0 m

(* Never drop the structural skeleton or terminators. *)
let droppable o =
  match o.Ir.name with
  | "module" | "func" | "func.return" | "affine.yield" | "scf.yield" -> false
  | _ -> true

(* An op is plausibly removable when none of the values it defines are used
   anywhere (conservative for region-carrying ops, whose internal defs are
   self-used; those are shrunk by the unwrap candidates instead). The final
   authority is the verifier check on the rewritten module. *)
let removable m o =
  let used = Walk.used_values m in
  let defined = Walk.defined_values o in
  droppable o && Ir.Value_set.is_empty (Ir.Value_set.inter defined used)

(* Unwrap an affine.for: substitute the induction variable with the constant
   lower bound and splice the body in place of the loop. Only for constant
   lower bounds (the generated corpus always has them). *)
let unwrap_loop ctx o =
  match Affine_d.const_bounds o with
  | Some (lb, _) ->
      let iv = Affine_d.induction_var o in
      let c_op, c = Arith.constant_i ctx lb in
      let subst = Ir.Value_map.singleton iv.Ir.vid c in
      Some (c_op :: Walk.substitute_uses_in_ops subst (Affine_d.body_nonterm o))
  | None -> None

(* Unwrap an affine.if into one of its branches (minus the yields). *)
let unwrap_if o ~branch =
  match o.Ir.regions with
  | [ [ then_b ]; [ else_b ] ] ->
      let b = if branch = 0 then then_b else else_b in
      Some (List.filter (fun op -> op.Ir.name <> "affine.yield") b.Ir.bops)
  | _ -> None

(* Halve a constant-bound loop's trip extent (keep at least one iteration). *)
let halve_trip o =
  match Affine_d.const_bounds o with
  | Some (lb, ub) when ub - lb >= 2 ->
      let b = Affine_d.bounds o in
      let ub' = lb + ((ub - lb) / 2) in
      Some [ Affine_d.with_bounds o { b with ub_map = Affine.Map.constant [ ub' ] } ]
  | _ -> None

(* All shrink candidates of [c], lazily as thunks, cheapest class first.
   Each candidate strictly decreases {!size}. *)
let candidates ctx (c : candidate) : (unit -> candidate option) list =
  let m = c.module_ in
  let drop_stage i () =
    Some { c with pipeline = List.filteri (fun j _ -> j <> i) c.pipeline }
  in
  let n_stages = List.length c.pipeline in
  let stage_drops =
    (* Try dropping from the front first: the failing stage is usually last. *)
    List.init n_stages (fun i -> drop_stage i)
  in
  let rewrites p rewrite =
    List.init (count_matching p m) (fun k () ->
        Option.map
          (fun m' -> { c with module_ = m' })
          (rewrite_nth_matching p rewrite k m))
  in
  let op_drops =
    rewrites (removable m) (fun _ -> [])
  in
  let loop_unwraps =
    rewrites
      (fun o -> Affine_d.is_for o && Affine_d.has_const_bounds o)
      (fun o -> match unwrap_loop ctx o with Some ops -> ops | None -> [ o ])
  in
  let if_unwraps =
    List.concat_map
      (fun branch ->
        rewrites Affine_d.is_if (fun o ->
            match unwrap_if o ~branch with Some ops -> ops | None -> [ o ]))
      [ 0; 1 ]
  in
  let trip_halves =
    rewrites
      (fun o ->
        Affine_d.is_for o
        && match Affine_d.const_bounds o with Some (lb, ub) -> ub - lb >= 2 | None -> false)
      (fun o -> match halve_trip o with Some ops -> ops | None -> [ o ])
  in
  stage_drops @ op_drops @ if_unwraps @ loop_unwraps @ trip_halves

(* ---- Greedy reduction loop -------------------------------------------------- *)

type outcome = {
  reduced : candidate;
  steps : int;  (** accepted shrinks *)
  initial_size : int;
  final_size : int;
}

(** Shrink [c] while [still_fails] holds. The result still fails the oracle
    and is a local minimum: no single candidate shrink keeps it failing.
    [still_fails c] must be true for the input (checked). *)
let run ?(max_steps = 200) ~still_fails (c : candidate) : outcome =
  if not (still_fails c) then
    invalid_arg "Reduce.run: input does not fail the oracle";
  let initial_size = size c in
  let rec go c steps =
    if steps >= max_steps then (c, steps)
    else
      let sz = size c in
      let ctx = Ir.Ctx.of_op c.module_ in
      let try_one acc thunk =
        match acc with
        | Some _ -> acc
        | None -> (
            match thunk () with
            | None -> None
            | Some c' ->
                if
                  size c' < sz
                  && (match Verify.verify c'.module_ with Ok () -> true | Error _ -> false)
                  && still_fails c'
                then Some c'
                else None)
      in
      match List.fold_left try_one None (candidates ctx c) with
      | Some c' -> go c' (steps + 1)
      | None -> (c, steps)
  in
  let reduced, steps = go c 0 in
  { reduced; steps; initial_size; final_size = size reduced }
