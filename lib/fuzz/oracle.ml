(** Differential and metamorphic oracles.

    The differential oracle is the heart of the fuzzer: interpret a module
    before and after each transform stage on identical seeded inputs and
    demand bitwise-structural agreement of every output buffer up to a
    relative epsilon ({!Mir.Float_compare}). The metamorphic QoR oracles
    check model-level invariants that need no ground truth: pipelining never
    worsens the virtual-synthesizer latency, the fast estimator and the
    virtual synthesizer agree within a stated factor, and DSE results are
    independent of the worker count.

    All oracles return a (possibly empty) list of {!failure}s and never
    raise: crashes inside passes, the verifier, or the interpreter are
    themselves failures. *)

open Mir
open Scalehls

type failure = {
  oracle : string;  (** e.g. ["interp-diff"], ["qor-pipeline"] *)
  stage : string option;  (** pass name the failure surfaced at, if any *)
  detail : string;
}

let pp_failure fmt f =
  Fmt.pf fmt "[%s%a] %s" f.oracle
    Fmt.(option (fun fmt s -> Fmt.pf fmt " @@ %s" s))
    f.stage f.detail

let fail ?stage oracle fmt = Fmt.kstr (fun detail -> { oracle; stage; detail }) fmt

(* Oracles record crashes as findings, but termination must never become
   one: call this first in every catch-all so SIGINT/SIGTERM keeps unwinding
   to the exporter in {!Obs.Report.run}. *)
let reraise_terminated e =
  match e with Obs.Report.Terminated _ -> raise e | _ -> ()

(* ---- Seeded interpreter inputs -------------------------------------------- *)

(* Deterministic argument vector for [top] of [m], derived from the function
   signature: memrefs get pseudo-random float fills, scalars small values.
   Buffers are freshly allocated per call (the interpreter mutates argument
   buffers in place). *)
let interp_args ~seed m ~top =
  let f = Ir.find_func_exn m top in
  let rng = Rng.create (Rng.derive seed 0x1a7) in
  List.map
    (fun (v : Ir.value) ->
      match v.Ir.vty with
      | Ty.Memref { shape; elt; _ } ->
          Interp.VBuf
            (Interp.buffer_init shape elt (fun _ ->
                 float_of_int (Rng.int rng 65 - 32) /. 4.))
      | ty when Ty.is_float ty ->
          Interp.VFloat (float_of_int (Rng.int rng 33 - 16) /. 4.)
      | _ -> Interp.VInt (Rng.int rng 9 - 4))
    (Dialects.Func.func_args f)

(* Observable outputs: every memref argument's data, concatenated in
   argument order (the generated kernels return nothing and communicate
   through argument buffers). *)
let outputs_of_args args =
  Array.concat
    (List.filter_map
       (function Interp.VBuf b -> Some b.Interp.data | _ -> None)
       args)

(** Interpret [top] of [m] on the seeded inputs and return the concatenated
    output buffers. Raises whatever the interpreter raises. *)
let run_outputs ~seed m ~top =
  let args = interp_args ~seed m ~top in
  let (_ : Interp.rvalue list) = Interp.run_func m top args in
  outputs_of_args args

(* ---- Differential oracle --------------------------------------------------- *)

let verify_errors m =
  match Verify.verify m with
  | Ok () -> None
  | Error es -> Some (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Verify.pp_error) es)

(** Run [m] through [pipeline] stage by stage; after every stage, verify the
    module and compare its interpretation against the original's on the same
    seeded inputs. Failures report the stage where the divergence first
    appeared. *)
let differential ?eps ~seed m ~top ~pipeline : failure list =
  match verify_errors m with
  | Some e -> [ fail "gen-verify" "generated module does not verify: %s" e ]
  | None -> (
      match run_outputs ~seed m ~top with
      | exception e ->
          reraise_terminated e;
          [ fail "gen-interp" "generated module does not interpret: %s" (Printexc.to_string e) ]
      | want ->
          let _, failures =
            List.fold_left
              (fun (m, fs) name ->
                if fs <> [] then (m, fs)
                else
                  match Transform_lib.find_pass name with
                  | None -> (m, [ fail ~stage:name "pass-crash" "unknown pass" ])
                  | Some p -> (
                      match Pass.run_one p (Ir.Ctx.of_op m) m with
                      | exception e ->
                          reraise_terminated e;
                          (m, [ fail ~stage:name "pass-crash" "%s" (Printexc.to_string e) ])
                      | m' -> (
                          match verify_errors m' with
                          | Some e ->
                              (m', [ fail ~stage:name "pass-verify" "output does not verify: %s" e ])
                          | None -> (
                              match run_outputs ~seed m' ~top with
                              | exception e ->
                                  reraise_terminated e;
                                  ( m',
                                    [
                                      fail ~stage:name "interp-error" "output does not interpret: %s"
                                        (Printexc.to_string e);
                                    ] )
                              | got -> (
                                  match Float_compare.compare_arrays ?eps want got with
                                  | None -> (m', [])
                                  | Some mm ->
                                      ( m',
                                        [
                                          fail ~stage:name "interp-diff" "%a"
                                            Float_compare.pp_mismatch mm;
                                        ] ))))))
              (m, []) pipeline
          in
          failures)

(* ---- Metamorphic QoR oracles ----------------------------------------------- *)

let synth_latency m ~top = Vhls.Synth.latency (Vhls.Synth.synthesize m ~top)

(** Loop pipelining attaches directives that can only tighten the schedule:
    the virtual synthesizer's latency after [loop-pipelining] must not exceed
    the latency before it (plus [slack] cycles of modeling tolerance). *)
let qor_pipelining_monotone ?(slack = 0) m ~top : failure list =
  match Transform_lib.find_pass "loop-pipelining" with
  | None -> []
  | Some p -> (
      try
        let before = synth_latency m ~top in
        let m' = Pass.run_one p (Ir.Ctx.of_op m) m in
        let after = synth_latency m' ~top in
        if after > before + slack then
          [
            fail ~stage:"loop-pipelining" "qor-pipeline"
              "latency increased: %d -> %d (slack %d)" before after slack;
          ]
        else []
      with e ->
        reraise_terminated e;
        [ fail ~stage:"loop-pipelining" "qor-pipeline" "crash: %s" (Printexc.to_string e) ])

(** The fast estimator and the virtual synthesizer model the same QoR; they
    must agree within a multiplicative [factor] (plus [abs_slack] cycles to
    absorb fixed overheads on tiny kernels), in both directions. *)
let qor_estimator_agrees ?(factor = 8.) ?(abs_slack = 64) m ~top : failure list =
  try
    let est = (Estimator.estimate m ~top).Estimator.latency in
    let syn = synth_latency m ~top in
    let bound x = int_of_float (factor *. float_of_int x) + abs_slack in
    if est > bound syn || syn > bound est then
      [
        fail "qor-estimator" "estimator %d vs synth %d outside x%.1f+%d" est syn factor
          abs_slack;
      ]
    else []
  with e ->
    reraise_terminated e;
    [ fail "qor-estimator" "crash: %s" (Printexc.to_string e) ]

(* ---- DSE determinism oracle ------------------------------------------------- *)

let point_eq (a : Dse.point) (b : Dse.point) =
  a.Dse.lp = b.Dse.lp && a.Dse.rvb = b.Dse.rvb && a.Dse.perm = b.Dse.perm
  && a.Dse.tiles = b.Dse.tiles && a.Dse.target_ii = b.Dse.target_ii

let points_of (r : Dse.result) =
  List.map (fun (e : Dse.evaluated) -> e.Dse.point) r.Dse.pareto

(** The symbolic evaluation path must be indistinguishable from the
    materialized one: for sampled design points of the module's own space,
    [Dse.apply_point ~symbolic:true] and [~symbolic:false] must agree on
    applicability and produce structurally identical modules (same
    {!Mir.Fingerprint}), hence identical estimates. Fallback points compare
    trivially (the symbolic path re-runs the materialized transform), so the
    oracle is sound on any module and discriminating exactly where the
    symbolic expansion engages. *)
let dse_symbolic_equiv ?(points = 6) ~seed m ~top : failure list =
  try
    let ctx = Ir.Ctx.of_op m in
    let space = Dse.build_space ctx m ~top in
    let rng = Random.State.make [| seed |] in
    let fails = ref [] in
    for _ = 1 to points do
      let pt = Dse.random_point rng space in
      let app symbolic =
        match Dse.apply_point ~symbolic ctx m ~top pt with
        | m' -> Some m'
        | exception Dse.Inapplicable -> None
      in
      match (app true, app false) with
      | None, None -> ()
      | Some ms, Some mm ->
          let fs = Fingerprint.op ms and fm = Fingerprint.op mm in
          if not (Int64.equal fs fm) then
            fails :=
              fail "dse-symbolic" "structural divergence at %a: %s vs %s"
                Dse.pp_point pt (Fingerprint.to_hex fs) (Fingerprint.to_hex fm)
              :: !fails
          else begin
            let es = Estimator.estimate ms ~top
            and em = Estimator.estimate mm ~top in
            if es <> em then
              fails :=
                fail "dse-symbolic" "estimate divergence at %a: %a vs %a"
                  Dse.pp_point pt Estimator.pp_estimate es Estimator.pp_estimate
                  em
                :: !fails
          end
      | Some _, None | None, Some _ ->
          fails :=
            fail "dse-symbolic" "applicability divergence at %a" Dse.pp_point pt
            :: !fails
    done;
    List.rev !fails
  with e ->
    reraise_terminated e;
    [ fail "dse-symbolic" "crash: %s" (Printexc.to_string e) ]

(** The window draw for the async-executor DSE oracles: derived from the
    program seed (not a campaign RNG) so a corpus replay of the same seed
    re-runs the identical window without recording it. Spans the legacy
    batch rounds (0), small sliding windows, and the engine default. *)
let fuzz_window seed = [| 0; 2; 5; Dse.default_window |].(abs seed land 3)

(** The incremental band-delta estimator must be invisible: estimating a
    transformed module against a warm cross-point memo
    ({!Estimator.create_memos}) must equal the cold full re-estimation of
    the same module, and estimating a target-II *sibling* through the
    read-time [loop_ii] override on the shared module (what the engine does
    on a transform-memo hit) must equal cold estimation of the sibling's own
    fully re-transformed module. The cold reference applies
    {!Dse.retarget_ii} first so both sides use the engine's
    uniform-override II semantics.

    The second phase lifts the same property to the whole engine under the
    async executor: two identical [Dse.run]s sharing one band memo — the
    first cold, the second fully warm — must produce bit-identical
    frontiers for a seed-derived window size ({!fuzz_window}; [window = 0]
    re-checks the legacy batch rounds). *)
let dse_incremental ?(points = 4) ?window ~seed m ~top : failure list =
  try
    let ctx = Ir.Ctx.of_op m in
    let space = Dse.build_space ctx m ~top in
    let rng = Random.State.make [| seed |] in
    let memos = Estimator.create_memos () in
    let cold ~target_ii m' =
      Estimator.estimate (Dse.retarget_ii ~target_ii m') ~top
    in
    let fails = ref [] in
    for _ = 1 to points do
      let pt = Dse.random_point rng space in
      match Dse.apply_point ctx m ~top pt with
      | exception Dse.Inapplicable -> ()
      | m' ->
          let ii = pt.Dse.target_ii in
          let c = cold ~target_ii:ii m' in
          let w = Estimator.estimate ~memos ~loop_ii:ii m' ~top in
          if c <> w then
            fails :=
              fail "dse-incremental" "warm/cold divergence at %a: %a vs %a"
                Dse.pp_point pt Estimator.pp_estimate w Estimator.pp_estimate c
              :: !fails;
          (* Target-II sibling: shared module + override vs full re-apply. *)
          let sii = ii + 1 in
          let spt = { pt with Dse.target_ii = sii } in
          (match Dse.apply_point ctx m ~top spt with
          | exception Dse.Inapplicable ->
              fails :=
                fail "dse-incremental" "sibling applicability divergence at %a"
                  Dse.pp_point spt
                :: !fails
          | ms ->
              let sc = cold ~target_ii:sii ms in
              let sw = Estimator.estimate ~memos ~loop_ii:sii m' ~top in
              if sc <> sw then
                fails :=
                  fail "dse-incremental"
                    "sibling divergence at %a: shared-module %a vs re-applied %a"
                    Dse.pp_point spt Estimator.pp_estimate sw
                    Estimator.pp_estimate sc
                  :: !fails)
    done;
    (* Engine-level phase: warm band memo invisible through a full run. *)
    let window =
      match window with Some w -> w | None -> fuzz_window seed
    in
    let engine_memos = Estimator.create_memos () in
    let engine_run () =
      Dse.run ~samples:3 ~iterations:4 ~seed ~window ~memos:engine_memos
        (Ir.Ctx.of_op m) m ~top ~platform:Vhls.Platform.xc7z020
    in
    let r_cold = engine_run () in
    let r_warm = engine_run () in
    let sig_of (r : Dse.result) =
      List.map
        (fun (e : Dse.evaluated) ->
          (e.Dse.point, e.Dse.estimate.Estimator.latency, e.Dse.estimate))
        r.Dse.pareto
    in
    if r_cold.Dse.explored <> r_warm.Dse.explored then
      fails :=
        fail "dse-incremental"
          "engine (window %d): explored differs cold %d vs warm %d" window
          r_cold.Dse.explored r_warm.Dse.explored
        :: !fails;
    if sig_of r_cold <> sig_of r_warm then
      fails :=
        fail "dse-incremental"
          "engine (window %d): warm-memo frontier differs from cold (%d vs %d \
           points)"
          window
          (List.length r_cold.Dse.pareto)
          (List.length r_warm.Dse.pareto)
        :: !fails;
    List.rev !fails
  with e ->
    reraise_terminated e;
    [ fail "dse-incremental" "crash: %s" (Printexc.to_string e) ]

(** The surrogate strategy trades exact evaluations for model guidance, so
    its frontier need not be bit-identical to the exhaustive one — but it
    must not abandon tradeoff regions the exhaustive traversal reaches on
    the same budget. The check is the multiplicative epsilon-indicator over
    (latency, DSP): every exhaustive-frontier point must be eps-covered by
    some surrogate-frontier point, i.e. one whose latency and DSP usage are
    each at most (1+eps)x the exhaustive point's. An exhaustive frontier
    with no surrogate counterpart at all (surrogate found nothing feasible)
    fails outright. Both runs are seeded and sequential, with a seed-derived
    executor window ({!fuzz_window}), so a failure replays exactly from the
    program seed. *)
let dse_strategy_frontier_consistent ?(samples = 4) ?(iterations = 6)
    ?(eps = 0.25) ?window ~seed m ~top : failure list =
  try
    let platform = Vhls.Platform.xc7z020 in
    let window =
      match window with Some w -> w | None -> fuzz_window seed
    in
    let run strategy =
      Dse.run ~samples ~iterations ~seed ~window ~strategy (Ir.Ctx.of_op m) m
        ~top ~platform
    in
    let re = run Dse.exhaustive in
    let rs = run (Qor_ml.surrogate ()) in
    let coords (r : Dse.result) =
      List.map
        (fun (e : Dse.evaluated) ->
          ( e.Dse.point,
            float_of_int e.Dse.estimate.Estimator.latency,
            float_of_int e.Dse.estimate.Estimator.usage.Vhls.Platform.u_dsp ))
        r.Dse.pareto
    in
    let exh = coords re and sur = coords rs in
    match (exh, sur) with
    | [], _ -> []
    | _ :: _, [] ->
        [
          fail "dse-strategy"
            "exhaustive found a %d-point frontier, surrogate found nothing \
             feasible"
            (List.length exh);
        ]
    | _ ->
        let covered (_, ql, qa) =
          List.exists
            (fun (_, pl, pa) ->
              pl <= (1. +. eps) *. ql && pa <= (1. +. eps) *. qa)
            sur
        in
        List.filter_map
          (fun ((qp, ql, qa) as q) ->
            if covered q then None
            else
              Some
                (fail "dse-strategy"
                   "frontier point %a (latency %.0f, dsp %.0f) has no \
                    surrogate point within %.0f%%"
                   Dse.pp_point qp ql qa (100. *. eps)))
          exh
  with e ->
    reraise_terminated e;
    [ fail "dse-strategy" "crash: %s" (Printexc.to_string e) ]

(** A parallel DSE run must be bit-identical to the sequential one: same
    explored count, same best point, same Pareto frontier. The default
    [window] (16) deliberately exceeds this oracle's batch sizes at the
    default budget, so every invocation exercises the async executor's
    commit path with the whole batch in flight at once; [window = 0] checks
    the legacy batch rounds instead. The pools are built explicitly so the
    engine's cores clamp can't reduce the -j2 arm to -j1 on a 1-core
    machine. *)
let dse_jobs_deterministic ?(samples = 4) ?(iterations = 6) ?(window = 16)
    ~seed m ~top : failure list =
  try
    let platform = Vhls.Platform.xc7z020 in
    let run jobs =
      Parpool.with_pool ~jobs (fun pool ->
          Dse.run ~samples ~iterations ~seed ~window ~pool (Ir.Ctx.of_op m) m
            ~top ~platform)
    in
    let r1 = run 1 in
    let r2 = run 2 in
    let best r =
      Option.map (fun (e : Dse.evaluated) -> e.Dse.point) r.Dse.best
    in
    let fails = ref [] in
    if r1.Dse.explored <> r2.Dse.explored then
      fails :=
        fail "dse-jobs" "explored differs: -j1 %d vs -j2 %d" r1.Dse.explored r2.Dse.explored
        :: !fails;
    (match (best r1, best r2) with
    | None, None -> ()
    | Some p1, Some p2 when point_eq p1 p2 -> ()
    | b1, b2 ->
        let pp fmt = function
          | None -> Fmt.pf fmt "none"
          | Some p -> Dse.pp_point fmt p
        in
        fails := fail "dse-jobs" "best differs: -j1 %a vs -j2 %a" pp b1 pp b2 :: !fails);
    let p1 = points_of r1 and p2 = points_of r2 in
    if List.length p1 <> List.length p2 || not (List.for_all2 point_eq p1 p2) then
      fails :=
        fail "dse-jobs" "pareto differs: -j1 %d points vs -j2 %d points" (List.length p1)
          (List.length p2)
        :: !fails;
    List.rev !fails
  with e ->
    reraise_terminated e;
    [ fail "dse-jobs" "crash: %s" (Printexc.to_string e) ]
