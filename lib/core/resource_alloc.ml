(** Memory resource allocation (the array [resource] directive, §4.3.4):
    weight arrays are kept on-chip while the cumulative footprint stays under
    a budget fraction of the platform's memory bits; the largest remaining
    arrays are spilled to DRAM (served through an AXI interface, one
    outstanding access per cycle). Large on-chip arrays beyond the BRAM
    sweet spot are placed in URAM when the platform has it. *)

open Mir
open Vhls

(** Assign memory spaces to weight allocations of the module. *)
let place_weights ?(budget_fraction = 0.55) ~platform ctx m =
  ignore ctx;
  (* Collect weight allocs with their sizes. *)
  let weights =
    Walk.fold_ops
      (fun acc o ->
        if o.Ir.name = "memref.alloc" && Ir.has_attr o "weight" then
          (Ir.result o, Ty.storage_bits (Ir.result o).Ir.vty) :: acc
        else acc)
      [] m
  in
  let weights = List.sort (fun (_, a) (_, b) -> compare b a) weights in
  let budget =
    int_of_float (budget_fraction *. float_of_int platform.Platform.memory_bits)
  in
  let spill = Hashtbl.create 8 and uram = Hashtbl.create 8 in
  let used = ref 0 in
  (* Greedy: biggest first; spill to DRAM once over budget. Arrays larger
     than 1 Mb that still fit go to URAM when available. *)
  List.iter
    (fun ((v : Ir.value), bits) ->
      if !used + bits <= budget then begin
        used := !used + bits;
        if platform.Platform.uram > 0 && bits > 1024 * 1024 then
          Hashtbl.replace uram v.Ir.vid ()
      end
      else Hashtbl.replace spill v.Ir.vid ())
    weights;
  Array_partition.retype_module m (fun vid ->
      let respace space =
        Walk.fold_ops
          (fun acc o ->
            match acc with
            | Some _ -> acc
            | None ->
                List.find_map
                  (fun (r : Ir.value) ->
                    if r.Ir.vid = vid then
                      match r.Ir.vty with
                      | Ty.Memref mr -> Some (Ty.Memref { mr with Ty.memspace = space })
                      | _ -> None
                    else None)
                  o.Ir.results)
          None m
      in
      if Hashtbl.mem spill vid then respace Ty.Memspace.dram
      else if Hashtbl.mem uram vid then respace Ty.Memspace.uram
      else None)

(** Total on-chip/off-chip weight bits after placement (for reporting). *)
let weight_footprint m =
  Walk.fold_ops
    (fun (on, off) o ->
      if o.Ir.name = "memref.alloc" && Ir.has_attr o "weight" then begin
        let bits = Ty.storage_bits (Ir.result o).Ir.vty in
        let mr = Ty.as_memref (Ir.result o).Ir.vty in
        if mr.Ty.memspace = Ty.Memspace.dram then (on, off + bits) else (on + bits, off)
      end
      else (on, off))
    (0, 0) m
