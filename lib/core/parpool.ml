(** A reusable fixed-size pool of worker domains for data-parallel batch
    evaluation (stdlib [Domain]/[Mutex]/[Condition] only).

    The pool owns [jobs] worker domains pulling closures off a shared queue;
    {!map} submits one task per list element and blocks until the whole batch
    is done, returning results in submission order (so callers that merge
    results stay deterministic regardless of scheduling). A pool created with
    [jobs <= 1] spawns no domains and runs every batch inline on the caller,
    which makes the [jobs = 1] code path bit-for-bit identical to a plain
    [List.map].

    [map] is not re-entrant: tasks must not themselves call [map] on the same
    pool (they would deadlock waiting for workers that are all busy). *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work_available pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock (* stopping: exit *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    task ();
    worker_loop pool
  end

(** [create ~jobs ()] builds a pool of [jobs] worker domains. [jobs <= 0]
    means "one per core" ([Domain.recommended_domain_count]). *)
let create ?(jobs = 1) () =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      stopping = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    pool.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

(** Evaluate [f] over [xs], in parallel on the pool's workers. Results come
    back in submission order; if any task raised, the first (by submission
    order) exception is re-raised on the caller after the batch drains, so
    failure behavior is deterministic too. *)
let map pool f xs =
  if Array.length pool.workers = 0 then List.map f xs
  else
    match xs with
    | [] -> []
    | _ ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let out = Array.make n None in
        let remaining = ref n in
        Mutex.lock pool.lock;
        Array.iteri
          (fun i x ->
            Queue.add
              (fun () ->
                let r = try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()) in
                Mutex.lock pool.lock;
                out.(i) <- Some r;
                decr remaining;
                if !remaining = 0 then Condition.broadcast pool.batch_done;
                Mutex.unlock pool.lock)
              pool.queue)
          arr;
        Condition.broadcast pool.work_available;
        while !remaining > 0 do
          Condition.wait pool.batch_done pool.lock
        done;
        Mutex.unlock pool.lock;
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
               | None -> assert false)
             out)

(** Shut the pool down: pending tasks are drained, then workers exit and are
    joined. Mapping on a shut-down pool falls back to inline execution. *)
let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.lock;
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

(** [with_pool ~jobs f] runs [f pool] and shuts the pool down on the way out,
    exceptions included. *)
let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
