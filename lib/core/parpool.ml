(** A reusable fixed-size pool of worker domains for data-parallel point
    evaluation (stdlib [Domain]/[Mutex]/[Condition] only).

    The pool owns [jobs] worker domains pulling closures off per-stream task
    queues. Two client APIs share them:

    {ul
    {- The streaming API: {!stream} opens a submission stream, {!submit}
       enqueues one task and returns its id immediately, workers complete
       tasks {e out of order}, and {!await} ({!take} for the non-blocking
       probe) collects one result by id. Nothing synchronizes the stream as
       a whole — a caller that keeps submitting while collecting turns the
       pool into a continuously-fed pipeline with no batch barrier.}
    {- {!map}, implemented on a temporary stream: submits one task per list
       element and blocks until the whole batch is done, returning results
       in submission order (so callers that merge results stay
       deterministic regardless of scheduling). If any task raised, the
       first (by submission order) exception is re-raised on the caller
       after the batch drains, so failure behavior is deterministic too.}}

    Workers dequeue round-robin {e across} streams that have pending tasks:
    every dequeue serves the next stream in rotation, so [k] concurrent
    streams (e.g. [k] searches sharing a daemon's pool) interleave fairly at
    single-task granularity — a stream with 100 queued tasks cannot starve a
    stream with 2. Per-task queue latency (enqueue to dequeue) is reported
    through the stream's [on_wait] callback, which runs on the worker that
    dequeued the task and must therefore be thread-safe.

    A pool created with [jobs <= 1] spawns no domains and runs every
    submitted task inline on the caller at {!submit} time, which makes the
    [jobs = 1] code path bit-for-bit identical to a plain [List.map].

    Every task execution is timed (monotonic clock) into a per-worker busy
    counter; {!worker_stats} and {!busy_fractions} expose per-worker
    utilization over the pool's lifetime — the telemetry behind the DSE
    engine's [worker.N.busy_fraction] metrics. Inline execution (a [jobs <= 1]
    pool, or a shut-down pool) accounts to worker slot 0.

    Tasks must not themselves submit to or map on the same pool (they would
    deadlock waiting for workers that are all busy). *)

(* One stream's worker-facing half: the monomorphic task queue the pool's
   round-robin rotation serves. The typed result plumbing is captured inside
   the queued closures. *)
type sq = {
  sq_tasks : (int64 * (unit -> unit)) Queue.t;  (** (enqueue time, run) *)
  sq_on_wait : (float -> unit) option;
  mutable sq_queued : bool;  (** currently registered in the rotation *)
  mutable sq_running : int;  (** dequeued by a worker, not yet completed *)
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work_available : Condition.t;
  result_ready : Condition.t;
      (** signalled whenever any stream's task completes *)
  mutable rotation : sq list;
      (** round-robin rotation; invariant: every listed stream has a
          non-empty task queue *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  busy_ns : int64 Atomic.t array;  (** per-worker cumulative task time *)
  created_ns : int64;
}

let jobs t = t.jobs

let add_busy pool slot ns =
  let cell = pool.busy_ns.(slot) in
  let rec go () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (Int64.add cur ns)) then go ()
  in
  go ()

(* Pop the next task in stream rotation order. Caller holds the lock. The
   served stream moves to the back of the rotation (or leaves it when
   emptied), so successive dequeues visit streams fairly regardless of how
   many tasks each has queued. *)
let dequeue pool =
  match pool.rotation with
  | [] -> None
  | sq :: rest ->
      let enq_ns, task = Queue.pop sq.sq_tasks in
      sq.sq_running <- sq.sq_running + 1;
      if Queue.is_empty sq.sq_tasks then begin
        sq.sq_queued <- false;
        pool.rotation <- rest
      end
      else pool.rotation <- rest @ [ sq ];
      Some (enq_ns, sq, task)

let rec worker_loop pool slot =
  Mutex.lock pool.lock;
  while pool.rotation = [] && not pool.stopping do
    Condition.wait pool.work_available pool.lock
  done;
  match dequeue pool with
  | None -> Mutex.unlock pool.lock (* stopping: exit *)
  | Some (enq_ns, sq, task) ->
      Mutex.unlock pool.lock;
      let t0 = Obs.Clock.now_ns () in
      (match sq.sq_on_wait with
      | Some cb -> cb (Obs.Clock.ns_to_s (Int64.sub t0 enq_ns))
      | None -> ());
      task ();
      add_busy pool slot (Int64.sub (Obs.Clock.now_ns ()) t0);
      worker_loop pool slot

(** [create ~jobs ()] builds a pool of [jobs] worker domains. [jobs <= 0]
    means "one per core" ([Domain.recommended_domain_count]). *)
let create ?(jobs = 1) () =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let pool =
    {
      jobs;
      lock = Mutex.create ();
      work_available = Condition.create ();
      result_ready = Condition.create ();
      rotation = [];
      stopping = false;
      workers = [||];
      busy_ns = Array.init (max 1 jobs) (fun _ -> Atomic.make 0L);
      created_ns = Obs.Clock.now_ns ();
    }
  in
  if jobs > 1 then begin
    (* Spawn workers with SIGINT/SIGTERM blocked (signal masks are
       inherited): an idle worker parked in [Condition.wait] never reaches
       a poll point, so a process-directed signal the kernel happens to
       hand to it can sit recorded with its OCaml handler never running —
       observed as a dropped Ctrl-C/SIGTERM. Blocking the pair here makes
       the kernel deliver to a thread that does poll (the caller, restored
       below, or a connection/select loop). *)
    let blocked = [ Sys.sigint; Sys.sigterm ] in
    let prev =
      try Some (Unix.sigprocmask Unix.SIG_BLOCK blocked)
      with Invalid_argument _ | Unix.Unix_error _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        match prev with
        | Some mask -> ignore (Unix.sigprocmask Unix.SIG_SETMASK mask)
        | None -> ())
      (fun () ->
        pool.workers <-
          Array.init jobs (fun i -> Domain.spawn (fun () -> worker_loop pool i)))
  end;
  pool

(* ---- The streaming API ------------------------------------------------------ *)

type 'a stream = {
  st_pool : t;
  st_sq : sq;
  st_results : (int, ('a, exn * Printexc.raw_backtrace) result) Hashtbl.t;
      (** completed, not yet collected; guarded by the pool lock *)
  mutable st_next_id : int;
}

(** Open a submission stream on the pool. Streams are lightweight — a
    service opens one per search, a batch caller one per batch. [on_wait]
    (optional) receives every task's queue latency in seconds (enqueue to
    worker dequeue); it runs on the dequeuing worker, so it must be
    thread-safe and cheap. *)
let stream ?on_wait pool =
  {
    st_pool = pool;
    st_sq =
      {
        sq_tasks = Queue.create ();
        sq_on_wait = on_wait;
        sq_queued = false;
        sq_running = 0;
      };
    st_results = Hashtbl.create 32;
    st_next_id = 0;
  }

(** Submit one task; returns its id immediately (workers complete tasks out
    of order — collect with {!await}/{!take}). On a pool with no workers
    ([jobs <= 1], or shut down) the task runs inline here, on the caller,
    before [submit] returns: exceptions are captured into the result exactly
    as a worker would, so the failure surface is identical across pool
    shapes. *)
let submit st f =
  let pool = st.st_pool in
  let id = st.st_next_id in
  st.st_next_id <- id + 1;
  let run () =
    let r =
      try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock pool.lock;
    Hashtbl.replace st.st_results id r;
    st.st_sq.sq_running <- st.st_sq.sq_running - 1;
    Condition.broadcast pool.result_ready;
    Mutex.unlock pool.lock
  in
  if Array.length pool.workers = 0 then begin
    (match st.st_sq.sq_on_wait with Some cb -> cb 0. | None -> ());
    let t0 = Obs.Clock.now_ns () in
    st.st_sq.sq_running <- st.st_sq.sq_running + 1;
    run ();
    add_busy pool 0 (Int64.sub (Obs.Clock.now_ns ()) t0)
  end
  else begin
    Mutex.lock pool.lock;
    Queue.add (Obs.Clock.now_ns (), run) st.st_sq.sq_tasks;
    if not st.st_sq.sq_queued then begin
      st.st_sq.sq_queued <- true;
      pool.rotation <- pool.rotation @ [ st.st_sq ]
    end;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock
  end;
  id

(** Non-blocking probe: collect task [id]'s result if it has completed
    ([None] = still queued or running). A returned result is consumed —
    asking again returns [None]. *)
let take st id =
  let pool = st.st_pool in
  Mutex.lock pool.lock;
  let r = Hashtbl.find_opt st.st_results id in
  if r <> None then Hashtbl.remove st.st_results id;
  Mutex.unlock pool.lock;
  r

(** Blocking collect of task [id]'s result, as a [result] (the [Error]
    carries the task's exception and its backtrace). Consumes the result. *)
let await_result st id =
  let pool = st.st_pool in
  Mutex.lock pool.lock;
  while not (Hashtbl.mem st.st_results id) do
    Condition.wait pool.result_ready pool.lock
  done;
  let r = Hashtbl.find st.st_results id in
  Hashtbl.remove st.st_results id;
  Mutex.unlock pool.lock;
  r

(** Blocking collect of task [id]: returns its value or re-raises its
    exception (with the original backtrace). Consumes the result. *)
let await st id =
  match await_result st id with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(** Completed-but-uncollected results parked in the stream — the engine's
    commit-queue depth gauge. *)
let completed st =
  let pool = st.st_pool in
  Mutex.lock pool.lock;
  let n = Hashtbl.length st.st_results in
  Mutex.unlock pool.lock;
  n

(** Tasks of [st] not yet completed (queued or running on a worker). *)
let in_flight st =
  let pool = st.st_pool in
  Mutex.lock pool.lock;
  let n = Queue.length st.st_sq.sq_tasks + st.st_sq.sq_running in
  Mutex.unlock pool.lock;
  n

(** Tasks queued across all streams, waiting for a worker — the daemon's
    point-granular queue depth. *)
let queued pool =
  Mutex.lock pool.lock;
  let n =
    List.fold_left (fun acc sq -> acc + Queue.length sq.sq_tasks) 0 pool.rotation
  in
  Mutex.unlock pool.lock;
  n

(* ---- Batch map (compatibility surface) -------------------------------------- *)

(** Evaluate [f] over [xs], in parallel on the pool's workers. Results come
    back in submission order; if any task raised, the first (by submission
    order) exception is re-raised on the caller after the batch drains, so
    failure behavior is deterministic too. Implemented as a temporary
    stream: submit everything, then await in submission order. *)
let map pool f xs =
  if Array.length pool.workers = 0 then begin
    let t0 = Obs.Clock.now_ns () in
    let r = List.map f xs in
    add_busy pool 0 (Int64.sub (Obs.Clock.now_ns ()) t0);
    r
  end
  else
    match xs with
    | [] -> []
    | _ ->
        let st = stream pool in
        let rec submit_all = function
          | [] -> []
          | x :: rest ->
              let id = submit st (fun () -> f x) in
              id :: submit_all rest
        in
        let ids = submit_all xs in
        let results = List.map (fun id -> await_result st id) ids in
        List.map
          (function
            | Ok v -> v
            | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
          results

(* ---- Utilization telemetry ------------------------------------------------- *)

(** Seconds since the pool was created. *)
let lifetime_s pool = Obs.Clock.since_s pool.created_ns

(** Per-worker cumulative busy seconds, [(worker index, busy_s)]. With
    [jobs <= 1] there is a single slot 0 covering inline execution. *)
let worker_stats pool =
  Array.to_list
    (Array.mapi
       (fun i cell -> (i, Obs.Clock.ns_to_s (Atomic.get cell)))
       pool.busy_ns)

(** Per-worker busy fraction of the pool lifetime so far. Read after the
    batches of interest complete (and, for exact numbers, before long idle
    tails). *)
let busy_fractions pool =
  let life = Float.max 1e-9 (lifetime_s pool) in
  List.map (fun (i, busy) -> (i, busy /. life)) (worker_stats pool)

(** Shut the pool down: pending tasks are drained, then workers exit and are
    joined. Submitting to or mapping on a shut-down pool falls back to
    inline execution. *)
let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.lock;
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

(** [with_pool ~jobs f] runs [f pool] and shuts the pool down on the way out,
    exceptions included. *)
let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
