(** A reusable fixed-size pool of worker domains for data-parallel batch
    evaluation (stdlib [Domain]/[Mutex]/[Condition] only).

    The pool owns [jobs] worker domains pulling closures off a shared queue;
    {!map} submits one task per list element and blocks until the whole batch
    is done, returning results in submission order (so callers that merge
    results stay deterministic regardless of scheduling). A pool created with
    [jobs <= 1] spawns no domains and runs every batch inline on the caller,
    which makes the [jobs = 1] code path bit-for-bit identical to a plain
    [List.map].

    Every task execution is timed (monotonic clock) into a per-worker busy
    counter; {!worker_stats} and {!busy_fractions} expose per-worker
    utilization over the pool's lifetime — the telemetry behind the DSE
    engine's [worker.N.busy_fraction] metrics. Inline execution (a [jobs <= 1]
    pool, or a shut-down pool) accounts to worker slot 0.

    [map] is not re-entrant: tasks must not themselves call [map] on the same
    pool (they would deadlock waiting for workers that are all busy). *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  busy_ns : int64 Atomic.t array;  (** per-worker cumulative task time *)
  created_ns : int64;
}

let jobs t = t.jobs

let add_busy pool slot ns =
  let cell = pool.busy_ns.(slot) in
  let rec go () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (Int64.add cur ns)) then go ()
  in
  go ()

let rec worker_loop pool slot =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work_available pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock (* stopping: exit *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    let t0 = Obs.Clock.now_ns () in
    task ();
    add_busy pool slot (Int64.sub (Obs.Clock.now_ns ()) t0);
    worker_loop pool slot
  end

(** [create ~jobs ()] builds a pool of [jobs] worker domains. [jobs <= 0]
    means "one per core" ([Domain.recommended_domain_count]). *)
let create ?(jobs = 1) () =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      stopping = false;
      workers = [||];
      busy_ns = Array.init (max 1 jobs) (fun _ -> Atomic.make 0L);
      created_ns = Obs.Clock.now_ns ();
    }
  in
  if jobs > 1 then begin
    (* Spawn workers with SIGINT/SIGTERM blocked (signal masks are
       inherited): an idle worker parked in [Condition.wait] never reaches
       a poll point, so a process-directed signal the kernel happens to
       hand to it can sit recorded with its OCaml handler never running —
       observed as a dropped Ctrl-C/SIGTERM. Blocking the pair here makes
       the kernel deliver to a thread that does poll (the caller, restored
       below, or a connection/select loop). *)
    let blocked = [ Sys.sigint; Sys.sigterm ] in
    let prev =
      try Some (Unix.sigprocmask Unix.SIG_BLOCK blocked)
      with Invalid_argument _ | Unix.Unix_error _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        match prev with
        | Some mask -> ignore (Unix.sigprocmask Unix.SIG_SETMASK mask)
        | None -> ())
      (fun () ->
        pool.workers <-
          Array.init jobs (fun i -> Domain.spawn (fun () -> worker_loop pool i)))
  end;
  pool

(** Evaluate [f] over [xs], in parallel on the pool's workers. Results come
    back in submission order; if any task raised, the first (by submission
    order) exception is re-raised on the caller after the batch drains, so
    failure behavior is deterministic too. *)
let map pool f xs =
  if Array.length pool.workers = 0 then begin
    let t0 = Obs.Clock.now_ns () in
    let r = List.map f xs in
    add_busy pool 0 (Int64.sub (Obs.Clock.now_ns ()) t0);
    r
  end
  else
    match xs with
    | [] -> []
    | _ ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let out = Array.make n None in
        let remaining = ref n in
        Mutex.lock pool.lock;
        Array.iteri
          (fun i x ->
            Queue.add
              (fun () ->
                let r = try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()) in
                Mutex.lock pool.lock;
                out.(i) <- Some r;
                decr remaining;
                if !remaining = 0 then Condition.broadcast pool.batch_done;
                Mutex.unlock pool.lock)
              pool.queue)
          arr;
        Condition.broadcast pool.work_available;
        while !remaining > 0 do
          Condition.wait pool.batch_done pool.lock
        done;
        Mutex.unlock pool.lock;
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
               | None -> assert false)
             out)

(* ---- Utilization telemetry ------------------------------------------------- *)

(** Seconds since the pool was created. *)
let lifetime_s pool = Obs.Clock.since_s pool.created_ns

(** Per-worker cumulative busy seconds, [(worker index, busy_s)]. With
    [jobs <= 1] there is a single slot 0 covering inline execution. *)
let worker_stats pool =
  Array.to_list
    (Array.mapi
       (fun i cell -> (i, Obs.Clock.ns_to_s (Atomic.get cell)))
       pool.busy_ns)

(** Per-worker busy fraction of the pool lifetime so far. Read after the
    batches of interest complete (and, for exact numbers, before long idle
    tails). *)
let busy_fractions pool =
  let life = Float.max 1e-9 (lifetime_s pool) in
  List.map (fun (i, busy) -> (i, busy /. life)) (worker_stats pool)

(** Shut the pool down: pending tasks are drained, then workers exit and are
    joined. Mapping on a shut-down pool falls back to inline execution. *)
let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.lock;
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

(** [with_pool ~jobs f] runs [f pool] and shuts the pool down on the way out,
    exceptions included. *)
let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
