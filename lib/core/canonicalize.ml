(** The [-canonicalize] pass: IR cleanups that the loop/directive transforms
    rely on —
    - fold [arith.constant] operands into affine maps/sets and drop them;
    - compose [affine.apply] results into consumer maps (MLIR's affine apply
      canonicalization), which is how substituted induction variables reach
      access maps after tiling and unrolling;
    - integer constant folding of arith ops;
    - removal of trip-count-0 loops and inlining of trip-count-1 loops;
    - dead code elimination of pure ops. *)

open Mir
open Dialects

module A = Affine

type env = {
  consts : (int, int) Hashtbl.t;  (** vid -> integer constant *)
  applies : (int, A.Map.t * Ir.value list) Hashtbl.t;  (** vid -> apply def *)
}

let scan f =
  let env = { consts = Hashtbl.create 64; applies = Hashtbl.create 64 } in
  Walk.iter_op
    (fun o ->
      match o.Ir.name with
      | "arith.constant" -> (
          match Arith.constant_int_value o with
          | Some c -> Hashtbl.replace env.consts (Ir.result o).Ir.vid c
          | None -> ())
      | "affine.apply" ->
          Hashtbl.replace env.applies (Ir.result o).Ir.vid
            (Affine_d.access_map o, o.Ir.operands)
      | _ -> ())
    f;
  env

(** Rewrite (map, operands): fold constant operands into the map and splice
    affine.apply operands. One level per call; callers iterate. Returns
    [None] when nothing changed. *)
let fold_map_operands env (map : A.Map.t) (operands : Ir.value list) =
  let changed = ref false in
  (* For each original dim, produce a replacement expr over the new operand
     list being accumulated. *)
  let new_operands = ref [] in
  let push v =
    new_operands := v :: !new_operands;
    List.length !new_operands - 1
  in
  let reps =
    List.map
      (fun (v : Ir.value) ->
        match Hashtbl.find_opt env.consts v.Ir.vid with
        | Some c ->
            changed := true;
            A.Expr.const c
        | None -> (
            match Hashtbl.find_opt env.applies v.Ir.vid with
            | Some (amap, aoperands) when A.Map.num_results amap = 1 ->
                changed := true;
                let positions = List.map push aoperands in
                let expr = List.hd (A.Map.results amap) in
                A.Expr.substitute
                  ~dims:(fun i -> A.Expr.dim (List.nth positions i))
                  expr
            | _ ->
                let j = push v in
                A.Expr.dim j))
      operands
  in
  if not !changed then None
  else
    let new_operands = List.rev !new_operands in
    let map' =
      A.Map.replace_dims ~num_dims:(List.length new_operands) reps map
      |> A.Map.simplify
    in
    Some (map', new_operands)

(* Dim indices referenced by an expression. *)
let rec expr_dims acc (e : A.Expr.t) =
  match e with
  | A.Expr.Dim i -> i :: acc
  | A.Expr.Sym _ | A.Expr.Const _ -> acc
  | A.Expr.Add (a, b) | A.Expr.Mul (a, b) | A.Expr.Mod (a, b)
  | A.Expr.Floor_div (a, b) | A.Expr.Ceil_div (a, b) ->
      expr_dims (expr_dims acc a) b

(* Drop operands whose dim is not referenced by any map result (e.g. loop
   bounds carrying the full enclosing dim list from the front-end). *)
let prune_unused_dims (map : A.Map.t) operands =
  let used =
    List.sort_uniq compare
      (List.fold_left expr_dims [] (List.map A.Expr.simplify (A.Map.results map)))
  in
  if List.length used = A.Map.num_dims map then (map, operands)
  else
    let renumber = List.mapi (fun new_i old_i -> (old_i, new_i)) used in
    let reps =
      List.init (A.Map.num_dims map) (fun i ->
          match List.assoc_opt i renumber with
          | Some j -> A.Expr.dim j
          | None -> A.Expr.const 0 (* unused: value irrelevant *))
    in
    let map' = A.Map.replace_dims ~num_dims:(List.length used) reps map in
    let operands' =
      List.filteri (fun i _ -> List.mem_assoc i renumber) operands
    in
    (map', operands')

let rec fold_map_operands_fix env map operands =
  match fold_map_operands env map operands with
  | None -> prune_unused_dims (A.Map.simplify map) operands
  | Some (m, ops) -> fold_map_operands_fix env m ops

(** Same folding for integer sets. *)
let fold_set_operands_fix env (set : A.Set_.t) operands =
  (* Reuse the map machinery by converting constraints to a map. *)
  let exprs = List.map (fun c -> c.A.Set_.expr) (A.Set_.constraints set) in
  let map = A.Map.make ~num_dims:(A.Set_.num_dims set) ~num_syms:0 exprs in
  let map', operands' = fold_map_operands_fix env map operands in
  let constraints =
    List.map2
      (fun c e -> { c with A.Set_.expr = e })
      (A.Set_.constraints set) (A.Map.results map')
  in
  ( A.Set_.make ~num_dims:(A.Map.num_dims map') ~num_syms:0 constraints,
    operands' )

(* ---- Per-op rewrites ----------------------------------------------------- *)

let fold_affine_op env (o : Ir.op) : Ir.op =
  match o.Ir.name with
  | "affine.load" ->
      let mem = Memref.accessed_memref o and idxs = Memref.access_indices o in
      let map, idxs = fold_map_operands_fix env (Affine_d.access_map o) idxs in
      { o with Ir.operands = mem :: idxs; Ir.attrs = [ ("map", Attr.Map map) ] }
  | "affine.store" ->
      let v = Memref.stored_value o in
      let mem = Memref.accessed_memref o and idxs = Memref.access_indices o in
      let map, idxs = fold_map_operands_fix env (Affine_d.access_map o) idxs in
      { o with Ir.operands = (v :: mem :: idxs); Ir.attrs = [ ("map", Attr.Map map) ] }
  | "affine.apply" ->
      let map, operands = fold_map_operands_fix env (Affine_d.access_map o) o.Ir.operands in
      { o with Ir.operands = operands; Ir.attrs = [ ("map", Attr.Map map) ] }
  | "affine.for" ->
      let b = Affine_d.bounds o in
      let lb_map, lb_operands = fold_map_operands_fix env b.Affine_d.lb_map b.Affine_d.lb_operands in
      let ub_map, ub_operands = fold_map_operands_fix env b.Affine_d.ub_map b.Affine_d.ub_operands in
      Affine_d.with_bounds o { b with Affine_d.lb_map; lb_operands; ub_map; ub_operands }
  | "affine.if" ->
      let set, operands = fold_set_operands_fix env (Affine_d.if_set o) o.Ir.operands in
      Ir.set_attr { o with Ir.operands = operands } "set" (Attr.Set set)
  | _ -> o

(** Integer constant folding of pure arith ops; returns replacement ops. *)
let fold_arith env ctx (o : Ir.op) : Ir.op list =
  let const_of (v : Ir.value) = Hashtbl.find_opt env.consts v.Ir.vid in
  let mk_const c =
    let r = Ir.result o in
    Hashtbl.replace env.consts r.Ir.vid c;
    [ Ir.mk "arith.constant" ~attrs:[ ("value", Attr.Int c) ] ~operands:[] ~results:[ r ] ]
  in
  ignore ctx;
  match o.Ir.name with
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi"
  | "arith.maxi" | "arith.mini" -> (
      match List.map const_of o.Ir.operands with
      | [ Some a; Some b ] -> (
          match o.Ir.name with
          | "arith.addi" -> mk_const (a + b)
          | "arith.subi" -> mk_const (a - b)
          | "arith.muli" -> mk_const (a * b)
          | "arith.divi" when b <> 0 -> mk_const (a / b)
          | "arith.remi" when b <> 0 -> mk_const (a mod b)
          | "arith.maxi" -> mk_const (max a b)
          | "arith.mini" -> mk_const (min a b)
          | _ -> [ o ])
      | _ -> [ o ])
  | "affine.apply" -> (
      let map = Affine_d.access_map o in
      match (A.Map.is_single_constant map, o.Ir.operands, A.Map.results map) with
      | Some c, _, _ -> mk_const c
      | None, _, [ e ] when A.Expr.equal (A.Expr.simplify e) (A.Expr.dim 0) -> (
          (* identity apply: replace result uses with the operand. This is
             handled by returning an alias op that the caller substitutes. *)
          match o.Ir.operands with
          | [ _ ] -> [ o ] (* alias substitution handled separately *)
          | _ -> [ o ])
      | _ -> [ o ])
  | _ -> [ o ]

(* ---- Loop simplification -------------------------------------------------- *)

let simplify_loops ctx (f : Ir.op) : Ir.op =
  Walk.expand_in_op
    (fun o ->
      if not (Affine_d.is_for o) then [ o ]
      else if Hlscpp.is_pipelined o then [ o ]
        (* a trip-1 pipelined loop is the anchor of a flattened pipeline *)
      else
        match Affine_d.const_trip_count o with
        | Some 0 -> []
        | Some 1 -> (
            match Affine_d.const_bounds o with
            | Some (lb, _) ->
                let cst, cv = Arith.constant_i ctx lb in
                let iv = Affine_d.induction_var o in
                let body =
                  List.filter (fun op -> op.Ir.name <> "affine.yield") (Ir.body_ops o)
                in
                let subst = Ir.Value_map.singleton iv.Ir.vid cv in
                cst :: Walk.substitute_uses_in_ops subst body
            | None -> [ o ])
        | _ -> [ o ])
    f

(* ---- Dead code elimination ------------------------------------------------ *)

let has_side_effects o =
  match o.Ir.name with
  | "memref.store" | "affine.store" | "func.return" | "func.call" | "memref.copy"
  | "memref.dealloc" | "affine.yield" | "scf.yield" -> true
  | "affine.for" | "scf.for" | "affine.if" | "scf.if" | "func" | "module"
  | "graph.stage" ->
      true (* region ops conservatively kept; their bodies are DCE'd inside *)
  | _ -> false

let dce (f : Ir.op) : Ir.op =
  let changed = ref true in
  let f = ref f in
  while !changed do
    changed := false;
    let used = Walk.used_values !f in
    f :=
      Walk.expand_in_op
        (fun o ->
          if
            (not (has_side_effects o))
            && o.Ir.results <> []
            && List.for_all (fun r -> not (Ir.Value_set.mem r.Ir.vid used)) o.Ir.results
          then begin
            changed := true;
            []
          end
          else [ o ])
        !f
  done;
  !f

(* ---- The pass -------------------------------------------------------------- *)

let run_on_func ctx f =
  let rec iterate n f =
    if n = 0 then f
    else
      let env = scan f in
      let f' =
        Walk.expand_in_op (fun o -> fold_arith env ctx (fold_affine_op env o)) f
      in
      let f' = simplify_loops ctx f' in
      let f' = dce f' in
      if f' = f then f else iterate (n - 1) f'
  in
  iterate 4 f

let pass = Pass.on_funcs "canonicalize" run_on_func
