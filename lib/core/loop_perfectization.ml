(** The [-affine-loop-perfectization] pass (§5.2.1): operations sitting
    between loop statements make a band imperfect and block tiling, loop
    flattening, and permutation. This pass sinks such in-between operations
    into the inner loop: state-modifying ops (stores) are wrapped in an
    [affine.if] that fires on the inner loop's first (for ops before the
    inner loop) or last (for ops after it) iteration, while pure ops are left
    unguarded in the inner loop body — exactly the hoisting described in the
    paper's SYRK example (Figure 5 (a) → (A)). *)

open Mir
open Dialects

module A = Affine

(* Can we sink these ops? Pure ops, loads and stores are fine; region ops,
   calls and allocs are not. *)
(* State-modifying ops that must be guarded when sunk: stores, and the
   loop-free affine.if guards produced by earlier perfectization steps
   (sinking wraps them in a further first/last-iteration condition). *)
let state_modifying o =
  Memref.is_store o || (Affine_d.is_if o && not (Walk.exists Affine_d.is_for o))

let sinkable o = Arith.is_pure o || Memref.is_access o || state_modifying o

(* Wrap the state-modifying subset of [ops] in an affine.if over the inner
   loop's iv with constraint [cons]; pure ops stay unguarded, in order. The
   guard set has a single dim (the iv) followed by the ub-map dims shifted by
   one. *)
let guard_ops ~set ~operands ops =
  let stores, _pure = List.partition state_modifying ops in
  if stores = [] then ops
  else
    let unguarded = List.filter (fun o -> not (state_modifying o)) ops in
    unguarded
    @ [
        Affine_d.if_ ~set ~operands
          ~then_:(stores @ [ Affine_d.yield ])
          ~else_:[ Affine_d.yield ];
      ]

(* The condition "iv is the first iteration" of [inner]: iv == lb (constant
   lb only). *)
let first_iter_set inner =
  let b = Affine_d.bounds inner in
  match A.Map.is_single_constant b.Affine_d.lb_map with
  | Some lb ->
      Some
        ( A.Set_.make ~num_dims:1 ~num_syms:0
            [ A.Set_.eq_zero (A.Expr.sub (A.Expr.dim 0) (A.Expr.const lb)) ],
          [ Affine_d.induction_var inner ] )
  | _ -> None

(* The condition "iv is the last iteration": iv >= ub - step, where ub may be
   an affine expression of outer dims. Set dims: iv first, then ub operands. *)
let last_iter_set inner =
  let b = Affine_d.bounds inner in
  match A.Map.results b.Affine_d.ub_map with
  | [ ub_expr ] ->
      let shifted = A.Expr.shift_dims 1 ub_expr in
      let cons =
        A.Set_.ge_zero
          (A.Expr.sub (A.Expr.dim 0)
             (A.Expr.sub shifted (A.Expr.const b.Affine_d.step)))
      in
      Some
        ( A.Set_.make
            ~num_dims:(1 + A.Map.num_dims b.Affine_d.ub_map)
            ~num_syms:0 [ cons ],
          Affine_d.induction_var inner :: b.Affine_d.ub_operands )
  | _ -> None

(* Sinking is only sound when the inner loop provably executes at least one
   iteration for every outer iteration (otherwise the sunk ops are lost,
   e.g. TRMM's k = i+1 .. N loop, empty at i = N-1). *)
let provably_nonempty ~scope (inner : Ir.op) =
  let b = Affine_d.bounds inner in
  match Affine_d.const_bounds inner with
  | Some (lb, ub) -> ub > lb
  | None -> (
      let bound_range map operands pick =
        match A.Map.results map with
        | [ e ] -> (
            let ranges =
              List.map (fun v -> Analysis.Loop_utils.range_of_value scope v) operands
            in
            if List.for_all Option.is_some ranges then
              Option.map pick
                (A.Solve.range_of_expr ~num_dims:(A.Map.num_dims map)
                   ~ranges:(Array.of_list (List.map Option.get ranges))
                   e)
            else None)
        | _ -> None
      in
      match
        ( bound_range b.Affine_d.lb_map b.Affine_d.lb_operands snd,
          bound_range b.Affine_d.ub_map b.Affine_d.ub_operands fst )
      with
      | Some lb_max, Some ub_min -> ub_min > lb_max
      | _ -> false)

(** Perfectize one level: if [outer]'s body is [pre @ [inner] @ post] with
    sinkable pre/post, sink them into [inner]. Returns [None] if nothing to
    do or not applicable. *)
let perfectize_step ~scope (outer : Ir.op) : Ir.op option =
  if not (Affine_d.is_for outer) then None
  else
    let body = Affine_d.body_nonterm outer in
    let loops = List.filter Affine_d.is_for body in
    match loops with
    | [ inner ] when provably_nonempty ~scope inner ->
        let rec split pre = function
          | [] -> (List.rev pre, None, [])
          | o :: rest when o == inner -> (List.rev pre, Some o, rest)
          | o :: rest -> split (o :: pre) rest
        in
        let pre, _, post = split [] body in
        (* Pure scalar ops whose results feed the inner loop's operands
           (bound computations left over from the scf level, possibly dead)
           must not sink: they stay hoisted before the inner loop. *)
        let inner_operand_ids =
          List.fold_left
            (fun s (v : Ir.value) -> Ir.Value_set.add v.Ir.vid s)
            Ir.Value_set.empty inner.Ir.operands
        in
        let feeds_bounds o =
          List.exists (fun (r : Ir.value) -> Ir.Value_set.mem r.Ir.vid inner_operand_ids) o.Ir.results
        in
        let stays, pre = List.partition (fun o -> Arith.is_pure o && feeds_bounds o) pre in
        if List.exists feeds_bounds pre then None
        else
        (* Values defined by the sunk ops must stay within their group: a
           sunk load re-executes every inner iteration, which is only safe
           when its consumers are the stores guarded to the matching first /
           last iteration (i.e., other ops of the same group). *)
        let group_closed group =
          let defined =
            List.fold_left
              (fun s o ->
                List.fold_left (fun s (v : Ir.value) -> Ir.Value_set.add v.Ir.vid s) s o.Ir.results)
              Ir.Value_set.empty group
          in
          let used_outside =
            List.filter (fun o -> not (List.memq o group || List.memq o stays)) body
            |> List.fold_left
                 (fun s o -> Ir.Value_set.union s (Walk.used_values o))
                 Ir.Value_set.empty
          in
          Ir.Value_set.is_empty (Ir.Value_set.inter defined used_outside)
        in
        if pre = [] && post = [] then None
        else if not (List.for_all sinkable (pre @ post)) then None
        else if not (group_closed pre && group_closed post) then None
        else
          let first = first_iter_set inner and last = last_iter_set inner in
          (* A first/last-iteration guard is only required when the sunk
             group actually modifies state; pure groups sink unguarded. *)
          let needs_first = List.exists state_modifying pre in
          let needs_last = List.exists state_modifying post in
          (match ((needs_first, first), (needs_last, last)) with
          | ((true, None), _) | (_, (true, None)) -> None
          | _ ->
              let guarded_pre =
                match (pre, needs_first, first) with
                | [], _, _ -> []
                | _, false, _ -> pre
                | _, true, Some (set, operands) -> guard_ops ~set ~operands pre
                | _, true, None -> assert false
              in
              let guarded_post =
                match (post, needs_last, last) with
                | [], _, _ -> []
                | _, false, _ -> post
                | _, true, Some (set, operands) -> guard_ops ~set ~operands post
                | _, true, None -> assert false
              in
              let inner_body =
                guarded_pre
                @ List.filter (fun o -> o.Ir.name <> "affine.yield") (Ir.body_ops inner)
                @ guarded_post @ [ Affine_d.yield ]
              in
              let inner' = Ir.with_body inner inner_body in
              Some (Ir.with_body outer (stays @ [ inner'; Affine_d.yield ])))
    | _ -> None

(** Perfectize all bands in a function to fixpoint. *)
let run_on_func _ctx f =
  let changed = ref true in
  let f = ref f in
  let fuel = ref 64 in
  while !changed && !fuel > 0 do
    changed := false;
    decr fuel;
    let scope = !f in
    f :=
      Walk.expand_in_op
        (fun o ->
          match perfectize_step ~scope o with
          | Some o' ->
              changed := true;
              [ o' ]
          | None -> [ o ])
        !f
  done;
  !f

let pass = Pass.on_funcs "affine-loop-perfectization" run_on_func

(** Would perfectization change anything in this function? (Reported in the
    DSE results table.) *)
let applicable f =
  Walk.exists (fun o -> Option.is_some (perfectize_step ~scope:f o)) f
