(** The [-affine-loop-order-opt] pass (§5.2.2): permute perfect loop bands to
    reduce the distance (or remove) loop-carried memory dependencies, thereby
    lowering the achievable pipeline II (Eq. 4). The pass performs
    affine-based dependence analysis, enumerates legal permutations, and picks
    the one minimizing the dependency-constrained II of the innermost loop.
    An explicit [perm-map] can instead be supplied (paper Table 2/3 syntax:
    the i-th entry is the new position of the i-th loop, outermost first). *)

open Mir
open Dialects
open Analysis

(* All permutations of [0..n-1]. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
        xs

(** Accesses of a band's innermost body over the band ivs. *)
let band_accesses ~scope band =
  let basis = Loop_utils.band_ivs band in
  match List.rev band with
  | innermost :: _ -> Mem_access.collect ~scope ~basis innermost
  | [] -> []

let band_deps ~scope band =
  let num_dims = List.length band in
  let ranges =
    let rs = List.map Affine_d.const_trip_count band in
    if List.for_all Option.is_some rs then
      Some (Array.of_list (List.map (fun t -> (0, Option.get t - 1)) rs))
    else None
  in
  Dependence.all_deps ?ranges ~num_dims (band_accesses ~scope band)

(** Apply permutation [perm] (new position of each original loop) to a
    perfect band; returns the new root. The loop ops travel with their
    bounds, ivs and directives; only the nesting order changes. *)
let permute_band band perm =
  let n = List.length band in
  if List.length perm <> n then invalid_arg "Loop_order_opt.permute_band: arity";
  if List.sort compare perm <> List.init n Fun.id then
    invalid_arg "Loop_order_opt.permute_band: not a permutation";
  if not (Affine_d.band_is_perfect band) then
    invalid_arg "Loop_order_opt.permute_band: band is imperfect";
  let arr = Array.make n (List.hd band) in
  List.iteri (fun i l -> arr.(List.nth perm i) <- l) band;
  (* Innermost body travels from the original innermost loop. *)
  let innermost_body = Ir.body_ops (List.nth band (n - 1)) in
  let rec build i =
    if i = n - 1 then Ir.with_body arr.(i) innermost_body
    else Ir.with_body arr.(i) [ build (i + 1); Affine_d.yield ]
  in
  build 0

(** Permutation legality: every dependence direction vector stays
    lexicographically non-negative after permutation. A permutation is also
    illegal if it moves a loop with non-constant bounds (bound expressions
    reference outer ivs positionally and would escape their scope). *)
let legal_permutation ~deps band perm =
  let perm_arr = Array.of_list perm in
  (* A variable bound references outer induction variables; permuting could
     move its defining loop inside and break dominance. Run
     remove-variable-bound first (as the DSE pipeline does); here we simply
     refuse to permute bands containing variable bounds. *)
  let all_const = List.for_all Affine_d.has_const_bounds band in
  all_const && Dependence.permutation_legal perm_arr deps

(** Cost of a permutation: primarily the dependency-constrained II proxy of
    pipelining the innermost loop (~chain delay 7, relative comparison only —
    the QoR estimator refines with real delays); secondarily, maximize the
    number of innermost consecutive dependence-free dims (those are what
    tiling + unrolling parallelize without creating recurrences). *)
let dep_cost ~deps ~num_dims perm =
  let orig_at_pos =
    let a = Array.make num_dims 0 in
    List.iteri (fun orig pos -> a.(pos) <- orig) perm;
    a
  in
  let carried dim =
    List.exists
      (fun dep ->
        match Dependence.carried_distance ~dim dep with
        | Some d -> d > 0
        | None -> false)
      deps
  in
  let innermost_orig = orig_at_pos.(num_dims - 1) in
  let ii_proxy =
    List.fold_left
      (fun acc dep ->
        match Dependence.carried_distance ~dim:innermost_orig dep with
        | Some d when d > 0 -> max acc ((7 + d - 1) / d)
        | Some _ | None -> acc)
      1 deps
  in
  let rec free_suffix pos =
    if pos < 0 || carried orig_at_pos.(pos) then 0
    else 1 + free_suffix (pos - 1)
  in
  (ii_proxy, -free_suffix (num_dims - 1))

(** Find the best legal permutation for [band]; [perm_map] overrides the
    search. Returns the permutation applied (or [None] if left unchanged). *)
let optimize_band ?perm_map ~scope band =
  let n = List.length band in
  if n <= 1 || not (Affine_d.band_is_perfect band) then None
  else
    let deps = band_deps ~scope band in
    match perm_map with
    | Some perm ->
        if legal_permutation ~deps band perm then Some perm else None
    | None ->
        let identity = List.init n Fun.id in
        let candidates =
          List.filter (fun p -> legal_permutation ~deps band p) (permutations identity)
        in
        let scored =
          List.map (fun p -> (dep_cost ~deps ~num_dims:n p, p)) candidates
        in
        let best =
          List.fold_left
            (fun acc (c, p) ->
              match acc with
              | None -> Some (c, p)
              | Some (c0, _) when c < c0 -> Some (c, p)
              | acc -> acc)
            None scored
        in
        (match best with
        | Some (c_best, p_best) ->
            let c_id = dep_cost ~deps ~num_dims:n identity in
            if c_best < c_id then Some p_best else None
        | None -> None)

let run_on_func ?perm_map ctx f =
  ignore ctx;
  Ir.with_body f
    (List.map
       (fun o ->
         if Affine_d.is_for o then
           let band = Affine_d.band o in
           match optimize_band ?perm_map ~scope:f band with
           | Some perm -> permute_band band perm
           | None -> o
         else o)
       (Func.func_body f))

let pass = Pass.on_funcs "affine-loop-order-opt" (fun ctx f -> run_on_func ctx f)
