(** The [-array-partition] pass (§5.3.2): detects the memory access pattern of
    each on-chip array and applies cyclic/block partitions per dimension,
    encoding them into the memref layout affine map (§4.3.3).

    For array i, dimension d, the partition metric (Eq. 1) is
    [P = Accesses / (max_{m,n} (index_m - index_n + 1))] computed over the
    accesses inside pipelined regions; [P >= 1] selects cyclic and [P < 1]
    block partitioning, both with the factor set to the number of distinct
    index expressions. Inter-procedural analysis propagates partitions across
    call boundaries so the directives land in the correct function scope and
    globally consistent strategies are selected. *)

open Mir
open Dialects
open Analysis

module A = Affine

type spec = Hlscpp.partition list

(* Combine two per-dim partition choices: larger factor wins; cyclic wins a
   factor tie (cheaper addressing for unit-stride unrolled access). *)
let combine_partition a b =
  let fa = Hlscpp.partition_factor a and fb = Hlscpp.partition_factor b in
  if fa > fb then a
  else if fb > fa then b
  else match (a, b) with Hlscpp.Cyclic _, _ -> a | _, Hlscpp.Cyclic _ -> b | _ -> a

let combine_spec (a : spec) (b : spec) : spec = List.map2 combine_partition a b

(* ---- Per-dimension analysis (Eq. 1) --------------------------------------- *)

let partition_for_dim exprs =
  let exprs = List.sort_uniq compare (List.map A.Expr.simplify exprs) in
  let count = List.length exprs in
  if count <= 1 then Hlscpp.None_p
  else
    (* Max constant span over all pairs; non-constant differences make the
       span undefined — fall back to cyclic (span = count). *)
    let span = ref 1 and defined = ref true in
    List.iter
      (fun em ->
        List.iter
          (fun en ->
            match A.Expr.as_const (A.Expr.simplify (A.Expr.sub em en)) with
            | Some d -> span := max !span (d + 1)
            | None -> defined := false)
          exprs)
      exprs;
    if (not !defined) || count >= !span then Hlscpp.Cyclic count
    else Hlscpp.Block count

(** Desired partition of each memref accessed inside [region] (a pipelined
    loop body or pipelined function), with accesses normalized over
    [basis]. *)
let analyze_region ~scope ~basis region : (Ir.value * spec) list =
  let accs = Mem_access.collect ~scope ~basis region in
  List.map
    (fun ((m : Ir.value), maccs) ->
      let rank = List.length (Ty.as_memref m.Ir.vty).Ty.shape in
      let spec =
        List.init rank (fun d ->
            partition_for_dim
              (List.map (fun (a : Mem_access.t) -> List.nth a.Mem_access.exprs d) maccs))
      in
      (m, spec))
    (Mem_access.by_memref accs)

(** All pipelined regions of a function, each with the basis of surviving
    enclosing induction variables. A function-pipelined function is itself a
    region with an empty basis. *)
let pipelined_regions f =
  let out = ref [] in
  let rec go basis (o : Ir.op) =
    let basis' =
      if Affine_d.is_for o then basis @ [ Affine_d.induction_var o ] else basis
    in
    if Affine_d.is_for o && Hlscpp.is_pipelined o then out := (basis', o) :: !out
    else
      List.iter
        (List.iter (fun b -> List.iter (go basis') b.Ir.bops))
        o.Ir.regions
  in
  (match Hlscpp.get_func_directive f with
  | Some d when d.Hlscpp.pipeline -> out := ([], f) :: !out
  | _ -> List.iter (go []) (Func.func_body f));
  !out

(** Desired partitions in one function, keyed by memref value id. *)
let analyze_func f : (int * (Ir.value * spec)) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (basis, region) ->
      List.iter
        (fun ((m : Ir.value), spec) ->
          let cur =
            match Hashtbl.find_opt tbl m.Ir.vid with
            | Some (_, s) -> combine_spec s spec
            | None -> spec
          in
          Hashtbl.replace tbl m.Ir.vid (m, cur))
        (analyze_region ~scope:f ~basis region))
    (pipelined_regions f);
  Hashtbl.fold (fun vid v acc -> (vid, v) :: acc) tbl []

(* ---- Inter-procedural aliasing --------------------------------------------
   Union-find over memref value ids: a caller's memref operand aliases the
   callee's corresponding block argument. *)

let alias_classes m =
  let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
    | Some _ -> x
    | None ->
        Hashtbl.replace parent x x;
        x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  Walk.iter_op
    (fun o ->
      if Func.is_call o then
        match Ir.find_func m (Func.callee o) with
        | Some callee ->
            let params = Func.func_args callee in
            List.iteri
              (fun i (arg : Ir.value) ->
                if Ty.is_memref arg.Ir.vty then
                  match List.nth_opt params i with
                  | Some (p : Ir.value) -> union arg.Ir.vid p.Ir.vid
                  | None -> ())
              o.Ir.operands
        | None -> ())
    m;
  find

(* ---- Retyping --------------------------------------------------------------
   Apply new memref types to every occurrence (operands, results, block args)
   and refresh func signatures. *)

let retype_module m (new_ty : int -> Ty.t option) =
  let rv (v : Ir.value) =
    match new_ty v.Ir.vid with Some t -> { v with Ir.vty = t } | None -> v
  in
  let rec ro (o : Ir.op) =
    let o =
      {
        o with
        Ir.operands = List.map rv o.Ir.operands;
        Ir.results = List.map rv o.Ir.results;
        Ir.regions =
          List.map
            (List.map (fun b ->
                 { Ir.bargs = List.map rv b.Ir.bargs; Ir.bops = List.map ro b.Ir.bops }))
            o.Ir.regions;
      }
    in
    if Func.is_func o then
      let args = Func.func_args o in
      let _, outputs = Ir.func_type o in
      Ir.set_attr o "function_type"
        (Attr.Ty (Ty.fn (List.map (fun (v : Ir.value) -> v.Ir.vty) args) outputs))
    else o
  in
  ro m

(* ---- The pass --------------------------------------------------------------- *)

(** Run array partitioning on a whole module. [factors] optionally pins the
    partition of specific arrays: an association list from (function name,
    argument index) to a per-dim spec — the paper's [part-factors]
    parameter. *)
let run ?(factors = []) ctx m =
  ignore ctx;
  let find = alias_classes m in
  (* Gather desired specs per alias class. *)
  let class_spec : (int, spec) Hashtbl.t = Hashtbl.create 32 in
  let add_spec (v : Ir.value) spec =
    if Ty.is_memref v.Ir.vty
       && (Ty.as_memref v.Ir.vty).Ty.memspace <> Ty.Memspace.dram
    then begin
      let c = find v.Ir.vid in
      let cur = Hashtbl.find_opt class_spec c in
      Hashtbl.replace class_spec c
        (match cur with Some s -> combine_spec s spec | None -> spec)
    end
  in
  List.iter
    (fun f -> List.iter (fun (_, (v, spec)) -> add_spec v spec) (analyze_func f))
    (Ir.module_funcs m);
  (* Explicit factors override. *)
  List.iter
    (fun ((fname, arg_idx), spec) ->
      match Ir.find_func m fname with
      | Some f -> (
          match List.nth_opt (Func.func_args f) arg_idx with
          | Some v ->
              if Ty.is_memref v.Ir.vty then
                Hashtbl.replace class_spec (find v.Ir.vid) spec
          | None -> ())
      | None -> ())
    factors;
  (* Compute the new type of every memref value participating in a class
     with a non-trivial spec. *)
  let new_ty vid =
    let c = find vid in
    match Hashtbl.find_opt class_spec c with
    | Some spec when List.exists (fun p -> p <> Hlscpp.None_p) spec -> Some (c, spec)
    | _ -> None
  in
  let typer (v_ty : Ty.t) spec =
    match v_ty with
    | Ty.Memref mr when List.length spec = List.length mr.Ty.shape ->
        Some (Hlscpp.partitioned_memref mr spec)
    | _ -> None
  in
  (* Need value types to rebuild: walk module once collecting vid -> ty. *)
  let vid_ty : (int, Ty.t) Hashtbl.t = Hashtbl.create 256 in
  Walk.iter_op
    (fun o ->
      List.iter (fun (v : Ir.value) -> Hashtbl.replace vid_ty v.Ir.vid v.Ir.vty) o.Ir.operands;
      List.iter (fun (v : Ir.value) -> Hashtbl.replace vid_ty v.Ir.vid v.Ir.vty) o.Ir.results;
      List.iter
        (List.iter (fun b ->
             List.iter (fun (v : Ir.value) -> Hashtbl.replace vid_ty v.Ir.vid v.Ir.vty) b.Ir.bargs))
        o.Ir.regions)
    m;
  retype_module m (fun vid ->
      match new_ty vid with
      | Some (_, spec) ->
          Option.bind (Hashtbl.find_opt vid_ty vid) (fun t -> typer t spec)
      | None -> None)

let pass ?factors () =
  Pass.make "array-partition" (fun ctx m -> run ?factors ctx m)
