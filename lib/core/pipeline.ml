(** Prebuilt compilation flows — the "single line of command" entry points:
    - {!compile_c}: HLS-C source → affine-level module (front-end + raising);
    - {!kernel_flow}: the computation-kernel DSE flow of §7.1;
    - {!dnn_flow}: the DNN flow of §7.2, parameterized by the ablation knobs
      of Figure 7 — graph level [g] (dataflow granularity; 0 disables graph
      optimization), loop level [l] (unroll factor 2^(l-1); 0 disables loop
      optimization), and the directive level (pipelining + array
      partitioning) on/off. *)

open Mir
open Dialects
open Vhls

let cleanup = Dse.cleanup_passes

(** C source to the cleaned affine-level module. *)
let compile_c ctx src =
  let m = Frontend.Codegen.compile_source ctx src in
  Pass.run_pipeline
    [ Frontend.Raise_affine.pass; Canonicalize.pass; Store_forward.pass; Cse.pass ]
    ctx m

(** The automated kernel flow: DSE under the platform constraints. *)
let kernel_flow ?samples ?iterations ?seed ?max_unroll ?max_ii ?heuristic_seeds ?jobs
    ctx m ~top ~platform =
  Dse.run ?samples ?iterations ?seed ?max_unroll ?max_ii ?heuristic_seeds ?jobs ctx m
    ~top ~platform

(* ---- DNN flow ---------------------------------------------------------------- *)

(* Tile sizes reaching a total unroll of [u]: innermost loops first, each
   taking its largest divisor not exceeding what remains. *)
let greedy_tile_sizes band ~u =
  let trips =
    List.map (fun l -> Option.value ~default:1 (Affine_d.const_trip_count l)) band
  in
  let remaining = ref u in
  let sizes_innermost_first =
    List.fold_left
      (fun acc trip ->
        let divs = List.rev (Affine.Solve.divisors trip) in
        let s =
          match List.find_opt (fun d -> d <= !remaining) divs with
          | Some d -> d
          | None -> 1
        in
        remaining := !remaining / max 1 s;
        s :: acc)
      [] (List.rev trips)
  in
  sizes_innermost_first

(* Loop + directive optimization of one lowered function. *)
let optimize_stage_func ctx ~loop_level ~directive f =
  let u = if loop_level > 0 then 1 lsl (loop_level - 1) else 1 in
  let f =
    if loop_level > 0 then
      let f = Loop_perfectization.run_on_func ctx f in
      Loop_order_opt.run_on_func ctx f
    else f
  in
  if not directive then f
  else
    Ir.with_body f
      (List.map
         (fun o ->
           if Affine_d.is_for o then begin
             let band = Affine_d.band o in
             let n = List.length band in
             let root =
               if u > 1 then
                 match Loop_tile.tile_band ctx band ~sizes:(greedy_tile_sizes band ~u) with
                 | Some r -> r
                 | None -> o
               else o
             in
             match Loop_pipeline.pipeline_band ctx ~target_ii:1 ~depth:(n - 1) root with
             | Some r -> r
             | None -> root
           end
           else o)
         (Func.func_body f))

type dnn_config = { graph_level : int; loop_level : int; directive : bool }

let baseline_config = { graph_level = 0; loop_level = 0; directive = false }
let best_config = { graph_level = 7; loop_level = 7; directive = true }

let pp_config fmt c =
  let parts =
    (if c.graph_level > 0 then [ Printf.sprintf "G%d" c.graph_level ] else [])
    @ (if c.loop_level > 0 then [ Printf.sprintf "L%d" c.loop_level ] else [])
    @ if c.directive then [ "D" ] else []
  in
  Fmt.string fmt (if parts = [] then "baseline" else String.concat "+" parts)

(** Dataflow granularity of graph level [g]: larger [g] means finer stages
    (Figure 7): min-gran = 2^(7-g) adjacent stages merged per sub-function. *)
let min_gran_of_level g = if g <= 0 then max_int else 1 lsl (7 - min 7 g)

(** Compile a graph-level module (a [forward] function of graph ops) into an
    optimized loop/directive-level module. *)
let dnn_flow ctx m ~config ~platform =
  let { graph_level; loop_level; directive } = config in
  (* Graph level: dataflow legalization + function splitting. *)
  let m =
    if graph_level > 0 then begin
      let m = Pass.run_one (Legalize_dataflow.pass ~insert_copy:true ()) ctx m in
      Split_function.split ~min_gran:(min_gran_of_level graph_level) ctx m
        ~func_name:"forward"
    end
    else m
  in
  (* Lower to affine loops over buffers, place weights. *)
  let m = Lower_graph.run ctx m in
  let m = Resource_alloc.place_weights ~platform ctx m in
  (* Loop + directive levels per function. *)
  let m =
    Ir.module_map_funcs
      (fun f ->
        match Hlscpp.get_func_directive f with
        | Some d when d.Hlscpp.dataflow -> f
        | _ -> optimize_stage_func ctx ~loop_level ~directive f)
      m
  in
  let m = Pass.run_pipeline cleanup ctx m in
  let m = if directive then Array_partition.run ctx m else m in
  Pass.run_pipeline [ Canonicalize.pass ] ctx m

(** Convenience: compile and synthesize, returning the virtual-tool report
    plus the transformed module. *)
let dnn_synth ctx m ~config ~platform =
  let m' = dnn_flow ctx m ~config ~platform in
  (Synth.synthesize m' ~top:"forward", m')
