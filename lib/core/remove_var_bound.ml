(** The [-remove-variable-bound] pass (§5.2.3): loops whose bounds are affine
    expressions of outer induction variables are rewritten with the constant
    min (for lower bounds) / max (for upper bounds) of the expression over
    the outer iteration box, and an [affine.if] guarding the original
    iteration domain is inserted around the loop body. This regularizes the
    band for permutation/tiling at the cost of extra (masked) iterations. *)

open Mir
open Dialects
open Analysis

module A = Affine

(* Ranges (inclusive) of a list of operand values, via their defining loops
   or constants. *)
let operand_ranges ~scope operands =
  let rs = List.map (Loop_utils.range_of_value scope) operands in
  if List.for_all Option.is_some rs then
    Some (Array.of_list (List.map Option.get rs))
  else None

(** Rewrite one variable-bound loop. Returns [None] when the loop already has
    constant bounds or when the bound ranges cannot be determined. *)
let remove_step ~scope (o : Ir.op) : Ir.op option =
  if not (Affine_d.is_for o) then None
  else if Affine_d.has_const_bounds o then None
  else
    let b = Affine_d.bounds o in
    match (A.Map.results b.Affine_d.lb_map, A.Map.results b.Affine_d.ub_map) with
    | [ lb_expr ], [ ub_expr ] -> (
        let lb_rng =
          match A.Expr.as_const (A.Expr.simplify lb_expr) with
          | Some c -> Some (c, c)
          | None ->
              Option.bind (operand_ranges ~scope b.Affine_d.lb_operands) (fun ranges ->
                  A.Solve.range_of_expr
                    ~num_dims:(A.Map.num_dims b.Affine_d.lb_map)
                    ~ranges lb_expr)
        in
        let ub_rng =
          match A.Expr.as_const (A.Expr.simplify ub_expr) with
          | Some c -> Some (c, c)
          | None ->
              Option.bind (operand_ranges ~scope b.Affine_d.ub_operands) (fun ranges ->
                  A.Solve.range_of_expr
                    ~num_dims:(A.Map.num_dims b.Affine_d.ub_map)
                    ~ranges ub_expr)
        in
        match (lb_rng, ub_rng) with
        | Some (lb_min, _), Some (_, ub_max) ->
            (* Extend a positive minimum lower bound down to 0: the guard
               masks the extra iterations, and the rounder trip count keeps
               the loop tileable (the paper accepts the iteration increase). *)
            let lb_min = if lb_min > 0 then 0 else lb_min in
            let iv = Affine_d.induction_var o in
            (* Guard: lb_expr <= iv < ub_expr, over dims
               (iv :: lb_operands :: ub_operands). Constraints already true
               statically are dropped by Set_.simplify. *)
            let n_lb = List.length b.Affine_d.lb_operands in
            let lb_shifted = A.Expr.shift_dims 1 lb_expr in
            let ub_shifted = A.Expr.shift_dims (1 + n_lb) ub_expr in
            let set =
              A.Set_.simplify
                (A.Set_.make
                   ~num_dims:(1 + n_lb + List.length b.Affine_d.ub_operands)
                   ~num_syms:0
                   [
                     A.Set_.ge_zero (A.Expr.sub (A.Expr.dim 0) lb_shifted);
                     A.Set_.ge_zero
                       (A.Expr.sub (A.Expr.sub ub_shifted (A.Expr.dim 0)) (A.Expr.const 1));
                   ])
            in
            let operands = (iv :: b.Affine_d.lb_operands) @ b.Affine_d.ub_operands in
            (* Sink the guard into the innermost loop (the paper places the
               affine.if "in the innermost loop for the conditional execution
               of the whole loop body") so the band structure stays visible
               to permutation and tiling. The condition only involves this
               loop's iv and outer ivs, so it is invariant under the inner
               loops and guarding their bodies is equivalent. *)
            (* Sink the guard through nested loops. Non-loop op segments are
               wrapped individually so imperfect bands stay visible to later
               perfectization — but only when each segment's values are used
               exclusively within that segment; otherwise the whole remaining
               body is wrapped at once. *)
            let wrap body =
              Affine_d.if_ ~set ~operands
                ~then_:(body @ [ Affine_d.yield ])
                ~else_:[ Affine_d.yield ]
            in
            let rec guard_body ops =
              let nonterm =
                List.filter (fun x -> x.Ir.name <> "affine.yield") ops
              in
              (* split into segments: Seg of op list | Loop of op *)
              let segments =
                List.fold_left
                  (fun acc o ->
                    if Affine_d.is_for o then `Loop o :: acc
                    else
                      match acc with
                      | `Seg seg :: rest -> `Seg (o :: seg) :: rest
                      | acc -> `Seg [ o ] :: acc)
                  [] nonterm
                |> List.rev_map (function
                     | `Seg seg -> `Seg (List.rev seg)
                     | `Loop o -> `Loop o)
              in
              let defs ops =
                List.fold_left
                  (fun s (o : Ir.op) ->
                    List.fold_left
                      (fun s (v : Ir.value) -> Ir.Value_set.add v.Ir.vid s)
                      s o.Ir.results)
                  Ir.Value_set.empty ops
              in
              let segments_self_contained =
                List.for_all
                  (function
                    | `Loop _ -> true
                    | `Seg seg ->
                        let d = defs seg in
                        List.for_all
                          (fun (o : Ir.op) ->
                            List.memq o seg
                            || Ir.Value_set.is_empty
                                 (Ir.Value_set.inter d (Walk.used_values o)))
                          nonterm)
                  segments
              in
              if (not (List.exists Affine_d.is_for nonterm)) || not segments_self_contained
              then [ wrap nonterm; Affine_d.yield ]
              else
                List.concat_map
                  (function
                    | `Seg seg -> [ wrap seg ]
                    | `Loop o -> [ Ir.with_body o (guard_body (Ir.body_ops o)) ])
                  segments
                @ [ Affine_d.yield ]
            in
            let o' =
              Affine_d.with_bounds o
                {
                  Affine_d.lb_map = A.Map.constant [ lb_min ];
                  lb_operands = [];
                  ub_map = A.Map.constant [ ub_max ];
                  ub_operands = [];
                  step = b.Affine_d.step;
                }
            in
            Some (Ir.with_body o' (guard_body (Ir.body_ops o)))
        | _ -> None)
    | _ -> None

let run_on_func _ctx f =
  Walk.expand_in_op
    (fun o -> match remove_step ~scope:f o with Some o' -> [ o' ] | None -> [ o ])
    f

let pass = Pass.on_funcs "remove-variable-bound" run_on_func

(** Does the function contain variable-bound affine loops? (Reported in the
    DSE results table.) *)
let applicable f =
  Walk.exists (fun o -> Affine_d.is_for o && not (Affine_d.has_const_bounds o)) f
