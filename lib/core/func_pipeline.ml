(** The [-func-pipelining] pass (§5.3.1): legalizes the target function by
    fully unrolling all loops it contains (and pipelining sub-functions),
    then sets the function pipeline directive with the target II. Also hosts
    the function [dataflow] directive setter used by the graph-level flow. *)

open Mir
open Dialects

let pipeline_func ctx ?(target_ii = 1) f =
  match Loop_unroll.unroll_nested ctx f with
  | None -> None
  | Some legalized ->
      Some
        (Hlscpp.set_func_directive legalized
           {
             Hlscpp.default_func_directive with
             Hlscpp.pipeline = true;
             target_ii;
           })

(** Mark a function as a dataflow region (§4.3.1): all sub-functions called
    from it become concurrently executing, ping-pong-buffered stages. *)
let set_dataflow f =
  Hlscpp.set_func_directive f
    { Hlscpp.default_func_directive with Hlscpp.dataflow = true }

let run_on_func ?(target_ii = 1) ~only ctx f =
  if only <> None && only <> Some (Ir.func_name f) then f
  else match pipeline_func ctx ~target_ii f with Some f' -> f' | None -> f

let pass ?target_ii ?only () =
  Pass.on_funcs "func-pipelining" (fun ctx f -> run_on_func ?target_ii ~only ctx f)
