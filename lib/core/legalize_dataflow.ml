(** The [-legalize-dataflow] pass (§5.1.1): downstream dataflow pipelining
    requires each intermediate result to have one producer and one consumer
    and forbids bypass paths. This pass assigns each graph "procedure" node a
    dataflow stage (its longest-path level) and then either

    - conservatively merges the stages spanned by a bypass edge into one
      (Figure 4(b)), or
    - with [insert_copy], breaks bypass edges by inserting [graph.copy]
      nodes at the intermediate stages (Figure 4(c)),

    until every edge connects adjacent stages. Stage ids are recorded as a
    [dataflow.stage] attribute consumed by [-split-function]. *)

open Mir
open Dialects

let stage_attr = "dataflow.stage"

let stage_of o = Option.map Attr.as_int (Ir.attr o stage_attr)

(* Producer index of each value among [ops]. *)
let producers ops =
  let tbl = Hashtbl.create 32 in
  List.iteri
    (fun i (o : Ir.op) ->
      List.iter (fun (r : Ir.value) -> Hashtbl.replace tbl r.Ir.vid i) o.Ir.results)
    ops;
  tbl

(* Longest-path level of each proc node (non-proc ops get level -1). *)
let levels ops =
  let prod = producers ops in
  let arr = Array.of_list ops in
  let lvl = Array.make (Array.length arr) (-1) in
  Array.iteri
    (fun i (o : Ir.op) ->
      if Graph.is_proc o then begin
        let m =
          List.fold_left
            (fun acc (v : Ir.value) ->
              match Hashtbl.find_opt prod v.Ir.vid with
              | Some j when Graph.is_proc arr.(j) -> max acc lvl.(j)
              | _ -> acc)
            (-1) o.Ir.operands
        in
        lvl.(i) <- m + 1
      end)
    arr;
  lvl

(* Edges between proc nodes: (src idx, dst idx). *)
let proc_edges ops =
  let prod = producers ops in
  let arr = Array.of_list ops in
  let edges = ref [] in
  Array.iteri
    (fun j (o : Ir.op) ->
      if Graph.is_proc o then
        List.iter
          (fun (v : Ir.value) ->
            match Hashtbl.find_opt prod v.Ir.vid with
            | Some i when Graph.is_proc arr.(i) -> edges := (i, j) :: !edges
            | _ -> ())
          o.Ir.operands)
    arr;
  !edges

(* Conservative legalization: union-find over levels; a bypass edge
   (gap > 1 in the compacted stage order) merges all intermediate stages. *)
let merge_levels nlevels edges lvl =
  let parent = Array.init nlevels Fun.id in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); parent.(x)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* compact stage order = sorted distinct roots *)
    let roots = List.sort_uniq compare (List.init nlevels find) in
    let order = List.mapi (fun pos r -> (r, pos)) roots in
    let pos_of l = List.assoc (find l) order in
    List.iter
      (fun (i, j) ->
        let pi = pos_of lvl.(i) and pj = pos_of lvl.(j) in
        if pj - pi > 1 then begin
          (* merge all levels whose position is within (pi, pj] into one *)
          List.iter
            (fun (r, pos) -> if pos > pi && pos <= pj then union r lvl.(j))
            order;
          changed := true
        end)
      edges
  done;
  let roots = List.sort_uniq compare (List.init nlevels find) in
  let order = List.mapi (fun pos r -> (r, pos)) roots in
  fun l -> List.assoc (find l) order

(** Legalize the dataflow of a graph-level function. Returns the function
    with [dataflow.stage] attributes on every proc node (copy nodes included
    when [insert_copy]). Non-proc ops (weights) are left unstaged. *)
let legalize ?(insert_copy = false) ctx (f : Ir.op) : Ir.op =
  let body = Func.func_body f in
  let lvl = levels body in
  let arr = Array.of_list body in
  let nlevels = Array.fold_left max 0 lvl + 1 in
  if nlevels = 0 then f
  else if insert_copy then begin
    (* Break bypass edges with copy chains placed right before the consumer
       (Figure 4(c)). *)
    let edges = proc_edges body in
    (* per consumer index: copies to insert before it, plus operand rewires *)
    let inserts : (int, Ir.op list) Hashtbl.t = Hashtbl.create 8 in
    let rewires : (int, (int * Ir.value) list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (i, j) ->
        let gap = lvl.(j) - lvl.(i) in
        if gap > 1 then begin
          let carried =
            List.find
              (fun (v : Ir.value) ->
                List.exists (fun (r : Ir.value) -> r.Ir.vid = v.Ir.vid) arr.(i).Ir.results)
              arr.(j).Ir.operands
          in
          let cur = ref carried in
          let chain = ref [] in
          for s = lvl.(i) + 1 to lvl.(j) - 1 do
            let op, r = Graph.copy ctx !cur in
            let op = Ir.set_attr op stage_attr (Attr.Int s) in
            chain := op :: !chain;
            cur := r
          done;
          Hashtbl.replace inserts j
            (Option.value ~default:[] (Hashtbl.find_opt inserts j) @ List.rev !chain);
          Hashtbl.replace rewires j
            ((carried.Ir.vid, !cur)
            :: Option.value ~default:[] (Hashtbl.find_opt rewires j))
        end)
      edges;
    let body' =
      List.concat
        (List.mapi
           (fun j (o : Ir.op) ->
             let o =
               if Graph.is_proc o then Ir.set_attr o stage_attr (Attr.Int lvl.(j)) else o
             in
             let o =
               match Hashtbl.find_opt rewires j with
               | Some rw ->
                   {
                     o with
                     Ir.operands =
                       List.map
                         (fun (v : Ir.value) ->
                           match List.assoc_opt v.Ir.vid rw with
                           | Some nv -> nv
                           | None -> v)
                         o.Ir.operands;
                   }
               | None -> o
             in
             Option.value ~default:[] (Hashtbl.find_opt inserts j) @ [ o ])
           body)
    in
    Func.with_func_body f body'
  end
  else begin
    let edges = proc_edges body in
    let stage = merge_levels nlevels edges lvl in
    let body' =
      List.mapi
        (fun j (o : Ir.op) ->
          if Graph.is_proc o then Ir.set_attr o stage_attr (Attr.Int (stage lvl.(j)))
          else o)
        body
    in
    Func.with_func_body f body'
  end

(** Number of dataflow stages after legalization. *)
let num_stages f =
  List.fold_left
    (fun acc o -> match stage_of o with Some s -> max acc (s + 1) | None -> acc)
    0 (Func.func_body f)

let pass ?insert_copy () =
  Pass.on_funcs "legalize-dataflow" (fun ctx f ->
      if List.exists Graph.is_proc (Func.func_body f) then
        legalize ?insert_copy ctx f
      else f)
