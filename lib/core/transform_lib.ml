(** The HLS transform and analysis library (§3.3, §5): every optimization of
    ScaleHLS exposed as a callable, tunable interface — the foundation the
    automated DSE engine is built on, and the API third-party DSE algorithms
    would target. Each entry mirrors one row of Table 2.

    Functions either rewrite a module/function directly (precise targeting)
    or are available as registered passes via {!all_passes} (whole-IR
    application through the command-line tool). *)

open Mir
open Vhls

(* ---- Graph level ---- *)

(** [-legalize-dataflow]: stage assignment with bypass elimination;
    [insert-copy] selects aggressive legalization (Figure 4c). *)
let legalize_dataflow ?insert_copy ctx f = Legalize_dataflow.legalize ?insert_copy ctx f

(** [-split-function]: one sub-function per [min-gran] adjacent stages. *)
let split_function ?min_gran ctx m ~func_name = Split_function.split ?min_gran ctx m ~func_name

(* ---- Loop level ---- *)

(** [-affine-loop-perfectization]. *)
let loop_perfectization ctx f = Loop_perfectization.run_on_func ctx f

(** [-affine-loop-order-opt]; [perm_map] pins the order explicitly. *)
let loop_order_opt ?perm_map ctx f = Loop_order_opt.run_on_func ?perm_map ctx f

(** [-remove-variable-bound]. *)
let remove_variable_bound ctx f = Remove_var_bound.run_on_func ctx f

(** [-affine-loop-tile] on a specific band with per-loop [sizes]. *)
let loop_tile ctx band ~sizes = Loop_tile.tile_band ctx band ~sizes

(** [-affine-loop-unroll]: full unrolling of a loop. *)
let loop_unroll_full ?limit ctx l = Loop_unroll.unroll_full ?limit ctx l

(** [-affine-loop-unroll unroll-factor=u]: partial unrolling. *)
let loop_unroll ctx l ~factor = Loop_unroll.unroll_by ctx l ~factor

(** [-affine-loop-fusion] (the loop [merge] directive). *)
let loop_fusion ctx f = Loop_fusion.run_on_func ctx f

(* ---- Directive level ---- *)

(** [-loop-pipelining target-ii=n] at band depth [depth]. *)
let loop_pipelining ?target_ii ctx ~depth root =
  Loop_pipeline.pipeline_band ctx ?target_ii ~depth root

(** [-func-pipelining target-ii=n]. *)
let func_pipelining ?target_ii ctx f = Func_pipeline.pipeline_func ctx ?target_ii f

(** [-array-partition]; [factors] pins per-array specs. *)
let array_partition ?factors ctx m = Array_partition.run ?factors ctx m

(* ---- QoR estimation (§5.5.1) ---- *)

(** Fast analytical latency/resource estimate of a design. *)
let estimate_qor m ~top = Estimator.estimate m ~top

(** Detailed virtual downstream-tool synthesis report. *)
let synthesize m ~top = Synth.synthesize m ~top

(* ---- Registered passes (Table 2 + conversions) ---- *)

let all_passes =
  [
    ("legalize-dataflow", Legalize_dataflow.pass ());
    ("legalize-dataflow-copy", Legalize_dataflow.pass ~insert_copy:true ());
    ("split-function", Split_function.pass ());
    ("lower-graph", Lower_graph.pass);
    ("affine-loop-perfectization", Loop_perfectization.pass);
    ("affine-loop-order-opt", Loop_order_opt.pass);
    ("remove-variable-bound", Remove_var_bound.pass);
    ("affine-loop-tile", Loop_tile.pass ~tile_size:2);
    ("affine-loop-unroll", Loop_unroll.pass ());
    ("affine-loop-fusion", Loop_fusion.pass);
    ("loop-pipelining", Loop_pipeline.pass ());
    ("func-pipelining", Func_pipeline.pass ());
    ("array-partition", Array_partition.pass ());
    ("simplify-affine-if", Simplify_affine_if.pass);
    ("affine-store-forward", Store_forward.pass);
    ("simplify-memref-access", Simplify_memref.pass);
    ("canonicalize", Canonicalize.pass);
    ("cse", Cse.pass);
    ("raise-scf-to-affine", Frontend.Raise_affine.pass);
    ("lower-affine-to-scf", Lower.affine_to_scf);
    ("lower-scf-to-cf", Lower.scf_to_cf);
  ]

(** The [-multiple-level-dse] pass (§5.5.2): applies the full DSE engine to
    every function of the module under the given platform constraints. *)
let multiple_level_dse ?samples ?iterations ?seed ?jobs
    ?(platform = Platform.xc7z020) () =
  Pass.make "multiple-level-dse" (fun ctx m ->
      List.fold_left
        (fun m f ->
          let top = Ir.func_name f in
          let r = Dse.run ?samples ?iterations ?seed ?jobs ctx m ~top ~platform in
          r.Dse.module_)
        m (Ir.module_funcs m))

let find_pass name = List.assoc_opt name all_passes
