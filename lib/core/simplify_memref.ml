(** The [-simplify-memref-access] pass (§5.4): folds identical memory reads
    (same memref, same access map and operands) within a block when no
    intervening operation may write the memref — reducing memory port
    pressure before scheduling.

    Ops that carry regions ([affine.for], [affine.if], ...) act as barriers
    even when their bodies provably never write the memref: unroll/guard
    specialization can delete one side of a load pair that straddles a
    region op, so coalescing across it on the rolled module would pin the
    surviving load at a different position than cleanup of the materialized
    (unrolled) module chooses. Keeping the pass straight-line makes the
    symbolic and materialized evaluation paths converge structurally. *)

open Mir
open Dialects

let run_on_func _ctx f =
  let subst = ref Ir.Value_map.empty in
  let may_write vid o =
    Walk.exists
      (fun x ->
        Func.is_call x
        || (Memref.is_store x && (Memref.accessed_memref x).Ir.vid = vid))
      o
  in
  let rec rewrite_block (b : Ir.block) =
    let seen : (int * string * int list, Ir.value) Hashtbl.t = Hashtbl.create 16 in
    let bops =
      List.filter_map
        (fun o ->
          let o = rewrite_regions o in
          if o.Ir.name = "affine.load" then begin
            let k =
              ( (Memref.accessed_memref o).Ir.vid,
                Attr.to_string (Ir.attr_exn o "map"),
                List.map (fun (v : Ir.value) -> v.Ir.vid) (Memref.access_indices o) )
            in
            match Hashtbl.find_opt seen k with
            | Some v ->
                subst := Ir.Value_map.add (Ir.result o).Ir.vid v !subst;
                None
            | None ->
                Hashtbl.replace seen k (Ir.result o);
                Some o
          end
          else if o.Ir.regions <> [] then begin
            (* Region ops are barriers (see header comment). *)
            Hashtbl.reset seen;
            Some o
          end
          else begin
            (* Writes invalidate the loads of that memref. *)
            let vids =
              Hashtbl.fold (fun (m, _, _) _ acc -> m :: acc) seen []
              |> List.sort_uniq compare
            in
            List.iter
              (fun vid ->
                if may_write vid o then begin
                  let keys =
                    Hashtbl.fold
                      (fun ((m, _, _) as k) _ acc -> if m = vid then k :: acc else acc)
                      seen []
                  in
                  List.iter (Hashtbl.remove seen) keys
                end)
              vids;
            Some o
          end)
        b.Ir.bops
    in
    { b with Ir.bops = bops }
  and rewrite_regions (o : Ir.op) =
    { o with Ir.regions = List.map (List.map rewrite_block) o.Ir.regions }
  in
  let f = rewrite_regions f in
  if Ir.Value_map.is_empty !subst then f else Walk.substitute_uses !subst f

let pass = Pass.on_funcs "simplify-memref-access" run_on_func
