(** Symbolic unrolling for QoR estimation: expand the intra-tile point loops
    of a pipelined target *analytically*, without ever materializing the
    unrolled bodies on the transform path.

    The DSE's materialized pipeline legalizes a design point by fully
    unrolling everything nested under the pipeline target
    ({!Loop_pipeline.pipeline_band}), then running the full cleanup pipeline
    over the huge module — per-point cost grows with the tile-size product.
    The symbolic path instead runs the cleanup on the small *rolled* module
    (the target merely annotated, {!Loop_pipeline.annotate_band}), takes the
    cleaned innermost body as a template, and directly constructs the ops the
    materialized path would end up with: one template instance per point
    tuple, with the point induction variables folded into the access maps as
    constants (the exact rewrite canonicalization performs when it sees a
    constant map operand). Iteration order matches the materialized clone
    order — lexicographically ascending point tuples, innermost digit
    fastest — so the later store-forward/CSE replay makes the same
    (order-dependent) choices on both paths.

    Supported shape: a perfect nest of constant-bound point loops whose
    innermost body consists of affine loads/stores and pure single-result
    arith/math ops, with point ivs used only as access-map indices. Anything
    else raises {!Unsupported} and the DSE falls back to the materialized
    path for that point (counted in the run statistics; the differential
    oracle asserts the two paths agree wherever the symbolic one applies). *)

open Mir
open Dialects
open Analysis

module A = Affine

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* ---- Template extraction -------------------------------------------------- *)

(* Split a pipelined target's body into the perfect chain of intra-tile point
   loops (outermost first) and the innermost template ops. *)
let rec peel_point_nest (ops : Ir.op list) : Ir.op list * Ir.op list =
  let body = List.filter (fun o -> o.Ir.name <> "affine.yield") ops in
  match List.partition Affine_d.is_for body with
  | [], template -> ([], template)
  | [ l ], [] ->
      let ls, template = peel_point_nest (Ir.body_ops l) in
      (l :: ls, template)
  | _ :: _, _ -> unsupported "imperfect intra-tile point nest"

(* ---- Per-op expansion plans ----------------------------------------------- *)

(* How each access-map dimension behaves under expansion: kept (an outer iv
   or other loop-invariant index, renumbered consecutively) or folded (a
   point iv replaced by the iteration constant). *)
type access_plan = {
  a_map : A.Map.t;
  dim_plan : [ `Keep of int | `Point of int ] array;
  kept : Ir.value list;  (** kept index operands, in original order *)
  num_kept : int;
}

type op_plan =
  | Load of access_plan
  | Store of access_plan
  | Pure
  | If of if_plan

and if_plan = {
  i_set : A.Set_.t;
  i_dim_plan : [ `Keep of int | `Point of int ] array;
  i_kept : Ir.value list;
  i_num_kept : int;
  i_then : (Ir.op * op_plan) list;
  i_else : (Ir.op * op_plan) list;
}

let plan_dims pts_tbl (vs : Ir.value list) =
  let kept = ref [] and num_kept = ref 0 in
  let dim_plan =
    Array.of_list
      (List.map
         (fun (v : Ir.value) ->
           match Hashtbl.find_opt pts_tbl v.Ir.vid with
           | Some pi -> `Point pi
           | None ->
               let j = !num_kept in
               incr num_kept;
               kept := v :: !kept;
               `Keep j)
         vs)
  in
  (dim_plan, List.rev !kept, !num_kept)

let plan_access pts_tbl (o : Ir.op) : access_plan =
  let a_map = Affine_d.access_map o in
  let dim_plan, kept, num_kept = plan_dims pts_tbl (Memref.access_indices o) in
  if Array.length dim_plan <> A.Map.num_dims a_map then
    unsupported "access map/index arity mismatch on %s" o.Ir.name;
  { a_map; dim_plan; kept; num_kept }

let rec plan_op pts_tbl (o : Ir.op) : op_plan =
  let uses_point (v : Ir.value) = Hashtbl.mem pts_tbl v.Ir.vid in
  match o.Ir.name with
  | "affine.if" ->
      (* Point-dependent guards (e.g. perfectization's first-iteration store
         guard): the set is folded per point tuple; the post-expansion
         cleanup replay resolves the now-decidable branches exactly as
         [Simplify_affine_if] does on the materialized clones. *)
      let set = Affine_d.if_set o in
      let i_dim_plan, i_kept, i_num_kept = plan_dims pts_tbl o.Ir.operands in
      if Array.length i_dim_plan <> A.Set_.num_dims set then
        unsupported "if set/operand arity mismatch";
      let plan_branch i =
        List.map
          (fun x -> (x, plan_op pts_tbl x))
          (List.concat_map
             (fun (b : Ir.block) ->
               List.filter (fun x -> x.Ir.name <> "affine.yield") b.Ir.bops)
             (Ir.region o i))
      in
      If
        {
          i_set = set;
          i_dim_plan;
          i_kept;
          i_num_kept;
          i_then = plan_branch 0;
          i_else = plan_branch 1;
        }
  | _ when o.Ir.regions <> [] ->
      unsupported "region op %s in template" o.Ir.name
  | "affine.load" -> Load (plan_access pts_tbl o)
  | "affine.store" ->
      if uses_point (Memref.stored_value o) then
        unsupported "point iv stored as a value";
      Store (plan_access pts_tbl o)
  | "arith.constant" -> Pure
  | name
    when Arith.is_pure o && name <> "affine.apply"
         && List.length o.Ir.results = 1 ->
      if List.exists uses_point o.Ir.operands then
        unsupported "point iv consumed by %s" name;
      Pure
  | name -> unsupported "op %s in template" name

(* ---- Instantiation -------------------------------------------------------- *)

(* Fold one point assignment into an access: point dims become constants,
   kept dims are renumbered consecutively, and dims a constant fold made
   unreferenced are pruned — byte-for-byte the map canonicalization
   (fold_map_operands + prune_unused_dims) performs on a materialized clone
   whose iv operand became an [arith.constant]. *)
let fold_access plan ~vals ~sub =
  let reps =
    Array.to_list
      (Array.map
         (function
           | `Keep j -> A.Expr.dim j
           | `Point pi -> A.Expr.const vals.(pi))
         plan.dim_plan)
  in
  let map = A.Map.replace_dims ~num_dims:plan.num_kept reps plan.a_map in
  let idxs = List.map sub plan.kept in
  Canonicalize.prune_unused_dims map idxs

(* Fold one point assignment into an if's integer set, the same way but over
   the packed constraint-expression map (mirroring fold_set_operands_fix).
   Returns the *pre-substitution* kept operands so the caller can look their
   ranges up in the rolled module's range environment before substituting
   (pruning decisions are position-based, so they are substitution-
   independent). *)
let fold_set plan ~vals =
  let reps =
    Array.to_list
      (Array.map
         (function
           | `Keep j -> A.Expr.dim j
           | `Point pi -> A.Expr.const vals.(pi))
         plan.i_dim_plan)
  in
  let exprs =
    List.map (fun c -> c.A.Set_.expr) (A.Set_.constraints plan.i_set)
  in
  let map = A.Map.make ~num_dims:(A.Set_.num_dims plan.i_set) ~num_syms:0 exprs in
  let map = A.Map.replace_dims ~num_dims:plan.i_num_kept reps map in
  let map, operands = Canonicalize.prune_unused_dims map plan.i_kept in
  let constraints =
    List.map2
      (fun c e -> { c with A.Set_.expr = e })
      (A.Set_.constraints plan.i_set) (A.Map.results map)
  in
  (A.Set_.make ~num_dims:(A.Map.num_dims map) ~num_syms:0 constraints, operands)

(* One template instance at the point assignment [vals]. Guards are resolved
   here, fused into instantiation: once the point constants are folded into
   an [affine.if]'s set, most guards (perfectization's first-iteration
   stores, domain guards) become decidable, and the surviving branch is
   spliced directly instead of materializing the dead one and replaying
   [Simplify_affine_if] over the expanded module. The decision procedure is
   exactly {!Simplify_affine_if.simplify_if}'s, with operand ranges served
   from [ranges] (the rolled function's {!Loop_utils.range_env}, queried on
   pre-substitution operands — the rolled module is canonicalized, so kept
   operands are never constants and the environment of an instance operand
   is that of its template original). Resolution is post-order (branch
   bodies instantiate before the enclosing guard is decided), matching the
   pass's {!Walk.expand_in_op} replay order. *)
let instantiate ctx ~ranges (template : (Ir.op * op_plan) list) ~vals :
    Ir.op list =
  let subst = ref Ir.Value_map.empty in
  let sub (v : Ir.value) =
    match Ir.Value_map.find_opt v.Ir.vid !subst with Some v' -> v' | None -> v
  in
  let rec inst_ops plans =
    List.concat_map
      (fun ((o : Ir.op), plan) ->
        match plan with
        | Load p ->
            let map, idxs = fold_access p ~vals ~sub in
            let mem = sub (Memref.accessed_memref o) in
            let r = Ir.Ctx.fresh ctx (Ir.result o).Ir.vty in
            subst := Ir.Value_map.add (Ir.result o).Ir.vid r !subst;
            [
              Ir.mk "affine.load"
                ~attrs:[ ("map", Attr.Map map) ]
                ~operands:(mem :: idxs) ~results:[ r ];
            ]
        | Store p ->
            let map, idxs = fold_access p ~vals ~sub in
            let v = sub (Memref.stored_value o) in
            let mem = sub (Memref.accessed_memref o) in
            [
              Ir.mk "affine.store"
                ~attrs:[ ("map", Attr.Map map) ]
                ~operands:(v :: mem :: idxs) ~results:[];
            ]
        | Pure ->
            let operands = List.map sub o.Ir.operands in
            let results =
              List.map
                (fun (r : Ir.value) ->
                  let r' = Ir.Ctx.fresh ctx r.Ir.vty in
                  subst := Ir.Value_map.add r.Ir.vid r' !subst;
                  r')
                o.Ir.results
            in
            [ { o with Ir.operands; Ir.results = results } ]
        | If p -> (
            let set, pre_kept = fold_set p ~vals in
            let keep set' =
              let then_ops = inst_ops p.i_then @ [ Affine_d.yield ] in
              let else_ops = inst_ops p.i_else @ [ Affine_d.yield ] in
              [
                Ir.set_attr
                  {
                    o with
                    Ir.operands = List.map sub pre_kept;
                    Ir.regions =
                      [
                        [ { Ir.bargs = []; Ir.bops = then_ops } ];
                        [ { Ir.bargs = []; Ir.bops = else_ops } ];
                      ];
                  }
                  "set" (Attr.Set set');
              ]
            in
            match A.Set_.trivial (A.Set_.simplify set) with
            | Some true -> inst_ops p.i_then
            | Some false -> inst_ops p.i_else
            | None ->
                let rngs =
                  List.map
                    (fun (v : Ir.value) -> Hashtbl.find_opt ranges v.Ir.vid)
                    pre_kept
                in
                if List.for_all Option.is_some rngs then
                  match
                    A.Set_.simplify_with_ranges set
                      ~ranges:(Array.of_list (List.map Option.get rngs))
                  with
                  | None -> inst_ops p.i_else
                  | Some s when A.Set_.constraints s = [] -> inst_ops p.i_then
                  | Some s -> keep s
                else keep set))
      plans
  in
  inst_ops template

(* ---- Target expansion ----------------------------------------------------- *)

(* Expand the point loops inside one pipelined target. Returns [None] when
   there is nothing to expand (no loop anywhere inside the target). [ranges]
   is the enclosing function's rolled-module range environment, used to
   resolve instance guards. *)
let expand_target ctx ~ranges (target : Ir.op) : Ir.op option =
  let point_loops, template = peel_point_nest (Ir.body_ops target) in
  if point_loops = [] then begin
    (* No point nest — but a loop hiding under a region op (e.g. an
       affine.if) would still be unrolled by the materialized path. *)
    if List.exists (Walk.exists Affine_d.is_for) template then
      unsupported "loop nested under a region op in target";
    None
  end
  else begin
    let pts_tbl = Hashtbl.create 8 in
    List.iteri
      (fun i l ->
        Hashtbl.replace pts_tbl (Affine_d.induction_var l).Ir.vid i)
      point_loops;
    let plans =
      List.map (fun o -> (o, plan_op pts_tbl o)) template
    in
    let n = List.length point_loops in
    let lbs = Array.make n 0
    and steps = Array.make n 1
    and trips = Array.make n 0 in
    List.iteri
      (fun i l ->
        match (Affine_d.const_bounds l, Loop_unroll.const_trip l) with
        | Some (lb, _), Some trip ->
            lbs.(i) <- lb;
            steps.(i) <- (Affine_d.bounds l).Affine_d.step;
            trips.(i) <- trip
        | _ -> unsupported "variable-bound point loop")
      point_loops;
    let total = Array.fold_left ( * ) 1 trips in
    if total = 0 then Some (Ir.with_body target [ Affine_d.yield ])
    else begin
      (* Enumerate point tuples lexicographically ascending, innermost digit
         fastest — the materialized innermost-first unroll's clone order. *)
      let ks = Array.make n 0 in
      let vals = Array.make n 0 in
      let chunks = ref [] in
      let continue_ = ref true in
      while !continue_ do
        for i = 0 to n - 1 do
          vals.(i) <- lbs.(i) + (ks.(i) * steps.(i))
        done;
        chunks := instantiate ctx ~ranges plans ~vals :: !chunks;
        let rec inc i =
          if i < 0 then continue_ := false
          else begin
            ks.(i) <- ks.(i) + 1;
            if ks.(i) >= trips.(i) then begin
              ks.(i) <- 0;
              inc (i - 1)
            end
          end
        in
        inc (n - 1)
      done;
      Some
        (Ir.with_body target
           (List.concat (List.rev !chunks) @ [ Affine_d.yield ]))
    end
  end

(** Expand the intra-tile point loops of every pipelined loop in [m].
    Returns [(m', expanded)]; when [expanded] is false no target had point
    loops and [m] is returned physically unchanged (callers then skip the
    post-expansion cleanup replay — the module is already in its final
    materialized-equivalent form). Raises {!Unsupported} when any target
    falls outside the supported shape. *)
let expand ctx (m : Ir.op) : Ir.op * bool =
  let expanded = ref false in
  let is_target o = Affine_d.is_for o && Hlscpp.is_pipelined o in
  let expand_in_func f =
    if not (Walk.exists is_target f) then f
    else
      (* Guard resolution keys off the rolled function's range environment
         (outer induction variables and constants keep their identities
         across expansion, and point ivs are folded away before lookup). *)
      let ranges = Loop_utils.range_env f in
      Walk.map_op
        (fun o ->
          if is_target o then
            match expand_target ctx ~ranges o with
            | Some o' ->
                expanded := true;
                o'
            | None -> o
          else o)
        f
  in
  let m' =
    {
      m with
      Ir.regions =
        List.map
          (List.map (fun (b : Ir.block) ->
               {
                 b with
                 Ir.bops =
                   List.map
                     (fun o -> if Func.is_func o then expand_in_func o else o)
                     b.Ir.bops;
               }))
          m.Ir.regions;
    }
  in
  ((if !expanded then m' else m), !expanded)
