(** A small thread-safe memoization table with hit/miss accounting, shared by
    the DSE engine's two caches: the (lp, rvb) preprocessing cache (4 combos,
    previously recomputed for every design point) and the per-point evaluation
    cache. Keys use structural equality/hashing.

    Safe to use from multiple domains: lookups and inserts are serialized by a
    mutex, but {!find_or_add} runs the producer *outside* the lock so slow
    computations (a full transform pipeline) don't stall other workers. Two
    domains racing on the same absent key may both compute; the first insert
    wins and both callers observe the winning value, so as long as producers
    are deterministic functions of the key the cache never exposes divergent
    values. *)

type ('k, 'v) t = {
  tbl : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 64) () =
  { tbl = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(** Counted lookup: bumps the hit or miss counter. *)
let find_opt c k =
  with_lock c (fun () ->
      match Hashtbl.find_opt c.tbl k with
      | Some v ->
          c.hits <- c.hits + 1;
          Some v
      | None ->
          c.misses <- c.misses + 1;
          None)

(** Uncounted membership test (for filtering candidates without skewing the
    hit rate). *)
let mem c k = with_lock c (fun () -> Hashtbl.mem c.tbl k)

(** Insert-if-absent; an existing binding is kept (first writer wins). *)
let add c k v =
  with_lock c (fun () -> if not (Hashtbl.mem c.tbl k) then Hashtbl.add c.tbl k v)

(** [find_or_add c k produce] returns the cached value for [k], computing and
    inserting it with [produce] on a miss. [produce] runs outside the lock. *)
let find_or_add c k produce =
  match find_opt c k with
  | Some v -> v
  | None -> (
      let v = produce () in
      with_lock c (fun () ->
          match Hashtbl.find_opt c.tbl k with
          | Some existing -> existing (* lost the race: agree on the winner *)
          | None ->
              Hashtbl.add c.tbl k v;
              v))

let hits c = with_lock c (fun () -> c.hits)
let misses c = with_lock c (fun () -> c.misses)
let length c = with_lock c (fun () -> Hashtbl.length c.tbl)

(** Snapshot of the current bindings, e.g. for persistence. Taken under the
    lock; the order is unspecified (callers that need a stable order sort by
    key). *)
let bindings c =
  with_lock c (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.tbl [])

let clear c =
  with_lock c (fun () ->
      Hashtbl.reset c.tbl;
      c.hits <- 0;
      c.misses <- 0)
