(** The [-split-function] pass (§5.1.2): after dataflow legalization, cluster
    the procedures of each dataflow stage into a new sub-function and replace
    them with a function call; the original function becomes the dataflow
    top. The [min-gran] parameter merges at least that many adjacent stages
    into one sub-function, exposing the throughput–area tradeoff of Figure
    4(d). Weight nodes move into the (unique) stage that consumes them. *)

open Mir
open Dialects

(** Split a legalized graph function into a dataflow top + per-stage
    sub-functions, with [min_gran] adjacent stages per sub-function.
    Returns the rewritten module. *)
let split ?(min_gran = 1) ctx m ~func_name : Ir.op =
  let f = Ir.find_func_exn m func_name in
  let body = Func.func_body f in
  let n_stages = Legalize_dataflow.num_stages f in
  if n_stages <= 1 then m
  else begin
    let min_gran = max 1 min_gran in
    let group_of_stage s = s / min_gran in
    let n_groups = ((n_stages - 1) / min_gran) + 1 in
    (* Assign each op to a group: procs by stage; weights to the group of
       their unique consumer; other ops (returns) stay in the top. *)
    let arr = Array.of_list body in
    let group = Array.make (Array.length arr) (-1) in
    Array.iteri
      (fun i o ->
        match Legalize_dataflow.stage_of o with
        | Some s -> group.(i) <- group_of_stage s
        | None -> ())
      arr;
    (* weights: group of first consumer *)
    Array.iteri
      (fun i (o : Ir.op) ->
        if Graph.is_weight o then begin
          let r = Ir.result o in
          let consumer = ref (-1) in
          Array.iteri
            (fun j (c : Ir.op) ->
              if
                !consumer = -1 && group.(j) >= 0
                && List.exists (fun (v : Ir.value) -> v.Ir.vid = r.Ir.vid) c.Ir.operands
              then consumer := group.(j))
            arr;
          group.(i) <- !consumer
        end)
      arr;
    (* For each group: member ops in original order; inputs = free values
       defined outside the group; outputs = results used outside. *)
    let returned_ops, _ = (List.filter Func.is_return body, ()) in
    let sub_funcs = ref [] in
    let top_calls = ref [] in
    let subst = ref Ir.Value_map.empty in
    for g = 0 to n_groups - 1 do
      let members =
        List.filteri (fun i _ -> group.(i) = g) (Array.to_list arr)
      in
      if members <> [] then begin
        let defined =
          List.fold_left
            (fun s (o : Ir.op) ->
              List.fold_left
                (fun s (v : Ir.value) -> Ir.Value_map.add v.Ir.vid v s)
                s o.Ir.results)
            Ir.Value_map.empty members
        in
        let inputs =
          List.fold_left
            (fun acc (o : Ir.op) ->
              List.fold_left
                (fun acc (v : Ir.value) ->
                  if
                    Ir.Value_map.mem v.Ir.vid defined
                    || List.exists (fun (x : Ir.value) -> x.Ir.vid = v.Ir.vid) acc
                  then acc
                  else acc @ [ v ])
                acc o.Ir.operands)
            [] members
        in
        let outputs =
          List.concat_map
            (fun (o : Ir.op) ->
              List.filter
                (fun (r : Ir.value) ->
                  let used_outside =
                    List.exists
                      (fun (c : Ir.op) ->
                        (not (List.memq c members))
                        && List.exists
                             (fun (v : Ir.value) -> v.Ir.vid = r.Ir.vid)
                             c.Ir.operands)
                      body
                    || List.exists
                         (fun (ret : Ir.op) ->
                           List.exists
                             (fun (v : Ir.value) -> v.Ir.vid = r.Ir.vid)
                             ret.Ir.operands)
                         returned_ops
                  in
                  used_outside)
                o.Ir.results)
            members
        in
        let sub_name = Printf.sprintf "%s_stage%d" func_name g in
        (* Clone members into the sub-function with inputs as block args. *)
        let args = List.map (fun (v : Ir.value) -> Ir.Ctx.fresh ctx v.Ir.vty) inputs in
        let seed =
          List.fold_left2
            (fun s (v : Ir.value) arg -> Ir.Value_map.add v.Ir.vid arg s)
            Ir.Value_map.empty inputs args
        in
        let cloned, final_subst = Clone.ops ~subst:seed ctx members in
        let cloned_outputs =
          List.map
            (fun (r : Ir.value) -> Ir.Value_map.find r.Ir.vid final_subst)
            outputs
        in
        let sub =
          Func.func_raw ~name:sub_name ~args
            ~outputs:(List.map (fun (v : Ir.value) -> v.Ir.vty) outputs)
            (cloned @ [ Func.return_ cloned_outputs ])
        in
        sub_funcs := sub :: !sub_funcs;
        let call, results =
          Func.call ctx ~callee:sub_name
            ~result_tys:(List.map (fun (v : Ir.value) -> v.Ir.vty) outputs)
            inputs
        in
        List.iter2
          (fun (r : Ir.value) nv -> subst := Ir.Value_map.add r.Ir.vid nv !subst)
          outputs results;
        top_calls := call :: !top_calls
      end
    done;
    (* New top body: calls in group order + the return, with outputs
       substituted. Call operands that are outputs of earlier groups must be
       substituted too. *)
    let calls = List.rev !top_calls in
    let calls =
      List.map
        (fun (c : Ir.op) ->
          {
            c with
            Ir.operands =
              List.map
                (fun (v : Ir.value) ->
                  match Ir.Value_map.find_opt v.Ir.vid !subst with
                  | Some nv -> nv
                  | None -> v)
                c.Ir.operands;
          })
        calls
    in
    let rets =
      List.map
        (fun (r : Ir.op) ->
          {
            r with
            Ir.operands =
              List.map
                (fun (v : Ir.value) ->
                  match Ir.Value_map.find_opt v.Ir.vid !subst with
                  | Some nv -> nv
                  | None -> v)
                r.Ir.operands;
          })
        returned_ops
    in
    let top = Func.with_func_body f (calls @ rets) in
    let top = Func_pipeline.set_dataflow top in
    let m = Ir.replace_func m top in
    List.fold_left Ir.replace_func m (List.rev !sub_funcs)
  end

let pass ?min_gran ?(only : string option) () =
  Pass.make "split-function" (fun ctx m ->
      let names =
        match only with
        | Some n -> [ n ]
        | None -> List.map Ir.func_name (Ir.module_funcs m)
      in
      List.fold_left (fun m func_name -> split ?min_gran ctx m ~func_name) m names)
