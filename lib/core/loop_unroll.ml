(** The [-affine-loop-unroll] pass (§4.3.2, §5.3.1): loop unrolling is
    performed directly in the IR (semantically equivalent to the unroll
    directive). Full unrolling replaces the loop by one body clone per
    iteration with the induction variable substituted by a constant; partial
    unrolling widens the step and replicates the body with
    [affine.apply iv + m*step] offsets (composed into access maps by
    canonicalization). *)

open Mir
open Dialects

module A = Affine

(** Trip count of a constant-bound loop ([None] for variable bounds). The
    single definition shared by materialized unrolling, its symbolic twin
    ({!Unroll_model}), and pipeline legalization checks. *)
let const_trip (o : Ir.op) : int option =
  match Affine_d.const_bounds o with
  | Some (lb, ub) ->
      let step = (Affine_d.bounds o).Affine_d.step in
      Some (max 0 (A.Expr.ceil_div (ub - lb) step))
  | None -> None

(** Would {!unroll_full} succeed on this loop? (Constant bounds, trip within
    [limit].) Used to predict materialized-unroll failure without running
    it. *)
let unrollable ?(limit = 4096) (o : Ir.op) =
  match const_trip o with Some trip -> trip <= limit | None -> false

(** Fully unroll a constant-bound loop; returns the replacement ops, or
    [None] if bounds are unknown or the trip count exceeds [limit]. *)
let unroll_full ?(limit = 4096) ctx (o : Ir.op) : Ir.op list option =
  if not (Affine_d.is_for o) then None
  else
    match const_trip o with
    | Some trip ->
        let lb, _ = Option.get (Affine_d.const_bounds o) in
        let step = (Affine_d.bounds o).Affine_d.step in
        if trip > limit then None
        else begin
          let iv = Affine_d.induction_var o in
          let body =
            List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops o)
          in
          let chunks = ref [] in
          for k = trip - 1 downto 0 do
            let cst, cv = Arith.constant_i ctx (lb + (k * step)) in
            let subst = Ir.Value_map.singleton iv.Ir.vid cv in
            let clones, _ = Clone.ops ~subst ctx body in
            chunks := (cst :: clones) :: !chunks
          done;
          Some (List.concat !chunks)
        end
    | None -> None

(** Partially unroll by [factor] (must divide the trip count); the body is
    replicated [factor] times with the iv offset by [m*step] via
    [affine.apply]. Returns [None] when not applicable. *)
let unroll_by ctx (o : Ir.op) ~factor : Ir.op option =
  if factor <= 1 || not (Affine_d.is_for o) then None
  else
    match const_trip o with
    | Some trip ->
        let b = Affine_d.bounds o in
        let step = b.Affine_d.step in
        if trip mod factor <> 0 then None
        else begin
          let iv = Affine_d.induction_var o in
          let body =
            List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops o)
          in
          let new_body = ref [] in
          for m = factor - 1 downto 0 do
            if m = 0 then begin
              let clones, _ = Clone.ops ctx body in
              new_body := clones @ !new_body
            end
            else begin
              let off_op, off =
                Affine_d.apply ctx
                  ~map:
                    (A.Map.of_expr ~num_dims:1
                       (A.Expr.add (A.Expr.dim 0) (A.Expr.const (m * step))))
                  [ iv ]
              in
              let subst = Ir.Value_map.singleton iv.Ir.vid off in
              let clones, _ = Clone.ops ~subst ctx body in
              new_body := (off_op :: clones) @ !new_body
            end
          done;
          let o' = Ir.with_body o (!new_body @ [ Affine_d.yield ]) in
          Some
            (Affine_d.with_bounds o' { b with Affine_d.step = step * factor })
        end
    | None -> None

(** Fully unroll every affine loop nested (strictly) inside [o] — the
    legalization step of loop pipelining (§5.3.1). Innermost loops are
    unrolled first. Returns [None] if some nested loop cannot be unrolled. *)
let unroll_nested ?(limit = 4096) ctx (o : Ir.op) : Ir.op option =
  let exception Failed in
  let rec go_inside (o : Ir.op) : Ir.op =
    (* Rebuild regions, replacing nested loops by their unrolled bodies. *)
    {
      o with
      Ir.regions =
        List.map
          (List.map (fun b -> { b with Ir.bops = List.concat_map expand b.Ir.bops }))
          o.Ir.regions;
    }
  and expand (x : Ir.op) : Ir.op list =
    let x = go_inside x in
    if Affine_d.is_for x then
      match unroll_full ~limit ctx x with
      | Some ops -> ops
      | None -> raise Failed
    else [ x ]
  in
  try Some (go_inside o) with Failed -> None

(** The standalone pass: unroll innermost loops by [factor] (or fully when
    [factor] is [None]). *)
let run_on_func ?factor ctx f =
  let is_innermost o =
    Affine_d.is_for o && not (Walk.exists (fun x -> x != o && Affine_d.is_for x) o)
  in
  Walk.expand_in_op
    (fun o ->
      if is_innermost o then
        match factor with
        | None -> ( match unroll_full ctx o with Some ops -> ops | None -> [ o ])
        | Some u -> (
            match unroll_by ctx o ~factor:u with Some o' -> [ o' ] | None -> [ o ])
      else [ o ])
    f

let pass ?factor () =
  Pass.on_funcs "affine-loop-unroll" (fun ctx f -> run_on_func ?factor ctx f)
