(** The [-cse] pass: common-subexpression elimination of pure scalar ops
    within each block (MLIR built-in behaviour, Table 2). After loop unrolling
    this deduplicates the replicated address arithmetic and constants. *)

open Mir
open Dialects

(* Structural key of a pure op, with operands replaced by their canonical
   representative ids. Result types are part of the key: two constants with
   equal value attrs but different types (e.g. [4 : index] after unrolling vs
   [4.0 : f32]) are distinct values. Attr keys tag the constructor, because
   [Attr.to_string] prints [Int 4] and [Float 4.] identically as ["4"]. *)
let attr_key (k, a) =
  let s =
    match a with
    | Attr.Int i -> "i:" ^ string_of_int i
    | Attr.Float f -> "f:" ^ Fmt.str "%h" f
    | a -> Attr.to_string a
  in
  (k, s)

let key canon (o : Ir.op) =
  let operand_ids =
    List.map
      (fun (v : Ir.value) ->
        match Hashtbl.find_opt canon v.Ir.vid with
        | Some (v' : Ir.value) -> v'.Ir.vid
        | None -> v.Ir.vid)
      o.Ir.operands
  in
  ( o.Ir.name,
    operand_ids,
    List.map attr_key o.Ir.attrs,
    List.map (fun (v : Ir.value) -> v.Ir.vty) o.Ir.results )

let rec cse_block canon (b : Ir.block) : Ir.block =
  let seen = Hashtbl.create 32 in
  let bops =
    List.filter_map
      (fun o ->
        let o = cse_regions canon o in
        if Arith.is_pure o && List.length o.Ir.results = 1 then begin
          let k = key canon o in
          match Hashtbl.find_opt seen k with
          | Some (prev : Ir.value) ->
              Hashtbl.replace canon (Ir.result o).Ir.vid prev;
              None
          | None ->
              Hashtbl.replace seen k (Ir.result o);
              Some o
        end
        else Some o)
      b.Ir.bops
  in
  { b with Ir.bops = bops }

and cse_regions canon (o : Ir.op) : Ir.op =
  {
    o with
    Ir.regions = List.map (List.map (cse_block canon)) o.Ir.regions;
  }

let run_on_func _ctx f =
  let canon : (int, Ir.value) Hashtbl.t = Hashtbl.create 64 in
  let f = cse_regions canon f in
  (* Rewrite uses of eliminated values to their representatives. *)
  let subst =
    Hashtbl.fold (fun vid v acc -> Ir.Value_map.add vid v acc) canon Ir.Value_map.empty
  in
  if Ir.Value_map.is_empty subst then f else Walk.substitute_uses subst f

let pass = Pass.on_funcs "cse" run_on_func
