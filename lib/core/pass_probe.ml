(** Pass applicability probing: which registered passes ({!Transform_lib})
    can meaningfully run on a given module, and which are eligible for
    differential semantics testing.

    The fuzzing subsystem ([lib/fuzz]) uses this to draw random-but-valid
    pass pipelines: a pipeline is valid when every stage is (a) registered,
    (b) semantics-preserving (lowering between dialect levels is fine;
    scheduling-only or graph-restructuring passes that change the calling
    convention are not differential-testable against the interpreter), and
    (c) applicable to the IR the previous stages produce. DSE-style tools can
    use the same probes to prune no-op points. *)

open Mir
open Dialects

(** Dialect level a pass operates on (Table 2's three levels; [Any] for the
    generic cleanups). *)
type level = Graph | Loop | Directive | Any

type info = {
  level : level;
  preserves_semantics : bool;
      (** Output must interpret identically to the input on all inputs. *)
  interpretable_result : bool;
      (** Output stays within {!Interp}'s dialect coverage. *)
}

(** Static classification of every registered pass name; [None] for unknown
    names. *)
let info = function
  | "legalize-dataflow" | "legalize-dataflow-copy" | "split-function"
  | "lower-graph" ->
      (* Graph-level restructuring: changes function boundaries/signatures,
         so before/after modules are not run-for-run comparable. *)
      Some { level = Graph; preserves_semantics = false; interpretable_result = true }
  | "affine-loop-perfectization" | "affine-loop-order-opt"
  | "remove-variable-bound" | "affine-loop-tile" | "affine-loop-unroll"
  | "affine-loop-fusion" ->
      Some { level = Loop; preserves_semantics = true; interpretable_result = true }
  | "loop-pipelining" | "func-pipelining" | "array-partition" ->
      (* Directive attachment only: the computation is untouched. *)
      Some { level = Directive; preserves_semantics = true; interpretable_result = true }
  | "simplify-affine-if" | "affine-store-forward" | "simplify-memref-access"
  | "canonicalize" | "cse" ->
      Some { level = Any; preserves_semantics = true; interpretable_result = true }
  | "raise-scf-to-affine" | "lower-affine-to-scf" ->
      Some { level = Loop; preserves_semantics = true; interpretable_result = true }
  | "lower-scf-to-cf" ->
      (* Semantics-preserving, but the cf dialect is outside the reference
         interpreter's coverage. *)
      Some { level = Loop; preserves_semantics = true; interpretable_result = false }
  | _ -> None

(* ---- Structural probes ---------------------------------------------------- *)

let has_op_pred p m = Walk.exists p m
let has_op_named name m = has_op_pred (fun o -> o.Ir.name = name) m
let has_prefix prefix m =
  has_op_pred
    (fun o ->
      String.length o.Ir.name >= String.length prefix
      && String.sub o.Ir.name 0 (String.length prefix) = prefix)
    m

let top_level_bands f =
  List.filter_map
    (fun o -> if Affine_d.is_for o then Some (Affine_d.band o) else None)
    (Func.func_body f)

let exists_band p m =
  List.exists (fun f -> List.exists p (top_level_bands f)) (Ir.module_funcs m)

let has_perfect_const_band m =
  exists_band
    (fun b -> Affine_d.band_is_perfect b && List.for_all Affine_d.has_const_bounds b)
    m

let has_const_bound_loop m =
  has_op_pred (fun o -> Affine_d.is_for o && Affine_d.has_const_bounds o) m

let has_variable_bound_loop m =
  has_op_pred (fun o -> Affine_d.is_for o && not (Affine_d.has_const_bounds o)) m

let has_imperfect_band m = exists_band (fun b -> not (Affine_d.band_is_perfect b)) m

let has_memref m =
  has_op_pred
    (fun o ->
      List.exists (fun (v : Ir.value) -> Ty.is_memref v.Ir.vty) (o.Ir.operands @ o.Ir.results))
    m

(** Would running [name] on [m] have anything to work on? Conservative in the
    permissive direction for the generic cleanups (they are always safe to
    run); precise for the structural passes. Unknown names are never
    applicable. *)
let applicable m name =
  match info name with
  | None -> false
  | Some _ -> (
      match name with
      | "legalize-dataflow" | "legalize-dataflow-copy" | "split-function"
      | "lower-graph" -> has_prefix "graph." m
      | "affine-loop-perfectization" -> has_imperfect_band m
      | "affine-loop-order-opt" -> has_perfect_const_band m
      | "remove-variable-bound" -> has_variable_bound_loop m
      | "affine-loop-tile" -> has_perfect_const_band m
      | "affine-loop-unroll" -> has_const_bound_loop m
      | "affine-loop-fusion" | "loop-pipelining" -> has_op_named "affine.for" m
      | "func-pipelining" -> has_op_named "func" m
      | "array-partition" -> has_memref m
      | "simplify-affine-if" -> has_op_named "affine.if" m
      | "affine-store-forward" | "simplify-memref-access" ->
          has_op_pred (fun o -> Memref.is_access o) m
      | "raise-scf-to-affine" -> has_op_named "scf.for" m
      | "lower-affine-to-scf" -> has_prefix "affine." m
      | "lower-scf-to-cf" -> has_prefix "scf." m || has_prefix "affine." m
      | _ -> true)

(** Registered pass names eligible for differential fuzzing against [m]:
    semantics-preserving, interpreter-coverable output, and applicable. The
    order is the (stable) registration order of {!Transform_lib.all_passes},
    so pipeline draws are deterministic. *)
let fuzz_pool m =
  List.filter
    (fun name ->
      match info name with
      | Some i -> i.preserves_semantics && i.interpretable_result && applicable m name
      | None -> false)
    (List.map fst Transform_lib.all_passes)
