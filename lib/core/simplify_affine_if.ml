(** The [-simplify-affine-if] pass (§5.4): eliminate dead branches of
    [affine.if] operations by deciding always-true / always-false conditions
    with affine (interval) analysis over the operand ranges. Crucial after
    full unrolling: the first/last-iteration guards inserted by loop
    perfectization and the domain guards from remove-variable-bound fold
    into straight-line code. *)

open Mir
open Dialects
open Analysis

module A = Affine

let simplify_if ~scope (o : Ir.op) : Ir.op list option =
  if not (Affine_d.is_if o) then None
  else
    let set = Affine_d.if_set o in
    let ranges =
      List.map (fun v -> Loop_utils.range_of_value scope v) o.Ir.operands
    in
    let take region =
      Some
        (List.concat_map
           (fun (b : Ir.block) ->
             List.filter (fun x -> x.Ir.name <> "affine.yield") b.Ir.bops)
           region)
    in
    match A.Set_.trivial (A.Set_.simplify set) with
    | Some true -> take (Ir.region o 0)
    | Some false -> take (Ir.region o 1)
    | None ->
        if List.for_all Option.is_some ranges then
          let ranges = Array.of_list (List.map Option.get ranges) in
          match A.Set_.simplify_with_ranges set ~ranges with
          | None -> take (Ir.region o 1)
          | Some s when A.Set_.constraints s = [] -> take (Ir.region o 0)
          | Some s -> Some [ Ir.set_attr o "set" (Attr.Set s) ]
        else None

let run_on_func _ctx f =
  Walk.expand_in_op
    (fun o -> match simplify_if ~scope:f o with Some ops -> ops | None -> [ o ])
    f

let pass = Pass.on_funcs "simplify-affine-if" run_on_func
