(** Lowering of the graph-level IR to affine loop nests over memrefs
    ("bufferization" + loop generation). Each tensor becomes a memref (the
    batch dimension, always 1 for inference, is dropped); each graph op
    becomes a loop nest; weights become on-chip int8 memrefs initialized at
    configuration time ([init_seed] attribute), and compute is quantized
    int8 x int8 with int8-requantized activation buffers (one DSP per MAC,
    matching the paper's DNN memory footprints and DSP-efficiency scale).
    Functions returning tensors
    are rewritten to take output memref arguments (as the C++ emitter
    requires, §6.2). Padded convolutions materialize an explicitly padded
    input buffer so the compute nest stays guard-free. *)

open Mir
open Dialects

module A = Affine

exception Lower_error of string

let error fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

(* Drop the leading batch dim (always 1). *)
let buffer_shape tensor_shape =
  match tensor_shape with
  | 1 :: rest when rest <> [] -> rest
  | shape -> shape

type env = {
  ctx : Ir.Ctx.t;
  buffers : (int, Ir.value) Hashtbl.t;  (** tensor vid -> memref value *)
  mutable acc : Ir.op list;  (** reversed *)
}

let emit env op = env.acc <- op :: env.acc

let emitr env (op, r) =
  emit env op;
  r

let buffer_of env (v : Ir.value) =
  match Hashtbl.find_opt env.buffers v.Ir.vid with
  | Some m -> m
  | None -> error "lower_graph: tensor %%%d has no buffer" v.Ir.vid

(* Allocate the buffer for a result tensor, unless a destination is
   imposed (returned tensors write into the output argument). *)
let result_buffer env ?dst (v : Ir.value) =
  let m =
    match dst with
    | Some m -> m
    | None ->
        let shape, _ = Ty.as_tensor v.Ir.vty in
        emitr env (Memref.alloc env.ctx (buffer_shape shape) Ty.I8)
  in
  Hashtbl.replace env.buffers v.Ir.vid m;
  m

(* Build a perfect nest over [dims] (trip counts, outermost first); the body
   callback gets the ivs outermost-first and returns body ops. *)
let rec nest env dims body_fn =
  match dims with
  | [] -> body_fn []
  | d :: rest ->
      [
        Affine_d.for_const env.ctx ~lb:0 ~ub:d (fun iv ->
            nest env rest (fun ivs -> body_fn (iv :: ivs)) @ [ Affine_d.yield ]);
      ]

(* Integer accumulator constant, emitted inline inside nests. *)
let iconst ctx v = Arith.constant_i ctx ~ty:Ty.I32 v

(* affine accesses with explicit result exprs over the iv operands *)
let aload ctx mem ~exprs ivs =
  Affine_d.load ctx mem ~map:(A.Map.make ~num_dims:(List.length ivs) ~num_syms:0 exprs) ivs

let astore ctx value mem ~exprs ivs =
  Affine_d.store ctx value mem
    ~map:(A.Map.make ~num_dims:(List.length ivs) ~num_syms:0 exprs)
    ivs

let dims n = List.init n A.Expr.dim

(* Load an int8 weight (used directly by the int32 MAC). *)
let wload ctx w ~exprs ivs =
  let lop, lv = aload ctx w ~exprs ivs in
  ([ lop ], lv)

(* Explicitly padded copy of [src] ([c;h;w]) with margin [pad]. *)
let padded_buffer env src ~pad =
  let mr = Ty.as_memref src.Ir.vty in
  match mr.Ty.shape with
  | [ c; h; w ] ->
      let padded =
        emitr env (Memref.alloc env.ctx [ c; h + (2 * pad); w + (2 * pad) ] Ty.I8)
      in
      let zero_ops =
        nest env [ c; h + (2 * pad); w + (2 * pad) ] (fun ivs ->
            let cop, cv = iconst env.ctx 0 in
            [ cop; astore env.ctx cv padded ~exprs:(dims 3) ivs ])
      in
      let copy_ops =
        nest env [ c; h; w ] (fun ivs ->
            let lop, lv = aload env.ctx src ~exprs:(dims 3) ivs in
            [
              lop;
              astore env.ctx lv padded
                ~exprs:
                  [
                    A.Expr.dim 0;
                    A.Expr.add (A.Expr.dim 1) (A.Expr.const pad);
                    A.Expr.add (A.Expr.dim 2) (A.Expr.const pad);
                  ]
                ivs;
            ])
      in
      List.iter (emit env) (zero_ops @ copy_ops);
      padded
  | _ -> error "padded_buffer: expected 3-d activation"

(* ---- Per-op lowerings ------------------------------------------------------ *)

let lower_conv2d env (o : Ir.op) ?dst ~depthwise () =
  let ctx = env.ctx in
  let stride = Ir.int_attr o "stride" and pad = Ir.int_attr o "pad" in
  let input = buffer_of env (List.nth o.Ir.operands 0) in
  let weight = buffer_of env (List.nth o.Ir.operands 1) in
  let out = result_buffer env ?dst (Ir.result o) in
  let input = if pad = 0 then input else padded_buffer env input ~pad in
  let out_shape = (Ty.as_memref out.Ir.vty).Ty.shape in
  let w_shape = (Ty.as_memref weight.Ir.vty).Ty.shape in
  match (out_shape, w_shape) with
  | [ oc; oh; ow ], [ _; wic; kh; kw ] ->
      let red_dims = if depthwise then [ kh; kw ] else [ wic; kh; kw ] in
      let ops =
        nest env [ oc; oh; ow ] (fun out_ivs ->
            let zop, zv = iconst ctx 0 in
            let init = astore ctx zv out ~exprs:(dims 3) out_ivs in
            let inner =
              nest env red_dims (fun red_ivs ->
                  let ivs = out_ivs @ red_ivs in
                  let n = List.length ivs in
                  (* iv positions: 0=oc 1=oh 2=ow, then reduction ivs *)
                  let d = A.Expr.dim in
                  let c_expr, u_pos, v_pos =
                    if depthwise then (d 0, 3, 4) else (d 3, 4, 5)
                  in
                  let iy =
                    A.Expr.add (A.Expr.mul (A.Expr.const stride) (d 1)) (d u_pos)
                  in
                  let ix =
                    A.Expr.add (A.Expr.mul (A.Expr.const stride) (d 2)) (d v_pos)
                  in
                  let lop, lv =
                    aload ctx input ~exprs:[ c_expr; iy; ix ]
                      (List.filteri (fun i _ -> i < n) ivs)
                  in
                  let w_exprs =
                    if depthwise then [ d 0; A.Expr.const 0; d u_pos; d v_pos ]
                    else [ d 0; d 3; d u_pos; d v_pos ]
                  in
                  let wops, wv = wload ctx weight ~exprs:w_exprs ivs in
                  let oop, ov = aload ctx out ~exprs:(dims 3) ivs in
                  let mop, mv = Arith.muli ctx lv wv in
                  let aop, av = Arith.addi ctx ov mv in
                  let st = astore ctx av out ~exprs:(dims 3) ivs in
                  (lop :: wops) @ [ oop; mop; aop; st ])
            in
            (zop :: init :: inner))
      in
      List.iter (emit env) ops
  | _ -> error "conv2d lowering: unexpected shapes"

let lower_dense env (o : Ir.op) ?dst () =
  let ctx = env.ctx in
  let input = buffer_of env (List.nth o.Ir.operands 0) in
  let weight = buffer_of env (List.nth o.Ir.operands 1) in
  let out = result_buffer env ?dst (Ir.result o) in
  match ((Ty.as_memref out.Ir.vty).Ty.shape, (Ty.as_memref weight.Ir.vty).Ty.shape) with
  | [ oc ], [ _; ic ] ->
      let ops =
        nest env [ oc ] (fun out_ivs ->
            let zop, zv = iconst ctx 0 in
            let init = astore ctx zv out ~exprs:(dims 1) out_ivs in
            let inner =
              nest env [ ic ] (fun red_ivs ->
                  let ivs = out_ivs @ red_ivs in
                  let d = A.Expr.dim in
                  let lop, lv = aload ctx input ~exprs:[ d 1 ] ivs in
                  let wops, wv = wload ctx weight ~exprs:[ d 0; d 1 ] ivs in
                  let oop, ov = aload ctx out ~exprs:[ d 0 ] ivs in
                  let mop, mv = Arith.muli ctx lv wv in
                  let aop, av = Arith.addi ctx ov mv in
                  let st = astore ctx av out ~exprs:[ d 0 ] ivs in
                  (lop :: wops) @ [ oop; mop; aop; st ])
            in
            (zop :: init :: inner))
      in
      List.iter (emit env) ops
  | _ -> error "dense lowering: unexpected shapes"

let lower_elementwise env (o : Ir.op) ?dst kind =
  let ctx = env.ctx in
  let a = buffer_of env (List.nth o.Ir.operands 0) in
  let out = result_buffer env ?dst (Ir.result o) in
  let shape = (Ty.as_memref out.Ir.vty).Ty.shape in
  let n = List.length shape in
  let ops =
    nest env shape (fun ivs ->
        let lop, lv = aload ctx a ~exprs:(dims n) ivs in
        match kind with
        | `Relu ->
            let zop, zv = iconst ctx 0 in
            let mop, mv = Arith.binary ctx "arith.maxi" lv zv ~ty:Ty.I32 in
            [ lop; zop; mop; astore ctx mv out ~exprs:(dims n) ivs ]
        | `Copy -> [ lop; astore ctx lv out ~exprs:(dims n) ivs ]
        | `Add ->
            let b = buffer_of env (List.nth o.Ir.operands 1) in
            let lop2, lv2 = aload ctx b ~exprs:(dims n) ivs in
            let aop, av = Arith.addi ctx lv lv2 in
            [ lop; lop2; aop; astore ctx av out ~exprs:(dims n) ivs ])
  in
  List.iter (emit env) ops

let lower_pool env (o : Ir.op) ?dst kind =
  let ctx = env.ctx in
  let kernel = Ir.int_attr o "kernel" and stride = Ir.int_attr o "stride" in
  let input = buffer_of env (List.nth o.Ir.operands 0) in
  let out = result_buffer env ?dst (Ir.result o) in
  match (Ty.as_memref out.Ir.vty).Ty.shape with
  | [ c; oh; ow ] ->
      let d = A.Expr.dim in
      let ops =
        nest env [ c; oh; ow ] (fun out_ivs ->
            (* init with the window's first element (max) or zero (avg) *)
            let init_ops =
              match kind with
              | `Max ->
                  let lop, lv =
                    aload ctx input
                      ~exprs:
                        [
                          d 0;
                          A.Expr.mul (A.Expr.const stride) (d 1);
                          A.Expr.mul (A.Expr.const stride) (d 2);
                        ]
                      out_ivs
                  in
                  [ lop; astore ctx lv out ~exprs:(dims 3) out_ivs ]
              | `Avg ->
                  let zop, zv = iconst ctx 0 in
                  [ zop; astore ctx zv out ~exprs:(dims 3) out_ivs ]
            in
            let inner =
              nest env [ kernel; kernel ] (fun red_ivs ->
                  let ivs = out_ivs @ red_ivs in
                  let iy = A.Expr.add (A.Expr.mul (A.Expr.const stride) (d 1)) (d 3) in
                  let ix = A.Expr.add (A.Expr.mul (A.Expr.const stride) (d 2)) (d 4) in
                  let lop, lv = aload ctx input ~exprs:[ d 0; iy; ix ] ivs in
                  let oop, ov = aload ctx out ~exprs:(dims 3) ivs in
                  match kind with
                  | `Max ->
                      let mop, mv = Arith.binary ctx "arith.maxi" ov lv ~ty:Ty.I32 in
                      [ lop; oop; mop; astore ctx mv out ~exprs:(dims 3) ivs ]
                  | `Avg ->
                      let aop, av = Arith.addi ctx ov lv in
                      [ lop; oop; aop; astore ctx av out ~exprs:(dims 3) ivs ])
            in
            let scale_ops =
              match kind with
              | `Max -> []
              | `Avg ->
                  let sop, sv = iconst ctx (kernel * kernel) in
                  let oop, ov = aload ctx out ~exprs:(dims 3) out_ivs in
                  let mop, mv = Arith.divi ctx ov sv in
                  [ sop; oop; mop; astore ctx mv out ~exprs:(dims 3) out_ivs ]
            in
            init_ops @ inner @ scale_ops)
      in
      List.iter (emit env) ops
  | _ -> error "pool lowering: unexpected shapes"

let lower_flatten env (o : Ir.op) ?dst () =
  let ctx = env.ctx in
  let input = buffer_of env (List.nth o.Ir.operands 0) in
  let out = result_buffer env ?dst (Ir.result o) in
  match (Ty.as_memref input.Ir.vty).Ty.shape with
  | [ c; h; w ] ->
      let d = A.Expr.dim in
      let flat =
        A.Expr.add
          (A.Expr.add (A.Expr.mul (d 0) (A.Expr.const (h * w))) (A.Expr.mul (d 1) (A.Expr.const w)))
          (d 2)
      in
      let ops =
        nest env [ c; h; w ] (fun ivs ->
            let lop, lv = aload ctx input ~exprs:(dims 3) ivs in
            [ lop; astore ctx lv out ~exprs:[ flat ] ivs ])
      in
      List.iter (emit env) ops
  | [ _ ] | [] ->
      (* already flat: plain copy *)
      lower_elementwise env o ?dst `Copy
  | _ -> error "flatten lowering: unexpected shape"

let lower_weight env (o : Ir.op) =
  let shape, elt = Ty.as_tensor (Ir.result o).Ir.vty in
  let alloc_op, m = Memref.alloc env.ctx shape elt in
  let alloc_op =
    Ir.set_attr
      (Ir.set_attr alloc_op "weight" (Attr.Str (Ir.str_attr o "name")))
      "init_seed"
      (Attr.Int (Hashtbl.hash (Ir.str_attr o "name") land 0xffff))
  in
  emit env alloc_op;
  Hashtbl.replace env.buffers (Ir.result o).Ir.vid m

(* ---- Function lowering ------------------------------------------------------- *)

let lower_func ctx m (f : Ir.op) : Ir.op =
  let body = Func.func_body f in
  let args = Func.func_args f in
  let _, outputs = Ir.func_type f in
  (* New argument list: tensors -> memrefs, then one out-memref per returned
     tensor. *)
  let env = { ctx; buffers = Hashtbl.create 32; acc = [] } in
  let new_args =
    List.map
      (fun (v : Ir.value) ->
        match v.Ir.vty with
        | Ty.Tensor { shape; _ } ->
            let m = Ir.Ctx.fresh ctx (Ty.memref (buffer_shape shape) Ty.I8) in
            Hashtbl.replace env.buffers v.Ir.vid m;
            m
        | _ -> v)
      args
  in
  let out_args =
    List.map
      (fun t ->
        match t with
        | Ty.Tensor { shape; _ } -> Ir.Ctx.fresh ctx (Ty.memref (buffer_shape shape) Ty.I8)
        | t -> Ir.Ctx.fresh ctx t)
      outputs
  in
  (* Which tensor values are returned? Their producing ops write directly
     into the matching out arg. *)
  let returned =
    List.concat_map
      (fun (o : Ir.op) -> if Func.is_return o then o.Ir.operands else [])
      body
  in
  let dst_of (r : Ir.value) =
    let rec find i = function
      | [] -> None
      | (v : Ir.value) :: rest ->
          if v.Ir.vid = r.Ir.vid then List.nth_opt out_args i else find (i + 1) rest
    in
    find 0 returned
  in
  List.iter
    (fun (o : Ir.op) ->
      let dst = match o.Ir.results with [ r ] -> dst_of r | _ -> None in
      match o.Ir.name with
      | "graph.weight" -> lower_weight env o
      | "graph.conv2d" -> lower_conv2d env o ?dst ~depthwise:false ()
      | "graph.dwconv2d" -> lower_conv2d env o ?dst ~depthwise:true ()
      | "graph.dense" -> lower_dense env o ?dst ()
      | "graph.relu" -> lower_elementwise env o ?dst `Relu
      | "graph.copy" -> lower_elementwise env o ?dst `Copy
      | "graph.add" -> lower_elementwise env o ?dst `Add
      | "graph.maxpool" -> lower_pool env o ?dst `Max
      | "graph.avgpool" -> lower_pool env o ?dst `Avg
      | "graph.flatten" -> lower_flatten env o ?dst ()
      | "func.return" -> emit env (Func.return_ [])
      | "func.call" ->
          (* calls between graph funcs: rewrite to buffer calling convention *)
          let callee = Func.callee o in
          let in_bufs = List.map (buffer_of env) o.Ir.operands in
          let out_bufs =
            List.map
              (fun (r : Ir.value) ->
                match dst_of r with
                | Some d ->
                    Hashtbl.replace env.buffers r.Ir.vid d;
                    d
                | None -> result_buffer env r)
              o.Ir.results
          in
          emit env
            (Ir.mk "func.call"
               ~attrs:[ ("callee", Attr.Str callee) ]
               ~operands:(in_bufs @ out_bufs)
               ~results:[])
      | name -> error "lower_graph: cannot lower %s" name)
    body;
  ignore m;
  let new_body = List.rev env.acc in
  let new_body =
    match List.rev new_body with
    | last :: _ when Func.is_return last -> new_body
    | _ -> new_body @ [ Func.return_ [] ]
  in
  let lowered =
    Func.func_raw ~name:(Ir.func_name f) ~args:(new_args @ out_args) ~outputs:[]
      new_body
  in
  (* Preserve the dataflow directive. *)
  match Hlscpp.get_func_directive f with
  | Some d -> Hlscpp.set_func_directive lowered d
  | None -> lowered

(** Lower every graph-level function of the module. *)
let run ctx (m : Ir.op) : Ir.op =
  Ir.module_map_funcs (fun f ->
      if Walk.exists Graph.is_graph_op f || List.exists (fun (v : Ir.value) -> Ty.is_tensor v.Ir.vty) (Func.func_args f)
      then lower_func ctx m f
      else f)
    m

let pass = Pass.make "lower-graph" run
