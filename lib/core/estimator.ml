(** The ScaleHLS QoR estimator (§5.5.1): a fast analytical model over the
    structured directive-level IR, used by the DSE engine to evaluate design
    points without invoking the (much slower) downstream tool.

    Scheduling: each MLIR block is scheduled ALAP over its dependency graph
    (define–use plus memory dependences), with memory ports treated as
    non-shareable. Pipelined loops get II = max(II_res, II_dep, target II)
    (Eqs. 2–4, with II computed by the shared affine machinery). Resources
    use the coarser count/II FU-sharing model — intentionally simpler than
    the virtual downstream tool ({!Vhls.Synth}), which performs list
    scheduling with a concurrency sweep; the two are cross-validated in the
    benchmark harness. *)

open Mir
open Dialects
open Vhls

type estimate = { latency : int; interval : int; usage : Platform.usage }

let pp_estimate fmt e =
  Fmt.pf fmt "latency=%d interval=%d %a" e.latency e.interval Platform.pp_usage
    e.usage

(* ---- Band summaries and the cross-point band memo ----------------------- *)

type band_summary = {
  bs_ii_base : int;  (** max(II_res, II_dep) — independent of the target II *)
  bs_iter_lat : int;  (** scheduled latency of one iteration of the target body *)
  bs_total_trip : int;  (** product of the chain's trip counts *)
  bs_fu_counts : (string * int) list;  (** FU op counts inside the target *)
}
(** Everything the estimator needs from a pipelined band, factored so that
    the directive's target II can be applied at the use site:
    [ii = max target_ii bs_ii_base],
    [latency = ii*(bs_total_trip-1) + bs_iter_lat + 2], and FU usage is
    [bs_fu_counts] shared at [ii]. A summary is therefore reusable across
    design points that only change a band's target II, and across bands that
    are structurally identical in hash-identical environments. *)

type band_ref = {
  br_root : Ir.op;  (** chain root (physical identity within its function) *)
  br_target : Ir.op;  (** the pipelined loop the chain ends at *)
  br_key : int64 option;
      (** cross-point memo key (contextual fingerprint), [None] when the
          summary is not a pure function of subtree + environment *)
}

type func_info = {
  fi_fu_counts : (string * int) list;  (** FU op counts of the whole func *)
  fi_local_mem : Platform.usage;  (** local array BRAM usage *)
  fi_bands : band_ref list;  (** every pipelined chain root, pre-order *)
}
(** Target-II-independent per-function analysis results. The DSE shares one
    transformed module across a whole ladder of target-II siblings (see
    {!Dse.retarget_ii}); caching this record by the function op's *physical
    identity* makes re-estimating a sibling nearly free — no fingerprinting,
    no FU recount, no band re-discovery. *)

type memos = {
  bands : (int64, band_summary) Eval_cache.t;
  fi_lock : Mutex.t;
  mutable fis : (Ir.op * func_info) list;
      (** per-func-op {!func_info}, physical identity; bounded (reset when
          oversized) because entries pin their modules *)
}
(** Cross-point (and cross-domain) estimator memo: band summaries keyed by
    the band's contextual fingerprint ({!Fingerprint.subtree} with the
    target II normalized away and the ranges of free values folded in), plus
    the per-module {!func_info} cache. Create one per DSE run and pass it to
    {!estimate}. *)

let create_memos () =
  { bands = Eval_cache.create ~size:256 (); fi_lock = Mutex.create (); fis = [] }

let memo_hits m = Eval_cache.hits m.bands
let memo_misses m = Eval_cache.misses m.bands
let memo_length m = Eval_cache.length m.bands

(** Export/import of the persistable part of a memo: the band summaries are
    plain data keyed by contextual fingerprint, so they survive a process
    restart unchanged. The [func_info] cache keys on physical op identity
    (and pins its modules live) — it is never persisted. *)
let export_bands m = Eval_cache.bindings m.bands
let import_bands m l = List.iter (fun (k, v) -> Eval_cache.add m.bands k v) l

type t = {
  module_ : Ir.op;
  cache : (string, estimate) Hashtbl.t;
  memos : memos option;
  loop_ii : int option;
      (** read-time override of every pipelined loop's target II — the
          estimator-side twin of {!Dse.retarget_ii}, letting target-II
          siblings share one physical module *)
  mutable band_memo : (Ir.op * band_summary) list;
      (** band summary per chain-root op (physical identity, this module
          only): each root of a flatten chain is revisited by the loop-usage
          fold after the latency pass already summarized it *)
  mutable iter_lat_memo : (Ir.op * int) list;
      (** body latency per pipelined target (physical identity): suffix
          chains of one band share the target, so its schedule is computed
          once *)
  mutable fi_local : (Ir.op * func_info) list;
      (** per-func {!func_info}, local mirror of the shared cache *)
}

let create ?memos ?loop_ii module_ =
  {
    module_;
    cache = Hashtbl.create 16;
    memos;
    loop_ii;
    band_memo = [];
    iter_lat_memo = [];
    fi_local = [];
  }

(* Coarse FU usage: ops/II sharing everywhere (non-pipelined code uses II =
   critical-path length, modelling full sequential reuse). *)
let fu_counts region =
  let counts = Hashtbl.create 16 in
  Walk.iter_op
    (fun x ->
      if Fu.is_fu_op x.Ir.name then
        Hashtbl.replace counts x.Ir.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts x.Ir.name)))
    region;
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) counts []

let fu_usage_of_counts counts ~share =
  List.fold_left
    (fun acc (name, count) ->
      let units = max 1 ((count + share - 1) / share) in
      let c = Fu.op_cost name in
      Platform.usage_add acc
        {
          Platform.usage_zero with
          Platform.u_dsp = units * c.Fu.dsp;
          u_lut = units * c.Fu.lut;
          u_ff = units * c.Fu.ff;
        })
    Platform.usage_zero counts

let fu_usage_shared region ~share = fu_usage_of_counts (fu_counts region) ~share

(* ---- Band-memo keys ------------------------------------------------------ *)

(* The summary excludes the target II, so the key must too: hash every loop
   directive with targetII zeroed. Sound only while no *nested* pipelined
   loop contributes to the summary — see [memoizable]. *)
let normalize_target_ii k (a : Attr.t) =
  if String.equal k Hlscpp.loop_directive_key then
    match a with
    | Attr.Dict kvs ->
        Attr.Dict
          (List.map
             (fun ((k', _) as kv) ->
               if String.equal k' "targetII" then (k', Attr.Int 0) else kv)
             kvs)
    | a -> a
  else a

(* A band summary is context-dependent only through the ranges/constants of
   its free values (loop bounds, access indices, if conditions all resolve
   through {!Analysis.Loop_utils.range_of_value} semantics) and their types
   (memref layouts carry the partitioning). Hash the range at first use. *)
let env_free_hook env (v : Ir.value) =
  match Hashtbl.find_opt env v.Ir.vid with
  | Some (lo, hi) ->
      Fingerprint.of_int (Fingerprint.of_int (Fingerprint.tag 0L 40) lo) hi
  | None -> Fingerprint.tag 0L 41

(* Shareable across modules/points only when the summary is a pure function
   of the subtree + range environment: callees would smuggle in module
   context, and a nested pipelined loop's own target II would be zeroed out
   of the key while still affecting the body schedule. *)
let memoizable root target =
  (not (Walk.exists Func.is_call root))
  && not (List.exists (Walk.exists Hlscpp.is_pipelined) (Ir.body_ops target))

let target_ii_of st target =
  match st.loop_ii with
  | Some ii -> max 1 ii
  | None -> (
      match Hlscpp.get_loop_directive target with
      | Some d -> max 1 d.Hlscpp.loop_target_ii
      | None -> 1)

(* One pass over a function collects everything the estimator needs that the
   target II cannot change. [with_keys] also prices the cross-point memo keys
   (range environment + contextual fingerprints) — skipped for plain
   memo-less estimates, which then do no fingerprinting at all. *)
let build_func_info ~with_keys (f : Ir.op) : func_info =
  let free_hook =
    if with_keys then env_free_hook (Analysis.Loop_utils.range_env f)
    else Fingerprint.no_free_hook
  in
  let bands =
    List.rev
      (Walk.fold_ops
         (fun acc o ->
           match Synth.pipelined_chain o with
           | Some (_, target) ->
               let key =
                 if with_keys && memoizable o target then
                   Some
                     (Fingerprint.subtree ~free_hook
                        ~attr_hook:normalize_target_ii o)
                 else None
               in
               { br_root = o; br_target = target; br_key = key } :: acc
           | None -> acc)
         [] f)
  in
  {
    fi_fu_counts = fu_counts f;
    fi_local_mem = Synth.local_memory_usage f;
    fi_bands = bands;
  }

let func_info st (f : Ir.op) : func_info =
  match List.assq_opt f st.fi_local with
  | Some fi -> fi
  | None ->
      let fi =
        match st.memos with
        | None -> build_func_info ~with_keys:false f
        | Some ms -> (
            let shared_find () =
              Mutex.lock ms.fi_lock;
              let r = List.assq_opt f ms.fis in
              Mutex.unlock ms.fi_lock;
              r
            in
            match shared_find () with
            | Some fi -> fi
            | None -> (
                let fi = build_func_info ~with_keys:true f in
                Mutex.lock ms.fi_lock;
                match List.assq_opt f ms.fis with
                | Some winner ->
                    Mutex.unlock ms.fi_lock;
                    winner
                | None ->
                    (* entries pin their module: bound the cache *)
                    if List.length ms.fis > 512 then ms.fis <- [];
                    ms.fis <- (f, fi) :: ms.fis;
                    Mutex.unlock ms.fi_lock;
                    fi))
      in
      st.fi_local <- (f, fi) :: st.fi_local;
      fi

let rec estimate_func st (f : Ir.op) : estimate =
  let name = Ir.func_name f in
  match Hashtbl.find_opt st.cache name with
  | Some e -> e
  | None ->
      let e =
        match Hlscpp.get_func_directive f with
        | Some d when d.Hlscpp.dataflow ->
            let stages =
              List.filter_map
                (fun o ->
                  if Func.is_call o then
                    Option.map (estimate_func st) (Ir.find_func st.module_ (Func.callee o))
                  else None)
                (Func.func_body f)
            in
            let latency =
              List.fold_left (fun a s -> a + s.latency) (List.length stages) stages
            in
            let interval =
              List.fold_left (fun a s -> max a (max s.interval s.latency)) 1 stages
            in
            let usage =
              List.fold_left
                (fun a s -> Platform.usage_add a s.usage)
                (Synth.local_memory_usage ~pingpong:(fun _ -> true) f)
                stages
            in
            { latency; interval; usage }
        | fd ->
            let fi = func_info st f in
            let lat = estimate_block st ~scope:f (Func.func_body f) in
            let usage =
              Platform.usage_add
                (fu_usage_of_counts fi.fi_fu_counts ~share:(max 1 lat))
                fi.fi_local_mem
            in
            (* Loops inside still need their pipelined FU usage counted with
               their own II; recompute as the max of loop usages. *)
            let loop_usage =
              List.fold_left
                (fun acc br ->
                  let s = band_summary_of st ~scope:f br.br_root br.br_target in
                  let ii = max (target_ii_of st br.br_target) s.bs_ii_base in
                  Platform.usage_max acc
                    (fu_usage_of_counts s.bs_fu_counts ~share:ii))
                Platform.usage_zero fi.fi_bands
            in
            let usage = Platform.usage_max usage loop_usage in
            let interval =
              match fd with
              | Some d when d.Hlscpp.pipeline -> max 1 d.Hlscpp.target_ii
              | _ -> lat
            in
            { latency = lat; interval; usage }
      in
      Hashtbl.replace st.cache name e;
      e

(* Summarize the pipelined band rooted at [root] (its flatten chain ends at
   [target]). Three memo levels: per-root physical identity (this module),
   per-target body latency (shared by the suffix chains the loop-usage fold
   visits), and — when sound — the cross-point fingerprint-keyed memo. *)
and band_summary_of st ~scope root target : band_summary =
  match List.assq_opt root st.band_memo with
  | Some s -> s
  | None ->
      let compute () =
        let chain =
          match Synth.pipelined_chain root with Some (c, _) -> c | None -> [ target ]
        in
        let basis = List.map Affine_d.induction_var chain in
        (* ii_res and ii_dep share one access collection (identical basis). *)
        let accs = Analysis.Mem_access.collect ~scope ~basis target in
        let ii_base =
          max
            (Synth.ii_res ~accs ~scope ~basis target)
            (Synth.ii_dep ~accs ~scope ~chain target)
        in
        let total_trip =
          List.fold_left (fun acc l -> acc * Synth.trip_estimate ~scope l) 1 chain
        in
        {
          bs_ii_base = ii_base;
          bs_iter_lat = iter_latency st ~scope target;
          bs_total_trip = total_trip;
          bs_fu_counts = fu_counts target;
        }
      in
      let s =
        match st.memos with
        | Some memos -> (
            let fi = func_info st scope in
            match
              List.find_opt (fun br -> br.br_root == root) fi.fi_bands
            with
            | Some { br_key = Some key; _ } ->
                Eval_cache.find_or_add memos.bands key compute
            | _ -> compute ())
        | None -> compute ()
      in
      st.band_memo <- (root, s) :: st.band_memo;
      s

and iter_latency st ~scope target =
  match List.assq_opt target st.iter_lat_memo with
  | Some l -> l
  | None ->
      let l = estimate_block st ~scope (Ir.body_ops target) in
      st.iter_lat_memo <- (target, l) :: st.iter_lat_memo;
      l

(* ALAP-scheduled latency of an op list. *)
and estimate_block st ~scope (ops : Ir.op list) : int =
  let ops =
    List.filter (fun o -> o.Ir.name <> "affine.yield" && o.Ir.name <> "scf.yield") ops
  in
  if ops = [] then 0
  else begin
    let delay_of o = op_latency st ~scope o in
    let g = Sched.build ~delay_of ops in
    (* ALAP at the critical-path deadline (the paper's §5.5.1 choice): the
       block latency is exactly the critical-path length. *)
    Sched.latency g
  end

and op_latency st ~scope (o : Ir.op) : int =
  match o.Ir.name with
  | "affine.for" | "scf.for" -> (
      match Synth.pipelined_chain o with
      | Some (_, target) ->
          let s = band_summary_of st ~scope o target in
          let ii = max (target_ii_of st target) s.bs_ii_base in
          (ii * max 0 (s.bs_total_trip - 1)) + s.bs_iter_lat + 2
      | None ->
          let trip =
            match o.Ir.name with
            | "affine.for" -> Synth.trip_estimate ~scope o
            | _ -> 1
          in
          let body_lat = estimate_block st ~scope (Ir.body_ops o) in
          (trip * (body_lat + 1)) + 1)
  | "affine.if" | "scf.if" ->
      let lat r =
        List.fold_left
          (fun acc (b : Ir.block) -> max acc (estimate_block st ~scope b.Ir.bops))
          0 r
      in
      1 + max (lat (Ir.region o 0)) (lat (Ir.region o 1))
  | "func.call" -> (
      match Ir.find_func st.module_ (Func.callee o) with
      | Some callee -> (estimate_func st callee).latency
      | None -> 0)
  | name -> Fu.op_delay name

(** Estimate the design rooted at function [top]. Pass [memos] (one
    {!create_memos} per DSE run) to reuse band summaries and per-module
    analyses across calls; [loop_ii] overrides every pipelined loop's target
    II at read time (see {!Dse.retarget_ii}). *)
let estimate ?memos ?loop_ii module_ ~top =
  let st = create ?memos ?loop_ii module_ in
  match Ir.find_func module_ top with
  | Some f -> estimate_func st f
  | None -> invalid_arg (Printf.sprintf "Estimator.estimate: no function %s" top)
