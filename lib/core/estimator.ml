(** The ScaleHLS QoR estimator (§5.5.1): a fast analytical model over the
    structured directive-level IR, used by the DSE engine to evaluate design
    points without invoking the (much slower) downstream tool.

    Scheduling: each MLIR block is scheduled ALAP over its dependency graph
    (define–use plus memory dependences), with memory ports treated as
    non-shareable. Pipelined loops get II = max(II_res, II_dep, target II)
    (Eqs. 2–4, with II computed by the shared affine machinery). Resources
    use the coarser count/II FU-sharing model — intentionally simpler than
    the virtual downstream tool ({!Vhls.Synth}), which performs list
    scheduling with a concurrency sweep; the two are cross-validated in the
    benchmark harness. *)

open Mir
open Dialects
open Vhls

type estimate = { latency : int; interval : int; usage : Platform.usage }

let pp_estimate fmt e =
  Fmt.pf fmt "latency=%d interval=%d %a" e.latency e.interval Platform.pp_usage
    e.usage

type t = {
  module_ : Ir.op;
  cache : (string, estimate) Hashtbl.t;
  mutable ii_memo : (Ir.op * int) list;
      (** pipelined II per chain-root op (physical identity): each root of a
          flatten chain is revisited by the loop-usage fold after the latency
          pass already computed its II *)
}

let create module_ = { module_; cache = Hashtbl.create 16; ii_memo = [] }

(* Coarse FU usage: ops/II sharing everywhere (non-pipelined code uses II =
   critical-path length, modelling full sequential reuse). *)
let fu_usage_shared region ~share =
  let counts = Hashtbl.create 16 in
  Walk.iter_op
    (fun x ->
      if Fu.is_fu_op x.Ir.name then
        Hashtbl.replace counts x.Ir.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts x.Ir.name)))
    region;
  Hashtbl.fold
    (fun name count acc ->
      let units = max 1 ((count + share - 1) / share) in
      let c = Fu.op_cost name in
      Platform.usage_add acc
        {
          Platform.usage_zero with
          Platform.u_dsp = units * c.Fu.dsp;
          u_lut = units * c.Fu.lut;
          u_ff = units * c.Fu.ff;
        })
    counts Platform.usage_zero

let rec estimate_func st (f : Ir.op) : estimate =
  let name = Ir.func_name f in
  match Hashtbl.find_opt st.cache name with
  | Some e -> e
  | None ->
      let e =
        match Hlscpp.get_func_directive f with
        | Some d when d.Hlscpp.dataflow ->
            let stages =
              List.filter_map
                (fun o ->
                  if Func.is_call o then
                    Option.map (estimate_func st) (Ir.find_func st.module_ (Func.callee o))
                  else None)
                (Func.func_body f)
            in
            let latency =
              List.fold_left (fun a s -> a + s.latency) (List.length stages) stages
            in
            let interval =
              List.fold_left (fun a s -> max a (max s.interval s.latency)) 1 stages
            in
            let usage =
              List.fold_left
                (fun a s -> Platform.usage_add a s.usage)
                (Synth.local_memory_usage ~pingpong:(fun _ -> true) f)
                stages
            in
            { latency; interval; usage }
        | fd ->
            let lat = estimate_block st ~scope:f (Func.func_body f) in
            let usage =
              Platform.usage_add
                (fu_usage_shared f ~share:(max 1 lat))
                (Synth.local_memory_usage f)
            in
            (* Loops inside still need their pipelined FU usage counted with
               their own II; recompute as the max of loop usages. *)
            let loop_usage =
              Walk.fold_ops
                (fun acc o ->
                  match Synth.pipelined_chain o with
                  | Some (_, target) ->
                      let ii = pipelined_ii st ~scope:f o target in
                      Platform.usage_max acc
                        (fu_usage_shared target ~share:ii)
                  | None -> acc)
                Platform.usage_zero f
            in
            let usage = Platform.usage_max usage loop_usage in
            let interval =
              match fd with
              | Some d when d.Hlscpp.pipeline -> max 1 d.Hlscpp.target_ii
              | _ -> lat
            in
            { latency = lat; interval; usage }
      in
      Hashtbl.replace st.cache name e;
      e

and pipelined_ii st ~scope root target =
  match List.assq_opt root st.ii_memo with
  | Some ii -> ii
  | None ->
      let chain =
        match Synth.pipelined_chain root with Some (c, _) -> c | None -> [ target ]
      in
      let basis = List.map Affine_d.induction_var chain in
      let target_ii =
        match Hlscpp.get_loop_directive target with
        | Some d -> max 1 d.Hlscpp.loop_target_ii
        | None -> 1
      in
      (* ii_res and ii_dep share one access collection (identical basis). *)
      let accs = Analysis.Mem_access.collect ~scope ~basis target in
      let ii =
        max target_ii
          (max
             (Synth.ii_res ~accs ~scope ~basis target)
             (Synth.ii_dep ~accs ~scope ~chain target))
      in
      st.ii_memo <- (root, ii) :: st.ii_memo;
      ii

(* ALAP-scheduled latency of an op list. *)
and estimate_block st ~scope (ops : Ir.op list) : int =
  let ops =
    List.filter (fun o -> o.Ir.name <> "affine.yield" && o.Ir.name <> "scf.yield") ops
  in
  if ops = [] then 0
  else begin
    let delay_of o = op_latency st ~scope o in
    let g = Sched.build ~delay_of ops in
    (* ALAP at the critical-path deadline (the paper's §5.5.1 choice): the
       block latency is exactly the critical-path length. *)
    Sched.latency g
  end

and op_latency st ~scope (o : Ir.op) : int =
  match o.Ir.name with
  | "affine.for" | "scf.for" -> (
      match Synth.pipelined_chain o with
      | Some (chain, target) ->
          let total_trip =
            List.fold_left (fun acc l -> acc * Synth.trip_estimate ~scope l) 1 chain
          in
          let iter_lat = estimate_block st ~scope (Ir.body_ops target) in
          let ii = pipelined_ii st ~scope o target in
          (ii * max 0 (total_trip - 1)) + iter_lat + 2
      | None ->
          let trip =
            match o.Ir.name with
            | "affine.for" -> Synth.trip_estimate ~scope o
            | _ -> 1
          in
          let body_lat = estimate_block st ~scope (Ir.body_ops o) in
          (trip * (body_lat + 1)) + 1)
  | "affine.if" | "scf.if" ->
      let lat r =
        List.fold_left
          (fun acc (b : Ir.block) -> max acc (estimate_block st ~scope b.Ir.bops))
          0 r
      in
      1 + max (lat (Ir.region o 0)) (lat (Ir.region o 1))
  | "func.call" -> (
      match Ir.find_func st.module_ (Func.callee o) with
      | Some callee -> (estimate_func st callee).latency
      | None -> 0)
  | name -> Fu.op_delay name

(** Estimate the design rooted at function [top]. *)
let estimate module_ ~top =
  let st = create module_ in
  match Ir.find_func module_ top with
  | Some f -> estimate_func st f
  | None -> invalid_arg (Printf.sprintf "Estimator.estimate: no function %s" top)
