(** The automated DSE engine (§5.5.2): searches the Pareto frontier of the
    latency–area tradeoff space. Each dimension of the design space is a
    tunable parameter of a transform pass (Table 2): loop perfectization
    on/off, variable-bound removal on/off, the loop permutation, per-loop
    tile sizes (intra-tile loops are sunk innermost and fully unrolled),
    the pipeline target II — with array partitioning derived automatically
    from the resulting access pattern.

    The 4-step neighbor-traversing algorithm: (1) sample the design space and
    evaluate each point with the QoR estimator; (2) extract the Pareto
    frontier; (3) evaluate the closest neighbor of a randomly selected Pareto
    point; (4) repeat (2)–(3) until no eligible neighbor exists or the
    iteration budget is exhausted. *)

open Mir
open Dialects
open Analysis
open Vhls

type point = {
  lp : bool;
  rvb : bool;
  perm : int list;  (** perm-map over the main band (original -> position) *)
  tiles : int list;  (** per main-band loop, in permuted order *)
  target_ii : int;
}

let pp_point fmt p =
  Fmt.pf fmt "lp=%b rvb=%b perm=[%a] tiles=[%a] ii=%d" p.lp p.rvb
    Fmt.(list ~sep:comma int)
    p.perm
    Fmt.(list ~sep:comma int)
    p.tiles p.target_ii

type evaluated = {
  point : point;
  estimate : Estimator.estimate;
  feasible : bool;
}

type result = {
  best : evaluated option;  (** lowest latency among feasible points *)
  pareto : evaluated list;  (** latency-increasing Pareto frontier *)
  explored : int;
  module_ : Ir.op;  (** the transformed module of [best] *)
}

(* ---- Point application ----------------------------------------------------- *)

let cleanup_passes =
  [
    Canonicalize.pass;
    Simplify_affine_if.pass;
    Canonicalize.pass;
    Store_forward.pass;
    Simplify_memref.pass;
    Cse.pass;
    Canonicalize.pass;
  ]

(* The main band of a function: deepest; ties broken by trip count. *)
let main_band f =
  let bands = Loop_utils.bands f in
  List.fold_left
    (fun acc band ->
      match acc with
      | None -> Some band
      | Some best ->
          let depth b = List.length b in
          let trips b = Option.value ~default:0 (Loop_utils.band_trip_count b) in
          if
            depth band > depth best
            || (depth band = depth best && trips band > trips best)
          then Some band
          else acc)
    None bands

(* Rebuild [f] with the main band transformed by [g]. *)
let on_main_band f g =
  match main_band f with
  | None -> f
  | Some band ->
      let root = List.hd band in
      Loop_utils.replace_band_in f ~old_root:root ~new_root:(g band)

exception Inapplicable

(** Apply a design point to a module: returns the transformed module (with
    all levels of cleanup applied and directives set). Raises [Inapplicable]
    when e.g. the permutation is illegal for this point's preprocessing. *)
let apply_point ctx m ~top (pt : point) : Ir.op =
  (* RVB runs before LP: once variable bounds are constants, perfectization
     can sink through loops that were potentially empty before. *)
  let pre =
    (if pt.rvb then [ Remove_var_bound.pass ] else [])
    @ (if pt.lp then [ Loop_perfectization.pass ] else [])
    @ [ Canonicalize.pass ]
  in
  let m = Pass.run_pipeline pre ctx m in
  let f = Ir.find_func_exn m top in
  (* Permute + tile + unroll the main band. *)
  let f =
    on_main_band f (fun band ->
        let n = List.length band in
        if List.length pt.perm <> n then raise Inapplicable;
        let deps = Loop_order_opt.band_deps ~scope:f band in
        let root =
          if pt.perm = List.init n Fun.id then List.hd band
          else if
            (* permutation requires a perfect band: otherwise in-between ops
               would be dropped and the innermost-body dependence analysis is
               incomplete *)
            Affine_d.band_is_perfect band
            && Loop_order_opt.legal_permutation ~deps band pt.perm
          then Loop_order_opt.permute_band band pt.perm
          else raise Inapplicable
        in
        let band' = Affine_d.band root in
        let tiles =
          if List.length pt.tiles = List.length band' then pt.tiles
          else raise Inapplicable
        in
        match Loop_tile.tile_band ctx band' ~sizes:tiles with
        | Some root' -> root'
        | None -> root)
  in
  let m = Ir.replace_func m f in
  (* Fully unroll the intra-tile point loops: pipelining's legalization does
     this for everything nested under the pipeline target; the target is the
     innermost *original* loop, i.e. at depth n-1 of the tiled band. *)
  let f = Ir.find_func_exn m top in
  let f =
    Ir.with_body f
      (List.map
         (fun o ->
           if Affine_d.is_for o then begin
             (* The pipeline target is the innermost *original* loop, i.e.
                depth n-1 of the tiled band; the intra-tile point loops sit
                below it and are fully unrolled by pipeline legalization. *)
             let band = Affine_d.band o in
             let depth = List.length pt.perm - 1 in
             let depth = min depth (List.length band - 1) in
             match Loop_pipeline.pipeline_band ctx ~target_ii:pt.target_ii ~depth o with
             | Some o' -> o'
             | None -> raise Inapplicable
           end
           else o)
         (Func.func_body f))
  in
  let m = Ir.replace_func m f in
  let m = Pass.run_pipeline cleanup_passes ctx m in
  let m = Array_partition.run ctx m in
  Pass.run_pipeline [ Canonicalize.pass ] ctx m

(* ---- Space definition -------------------------------------------------------- *)

type space = {
  lp_options : bool list;
  rvb_options : bool list;
  perms : int list list;  (** legal permutations of the preprocessed band *)
  tile_options : int list list;  (** per permuted-band loop *)
  ii_options : int list;
  max_unroll : int;  (** cap on the product of tile sizes *)
}

let space_size s =
  List.length s.lp_options * List.length s.rvb_options * List.length s.perms
  * List.fold_left (fun a o -> a * List.length o) 1 s.tile_options
  * List.length s.ii_options

(** Build the design space of [top] in [m]: preprocess with LP+RVB, inspect
    the main band. [max_unroll] caps the product of tile sizes (total unroll
    after absorbing point loops). *)
let build_space ?(max_unroll = 256) ?(max_ii = 8) ctx m ~top =
  let m' =
    Pass.run_pipeline
      [ Remove_var_bound.pass; Loop_perfectization.pass; Canonicalize.pass ]
      ctx m
  in
  let f = Ir.find_func_exn m' top in
  (* LP applicability is judged on the RVB-preprocessed function too: bounds
     made constant may unlock sinking that is unsound beforehand (e.g. a
     possibly-empty triangular loop). *)
  let rvb_applicable = Remove_var_bound.applicable (Ir.find_func_exn m top) in
  let lp_applicable =
    Loop_perfectization.applicable (Ir.find_func_exn m top)
    || Loop_perfectization.applicable
         (Ir.find_func_exn (Pass.run_one Remove_var_bound.pass ctx m) top)
  in
  match main_band f with
  | None ->
      {
        lp_options = [ false ];
        rvb_options = [ false ];
        perms = [ [] ];
        tile_options = [];
        ii_options = [ 1 ];
        max_unroll;
      }
  | Some band ->
      let n = List.length band in
      let deps = Loop_order_opt.band_deps ~scope:f band in
      let identity = List.init n Fun.id in
      let perms =
        List.filter
          (fun p -> Loop_order_opt.legal_permutation ~deps band p)
          (Loop_order_opt.permutations identity)
      in
      let perms = if perms = [] then [ identity ] else perms in
      let tile_options =
        List.map
          (fun l ->
            match Affine_d.const_trip_count l with
            | Some trip when trip > 1 ->
                List.filter (fun p -> trip mod p = 0) (Affine.Solve.powers_of_two (min trip max_unroll))
            | _ -> [ 1 ])
          band
      in
      {
        lp_options = (if lp_applicable then [ true; false ] else [ false ]);
        rvb_options = (if rvb_applicable then [ true; false ] else [ false ]);
        perms;
        tile_options;
        ii_options = List.init max_ii (fun i -> i + 1);
        max_unroll;
      }

(* ---- Evaluation -------------------------------------------------------------- *)

let area_of (e : Estimator.estimate) = e.Estimator.usage.Platform.u_dsp

let evaluate ?(max_unroll = 256) ctx m ~top ~platform (pt : point) :
    (evaluated * Ir.op) option =
  let unroll_product = List.fold_left ( * ) 1 pt.tiles in
  if unroll_product > max_unroll then None
  else
    try
      let m' = apply_point ctx m ~top pt in
      let e = Estimator.estimate m' ~top in
      let feasible = Platform.fits platform e.Estimator.usage in
      Some ({ point = pt; estimate = e; feasible }, m')
    with Inapplicable | Invalid_argument _ -> None

(* ---- Pareto frontier ----------------------------------------------------------- *)

(** Extract the Pareto frontier over (latency, area), keeping only feasible
    points; sorted by increasing latency. *)
let pareto_frontier (pts : evaluated list) : evaluated list =
  let feas = List.filter (fun p -> p.feasible) pts in
  let dominated a b =
    (* b dominates a *)
    b.estimate.Estimator.latency <= a.estimate.Estimator.latency
    && area_of b.estimate <= area_of a.estimate
    && (b.estimate.Estimator.latency < a.estimate.Estimator.latency
       || area_of b.estimate < area_of a.estimate)
  in
  let frontier =
    List.filter (fun a -> not (List.exists (fun b -> dominated a b) feas)) feas
  in
  (* dedup identical (latency, area) *)
  let tbl = Hashtbl.create 16 in
  let frontier =
    List.filter
      (fun p ->
        let k = (p.estimate.Estimator.latency, area_of p.estimate) in
        if Hashtbl.mem tbl k then false
        else begin
          Hashtbl.replace tbl k ();
          true
        end)
      frontier
  in
  List.sort
    (fun a b -> compare a.estimate.Estimator.latency b.estimate.Estimator.latency)
    frontier

(* ---- Sampling and neighbors ------------------------------------------------------ *)

let random_point rng (s : space) : point =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  (* Tile sizes are sampled under the unroll budget: dims are visited in a
     random order and each picks among options that still fit, so large
     problem sizes do not drown the sampler in infeasible points. *)
  let n = List.length s.tile_options in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let tiles = Array.make n 1 in
  let remaining = ref s.max_unroll in
  Array.iter
    (fun d ->
      let opts = List.filter (fun t -> t <= !remaining) (List.nth s.tile_options d) in
      let t = match opts with [] -> 1 | _ -> pick opts in
      tiles.(d) <- t;
      remaining := !remaining / max 1 t)
    order;
  let perm = pick s.perms in
  let identity = List.init (List.length perm) Fun.id in
  (* A non-identity permutation needs a perfect, constant-bound band: couple
     the LP/RVB knobs to it so samples are not wasted on inapplicable
     points. *)
  let lp = if perm <> identity && List.mem true s.lp_options then true else pick s.lp_options in
  let rvb = if perm <> identity && List.mem true s.rvb_options then true else pick s.rvb_options in
  { lp; rvb; perm; tiles = Array.to_list tiles; target_ii = pick s.ii_options }

(** Closest neighbors of a point: one dimension moved one step. *)
let neighbors (s : space) (pt : point) : point list =
  let adjacent l v =
    (* elements adjacent to v in l (which is ordered) *)
    let rec go = function
      | a :: b :: rest ->
          if a = v then [ b ]
          else if b = v then a :: (match rest with x :: _ -> [ x ] | [] -> [])
          else go (b :: rest)
      | _ -> []
    in
    match go l with
    | [] -> List.filter (fun x -> x <> v) l (* fall back: any other value *)
    | ns -> ns
  in
  let ii_neighbors =
    List.map (fun ii -> { pt with target_ii = ii }) (adjacent s.ii_options pt.target_ii)
  in
  let tile_neighbors =
    List.concat
      (List.mapi
         (fun i opts ->
           let v = List.nth pt.tiles i in
           List.map
             (fun v' ->
               { pt with tiles = List.mapi (fun j t -> if j = i then v' else t) pt.tiles })
             (adjacent opts v))
         s.tile_options)
  in
  let perm_neighbors =
    List.filter_map
      (fun p -> if p <> pt.perm then Some { pt with perm = p } else None)
      s.perms
  in
  let flag_neighbors =
    (if List.length s.lp_options > 1 then [ { pt with lp = not pt.lp } ] else [])
    @ if List.length s.rvb_options > 1 then [ { pt with rvb = not pt.rvb } ] else []
  in
  ii_neighbors @ tile_neighbors @ perm_neighbors @ flag_neighbors

(* ---- The engine -------------------------------------------------------------------- *)

(** Run the DSE: [samples] initial random points, then up to [iterations]
    neighbor-traversal steps. Deterministic for a given [seed]. *)
let run ?(samples = 24) ?(iterations = 60) ?(seed = 42) ?(max_unroll = 256)
    ?(max_ii = 8) ?(heuristic_seeds = true) ctx m ~top ~platform : result =
  let rng = Random.State.make [| seed |] in
  let s = build_space ~max_unroll ~max_ii ctx m ~top in
  let seen : (point, unit) Hashtbl.t = Hashtbl.create 64 in
  let evaluated = ref [] in
  let explored = ref 0 in
  let modules : (point * Ir.op) list ref = ref [] in
  let eval pt =
    if not (Hashtbl.mem seen pt) then begin
      Hashtbl.replace seen pt ();
      incr explored;
      match evaluate ~max_unroll ctx m ~top ~platform pt with
      | Some (ev, m') ->
          evaluated := ev :: !evaluated;
          if ev.feasible then modules := (pt, m') :: !modules
      | None -> ()
    end
  in
  (* Step 1: seed with the identity/no-op point plus promising defaults, then
     random samples. *)
  let n_band = List.length s.tile_options in
  let base_pt =
    {
      lp = List.hd s.lp_options;
      rvb = List.hd s.rvb_options;
      perm = (match s.perms with p :: _ -> p | [] -> []);
      tiles = List.init n_band (fun _ -> 1);
      target_ii = 1;
    }
  in
  eval base_pt;
  (* Heuristic seeds: for each legal permutation, greedy tile sizes that
     fill the unroll budget innermost-first (the paper's "intra-tile loops
     absorbed innermost and fully unrolled" shape) at a ladder of IIs and
     two unroll budgets. These anchor the frontier so the neighbor traversal
     starts from sensible designs even with few random samples. *)
  let greedy_tiles budget =
    let n = List.length s.tile_options in
    let tiles = Array.make n 1 in
    let remaining = ref budget in
    for d = n - 1 downto 0 do
      let opts = List.filter (fun t -> t <= !remaining) (List.nth s.tile_options d) in
      let t = List.fold_left max 1 opts in
      tiles.(d) <- t;
      remaining := !remaining / max 1 t
    done;
    Array.to_list tiles
  in
  let lp_on = List.mem true s.lp_options and rvb_on = List.mem true s.rvb_options in
  let seed_perms =
    if heuristic_seeds then List.filteri (fun i _ -> i < 4) s.perms else []
  in
  List.iter
    (fun perm ->
      List.iter
        (fun budget ->
          List.iter
            (fun target_ii ->
              eval { lp = lp_on; rvb = rvb_on; perm; tiles = greedy_tiles budget; target_ii })
            [ 1; 8 ])
        [ max_unroll; max 1 (max_unroll / 4) ])
    seed_perms;
  for _ = 1 to samples do
    eval (random_point rng s)
  done;
  (* Steps 2-4: neighbor traversal. *)
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < iterations do
    incr iter;
    let frontier = pareto_frontier !evaluated in
    match frontier with
    | [] ->
        (* nothing feasible yet: keep sampling *)
        eval (random_point rng s)
    | _ ->
        (* Traverse neighbors of a random Pareto point; occasionally also of
           the fastest infeasible point (raising its II or shrinking its
           tiles walks it back inside the resource budget). *)
        let p =
          let infeasible_best =
            List.fold_left
              (fun acc e ->
                if e.feasible then acc
                else
                  match acc with
                  | Some b when b.estimate.Estimator.latency <= e.estimate.Estimator.latency -> acc
                  | _ -> Some e)
              None !evaluated
          in
          match infeasible_best with
          | Some b when Random.State.int rng 4 = 0 -> b
          | _ -> List.nth frontier (Random.State.int rng (List.length frontier))
        in
        let ns =
          List.filter (fun n -> not (Hashtbl.mem seen n)) (neighbors s p.point)
        in
        (match ns with
        | [] ->
            (* no unexplored neighbor of this point; try a random sample to
               avoid premature termination, stop if space is exhausted *)
            let unexplored_exists = !explored < space_size s in
            if unexplored_exists then eval (random_point rng s) else continue_ := false
        | n :: _ -> eval n)
  done;
  let frontier = pareto_frontier !evaluated in
  let best =
    match frontier with
    | [] -> None
    | p :: _ -> Some p (* lowest latency *)
  in
  let module_ =
    match best with
    | Some b -> (
        match List.find_opt (fun (pt, _) -> pt = b.point) !modules with
        | Some (_, m') -> m'
        | None -> m)
    | None -> m
  in
  { best; pareto = frontier; explored = !explored; module_ }
