(** The automated DSE engine (§5.5.2): searches the Pareto frontier of the
    latency–area tradeoff space. Each dimension of the design space is a
    tunable parameter of a transform pass (Table 2): loop perfectization
    on/off, variable-bound removal on/off, the loop permutation, per-loop
    tile sizes (intra-tile loops are sunk innermost and fully unrolled),
    the pipeline target II — with array partitioning derived automatically
    from the resulting access pattern.

    The 4-step neighbor-traversing algorithm: (1) sample the design space and
    evaluate each point with the QoR estimator; (2) extract the Pareto
    frontier; (3) evaluate the unexplored closest neighbors of a randomly
    selected Pareto point; (4) repeat (2)–(3) until no eligible neighbor
    exists or the evaluation budget is exhausted.

    The engine is batch-synchronous and (optionally) parallel: the seed
    points and each round's unexplored neighbors form a batch that a
    fixed-size domain pool ({!Parpool}) evaluates concurrently, while all
    search decisions — RNG draws, Pareto maintenance, batch construction —
    stay on the coordinator and results merge in submission order. Every
    point is evaluated re-entrantly against a fresh [Ir.Ctx] derived from the
    memoized (lp, rvb)-preprocessed module, so the result of a run depends
    only on the seed: [~jobs:n] reproduces [~jobs:1] bit-for-bit. *)

open Mir
open Dialects
open Analysis
open Vhls

type point = {
  lp : bool;
  rvb : bool;
  perm : int list;  (** perm-map over the main band (original -> position) *)
  tiles : int list;  (** per main-band loop, in permuted order *)
  target_ii : int;
}

let pp_point fmt p =
  Fmt.pf fmt "lp=%b rvb=%b perm=[%a] tiles=[%a] ii=%d" p.lp p.rvb
    Fmt.(list ~sep:comma int)
    p.perm
    Fmt.(list ~sep:comma int)
    p.tiles p.target_ii

type evaluated = {
  point : point;
  estimate : Estimator.estimate;
  feasible : bool;
}

type stats = {
  jobs : int;  (** worker-domain count the run used *)
  wall_seconds : float;  (** wall time of the whole run *)
  pre_hits : int;  (** (lp, rvb) preprocessing cache hits *)
  pre_misses : int;  (** ... and misses (≤ 4: one per combo) *)
  cache_hits : int;  (** evaluation-cache hits (re-proposed points) *)
  cache_misses : int;  (** points actually evaluated *)
  symbolic_points : int;  (** points evaluated through the symbolic path *)
  fallback_points : int;  (** symbolic bail-outs re-run materialized *)
  fallback_reasons : (string * int) list;
      (** why the symbolic model bailed, per {!Unroll_model.Unsupported}
          reason, sorted by reason *)
  est_memo_hits : int;
      (** band-granular estimator memo hits (fingerprint-identical pipelined
          bands in hash-identical environments share one schedule) *)
  est_memo_misses : int;  (** ... and misses (bands actually re-scheduled) *)
  tf_hits : int;
      (** transform-memo hits: points that reused the transformed module of a
          sibling point differing only in target II *)
  tf_misses : int;  (** ... and misses (transform pipeline actually ran) *)
  worker_busy : (int * float) list;
      (** per-worker busy fraction of the run ({!Parpool.busy_fractions}) *)
  stage_seconds : (string * float) list;
      (** cumulative per-stage wall time across all evaluations:
          transform / unroll / cleanup / partition / estimate / pareto *)
  strategy : string;  (** name of the search strategy the run used *)
  strategy_counters : (string * int) list;
      (** strategy-specific counters, e.g. the surrogate's
          proposed/shortlisted/pruned_by_model tallies *)
}

(* ---- Per-evaluation instrumentation --------------------------------------- *)

(** Wall-time tally of one point evaluation (single-threaded: each evaluation
    owns its tally and merges it into the shared {!instr} when done). *)
type tally = {
  mutable t_transform : float;  (** permute + tile + pipeline annotation *)
  mutable t_unroll : float;  (** materialized unroll or symbolic expansion *)
  mutable t_cleanup : float;  (** cleanup pass pipelines *)
  mutable t_partition : float;  (** array partitioning + final canonicalize *)
  mutable t_estimate : float;
  mutable t_symbolic : bool;  (** evaluated through the symbolic path *)
  mutable t_fallback : bool;  (** symbolic bailed out; materialized re-run *)
  mutable t_fallback_reason : string option;
      (** the {!Unroll_model.Unsupported} payload of the bail-out *)
}

let tally_zero () =
  {
    t_transform = 0.;
    t_unroll = 0.;
    t_cleanup = 0.;
    t_partition = 0.;
    t_estimate = 0.;
    t_symbolic = false;
    t_fallback = false;
    t_fallback_reason = None;
  }

(** Shared run-wide instrumentation; worker domains merge tallies under the
    lock. *)
type instr = {
  lock : Mutex.t;
  mutable s_transform : float;
  mutable s_unroll : float;
  mutable s_cleanup : float;
  mutable s_partition : float;
  mutable s_estimate : float;
  mutable s_pareto : float;
  mutable n_symbolic : int;
  mutable n_fallback : int;
  reasons : (string, int) Hashtbl.t;  (** fallback reason -> count *)
}

let instr_create () =
  {
    lock = Mutex.create ();
    s_transform = 0.;
    s_unroll = 0.;
    s_cleanup = 0.;
    s_partition = 0.;
    s_estimate = 0.;
    s_pareto = 0.;
    n_symbolic = 0;
    n_fallback = 0;
    reasons = Hashtbl.create 8;
  }

let instr_merge (i : instr) (t : tally) =
  Mutex.lock i.lock;
  i.s_transform <- i.s_transform +. t.t_transform;
  i.s_unroll <- i.s_unroll +. t.t_unroll;
  i.s_cleanup <- i.s_cleanup +. t.t_cleanup;
  i.s_partition <- i.s_partition +. t.t_partition;
  i.s_estimate <- i.s_estimate +. t.t_estimate;
  if t.t_symbolic then i.n_symbolic <- i.n_symbolic + 1;
  if t.t_fallback then i.n_fallback <- i.n_fallback + 1;
  Option.iter
    (fun r ->
      Hashtbl.replace i.reasons r
        (1 + Option.value ~default:0 (Hashtbl.find_opt i.reasons r)))
    t.t_fallback_reason;
  Mutex.unlock i.lock

let instr_reasons (i : instr) =
  List.sort compare (Hashtbl.fold (fun r n acc -> (r, n) :: acc) i.reasons [])

let instr_stages (i : instr) =
  [
    ("transform", i.s_transform);
    ("unroll", i.s_unroll);
    ("cleanup", i.s_cleanup);
    ("partition", i.s_partition);
    ("estimate", i.s_estimate);
    ("pareto", i.s_pareto);
  ]

type result = {
  best : evaluated option;  (** lowest latency among feasible points *)
  pareto : evaluated list;  (** latency-increasing Pareto frontier *)
  explored : int;
  module_ : Ir.op;  (** the transformed module of [best] *)
  stats : stats;
}

(* ---- Point application ----------------------------------------------------- *)

let cleanup_passes =
  [
    Canonicalize.pass;
    Simplify_affine_if.pass;
    Canonicalize.pass;
    Store_forward.pass;
    Simplify_memref.pass;
    Cse.pass;
    Canonicalize.pass;
  ]

(* The main band of a function: deepest; ties broken by trip count. *)
let main_band f =
  let bands = Loop_utils.bands f in
  List.fold_left
    (fun acc band ->
      match acc with
      | None -> Some band
      | Some best ->
          let depth b = List.length b in
          let trips b = Option.value ~default:0 (Loop_utils.band_trip_count b) in
          if
            depth band > depth best
            || (depth band = depth best && trips band > trips best)
          then Some band
          else acc)
    None bands

(* Rebuild [f] with the main band transformed by [g]. *)
let on_main_band f g =
  match main_band f with
  | None -> f
  | Some band ->
      let root = List.hd band in
      Loop_utils.replace_band_in f ~old_root:root ~new_root:(g band)

exception Inapplicable

(** The (lp, rvb) preprocessing stage of a design point, shared by every
    point with the same two flags — the DSE engine computes it once per
    combo. RVB runs before LP: once variable bounds are constants,
    perfectization can sink through loops that were potentially empty
    before. *)
let preprocess ctx m ~lp ~rvb =
  let pre =
    (if rvb then [ Remove_var_bound.pass ] else [])
    @ (if lp then [ Loop_perfectization.pass ] else [])
    @ [ Canonicalize.pass ]
  in
  Pass.run_pipeline pre ctx m

(* Passes replayed on the symbolically-expanded module. The rolled module
   already went through the full [cleanup_passes] pipeline, so the
   per-template rewrites are baked into every instance, and
   [Unroll_model.expand] now emits already-canonical instances — access maps
   folded and pruned exactly as canonicalization would, and per-clone guards
   resolved at instantiation with [Simplify_affine_if]'s own decision
   procedure. That leaves only the cross-iteration work the materialized
   path performs on its unrolled body: a canonicalize (dead-code from
   resolved guards, constant folds exposed by splicing), store forwarding
   along the point-iteration chain, memref simplification, CSE across
   clones, and the final canonicalize. The replayed [Simplify_affine_if] was
   measured rewrite-free post-fusion (zero IR delta across every replay on
   the bench kernels and the fuzz corpus) and is dropped; with nothing left
   between them, the two leading canonicalizes merge into one. The
   differential oracle asserts the trimmed replay still matches the
   materialized path op-for-op. *)
let expand_cleanup_passes =
  [
    Canonicalize.pass;
    Store_forward.pass;
    Simplify_memref.pass;
    Cse.pass;
    Canonicalize.pass;
  ]

(** Stage 1 of point application, shared by both evaluation modes: permute
    and tile the main band. Raises [Inapplicable] when e.g. the permutation
    is illegal for this point's preprocessing. *)
let permute_tile ctx m ~top (pt : point) : Ir.op =
  let f = Ir.find_func_exn m top in
  let f =
    on_main_band f (fun band ->
        let n = List.length band in
        if List.length pt.perm <> n then raise Inapplicable;
        let deps = Loop_order_opt.band_deps ~scope:f band in
        let root =
          if pt.perm = List.init n Fun.id then List.hd band
          else if
            (* permutation requires a perfect band: otherwise in-between ops
               would be dropped and the innermost-body dependence analysis is
               incomplete *)
            Affine_d.band_is_perfect band
            && Loop_order_opt.legal_permutation ~deps band pt.perm
          then Loop_order_opt.permute_band band pt.perm
          else raise Inapplicable
        in
        let band' = Affine_d.band root in
        let tiles =
          if List.length pt.tiles = List.length band' then pt.tiles
          else raise Inapplicable
        in
        match Loop_tile.tile_band ctx band' ~sizes:tiles with
        | Some root' -> root'
        | None -> root)
  in
  Ir.replace_func m f

(* Stage 2: pipeline every top-level band at the point's depth — either the
   materialized transform (full nested unroll) or its annotation-only twin
   for the symbolic path. The pipeline target is the innermost *original*
   loop, i.e. depth n-1 of the tiled band; the intra-tile point loops sit
   below it. *)
let pipeline_tops ctx m ~top (pt : point) ~annotate : Ir.op =
  let f = Ir.find_func_exn m top in
  let f =
    Ir.with_body f
      (List.map
         (fun o ->
           if Affine_d.is_for o then begin
             let band = Affine_d.band o in
             let depth = List.length pt.perm - 1 in
             let depth = min depth (List.length band - 1) in
             let r =
               if annotate then
                 Loop_pipeline.annotate_band ~target_ii:pt.target_ii ~depth o
               else
                 Loop_pipeline.pipeline_band ctx ~target_ii:pt.target_ii ~depth o
             in
             match r with Some o' -> o' | None -> raise Inapplicable
           end
           else o)
         (Func.func_body f))
  in
  Ir.replace_func m f

(** Apply the per-point tail of a design point to the already-preprocessed
    module [m]: permute + tile + pipeline the main band, clean up, derive
    array partitioning. Raises [Inapplicable] when e.g. the permutation is
    illegal for this point's preprocessing.

    [symbolic] (the default) runs the cleanup on the small rolled module and
    expands the intra-tile iterations analytically ({!Unroll_model}),
    falling back to the materialized transform for point shapes the model
    does not support; [~symbolic:false] forces the materialized path. The
    two produce estimator-identical modules (asserted by the differential
    oracle). [tally] accumulates per-stage wall time for [--profile]. *)
let apply_preprocessed ?(symbolic = true) ?tally ctx m ~top (pt : point) :
    Ir.op =
  let time bucket f =
    match tally with
    | None -> f ()
    | Some t ->
        let t0 = Obs.Clock.now_ns () in
        let r = f () in
        let dt = Obs.Clock.since_s t0 in
        (match bucket with
        | `Transform -> t.t_transform <- t.t_transform +. dt
        | `Unroll -> t.t_unroll <- t.t_unroll +. dt
        | `Cleanup -> t.t_cleanup <- t.t_cleanup +. dt
        | `Partition -> t.t_partition <- t.t_partition +. dt);
        r
  in
  let m1 = time `Transform (fun () -> permute_tile ctx m ~top pt) in
  let finish m =
    time `Partition (fun () ->
        Pass.run_pipeline [ Canonicalize.pass ] ctx (Array_partition.run ctx m))
  in
  let materialized m1 =
    let m = time `Unroll (fun () -> pipeline_tops ctx m1 ~top pt ~annotate:false) in
    let m = time `Cleanup (fun () -> Pass.run_pipeline cleanup_passes ctx m) in
    finish m
  in
  if not symbolic then materialized m1
  else begin
    let m2 = time `Transform (fun () -> pipeline_tops ctx m1 ~top pt ~annotate:true) in
    let m2 = time `Cleanup (fun () -> Pass.run_pipeline cleanup_passes ctx m2) in
    match time `Unroll (fun () -> Unroll_model.expand ctx m2) with
    | m3, expanded ->
        Option.iter (fun t -> t.t_symbolic <- true) tally;
        let m3 =
          if expanded then
            time `Cleanup (fun () ->
                Pass.run_pipeline expand_cleanup_passes ctx m3)
          else m3
        in
        finish m3
    | exception Unroll_model.Unsupported reason ->
        Option.iter
          (fun t ->
            t.t_fallback <- true;
            t.t_fallback_reason <- Some reason)
          tally;
        materialized m1
  end

(** Apply a design point to a module: returns the transformed module (with
    all levels of cleanup applied and directives set). Raises [Inapplicable]
    when e.g. the permutation is illegal for this point's preprocessing. *)
let apply_point ?symbolic ctx m ~top (pt : point) : Ir.op =
  apply_preprocessed ?symbolic ctx
    (preprocess ctx m ~lp:pt.lp ~rvb:pt.rvb)
    ~top pt

(* ---- Space definition -------------------------------------------------------- *)

type space = {
  lp_options : bool list;
  rvb_options : bool list;
  perms : int list list;  (** legal permutations of the preprocessed band *)
  tile_options : int list list;  (** per permuted-band loop *)
  ii_options : int list;
  max_unroll : int;  (** cap on the product of tile sizes *)
  trips : int list;
      (** constant trip counts of the main-band loops, in original order
          ([0] when unknown) — cheap per-point feature material for
          surrogate models *)
}

let space_size s =
  List.length s.lp_options * List.length s.rvb_options * List.length s.perms
  * List.fold_left (fun a o -> a * List.length o) 1 s.tile_options
  * List.length s.ii_options

(** Build the design space of [top] in [m]: preprocess with LP+RVB, inspect
    the main band. [max_unroll] caps the product of tile sizes (total unroll
    after absorbing point loops). *)
let build_space ?(max_unroll = 256) ?(max_ii = 8) ctx m ~top =
  let m' =
    Pass.run_pipeline
      [ Remove_var_bound.pass; Loop_perfectization.pass; Canonicalize.pass ]
      ctx m
  in
  let f = Ir.find_func_exn m' top in
  (* LP applicability is judged on the RVB-preprocessed function too: bounds
     made constant may unlock sinking that is unsound beforehand (e.g. a
     possibly-empty triangular loop). *)
  let rvb_applicable = Remove_var_bound.applicable (Ir.find_func_exn m top) in
  let lp_applicable =
    Loop_perfectization.applicable (Ir.find_func_exn m top)
    || Loop_perfectization.applicable
         (Ir.find_func_exn (Pass.run_one Remove_var_bound.pass ctx m) top)
  in
  match main_band f with
  | None ->
      {
        lp_options = [ false ];
        rvb_options = [ false ];
        perms = [ [] ];
        tile_options = [];
        ii_options = [ 1 ];
        max_unroll;
        trips = [];
      }
  | Some band ->
      let n = List.length band in
      let deps = Loop_order_opt.band_deps ~scope:f band in
      let identity = List.init n Fun.id in
      let perms =
        List.filter
          (fun p -> Loop_order_opt.legal_permutation ~deps band p)
          (Loop_order_opt.permutations identity)
      in
      let perms = if perms = [] then [ identity ] else perms in
      let tile_options =
        List.map
          (fun l ->
            match Affine_d.const_trip_count l with
            | Some trip when trip > 1 ->
                List.filter (fun p -> trip mod p = 0) (Affine.Solve.powers_of_two (min trip max_unroll))
            | _ -> [ 1 ])
          band
      in
      {
        lp_options = (if lp_applicable then [ true; false ] else [ false ]);
        rvb_options = (if rvb_applicable then [ true; false ] else [ false ]);
        perms;
        tile_options;
        ii_options = List.init max_ii (fun i -> i + 1);
        max_unroll;
        trips =
          List.map
            (fun l -> Option.value ~default:0 (Affine_d.const_trip_count l))
            band;
      }

(* ---- Point canonicalization and cache keys ------------------------------------ *)

(** Canonicalize a design point relative to its (lp, rvb)-preprocessed
    module: clamp tile sizes exactly the way {!Loop_tile.tile_band} will
    (non-dividing or trivial sizes become 1; every size when the band is
    imperfect or variable-bound, i.e. untileable). Two proposals with the
    same canonical form provably produce the same transformed module, so the
    engine keys its evaluation cache on the canonical point — distinct raw
    proposals that only differ in clamped-away tile sizes evaluate once.
    Points the canonicalization cannot interpret (band/perm arity mismatch,
    non-permutation [perm]) are returned unchanged — they are [Inapplicable]
    under any reading. *)
let canonicalize_point pre ~top (pt : point) : point =
  match Ir.find_func pre top with
  | None -> pt
  | Some f -> (
      match main_band f with
      | None -> pt
      | Some band ->
          let n = List.length band in
          if
            List.length pt.perm <> n
            || List.length pt.tiles <> n
            || List.sort compare pt.perm <> List.init n Fun.id
          then pt
          else if
            (not (Affine_d.band_is_perfect band))
            || not (List.for_all Affine_d.has_const_bounds band)
          then { pt with tiles = List.map (fun _ -> 1) pt.tiles }
          else begin
            let trips =
              Array.of_list
                (List.map (fun l -> Option.get (Loop_unroll.const_trip l)) band)
            in
            (* [tiles] is in permuted order: position [j] holds the original
               band loop [i] with [perm(i) = j], whose trip count permutation
               preserves. *)
            let inv = Array.make n 0 in
            List.iteri (fun i j -> inv.(j) <- i) pt.perm;
            let tiles =
              List.mapi
                (fun j s ->
                  let trip = trips.(inv.(j)) in
                  if s > 1 && trip mod s = 0 then s else 1)
                pt.tiles
            in
            { pt with tiles }
          end)

(** Evaluation-cache key of a design point: the structural fingerprint of
    its preprocessed module crossed with the canonical directive
    configuration. The fingerprint (rather than the raw (lp, rvb) flags)
    collapses flag combinations whose preprocessing turns out to be a no-op.
    Returns the key together with the canonical point. [pre_fp] supplies a
    memoized fingerprint of [pre] (the engine computes it once per (lp, rvb)
    combo). *)
let cache_key ?pre_fp pre ~top (pt : point) :
    (int64 * int list * int list * int) * point =
  let c = canonicalize_point pre ~top pt in
  let fp = match pre_fp with Some f -> f | None -> Fingerprint.op pre in
  ((fp, c.perm, c.tiles, c.target_ii), c)

(* ---- Evaluation -------------------------------------------------------------- *)

let area_of (e : Estimator.estimate) = e.Estimator.usage.Platform.u_dsp

(** Rewrite every pipelined loop directive to [target_ii]. No transform or
    cleanup pass reads the target II — it only feeds the estimator and
    emission — so the transformed module of a design point is, up to this
    attribute, a function of (preprocessed module, perm, tiles) alone. The
    engine exploits that: one transform run is shared by the whole II ladder
    of sibling points, patched per point by this rewrite. *)
let retarget_ii ~target_ii m =
  let needs_patch o =
    match Hlscpp.get_loop_directive o with
    | Some d -> d.Hlscpp.loop_pipeline && d.Hlscpp.loop_target_ii <> target_ii
    | None -> false
  in
  if not (Walk.exists needs_patch m) then m
  else
    Walk.map_op
      (fun o ->
        if needs_patch o then
          let d = Option.get (Hlscpp.get_loop_directive o) in
          Hlscpp.set_loop_directive o { d with Hlscpp.loop_target_ii = target_ii }
        else o)
      m

type tf_memo = (int64 * int list * int list, Ir.op option) Eval_cache.t
(** Transform memo: (preprocessed-module fingerprint, canonical perm,
    canonical tiles) -> fully transformed module (directives, cleanup and
    partitioning applied), or [None] when that combination is
    {!Inapplicable}. Entries are target-II-agnostic; consumers patch the
    directive with {!retarget_ii}. *)

type eval_cache = (int64 * int list * int list * int, evaluated option) Eval_cache.t
(** The engine's evaluation cache: {!cache_key} -> evaluation outcome
    ([None] = inapplicable). Entries are plain data, valid across runs and
    processes — a persistent service shares one cache between searches
    (see [?cache] on {!run}). *)

(** Evaluate one design point. [?pre] supplies the (lp, rvb)-preprocessed
    module (the engine memoizes it; without it the preprocessing is run here).
    [?symbolic] selects the evaluation path (default symbolic, see
    {!apply_preprocessed}); [?tf_memo]/[?tf_key] memoize the transformed
    module across the II ladder (the key must be the canonical
    (pre-fingerprint, perm, tiles) of this point); [?memos] carries the
    band-granular estimator memo ({!Estimator.create_memos});
    [?tally] collects per-stage wall time. Only
    [Inapplicable] means "not a design": any other exception is a transform
    bug — it is logged with the offending point and re-raised rather than
    silently swallowed. *)
let evaluate ?(max_unroll = 256) ?symbolic ?tally ?memos ?tf_memo ?tf_key ?pre
    ctx m ~top ~platform (pt : point) : (evaluated * Ir.op) option =
  let unroll_product = List.fold_left ( * ) 1 pt.tiles in
  if unroll_product > max_unroll then None
  else
    let pre_m =
      match pre with Some p -> p | None -> preprocess ctx m ~lp:pt.lp ~rvb:pt.rvb
    in
    match
      let transform () = apply_preprocessed ?symbolic ?tally ctx pre_m ~top pt in
      (* [tm] is the shared target-II-agnostic module the estimator runs on
         (with the point's II applied at read time, so II-ladder siblings
         reuse its per-module analyses by physical identity); [m'] is the
         point's own module with the directive actually patched in. *)
      let tm, m' =
        match (tf_memo, tf_key) with
        | Some (memo : tf_memo), Some key -> (
            let r =
              Eval_cache.find_or_add memo key (fun () ->
                  match transform () with
                  | m -> Some m
                  | exception Inapplicable -> None)
            in
            match r with
            | None -> raise Inapplicable
            | Some tm -> (tm, retarget_ii ~target_ii:pt.target_ii tm))
        | _ ->
            let m' = transform () in
            (m', m')
      in
      let time_estimate f =
        match tally with
        | None -> f ()
        | Some t ->
            let t0 = Obs.Clock.now_ns () in
            let r = f () in
            t.t_estimate <- t.t_estimate +. Obs.Clock.since_s t0;
            r
      in
      let e =
        time_estimate (fun () ->
            Estimator.estimate ?memos ~loop_ii:pt.target_ii tm ~top)
      in
      let feasible = Platform.fits platform e.Estimator.usage in
      ({ point = pt; estimate = e; feasible }, m')
    with
    | ev -> Some ev
    | exception Inapplicable -> None
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Logs.err (fun k ->
            k "dse: point %a raised %s" pp_point pt (Printexc.to_string e));
        Printexc.raise_with_backtrace e bt

(* ---- Pareto frontier ----------------------------------------------------------- *)

(** Extract the Pareto frontier over (latency, area), keeping only feasible
    points; sorted by increasing latency. A sort-then-sweep: after stable
    sorting by (latency, area), a point survives iff its area is strictly
    below every earlier survivor's — O(n log n), and identical (latency,
    area) duplicates collapse onto the earliest-listed representative. *)
let pareto_frontier (pts : evaluated list) : evaluated list =
  let feas = List.filter (fun p -> p.feasible) pts in
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = compare a.estimate.Estimator.latency b.estimate.Estimator.latency in
        if c <> 0 then c else compare (area_of a.estimate) (area_of b.estimate))
      feas
  in
  let rec sweep best_area acc = function
    | [] -> List.rev acc
    | p :: rest ->
        if area_of p.estimate < best_area then
          sweep (area_of p.estimate) (p :: acc) rest
        else sweep best_area acc rest
  in
  sweep max_int [] sorted

(* ---- Sampling and neighbors ------------------------------------------------------ *)

let random_point rng (s : space) : point =
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let tile_options = Array.of_list (List.map Array.of_list s.tile_options) in
  (* Tile sizes are sampled under the unroll budget: dims are visited in a
     random order and each picks among options that still fit, so large
     problem sizes do not drown the sampler in infeasible points. *)
  let n = Array.length tile_options in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let tiles = Array.make n 1 in
  let remaining = ref s.max_unroll in
  Array.iter
    (fun d ->
      let opts =
        Array.of_seq
          (Seq.filter (fun t -> t <= !remaining) (Array.to_seq tile_options.(d)))
      in
      let t = if Array.length opts = 0 then 1 else pick opts in
      tiles.(d) <- t;
      remaining := !remaining / max 1 t)
    order;
  let perm = pick (Array.of_list s.perms) in
  let identity = List.init (List.length perm) Fun.id in
  let pick_l l = pick (Array.of_list l) in
  (* A non-identity permutation needs a perfect, constant-bound band: couple
     the LP/RVB knobs to it so samples are not wasted on inapplicable
     points. *)
  let lp = if perm <> identity && List.mem true s.lp_options then true else pick_l s.lp_options in
  let rvb = if perm <> identity && List.mem true s.rvb_options then true else pick_l s.rvb_options in
  { lp; rvb; perm; tiles = Array.to_list tiles; target_ii = pick_l s.ii_options }

(** Closest neighbors of a point: one dimension moved one step. *)
let neighbors (s : space) (pt : point) : point list =
  let adjacent l v =
    (* elements adjacent to v in l (which is ordered) *)
    let rec go = function
      | a :: b :: rest ->
          if a = v then [ b ]
          else if b = v then a :: (match rest with x :: _ -> [ x ] | [] -> [])
          else go (b :: rest)
      | _ -> []
    in
    match go l with
    | [] -> List.filter (fun x -> x <> v) l (* fall back: any other value *)
    | ns -> ns
  in
  let ii_neighbors =
    List.map (fun ii -> { pt with target_ii = ii }) (adjacent s.ii_options pt.target_ii)
  in
  let tile_arr = Array.of_list pt.tiles in
  let tile_neighbors =
    List.concat
      (List.mapi
         (fun i opts ->
           List.map
             (fun v' ->
               let tiles' = Array.copy tile_arr in
               tiles'.(i) <- v';
               { pt with tiles = Array.to_list tiles' })
             (adjacent opts tile_arr.(i)))
         s.tile_options)
  in
  let perm_neighbors =
    List.filter_map
      (fun p -> if p <> pt.perm then Some { pt with perm = p } else None)
      s.perms
  in
  let flag_neighbors =
    (if List.length s.lp_options > 1 then [ { pt with lp = not pt.lp } ] else [])
    @ if List.length s.rvb_options > 1 then [ { pt with rvb = not pt.rvb } ] else []
  in
  ii_neighbors @ tile_neighbors @ perm_neighbors @ flag_neighbors

(* ---- Frontier quality ------------------------------------------------------------------ *)

(** 2-D hypervolume of a feasible Pareto frontier w.r.t. a reference point,
    in (log1p latency) × (linear DSP) space — both minimized. The log scale
    weighs each latency decade equally, so the metric rewards covering the
    whole latency–area tradeoff rather than just the high-latency tail.
    [front] must be latency-increasing / area-decreasing (what
    {!pareto_frontier} returns); points at or beyond the reference
    contribute nothing. *)
let log_hypervolume ~ref_latency ~ref_area (front : evaluated list) : float =
  let lg v = log1p (float_of_int v) in
  let rl = lg ref_latency and ra = float_of_int ref_area in
  let rec go acc = function
    | [] -> acc
    | p :: rest ->
        let l = lg p.estimate.Estimator.latency
        and a = float_of_int (area_of p.estimate) in
        if l >= rl || a >= ra then go acc rest
        else
          let next =
            match rest with
            | q :: _ -> Float.min rl (lg q.estimate.Estimator.latency)
            | [] -> rl
          in
          go (acc +. ((next -. l) *. (ra -. a))) rest
  in
  go 0. front

(* ---- Search strategies ------------------------------------------------------------------ *)

(** The pluggable search-strategy interface. The engine stays
    batch-synchronous and owns everything that must not depend on the
    strategy: budget accounting (batches are truncated to the remaining
    budget and charged by their post-truncation length), Pareto maintenance,
    evaluation-cache dedup, and the warm-cache merge discipline — a strategy
    only decides {e which} points to propose next and learns from every
    merged result via [observe]. Because cached (warm-store) results merge at
    their proposal position in submission order, [observe] sees the exact
    same (point, result) sequence warm or cold, so a learning strategy
    replays deterministically through {!Serve}'s persistent store. *)
module Strategy = struct
  (** The engine-side view a strategy searches against. [seen] is "already
      proposed this run" (canonical-key identity, shared caches included);
      [canon] canonicalizes a proposal the way the evaluation cache will;
      [evaluated] returns all merged results so far, newest first. *)
  type env = {
    space : space;
    rng : Random.State.t;  (** the run's seeded RNG — all draws go here *)
    samples : int;  (** seed-phase random sample count *)
    heuristic_seeds : bool;
    platform : Platform.t;
    seen : point -> bool;
    canon : point -> point;
    evaluated : unit -> evaluated list;
    explored : unit -> int;
    emit_event : string -> (unit -> (string * Obs.Json.t) list) -> unit;
        (** Append a structured line to the search-quality event log
            ([Obs.Events]); the engine stamps the job id and timestamp. The
            field list is a thunk — costs one atomic load when no event sink
            is configured. Strategies use it for learning-health telemetry
            (e.g. surrogate calibration), never for search decisions. *)
  }

  type instance = {
    name : string;
    seed_batch : unit -> point list;  (** the initial evaluation batch *)
    propose : frontier:evaluated list -> remaining:int -> point list;
        (** next batch given the current feasible frontier and the remaining
            evaluation budget; [[]] terminates the search *)
    observe : (point * evaluated option) list -> unit;
        (** every merged batch, in merge order: (canonical point, result) —
            [None] means inapplicable. Fired for the seed batch too. *)
    counters : unit -> (string * int) list;
        (** strategy-specific counters for stats/metrics export *)
  }

  type t = env -> instance
end

(** The engine's standard seed batch: the identity/no-op point, the greedy
    heuristic anchors (per legal permutation, budget-filling innermost-first
    tiles at an II ladder), then [env.samples] random draws. Shared by every
    strategy so runs differing only in strategy start from the same
    evidence. *)
let seed_points (env : Strategy.env) : point list =
  let s = env.Strategy.space in
  let n_band = List.length s.tile_options in
  let base_pt =
    {
      lp = List.hd s.lp_options;
      rvb = List.hd s.rvb_options;
      perm = (match s.perms with p :: _ -> p | [] -> []);
      tiles = List.init n_band (fun _ -> 1);
      target_ii = 1;
    }
  in
  (* Heuristic seeds: for each legal permutation, greedy tile sizes that
     fill the unroll budget innermost-first (the paper's "intra-tile loops
     absorbed innermost and fully unrolled" shape) at a ladder of IIs and
     two unroll budgets. These anchor the frontier so the neighbor traversal
     starts from sensible designs even with few random samples. *)
  let tile_options = Array.of_list s.tile_options in
  let greedy_tiles budget =
    let n = Array.length tile_options in
    let tiles = Array.make n 1 in
    let remaining = ref budget in
    for d = n - 1 downto 0 do
      let opts = List.filter (fun t -> t <= !remaining) tile_options.(d) in
      let t = List.fold_left max 1 opts in
      tiles.(d) <- t;
      remaining := !remaining / max 1 t
    done;
    Array.to_list tiles
  in
  let lp_on = List.mem true s.lp_options
  and rvb_on = List.mem true s.rvb_options in
  let seed_perms =
    if env.Strategy.heuristic_seeds then List.filteri (fun i _ -> i < 4) s.perms
    else []
  in
  let heur_pts =
    List.concat_map
      (fun perm ->
        List.concat_map
          (fun budget ->
            List.map
              (fun target_ii ->
                { lp = lp_on; rvb = rvb_on; perm; tiles = greedy_tiles budget; target_ii })
              [ 1; 8 ])
          [ s.max_unroll; max 1 (s.max_unroll / 4) ])
      seed_perms
  in
  (* Random draws must happen in a defined order (List.init's application
     order is unspecified). *)
  let rng = env.Strategy.rng in
  let rec draw_samples k =
    if k = 0 then [] else random_point rng s :: draw_samples (k - 1)
  in
  (base_pt :: heur_pts) @ draw_samples env.Strategy.samples

(** The paper's sample + Pareto-neighbor traversal (§5.5.2), verbatim: each
    round picks a random frontier point (or, one round in four when one
    exists, the fastest infeasible point) and proposes all of its unexplored
    closest neighbors; falls back to a fresh random sample when the pick has
    none, and stops only once the whole space is explored. Every RNG draw
    matches the pre-strategy-interface engine exactly — a seeded run is
    bit-identical to the historical behavior. *)
let exhaustive : Strategy.t =
 fun env ->
  let s = env.Strategy.space in
  let rng = env.Strategy.rng in
  let proposed = ref 0 in
  let count ps =
    proposed := !proposed + List.length ps;
    ps
  in
  let propose ~frontier ~remaining:_ =
    match frontier with
    | [] ->
        (* nothing feasible yet: keep sampling *)
        count [ random_point rng s ]
    | _ ->
        (* Traverse neighbors of a random Pareto point; occasionally also of
           the fastest infeasible point (raising its II or shrinking its
           tiles walks it back inside the resource budget). *)
        let p =
          let infeasible_best =
            List.fold_left
              (fun acc e ->
                if e.feasible then acc
                else
                  match acc with
                  | Some b
                    when b.estimate.Estimator.latency
                         <= e.estimate.Estimator.latency ->
                      acc
                  | _ -> Some e)
              None
              (env.Strategy.evaluated ())
          in
          match infeasible_best with
          | Some b when Random.State.int rng 4 = 0 -> b
          | _ ->
              let fr = Array.of_list frontier in
              fr.(Random.State.int rng (Array.length fr))
        in
        let ns =
          (* Unexplored means "not seen by this run": entries a shared cache
             holds from other runs still merge (warm) through the engine,
             keeping the traversal identical to a cold run. *)
          List.filter (fun n -> not (env.Strategy.seen n)) (neighbors s p.point)
        in
        (match ns with
        | [] ->
            (* no unexplored neighbor of this point; try a random sample to
               avoid premature termination, stop if space is exhausted *)
            if env.Strategy.explored () < space_size s then
              count [ random_point rng s ]
            else []
        | _ -> count ns)
  in
  {
    Strategy.name = "exhaustive";
    seed_batch = (fun () -> count (seed_points env));
    propose;
    observe = (fun _ -> ());
    counters = (fun () -> [ ("proposed", !proposed) ]);
  }

(* ---- Metrics export ------------------------------------------------------------------ *)

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

(* Publish a finished run's stats into the "dse" metrics registry (counters
   accumulate across runs in one process; gauges reflect the latest run).
   Purely observational: never feeds back into the search. *)
let record_metrics (s : stats) explored =
  let open Obs.Metrics in
  let reg = registry "dse" in
  let bump name v = add (counter reg name) (float_of_int v) in
  bump "points.explored" explored;
  bump "eval_cache.hits" s.cache_hits;
  bump "eval_cache.misses" s.cache_misses;
  bump "pre_cache.hits" s.pre_hits;
  bump "pre_cache.misses" s.pre_misses;
  bump "est_memo.hits" s.est_memo_hits;
  bump "est_memo.misses" s.est_memo_misses;
  bump "tf_memo.hits" s.tf_hits;
  bump "tf_memo.misses" s.tf_misses;
  bump "points.symbolic" s.symbolic_points;
  bump "points.fallback" s.fallback_points;
  List.iter
    (fun (name, n) -> bump ("strategy." ^ s.strategy ^ "." ^ name) n)
    s.strategy_counters;
  List.iter
    (fun (reason, n) -> bump ("fallback_reason." ^ reason) n)
    s.fallback_reasons;
  set (gauge reg "eval_cache.hit_rate") (hit_rate s.cache_hits s.cache_misses);
  set (gauge reg "est_memo.hit_rate") (hit_rate s.est_memo_hits s.est_memo_misses);
  set (gauge reg "tf_memo.hit_rate") (hit_rate s.tf_hits s.tf_misses);
  set (gauge reg "points_per_sec")
    (float_of_int explored /. Float.max 1e-9 s.wall_seconds);
  set (gauge reg "jobs") (float_of_int s.jobs);
  List.iter
    (fun (i, f) ->
      let worker = [ ("worker", string_of_int i) ] in
      set (gauge ~labels:worker reg "worker.busy_fraction") f;
      set (gauge ~labels:worker reg "worker.idle_fraction") (1. -. f))
    s.worker_busy;
  List.iter
    (fun (stage, secs) -> add (counter reg ("stage_seconds." ^ stage)) secs)
    s.stage_seconds

(* ---- The engine -------------------------------------------------------------------- *)

(** Default in-flight window of the asynchronous executor (see [?window] on
    {!run}). Kept equal to the CLI/bench/protocol defaults so a local run, a
    remote run and the benchmark replay the same trajectory. *)
let default_window = 8

(* One in-flight slot of the executor's reorder buffer: a proposal that
   resolved warm from the eval cache at admission time, or a fresh
   evaluation submitted to the worker pool (identified by its stream task
   id). Both occupy a window slot, so warm and cold runs admit and commit
   on the same schedule. *)
type rob_entry =
  | Rob_cached of point * evaluated option
  | Rob_fresh of (int64 * int list * int list * int) * point * int

(** Run the DSE: [samples] initial random points, then up to [iterations]
    neighbor-traversal evaluations. Deterministic for a given
    ([seed], [window]) pair, independently of [jobs] ([jobs <= 0] means one
    worker per core): all search decisions happen on the coordinator;
    workers only evaluate.

    [window] bounds the in-flight evaluations of the asynchronous executor
    (default {!default_window}). The strategy proposes ahead — admissions
    refill the window as commits retire — and results commit strictly in
    admission order, so the search trajectory is a pure function of
    (seed, window): larger windows keep more workers busy between proposals
    but let the strategy run further ahead of the frontier it proposes
    against. [window = 0] removes the bound and recovers the legacy
    batch-synchronous rounds (each proposal batch admits whole, then commits
    as one chunk before the next propose).

    [jobs] is capped at [Domain.recommended_domain_count ()]: point
    evaluation allocates heavily on the shared major heap, and domains beyond
    the core count add only GC-synchronization overhead (measured ~linear
    slowdown per extra busy domain on an oversubscribed machine), never
    parallelism.

    The service-mode hooks keep the search a pure function of its
    configuration even when state is shared across runs:
    [?cache] supplies a shared (possibly disk-warmed) evaluation cache —
    entries present before a point is first proposed merge into the run as
    if freshly evaluated, in proposal order, so the frontier and explored
    count are bit-identical to a cold run; [?memos] shares the estimator's
    band memo the same way. [?pool] runs evaluations on an external worker
    pool (not shut down here); [?batch_wrap] is called around every single
    point evaluation, on the worker that runs it, letting a scheduler
    account concurrent searches at single-eval granularity (fairness itself
    lives in the pool's round-robin across streams); [?queue_wait] receives
    each fresh evaluation's pool-queue latency in seconds, also on the
    worker — both must be thread-safe when [jobs > 1]. [?on_frontier] fires
    with the current frontier and explored count after every traversal
    round (and once at the end) — the streaming hook.

    [?job] is the run's observability identity: it labels every [dse.*]
    trace span ([args.job]) and event-log line, so concurrent searches
    sharing one process (a serve daemon) stay separable in a single Chrome
    trace and event file. Defaults to [top] — meaningful for one-shot CLI
    runs; services pass their own job id. Purely observational. *)
let run ?(samples = 24) ?(iterations = 60) ?(seed = 42) ?(max_unroll = 256)
    ?(max_ii = 8) ?(heuristic_seeds = true) ?(jobs = 1) ?(symbolic = true)
    ?(window = default_window) ?(strategy = exhaustive) ?cache:cache_opt
    ?memos:memos_opt ?pool:pool_opt ?(batch_wrap = fun f -> f ()) ?queue_wait
    ?on_frontier ?job ctx m ~top ~platform : result =
  let frontier_track =
    (* Separate Chrome counter tracks per explicit job; the default track
       name is stable for single-search runs (and their tests). *)
    match job with None -> "dse.frontier" | Some j -> "dse.frontier." ^ j
  in
  let job = match job with Some j -> j | None -> top in
  let jobs =
    let cores = Domain.recommended_domain_count () in
    if jobs <= 0 then cores else min jobs cores
  in
  let t_start = Obs.Clock.now_ns () in
  let rng = Random.State.make [| seed |] in
  let s = build_space ~max_unroll ~max_ii ctx m ~top in
  let instr = instr_create () in
  (* Memoization. The preprocessing cache holds the (lp, rvb)-preprocessed
     module (4 combos at most; previously recomputed for every point). The
     evaluation cache memoizes cache-key -> estimate and doubles as the
     engine's "seen" set; keys are (preprocessed-module fingerprint ×
     canonical directive config), so proposals that provably produce the same
     transformed module evaluate once. It deliberately does NOT retain
     transformed modules — those are kept separately and only for
     current-frontier points, so memory stays bounded by the frontier, not
     the explored count. The transform memo shares one transform run across
     the II ladder of sibling points (the target II is patched onto the
     cached module), and the estimator's band memo shares schedules between
     structurally identical pipelined bands across points. *)
  let pre_cache : (bool * bool, Ir.op) Eval_cache.t = Eval_cache.create ~size:4 () in
  let cache : eval_cache =
    match cache_opt with Some c -> c | None -> Eval_cache.create ()
  in
  let memos = match memos_opt with Some ms -> ms | None -> Estimator.create_memos () in
  (* Shared caches carry their counters across runs; per-run stats are deltas
     against these baselines (approximate when concurrent runs share the
     cache — counters are process-global, the search itself is not). *)
  let cache_h0 = Eval_cache.hits cache and cache_m0 = Eval_cache.misses cache in
  let memo_h0 = Estimator.memo_hits memos
  and memo_m0 = Estimator.memo_misses memos in
  (* The per-run "seen" set. With a private cache it mirrors the cache's key
     set; with a shared cache it is the subset this run has proposed, so
     pre-warmed entries are recognized as *new to this run* and merged
     (below) instead of silently skipped. *)
  let seen : (int64 * int list * int list * int, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let tf_memo : tf_memo = Eval_cache.create () in
  let preprocessed lp rvb =
    Eval_cache.find_or_add pre_cache (lp, rvb) (fun () ->
        preprocess (Ir.Ctx.of_op m) m ~lp ~rvb)
  in
  (* Preprocessed-module fingerprints, memoized per (lp, rvb) combo.
     Coordinator-only (key_of runs during batch construction). *)
  let pre_fps : (bool * bool, int64) Hashtbl.t = Hashtbl.create 4 in
  let key_of pt =
    let pre = preprocessed pt.lp pt.rvb in
    let pre_fp =
      match Hashtbl.find_opt pre_fps (pt.lp, pt.rvb) with
      | Some f -> f
      | None ->
          let f = Fingerprint.op pre in
          Hashtbl.replace pre_fps (pt.lp, pt.rvb) f;
          f
    in
    cache_key ~pre_fp pre ~top pt
  in
  (* Re-entrant point evaluation: a fresh context derived from the shared
     preprocessed module, so concurrent evaluations never contend and the
     outcome is a pure function of the (canonical) point. *)
  let eval_seconds = Obs.Metrics.histogram (Obs.Metrics.registry "dse") "evaluate_seconds" in
  let eval_rate = Obs.Metrics.window (Obs.Metrics.registry "dse") "points" in
  let eval_one ?tf_key pt =
    Obs.Trace.with_span_args ~cat:"dse" "dse.evaluate"
      ~args:
        [
          ("job", Obs.Json.String job);
          ("point", Obs.Json.String (Fmt.str "%a" pp_point pt));
        ]
      (fun () ->
        let pre = preprocessed pt.lp pt.rvb in
        (* Worker-side calls always receive [?tf_key] (derived from the eval
           cache key at admission, on the coordinator): [pre_fps] is a plain
           hashtable the coordinator keeps mutating while workers run, so
           workers must not read it. The fallback below serves the one
           coordinator-side call (the final best-module rebuild), which runs
           with every worker drained. *)
        let tf_key =
          match tf_key with
          | Some k -> k
          | None ->
              let pre_fp =
                match Hashtbl.find_opt pre_fps (pt.lp, pt.rvb) with
                | Some f -> f
                | None -> Fingerprint.op pre
              in
              (pre_fp, pt.perm, pt.tiles)
        in
        let t = tally_zero () in
        let r, secs =
          Obs.Clock.time_s (fun () ->
              evaluate ~max_unroll ~symbolic ~tally:t ~memos ~tf_memo ~tf_key
                ~pre (Ir.Ctx.of_op pre) m ~top ~platform pt)
        in
        instr_merge instr t;
        Obs.Metrics.observe eval_seconds secs;
        Obs.Metrics.mark eval_rate 1.;
        let span_args =
          if not (Obs.Trace.enabled ()) then []
          else
            [
              ("symbolic", Obs.Json.Bool t.t_symbolic);
              ( "outcome",
                Obs.Json.String
                  (match r with
                  | Some ({ feasible; _ }, _) ->
                      if feasible then "feasible" else "infeasible"
                  | None -> "inapplicable") );
            ]
            @ (match t.t_fallback_reason with
              | Some reason -> [ ("fallback_reason", Obs.Json.String reason) ]
              | None -> [])
            @
            match r with
            | Some (ev, _) ->
                [ ("latency", Obs.Json.Int ev.estimate.Estimator.latency) ]
            | None -> []
        in
        (r, span_args))
  in
  let evaluated = ref [] in
  let explored = ref 0 in
  let modules : (point, Ir.op) Hashtbl.t = Hashtbl.create 32 in
  (* Keep transformed modules only for points on the current frontier;
     dominated points can never rejoin it (their dominators are never
     forgotten), so dropping them each round is safe. *)
  let prune_modules frontier =
    let keep = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace keep p.point ()) frontier;
    let drop =
      Hashtbl.fold
        (fun pt _ acc -> if Hashtbl.mem keep pt then acc else pt :: acc)
        modules []
    in
    List.iter (Hashtbl.remove modules) drop
  in
  let run_on_pool pool =
  (* The strategy searches through this window onto the engine's state;
     every mutable piece it sees ([seen], [evaluated], [explored]) is
     coordinator-owned and only updated between batches. *)
  let strat =
    strategy
      {
        Strategy.space = s;
        rng;
        samples;
        heuristic_seeds;
        platform;
        seen = (fun pt -> Hashtbl.mem seen (fst (key_of pt)));
        canon = (fun pt -> snd (key_of pt));
        evaluated = (fun () -> !evaluated);
        explored = (fun () -> !explored);
        emit_event =
          (fun ev fields ->
            Obs.Events.emit ev (fun () ->
                ("job", Obs.Json.String job) :: fields ()));
      }
  in
  Obs.Events.emit "dse.job.start" (fun () ->
      [
        ("job", Obs.Json.String job);
        ("top", Obs.Json.String top);
        ("strategy", Obs.Json.String strat.Strategy.name);
        ("samples", Obs.Json.Int samples);
        ("iterations", Obs.Json.Int iterations);
        ("seed", Obs.Json.Int seed);
        ("jobs", Obs.Json.Int jobs);
        ("window", Obs.Json.Int window);
        ("dsp_budget", Obs.Json.Int platform.Platform.dsp);
        ("space", Obs.Json.Int (space_size s));
      ]);
  (* ---- The windowed out-of-order executor ---------------------------------
     Proposals flow through three stages:

       proposal queue --admit--> in-flight window (ROB) --commit--> state

     [admit] resolves one proposal against [seen] (re-proposals drop without
     taking a slot) and the eval cache: a warm entry enters the reorder
     buffer as [Rob_cached], a cold one is submitted to the pool as
     [Rob_fresh]. Both occupy a window slot, so a warm run admits and
     commits on exactly the cold run's schedule. Workers complete out of
     order into the stream; [commit_upto] retires entries strictly in
     admission order, merging each result into the engine state
     ([explored], [evaluated], the eval cache, retained modules) and feeding
     the strategy's [observe] — the commit order, not worker scheduling,
     defines the engine's state, and the (point, result) sequence [observe]
     sees is identical warm or cold.

     Determinism contract: every commit is triggered by a deterministic
     condition — the window filling during [pump_queue], the commit horizon
     before a propose, or the final drain — never by a result merely being
     available. A result that finishes early parks in the stream until its
     turn, so the state at every propose/observe is a pure function of
     (seed, window), independent of [jobs] and worker timing. *)
  let stream = Parpool.stream ?on_wait:queue_wait pool in
  let dse_reg = Obs.Metrics.registry "dse" in
  let g_inflight = Obs.Metrics.gauge dse_reg "window.in_flight" in
  let g_commitq = Obs.Metrics.gauge dse_reg "window.commit_queue" in
  Obs.Metrics.set (Obs.Metrics.gauge dse_reg "window.size") (float_of_int window);
  let pq : point Queue.t = Queue.create () in
  let rob : rob_entry Queue.t = Queue.create () in
  let admitted = ref 0 and committed = ref 0 in
  let window_gauges () =
    Obs.Metrics.set g_inflight (float_of_int (!admitted - !committed));
    Obs.Metrics.set g_commitq (float_of_int (Parpool.completed stream))
  in
  let admit pt =
    let key, c = key_of pt in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      (match Eval_cache.find_opt cache key with
      | Some res -> Queue.add (Rob_cached (c, res)) rob
      | None ->
          let tf_key =
            let fp, perm, tiles, _ = key in
            (fp, perm, tiles)
          in
          let id =
            Parpool.submit stream (fun () ->
                batch_wrap (fun () -> eval_one ~tf_key c))
          in
          Queue.add (Rob_fresh (key, c, id)) rob);
      incr admitted;
      window_gauges ()
    end
  in
  (* Retire reorder-buffer entries, in admission order, until [committed]
     reaches [h]; everything committed here forms one [observe] chunk. A
     fresh entry whose result is not yet available blocks the coordinator —
     that wait is the [dse.commit_stall] span (absent when results arrive
     ahead of their turn). An evaluation failure re-raises on the
     coordinator with the first-by-admission-order exception after in-flight
     siblings drain (the stream empties, so the pool stays reusable) —
     exactly the legacy batch contract. *)
  let commit_upto h =
    let chunk = ref [] in
    while !committed < h do
      (match Queue.pop rob with
      | Rob_cached (c, res) ->
          incr explored;
          (match res with
          | Some ev -> evaluated := ev :: !evaluated
          | None -> ());
          chunk := (c, res) :: !chunk
      | Rob_fresh (key, c, id) -> (
          let r =
            match Parpool.take stream id with
            | Some r -> r
            | None ->
                Obs.Trace.with_span ~cat:"dse"
                  ~args:[ ("job", Obs.Json.String job) ]
                  "dse.commit_stall"
                  (fun () -> Parpool.await_result stream id)
          in
          match r with
          | Ok res ->
              Eval_cache.add cache key (Option.map fst res);
              incr explored;
              (match res with
              | Some (ev, m') ->
                  evaluated := ev :: !evaluated;
                  if ev.feasible then Hashtbl.replace modules c m'
              | None -> ());
              chunk := (c, Option.map fst res) :: !chunk
          | Error (e, bt) ->
              Queue.iter
                (function
                  | Rob_fresh (_, _, id') ->
                      ignore (Parpool.await_result stream id')
                  | Rob_cached _ -> ())
                rob;
              Queue.clear rob;
              Printexc.raise_with_backtrace e bt));
      incr committed
    done;
    window_gauges ();
    if !chunk <> [] then strat.Strategy.observe (List.rev !chunk)
  in
  let cap_ok () = window = 0 || !admitted - !committed < window in
  (* The deterministic commit horizon before a propose: everything but the
     freshest [window - 1] admissions must have retired. Committing exactly
     to the horizon — never beyond, even when more results are ready — is
     what keeps the [jobs = 1] schedule (where every result is ready
     instantly) identical to [jobs = N]. *)
  let horizon () =
    if window = 0 then !admitted else max !committed (!admitted - (window - 1))
  in
  (* Feed queued proposals into the window, retiring the oldest entry
     whenever the window is full: the steady state slides one-admit /
     one-commit, with workers up to [window] points ahead of the merge. *)
  let pump_queue () =
    while not (Queue.is_empty pq) do
      if cap_ok () then admit (Queue.pop pq)
      else commit_upto (!committed + 1)
    done
  in
  (* Step 1: the strategy's seed batch (by default the identity/no-op point
     plus heuristic anchors plus random samples, {!seed_points}) — drawn up
     front on the coordinator and admitted budget-free. *)
  List.iter (fun pt -> Queue.add pt pq) (strat.Strategy.seed_batch ());
  pump_queue ();
  (* Steps 2-4: strategy-driven traversal. Each round the engine commits to
     the horizon, snapshots the frontier, and asks the strategy for the next
     proposals; the batch is truncated to the remaining budget and pumped
     through the window. [iterations] budgets the post-seed proposals. *)
  let used = ref 0 in
  let continue_ = ref true in
  (* Frontier extraction is coordinator-only; workers may be evaluating
     concurrently, but they only touch *other* fields of [instr] (under its
     lock), so the unlocked single-writer [s_pareto] accumulation is safe. *)
  let pareto_now () =
    let t0 = Obs.Clock.now_ns () in
    let fr = pareto_frontier !evaluated in
    instr.s_pareto <- instr.s_pareto +. Obs.Clock.since_s t0;
    fr
  in
  (* Frontier-size evolution: one counter sample per traversal round, so the
     trace shows the search converging (and the explored count climbing). *)
  let sample_frontier frontier =
    Obs.Trace.counter ~cat:"dse" frontier_track
      [
        ("size", float_of_int (List.length frontier));
        ("explored", float_of_int !explored);
      ];
    Obs.Events.emit "dse.round" (fun () ->
        [
          ("job", Obs.Json.String job);
          ("explored", Obs.Json.Int !explored);
          ("frontier_size", Obs.Json.Int (List.length frontier));
          ( "frontier",
            (* Latency-increasing, like {!pareto_frontier} — the report's
               hypervolume reconstruction relies on this order. *)
            Obs.Json.List
              (List.map
                 (fun p ->
                   Obs.Json.Obj
                     [
                       ("l", Obs.Json.Int p.estimate.Estimator.latency);
                       ("a", Obs.Json.Int (area_of p.estimate));
                     ])
                 frontier) );
          ( "counters",
            Obs.Json.Obj
              (List.map
                 (fun (k, v) -> (k, Obs.Json.Int v))
                 (strat.Strategy.counters ())) );
        ]);
    match on_frontier with Some cb -> cb frontier !explored | None -> ()
  in
  while !continue_ && !used < iterations do
    commit_upto (horizon ());
    let frontier = pareto_now () in
    sample_frontier frontier;
    prune_modules frontier;
    match strat.Strategy.propose ~frontier ~remaining:(iterations - !used) with
    | [] -> continue_ := false
    | ps ->
        let batch = List.filteri (fun i _ -> i < iterations - !used) ps in
        used := !used + List.length batch;
        List.iter (fun pt -> Queue.add pt pq) batch;
        pump_queue ()
  done;
  (* Final drain: retire everything still in flight, then snapshot the
     frontier the run returns. *)
  commit_upto !admitted;
  let frontier = pareto_now () in
  sample_frontier frontier;
  prune_modules frontier;
  let best =
    match frontier with
    | [] -> None
    | p :: _ -> Some p (* lowest latency *)
  in
  let module_ =
    match best with
    | Some b -> (
        match Hashtbl.find_opt modules b.point with
        | Some m' -> m'
        | None -> (
            (* Expected whenever the best point merged from a shared/warm
               cache: [`Cached] merges carry no transformed module, so a
               fully warm replay pays exactly one [eval_one] here to
               rebuild it. With only fresh evaluations this is unreachable
               — frontier modules are retained by [prune_modules]. *)
            match eval_one b.point with Some (_, m') -> m' | None -> m))
    | None -> m
  in
  let stats =
    {
      jobs = Parpool.jobs pool;
      wall_seconds = Obs.Clock.since_s t_start;
      pre_hits = Eval_cache.hits pre_cache;
      pre_misses = Eval_cache.misses pre_cache;
      cache_hits = Eval_cache.hits cache - cache_h0;
      cache_misses = Eval_cache.misses cache - cache_m0;
      symbolic_points = instr.n_symbolic;
      fallback_points = instr.n_fallback;
      fallback_reasons = instr_reasons instr;
      est_memo_hits = Estimator.memo_hits memos - memo_h0;
      est_memo_misses = Estimator.memo_misses memos - memo_m0;
      tf_hits = Eval_cache.hits tf_memo;
      tf_misses = Eval_cache.misses tf_memo;
      worker_busy = Parpool.busy_fractions pool;
      stage_seconds = instr_stages instr;
      strategy = strat.Strategy.name;
      strategy_counters = strat.Strategy.counters ();
    }
  in
  record_metrics stats !explored;
  Obs.Events.emit "dse.job.end" (fun () ->
      [
        ("job", Obs.Json.String job);
        ("explored", Obs.Json.Int !explored);
        ("wall_s", Obs.Json.Float stats.wall_seconds);
        ("strategy", Obs.Json.String stats.strategy);
        ( "best_latency",
          match best with
          | Some b -> Obs.Json.Int b.estimate.Estimator.latency
          | None -> Obs.Json.Null );
        ( "counters",
          Obs.Json.Obj
            (List.map (fun (k, v) -> (k, Obs.Json.Int v)) stats.strategy_counters)
        );
      ]);
  { best; pareto = frontier; explored = !explored; module_; stats }
  in
  Obs.Trace.with_span ~cat:"dse"
    ~args:[ ("job", Obs.Json.String job); ("top", Obs.Json.String top) ]
    "dse.run"
    (fun () ->
      match pool_opt with
      | Some pool -> run_on_pool pool
      | None -> Parpool.with_pool ~jobs run_on_pool)
