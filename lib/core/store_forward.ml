(** The [-affine-store-forward] pass (§5.4): store-to-load forwarding and
    dead-store/dead-memory elimination.

    Rules implemented:
    1. Block-local forwarding: a load whose address (map + operands) matches
       a preceding store in the same block, with no intervening write to the
       memref, is replaced by the stored value.
    2. Dead store elimination: a store overwritten by a later store to the
       same address in the same block, with no intervening read of the
       memref, is dropped.
    3. Unused-memory elimination: a locally allocated memref that is never
       read has its stores and allocation removed. *)

open Mir
open Dialects

let access_key (o : Ir.op) =
  ( (Memref.accessed_memref o).Ir.vid,
    Attr.to_string (Ir.attr_exn o "map"),
    List.map (fun (v : Ir.value) -> v.Ir.vid) (Memref.access_indices o) )

(* Does op [o] (recursively) read/write the memref [vid]? Used to decide
   whether a region op kills forwarding. Calls kill everything. *)
let touches ~write_only vid o =
  Walk.exists
    (fun x ->
      Func.is_call x
      || (Memref.is_store x && (Memref.accessed_memref x).Ir.vid = vid)
      || ((not write_only) && Memref.is_load x && (Memref.accessed_memref x).Ir.vid = vid))
    o

(* Rule 1 + 2 within a block; returns rewritten ops and a substitution for
   forwarded loads. *)
let forward_block (b : Ir.block) subst =
  (* available: access key -> (stored value, the store op), for forwarding. *)
  let available : (int * string * int list, Ir.value * Ir.op) Hashtbl.t =
    Hashtbl.create 16
  in
  let invalidate_memref vid =
    let keys = Hashtbl.fold (fun ((m, _, _) as k) _ acc -> if m = vid then k :: acc else acc) available [] in
    List.iter (Hashtbl.remove available) keys
  in
  (* Invalidate only the entries a store may alias: provably-distinct
     addresses survive (essential after unrolling, where MAC chains to many
     distinct offsets of the same array interleave). *)
  let invalidate_may_alias (store : Ir.op) =
    let vid = (Memref.accessed_memref store).Ir.vid in
    let keys =
      Hashtbl.fold
        (fun ((m, _, _) as k) (_, prev) acc ->
          if m = vid && not (Affine_d.accesses_distinct store prev) then k :: acc
          else acc)
        available []
    in
    List.iter (Hashtbl.remove available) keys
  in
  let ops =
    List.filter_map
      (fun o ->
        if Memref.is_store o && o.Ir.name = "affine.store" then begin
          let k = access_key o in
          invalidate_may_alias o;
          Hashtbl.replace available k (Memref.stored_value o, o);
          Some o
        end
        else if Memref.is_load o && o.Ir.name = "affine.load" then begin
          match Hashtbl.find_opt available (access_key o) with
          | Some (v, _) ->
              subst := Ir.Value_map.add (Ir.result o).Ir.vid v !subst;
              None
          | None -> Some o
        end
        else begin
          (* Region ops / calls / plain memref ops invalidate what they may
             write. *)
          if o.Ir.regions <> [] || Func.is_call o || Memref.is_access o then begin
            let vids =
              Hashtbl.fold (fun (m, _, _) _ acc -> m :: acc) available []
              |> List.sort_uniq compare
            in
            List.iter
              (fun vid -> if touches ~write_only:true vid o then invalidate_memref vid)
              vids
          end;
          Some o
        end)
      b.Ir.bops
  in
  { b with Ir.bops = ops }

(* Dead store elimination within a block (backward scan). *)
let dead_stores_block (b : Ir.block) =
  let overwritten : (int * string * int list, Ir.op) Hashtbl.t = Hashtbl.create 16 in
  let keep = ref [] in
  List.iter
    (fun o ->
      if Memref.is_store o && o.Ir.name = "affine.store" then begin
        let k = access_key o in
        if Hashtbl.mem overwritten k then () (* drop: dead store *)
        else begin
          Hashtbl.replace overwritten k o;
          keep := o :: !keep
        end
      end
      else begin
        (* A read of a memref (direct or nested) clears the pending
           overwrites it may alias; loads with provably distinct addresses
           keep theirs. *)
        let clear_for_load (load : Ir.op) =
          let vid = (Memref.accessed_memref load).Ir.vid in
          let keys =
            Hashtbl.fold
              (fun ((m, _, _) as k) later acc ->
                if m = vid && not (Affine_d.accesses_distinct load later) then
                  k :: acc
                else acc)
              overwritten []
          in
          List.iter (Hashtbl.remove overwritten) keys
        in
        if Memref.is_load o && o.Ir.name = "affine.load" then clear_for_load o
        else begin
          let vids =
            Hashtbl.fold (fun (m, _, _) _ acc -> m :: acc) overwritten []
            |> List.sort_uniq compare
          in
          List.iter
            (fun vid ->
              if touches ~write_only:false vid o then begin
                let keys =
                  Hashtbl.fold
                    (fun ((m, _, _) as k) _ acc -> if m = vid then k :: acc else acc)
                    overwritten []
                in
                List.iter (Hashtbl.remove overwritten) keys
              end)
            vids
        end;
        keep := o :: !keep
      end)
    (List.rev b.Ir.bops);
  { b with Ir.bops = !keep }

(* Rule 3: allocs never loaded -> drop their stores and the alloc. *)
let drop_writeonly_memrefs f =
  let loaded = Hashtbl.create 32 in
  Walk.iter_op
    (fun o ->
      if Memref.is_load o then
        Hashtbl.replace loaded (Memref.accessed_memref o).Ir.vid ()
      else if Func.is_call o || o.Ir.name = "memref.copy" then
        List.iter (fun (v : Ir.value) -> Hashtbl.replace loaded v.Ir.vid ()) o.Ir.operands
      else if Func.is_return o then
        List.iter (fun (v : Ir.value) -> Hashtbl.replace loaded v.Ir.vid ()) o.Ir.operands)
    f;
  (* Function argument memrefs are externally visible: never drop. *)
  List.iter (fun (v : Ir.value) -> Hashtbl.replace loaded v.Ir.vid ()) (Func.func_args f);
  Walk.expand_in_op
    (fun o ->
      if o.Ir.name = "memref.alloc" && not (Hashtbl.mem loaded (Ir.result o).Ir.vid)
      then []
      else if Memref.is_store o && not (Hashtbl.mem loaded (Memref.accessed_memref o).Ir.vid)
      then
        if
          (* only for locally allocated (non-argument) memrefs *)
          not
            (List.exists
               (fun (a : Ir.value) -> a.Ir.vid = (Memref.accessed_memref o).Ir.vid)
               (Func.func_args f))
        then []
        else [ o ]
      else [ o ])
    f

let run_on_func _ctx f =
  let subst = ref Ir.Value_map.empty in
  let rec rewrite (o : Ir.op) : Ir.op =
    {
      o with
      Ir.regions =
        List.map
          (List.map (fun b ->
               let b = { b with Ir.bops = List.map rewrite b.Ir.bops } in
               dead_stores_block (forward_block b subst)))
          o.Ir.regions;
    }
  in
  let f = rewrite f in
  let f = if Ir.Value_map.is_empty !subst then f else Walk.substitute_uses !subst f in
  drop_writeonly_memrefs f

let pass = Pass.on_funcs "affine-store-forward" run_on_func
