(** The [-loop-pipelining] pass (§5.3.1): a legal pipeline directive allows no
    hierarchy inside the target loop, so the pass first legalizes the target
    by fully unrolling all contained loops (and requiring contained calls to
    be pipelined functions). On success the loop is annotated with the
    pipeline directive (target II), and every enclosing perfectly-nested loop
    is annotated [flatten] — exactly the Figure 5 (e)/(E) transformation. *)

open Mir
open Dialects

(** Pipeline the loop at depth [depth] of the band rooted at [root]
    (0 = outermost). Loops nested below the target are fully unrolled; loops
    above are marked [flatten]. Returns [None] when legalization fails. *)
let pipeline_band ctx ?(target_ii = 1) ~depth root =
  let band = Affine_d.band root in
  if depth >= List.length band then None
  else
    let target = List.nth band depth in
    match Loop_unroll.unroll_nested ctx target with
    | None -> None
    | Some legalized ->
        if Walk.exists Func.is_call legalized then None
        else
          let pipelined =
            Hlscpp.set_loop_directive legalized
              {
                Hlscpp.default_loop_directive with
                Hlscpp.loop_pipeline = true;
                loop_target_ii = target_ii;
              }
          in
          (* Rebuild the chain above the target, flattening perfect outer
             loops. *)
          let outer = List.filteri (fun i _ -> i < depth) band in
          let rec build = function
            | [] -> pipelined
            | l :: rest ->
                let inner = build rest in
                let body =
                  List.map
                    (fun o -> if Affine_d.is_for o then inner else o)
                    (Ir.body_ops l)
                in
                let l' = Ir.with_body l body in
                Hlscpp.set_loop_directive l'
                  { Hlscpp.default_loop_directive with Hlscpp.flatten = true }
          in
          Some (build outer)

(** Symbolic twin of {!pipeline_band}: annotate the target with the pipeline
    directive and the enclosing perfect loops with [flatten] WITHOUT
    materializing the nested full unroll — {!Unroll_model} later expands the
    intra-tile iterations analytically for QoR estimation. Returns [None] in
    exactly the situations where {!pipeline_band} would: depth out of range, a
    nested loop that full unrolling would reject (variable bounds or trip
    count beyond the limit), or a call inside the target. *)
let annotate_band ?(unroll_limit = 4096) ?(target_ii = 1) ~depth root =
  let band = Affine_d.band root in
  if depth >= List.length band then None
  else
    let target = List.nth band depth in
    let nested_ok =
      List.for_all
        (Loop_unroll.unrollable ~limit:unroll_limit)
        (Walk.collect (fun o -> o != target && Affine_d.is_for o) target)
    in
    (* A call below a trip-0 nested loop vanishes during materialized
       unrolling, so it must not disqualify the annotation either. *)
    let rec live_call (o : Ir.op) =
      Func.is_call o
      || List.exists
           (List.exists (fun (b : Ir.block) ->
                List.exists
                  (fun c ->
                    (not
                       (Affine_d.is_for c && Loop_unroll.const_trip c = Some 0))
                    && live_call c)
                  b.Ir.bops))
           o.Ir.regions
    in
    if (not nested_ok) || live_call target then None
    else
      let pipelined =
        Hlscpp.set_loop_directive target
          {
            Hlscpp.default_loop_directive with
            Hlscpp.loop_pipeline = true;
            loop_target_ii = target_ii;
          }
      in
      let outer = List.filteri (fun i _ -> i < depth) band in
      let rec build = function
        | [] -> pipelined
        | l :: rest ->
            let inner = build rest in
            let body =
              List.map
                (fun o -> if Affine_d.is_for o then inner else o)
                (Ir.body_ops l)
            in
            let l' = Ir.with_body l body in
            Hlscpp.set_loop_directive l'
              { Hlscpp.default_loop_directive with Hlscpp.flatten = true }
      in
      Some (build outer)

(** Pass form: pipeline the innermost loop of every band. *)
let run_on_func ?(target_ii = 1) ctx f =
  Ir.with_body f
    (List.map
       (fun o ->
         if Affine_d.is_for o then
           let band = Affine_d.band o in
           match pipeline_band ctx ~target_ii ~depth:(List.length band - 1) o with
           | Some o' -> o'
           | None -> o
         else o)
       (Func.func_body f))

let pass ?target_ii () =
  Pass.on_funcs "loop-pipelining" (fun ctx f -> run_on_func ?target_ii ctx f)
