(** The [-loop-pipelining] pass (§5.3.1): a legal pipeline directive allows no
    hierarchy inside the target loop, so the pass first legalizes the target
    by fully unrolling all contained loops (and requiring contained calls to
    be pipelined functions). On success the loop is annotated with the
    pipeline directive (target II), and every enclosing perfectly-nested loop
    is annotated [flatten] — exactly the Figure 5 (e)/(E) transformation. *)

open Mir
open Dialects

(** Pipeline the loop at depth [depth] of the band rooted at [root]
    (0 = outermost). Loops nested below the target are fully unrolled; loops
    above are marked [flatten]. Returns [None] when legalization fails. *)
let pipeline_band ctx ?(target_ii = 1) ~depth root =
  let band = Affine_d.band root in
  if depth >= List.length band then None
  else
    let target = List.nth band depth in
    match Loop_unroll.unroll_nested ctx target with
    | None -> None
    | Some legalized ->
        if Walk.exists Func.is_call legalized then None
        else
          let pipelined =
            Hlscpp.set_loop_directive legalized
              {
                Hlscpp.default_loop_directive with
                Hlscpp.loop_pipeline = true;
                loop_target_ii = target_ii;
              }
          in
          (* Rebuild the chain above the target, flattening perfect outer
             loops. *)
          let outer = List.filteri (fun i _ -> i < depth) band in
          let rec build = function
            | [] -> pipelined
            | l :: rest ->
                let inner = build rest in
                let body =
                  List.map
                    (fun o -> if Affine_d.is_for o then inner else o)
                    (Ir.body_ops l)
                in
                let l' = Ir.with_body l body in
                Hlscpp.set_loop_directive l'
                  { Hlscpp.default_loop_directive with Hlscpp.flatten = true }
          in
          Some (build outer)

(** Pass form: pipeline the innermost loop of every band. *)
let run_on_func ?(target_ii = 1) ctx f =
  Ir.with_body f
    (List.map
       (fun o ->
         if Affine_d.is_for o then
           let band = Affine_d.band o in
           match pipeline_band ctx ~target_ii ~depth:(List.length band - 1) o with
           | Some o' -> o'
           | None -> o
         else o)
       (Func.func_body f))

let pass ?target_ii () =
  Pass.on_funcs "loop-pipelining" (fun ctx f -> run_on_func ?target_ii ctx f)
