(** Lowering conversions between abstraction levels (the Figure 1 example):
    - {!affine_to_scf}: [affine.for/if/load/store/apply] → [scf.for/if] +
      [memref.load/store] with explicitly materialized index arithmetic;
    - {!scf_to_cf}: structured control flow → unstructured basic blocks with
      [cf.br]/[cf.cond_br] (multi-block regions), demonstrating the loss of
      structure the multi-level approach avoids. *)

open Mir
open Dialects

module A = Affine

(* Materialize an affine expression as arith ops over the given operand
   values. Returns (ops, value). *)
let rec materialize ctx (operands : Ir.value array) (e : A.Expr.t) :
    Ir.op list * Ir.value =
  match A.Expr.simplify e with
  | A.Expr.Const c ->
      let op, v = Arith.constant_i ctx c in
      ([ op ], v)
  | A.Expr.Dim i -> ([], operands.(i))
  | e -> materialize_raw ctx operands e

and materialize_raw ctx operands e =
  let bin name a b =
    let ops_a, va = materialize ctx operands a in
    let ops_b, vb = materialize ctx operands b in
    let op, v = Arith.binary ctx name va vb ~ty:Ty.Index in
    (ops_a @ ops_b @ [ op ], v)
  in
  match e with
  | A.Expr.Const c ->
      let op, v = Arith.constant_i ctx c in
      ([ op ], v)
  | A.Expr.Dim i -> ([], operands.(i))
  | A.Expr.Sym _ -> invalid_arg "Lower.materialize: symbols unsupported"
  | A.Expr.Add (a, b) -> bin "arith.addi" a b
  | A.Expr.Mul (a, b) -> bin "arith.muli" a b
  | A.Expr.Mod (a, b) -> bin "arith.remi" a b
  | A.Expr.Floor_div (a, b) | A.Expr.Ceil_div (a, b) -> bin "arith.divi" a b

(* ---- affine -> scf ---------------------------------------------------------- *)

let rec lower_affine_op ctx (o : Ir.op) : Ir.op list =
  match o.Ir.name with
  | "affine.for" ->
      let b = Affine_d.bounds o in
      let lower_bound fold_name map operands =
        let opnds = Array.of_list operands in
        match A.Map.results map with
        | [ e ] -> materialize ctx opnds e
        | es ->
            (* multi-result bounds: fold with max/min *)
            List.fold_left
              (fun (ops, acc) e ->
                let ops_e, v = materialize ctx opnds e in
                let op, v' = Arith.binary ctx fold_name acc v ~ty:Ty.Index in
                (ops @ ops_e @ [ op ], v'))
              (let ops0, v0 = materialize ctx opnds (List.hd es) in
               (ops0, v0))
              (List.tl es)
      in
      let lb_ops, lb = lower_bound "arith.maxi" b.Affine_d.lb_map b.Affine_d.lb_operands in
      let ub_ops, ub = lower_bound "arith.mini" b.Affine_d.ub_map b.Affine_d.ub_operands in
      let step_op, step = Arith.constant_i ctx b.Affine_d.step in
      let iv = Affine_d.induction_var o in
      let body = List.concat_map (lower_affine_op ctx) (Ir.body_ops o) in
      lb_ops @ ub_ops @ [ step_op; Scf.for_raw ~lb ~ub ~step ~iv body ]
  | "affine.load" ->
      let mem = Memref.accessed_memref o in
      let opnds = Array.of_list (Memref.access_indices o) in
      let idx_ops, idxs =
        List.fold_left
          (fun (ops, vs) e ->
            let ops_e, v = materialize ctx opnds e in
            (ops @ ops_e, vs @ [ v ]))
          ([], [])
          (A.Map.results (Affine_d.access_map o))
      in
      idx_ops @ [ Ir.mk "memref.load" ~operands:(mem :: idxs) ~results:o.Ir.results ]
  | "affine.store" ->
      let v = Memref.stored_value o in
      let mem = Memref.accessed_memref o in
      let opnds = Array.of_list (Memref.access_indices o) in
      let idx_ops, idxs =
        List.fold_left
          (fun (ops, vs) e ->
            let ops_e, value = materialize ctx opnds e in
            (ops @ ops_e, vs @ [ value ]))
          ([], [])
          (A.Map.results (Affine_d.access_map o))
      in
      idx_ops @ [ Ir.mk "memref.store" ~operands:(v :: mem :: idxs) ~results:[] ]
  | "affine.apply" ->
      let opnds = Array.of_list o.Ir.operands in
      let ops, v =
        materialize ctx opnds (List.hd (A.Map.results (Affine_d.access_map o)))
      in
      (* rebind the result: emit an identity addi 0 to keep the SSA name *)
      let zop, zero = Arith.constant_i ctx 0 in
      ops @ [ zop; Ir.mk "arith.addi" ~operands:[ v; zero ] ~results:o.Ir.results ]
  | "affine.if" ->
      let set = Affine_d.if_set o in
      let opnds = Array.of_list o.Ir.operands in
      (* conjunction of the constraints *)
      let cond_ops, cond =
        List.fold_left
          (fun (ops, acc) (c : A.Set_.constraint_) ->
            let e_ops, v = materialize ctx opnds c.A.Set_.expr in
            let zop, zero = Arith.constant_i ctx 0 in
            let cop, cv =
              Arith.cmpi ctx (if c.A.Set_.eq then "eq" else "sge") v zero
            in
            match acc with
            | None -> (ops @ e_ops @ [ zop; cop ], Some cv)
            | Some prev ->
                let aop, av = Arith.binary ctx "arith.andi" prev cv ~ty:Ty.I1 in
                (ops @ e_ops @ [ zop; cop; aop ], Some av))
          ([], None) (A.Set_.constraints set)
      in
      let cond_ops, cond =
        match cond with
        | Some c -> (cond_ops, c)
        | None ->
            let op, v = Arith.constant_i ctx ~ty:Ty.I1 1 in
            ([ op ], v)
      in
      let then_ = List.concat_map (lower_affine_op ctx) (List.concat_map (fun (b : Ir.block) -> b.Ir.bops) (Ir.region o 0)) in
      let else_ = List.concat_map (lower_affine_op ctx) (List.concat_map (fun (b : Ir.block) -> b.Ir.bops) (Ir.region o 1)) in
      cond_ops @ [ Scf.if_ ~cond ~then_ ~else_ ]
  | "affine.yield" -> [ Scf.yield ]
  | _ ->
      [
        {
          o with
          Ir.regions =
            List.map
              (List.map (fun (b : Ir.block) ->
                   { b with Ir.bops = List.concat_map (lower_affine_op ctx) b.Ir.bops }))
              o.Ir.regions;
        };
      ]

let affine_to_scf =
  Pass.on_funcs "lower-affine-to-scf" (fun ctx f ->
      Ir.with_body f (List.concat_map (lower_affine_op ctx) (Func.func_body f)))

(* ---- scf -> cf (unstructured) -------------------------------------------------
   Each function becomes a single region whose blocks are linked by
   [cf.br]/[cf.cond_br] terminators carrying a "dest"/"true_dest"/"false_dest"
   block-index attribute (our minimal CFG encoding). *)

type cfg = { mutable blocks : (Ir.value list * Ir.op list) list }

let add_block cfg args =
  cfg.blocks <- cfg.blocks @ [ (args, []) ];
  List.length cfg.blocks - 1

let append cfg i ops =
  cfg.blocks <-
    List.mapi (fun j (args, body) -> if j = i then (args, body @ ops) else (args, body)) cfg.blocks

let br ~dest operands =
  Ir.mk "cf.br" ~attrs:[ ("dest", Attr.Int dest) ] ~operands ~results:[]

let cond_br cond ~true_dest ~false_dest =
  Ir.mk "cf.cond_br"
    ~attrs:[ ("true_dest", Attr.Int true_dest); ("false_dest", Attr.Int false_dest) ]
    ~operands:[ cond ] ~results:[]

(* Flatten the ops of one block-context into the CFG; returns the block index
   where control continues. *)
let rec flatten ctx cfg cur (ops : Ir.op list) : int =
  match ops with
  | [] -> cur
  | o :: rest -> (
      match o.Ir.name with
      | "scf.for" ->
          let lb, ub, step = Scf.for_bounds o in
          let iv = Scf.induction_var o in
          (* header block with the iv as block argument *)
          let header = add_block cfg [ iv ] in
          append cfg cur [ br ~dest:header [ lb ] ];
          let body_start = add_block cfg [] in
          let exit = add_block cfg [] in
          let cmp, cv = Arith.cmpi ctx "slt" iv ub in
          append cfg header [ cmp; cond_br cv ~true_dest:body_start ~false_dest:exit ];
          let body_end =
            flatten ctx cfg body_start
              (List.filter (fun x -> x.Ir.name <> "scf.yield") (Ir.body_ops o))
          in
          let incr, iv' = Arith.addi ctx iv step in
          append cfg body_end [ incr; br ~dest:header [ iv' ] ];
          flatten ctx cfg exit rest
      | "scf.if" ->
          let cond = List.hd o.Ir.operands in
          let then_start = add_block cfg [] in
          let else_start = add_block cfg [] in
          let join = add_block cfg [] in
          append cfg cur [ cond_br cond ~true_dest:then_start ~false_dest:else_start ];
          let t_end =
            flatten ctx cfg then_start
              (List.filter (fun x -> x.Ir.name <> "scf.yield")
                 (List.concat_map (fun (b : Ir.block) -> b.Ir.bops) (Ir.region o 0)))
          in
          append cfg t_end [ br ~dest:join [] ];
          let e_end =
            flatten ctx cfg else_start
              (List.filter (fun x -> x.Ir.name <> "scf.yield")
                 (List.concat_map (fun (b : Ir.block) -> b.Ir.bops) (Ir.region o 1)))
          in
          append cfg e_end [ br ~dest:join [] ];
          flatten ctx cfg join rest
      | _ ->
          append cfg cur [ o ];
          flatten ctx cfg cur rest)

let scf_to_cf =
  Pass.on_funcs "lower-scf-to-cf" (fun ctx f ->
      let args = Func.func_args f in
      let cfg = { blocks = [] } in
      let entry = add_block cfg args in
      let (_ : int) = flatten ctx cfg entry (Func.func_body f) in
      let region =
        List.map (fun (bargs, bops) -> { Ir.bargs; Ir.bops = bops }) cfg.blocks
      in
      { f with Ir.regions = [ region ] })
