(** The [-affine-loop-tile] pass (§5.2.4): tile a perfect, constant-bound
    loop band with per-loop tile sizes. Following the paper's DSE flow, all
    generated intra-tile (point) loops are sunk into the innermost loop
    region — ready to be fully unrolled for computation parallelism. Each
    tiled loop's uses are rewritten to [tile_iv + point_iv] via
    [affine.apply], which canonicalization composes into the access maps.
    Tiling legality (band permutability) is assumed validated by the caller
    (the DSE checks dependences before selecting tile sizes; identity tiling
    is always legal). *)

open Mir
open Dialects

module A = Affine

(** Tile the band rooted at its outermost loop with [sizes] (one per band
    loop, outermost first; size 1 leaves a loop untiled). Sizes must divide
    the trip counts; non-dividing sizes are clamped to 1. Returns [None]
    when the band is imperfect or has variable bounds. *)
let tile_band ctx band ~sizes : Ir.op option =
  let n = List.length band in
  if List.length sizes <> n then invalid_arg "Loop_tile.tile_band: arity";
  if (not (Affine_d.band_is_perfect band)) || n = 0 then None
  else if not (List.for_all Affine_d.has_const_bounds band) then None
  else begin
    let infos =
      List.map2
        (fun l s ->
          let lb, ub = Option.get (Affine_d.const_bounds l) in
          let step = (Affine_d.bounds l).Affine_d.step in
          let trip = max 0 (A.Expr.ceil_div (ub - lb) step) in
          let s = if s > 1 && trip mod s = 0 then s else 1 in
          (l, s, lb, ub, step))
        band sizes
    in
    if List.for_all (fun (_, s, _, _, _) -> s = 1) infos then None
    else begin
      let innermost = List.nth band (n - 1) in
      let inner_body =
        List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops innermost)
      in
      (* Build tile loops (reusing bounds, step widened), point loops, and
         the apply ops + substitution for tiled ivs. *)
      let applies = ref [] and subst = ref Ir.Value_map.empty in
      let tile_loops, point_loops =
        List.fold_left
          (fun (tls, pls) (l, s, _lb, _ub, step) ->
            if s = 1 then (tls @ [ `Keep l ], pls)
            else begin
              let old_iv = Affine_d.induction_var l in
              let ivt = Ir.Ctx.fresh ctx Ty.Index in
              let ivp = Ir.Ctx.fresh ctx Ty.Index in
              let apply_op, combined =
                Affine_d.apply ctx
                  ~map:
                    (A.Map.make ~num_dims:2 ~num_syms:0
                       [ A.Expr.add (A.Expr.dim 0) (A.Expr.dim 1) ])
                  [ ivt; ivp ]
              in
              applies := !applies @ [ apply_op ];
              subst := Ir.Value_map.add old_iv.Ir.vid combined !subst;
              ( tls @ [ `Tile (l, ivt, s, step) ],
                pls @ [ (ivp, s, step) ] )
            end)
          ([], []) infos
      in
      let new_inner_body =
        !applies @ Walk.substitute_uses_in_ops !subst inner_body @ [ Affine_d.yield ]
      in
      (* Innermost point loop holds the body; wrap point loops inside-out. *)
      let point_nest =
        List.fold_right
          (fun (ivp, s, step) inner_ops ->
            [
              Affine_d.for_op
                ~lb_map:(A.Map.constant [ 0 ])
                ~lb_operands:[]
                ~ub_map:(A.Map.constant [ s * step ])
                ~ub_operands:[] ~step ~iv:ivp inner_ops;
              Affine_d.yield;
            ])
          point_loops new_inner_body
      in
      (* Wrap tile loops outside-in. *)
      let rec build = function
        | [] -> point_nest
        | `Keep l :: rest -> [ Ir.with_body l (build rest); Affine_d.yield ]
        | `Tile (l, ivt, s, step) :: rest ->
            let b = Affine_d.bounds l in
            let l' =
              Affine_d.for_op ~lb_map:b.Affine_d.lb_map
                ~lb_operands:b.Affine_d.lb_operands ~ub_map:b.Affine_d.ub_map
                ~ub_operands:b.Affine_d.ub_operands ~step:(s * step) ~iv:ivt
                (build rest)
            in
            (* Preserve any directive attributes of the original loop. *)
            let l' =
              List.fold_left
                (fun acc (k, v) -> if k = "hlscpp.loop_directive" then Ir.set_attr acc k v else acc)
                l' l.Ir.attrs
            in
            [ l'; Affine_d.yield ]
      in
      match build tile_loops with
      | [ root; _yield ] -> Some root
      | [ root ] -> Some root
      | _ -> None
    end
  end

(** Tiling legality for the standalone pass: sinking all point loops
    innermost interleaves every band dimension, which is semantics-preserving
    iff the band is fully permutable (all dependence components non-negative).
    A single loop is always legal — strip-mining alone preserves the
    iteration order exactly. Found by differential fuzzing: tiling a band
    with backward or unanalyzable (non-linear access) dependences reordered
    dependent iterations. *)
let band_tiling_legal ~scope band =
  List.length band <= 1
  || Analysis.Dependence.fully_permutable (Loop_order_opt.band_deps ~scope band)

(** Pass form: tile every band with a uniform [tile_size] on each loop,
    skipping bands where tiling is not provably legal. *)
let run_on_func ~tile_size ctx f =
  Ir.with_body f
    (List.map
       (fun o ->
         if Affine_d.is_for o then
           let band = Affine_d.band o in
           if not (band_tiling_legal ~scope:f band) then o
           else
             match tile_band ctx band ~sizes:(List.map (fun _ -> tile_size) band) with
             | Some root -> root
             | None -> o
         else o)
       (Func.func_body f))

let pass ~tile_size =
  Pass.on_funcs "affine-loop-tile" (fun ctx f -> run_on_func ~tile_size ctx f)
