(** The [-affine-loop-fusion] pass (the loop [merge] directive, §4.3.2):
    fuses adjacent sibling loop nests with identical bounds to improve data
    locality and reduce loop control overhead. Fusion of [L1; L2] is applied
    when, for every memref stored by either loop, every pair of accesses
    (one from each loop) has identical index expressions as a function of the
    induction variable — i.e. the loops are element-wise aligned and fusion
    cannot reorder conflicting accesses. *)

open Mir
open Dialects
open Analysis

module A = Affine

let same_bounds l1 l2 =
  let b1 = Affine_d.bounds l1 and b2 = Affine_d.bounds l2 in
  Affine_d.has_const_bounds l1 && Affine_d.has_const_bounds l2
  && Affine_d.const_bounds l1 = Affine_d.const_bounds l2
  && b1.Affine_d.step = b2.Affine_d.step

(* Accesses of a loop in terms of its own iv (Dim 0) plus outer values
   resolved as constants where possible. *)
let loop_accesses ~scope l =
  Mem_access.collect ~scope ~basis:[ Affine_d.induction_var l ] l

let fusion_legal ~scope l1 l2 =
  (* Any access we cannot normalize over the loop's own iv vetoes fusion. *)
  let opaque = ref false in
  let on_opaque _ = opaque := true in
  let a1 =
    Mem_access.collect ~on_opaque ~scope ~basis:[ Affine_d.induction_var l1 ] l1
  and a2 =
    Mem_access.collect ~on_opaque ~scope ~basis:[ Affine_d.induction_var l2 ] l2
  in
  (not !opaque)
  && List.for_all
       (fun (x : Mem_access.t) ->
         List.for_all
           (fun (y : Mem_access.t) ->
             x.Mem_access.memref.Ir.vid <> y.Mem_access.memref.Ir.vid
             || (not (x.Mem_access.is_store || y.Mem_access.is_store))
             || List.length x.Mem_access.exprs = List.length y.Mem_access.exprs
                && List.for_all2
                     (fun ex ey -> A.Expr.equal (A.Expr.simplify ex) (A.Expr.simplify ey))
                     x.Mem_access.exprs y.Mem_access.exprs)
           a2)
       a1

(** Fuse [l2] into [l1]: l2's body is appended to l1's with l2's iv replaced
    by l1's. *)
let fuse ctx l1 l2 =
  let iv1 = Affine_d.induction_var l1 and iv2 = Affine_d.induction_var l2 in
  let body2 = List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops l2) in
  let subst = Ir.Value_map.singleton iv2.Ir.vid iv1 in
  let body2', _ = Clone.ops ~subst ctx body2 in
  let body1 = List.filter (fun x -> x.Ir.name <> "affine.yield") (Ir.body_ops l1) in
  Ir.with_body l1 (body1 @ body2' @ [ Affine_d.yield ])

(** Fuse adjacent fusable loops in every block, left to right, to fixpoint
    within the block. Pure scalar ops sitting between two loops (leftover
    bound computations) do not block adjacency: they are hoisted before the
    fused loop. *)
let fuse_in_ops ctx ~scope ops =
  let rec span_pure acc = function
    | o :: rest when Arith.is_pure o -> span_pure (o :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | l1 :: rest when Affine_d.is_for l1 -> (
        let pures, tail = span_pure [] rest in
        match tail with
        | l2 :: tail'
          when Affine_d.is_for l2 && same_bounds l1 l2 && fusion_legal ~scope l1 l2 ->
            (* hoist the in-between pure ops before the fused loop *)
            go (List.rev_append pures acc) (fuse ctx l1 l2 :: tail')
        | _ -> go (l1 :: acc) rest)
    | o :: rest -> go (o :: acc) rest
    | [] -> List.rev acc
  in
  go [] ops

let run_on_func ctx f =
  let rec rewrite (o : Ir.op) : Ir.op =
    {
      o with
      Ir.regions =
        List.map
          (List.map (fun b ->
               { b with Ir.bops = fuse_in_ops ctx ~scope:f (List.map rewrite b.Ir.bops) }))
          o.Ir.regions;
    }
  in
  rewrite f

let pass = Pass.on_funcs "affine-loop-fusion" run_on_func
