(** Typed metrics in named registries: monotonic counters, gauges, and
    summary histograms. Counters and gauges are lock-free (a CAS loop over an
    [Atomic] cell) and safe to bump from any domain; histogram observations
    serialize on a per-histogram mutex (observations are rare relative to the
    work they measure). Instruments are get-or-create by (registry, name) —
    looking the same name up twice returns the same cell, so modules can
    re-resolve instruments without threading handles around.

    Unlike tracing, metrics are always on: an increment is a few nanoseconds,
    and the cells only turn into output when an exporter ({!write_jsonl},
    {!pp_summary}) is asked for them. *)

type counter = { c_v : float Atomic.t }
type gauge = { g_v : float Atomic.t }

type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument = C of counter | G of gauge | H of histogram

type registry = {
  r_name : string;
  r_lock : Mutex.t;
  mutable r_items : (string * instrument) list;  (** insertion order, newest first *)
}

let registries_lock = Mutex.create ()
let all_registries : registry list ref = ref []

(** The registry named [name], created on first use. *)
let registry name =
  Mutex.lock registries_lock;
  let r =
    match List.find_opt (fun r -> r.r_name = name) !all_registries with
    | Some r -> r
    | None ->
        let r = { r_name = name; r_lock = Mutex.create (); r_items = [] } in
        all_registries := r :: !all_registries;
        r
  in
  Mutex.unlock registries_lock;
  r

let registries () =
  Mutex.lock registries_lock;
  let rs = !all_registries in
  Mutex.unlock registries_lock;
  List.sort (fun a b -> compare a.r_name b.r_name) rs

(** Drop every registry (test isolation; running instruments handed out
    earlier keep working but are no longer exported). *)
let reset () =
  Mutex.lock registries_lock;
  all_registries := [];
  Mutex.unlock registries_lock

let find_or_make r name make classify =
  Mutex.lock r.r_lock;
  let i =
    match List.assoc_opt name r.r_items with
    | Some i -> i
    | None ->
        let i = make () in
        r.r_items <- (name, i) :: r.r_items;
        i
  in
  Mutex.unlock r.r_lock;
  match classify i with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s/%s already exists with another type"
           r.r_name name)

let counter r name =
  find_or_make r name
    (fun () -> C { c_v = Atomic.make 0. })
    (function C c -> Some c | _ -> None)

let gauge r name =
  find_or_make r name
    (fun () -> G { g_v = Atomic.make 0. })
    (function G g -> Some g | _ -> None)

let histogram r name =
  find_or_make r name
    (fun () ->
      H
        {
          h_lock = Mutex.create ();
          h_count = 0;
          h_sum = 0.;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
        })
    (function H h -> Some h | _ -> None)

(* CAS loop: [Atomic.compare_and_set] on the boxed float compares the box we
   just read, so the update is atomic under contention from any number of
   domains. *)
let rec atomic_add cell d =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. d)) then atomic_add cell d

let add c d = atomic_add c.c_v d
let incr c = add c 1.
let value c = Atomic.get c.c_v
let set g v = Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

let observe h v =
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  Mutex.unlock h.h_lock

(* ---- Export --------------------------------------------------------------- *)

let instrument_fields = function
  | C c -> [ ("type", Json.String "counter"); ("value", Json.Float (value c)) ]
  | G g -> [ ("type", Json.String "gauge"); ("value", Json.Float (gauge_value g)) ]
  | H h ->
      Mutex.lock h.h_lock;
      let count = h.h_count and sum = h.h_sum and mn = h.h_min and mx = h.h_max in
      Mutex.unlock h.h_lock;
      [
        ("type", Json.String "histogram");
        ("count", Json.Int count);
        ("sum", Json.Float sum);
        ("min", Json.Float (if count = 0 then 0. else mn));
        ("max", Json.Float (if count = 0 then 0. else mx));
        ("mean", Json.Float (if count = 0 then 0. else sum /. float_of_int count));
      ]

(** One JSON object per metric:
    [{"registry": ..., "metric": ..., "type": ..., ...}], metrics in
    registration order within each registry. *)
let rows () =
  List.concat_map
    (fun r ->
      Mutex.lock r.r_lock;
      let items = List.rev r.r_items in
      Mutex.unlock r.r_lock;
      List.map
        (fun (name, i) ->
          Json.Obj
            ([ ("registry", Json.String r.r_name); ("metric", Json.String name) ]
            @ instrument_fields i))
        items)
    (registries ())

(** One JSON object for the whole process: registries keyed by name, each an
    object of its metrics — the shape a status/introspection endpoint
    returns. Nested rather than row-per-metric so consumers can index
    [.dse."eval_cache.hit_rate"] directly. *)
let snapshot () =
  Json.Obj
    (List.map
       (fun r ->
         Mutex.lock r.r_lock;
         let items = List.rev r.r_items in
         Mutex.unlock r.r_lock;
         ( r.r_name,
           Json.Obj
             (List.map (fun (name, i) -> (name, Json.Obj (instrument_fields i))) items)
         ))
       (registries ()))

(** Write the metrics as JSON Lines (one object per line). *)
let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (Json.to_string row);
          output_char oc '\n')
        (rows ()))

let pp_value fmt = function
  | C c -> Fmt.pf fmt "%.6g" (value c)
  | G g -> Fmt.pf fmt "%.6g" (gauge_value g)
  | H h ->
      Mutex.lock h.h_lock;
      let count = h.h_count and sum = h.h_sum and mn = h.h_min and mx = h.h_max in
      Mutex.unlock h.h_lock;
      if count = 0 then Fmt.pf fmt "count=0"
      else
        Fmt.pf fmt "count=%d mean=%.6g min=%.6g max=%.6g" count
          (sum /. float_of_int count)
          mn mx

(** Human-readable dump of every registry. *)
let pp_summary fmt () =
  List.iter
    (fun r ->
      Mutex.lock r.r_lock;
      let items = List.rev r.r_items in
      Mutex.unlock r.r_lock;
      if items <> [] then begin
        Fmt.pf fmt "[%s]@\n" r.r_name;
        let width =
          List.fold_left (fun w (n, _) -> max w (String.length n)) 0 items
        in
        List.iter
          (fun (name, i) -> Fmt.pf fmt "  %-*s  %a@\n" width name pp_value i)
          items
      end)
    (registries ())
