(** Typed metrics in named registries: monotonic counters, gauges, log-bucketed
    histograms, and rolling-window rate meters. Counters and gauges are
    lock-free (a CAS loop over an [Atomic] cell) and safe to bump from any
    domain; histogram and window observations serialize on a per-instrument
    mutex (observations are rare relative to the work they measure).
    Instruments are get-or-create by (registry, name, labels) — looking the
    same series up twice returns the same cell, so modules can re-resolve
    instruments without threading handles around.

    Unlike tracing, metrics are always on: an increment is a few nanoseconds,
    and the cells only turn into output when an exporter ({!write_jsonl},
    {!to_prometheus}, {!pp_summary}) is asked for them.

    Naming scheme (shared by every subsystem and documented in the README):
    the registry is the subsystem ([dse], [serve], [fuzz], [trace]) and the
    metric name is dot-separated within it ([eval_cache.hits]); dimensions
    that would otherwise be encoded in the name ([worker.3.busy]) are labels
    instead ([worker.busy_fraction{worker="3"}]). The Prometheus exposition
    renders the pair as [scalehls_<registry>_<metric>] with dots mapped to
    underscores. *)

type counter = { c_v : float Atomic.t }
type gauge = { g_v : float Atomic.t }

(* Log-spaced histogram buckets: bucket [i] (0-based) has the inclusive
   upper bound [bucket_lo * 2^i]; the last bucket is the +infinity overflow.
   The span 1e-6 .. ~5.5e5 covers microseconds to days when observations are
   seconds, which every histogram in this codebase is. Doubling bounds keep
   interpolated quantiles within a factor of two of the truth everywhere,
   which is all a scrape-side latency quantile needs. *)
let num_buckets = 40
let bucket_lo = 1e-6

let bucket_bound i =
  if i >= num_buckets - 1 then Float.infinity
  else bucket_lo *. Float.pow 2. (float_of_int i)

(* First bucket whose upper bound is >= v (linear scan: observations are
   rare, and the scan is exact on the boundaries where a log/floor computation
   would be at the mercy of rounding). *)
let bucket_index v =
  let rec go i =
    if i >= num_buckets - 1 then num_buckets - 1
    else if v <= bucket_bound i then i
    else go (i + 1)
  in
  go 0

type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;  (** per-bucket counts (not cumulative) *)
}

(** A rolling-window rate meter: [mark] adds weight to the current one-second
    slot of a ring; [rate] sums the slots younger than [window_s] and divides
    by the window. Slots are reclaimed lazily (stamped with their absolute
    second), so an idle meter decays to zero without a background thread. *)
type window = {
  w_lock : Mutex.t;
  w_slots : float array;
  w_stamps : int array;  (** absolute second each slot was last written *)
  w_span : int;  (** window length in seconds *)
}

type instrument = C of counter | G of gauge | H of histogram | W of window

(* A series key: metric name plus its (sorted, canonical) label set. *)
type series = { s_name : string; s_labels : (string * string) list }

type registry = {
  r_name : string;
  r_lock : Mutex.t;
  mutable r_items : (series * instrument) list;  (** insertion order, newest first *)
}

let registries_lock = Mutex.create ()
let all_registries : registry list ref = ref []

(* Collectors are pull hooks run once per export: components that own
   derived state (queue depths, cache sizes, ages) register a callback that
   refreshes their gauges, so a scrape always sees current values without
   the component polling on its own. Registration survives {!reset} — the
   component outlives test-isolation resets; its gauges are simply
   re-created in the fresh registry on the next export. *)
let collectors_lock = Mutex.create ()
let collectors : (unit -> unit) list ref = ref []

let register_collector f =
  Mutex.lock collectors_lock;
  collectors := f :: !collectors;
  Mutex.unlock collectors_lock

let collect () =
  Mutex.lock collectors_lock;
  let fs = List.rev !collectors in
  Mutex.unlock collectors_lock;
  List.iter (fun f -> try f () with _ -> ()) fs

(** The registry named [name], created on first use. *)
let registry name =
  Mutex.lock registries_lock;
  let r =
    match List.find_opt (fun r -> r.r_name = name) !all_registries with
    | Some r -> r
    | None ->
        let r = { r_name = name; r_lock = Mutex.create (); r_items = [] } in
        all_registries := r :: !all_registries;
        r
  in
  Mutex.unlock registries_lock;
  r

let registries () =
  Mutex.lock registries_lock;
  let rs = !all_registries in
  Mutex.unlock registries_lock;
  List.sort (fun a b -> compare a.r_name b.r_name) rs

(** Drop every registry (test isolation; running instruments handed out
    earlier keep working but are no longer exported). Registered collectors
    persist — they repopulate the fresh registries at the next export. *)
let reset () =
  Mutex.lock registries_lock;
  all_registries := [];
  Mutex.unlock registries_lock

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare (a : string) b) labels

let find_or_make r name labels make classify =
  let key = { s_name = name; s_labels = canon_labels labels } in
  Mutex.lock r.r_lock;
  let i =
    match
      List.find_opt (fun (s, _) -> s.s_name = key.s_name && s.s_labels = key.s_labels) r.r_items
    with
    | Some (_, i) -> i
    | None ->
        let i = make () in
        r.r_items <- (key, i) :: r.r_items;
        i
  in
  Mutex.unlock r.r_lock;
  match classify i with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s/%s already exists with another type"
           r.r_name name)

let counter ?(labels = []) r name =
  find_or_make r name labels
    (fun () -> C { c_v = Atomic.make 0. })
    (function C c -> Some c | _ -> None)

let gauge ?(labels = []) r name =
  find_or_make r name labels
    (fun () -> G { g_v = Atomic.make 0. })
    (function G g -> Some g | _ -> None)

let histogram ?(labels = []) r name =
  find_or_make r name labels
    (fun () ->
      H
        {
          h_lock = Mutex.create ();
          h_count = 0;
          h_sum = 0.;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
          h_buckets = Array.make num_buckets 0;
        })
    (function H h -> Some h | _ -> None)

let window ?(labels = []) ?(span = 60) r name =
  find_or_make r name labels
    (fun () ->
      W
        {
          w_lock = Mutex.create ();
          w_slots = Array.make (span + 4) 0.;
          w_stamps = Array.make (span + 4) (-1);
          w_span = span;
        })
    (function W w -> Some w | _ -> None)

(* CAS loop: [Atomic.compare_and_set] on the boxed float compares the box we
   just read, so the update is atomic under contention from any number of
   domains. *)
let rec atomic_add cell d =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. d)) then atomic_add cell d

let add c d = atomic_add c.c_v d
let incr c = add c 1.
let value c = Atomic.get c.c_v

(** Absolute store into a counter — for collectors that mirror an externally
    accumulated monotonic total (e.g. dropped trace spans) into the registry
    at export time. Not for hot paths: those use {!add}/{!incr}. *)
let counter_set c v = Atomic.set c.c_v v

let set g v = Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

let observe h v =
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  Mutex.unlock h.h_lock;
  ()

let histogram_count h =
  Mutex.lock h.h_lock;
  let c = h.h_count in
  Mutex.unlock h.h_lock;
  c

(** [quantile h q] estimates the [q]-quantile ([0..1]) from the log buckets:
    the bucket holding the rank is found by cumulative count and the value is
    interpolated linearly inside it, then clamped to the observed [min, max]
    (which makes the estimate exact at q=0/q=1 and keeps the overflow bucket
    finite). Returns 0 for an empty histogram. Cross-domain merge is free:
    observations from every domain land in the same mutex-guarded buckets. *)
let quantile h q =
  Mutex.lock h.h_lock;
  let count = h.h_count in
  let buckets = Array.copy h.h_buckets in
  let mn = h.h_min and mx = h.h_max in
  Mutex.unlock h.h_lock;
  if count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int count in
    let rec find i cum =
      if i >= num_buckets - 1 then i
      else
        let cum' = cum + buckets.(i) in
        if float_of_int cum' >= rank && buckets.(i) > 0 then i
        else find (i + 1) cum'
    in
    (* cumulative count strictly before the chosen bucket *)
    let rec before i j acc = if j >= i then acc else before i (j + 1) (acc + buckets.(j)) in
    let i = find 0 0 in
    let lower = if i = 0 then 0. else bucket_bound (i - 1) in
    let upper = if i = num_buckets - 1 then mx else bucket_bound i in
    let in_bucket = buckets.(i) in
    let v =
      if in_bucket = 0 then upper
      else
        let cum0 = float_of_int (before i 0 0) in
        let frac = (rank -. cum0) /. float_of_int in_bucket in
        lower +. (Float.max 0. (Float.min 1. frac) *. (upper -. lower))
    in
    Float.max mn (Float.min mx v)
  end

let now_sec () = int_of_float (Clock.ns_to_s (Clock.now_ns ()))

let mark w v =
  Mutex.lock w.w_lock;
  let sec = now_sec () in
  let slot = sec mod Array.length w.w_slots in
  if w.w_stamps.(slot) <> sec then begin
    w.w_stamps.(slot) <- sec;
    w.w_slots.(slot) <- 0.
  end;
  w.w_slots.(slot) <- w.w_slots.(slot) +. v;
  Mutex.unlock w.w_lock

(** Events per second over the trailing window. *)
let rate w =
  Mutex.lock w.w_lock;
  let sec = now_sec () in
  let total = ref 0. in
  Array.iteri
    (fun i stamp -> if stamp >= 0 && sec - stamp < w.w_span then total := !total +. w.w_slots.(i))
    w.w_stamps;
  Mutex.unlock w.w_lock;
  !total /. float_of_int w.w_span

(* ---- Export --------------------------------------------------------------- *)

let instrument_fields = function
  | C c -> [ ("type", Json.String "counter"); ("value", Json.Float (value c)) ]
  | G g -> [ ("type", Json.String "gauge"); ("value", Json.Float (gauge_value g)) ]
  | W w ->
      [
        ("type", Json.String "window");
        ("value", Json.Float (rate w));
        ("window_s", Json.Int w.w_span);
      ]
  | H h ->
      Mutex.lock h.h_lock;
      let count = h.h_count and sum = h.h_sum and mn = h.h_min and mx = h.h_max in
      Mutex.unlock h.h_lock;
      [
        ("type", Json.String "histogram");
        ("count", Json.Int count);
        ("sum", Json.Float sum);
        ("min", Json.Float (if count = 0 then 0. else mn));
        ("max", Json.Float (if count = 0 then 0. else mx));
        ("mean", Json.Float (if count = 0 then 0. else sum /. float_of_int count));
        ("p50", Json.Float (quantile h 0.5));
        ("p90", Json.Float (quantile h 0.9));
        ("p99", Json.Float (quantile h 0.99));
      ]

let label_fields s =
  match s.s_labels with
  | [] -> []
  | ls -> [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls)) ]

let items_of r =
  Mutex.lock r.r_lock;
  let items = List.rev r.r_items in
  Mutex.unlock r.r_lock;
  items

(** One JSON object per metric:
    [{"registry": ..., "metric": ..., "type": ..., ...}], metrics in
    registration order within each registry. *)
let rows () =
  collect ();
  List.concat_map
    (fun r ->
      List.map
        (fun (s, i) ->
          Json.Obj
            ([ ("registry", Json.String r.r_name); ("metric", Json.String s.s_name) ]
            @ label_fields s @ instrument_fields i))
        (items_of r))
    (registries ())

let series_key s =
  match s.s_labels with
  | [] -> s.s_name
  | ls ->
      Printf.sprintf "%s{%s}" s.s_name
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ls))

(** One JSON object for the whole process: registries keyed by name, each an
    object of its metrics — the shape a status/introspection endpoint
    returns. Nested rather than row-per-metric so consumers can index
    [.dse."eval_cache.hit_rate"] directly; labelled series render their
    labels into the key ([worker.busy_fraction{worker="3"}]). *)
let snapshot () =
  collect ();
  Json.Obj
    (List.map
       (fun r ->
         ( r.r_name,
           Json.Obj
             (List.map
                (fun (s, i) -> (series_key s, Json.Obj (instrument_fields i)))
                (items_of r)) ))
       (registries ()))

(* Crash-safe file write shared by the exporters: the content lands in
   [path ^ ".tmp"] and is renamed over [path] only once fully written (the
   same discipline as the serve store's checkpoints), so a crash mid-flush
   never leaves a truncated artifact behind. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match content oc with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(** Write the metrics as JSON Lines (one object per line); atomic
    (tmp + rename). *)
let write_jsonl path =
  let rows = rows () in
  write_atomic path (fun oc ->
      List.iter
        (fun row ->
          output_string oc (Json.to_string row);
          output_char oc '\n')
        rows)

(* ---- Prometheus text exposition ------------------------------------------- *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; every other byte maps
   to '_' and a leading digit gets a '_' prefix. *)
let prom_name ~registry:rn name =
  let sane s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      s
  in
  let full = Printf.sprintf "scalehls_%s_%s" (sane rn) (sane name) in
  if String.length full > 0 && full.[0] >= '0' && full.[0] <= '9' then "_" ^ full
  else full

(* Label values escape backslash, double-quote and newline per the text
   exposition format. *)
let prom_escape v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | ls ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) ls))

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(** The whole process state in the Prometheus text exposition format
    (version 0.0.4): counters and gauges one series per line, windows as a
    [<name>_rate] gauge, histograms as cumulative [_bucket{le=...}] series
    plus [_sum]/[_count] and [_p50]/[_p90]/[_p99] convenience gauges
    (interpolated from the log buckets, so a scrape sees latency quantiles
    without PromQL). Output ordering is deterministic: registries, then
    metric names, then label sets, all lexicographic. *)
let to_prometheus () =
  collect ();
  let b = Buffer.create 4096 in
  let line name labels v =
    Buffer.add_string b name;
    Buffer.add_string b (prom_labels labels);
    Buffer.add_char b ' ';
    Buffer.add_string b (prom_float v);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun r ->
      (* Group series into families (same metric name) for one TYPE line per
         family; sort for deterministic output. *)
      let items =
        List.sort
          (fun (a, _) (b, _) ->
            match compare a.s_name b.s_name with
            | 0 -> compare a.s_labels b.s_labels
            | c -> c)
          (items_of r)
      in
      let last_family = ref "" in
      List.iter
        (fun (s, i) ->
          let name = prom_name ~registry:r.r_name s.s_name in
          let labels = s.s_labels in
          let typ =
            match i with
            | C _ -> "counter"
            | G _ -> "gauge"
            | W _ -> "gauge"
            | H _ -> "histogram"
          in
          let family = match i with W _ -> name ^ "_rate" | _ -> name in
          if !last_family <> family then begin
            Buffer.add_string b
              (Printf.sprintf "# TYPE %s %s\n" family typ);
            last_family := family
          end;
          match i with
          | C c -> line name labels (value c)
          | G g -> line name labels (gauge_value g)
          | W w -> line (name ^ "_rate") labels (rate w)
          | H h ->
              Mutex.lock h.h_lock;
              let count = h.h_count and sum = h.h_sum in
              let buckets = Array.copy h.h_buckets in
              Mutex.unlock h.h_lock;
              let cum = ref 0 in
              Array.iteri
                (fun bi n ->
                  cum := !cum + n;
                  let le =
                    if bi = num_buckets - 1 then "+Inf"
                    else prom_float (bucket_bound bi)
                  in
                  line (name ^ "_bucket")
                    (labels @ [ ("le", le) ])
                    (float_of_int !cum))
                buckets;
              line (name ^ "_sum") labels sum;
              line (name ^ "_count") labels (float_of_int count);
              List.iter
                (fun (suffix, q) ->
                  Buffer.add_string b
                    (Printf.sprintf "# TYPE %s%s gauge\n" name suffix);
                  line (name ^ suffix) labels (quantile h q))
                [ ("_p50", 0.5); ("_p90", 0.9); ("_p99", 0.99) ])
        items)
    (registries ());
  Buffer.contents b

(* ---- Human-readable summary ------------------------------------------------ *)

let pp_value fmt = function
  | C c -> Fmt.pf fmt "%.6g" (value c)
  | G g -> Fmt.pf fmt "%.6g" (gauge_value g)
  | W w -> Fmt.pf fmt "%.6g/s over %ds" (rate w) w.w_span
  | H h ->
      Mutex.lock h.h_lock;
      let count = h.h_count and sum = h.h_sum and mn = h.h_min and mx = h.h_max in
      Mutex.unlock h.h_lock;
      if count = 0 then Fmt.pf fmt "count=0"
      else
        Fmt.pf fmt "count=%d mean=%.6g p50=%.6g p99=%.6g min=%.6g max=%.6g" count
          (sum /. float_of_int count)
          (quantile h 0.5) (quantile h 0.99) mn mx

(** Human-readable dump of every registry. *)
let pp_summary fmt () =
  collect ();
  List.iter
    (fun r ->
      let items = items_of r in
      if items <> [] then begin
        Fmt.pf fmt "[%s]@\n" r.r_name;
        let width =
          List.fold_left (fun w (s, _) -> max w (String.length (series_key s))) 0 items
        in
        List.iter
          (fun (s, i) ->
            Fmt.pf fmt "  %-*s  %a@\n" width (series_key s) pp_value i)
          items
      end)
    (registries ())
