(** Monotonic time for all instrumentation. Every timestamp and duration in
    the tracing/metrics layer comes from CLOCK_MONOTONIC (via the C stub
    shipped with bechamel), never from [Unix.gettimeofday]: intervals cannot
    go negative or jump when the wall clock steps (NTP slew, suspend). *)

(** Nanoseconds from an arbitrary (boot-time) origin; strictly usable only
    for differences. *)
let now_ns : unit -> int64 = Monotonic_clock.now

let ns_to_s ns = Int64.to_float ns /. 1e9

(** Microseconds as a float — the unit of Chrome [trace_event] timestamps. *)
let ns_to_us ns = Int64.to_float ns /. 1e3

(** Seconds elapsed since a [now_ns] reading. *)
let since_s t0 = ns_to_s (Int64.sub (now_ns ()) t0)

(** Time a thunk; returns its result and the elapsed seconds. *)
let time_s f =
  let t0 = now_ns () in
  let r = f () in
  (r, since_s t0)
