(** The search-quality event log: an append-only JSONL sink for structured,
    per-job timeline events (hypervolume over evaluations, frontier size,
    strategy counters, surrogate calibration). One line per event:

    {v {"ev":"dse.round","seq":12,"ts_s":3.14,"job":"0","explored":48,...} v}

    The sink is process-global (like the metrics registries): {!configure}
    opens the destination in append mode — a serve daemon's log accumulates
    every job it ever ran, and concurrent jobs interleave with each line
    self-identifying via its ["job"] field — and every line is flushed as it
    is written, so a crash loses at most the line being written (append-only
    logs need no tmp+rename dance).

    Disabled cost is one atomic load: {!emit} takes the field list as a
    thunk, evaluated only when a sink is configured. Timestamps are
    monotonic seconds since {!configure} (deltas are meaningful; absolute
    wall-clock is not recorded). *)

let enabled_flag = Atomic.make false
let lock = Mutex.create ()
let sink : out_channel option ref = ref None
let seq = ref 0
let epoch = ref 0L

(** Open [path] (append, created if missing) as the event destination. *)
let configure path =
  Mutex.lock lock;
  (match !sink with Some oc -> (try close_out oc with Sys_error _ -> ()) | None -> ());
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  sink := Some oc;
  seq := 0;
  epoch := Clock.now_ns ();
  Atomic.set enabled_flag true;
  Mutex.unlock lock

(** Flush and close the sink; {!emit} becomes a no-op again. *)
let close () =
  Atomic.set enabled_flag false;
  Mutex.lock lock;
  (match !sink with Some oc -> (try close_out oc with Sys_error _ -> ()) | None -> ());
  sink := None;
  Mutex.unlock lock

let enabled () = Atomic.get enabled_flag

(** [emit ev fields] appends one event line; [fields] is a thunk so callers
    pay nothing to build the payload when no sink is configured. Safe from
    any thread (serialized on the sink lock). *)
let emit ev fields =
  if Atomic.get enabled_flag then begin
    let fields = fields () in
    Mutex.lock lock;
    (match !sink with
    | Some oc ->
        let s = !seq in
        seq := s + 1;
        let row =
          Json.Obj
            (("ev", Json.String ev)
            :: ("seq", Json.Int s)
            :: ("ts_s", Json.Float (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) !epoch)))
            :: fields)
        in
        (try
           output_string oc (Json.to_string row);
           output_char oc '\n';
           flush oc
         with Sys_error _ -> ())
    | None -> ());
    Mutex.unlock lock
  end
