(** Offline analysis of observability artifacts — the library behind
    [scalehls-report]. Reads the three file kinds the toolchain produces
    ([--events] JSONL, [--trace] Chrome JSON, [--metrics] JSONL), reconstructs
    per-job search-quality timelines (hypervolume over evaluations, frontier
    size, surrogate calibration), rolls up pass timings, and renders text, a
    self-contained HTML page, or a machine-readable summary.

    Hypervolume is recomputed from the frontier snapshots recorded in
    [dse.round] events with {e exactly} the engine's metric — 2-D dominated
    area in (log1p latency) × (linear area) space w.r.t. a reference corner —
    so given the same reference point the final HV here equals the
    [Dse.log_hypervolume] value a bench run records. *)

(* ---- Hypervolume (mirrors Dse.log_hypervolume) ----------------------------- *)

(** [log_hv2 ~ref_latency ~ref_area front] — [front] is (latency, area)
    pairs, latency-increasing (the order [dse.round] snapshots record). *)
let log_hv2 ~ref_latency ~ref_area front =
  let lg v = log1p (float_of_int v) in
  let rl = lg ref_latency and ra = float_of_int ref_area in
  let rec go acc = function
    | [] -> acc
    | (l, a) :: rest ->
        let l = lg l and a = float_of_int a in
        if l >= rl || a >= ra then go acc rest
        else
          let next =
            match rest with (l', _) :: _ -> Float.min rl (lg l') | [] -> rl
          in
          go (acc +. ((next -. l) *. (ra -. a))) rest
  in
  go 0. front

(* ---- Event-log parsing ------------------------------------------------------ *)

type calibration = {
  cal_ts : float;
  cal_n : int;  (** exact observations behind the quantiles *)
  cal_objectives : (string * (float * float * float)) list;
      (** objective -> (p50, p90, max) absolute log-error *)
}

type round = {
  rd_ts : float;
  rd_explored : int;
  rd_frontier : (int * int) list;  (** (latency, area), latency-increasing *)
  rd_hv : float;  (** filled in by {!jobs_of_events} once refs are known *)
}

type job_timeline = {
  jt_job : string;
  jt_top : string;
  jt_strategy : string;
  jt_start_ts : float;
  jt_end_ts : float option;
  jt_wall_s : float option;
  jt_explored : int;
  jt_dsp_budget : int option;
  jt_rounds : round list;  (** chronological *)
  jt_calibrations : calibration list;  (** chronological *)
  jt_counters : (string * int) list;  (** final strategy counters *)
  jt_best_latency : int option;
  jt_ref_latency : int;
  jt_ref_area : int;
}

let str ?(default = "") k j =
  match Json.member k j with Some (Json.String s) -> s | _ -> default

let int_f ?(default = 0) k j =
  match Option.bind (Json.member k j) Json.to_float_opt with
  | Some f -> int_of_float f
  | None -> default

let float_f ?(default = 0.) k j =
  match Option.bind (Json.member k j) Json.to_float_opt with
  | Some f -> f
  | None -> default

(** Parse a JSONL file of events. [Error] reports the first malformed line
    (1-based) — callers treat any parse error as fatal. *)
let parse_jsonl path : (Json.t list, string) result =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
            match Json.of_string line with
            | Ok j -> go (lineno + 1) (j :: acc)
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go 1 [])

let frontier_of j =
  match Json.member "frontier" j with
  | Some (Json.List pts) ->
      List.map (fun p -> (int_f "l" p, int_f "a" p)) pts
  | _ -> []

let calibration_of j =
  {
    cal_ts = float_f "ts_s" j;
    cal_n = int_f "n" j;
    cal_objectives =
      (match Json.member "objectives" j with
      | Some (Json.Obj kvs) ->
          List.map
            (fun (k, v) -> (k, (float_f "p50" v, float_f "p90" v, float_f "max" v)))
            kvs
      | _ -> []);
  }

let counters_of j =
  match Json.member "counters" j with
  | Some (Json.Obj kvs) ->
      List.map (fun (k, v) -> (k, match Json.to_float_opt v with Some f -> int_of_float f | None -> 0)) kvs
  | _ -> []

(** Group the event stream into per-job timelines, in order of first
    appearance, and price every round's frontier with the reference point:
    [ref_latency]/[ref_area] when given (pass the bench's recorded
    [hv_ref_latency]/[hv_ref_area] to compare against [BENCH_dse.json]),
    otherwise per job 2× the worst frontier latency and the platform DSP
    budget from the [dse.job.start] event. *)
let jobs_of_events ?ref_latency ?ref_area events : job_timeline list =
  let order = ref [] in
  let tbl : (string, Json.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun j ->
      match Json.member "ev" j with
      | Some (Json.String ev) when String.length ev >= 4 && String.sub ev 0 4 = "dse." ->
          let job = str "job" j ~default:"?" in
          if not (Hashtbl.mem tbl job) then order := job :: !order;
          Hashtbl.replace tbl job (j :: Option.value ~default:[] (Hashtbl.find_opt tbl job))
      | _ -> ())
    events;
  List.rev_map
    (fun job ->
      let evs = List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl job)) in
      let ev_name j = str "ev" j in
      let start = List.find_opt (fun j -> ev_name j = "dse.job.start") evs in
      let end_ = List.find_opt (fun j -> ev_name j = "dse.job.end") evs in
      let rounds0 =
        List.filter_map
          (fun j ->
            if ev_name j = "dse.round" then
              Some
                {
                  rd_ts = float_f "ts_s" j;
                  rd_explored = int_f "explored" j;
                  rd_frontier = frontier_of j;
                  rd_hv = 0.;
                }
            else None)
          evs
      in
      let dsp_budget =
        Option.map (fun s -> int_f "dsp_budget" s) start
      in
      let ref_area =
        match ref_area with
        | Some a -> a
        | None -> ( match dsp_budget with Some a when a > 0 -> a | _ -> 1)
      in
      let ref_latency =
        match ref_latency with
        | Some l -> l
        | None ->
            let worst =
              List.fold_left
                (fun acc r ->
                  List.fold_left (fun acc (l, _) -> max acc l) acc r.rd_frontier)
                1 rounds0
            in
            2 * worst
      in
      let rounds =
        List.map
          (fun r -> { r with rd_hv = log_hv2 ~ref_latency ~ref_area r.rd_frontier })
          rounds0
      in
      {
        jt_job = job;
        jt_top = (match start with Some s -> str "top" s | None -> "");
        jt_strategy =
          (match start with
          | Some s -> str "strategy" s
          | None -> ( match end_ with Some e -> str "strategy" e | None -> ""));
        jt_start_ts = (match start with Some s -> float_f "ts_s" s | None -> 0.);
        jt_end_ts = Option.map (fun e -> float_f "ts_s" e) end_;
        jt_wall_s = Option.map (fun e -> float_f "wall_s" e) end_;
        jt_explored =
          (match end_ with
          | Some e -> int_f "explored" e
          | None -> ( match rounds with [] -> 0 | _ -> (List.hd (List.rev rounds)).rd_explored));
        jt_dsp_budget = dsp_budget;
        jt_rounds = rounds;
        jt_calibrations =
          List.filter_map
            (fun j -> if ev_name j = "dse.calibration" then Some (calibration_of j) else None)
            evs;
        jt_counters = (match end_ with Some e -> counters_of e | None -> []);
        jt_best_latency =
          Option.bind end_ (fun e ->
              match Json.member "best_latency" e with
              | Some (Json.Int l) -> Some l
              | _ -> None);
        jt_ref_latency = ref_latency;
        jt_ref_area = ref_area;
      })
    !order

let final_hv jt = match List.rev jt.jt_rounds with [] -> 0. | r :: _ -> r.rd_hv

(* ---- Trace rollup ------------------------------------------------------------ *)

type span_stat = { sp_name : string; sp_count : int; sp_total_s : float }

(** Parse a Chrome trace file and aggregate its complete ("X") spans by
    name: (count, total seconds), sorted by total descending. [job] filters
    to spans whose [args.job] matches. *)
let parse_trace path : (Json.t, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in_noerr ic;
      Json.of_string s

let span_rollup ?job trace : span_stat list =
  let events =
    match Json.member "traceEvents" trace with Some (Json.List l) -> l | _ -> []
  in
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let is_x = match Json.member "ph" e with Some (Json.String "X") -> true | _ -> false in
      let matches_job =
        match job with
        | None -> true
        | Some jid -> (
            match Option.bind (Json.member "args" e) (Json.member "job") with
            | Some (Json.String s) -> s = jid
            | _ -> false)
      in
      if is_x && matches_job then begin
        let name = str "name" e in
        let dur_s = float_f "dur" e /. 1e6 in
        let c, t = Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl name) in
        Hashtbl.replace tbl name (c + 1, t +. dur_s)
      end)
    events;
  Hashtbl.fold (fun name (c, t) acc -> { sp_name = name; sp_count = c; sp_total_s = t } :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.sp_total_s a.sp_total_s with
         | 0 -> compare a.sp_name b.sp_name
         | c -> c)

(* ---- Rendering ---------------------------------------------------------------- *)

let pp_job fmt jt =
  Fmt.pf fmt "job %s (%s, %s): %d evals, %d rounds, frontier %d, final HV %.3f (ref latency=%d area=%d)@\n"
    jt.jt_job
    (if jt.jt_top = "" then "?" else jt.jt_top)
    (if jt.jt_strategy = "" then "?" else jt.jt_strategy)
    jt.jt_explored (List.length jt.jt_rounds)
    (match List.rev jt.jt_rounds with [] -> 0 | r :: _ -> List.length r.rd_frontier)
    (final_hv jt) jt.jt_ref_latency jt.jt_ref_area;
  (match jt.jt_wall_s with
  | Some w -> Fmt.pf fmt "  wall %.2fs" w
  | None -> Fmt.pf fmt "  (no job.end event — still running or truncated log)");
  (match jt.jt_best_latency with
  | Some l -> Fmt.pf fmt ", best latency %d@\n" l
  | None -> Fmt.pf fmt "@\n");
  if jt.jt_counters <> [] then
    Fmt.pf fmt "  strategy counters: %s@\n"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) jt.jt_counters));
  Fmt.pf fmt "  HV over evals:";
  List.iter (fun r -> Fmt.pf fmt " %d:%.3f" r.rd_explored r.rd_hv) jt.jt_rounds;
  Fmt.pf fmt "@\n";
  match List.rev jt.jt_calibrations with
  | [] -> ()
  | last :: _ ->
      Fmt.pf fmt "  calibration (n=%d, abs log-error):" last.cal_n;
      List.iter
        (fun (obj, (p50, p90, mx)) ->
          Fmt.pf fmt " %s p50=%.3f p90=%.3f max=%.3f |" obj p50 p90 mx)
        last.cal_objectives;
      Fmt.pf fmt "@\n"

let pp_rollup fmt stats =
  let top = List.filteri (fun i _ -> i < 20) stats in
  Fmt.pf fmt "%-40s %8s %10s@\n" "span" "count" "total s";
  List.iter
    (fun s -> Fmt.pf fmt "%-40s %8d %10.3f@\n" s.sp_name s.sp_count s.sp_total_s)
    top

(* ---- Machine-readable summary -------------------------------------------------- *)

let job_to_json jt =
  Json.Obj
    [
      ("job", Json.String jt.jt_job);
      ("top", Json.String jt.jt_top);
      ("strategy", Json.String jt.jt_strategy);
      ("explored", Json.Int jt.jt_explored);
      ("rounds", Json.Int (List.length jt.jt_rounds));
      ( "frontier_size",
        Json.Int
          (match List.rev jt.jt_rounds with
          | [] -> 0
          | r :: _ -> List.length r.rd_frontier) );
      ("final_hv", Json.Float (final_hv jt));
      ("ref_latency", Json.Int jt.jt_ref_latency);
      ("ref_area", Json.Int jt.jt_ref_area);
      ("wall_s", match jt.jt_wall_s with Some w -> Json.Float w | None -> Json.Null);
      ( "best_latency",
        match jt.jt_best_latency with Some l -> Json.Int l | None -> Json.Null );
      ( "hv_curve",
        Json.List
          (List.map
             (fun r -> Json.List [ Json.Int r.rd_explored; Json.Float r.rd_hv ])
             jt.jt_rounds) );
      ( "calibration",
        match List.rev jt.jt_calibrations with
        | [] -> Json.Null
        | last :: _ ->
            Json.Obj
              (("n", Json.Int last.cal_n)
              :: List.map
                   (fun (obj, (p50, p90, mx)) ->
                     ( obj,
                       Json.Obj
                         [
                           ("p50", Json.Float p50);
                           ("p90", Json.Float p90);
                           ("max", Json.Float mx);
                         ] ))
                   last.cal_objectives) );
    ]

let summary_json ~jobs ~rollup =
  Json.Obj
    [
      ("jobs", Json.List (List.map job_to_json jobs));
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.sp_name);
                   ("count", Json.Int s.sp_count);
                   ("total_s", Json.Float s.sp_total_s);
                 ])
             rollup) );
    ]

(* ---- Self-contained HTML ------------------------------------------------------- *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One inline-SVG line chart of HV vs explored for all jobs (shared axes). *)
let hv_chart_svg jobs =
  let w = 640. and h = 280. and pad = 45. in
  let all_pts =
    List.concat_map (fun jt -> List.map (fun r -> (r.rd_explored, r.rd_hv)) jt.jt_rounds) jobs
  in
  if all_pts = [] then "<p>no rounds recorded</p>"
  else begin
    let max_x = List.fold_left (fun a (x, _) -> max a x) 1 all_pts in
    let max_y = List.fold_left (fun a (_, y) -> Float.max a y) 1e-9 all_pts in
    let sx x = pad +. (float_of_int x /. float_of_int max_x *. (w -. (2. *. pad))) in
    let sy y = h -. pad -. (y /. max_y *. (h -. (2. *. pad))) in
    let colors = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |] in
    let b = Buffer.create 2048 in
    Buffer.add_string b
      (Printf.sprintf
         "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" role=\"img\">\n" w h w h);
    Buffer.add_string b
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#999\"/>\n"
         pad (h -. pad) (w -. pad) (h -. pad));
    Buffer.add_string b
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#999\"/>\n"
         pad pad pad (h -. pad));
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"middle\">exact evaluations</text>\n"
         (w /. 2.) (h -. 8.));
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"12\" y=\"%.1f\" font-size=\"11\" transform=\"rotate(-90 12 %.1f)\" text-anchor=\"middle\">hypervolume</text>\n"
         (h /. 2.) (h /. 2.));
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" text-anchor=\"middle\">%d</text>\n"
         (w -. pad) (h -. pad +. 14.) max_x);
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" text-anchor=\"end\">%.2f</text>\n"
         (pad -. 4.) (pad +. 4.) max_y);
    List.iteri
      (fun i jt ->
        let color = colors.(i mod Array.length colors) in
        let pts =
          String.concat " "
            (List.map
               (fun r -> Printf.sprintf "%.1f,%.1f" (sx r.rd_explored) (sy r.rd_hv))
               jt.jt_rounds)
        in
        Buffer.add_string b
          (Printf.sprintf
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n"
             pts color);
        Buffer.add_string b
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"%s\">job %s (%s)</text>\n"
             (w -. pad +. 4.)
             (pad +. (14. *. float_of_int i))
             color (html_escape jt.jt_job) (html_escape jt.jt_strategy)))
      jobs;
    Buffer.add_string b "</svg>";
    Buffer.contents b
  end

let render_html ~jobs ~rollup ~metrics_rows =
  let b = Buffer.create 8192 in
  let add = Buffer.add_string b in
  add
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>scalehls-report</title>\n\
     <style>\n\
     body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:64em;color:#222}\n\
     h1{font-size:1.4em} h2{font-size:1.1em;margin-top:2em;border-bottom:1px solid #ddd}\n\
     table{border-collapse:collapse;margin:0.8em 0} td,th{border:1px solid #ccc;padding:3px 9px;text-align:right}\n\
     th{background:#f4f4f4} td:first-child,th:first-child{text-align:left}\n\
     </style></head><body>\n<h1>scalehls-report</h1>\n";
  if jobs <> [] then begin
    add "<h2>Search-quality timelines</h2>\n";
    add (hv_chart_svg jobs);
    add
      "<table><tr><th>job</th><th>top</th><th>strategy</th><th>evals</th><th>rounds</th>\
       <th>frontier</th><th>final HV</th><th>wall s</th><th>best latency</th></tr>\n";
    List.iter
      (fun jt ->
        add
          (Printf.sprintf
             "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td>\
              <td>%.3f</td><td>%s</td><td>%s</td></tr>\n"
             (html_escape jt.jt_job) (html_escape jt.jt_top)
             (html_escape jt.jt_strategy) jt.jt_explored
             (List.length jt.jt_rounds)
             (match List.rev jt.jt_rounds with
             | [] -> 0
             | r :: _ -> List.length r.rd_frontier)
             (final_hv jt)
             (match jt.jt_wall_s with Some w -> Printf.sprintf "%.2f" w | None -> "—")
             (match jt.jt_best_latency with Some l -> string_of_int l | None -> "—")))
      jobs;
    add "</table>\n";
    let with_cal = List.filter (fun jt -> jt.jt_calibrations <> []) jobs in
    if with_cal <> [] then begin
      add "<h2>Surrogate calibration (absolute log-error of predictions)</h2>\n";
      add "<table><tr><th>job</th><th>n</th><th>objective</th><th>p50</th><th>p90</th><th>max</th></tr>\n";
      List.iter
        (fun jt ->
          match List.rev jt.jt_calibrations with
          | [] -> ()
          | last :: _ ->
              List.iter
                (fun (obj, (p50, p90, mx)) ->
                  add
                    (Printf.sprintf
                       "<tr><td>%s</td><td>%d</td><td>%s</td><td>%.3f</td><td>%.3f</td><td>%.3f</td></tr>\n"
                       (html_escape jt.jt_job) last.cal_n (html_escape obj) p50 p90 mx))
                last.cal_objectives)
        with_cal;
      add "</table>\n"
    end
  end;
  if rollup <> [] then begin
    add "<h2>Pass-timing rollup (from trace)</h2>\n";
    add "<table><tr><th>span</th><th>count</th><th>total s</th><th>mean ms</th></tr>\n";
    List.iter
      (fun s ->
        add
          (Printf.sprintf
             "<tr><td>%s</td><td>%d</td><td>%.3f</td><td>%.3f</td></tr>\n"
             (html_escape s.sp_name) s.sp_count s.sp_total_s
             (s.sp_total_s /. float_of_int (max 1 s.sp_count) *. 1e3)))
      (List.filteri (fun i _ -> i < 30) rollup);
    add "</table>\n"
  end;
  (match metrics_rows with
  | [] -> ()
  | rows ->
      add "<h2>Metrics</h2>\n";
      add "<table><tr><th>registry</th><th>metric</th><th>type</th><th>value</th></tr>\n";
      List.iter
        (fun r ->
          let v =
            match Json.member "type" r with
            | Some (Json.String "histogram") ->
                Printf.sprintf "count=%d mean=%.4g p99=%.4g" (int_f "count" r)
                  (float_f "mean" r) (float_f "p99" r)
            | _ -> Printf.sprintf "%.6g" (float_f "value" r)
          in
          add
            (Printf.sprintf
               "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
               (html_escape (str "registry" r))
               (html_escape (str "metric" r))
               (html_escape (str "type" r))
               (html_escape v)))
        rows;
      add "</table>\n");
  add "</body></html>\n";
  Buffer.contents b
