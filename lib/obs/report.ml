(** The shared exporter entry point for the command-line tools. Every binary
    wraps its work in {!run}: when a trace or metrics destination is
    requested (by flag or by the [SCALEHLS_TRACE] / [SCALEHLS_METRICS]
    environment variables), tracing is switched on for the duration and the
    Chrome trace JSON, the metrics JSONL, and a human-readable summary on
    stderr are written on the way out — including when the wrapped work
    raises, so a crashing run still leaves its trace behind. *)

(** Raised (by the binaries' SIGINT/SIGTERM handlers) to unwind through
    {!run}'s finalizer so the trace/metrics files flush on termination.
    Catch-all recovery sites — fuzz oracles recording crashes as findings,
    batch drivers tolerating per-item failures — must re-raise it: a
    swallowed [Terminated] turns Ctrl-C into an ignored finding and the
    process keeps running. *)
exception Terminated of int

let env_trace = "SCALEHLS_TRACE"
let env_metrics = "SCALEHLS_METRICS"
let env_events = "SCALEHLS_EVENTS"

let resolve opt env =
  match opt with Some _ -> opt | None -> Sys.getenv_opt env

(** [run ~trace ~metrics f] — [trace]/[metrics]/[events] are the
    [--trace FILE] / [--metrics FILE] / [--events FILE] values ([None] falls
    back to the environment). Tracing is enabled only when a trace
    destination exists; the event log opens (append) up front so events
    stream as the run progresses; metrics instruments are always live and
    are simply exported (or not) at the end. *)
let run ?(events = None) ~trace ~metrics f =
  let trace = resolve trace env_trace in
  let metrics = resolve metrics env_metrics in
  let events = resolve events env_events in
  if Option.is_some trace then begin
    Trace.reset ();
    Trace.enable ()
  end;
  Option.iter Events.configure events;
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Option.iter (fun _ -> Events.close ()) events;
      Option.iter
        (fun path ->
          Trace.write_chrome path;
          Fmt.epr "trace: wrote %s (load in chrome://tracing or ui.perfetto.dev)@."
            path)
        trace;
      Option.iter
        (fun path ->
          Metrics.write_jsonl path;
          Fmt.epr "metrics: wrote %s@." path)
        metrics;
      Option.iter (fun path -> Fmt.epr "events: wrote %s@." path) events;
      if trace <> None || metrics <> None then
        Fmt.epr "===- Metrics summary -===@\n%a@." Metrics.pp_summary ())
    f
