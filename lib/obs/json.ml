(** A minimal JSON tree, printer, and parser — just enough for the Chrome
    [trace_event] and metrics-JSONL exporters (and for the test suite to
    check the emitted files are well-formed) without pulling in a JSON
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- Printing ------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    (* integral values print without an exponent or trailing ".": friendlier
       to jq filters and trace viewers *)
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_nan x || Float.abs x = Float.infinity then
    Buffer.add_string buf "null" (* nan/inf are not JSON *)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to buf x
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_to buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          add_to buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_to buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ---- Accessors ----------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None

(* ---- Parsing ------------------------------------------------------------- *)

exception Parse_error of string

(** Parse a JSON document. Returns [Error msg] on malformed input (including
    trailing garbage). Numbers parse as [Int] when integral, [Float]
    otherwise; \u escapes outside ASCII are replaced by '?' (the exporters
    above never emit them). *)
let of_string s : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
              | 'n' -> Buffer.add_char buf '\n'; go ()
              | 't' -> Buffer.add_char buf '\t'; go ()
              | 'r' -> Buffer.add_char buf '\r'; go ()
              | 'b' -> Buffer.add_char buf '\b'; go ()
              | 'f' -> Buffer.add_char buf '\012'; go ()
              | 'u' ->
                  if !pos + 4 > n then fail "short \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                  in
                  Buffer.add_char buf (if code < 128 then Char.chr code else '?');
                  go ()
              | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
