(** The span tracer. Spans, instants, and counter samples are recorded into
    per-domain buffers — each domain appends to its own buffer without taking
    any lock (the global mutex is touched once per domain, at buffer
    registration) — and merged deterministically at flush: events sort by
    (timestamp, domain id, per-domain sequence number), so two flushes of the
    same buffers agree, and the per-domain sequence keeps the order total even
    when the clock ties.

    Each per-domain buffer is a bounded ring: once it holds {!cap} events the
    oldest are overwritten and counted in {!dropped_spans} (exported as the
    [trace/dropped_spans] counter), so a long-lived daemon can trace forever
    in constant memory. The cap comes from the [SCALEHLS_TRACE_CAP]
    environment variable (events per domain; default {!default_cap}) or
    {!set_cap}.

    Tracing is off by default; {!with_span} is a single [Atomic.get] away from
    a plain call in that state, which is what keeps the instrumented hot paths
    within noise of the uninstrumented ones. When enabled, events accumulate
    until {!write_chrome} (Chrome [trace_event] JSON, loadable in
    [chrome://tracing] and Perfetto) or {!events} drains them.

    Flushing is meant to happen after parallel sections complete (worker
    domains joined, e.g. after [Parpool.with_pool] returns): the join gives
    the happens-before edge that makes worker buffers safe to read. *)

type phase = Complete | Instant | Counter

type event = {
  phase : phase;
  name : string;
  cat : string;
  ts : int64;  (** ns since the trace epoch ({!enable}) *)
  dur : int64;  (** ns; meaningful for [Complete] only *)
  tid : int;  (** recording domain's id *)
  seq : int;  (** per-domain sequence number (merge tie-break) *)
  args : (string * Json.t) list;
}

let dummy_event =
  { phase = Instant; name = ""; cat = ""; ts = 0L; dur = 0L; tid = 0; seq = 0; args = [] }

type buffer = {
  b_tid : int;
  b_gen : int;
  b_cap : int;
  mutable b_seq : int;
  mutable b_ring : event array;  (** grows by doubling up to [b_cap], then wraps *)
  mutable b_len : int;  (** live events in the ring *)
  mutable b_head : int;  (** next write slot (== oldest once wrapped) *)
}

let default_cap = 262_144

let env_cap () =
  match Sys.getenv_opt "SCALEHLS_TRACE_CAP" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Some n
    | _ -> None)
  | None -> None

let cap_ref = Atomic.make (match env_cap () with Some n -> n | None -> default_cap)

(** Per-domain event capacity for buffers created after the call (tests;
    production sets [SCALEHLS_TRACE_CAP]). Follow with {!reset} so existing
    buffers are re-created under the new cap. *)
let set_cap n = Atomic.set cap_ref (max 1 n)

let cap () = Atomic.get cap_ref

(* Spans overwritten after their ring filled, across all buffers ever (a
   monotonic total; also mirrored into the [trace] metrics registry by a
   collector so it reaches every exporter). *)
let dropped_total = Atomic.make 0

let dropped_spans () = Atomic.get dropped_total

let () =
  Metrics.register_collector (fun () ->
      Metrics.counter_set
        (Metrics.counter (Metrics.registry "trace") "dropped_spans")
        (float_of_int (Atomic.get dropped_total)))

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let epoch = Atomic.make 0L
let main_tid = Atomic.make (-1)
let lock = Mutex.create ()
let buffers : buffer list ref = ref []

(* Events injected from another process (a serve daemon streaming a job's
   spans back to its client); carried through to {!to_chrome} verbatim under
   their own pid. *)
let external_events : Json.t list ref = ref []

let dls_key : buffer option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let enabled () = Atomic.get enabled_flag

(* The calling domain's buffer, registering it on first use (or after a
   {!reset} invalidated the cached one). *)
let buffer () =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | Some b when b.b_gen = Atomic.get generation -> b
  | _ ->
      let cap = Atomic.get cap_ref in
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_gen = Atomic.get generation;
          b_cap = cap;
          b_seq = 0;
          b_ring = Array.make (min 1024 cap) dummy_event;
          b_len = 0;
          b_head = 0;
        }
      in
      Mutex.lock lock;
      buffers := b :: !buffers;
      Mutex.unlock lock;
      cell := Some b;
      b

let next_seq b =
  let s = b.b_seq in
  b.b_seq <- s + 1;
  s

let rec emit b e =
  let size = Array.length b.b_ring in
  if b.b_len < size then begin
    b.b_ring.(b.b_head) <- e;
    b.b_head <- (b.b_head + 1) mod size;
    b.b_len <- b.b_len + 1
  end
  else if size < b.b_cap then begin
    (* Grow by doubling toward the cap; the ring is full, so it is in
       chronological order starting at [b_head]. *)
    let size' = min b.b_cap (size * 2) in
    let ring' = Array.make size' dummy_event in
    for i = 0 to b.b_len - 1 do
      ring'.(i) <- b.b_ring.((b.b_head + i) mod size)
    done;
    b.b_ring <- ring';
    b.b_head <- b.b_len;
    emit_grown b e
  end
  else begin
    (* At cap: overwrite the oldest event and account for the drop. *)
    b.b_ring.(b.b_head) <- e;
    b.b_head <- (b.b_head + 1) mod size;
    Atomic.incr dropped_total
  end

and emit_grown b e =
  b.b_ring.(b.b_head) <- e;
  b.b_head <- (b.b_head + 1) mod Array.length b.b_ring;
  b.b_len <- b.b_len + 1

let rel ns = Int64.sub ns (Atomic.get epoch)

(** Start a fresh trace: drop all recorded events (local and external) and
    invalidate every domain's cached buffer. *)
let reset () =
  Mutex.lock lock;
  Atomic.incr generation;
  buffers := [];
  external_events := [];
  Mutex.unlock lock

(** Turn recording on; the current instant becomes timestamp 0. *)
let enable () =
  Atomic.set epoch (Clock.now_ns ());
  Atomic.set main_tid (Domain.self () :> int);
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(** [with_span_args name f] runs [f] inside a span. [f] returns the value
    plus extra span arguments computed during the run (IR statistics, cache
    outcomes, ...); with tracing disabled those extras are dropped — guard
    any expensive computation of them behind {!enabled}. An escaping
    exception still closes the span, tagged with an ["error"] argument. *)
let with_span_args ?(cat = "") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then fst (f ())
  else begin
    let b = buffer () in
    let t0 = Clock.now_ns () in
    let finish extra =
      let t1 = Clock.now_ns () in
      emit b
        {
          phase = Complete;
          name;
          cat;
          ts = rel t0;
          dur = Int64.sub t1 t0;
          tid = b.b_tid;
          seq = next_seq b;
          args = args @ extra;
        }
    in
    match f () with
    | v, extra ->
        finish extra;
        v
    | exception e ->
        finish [ ("error", Json.String (Printexc.to_string e)) ];
        raise e
  end

let with_span ?cat ?args name f = with_span_args ?cat ?args name (fun () -> (f (), []))

(** A zero-duration marker. *)
let instant ?(cat = "") ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    emit b
      {
        phase = Instant;
        name;
        cat;
        ts = rel (Clock.now_ns ());
        dur = 0L;
        tid = b.b_tid;
        seq = next_seq b;
        args;
      }
  end

(** A counter sample (Chrome renders these as stacked time series — used for
    e.g. the DSE frontier-size evolution). *)
let counter ?(cat = "") name values =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    emit b
      {
        phase = Counter;
        name;
        cat;
        ts = rel (Clock.now_ns ());
        dur = 0L;
        tid = b.b_tid;
        seq = next_seq b;
        args = List.map (fun (k, v) -> (k, Json.Float v)) values;
      }
  end

(* A buffer's live events in chronological (emission) order. *)
let buffer_events b =
  let size = Array.length b.b_ring in
  let start = if b.b_len < size then 0 else b.b_head in
  List.init b.b_len (fun i -> b.b_ring.((start + i) mod size))

(** All recorded events, merged across domains into the deterministic order
    (timestamp, domain, sequence). Call after worker domains are joined. *)
let events () =
  Mutex.lock lock;
  let bufs = !buffers in
  Mutex.unlock lock;
  let all = List.concat_map buffer_events bufs in
  List.sort
    (fun a b ->
      match Int64.compare a.ts b.ts with
      | 0 -> ( match compare a.tid b.tid with 0 -> compare a.seq b.seq | c -> c)
      | c -> c)
    all

(* ---- Chrome trace_event export ------------------------------------------- *)

let phase_str = function Complete -> "X" | Instant -> "i" | Counter -> "C"

let event_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "default" else e.cat));
      ("ph", Json.String (phase_str e.phase));
      ("ts", Json.Float (Clock.ns_to_us e.ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let dur =
    match e.phase with
    | Complete -> [ ("dur", Json.Float (Clock.ns_to_us e.dur)) ]
    | _ -> []
  in
  let scope = match e.phase with Instant -> [ ("s", Json.String "t") ] | _ -> [] in
  let args = match e.args with [] -> [] | l -> [ ("args", Json.Obj l) ] in
  Json.Obj (base @ dur @ scope @ args)

(** Inject Chrome-format event objects recorded by another process (the
    serve daemon's spans for a remote job): {!to_chrome} includes them under
    pid 2 so the viewer shows the daemon as its own process row next to the
    client's. *)
let add_external evs =
  let repid = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function "pid", _ -> ("pid", Json.Int 2) | kv -> kv)
             fields)
    | j -> j
  in
  let evs = List.map repid evs in
  Mutex.lock lock;
  external_events := !external_events @ evs;
  Mutex.unlock lock

let external_count () =
  Mutex.lock lock;
  let n = List.length !external_events in
  Mutex.unlock lock;
  n

(** The whole trace as a Chrome [trace_event] JSON object, with thread-name
    metadata naming the coordinator and worker-domain lanes (and, when
    external events were merged in, process-name metadata separating this
    process from the remote daemon). *)
let to_chrome () =
  let evs = events () in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.tid) evs)
  in
  let main = Atomic.get main_tid in
  let meta =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.String
                      (if tid = main then "coordinator"
                       else Printf.sprintf "worker domain %d" tid) );
                ] );
          ])
      tids
  in
  Mutex.lock lock;
  let externals = !external_events in
  Mutex.unlock lock;
  let proc_meta =
    if externals = [] then []
    else
      List.map
        (fun (pid, name) ->
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int 0);
              ("args", Json.Obj [ ("name", Json.String name) ]);
            ])
        [ (1, "client"); (2, "scalehls-serve") ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (proc_meta @ meta @ List.map event_json evs @ externals) );
      ("displayTimeUnit", Json.String "ms");
    ]

(** Write the Chrome trace JSON to [path]; atomic (tmp + rename), so a crash
    mid-flush never leaves a truncated trace. *)
let write_chrome path =
  let json = to_chrome () in
  Metrics.write_atomic path (fun oc -> output_string oc (Json.to_string json))
