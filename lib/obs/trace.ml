(** The span tracer. Spans, instants, and counter samples are recorded into
    per-domain buffers — each domain appends to its own buffer without taking
    any lock (the global mutex is touched once per domain, at buffer
    registration) — and merged deterministically at flush: events sort by
    (timestamp, domain id, per-domain sequence number), so two flushes of the
    same buffers agree, and the per-domain sequence keeps the order total even
    when the clock ties.

    Tracing is off by default; {!with_span} is a single [Atomic.get] away from
    a plain call in that state, which is what keeps the instrumented hot paths
    within noise of the uninstrumented ones. When enabled, events accumulate
    until {!write_chrome} (Chrome [trace_event] JSON, loadable in
    [chrome://tracing] and Perfetto) or {!events} drains them.

    Flushing is meant to happen after parallel sections complete (worker
    domains joined, e.g. after [Parpool.with_pool] returns): the join gives
    the happens-before edge that makes worker buffers safe to read. *)

type phase = Complete | Instant | Counter

type event = {
  phase : phase;
  name : string;
  cat : string;
  ts : int64;  (** ns since the trace epoch ({!enable}) *)
  dur : int64;  (** ns; meaningful for [Complete] only *)
  tid : int;  (** recording domain's id *)
  seq : int;  (** per-domain sequence number (merge tie-break) *)
  args : (string * Json.t) list;
}

type buffer = {
  b_tid : int;
  b_gen : int;
  mutable b_seq : int;
  mutable b_events : event list;  (** newest first *)
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let epoch = Atomic.make 0L
let main_tid = Atomic.make (-1)
let lock = Mutex.create ()
let buffers : buffer list ref = ref []
let dls_key : buffer option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let enabled () = Atomic.get enabled_flag

(* The calling domain's buffer, registering it on first use (or after a
   {!reset} invalidated the cached one). *)
let buffer () =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | Some b when b.b_gen = Atomic.get generation -> b
  | _ ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_gen = Atomic.get generation;
          b_seq = 0;
          b_events = [];
        }
      in
      Mutex.lock lock;
      buffers := b :: !buffers;
      Mutex.unlock lock;
      cell := Some b;
      b

let next_seq b =
  let s = b.b_seq in
  b.b_seq <- s + 1;
  s

let emit b e = b.b_events <- e :: b.b_events
let rel ns = Int64.sub ns (Atomic.get epoch)

(** Start a fresh trace: drop all recorded events and invalidate every
    domain's cached buffer. *)
let reset () =
  Mutex.lock lock;
  Atomic.incr generation;
  buffers := [];
  Mutex.unlock lock

(** Turn recording on; the current instant becomes timestamp 0. *)
let enable () =
  Atomic.set epoch (Clock.now_ns ());
  Atomic.set main_tid (Domain.self () :> int);
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(** [with_span_args name f] runs [f] inside a span. [f] returns the value
    plus extra span arguments computed during the run (IR statistics, cache
    outcomes, ...); with tracing disabled those extras are dropped — guard
    any expensive computation of them behind {!enabled}. An escaping
    exception still closes the span, tagged with an ["error"] argument. *)
let with_span_args ?(cat = "") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then fst (f ())
  else begin
    let b = buffer () in
    let t0 = Clock.now_ns () in
    let finish extra =
      let t1 = Clock.now_ns () in
      emit b
        {
          phase = Complete;
          name;
          cat;
          ts = rel t0;
          dur = Int64.sub t1 t0;
          tid = b.b_tid;
          seq = next_seq b;
          args = args @ extra;
        }
    in
    match f () with
    | v, extra ->
        finish extra;
        v
    | exception e ->
        finish [ ("error", Json.String (Printexc.to_string e)) ];
        raise e
  end

let with_span ?cat ?args name f = with_span_args ?cat ?args name (fun () -> (f (), []))

(** A zero-duration marker. *)
let instant ?(cat = "") ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    emit b
      {
        phase = Instant;
        name;
        cat;
        ts = rel (Clock.now_ns ());
        dur = 0L;
        tid = b.b_tid;
        seq = next_seq b;
        args;
      }
  end

(** A counter sample (Chrome renders these as stacked time series — used for
    e.g. the DSE frontier-size evolution). *)
let counter ?(cat = "") name values =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    emit b
      {
        phase = Counter;
        name;
        cat;
        ts = rel (Clock.now_ns ());
        dur = 0L;
        tid = b.b_tid;
        seq = next_seq b;
        args = List.map (fun (k, v) -> (k, Json.Float v)) values;
      }
  end

(** All recorded events, merged across domains into the deterministic order
    (timestamp, domain, sequence). Call after worker domains are joined. *)
let events () =
  Mutex.lock lock;
  let bufs = !buffers in
  Mutex.unlock lock;
  let all = List.concat_map (fun b -> List.rev b.b_events) bufs in
  List.sort
    (fun a b ->
      match Int64.compare a.ts b.ts with
      | 0 -> ( match compare a.tid b.tid with 0 -> compare a.seq b.seq | c -> c)
      | c -> c)
    all

(* ---- Chrome trace_event export ------------------------------------------- *)

let phase_str = function Complete -> "X" | Instant -> "i" | Counter -> "C"

let event_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "default" else e.cat));
      ("ph", Json.String (phase_str e.phase));
      ("ts", Json.Float (Clock.ns_to_us e.ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let dur =
    match e.phase with
    | Complete -> [ ("dur", Json.Float (Clock.ns_to_us e.dur)) ]
    | _ -> []
  in
  let scope = match e.phase with Instant -> [ ("s", Json.String "t") ] | _ -> [] in
  let args = match e.args with [] -> [] | l -> [ ("args", Json.Obj l) ] in
  Json.Obj (base @ dur @ scope @ args)

(** The whole trace as a Chrome [trace_event] JSON object, with thread-name
    metadata naming the coordinator and worker-domain lanes. *)
let to_chrome () =
  let evs = events () in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.tid) evs)
  in
  let main = Atomic.get main_tid in
  let meta =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.String
                      (if tid = main then "coordinator"
                       else Printf.sprintf "worker domain %d" tid) );
                ] );
          ])
      tids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map event_json evs));
      ("displayTimeUnit", Json.String "ms");
    ]

(** Write the Chrome trace JSON to [path]. *)
let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_chrome ())))
