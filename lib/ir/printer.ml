(** MLIR-flavoured textual printing of the IR, for examples, tests, and
    debugging. Values print as [%N]. *)

open Ir

let pp_value fmt v = Fmt.pf fmt "%%%d" v.vid

let pp_value_typed fmt v = Fmt.pf fmt "%%%d : %a" v.vid Ty.pp v.vty

let rec pp_op ?(indent = 0) fmt (o : op) =
  let pad = String.make indent ' ' in
  Fmt.pf fmt "%s" pad;
  (match o.results with
  | [] -> ()
  | rs -> Fmt.pf fmt "%a = " Fmt.(list ~sep:comma pp_value) rs);
  Fmt.pf fmt "\"%s\"(%a)" o.name Fmt.(list ~sep:comma pp_value) o.operands;
  if o.attrs <> [] then begin
    let pp_kv fmt (k, v) = Fmt.pf fmt "%s = %a" k Attr.pp v in
    Fmt.pf fmt " {%a}" Fmt.(list ~sep:comma pp_kv) o.attrs
  end;
  (match o.results with
  | [] -> ()
  | rs -> Fmt.pf fmt " : %a" Fmt.(list ~sep:comma Ty.pp) (List.map (fun v -> v.vty) rs));
  List.iter
    (fun r ->
      Fmt.pf fmt " {@\n";
      List.iteri
        (fun i b ->
          if i > 0 || b.bargs <> [] then
            Fmt.pf fmt "%s^bb%d(%a):@\n" (String.make (indent + 1) ' ') i
              Fmt.(list ~sep:comma pp_value_typed)
              b.bargs;
          List.iter (fun op -> Fmt.pf fmt "%a@\n" (pp_op ~indent:(indent + 2)) op) b.bops)
        r;
      Fmt.pf fmt "%s}" pad)
    o.regions

let op_to_string o =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  pp_op ~indent:0 fmt o;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let print o = print_endline (op_to_string o)
