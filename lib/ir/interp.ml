(** A reference interpreter for the loop/directive-level IR (arith, memref,
    affine, scf, func). Used throughout the test suite — and by the
    differential fuzzing oracle ({!Fuzz.Oracle}) — to prove that transform
    passes preserve program semantics: run a function before and after a
    transformation on the same inputs and compare the output memrefs.

    Runtime value model: buffers store every element as a [float]; integer
    memrefs hold integral floats and loads convert back through the result
    type ({!scalar_of_ty}). That buffer-side conversion is the only implicit
    coercion — scalar SSA values are strictly kinded, and using an integer
    where a float is required (or vice versa) raises a typed
    {!Interp_error}. *)

open Ir

type rvalue =
  | VInt of int
  | VFloat of float
  | VBuf of buffer
  | VUnit

and buffer = { shape : int list; data : float array; belt : Ty.t }

(** What went wrong, machine-checkably: oracles and tests dispatch on the
    kind, messages carry the details. *)
type error_kind =
  | Type_error  (** a value had the wrong runtime kind for the op *)
  | Bounds_error  (** memory access outside the buffer *)
  | Div_by_zero  (** integer division/remainder by zero *)
  | Unbound_value  (** use of an SSA value with no binding *)
  | Malformed_op  (** op structure violates the dialect encoding *)
  | Unsupported_op  (** operation outside the interpreter's coverage *)

let error_kind_to_string = function
  | Type_error -> "type error"
  | Bounds_error -> "out of bounds"
  | Div_by_zero -> "division by zero"
  | Unbound_value -> "unbound value"
  | Malformed_op -> "malformed op"
  | Unsupported_op -> "unsupported op"

exception Interp_error of error_kind * string

let () =
  Printexc.register_printer (function
    | Interp_error (k, msg) ->
        Some (Printf.sprintf "Interp_error(%s: %s)" (error_kind_to_string k) msg)
    | _ -> None)

let error kind fmt = Fmt.kstr (fun s -> raise (Interp_error (kind, s))) fmt

let alloc_buffer shape belt =
  { shape; data = Array.make (max 1 (Ty.num_elements shape)) 0.; belt }

let buffer_of_array shape data belt =
  if Array.length data <> Ty.num_elements shape then
    invalid_arg "Interp.buffer_of_array: size mismatch";
  { shape; data = Array.copy data; belt }

(* Row-major linearization. *)
let linearize shape idxs =
  let rec go shape idxs acc =
    match (shape, idxs) with
    | [], [] -> acc
    | s :: shape, i :: idxs ->
        if i < 0 || i >= s then
          error Bounds_error "index %d out of bounds (dim size %d)" i s;
        go shape idxs ((acc * s) + i)
    | _ -> error Malformed_op "rank mismatch in memory access"
  in
  go shape idxs 0

let kind_of_rvalue = function
  | VInt _ -> "int"
  | VFloat _ -> "float"
  | VBuf _ -> "memref"
  | VUnit -> "unit"

(* Strict projections: no implicit int<->float coercion of SSA values. A
   float where an integer is required (or vice versa) indicates a
   miscompiled/ill-typed program, exactly what the fuzzing oracle wants
   surfaced as a typed error rather than silently rounded away. *)
let as_int = function
  | VInt i -> i
  | v -> error Type_error "expected an integer value, got %s" (kind_of_rvalue v)

let as_float = function
  | VFloat f -> f
  | v -> error Type_error "expected a float value, got %s" (kind_of_rvalue v)

let as_buf = function
  | VBuf b -> b
  | v -> error Type_error "expected a memref value, got %s" (kind_of_rvalue v)

type t = {
  env : (int, rvalue) Hashtbl.t;
  module_ : op;  (** for resolving func.call *)
}

let create module_ = { env = Hashtbl.create 256; module_ }

let bind st v rv = Hashtbl.replace st.env v.vid rv

let lookup st v =
  match Hashtbl.find_opt st.env v.vid with
  | Some rv -> rv
  | None -> error Unbound_value "unbound value %%%d" v.vid

(* Buffer-side conversions (the documented exception to strictness): buffers
   physically store floats, so loads re-type through the result type and
   stores flatten scalars to float. *)
let scalar_of_ty ty f =
  if Ty.is_float ty then VFloat f
  else VInt (int_of_float f)

let float_of_scalar = function
  | VFloat f -> f
  | VInt i -> float_of_int i
  | (VBuf _ | VUnit) as v ->
      error Type_error "expected a scalar to store, got %s" (kind_of_rvalue v)

(* Evaluate affine map operands: all must be integers (index values). *)
let eval_map st map operands =
  let vals = Array.of_list (List.map (fun v -> as_int (lookup st v)) operands) in
  let nd = Affine.Map.num_dims map in
  let dims = Array.sub vals 0 nd in
  let syms = Array.sub vals nd (Array.length vals - nd) in
  Affine.Map.eval map ~dims ~syms

exception Returned of rvalue list

let cmp_int pred a b =
  match pred with
  | "eq" -> a = b
  | "ne" -> a <> b
  | "slt" | "ult" -> a < b
  | "sle" | "ule" -> a <= b
  | "sgt" | "ugt" -> a > b
  | "sge" | "uge" -> a >= b
  | p -> error Unsupported_op "unknown cmpi predicate %s" p

let cmp_float pred a b =
  match pred with
  | "oeq" | "ueq" -> a = b
  | "one" | "une" -> a <> b
  | "olt" | "ult" -> a < b
  | "ole" | "ule" -> a <= b
  | "ogt" | "ugt" -> a > b
  | "oge" | "uge" -> a >= b
  | p -> error Unsupported_op "unknown cmpf predicate %s" p

let rec exec_op st (o : op) : unit =
  let opnd i = List.nth o.operands i in
  let v i = lookup st (opnd i) in
  let bind_result rv = bind st (result o) rv in
  let binf f = bind_result (VFloat (f (as_float (v 0)) (as_float (v 1)))) in
  let bini f = bind_result (VInt (f (as_int (v 0)) (as_int (v 1)))) in
  match o.name with
  | "arith.constant" -> (
      match attr_exn o "value" with
      | Attr.Int i ->
          bind_result (if Ty.is_float (result o).vty then VFloat (float_of_int i) else VInt i)
      | Attr.Float f -> bind_result (VFloat f)
      | _ -> error Malformed_op "arith.constant: bad value attr")
  | "arith.addf" -> binf ( +. )
  | "arith.subf" -> binf ( -. )
  | "arith.mulf" -> binf ( *. )
  | "arith.divf" -> binf ( /. )
  | "arith.negf" -> bind_result (VFloat (-.as_float (v 0)))
  | "arith.maxf" -> binf Float.max
  | "arith.minf" -> binf Float.min
  | "arith.addi" -> bini ( + )
  | "arith.subi" -> bini ( - )
  | "arith.muli" -> bini ( * )
  (* Integer division semantics (documented, matching MLIR):
     - [arith.divi]  = signed division rounding toward zero (arith.divsi);
     - [arith.remi]  = signed remainder taking the sign of the dividend
       (arith.remsi) — OCaml's [(/)] and [(mod)];
     - [arith.floordivi] / [arith.ceildivi] = signed division rounding toward
       -inf / +inf (arith.floordivsi / arith.ceildivsi), the forms affine
       lowering produces.
     A zero divisor raises a typed [Div_by_zero] error in all four. *)
  | "arith.divi" ->
      bini (fun a b -> if b = 0 then error Div_by_zero "arith.divi: %d / 0" a else a / b)
  | "arith.remi" ->
      bini (fun a b -> if b = 0 then error Div_by_zero "arith.remi: %d mod 0" a else a mod b)
  | "arith.floordivi" ->
      bini (fun a b ->
          if b = 0 then error Div_by_zero "arith.floordivi: %d / 0" a
          else Affine.Expr.floor_div a b)
  | "arith.ceildivi" ->
      bini (fun a b ->
          if b = 0 then error Div_by_zero "arith.ceildivi: %d / 0" a
          else Affine.Expr.ceil_div a b)
  | "arith.maxi" -> bini max
  | "arith.mini" -> bini min
  | "arith.andi" -> bini ( land )
  | "arith.ori" -> bini ( lor )
  | "arith.xori" -> bini ( lxor )
  | "arith.shli" -> bini ( lsl )
  | "arith.shri" -> bini ( asr )
  | "arith.cmpi" ->
      bind_result (VInt (if cmp_int (str_attr o "predicate") (as_int (v 0)) (as_int (v 1)) then 1 else 0))
  | "arith.cmpf" ->
      bind_result (VInt (if cmp_float (str_attr o "predicate") (as_float (v 0)) (as_float (v 1)) then 1 else 0))
  | "arith.select" -> bind_result (if as_int (v 0) <> 0 then v 1 else v 2)
  | "arith.index_cast" | "arith.extf" | "arith.truncf" -> bind_result (v 0)
  | "arith.sitofp" -> bind_result (VFloat (float_of_int (as_int (v 0))))
  | "arith.fptosi" -> bind_result (VInt (int_of_float (as_float (v 0))))
  | "math.exp" -> bind_result (VFloat (exp (as_float (v 0))))
  | "math.log" -> bind_result (VFloat (log (as_float (v 0))))
  | "math.sqrt" -> bind_result (VFloat (sqrt (as_float (v 0))))
  | "math.tanh" -> bind_result (VFloat (tanh (as_float (v 0))))
  | "memref.alloc" | "memref.alloca" ->
      let m = Ty.as_memref (result o).vty in
      let buf = alloc_buffer m.Ty.shape m.Ty.elt in
      (* Weight buffers carry an [init_seed] attribute: fill with a
         deterministic pseudo-random pattern of small integers (the values a
         quantized model would be configured with). *)
      (match attr o "init_seed" with
      | Some (Attr.Int seed) ->
          Array.iteri
            (fun i _ ->
              buf.data.(i) <- float_of_int ((((i * 131) + seed) mod 7) - 3))
            buf.data
      | _ -> ());
      bind_result (VBuf buf)
  | "memref.dealloc" -> ()
  | "memref.copy" ->
      let src = as_buf (v 0) and dst = as_buf (v 1) in
      Array.blit src.data 0 dst.data 0 (Array.length src.data)
  | "memref.load" ->
      let buf = as_buf (v 0) in
      let idxs = List.map (fun v -> as_int (lookup st v)) (List.tl o.operands) in
      let f = buf.data.(linearize buf.shape idxs) in
      bind_result (scalar_of_ty (result o).vty f)
  | "memref.store" ->
      (* operands: value, memref, indices *)
      let value = v 0 and buf = as_buf (v 1) in
      let idxs = List.map (fun v -> as_int (lookup st v)) (List.tl (List.tl o.operands)) in
      buf.data.(linearize buf.shape idxs) <- float_of_scalar value
  | "affine.load" ->
      let buf = as_buf (v 0) in
      let idxs = eval_map st (map_attr o "map") (List.tl o.operands) in
      let f = buf.data.(linearize buf.shape idxs) in
      bind_result (scalar_of_ty (result o).vty f)
  | "affine.store" ->
      let value = v 0 and buf = as_buf (v 1) in
      let idxs = eval_map st (map_attr o "map") (List.tl (List.tl o.operands)) in
      buf.data.(linearize buf.shape idxs) <- float_of_scalar value
  | "affine.apply" -> (
      match eval_map st (map_attr o "map") o.operands with
      | [ r ] -> bind_result (VInt r)
      | _ -> error Malformed_op "affine.apply: map must have one result")
  | "affine.min" ->
      let rs = eval_map st (map_attr o "map") o.operands in
      bind_result (VInt (List.fold_left min max_int rs))
  | "affine.max" ->
      let rs = eval_map st (map_attr o "map") o.operands in
      bind_result (VInt (List.fold_left max min_int rs))
  | "affine.for" ->
      (* Bound maps: lb = max over lb-map results, ub = min over ub-map
         results (MLIR semantics). Operands: lb operands then ub operands,
         split by attr "lb_operands_count". *)
      let lb_map = map_attr o "lower_bound" and ub_map = map_attr o "upper_bound" in
      let n_lb = int_attr o "lb_operands" in
      let lb_opnds = List.filteri (fun i _ -> i < n_lb) o.operands in
      let ub_opnds = List.filteri (fun i _ -> i >= n_lb) o.operands in
      let lb = List.fold_left max min_int (eval_map st lb_map lb_opnds) in
      let ub = List.fold_left min max_int (eval_map st ub_map ub_opnds) in
      let step = int_attr o "step" in
      let body = body_block o in
      let iv = match body.bargs with [ iv ] -> iv | _ -> error Malformed_op "affine.for: bad body args" in
      let i = ref lb in
      while !i < ub do
        bind st iv (VInt !i);
        List.iter (exec_op st) body.bops;
        i := !i + step
      done
  | "scf.for" ->
      let lb = as_int (v 0) and ub = as_int (v 1) and step = as_int (v 2) in
      let body = body_block o in
      let iv = match body.bargs with [ iv ] -> iv | _ -> error Malformed_op "scf.for: bad body args" in
      let i = ref lb in
      while !i < ub do
        bind st iv (VInt !i);
        List.iter (exec_op st) body.bops;
        i := !i + step
      done
  | "affine.if" ->
      let set = Attr.as_set (attr_exn o "set") in
      let vals = Array.of_list (List.map (fun v -> as_int (lookup st v)) o.operands) in
      let nd = Affine.Set_.num_dims set in
      let dims = Array.sub vals 0 nd in
      let syms = Array.sub vals nd (Array.length vals - nd) in
      let taken = Affine.Set_.contains set ~dims ~syms in
      let region = if taken then region o 0 else region o 1 in
      List.iter (fun b -> List.iter (exec_op st) b.bops) region
  | "scf.if" ->
      let region = if as_int (v 0) <> 0 then region o 0 else region o 1 in
      List.iter (fun b -> List.iter (exec_op st) b.bops) region
  | "func.call" ->
      let callee = str_attr o "callee" in
      let f =
        match find_func st.module_ callee with
        | Some f -> f
        | None -> error Malformed_op "call to unknown function %s" callee
      in
      let args = List.map (lookup st) o.operands in
      let rets = call_func st f args in
      List.iter2 (bind st) o.results rets
  | "func.return" -> raise (Returned (List.map (lookup st) o.operands))
  | "affine.yield" | "scf.yield" -> ()
  | name -> error Unsupported_op "interp: unsupported operation %s" name

and call_func st f args =
  let body =
    match f.regions with
    | [ [ b ] ] -> b
    | _ -> error Malformed_op "func %s: expected single-block body" (func_name f)
  in
  (if List.length body.bargs <> List.length args then
     error Malformed_op "func %s: arity mismatch" (func_name f));
  List.iter2 (bind st) body.bargs args;
  try
    List.iter (exec_op st) body.bops;
    []
  with Returned vs -> vs

(** Run function [name] of [module_] on [args]. Buffers are shared by
    reference, so callers observe stores into argument memrefs. *)
let run_func module_ name args =
  let st = create module_ in
  let f =
    match find_func module_ name with
    | Some f -> f
    | None -> error Malformed_op "no function named %s" name
  in
  call_func st f args

(** Convenience: make a buffer argument filled by [f] at each linear index. *)
let buffer_init shape belt f =
  let b = alloc_buffer shape belt in
  Array.iteri (fun i _ -> b.data.(i) <- f i) b.data;
  b
