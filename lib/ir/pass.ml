(** Passes and a pass manager with per-pass timing (the paper collects compile
    runtimes via MLIR's [-pass-timing]; {!run_timed} provides the same
    statistic). A pass rewrites a whole module op. *)

type t = { pass_name : string; run : Ir.Ctx.t -> Ir.op -> Ir.op }

let make pass_name run = { pass_name; run }

(** Lift a per-function rewrite into a module pass. *)
let on_funcs pass_name f =
  make pass_name (fun ctx m -> Ir.module_map_funcs (f ctx) m)

type timing = { label : string; seconds : float }

let run_one ?(verify = false) pass ctx m =
  let m' = pass.run ctx m in
  if verify then Verify.verify_exn m';
  m'

(** Run a pipeline of passes in order. *)
let run_pipeline ?(verify = false) passes ctx m =
  List.fold_left (fun m p -> run_one ~verify p ctx m) m passes

(** Run a pipeline collecting wall-clock timing per pass. *)
let run_timed ?(verify = false) passes ctx m =
  let timings = ref [] in
  let m =
    List.fold_left
      (fun m p ->
        let t0 = Unix.gettimeofday () in
        let m' = run_one ~verify p ctx m in
        let t1 = Unix.gettimeofday () in
        timings := { label = p.pass_name; seconds = t1 -. t0 } :: !timings;
        m')
      m passes
  in
  (m, List.rev !timings)

let pp_timing fmt t = Fmt.pf fmt "%-32s %8.4fs" t.label t.seconds

let pp_timings fmt ts =
  let total = List.fold_left (fun acc t -> acc +. t.seconds) 0. ts in
  Fmt.pf fmt "===- Pass execution timing report -===@\n";
  List.iter (fun t -> Fmt.pf fmt "%a@\n" pp_timing t) ts;
  Fmt.pf fmt "%-32s %8.4fs" "Total" total
