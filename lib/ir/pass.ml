(** Passes and a pass manager with per-pass timing and instrumentation (the
    paper collects compile runtimes via MLIR's [-pass-timing]; {!run_timed}
    provides the same statistic, and {!register_instrumentation} mirrors
    MLIR's [PassInstrumentation] hooks). A pass rewrites a whole module op.

    Observability: when {!Obs.Trace} is enabled, every pass run records a
    span carrying its wall time, verifier time, and the IR-delta statistics
    ({!Op_stats}) of the rewrite; pipelines record an enclosing span. All
    timing uses the monotonic clock ({!Obs.Clock}) — never the wall clock —
    so reported durations cannot go negative or jump under clock steps. *)

type t = { pass_name : string; run : Ir.Ctx.t -> Ir.op -> Ir.op }

let make pass_name run = { pass_name; run }

(** Lift a per-function rewrite into a module pass. *)
let on_funcs pass_name f =
  make pass_name (fun ctx m -> Ir.module_map_funcs (f ctx) m)

type timing = { label : string; seconds : float }

(* ---- Instrumentation hooks ------------------------------------------------ *)

(** Callbacks around pass and pipeline execution, in the spirit of MLIR's
    [PassInstrumentation]. [after_pass]/[after_pipeline] receive the
    *rewritten* module. Callbacks may run on worker domains (the DSE engine
    runs cleanup pipelines concurrently): implementations must be re-entrant. *)
type instrumentation = {
  before_pipeline : string -> Ir.op -> unit;
  after_pipeline : string -> Ir.op -> unit;
  before_pass : string -> Ir.op -> unit;
  after_pass : string -> Ir.op -> unit;
}

let nop2 _ _ = ()

(** Build an instrumentation from the hooks you care about. *)
let instrumentation ?(before_pipeline = nop2) ?(after_pipeline = nop2)
    ?(before_pass = nop2) ?(after_pass = nop2) () =
  { before_pipeline; after_pipeline; before_pass; after_pass }

(* Registration order is invocation order. Atomic so registration from one
   domain is immediately coherent for runs on another. *)
let registered : instrumentation list Atomic.t = Atomic.make []

let register_instrumentation i =
  let rec go () =
    let cur = Atomic.get registered in
    if not (Atomic.compare_and_set registered cur (cur @ [ i ])) then go ()
  in
  go ()

let clear_instrumentations () = Atomic.set registered []

(* ---- Running passes ------------------------------------------------------- *)

let verify_timed ~verify m' =
  if not verify then 0.
  else begin
    let t0 = Obs.Clock.now_ns () in
    Verify.verify_exn m';
    Obs.Clock.since_s t0
  end

let run_one ?(verify = false) pass ctx m =
  let instrs = Atomic.get registered in
  List.iter (fun i -> i.before_pass pass.pass_name m) instrs;
  let m' =
    if not (Obs.Trace.enabled ()) then begin
      let m' = pass.run ctx m in
      ignore (verify_timed ~verify m');
      m'
    end
    else
      Obs.Trace.with_span_args ~cat:"pass" ("pass:" ^ pass.pass_name) (fun () ->
          let before = Op_stats.collect m in
          let t0 = Obs.Clock.now_ns () in
          let m' = pass.run ctx m in
          let pass_s = Obs.Clock.since_s t0 in
          let verify_s = verify_timed ~verify m' in
          let after = Op_stats.collect m' in
          let delta = Op_stats.diff ~before ~after in
          ( m',
            [
              ("pass_ms", Obs.Json.Float (pass_s *. 1e3));
              ("verify_ms", Obs.Json.Float (verify_s *. 1e3));
            ]
            @ Op_stats.to_args "" after
            @ Op_stats.to_args "delta_" delta ))
  in
  List.iter (fun i -> i.after_pass pass.pass_name m') instrs;
  m'

(** Run a pipeline of passes in order. [name] labels the pipeline for
    instrumentation callbacks and the enclosing trace span. *)
let run_pipeline ?(verify = false) ?(name = "pipeline") passes ctx m =
  let instrs = Atomic.get registered in
  List.iter (fun i -> i.before_pipeline name m) instrs;
  let body () = List.fold_left (fun m p -> run_one ~verify p ctx m) m passes in
  let m' =
    if Obs.Trace.enabled () then Obs.Trace.with_span ~cat:"pipeline" name body
    else body ()
  in
  List.iter (fun i -> i.after_pipeline name m') instrs;
  m'

(** Run a pipeline collecting monotonic wall-clock timing per pass. *)
let run_timed ?(verify = false) ?(name = "pipeline") passes ctx m =
  let instrs = Atomic.get registered in
  List.iter (fun i -> i.before_pipeline name m) instrs;
  let timings = ref [] in
  let m' =
    List.fold_left
      (fun m p ->
        let m', seconds = Obs.Clock.time_s (fun () -> run_one ~verify p ctx m) in
        timings := { label = p.pass_name; seconds } :: !timings;
        m')
      m passes
  in
  List.iter (fun i -> i.after_pipeline name m') instrs;
  (m', List.rev !timings)

(* ---- The timing report ----------------------------------------------------- *)

let pp_timing fmt t = Fmt.pf fmt "%-32s %8.4fs" t.label t.seconds

(** The [-pass-timing] report: repeated pass labels aggregate into one line
    (with a run count), each line shows its share of the total, and a total
    line closes the report. *)
let pp_timings fmt ts =
  let total = List.fold_left (fun acc t -> acc +. t.seconds) 0. ts in
  (* aggregate by label, preserving first-appearance order *)
  let tbl : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun t ->
      match Hashtbl.find_opt tbl t.label with
      | Some (secs, runs) ->
          secs := !secs +. t.seconds;
          incr runs
      | None ->
          Hashtbl.add tbl t.label (ref t.seconds, ref 1);
          order := t.label :: !order)
    ts;
  let pct s = if total > 0. then 100. *. s /. total else 0. in
  Fmt.pf fmt "===- Pass execution timing report -===@\n";
  Fmt.pf fmt "  Total Execution Time: %.4f seconds@\n@\n" total;
  Fmt.pf fmt "  ----Wall Time----  ----Name----@\n";
  List.iter
    (fun label ->
      let secs, runs = Hashtbl.find tbl label in
      Fmt.pf fmt "  %8.4fs (%5.1f%%)  %s%s@\n" !secs (pct !secs) label
        (if !runs > 1 then Printf.sprintf " (%d runs)" !runs else ""))
    (List.rev !order);
  Fmt.pf fmt "  %8.4fs (100.0%%)  Total" total
