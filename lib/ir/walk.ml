(** Generic IR traversals: iteration, folding, and post/pre-order rewriting
    over the operation tree.

    The iteration core is written as first-order mutual recursion (no
    intermediate closures or partial applications): these walkers run on the
    DSE hot path — the estimator, the fingerprinter, and the cleanup passes
    traverse every transformed module several times per design point — and
    the closure-per-region variant showed up in allocation profiles. *)

open Ir

(** Pre-order iteration over an op and everything nested in it. *)
let rec iter_op f (o : op) =
  f o;
  iter_regions f o.regions

and iter_regions f = function
  | [] -> ()
  | r :: rest ->
      iter_blocks f r;
      iter_regions f rest

and iter_blocks f = function
  | [] -> ()
  | (b : block) :: rest ->
      iter_seq f b.bops;
      iter_blocks f rest

and iter_seq f = function
  | [] -> ()
  | o :: rest ->
      iter_op f o;
      iter_seq f rest

(** Pre-order fold over an op and everything nested in it. *)
let rec fold_ops f acc (o : op) =
  let acc = f acc o in
  fold_regions f acc o.regions

and fold_regions f acc = function
  | [] -> acc
  | r :: rest -> fold_regions f (fold_blocks f acc r) rest

and fold_blocks f acc = function
  | [] -> acc
  | (b : block) :: rest -> fold_blocks f (fold_seq f acc b.bops) rest

and fold_seq f acc = function
  | [] -> acc
  | o :: rest -> fold_seq f (fold_ops f acc o) rest

(** Collect all ops satisfying [p], pre-order. *)
let collect p o = List.rev (fold_ops (fun acc o -> if p o then o :: acc else acc) [] o)

let count p o = fold_ops (fun n o -> if p o then n + 1 else n) 0 o

let exists p o =
  let module M = struct exception Found end in
  try
    iter_op (fun o -> if p o then raise M.Found) o;
    false
  with M.Found -> true

(** Post-order rewrite: children are rewritten first, then [f] is applied to
    the rebuilt op. [f] returns the replacement op. *)
let rec map_op f (o : op) =
  let regions =
    List.map (List.map (fun b -> { b with bops = List.map (map_op f) b.bops })) o.regions
  in
  f { o with regions }

(** Post-order rewrite at the op-list level: [f] maps each rebuilt op to a
    list of replacement ops (possibly empty to erase, or several to expand). *)
let rec expand_ops f (ops : op list) =
  List.concat_map
    (fun o ->
      let regions =
        List.map (List.map (fun b -> { b with bops = expand_ops f b.bops })) o.regions
      in
      f { o with regions })
    ops

(** Apply [expand_ops] inside every block of an op (not to the op itself). *)
let expand_in_op f (o : op) =
  let regions =
    List.map (List.map (fun b -> { b with bops = expand_ops f b.bops })) o.regions
  in
  { o with regions }

(** Substitute operand values throughout the tree according to [subst] (a map
    from value id to value). Result values and block args are untouched. *)
let substitute_uses subst o =
  let sub v = match Value_map.find_opt v.vid subst with Some v' -> v' | None -> v in
  map_op (fun o -> { o with operands = List.map sub o.operands }) o

let substitute_uses_in_ops subst ops =
  let sub v = match Value_map.find_opt v.vid subst with Some v' -> v' | None -> v in
  expand_ops (fun o -> [ { o with operands = List.map sub o.operands } ]) ops

(** All values used as operands anywhere inside [o]. *)
let used_values o =
  fold_ops (fun acc o -> List.fold_left (fun s v -> Value_set.add v.vid s) acc o.operands)
    Value_set.empty o

(** All values defined (results + block args) anywhere inside [o], including
    [o]'s own results. *)
let defined_values o =
  fold_ops
    (fun acc o ->
      let acc = List.fold_left (fun s v -> Value_set.add v.vid s) acc o.results in
      List.fold_left
        (fun acc r ->
          List.fold_left
            (fun acc b -> List.fold_left (fun s v -> Value_set.add v.vid s) acc b.bargs)
            acc r)
        acc o.regions)
    Value_set.empty o

(** Visit each free value of [o] exactly once, in first-use (pre-order)
    order: values used inside [o] but not defined inside it. Leaf ops (no
    regions) take an allocation-free fast path — an SSA op cannot use its own
    results, so every operand is free. The scheduler builds one dependency
    graph per block with a free-value query per node; this entry point avoids
    materializing the two {!Value_set}s that {!free_values} needs. *)
let iter_free_values f (o : op) =
  match o.regions with
  | [] -> (
      match o.operands with
      | [] -> ()
      | [ v ] -> f v
      | [ a; b ] ->
          f a;
          if b.vid <> a.vid then f b
      | vs ->
          let seen = ref [] in
          List.iter
            (fun (v : value) ->
              if not (List.memq v.vid !seen) then begin
                seen := v.vid :: !seen;
                f v
              end)
            vs)
  | _ ->
      let defined = Hashtbl.create 32 in
      iter_op
        (fun o ->
          List.iter (fun (v : value) -> Hashtbl.replace defined v.vid ()) o.results;
          (* bargs are not visited as ops; collect them per region here *)
          List.iter
            (List.iter (fun (b : block) ->
                 List.iter (fun (v : value) -> Hashtbl.replace defined v.vid ()) b.bargs))
            o.regions)
        o;
      let seen = Hashtbl.create 32 in
      iter_op
        (fun o ->
          List.iter
            (fun (v : value) ->
              if not (Hashtbl.mem defined v.vid || Hashtbl.mem seen v.vid) then begin
                Hashtbl.replace seen v.vid ();
                f v
              end)
            o.operands)
        o

(** Values used inside [o] but not defined inside it (its free values, i.e.
    captures from enclosing scopes). Operands of [o] itself are included. *)
let free_values o =
  let acc = ref Value_set.empty in
  iter_free_values (fun v -> acc := Value_set.add v.vid !acc) o;
  !acc
