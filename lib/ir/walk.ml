(** Generic IR traversals: iteration, folding, and post/pre-order rewriting
    over the operation tree. *)

open Ir

(** Pre-order iteration over an op and everything nested in it. *)
let rec iter_op f (o : op) =
  f o;
  List.iter (List.iter (fun b -> List.iter (iter_op f) b.bops)) o.regions

let fold_ops f acc o =
  let acc = ref acc in
  iter_op (fun o -> acc := f !acc o) o;
  !acc

(** Collect all ops satisfying [p], pre-order. *)
let collect p o = List.rev (fold_ops (fun acc o -> if p o then o :: acc else acc) [] o)

let count p o = fold_ops (fun n o -> if p o then n + 1 else n) 0 o

let exists p o =
  let module M = struct exception Found end in
  try
    iter_op (fun o -> if p o then raise M.Found) o;
    false
  with M.Found -> true

(** Post-order rewrite: children are rewritten first, then [f] is applied to
    the rebuilt op. [f] returns the replacement op. *)
let rec map_op f (o : op) =
  let regions =
    List.map (List.map (fun b -> { b with bops = List.map (map_op f) b.bops })) o.regions
  in
  f { o with regions }

(** Post-order rewrite at the op-list level: [f] maps each rebuilt op to a
    list of replacement ops (possibly empty to erase, or several to expand). *)
let rec expand_ops f (ops : op list) =
  List.concat_map
    (fun o ->
      let regions =
        List.map (List.map (fun b -> { b with bops = expand_ops f b.bops })) o.regions
      in
      f { o with regions })
    ops

(** Apply [expand_ops] inside every block of an op (not to the op itself). *)
let expand_in_op f (o : op) =
  let regions =
    List.map (List.map (fun b -> { b with bops = expand_ops f b.bops })) o.regions
  in
  { o with regions }

(** Substitute operand values throughout the tree according to [subst] (a map
    from value id to value). Result values and block args are untouched. *)
let substitute_uses subst o =
  let sub v = match Value_map.find_opt v.vid subst with Some v' -> v' | None -> v in
  map_op (fun o -> { o with operands = List.map sub o.operands }) o

let substitute_uses_in_ops subst ops =
  let sub v = match Value_map.find_opt v.vid subst with Some v' -> v' | None -> v in
  expand_ops (fun o -> [ { o with operands = List.map sub o.operands } ]) ops

(** All values used as operands anywhere inside [o]. *)
let used_values o =
  fold_ops (fun acc o -> List.fold_left (fun s v -> Value_set.add v.vid s) acc o.operands)
    Value_set.empty o

(** All values defined (results + block args) anywhere inside [o], including
    [o]'s own results. *)
let defined_values o =
  fold_ops
    (fun acc o ->
      let acc = List.fold_left (fun s v -> Value_set.add v.vid s) acc o.results in
      List.fold_left
        (fun acc r ->
          List.fold_left
            (fun acc b -> List.fold_left (fun s v -> Value_set.add v.vid s) acc b.bargs)
            acc r)
        acc o.regions)
    Value_set.empty o

(** Values used inside [o] but not defined inside it (its free values, i.e.
    captures from enclosing scopes). Operands of [o] itself are included. *)
let free_values o =
  let defined = defined_values o in
  let used = used_values o in
  Value_set.diff used defined
