(** Structure-preserving cloning with SSA renaming: every result value and
    block argument in the cloned subtree gets a fresh id; operands defined
    inside the subtree are remapped, and operands captured from outside follow
    [subst] (or stay as-is). Used by loop unrolling, function splitting, and
    the DSE engine (which transforms clones of the input module). *)

open Ir

let rec clone_op ctx (subst : value Value_map.t ref) (o : op) : op =
  let map_use v =
    match Value_map.find_opt v.vid !subst with Some v' -> v' | None -> v
  in
  let operands = List.map map_use o.operands in
  let results =
    List.map
      (fun v ->
        let v' = Ctx.fresh ctx v.vty in
        subst := Value_map.add v.vid v' !subst;
        v')
      o.results
  in
  let regions =
    List.map
      (List.map (fun b ->
           let bargs =
             List.map
               (fun v ->
                 let v' = Ctx.fresh ctx v.vty in
                 subst := Value_map.add v.vid v' !subst;
                 v')
               b.bargs
           in
           { bargs; bops = List.map (clone_op ctx subst) b.bops }))
      o.regions
  in
  { o with operands; results; regions }

(** Clone an op subtree. [subst] pre-seeds the value substitution (e.g. map a
    loop induction variable to a constant when unrolling). *)
let op ?(subst = Value_map.empty) ctx o =
  let s = ref subst in
  clone_op ctx s o

(** Clone a list of ops sharing one substitution environment (definitions made
    by earlier ops are visible to later ones). Returns the clones and the
    final substitution. *)
let ops ?(subst = Value_map.empty) ctx os =
  let s = ref subst in
  let clones = List.map (clone_op ctx s) os in
  (clones, !s)
