(** Structural and SSA verification of the IR. Checks:
    - every value has a single definition (op result or block argument);
    - every operand use is dominated by its definition (defined earlier in the
      same block, as a block arg in scope, or in an enclosing scope);
    - known structured ops have the expected region shapes. *)

open Ir

type error = { op_name : string; message : string }

let err op_name fmt = Fmt.kstr (fun message -> { op_name; message }) fmt

let pp_error fmt e = Fmt.pf fmt "[%s] %s" e.op_name e.message

(* Region-shape expectations for structured ops. *)
let expected_regions = function
  | "module" | "func" | "affine.for" | "scf.for" | "scf.while" | "graph.stage" -> Some 1
  | "affine.if" | "scf.if" -> Some 2
  | "arith.constant" | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi"
  | "arith.floordivi" | "arith.ceildivi"
  | "arith.cmpi" | "arith.cmpf" | "arith.select" | "arith.index_cast"
  | "arith.sitofp" | "arith.fptosi" | "arith.extf" | "arith.truncf"
  | "arith.negf" | "arith.maxf" | "arith.minf" | "arith.maxi" | "arith.mini"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.shli" | "arith.shri"
  | "memref.load" | "memref.store" | "memref.alloc" | "memref.dealloc" | "memref.copy"
  | "affine.load" | "affine.store" | "affine.apply" | "affine.yield"
  | "scf.yield" | "func.return" | "func.call" | "math.exp" | "math.log"
  | "math.sqrt" | "math.tanh" -> Some 0
  | _ -> None

let verify_op (top : op) : error list =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let defined : Value_set.t ref = ref Value_set.empty in
  let define where v =
    if Value_set.mem v.vid !defined then
      add (err where "value %%%d defined more than once" v.vid)
    else defined := Value_set.add v.vid !defined
  in
  (* [scope]: values visible at the current point. *)
  let rec go_op (scope : Value_set.t) (o : op) : Value_set.t =
    List.iter
      (fun v ->
        if not (Value_set.mem v.vid scope) then
          add (err o.name "use of undefined or out-of-scope value %%%d" v.vid))
      o.operands;
    (match expected_regions o.name with
    | Some n when List.length o.regions <> n ->
        add (err o.name "expected %d regions, found %d" n (List.length o.regions))
    | Some _ | None -> ());
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            List.iter (define o.name) b.bargs;
            let inner =
              List.fold_left (fun s v -> Value_set.add v.vid s) scope b.bargs
            in
            let (_ : Value_set.t) = go_block inner b in
            ())
          r)
      o.regions;
    List.iter (define o.name) o.results;
    List.fold_left (fun s v -> Value_set.add v.vid s) scope o.results
  and go_block scope b =
    List.fold_left go_op scope b.bops
  in
  let (_ : Value_set.t) = go_op Value_set.empty top in
  List.rev !errors

let verify top =
  match verify_op top with
  | [] -> Ok ()
  | errors -> Error errors

(** Raise [Invalid_argument] with a readable report on verification failure.
    Handy in tests and at pass-pipeline boundaries. *)
let verify_exn top =
  match verify top with
  | Ok () -> ()
  | Error errors ->
      invalid_arg
        (Fmt.str "IR verification failed:@\n%a"
           Fmt.(list ~sep:(any "@\n") pp_error)
           errors)
