(** Float and float-buffer comparison — the single definition shared by the
    test-suites and the differential fuzzing oracle ({!Interp} output buffers
    are [float array]s).

    Two comparators are provided:
    - relative-epsilon: [|x - y| <= eps * (1 + |y|)] — the historical
      semantics-equivalence tolerance of the test-suite (transforms may
      reassociate float arithmetic, so bit-equality is too strict);
    - ULP distance: the number of representable doubles between two values,
      for callers that want a scale-free bound.

    Non-finite values compare structurally: two NaNs are equal, two
    infinities are equal iff they have the same sign. This keeps the
    comparators total on anything an interpreter run can produce. *)

let default_eps = 1e-3

(** Both non-finite and structurally equal (NaN ~ NaN, inf ~ inf same sign). *)
let same_non_finite x y =
  match (Float.classify_float x, Float.classify_float y) with
  | FP_nan, FP_nan -> true
  | FP_infinite, FP_infinite -> x = y
  | _ -> false

(** Relative-epsilon scalar comparison. Non-finite operands never take the
    arithmetic branch (inf - -inf = inf would satisfy any relative bound). *)
let close ?(eps = default_eps) x y =
  if Float.is_finite x && Float.is_finite y then
    x = y || Float.abs (x -. y) <= eps *. (1. +. Float.abs y)
  else x = y || same_non_finite x y

(* Map a double onto a monotone integer line: negative floats are reflected
   so that consecutive integers are consecutive representable doubles. *)
let ordered_bits f =
  let b = Int64.bits_of_float f in
  if Int64.compare b 0L < 0 then Int64.sub Int64.min_int b else b

(** ULP distance between two doubles; [Int64.max_int] if either is NaN. *)
let ulp_dist x y =
  if Float.is_nan x || Float.is_nan y then Int64.max_int
  else
    let a = ordered_bits x and b = ordered_bits y in
    Int64.abs (Int64.sub a b)

(** ULP-bounded scalar comparison (NaN ~ NaN holds, mixed NaN does not). *)
let ulp_close ?(ulps = 64L) x y =
  same_non_finite x y || Int64.compare (ulp_dist x y) ulps <= 0

(** First disagreement between two buffers, if any. *)
type mismatch =
  | Length of { want : int; got : int }
  | Element of { index : int; want : float; got : float }

let pp_mismatch fmt = function
  | Length { want; got } -> Fmt.pf fmt "length mismatch: want %d, got %d" want got
  | Element { index; want; got } ->
      Fmt.pf fmt "buffers differ at [%d]: want %h (%g), got %h (%g)" index want
        want got got

(** Compare [got] against [want] element-wise with {!close}; [None] means the
    buffers agree. *)
let compare_arrays ?eps want got =
  if Array.length want <> Array.length got then
    Some (Length { want = Array.length want; got = Array.length got })
  else
    let n = Array.length want in
    let rec go i =
      if i >= n then None
      else if close ?eps want.(i) got.(i) then go (i + 1)
      else Some (Element { index = i; want = want.(i); got = got.(i) })
    in
    go 0

let arrays_close ?eps a b = Option.is_none (compare_arrays ?eps a b)

(** Largest relative deviation [|x-y| / (1+|y|)] over the buffers (0 when one
    is empty); [infinity] on shape mismatch or unpaired non-finite values. *)
let max_rel_diff want got =
  if Array.length want <> Array.length got then infinity
  else
    let acc = ref 0. in
    Array.iteri
      (fun i x ->
        let y = got.(i) in
        let d =
          if x = y || same_non_finite x y then 0.
          else Float.abs (x -. y) /. (1. +. Float.abs x)
        in
        if Float.is_nan d then acc := infinity
        else if d > !acc then acc := d)
      want;
    !acc
