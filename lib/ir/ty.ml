(** The IR type system: scalars, [index], tensors (graph level), memrefs
    (loop/directive level, carrying an optional affine layout map encoding
    array partitioning plus a memory space encoding the resource directive),
    and function types. *)

type t =
  | Index
  | I1
  | I8
  | I32
  | I64
  | F32
  | F64
  | Tensor of { shape : int list; elt : t }
  | Memref of memref
  | Fn of { inputs : t list; outputs : t list }
  | None_ty

and memref = {
  shape : int list;
  elt : t;
  layout : Affine.Map.t option;
      (** Array-partition encoding (§4.3.3): for an N-d memref the map has N
          inputs and 2N results; the first N results are partition indices and
          the last N physical indices. [None] means identity (no partition). *)
  memspace : int;
      (** Resource directive (§4.3.4): see {!Memspace}. *)
}

(** Memory spaces used by the resource directive. *)
module Memspace = struct
  let default = 0 (* tool's choice; on-chip *)
  let bram_s1p = 1 (* single-port BRAM *)
  let bram_s2p = 2 (* simple dual-port BRAM *)
  let bram_t2p = 3 (* true dual-port BRAM *)
  let uram = 4
  let dram = 5

  let to_string = function
    | 0 -> "default"
    | 1 -> "bram_s1p"
    | 2 -> "bram_s2p"
    | 3 -> "bram_t2p"
    | 4 -> "uram"
    | 5 -> "dram"
    | n -> Printf.sprintf "memspace%d" n

  (** Number of simultaneous read/write ports the memory kind offers per
      physical bank. Simple dual-port: one read + one write. *)
  let ports = function
    | 1 -> 1
    | 2 -> 2
    | 3 -> 2
    | 4 -> 2
    | 5 -> 1 (* DRAM: serialized through one AXI port *)
    | _ -> 2 (* default maps to simple dual-port *)
end

let memref ?(layout = None) ?(memspace = Memspace.default) shape elt =
  Memref { shape; elt; layout; memspace }

let tensor shape elt = Tensor { shape; elt }
let fn inputs outputs = Fn { inputs; outputs }

let is_float = function F32 | F64 -> true | _ -> false
let is_int = function I1 | I8 | I32 | I64 | Index -> true | _ -> false

let is_memref = function Memref _ -> true | _ -> false
let is_tensor = function Tensor _ -> true | _ -> false

let as_memref = function
  | Memref m -> m
  | _ -> invalid_arg "Ty.as_memref: not a memref"

let as_tensor = function
  | Tensor { shape; elt } -> (shape, elt)
  | _ -> invalid_arg "Ty.as_tensor: not a tensor"

(** Bit width of a scalar type. *)
let bits = function
  | I1 -> 1
  | I8 -> 8
  | I32 | F32 -> 32
  | I64 | F64 -> 64
  | Index -> 64
  | Tensor _ | Memref _ | Fn _ | None_ty ->
      invalid_arg "Ty.bits: not a scalar type"

let num_elements shape = List.fold_left ( * ) 1 shape

(** Total storage bits for a memref or tensor. *)
let storage_bits = function
  | Memref { shape; elt; _ } | Tensor { shape; elt } ->
      num_elements shape * bits elt
  | _ -> invalid_arg "Ty.storage_bits: not an aggregate type"

let rec equal a b =
  match (a, b) with
  | Index, Index | I1, I1 | I8, I8 | I32, I32 | I64, I64 | F32, F32 | F64, F64
  | None_ty, None_ty -> true
  | Tensor a, Tensor b -> a.shape = b.shape && equal a.elt b.elt
  | Memref a, Memref b ->
      a.shape = b.shape && equal a.elt b.elt && a.memspace = b.memspace
      && Option.equal Affine.Map.equal a.layout b.layout
  | Fn a, Fn b ->
      List.length a.inputs = List.length b.inputs
      && List.length a.outputs = List.length b.outputs
      && List.for_all2 equal a.inputs b.inputs
      && List.for_all2 equal a.outputs b.outputs
  | ( ( Index | I1 | I8 | I32 | I64 | F32 | F64 | Tensor _ | Memref _ | Fn _
      | None_ty ),
      _ ) -> false

let rec pp fmt = function
  | Index -> Fmt.string fmt "index"
  | I1 -> Fmt.string fmt "i1"
  | I8 -> Fmt.string fmt "i8"
  | I32 -> Fmt.string fmt "i32"
  | I64 -> Fmt.string fmt "i64"
  | F32 -> Fmt.string fmt "f32"
  | F64 -> Fmt.string fmt "f64"
  | None_ty -> Fmt.string fmt "none"
  | Tensor { shape; elt } ->
      Fmt.pf fmt "tensor<%a%a>"
        Fmt.(list ~sep:nop (fmt "%dx"))
        shape pp elt
  | Memref { shape; elt; layout; memspace } ->
      Fmt.pf fmt "memref<%a%a"
        Fmt.(list ~sep:nop (fmt "%dx"))
        shape pp elt;
      Option.iter (fun m -> Fmt.pf fmt ", %a" Affine.Map.pp m) layout;
      if memspace <> 0 then Fmt.pf fmt ", %s" (Memspace.to_string memspace);
      Fmt.string fmt ">"
  | Fn { inputs; outputs } ->
      Fmt.pf fmt "(%a) -> (%a)"
        Fmt.(list ~sep:comma pp)
        inputs
        Fmt.(list ~sep:comma pp)
        outputs

let to_string t = Fmt.str "%a" pp t
