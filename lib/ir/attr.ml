(** Operation attributes: compile-time-constant parameters of operations,
    mirroring MLIR attributes. Directive-level information (the hlscpp dialect)
    is stored as structured [Dict] attributes. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ty of Ty.t
  | Arr of t list
  | Map of Affine.Map.t
  | Set of Affine.Set_.t
  | Dict of (string * t) list

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Ty x, Ty y -> Ty.equal x y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Map x, Map y -> Affine.Map.equal x y
  | Set x, Set y -> x = y
  | Dict x, Dict y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Unit | Bool _ | Int _ | Float _ | Str _ | Ty _ | Arr _ | Map _ | Set _ | Dict _), _
    -> false

(* ---- Interning ----------------------------------------------------------- *)

(** Interned attribute keys. Attribute lists are tiny assoc lists scanned on
    every directive or map lookup; sharing one physical string per well-known
    key lets {!Ir.attr} shortcut the comparison with physical equality before
    falling back to [String.equal]. [Key.intern] registers ad-hoc keys into
    the same pool (idempotent, returns the canonical representative). *)
module Key = struct
  let pool : (string, string) Hashtbl.t = Hashtbl.create 64

  let intern s =
    match Hashtbl.find_opt pool s with
    | Some k -> k
    | None ->
        Hashtbl.add pool s s;
        s

  let map = intern "map"
  let set = intern "set"
  let value = intern "value"
  let lb_map = intern "lb_map"
  let ub_map = intern "ub_map"
  let step = intern "step"
  let sym_name = intern "sym_name"
  let function_type = intern "function_type"
  let callee = intern "callee"
  let loop_directive = intern "hlscpp.loop_directive"
  let func_directive = intern "hlscpp.func_directive"
end

(* Common attribute values, preallocated: booleans and the small integers
   that dominate directive dictionaries (pipeline flags, target IIs, steps,
   unroll factors). Constructing via {!bool_} / {!int_} makes the hot
   directive-building paths allocation-free. *)
let true_ = Bool true
let false_ = Bool false
let bool_ b = if b then true_ else false_
let unit_ = Unit

let small_ints = Array.init 257 (fun i -> Int (i - 128))
let int_ i = if i >= -128 && i <= 128 then small_ints.(i + 128) else Int i

let as_int = function Int i -> i | _ -> invalid_arg "Attr.as_int"
let as_bool = function Bool b -> b | _ -> invalid_arg "Attr.as_bool"
let as_str = function Str s -> s | _ -> invalid_arg "Attr.as_str"
let as_float = function Float f -> f | _ -> invalid_arg "Attr.as_float"
let as_ty = function Ty t -> t | _ -> invalid_arg "Attr.as_ty"
let as_map = function Map m -> m | _ -> invalid_arg "Attr.as_map"
let as_set = function Set s -> s | _ -> invalid_arg "Attr.as_set"
let as_arr = function Arr a -> a | _ -> invalid_arg "Attr.as_arr"
let as_dict = function Dict d -> d | _ -> invalid_arg "Attr.as_dict"

let int_arr xs = Arr (List.map (fun i -> Int i) xs)
let as_int_arr a = List.map as_int (as_arr a)

let dict_find key = function
  | Dict d -> List.assoc_opt key d
  | _ -> invalid_arg "Attr.dict_find"

let rec pp fmt = function
  | Unit -> Fmt.string fmt "unit"
  | Bool b -> Fmt.bool fmt b
  | Int i -> Fmt.int fmt i
  | Float f -> Fmt.pf fmt "%g" f
  | Str s -> Fmt.pf fmt "%S" s
  | Ty t -> Ty.pp fmt t
  | Arr xs -> Fmt.pf fmt "[%a]" Fmt.(list ~sep:comma pp) xs
  | Map m -> Fmt.pf fmt "affine_map<%a>" Affine.Map.pp m
  | Set s -> Fmt.pf fmt "affine_set<%a>" Affine.Set_.pp s
  | Dict d ->
      let pp_kv fmt (k, v) = Fmt.pf fmt "%s = %a" k pp v in
      Fmt.pf fmt "{%a}" Fmt.(list ~sep:comma pp_kv) d

let to_string a = Fmt.str "%a" pp a
