(** IR statistics — the [-print-op-stats] analog: op / block / region counts,
    broken down by op name and by dialect, collected with one {!Walk} pass.
    The pass instrumentation records the delta of these across each pass, so
    a trace shows what every pass did to the module, not just how long it
    took. *)

type t = {
  ops : int;
  blocks : int;
  regions : int;
  by_name : (string * int) list;  (** sorted by op name *)
  by_dialect : (string * int) list;  (** sorted by dialect *)
}

let empty = { ops = 0; blocks = 0; regions = 0; by_name = []; by_dialect = [] }

(** The dialect prefix of a fully-qualified op name ("affine.for" ->
    "affine"); names without a dot count as "builtin". *)
let dialect_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> "builtin"

let sorted_assoc tbl =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let collect (o : Ir.op) : t =
  let ops = ref 0 and blocks = ref 0 and regions = ref 0 in
  let names : (string, int) Hashtbl.t = Hashtbl.create 32 in
  Walk.iter_op
    (fun op ->
      incr ops;
      regions := !regions + List.length op.Ir.regions;
      List.iter (fun r -> blocks := !blocks + List.length r) op.Ir.regions;
      Hashtbl.replace names op.Ir.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt names op.Ir.name)))
    o;
  let by_name = sorted_assoc names in
  let dialects : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (n, c) ->
      let d = dialect_of n in
      Hashtbl.replace dialects d (c + Option.value ~default:0 (Hashtbl.find_opt dialects d)))
    by_name;
  {
    ops = !ops;
    blocks = !blocks;
    regions = !regions;
    by_name;
    by_dialect = sorted_assoc dialects;
  }

(* Pointwise [after - before] over the union of keys, zero entries dropped. *)
let diff_assoc before after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) after;
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (Option.value ~default:0 (Hashtbl.find_opt tbl k) - v))
    before;
  List.filter (fun (_, v) -> v <> 0) (sorted_assoc tbl)

(** What a rewrite did: positive entries were created, negative erased. *)
let diff ~before ~after =
  {
    ops = after.ops - before.ops;
    blocks = after.blocks - before.blocks;
    regions = after.regions - before.regions;
    by_name = diff_assoc before.by_name after.by_name;
    by_dialect = diff_assoc before.by_dialect after.by_dialect;
  }

(** The [-print-op-stats] report shape. *)
let pp fmt t =
  Fmt.pf fmt "Operations encountered:@\n";
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 t.by_name
  in
  List.iter (fun (n, c) -> Fmt.pf fmt "  %-*s , %d@\n" width n c) t.by_name;
  Fmt.pf fmt "%d ops, %d blocks, %d regions" t.ops t.blocks t.regions

(** Span-argument encoding of a stats (or stats-delta) record. *)
let to_args prefix t =
  [
    (prefix ^ "ops", Obs.Json.Int t.ops);
    (prefix ^ "blocks", Obs.Json.Int t.blocks);
    (prefix ^ "regions", Obs.Json.Int t.regions);
    ( prefix ^ "by_dialect",
      Obs.Json.Obj (List.map (fun (d, c) -> (d, Obs.Json.Int c)) t.by_dialect) );
  ]
