(** Structural fingerprinting: a 64-bit bottom-up hash of an operation tree
    that is invariant under SSA value renumbering but sensitive to every
    structural feature — op names, attributes (with constructor tags, so
    [Int 4] and [Float 4.] differ), result/operand types, region shape, and
    the def-use wiring between ops.

    Value identity is abstracted by local value numbering: results and block
    arguments are numbered in pre-order definition order, and operands defined
    outside the fingerprinted tree ("free" values) are numbered by first use
    under a distinct tag. Two ops built by independent {!Ir.Ctx}s therefore
    fingerprint equally iff they are structurally identical.

    The DSE uses fingerprints as O(1) cache keys: for the evaluation cache
    (pre-module fingerprint × directive configuration) and for the estimator
    memo table (transformed-module fingerprint). *)

(* splitmix64 finalizer: a cheap, well-distributed 64-bit mixer. *)
let mix (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let combine (h : int64) (x : int64) : int64 =
  mix (Int64.add (Int64.mul h 0x9e3779b97f4a7c15L) x)

let of_int h i = combine h (Int64.of_int i)

let of_string h s =
  (* FNV-1a over the bytes, folded into the running hash. *)
  let fnv = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      fnv := Int64.logxor !fnv (Int64.of_int (Char.code c));
      fnv := Int64.mul !fnv 0x100000001b3L)
    s;
  combine h !fnv

(* Constructor tags keep differently-typed but identically-printed payloads
   apart (e.g. Attr.Int 4 vs Attr.Float 4., or a Str that spells a type). *)
let tag h t = combine h (Int64.of_int (0x51 + t))

(* Local value numbering state: vid -> local number, plus a per-walk type
   memo (a module mentions few distinct types but very many values; keeping
   the memo walk-local avoids shared mutable state across DSE domains). *)
type numbering = {
  nums : (int, int) Hashtbl.t;
  tys : (Ty.t, int64) Hashtbl.t;
  mutable next : int;
}

(* Types hash via their precise printed form (layout maps and memory spaces
   included). *)
let ty_hash st (t : Ty.t) : int64 =
  match Hashtbl.find_opt st.tys t with
  | Some h -> h
  | None ->
      let h = of_string (tag 0L 1) (Ty.to_string t) in
      Hashtbl.add st.tys t h;
      h

let rec attr_hash st (a : Attr.t) : int64 =
  match a with
  | Attr.Unit -> tag 0L 10
  | Attr.Bool b -> combine (tag 0L 11) (if b then 1L else 0L)
  | Attr.Int i -> of_int (tag 0L 12) i
  | Attr.Float f -> combine (tag 0L 13) (Int64.bits_of_float f)
  | Attr.Str s -> of_string (tag 0L 14) s
  | Attr.Ty t -> combine (tag 0L 15) (ty_hash st t)
  | Attr.Arr xs ->
      List.fold_left (fun h x -> combine h (attr_hash st x)) (tag 0L 16) xs
  | Attr.Map m -> of_string (tag 0L 17) (Affine.Map.to_string m)
  | Attr.Set s -> of_string (tag 0L 18) (Fmt.str "%a" Affine.Set_.pp s)
  | Attr.Dict kvs ->
      List.fold_left
        (fun h (k, v) -> combine (of_string h k) (attr_hash st v))
        (tag 0L 19) kvs

let free_bit = 1 lsl 30 (* distinguishes free values from local definitions *)

let number st v =
  Hashtbl.replace st.nums v.Ir.vid st.next;
  st.next <- st.next + 1

let operand_num st v =
  match Hashtbl.find_opt st.nums v.Ir.vid with
  | Some n -> n
  | None ->
      (* Free value: number by first use, tagged apart from definitions. *)
      let n = st.next lor free_bit in
      Hashtbl.replace st.nums v.Ir.vid n;
      st.next <- st.next + 1;
      n

let rec op_hash st (o : Ir.op) : int64 =
  let h = of_string (tag 0L 2) o.Ir.name in
  let h =
    List.fold_left
      (fun h v -> combine (of_int h (operand_num st v)) (ty_hash st v.Ir.vty))
      (tag h 3) o.Ir.operands
  in
  (* Results are numbered here (pre-order definition point) and their types
     folded in; their local numbers are implied by position. *)
  let h =
    List.fold_left
      (fun h v ->
        number st v;
        combine h (ty_hash st v.Ir.vty))
      (tag h 4) o.Ir.results
  in
  let h =
    List.fold_left
      (fun h (k, v) -> combine (of_string h k) (attr_hash st v))
      (tag h 5) o.Ir.attrs
  in
  List.fold_left
    (fun h (r : Ir.region) ->
      List.fold_left
        (fun h (b : Ir.block) ->
          let h =
            List.fold_left
              (fun h v ->
                number st v;
                combine h (ty_hash st v.Ir.vty))
              (tag h 7) b.Ir.bargs
          in
          List.fold_left (fun h o -> combine h (op_hash st o)) h b.Ir.bops)
        (tag h 6) r)
    h o.Ir.regions

(** Fingerprint of an operation tree. Pure function of the op's structure:
    independent of vids, of the minting {!Ir.Ctx}, and of physical sharing. *)
let op (o : Ir.op) : int64 =
  op_hash { nums = Hashtbl.create 256; tys = Hashtbl.create 16; next = 0 } o

(** Fingerprint as a hex string (stable across runs; handy for logs/keys). *)
let to_hex (h : int64) = Printf.sprintf "%016Lx" h
