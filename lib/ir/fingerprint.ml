(** Structural fingerprinting: a 64-bit bottom-up hash of an operation tree
    that is invariant under SSA value renumbering but sensitive to every
    structural feature — op names, attributes (with constructor tags, so
    [Int 4] and [Float 4.] differ), result/operand types, region shape, and
    the def-use wiring between ops.

    Value identity is abstracted by local value numbering: results and block
    arguments are numbered in pre-order definition order, and operands defined
    outside the fingerprinted tree ("free" values) are numbered by first use
    under a distinct tag. Two ops built by independent {!Ir.Ctx}s therefore
    fingerprint equally iff they are structurally identical.

    The DSE uses fingerprints as O(1) cache keys: for the evaluation cache
    (pre-module fingerprint × directive configuration) and for the estimator
    memo table (transformed-module fingerprint). *)

(* splitmix64 finalizer: a cheap, well-distributed 64-bit mixer. *)
let mix (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let combine (h : int64) (x : int64) : int64 =
  mix (Int64.add (Int64.mul h 0x9e3779b97f4a7c15L) x)

let of_int h i = combine h (Int64.of_int i)

let of_string h s =
  (* FNV-1a over the bytes, folded into the running hash. *)
  let fnv = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      fnv := Int64.logxor !fnv (Int64.of_int (Char.code c));
      fnv := Int64.mul !fnv 0x100000001b3L)
    s;
  combine h !fnv

(* Constructor tags keep differently-typed but identically-printed payloads
   apart (e.g. Attr.Int 4 vs Attr.Float 4., or a Str that spells a type). *)
let tag h t = combine h (Int64.of_int (0x51 + t))

(* Local value numbering state: vid -> local number, plus a per-walk type
   memo (a module mentions few distinct types but very many values; keeping
   the memo walk-local avoids shared mutable state across DSE domains).

   [free_hook] is folded into the hash at the first use of each free value:
   callers use it to hash the *environment* of a subtree (e.g. the ranges of
   enclosing induction variables) so the fingerprint keys analyses whose
   result depends on context, not just on subtree structure. [attr_hook] can
   rewrite attributes before hashing (e.g. normalize a directive field the
   analysis is independent of). *)
type numbering = {
  nums : (int, int) Hashtbl.t;
  tys : (Ty.t, int64) Hashtbl.t;
  mutable next : int;
  free_hook : Ir.value -> int64;
  attr_hook : string -> Attr.t -> Attr.t;
}

let no_free_hook (_ : Ir.value) = 0L
let no_attr_hook (_ : string) (a : Attr.t) = a

(* Types hash via their precise printed form (layout maps and memory spaces
   included). *)
let ty_hash st (t : Ty.t) : int64 =
  match Hashtbl.find_opt st.tys t with
  | Some h -> h
  | None ->
      let h = of_string (tag 0L 1) (Ty.to_string t) in
      Hashtbl.add st.tys t h;
      h

(* Affine payloads hash structurally rather than via their printed form:
   map/set attributes are the most common attrs on the DSE hot path
   (affine.load/store/apply/if all carry one) and pretty-printing them
   dominated the old hash cost. *)
let rec expr_hash (e : Affine.Expr.t) : int64 =
  match e with
  | Affine.Expr.Dim i -> of_int (tag 0L 20) i
  | Affine.Expr.Sym i -> of_int (tag 0L 21) i
  | Affine.Expr.Const c -> of_int (tag 0L 22) c
  | Affine.Expr.Add (a, b) -> combine (combine (tag 0L 23) (expr_hash a)) (expr_hash b)
  | Affine.Expr.Mul (a, b) -> combine (combine (tag 0L 24) (expr_hash a)) (expr_hash b)
  | Affine.Expr.Mod (a, b) -> combine (combine (tag 0L 25) (expr_hash a)) (expr_hash b)
  | Affine.Expr.Floor_div (a, b) ->
      combine (combine (tag 0L 26) (expr_hash a)) (expr_hash b)
  | Affine.Expr.Ceil_div (a, b) ->
      combine (combine (tag 0L 27) (expr_hash a)) (expr_hash b)

let map_hash (m : Affine.Map.t) : int64 =
  let h = of_int (of_int (tag 0L 17) (Affine.Map.num_dims m)) (Affine.Map.num_syms m) in
  List.fold_left (fun h e -> combine h (expr_hash e)) h (Affine.Map.results m)

let set_hash (s : Affine.Set_.t) : int64 =
  let h = of_int (of_int (tag 0L 18) (Affine.Set_.num_dims s)) (Affine.Set_.num_syms s) in
  List.fold_left
    (fun h (c : Affine.Set_.constraint_) ->
      combine (combine h (expr_hash c.Affine.Set_.expr)) (if c.Affine.Set_.eq then 1L else 2L))
    h
    (Affine.Set_.constraints s)

let rec attr_hash st (a : Attr.t) : int64 =
  match a with
  | Attr.Unit -> tag 0L 10
  | Attr.Bool b -> combine (tag 0L 11) (if b then 1L else 0L)
  | Attr.Int i -> of_int (tag 0L 12) i
  | Attr.Float f -> combine (tag 0L 13) (Int64.bits_of_float f)
  | Attr.Str s -> of_string (tag 0L 14) s
  | Attr.Ty t -> combine (tag 0L 15) (ty_hash st t)
  | Attr.Arr xs ->
      List.fold_left (fun h x -> combine h (attr_hash st x)) (tag 0L 16) xs
  | Attr.Map m -> map_hash m
  | Attr.Set s -> set_hash s
  | Attr.Dict kvs ->
      List.fold_left
        (fun h (k, v) -> combine (of_string h k) (attr_hash st v))
        (tag 0L 19) kvs

let free_bit = 1 lsl 30 (* distinguishes free values from local definitions *)

let number st v =
  Hashtbl.replace st.nums v.Ir.vid st.next;
  st.next <- st.next + 1

(* Operand hash: local number + type, plus the free-environment hash the
   first time a free value is seen. *)
let operand_hash st h v =
  match Hashtbl.find_opt st.nums v.Ir.vid with
  | Some n -> combine (of_int h n) (ty_hash st v.Ir.vty)
  | None ->
      (* Free value: number by first use, tagged apart from definitions. *)
      let n = st.next lor free_bit in
      Hashtbl.replace st.nums v.Ir.vid n;
      st.next <- st.next + 1;
      combine (combine (of_int h n) (ty_hash st v.Ir.vty)) (st.free_hook v)

let rec op_hash st (o : Ir.op) : int64 =
  let h = of_string (tag 0L 2) o.Ir.name in
  let h = List.fold_left (fun h v -> operand_hash st h v) (tag h 3) o.Ir.operands in
  (* Results are numbered here (pre-order definition point) and their types
     folded in; their local numbers are implied by position. *)
  let h =
    List.fold_left
      (fun h v ->
        number st v;
        combine h (ty_hash st v.Ir.vty))
      (tag h 4) o.Ir.results
  in
  let h =
    List.fold_left
      (fun h (k, v) -> combine (of_string h k) (attr_hash st (st.attr_hook k v)))
      (tag h 5) o.Ir.attrs
  in
  List.fold_left
    (fun h (r : Ir.region) ->
      List.fold_left
        (fun h (b : Ir.block) ->
          let h =
            List.fold_left
              (fun h v ->
                number st v;
                combine h (ty_hash st v.Ir.vty))
              (tag h 7) b.Ir.bargs
          in
          List.fold_left (fun h o -> combine h (op_hash st o)) h b.Ir.bops)
        (tag h 6) r)
    h o.Ir.regions

let fresh_st ?(free_hook = no_free_hook) ?(attr_hook = no_attr_hook) () =
  { nums = Hashtbl.create 256; tys = Hashtbl.create 16; next = 0; free_hook; attr_hook }

(** Fingerprint of an operation tree. Pure function of the op's structure:
    independent of vids, of the minting {!Ir.Ctx}, and of physical sharing. *)
let op (o : Ir.op) : int64 = op_hash (fresh_st ()) o

(** Fingerprint of a subtree *in context*: like {!op}, but [free_hook] is
    folded in at the first use of every free value (letting callers hash the
    subtree's environment — e.g. enclosing loop ranges), and [attr_hook] can
    rewrite attributes before hashing (e.g. zero out a directive field the
    keyed analysis is independent of). This is the key for the DSE's per-band
    estimator memo: two bands collide iff they are structurally identical
    *and* sit in hash-identical environments. *)
let subtree ?free_hook ?attr_hook (o : Ir.op) : int64 =
  op_hash (fresh_st ?free_hook ?attr_hook ()) o

(** Per-function fingerprints of a module: [(name, fp)] for each func op,
    each numbered independently (so a function's hash is stable when sibling
    functions change). *)
let funcs (m : Ir.op) : (string * int64) list =
  List.map (fun f -> (Ir.func_name f, op f)) (Ir.module_funcs m)

(** Fingerprint as a hex string (stable across runs; handy for logs/keys). *)
let to_hex (h : int64) = Printf.sprintf "%016Lx" h
