(** The core IR data structures: SSA values, operations carrying attributes
    and nested regions, blocks, and regions — a faithful miniature of MLIR's
    op/region model (§2.1 of the paper). Operations are immutable trees;
    transformations build new subtrees, and fresh SSA values are minted from a
    {!Ctx.t}. *)

type value = { vid : int; vty : Ty.t }

type op = {
  name : string;  (** fully-qualified, e.g. ["affine.for"] *)
  operands : value list;
  results : value list;
  attrs : (string * Attr.t) list;
  regions : region list;
}

and block = { bargs : value list; bops : op list }
and region = block list

module Ctx = struct
  (* Atomic so that a context can be shared across domains: the parallel DSE
     engine evaluates design points concurrently, and every mint must stay
     unique even under contention. *)
  type t = { next_id : int Atomic.t }

  let create () = { next_id = Atomic.make 0 }

  let fresh ctx vty =
    let vid = Atomic.fetch_and_add ctx.next_id 1 in
    { vid; vty }

  (** Create a context whose counter is past every value in [op] — used when
      resuming transformation of a parsed/deserialized module. *)
  let rec seed_from_op ctx (o : op) =
    let rec bump v =
      let cur = Atomic.get ctx.next_id in
      if v.vid >= cur && not (Atomic.compare_and_set ctx.next_id cur (v.vid + 1))
      then bump v
    in
    List.iter bump o.results;
    List.iter bump o.operands;
    List.iter
      (List.iter (fun b ->
           List.iter bump b.bargs;
           List.iter (seed_from_op ctx) b.bops))
      o.regions

  let of_op o =
    let ctx = create () in
    seed_from_op ctx o;
    ctx
end

let value_equal a b = a.vid = b.vid

module Value_map = Map.Make (Int)
module Value_set = Set.Make (Int)

(* ---- Construction ------------------------------------------------------- *)

let mk ?(attrs = []) ?(regions = []) name ~operands ~results =
  { name; operands; results; attrs; regions }

(** Build an op minting fresh result values of the given types. Returns the op
    together with its results. *)
let mk_fresh ctx ?(attrs = []) ?(regions = []) name ~operands ~result_tys =
  let results = List.map (Ctx.fresh ctx) result_tys in
  (mk ~attrs ~regions name ~operands ~results, results)

let block ?(args = []) ops = { bargs = args; bops = ops }

(* ---- Attribute access --------------------------------------------------- *)

(* First-order scan with a physical-equality fast path: attribute keys are
   interned ({!Attr.Key}), so the common case resolves without byte-wise
   string comparison — this lookup runs once per op per directive-aware
   walk on the DSE hot path. *)
let attr o key =
  let rec find = function
    | [] -> None
    | (k, v) :: rest -> if k == key || String.equal k key then Some v else find rest
  in
  find o.attrs

let has_attr o key =
  let rec find = function
    | [] -> false
    | (k, _) :: rest -> k == key || String.equal k key || find rest
  in
  find o.attrs

let attr_exn o key =
  match attr o key with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ir.attr_exn: op %s has no attr %s" o.name key)

let set_attr o key v = { o with attrs = (key, v) :: List.remove_assoc key o.attrs }
let remove_attr o key = { o with attrs = List.remove_assoc key o.attrs }

let int_attr o key = Attr.as_int (attr_exn o key)
let str_attr o key = Attr.as_str (attr_exn o key)
let map_attr o key = Attr.as_map (attr_exn o key)

(* ---- Accessors ---------------------------------------------------------- *)

let result o =
  match o.results with
  | [ r ] -> r
  | _ -> invalid_arg (Printf.sprintf "Ir.result: op %s has %d results" o.name (List.length o.results))

let region o i =
  match List.nth_opt o.regions i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Ir.region: op %s has no region %d" o.name i)

(** The single block of the op's single region (e.g. loop bodies). *)
let body_block o =
  match o.regions with
  | [ [ b ] ] -> b
  | _ -> invalid_arg (Printf.sprintf "Ir.body_block: op %s" o.name)

let body_ops o = (body_block o).bops

let with_body o ops =
  match o.regions with
  | [ [ b ] ] -> { o with regions = [ [ { b with bops = ops } ] ] }
  | _ -> invalid_arg (Printf.sprintf "Ir.with_body: op %s" o.name)

(* ---- Module / function conventions -------------------------------------- *)

(** A module is the op ["module"] with one region, one block, containing
    ["func"] ops. *)
let module_ ops = mk "module" ~operands:[] ~results:[] ~regions:[ [ block ops ] ]

let module_funcs m =
  if m.name <> "module" then invalid_arg "Ir.module_funcs: not a module";
  List.filter (fun o -> o.name = "func") (body_ops m)

let module_map_funcs f m =
  with_body m (List.map (fun o -> if o.name = "func" then f o else o) (body_ops m))

let func_name f = str_attr f "sym_name"

let func_type f =
  match Attr.as_ty (attr_exn f "function_type") with
  | Ty.Fn { inputs; outputs } -> (inputs, outputs)
  | _ -> invalid_arg "Ir.func_type"

let find_func m name =
  List.find_opt (fun f -> func_name f = name) (module_funcs m)

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.find_func_exn: no func %s" name)

(** Replace (by symbol name) or append a function in a module. *)
let replace_func m f =
  let name = func_name f in
  let found = ref false in
  let ops =
    List.map
      (fun o ->
        if o.name = "func" && func_name o = name then begin
          found := true;
          f
        end
        else o)
      (body_ops m)
  in
  with_body m (if !found then ops else ops @ [ f ])
