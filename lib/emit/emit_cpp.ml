(** The HLS C/C++ emission back-end (§6.2): translates the structured
    directive-level IR into synthesizable C++ for downstream RTL generation.
    [affine/scf.for] and [if] become [for]/[if] statements; array partition,
    resource, and interface information is decoded from memref types and
    emitted as [#pragma HLS] directives; function/loop directives
    ([dataflow], [pipeline II=n], [loop_flatten]) come from the hlscpp
    attributes. Returned scalars are converted to output pointers to keep
    the generated code synthesizable. *)

open Mir
open Dialects

module A = Affine

exception Emit_error of string

let error fmt = Fmt.kstr (fun s -> raise (Emit_error s)) fmt

type env = {
  buf : Buffer.t;
  mutable indent : int;
  names : (int, string) Hashtbl.t;  (** value id -> C identifier *)
}

let create () = { buf = Buffer.create 4096; indent = 0; names = Hashtbl.create 64 }

let line env fmt =
  Buffer.add_string env.buf (String.make (2 * env.indent) ' ');
  Fmt.kstr
    (fun s ->
      Buffer.add_string env.buf s;
      Buffer.add_char env.buf '\n')
    fmt

let name env (v : Ir.value) =
  match Hashtbl.find_opt env.names v.Ir.vid with
  | Some n -> n
  | None ->
      let n = Printf.sprintf "v%d" v.Ir.vid in
      Hashtbl.replace env.names v.Ir.vid n;
      n

let set_name env (v : Ir.value) n = Hashtbl.replace env.names v.Ir.vid n

let rec c_scalar_ty = function
  | Ty.F32 -> "float"
  | Ty.F64 -> "double"
  | Ty.I1 -> "bool"
  | Ty.I8 -> "char"
  | Ty.I32 | Ty.Index -> "int"
  | Ty.I64 -> "long long"
  | Ty.Memref { elt; _ } | Ty.Tensor { elt; _ } -> c_scalar_ty elt
  | t -> error "type %s has no C equivalent" (Ty.to_string t)

let array_decl ty n =
  match ty with
  | Ty.Memref { shape; elt; _ } ->
      Printf.sprintf "%s %s%s" (c_scalar_ty elt) n
        (String.concat "" (List.map (Printf.sprintf "[%d]") shape))
  | _ -> error "array_decl: not a memref"

(* Render an affine expression with dims bound to C expressions. *)
let rec render_expr dims (e : A.Expr.t) =
  match e with
  | A.Expr.Dim i ->
      if i < Array.length dims then dims.(i) else error "render_expr: dim %d out of range" i
  | A.Expr.Sym _ -> error "render_expr: symbols not supported in emission"
  | A.Expr.Const c -> string_of_int c
  | A.Expr.Add (a, A.Expr.Mul (b, A.Expr.Const -1)) ->
      Printf.sprintf "(%s - %s)" (render_expr dims a) (render_expr dims b)
  | A.Expr.Add (a, A.Expr.Const c) when c < 0 ->
      Printf.sprintf "(%s - %d)" (render_expr dims a) (-c)
  | A.Expr.Add (a, b) -> Printf.sprintf "(%s + %s)" (render_expr dims a) (render_expr dims b)
  | A.Expr.Mul (a, b) -> Printf.sprintf "(%s * %s)" (render_expr dims a) (render_expr dims b)
  | A.Expr.Mod (a, b) -> Printf.sprintf "(%s %% %s)" (render_expr dims a) (render_expr dims b)
  | A.Expr.Floor_div (a, b) -> Printf.sprintf "(%s / %s)" (render_expr dims a) (render_expr dims b)
  | A.Expr.Ceil_div (a, b) ->
      Printf.sprintf "((%s + %s - 1) / %s)" (render_expr dims a) (render_expr dims b)
        (render_expr dims b)

let render_map_results env map operands =
  let dims = Array.of_list (List.map (name env) operands) in
  List.map (fun e -> render_expr dims (A.Expr.simplify e)) (A.Map.results map)

let render_access env (o : Ir.op) =
  let mem = Memref.accessed_memref o in
  let idxs =
    match o.Ir.name with
    | "affine.load" | "affine.store" ->
        render_map_results env (Affine_d.access_map o) (Memref.access_indices o)
    | _ -> List.map (name env) (Memref.access_indices o)
  in
  Printf.sprintf "%s%s" (name env mem)
    (String.concat "" (List.map (Printf.sprintf "[%s]") idxs))

(* Partition pragmas of a memref-typed value. *)
let emit_partition_pragmas env (v : Ir.value) =
  match v.Ir.vty with
  | Ty.Memref mr ->
      List.iteri
        (fun d p ->
          match p with
          | Hlscpp.None_p -> ()
          | Hlscpp.Cyclic f ->
              line env "#pragma HLS array_partition variable=%s cyclic factor=%d dim=%d"
                (name env v) f (d + 1)
          | Hlscpp.Block f ->
              line env "#pragma HLS array_partition variable=%s block factor=%d dim=%d"
                (name env v) f (d + 1))
        (Hlscpp.partitions_of_memref mr);
      (match mr.Ty.memspace with
      | m when m = Ty.Memspace.uram ->
          line env "#pragma HLS resource variable=%s core=RAM_2P_URAM" (name env v)
      | m when m = Ty.Memspace.bram_s1p ->
          line env "#pragma HLS resource variable=%s core=RAM_1P_BRAM" (name env v)
      | m when m = Ty.Memspace.bram_t2p ->
          line env "#pragma HLS resource variable=%s core=RAM_T2P_BRAM" (name env v)
      | _ -> ())
  | _ -> ()

let binop_sym = function
  | "arith.addf" | "arith.addi" -> "+"
  | "arith.subf" | "arith.subi" -> "-"
  | "arith.mulf" | "arith.muli" -> "*"
  | "arith.divf" | "arith.divi" -> "/"
  | "arith.remi" -> "%"
  | "arith.andi" -> "&"
  | "arith.ori" -> "|"
  | "arith.xori" -> "^"
  | "arith.shli" -> "<<"
  | "arith.shri" -> ">>"
  | n -> error "binop_sym: %s" n

let cmp_sym = function
  | "eq" | "oeq" | "ueq" -> "=="
  | "ne" | "one" | "une" -> "!="
  | "slt" | "ult" | "olt" -> "<"
  | "sle" | "ule" | "ole" -> "<="
  | "sgt" | "ugt" | "ogt" -> ">"
  | "sge" | "uge" | "oge" -> ">="
  | p -> error "cmp_sym: %s" p

let math_fn = function
  | "math.exp" -> "expf"
  | "math.log" -> "logf"
  | "math.sqrt" -> "sqrtf"
  | "math.tanh" -> "tanhf"
  | n -> error "math_fn: %s" n

let result_ty (o : Ir.op) = (Ir.result o).Ir.vty

let rec emit_op env (o : Ir.op) =
  let n2 i = name env (List.nth o.Ir.operands i) in
  let def rhs =
    line env "%s %s = %s;" (c_scalar_ty (result_ty o)) (name env (Ir.result o)) rhs
  in
  match o.Ir.name with
  | "arith.constant" -> (
      match Ir.attr_exn o "value" with
      | Attr.Int i -> def (string_of_int i)
      | Attr.Float f -> def (Printf.sprintf "%h" f)
      | _ -> error "constant: bad value")
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.addi"
  | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi" | "arith.andi"
  | "arith.ori" | "arith.xori" | "arith.shli" | "arith.shri" ->
      def (Printf.sprintf "%s %s %s" (n2 0) (binop_sym o.Ir.name) (n2 1))
  | "arith.negf" -> def (Printf.sprintf "-%s" (n2 0))
  | "arith.maxf" | "arith.maxi" -> def (Printf.sprintf "(%s > %s ? %s : %s)" (n2 0) (n2 1) (n2 0) (n2 1))
  | "arith.minf" | "arith.mini" -> def (Printf.sprintf "(%s < %s ? %s : %s)" (n2 0) (n2 1) (n2 0) (n2 1))
  | "arith.cmpi" | "arith.cmpf" ->
      def (Printf.sprintf "%s %s %s" (n2 0) (cmp_sym (Ir.str_attr o "predicate")) (n2 1))
  | "arith.select" -> def (Printf.sprintf "%s ? %s : %s" (n2 0) (n2 1) (n2 2))
  | "arith.index_cast" | "arith.extf" | "arith.truncf" | "arith.sitofp" | "arith.fptosi" ->
      def (Printf.sprintf "(%s)%s" (c_scalar_ty (result_ty o)) (n2 0))
  | "math.exp" | "math.log" | "math.sqrt" | "math.tanh" ->
      def (Printf.sprintf "%s(%s)" (math_fn o.Ir.name) (n2 0))
  | "affine.apply" -> (
      match render_map_results env (Affine_d.access_map o) o.Ir.operands with
      | [ r ] -> def r
      | _ -> error "affine.apply: single result expected")
  | "memref.alloc" | "memref.alloca" ->
      line env "%s;" (array_decl (Ir.result o).Ir.vty (name env (Ir.result o)));
      emit_partition_pragmas env (Ir.result o)
  | "memref.dealloc" -> ()
  | "affine.load" | "memref.load" -> def (render_access env o)
  | "affine.store" | "memref.store" ->
      line env "%s = %s;" (render_access env o) (name env (Memref.stored_value o))
  | "affine.for" -> emit_affine_for env o
  | "scf.for" ->
      let lb, ub, step = Scf.for_bounds o in
      let iv = Scf.induction_var o in
      line env "for (int %s = %s; %s < %s; %s += %s) {" (name env iv) (name env lb)
        (name env iv) (name env ub) (name env iv) (name env step);
      emit_loop_body env o
  | "affine.if" -> emit_affine_if env o
  | "scf.if" ->
      line env "if (%s) {" (n2 0);
      env.indent <- env.indent + 1;
      List.iter (emit_op env) (block_ops (Ir.region o 0));
      env.indent <- env.indent - 1;
      let else_ops = block_ops (Ir.region o 1) in
      if else_ops <> [] then begin
        line env "} else {";
        env.indent <- env.indent + 1;
        List.iter (emit_op env) else_ops;
        env.indent <- env.indent - 1
      end;
      line env "}"
  | "func.call" ->
      let args = List.map (name env) o.Ir.operands in
      (match o.Ir.results with
      | [] -> line env "%s(%s);" (Func.callee o) (String.concat ", " args)
      | [ r ] ->
          (* returned scalar: callee was emitted with an output pointer *)
          line env "%s %s;" (c_scalar_ty r.Ir.vty) (name env r);
          line env "%s(%s, &%s);" (Func.callee o) (String.concat ", " args) (name env r)
      | _ -> error "calls with multiple results are not emitted")
  | "func.return" -> (
      match o.Ir.operands with
      | [] -> ()
      | [ v ] -> line env "*out = %s;" (name env v)
      | _ -> error "multi-value return")
  | "affine.yield" | "scf.yield" -> ()
  | name -> error "emission of operation %s is not supported" name

and block_ops region =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter (fun x -> x.Ir.name <> "affine.yield" && x.Ir.name <> "scf.yield") b.Ir.bops)
    region

and emit_loop_body env o =
  env.indent <- env.indent + 1;
  (match Hlscpp.get_loop_directive o with
  | Some d ->
      if d.Hlscpp.loop_pipeline then
        line env "#pragma HLS pipeline II=%d" (max 1 d.Hlscpp.loop_target_ii);
      if d.Hlscpp.flatten then line env "#pragma HLS loop_flatten";
      if d.Hlscpp.loop_dataflow then line env "#pragma HLS dataflow"
  | None -> ());
  List.iter (emit_op env) (block_ops [ Ir.body_block o ]);
  env.indent <- env.indent - 1;
  line env "}"

and emit_affine_for env o =
  let b = Affine_d.bounds o in
  let iv = Affine_d.induction_var o in
  let lb_exprs = render_map_results env b.Affine_d.lb_map b.Affine_d.lb_operands in
  let ub_exprs = render_map_results env b.Affine_d.ub_map b.Affine_d.ub_operands in
  let fold_minmax fn = function
    | [ e ] -> e
    | es -> List.fold_left (fun acc e -> Printf.sprintf "%s(%s, %s)" fn acc e) (List.hd es) (List.tl es)
  in
  let lb = fold_minmax "max" lb_exprs and ub = fold_minmax "min" ub_exprs in
  line env "for (int %s = %s; %s < %s; %s += %d) {" (name env iv) lb (name env iv) ub
    (name env iv) b.Affine_d.step;
  emit_loop_body env o

and emit_affine_if env o =
  let set = Affine_d.if_set o in
  let dims = Array.of_list (List.map (name env) o.Ir.operands) in
  let conds =
    List.map
      (fun (c : A.Set_.constraint_) ->
        Printf.sprintf "%s %s 0"
          (render_expr dims (A.Expr.simplify c.A.Set_.expr))
          (if c.A.Set_.eq then "==" else ">="))
      (A.Set_.constraints set)
  in
  let cond = match conds with [] -> "true" | _ -> String.concat " && " conds in
  line env "if (%s) {" cond;
  env.indent <- env.indent + 1;
  List.iter (emit_op env) (block_ops (Ir.region o 0));
  env.indent <- env.indent - 1;
  let else_ops = block_ops (Ir.region o 1) in
  if else_ops <> [] then begin
    line env "} else {";
    env.indent <- env.indent + 1;
    List.iter (emit_op env) else_ops;
    env.indent <- env.indent - 1
  end;
  line env "}"

let emit_func env (f : Ir.op) =
  let args = Func.func_args f in
  let _, outputs = Ir.func_type f in
  List.iteri
    (fun i (v : Ir.value) ->
      set_name env v
        (match v.Ir.vty with
        | Ty.Memref _ -> Printf.sprintf "arg%d" i
        | _ -> Printf.sprintf "a%d" i))
    args;
  let params =
    List.map
      (fun (v : Ir.value) ->
        match v.Ir.vty with
        | Ty.Memref _ -> array_decl v.Ir.vty (name env v)
        | t -> Printf.sprintf "%s %s" (c_scalar_ty t) (name env v))
      args
  in
  (* Returned scalars become output pointers (§6.2). *)
  let params =
    params
    @ List.map (fun t -> Printf.sprintf "%s *out" (c_scalar_ty t)) outputs
  in
  line env "void %s(%s) {" (Ir.func_name f) (String.concat ", " params);
  env.indent <- env.indent + 1;
  (match Hlscpp.get_func_directive f with
  | Some d ->
      if d.Hlscpp.dataflow then line env "#pragma HLS dataflow";
      if d.Hlscpp.pipeline then
        line env "#pragma HLS pipeline II=%d" (max 1 d.Hlscpp.target_ii)
  | None -> ());
  (* Interface + partition pragmas for array arguments. *)
  List.iter
    (fun (v : Ir.value) ->
      match v.Ir.vty with
      | Ty.Memref mr ->
          (match Hlscpp.interface_of_memref mr with
          | Hlscpp.Axi ->
              line env "#pragma HLS interface m_axi port=%s offset=slave" (name env v)
          | Hlscpp.Bram_if -> ());
          emit_partition_pragmas env v
      | _ -> ())
    args;
  List.iter (emit_op env) (Func.func_body f);
  env.indent <- env.indent - 1;
  line env "}";
  line env ""

(** Emit a whole module as synthesizable HLS C++. *)
let emit_module (m : Ir.op) =
  let env = create () in
  line env "#include <math.h>";
  line env "#define max(a, b) ((a) > (b) ? (a) : (b))";
  line env "#define min(a, b) ((a) < (b) ? (a) : (b))";
  line env "";
  List.iter (emit_func env) (Ir.module_funcs m);
  Buffer.contents env.buf
