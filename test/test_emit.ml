(* HLS C++ emitter tests: structure, pragmas, and robustness across the
   whole kernel suite (optimized and unoptimized). *)

open Mir
open Dialects
open Scalehls
open Helpers

let balanced_braces s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let test_emit_all_kernels_plain () =
  List.iter
    (fun k ->
      let _, m = compile_kernel ~n:8 k in
      let cpp = Emit.Emit_cpp.emit_module m in
      Alcotest.(check bool) (Models.Polybench.name k ^ " balanced") true (balanced_braces cpp);
      Alcotest.(check bool) "has function" true
        (contains ~needle:("void " ^ Models.Polybench.name k) cpp))
    Models.Polybench.all

let optimized_gemm () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let pt = { Dse.lp = true; rvb = false; perm = [ 1; 2; 0 ]; tiles = [ 2; 1; 4 ]; target_ii = 2 } in
  Dse.apply_point ctx m ~top:"gemm" pt

let test_emit_pragmas () =
  let cpp = Emit.Emit_cpp.emit_module (optimized_gemm ()) in
  Alcotest.(check bool) "pipeline pragma" true (contains ~needle:"#pragma HLS pipeline II=2" cpp);
  Alcotest.(check bool) "flatten pragma" true (contains ~needle:"#pragma HLS loop_flatten" cpp);
  Alcotest.(check bool) "partition pragma" true (contains ~needle:"#pragma HLS array_partition" cpp);
  Alcotest.(check bool) "balanced" true (balanced_braces cpp)

let test_emit_loops_and_ifs () =
  let src =
    {|
void g(float A[8]) {
  for (int i = 0; i < 8; i++) {
    if (i < 4) { A[i] = 0.0; } else { A[i] = 1.0; }
  }
}
|}
  in
  let _, m = compile_c_affine src in
  let cpp = Emit.Emit_cpp.emit_module m in
  Alcotest.(check bool) "for statement" true (contains ~needle:"for (int" cpp);
  Alcotest.(check bool) "if statement" true (contains ~needle:"if (" cpp);
  Alcotest.(check bool) "else branch" true (contains ~needle:"} else {" cpp)

let test_emit_returned_scalar_becomes_pointer () =
  let src = "float first(float A[4]) { return A[0]; }" in
  let _, m = compile_c_affine src in
  let cpp = Emit.Emit_cpp.emit_module m in
  Alcotest.(check bool) "out pointer parameter" true (contains ~needle:"float *out" cpp);
  Alcotest.(check bool) "writes through it" true (contains ~needle:"*out =" cpp)

let test_emit_dataflow_pragma () =
  let ctx = Ir.Ctx.create () in
  let f =
    Func_pipeline.set_dataflow
      (Func.func ctx ~name:"top" ~inputs:[] ~outputs:[] (fun _ -> [ Func.return_ [] ]))
  in
  let cpp = Emit.Emit_cpp.emit_module (Ir.module_ [ f ]) in
  Alcotest.(check bool) "dataflow pragma" true (contains ~needle:"#pragma HLS dataflow" cpp)

let test_emit_interface_pragma () =
  let ctx = Ir.Ctx.create () in
  let dram_ty = Ty.memref ~memspace:Ty.Memspace.dram [ 64 ] Ty.F32 in
  let f = Func.func ctx ~name:"axi" ~inputs:[ dram_ty ] ~outputs:[] (fun _ -> [ Func.return_ [] ]) in
  let cpp = Emit.Emit_cpp.emit_module (Ir.module_ [ f ]) in
  Alcotest.(check bool) "axi interface" true (contains ~needle:"#pragma HLS interface m_axi" cpp)

let test_emit_local_array_decl () =
  let src = "void l(float A[4]) { float t[4]; for (int i = 0; i < 4; i++) { t[i] = A[i]; A[i] = t[i]; } }" in
  let _, m = compile_c_affine src in
  let cpp = Emit.Emit_cpp.emit_module m in
  Alcotest.(check bool) "local array" true (contains ~needle:"[4];" cpp)

let test_emit_deterministic () =
  let emit () = Emit.Emit_cpp.emit_module (optimized_gemm ()) in
  Alcotest.(check bool) "same output twice" true (String.equal (emit ()) (emit ()))

let test_emit_dse_result_for_all_kernels () =
  List.iter
    (fun k ->
      let ctx, m = compile_kernel ~n:8 k in
      let top = Models.Polybench.name k in
      let r = Dse.run ~samples:6 ~iterations:8 ~seed:1 ctx m ~top ~platform:Vhls.Platform.xc7z020 in
      let cpp = Emit.Emit_cpp.emit_module r.Dse.module_ in
      Alcotest.(check bool) (top ^ " optimized emits") true (balanced_braces cpp))
    Models.Polybench.all

(* The emitted code must be real C: syntax-check it with gcc when one is
   available (skipped otherwise). *)
let test_emitted_code_gcc_clean () =
  if Sys.command "command -v gcc >/dev/null 2>&1" <> 0 then ()
  else
    List.iter
      (fun k ->
        let ctx, m = compile_kernel ~n:8 k in
        let top = Models.Polybench.name k in
        let r = Dse.run ~samples:4 ~iterations:6 ~seed:2 ctx m ~top ~platform:Vhls.Platform.xc7z020 in
        let cpp = Emit.Emit_cpp.emit_module r.Dse.module_ in
        let path = Filename.temp_file ("scalehls_" ^ top) ".c" in
        let oc = open_out path in
        output_string oc cpp;
        close_out oc;
        let rc = Sys.command (Printf.sprintf "gcc -fsyntax-only -xc %s 2>/dev/null" (Filename.quote path)) in
        Sys.remove path;
        Alcotest.(check int) (top ^ " emitted code is valid C") 0 rc)
      [ Models.Polybench.Gemm; Models.Polybench.Syrk; Models.Polybench.Trmm ]

let suite =
  ( "emit",
    [
      Alcotest.test_case "all kernels emit" `Quick test_emit_all_kernels_plain;
      Alcotest.test_case "directive pragmas" `Quick test_emit_pragmas;
      Alcotest.test_case "loops and conditionals" `Quick test_emit_loops_and_ifs;
      Alcotest.test_case "returned scalar -> pointer" `Quick test_emit_returned_scalar_becomes_pointer;
      Alcotest.test_case "dataflow pragma" `Quick test_emit_dataflow_pragma;
      Alcotest.test_case "AXI interface pragma" `Quick test_emit_interface_pragma;
      Alcotest.test_case "local array declarations" `Quick test_emit_local_array_decl;
      Alcotest.test_case "deterministic output" `Quick test_emit_deterministic;
      Alcotest.test_case "optimized kernels emit" `Slow test_emit_dse_result_for_all_kernels;
      Alcotest.test_case "emitted code passes gcc" `Slow test_emitted_code_gcc_clean;
    ] )
