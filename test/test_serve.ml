(* Tests for the DSE service layer (lib/serve): protocol parse/build
   round-trips, codec round-trips over the full value range, the disk-backed
   store (save/load equality, version-mismatch invalidation, corruption
   tolerance), the point-granular scheduler's non-exclusive accounting, and
   the headline service property — a warm store replays a cold run
   bit-for-bit without re-evaluating anything. *)

open Scalehls
open Helpers
module P = Vhls.Platform
module Sp = Serve.Protocol
module Json = Obs.Json

let ev latency dsp feasible =
  {
    Dse.point =
      { Dse.lp = true; rvb = false; perm = [ 2; 0; 1 ]; tiles = [ 4; 1; 8 ]; target_ii = 3 };
    estimate =
      {
        Estimator.latency;
        interval = latency / 2;
        usage = { P.usage_zero with P.u_dsp = dsp; P.u_lut = 7 * dsp };
      };
    feasible;
  }

(* ---- Codec ----------------------------------------------------------------- *)

let test_codec_roundtrips () =
  let e = ev 1234 56 true in
  let through to_j of_j v = of_j (to_j v) in
  Alcotest.(check bool) "point" true
    (through Serve.Codec.point_to_json Serve.Codec.point_of_json e.Dse.point
    = e.Dse.point);
  Alcotest.(check bool) "evaluated" true
    (through Serve.Codec.evaluated_to_json Serve.Codec.evaluated_of_json e = e);
  Alcotest.(check bool) "evaluated opt None" true
    (through Serve.Codec.evaluated_opt_to_json Serve.Codec.evaluated_opt_of_json
       None
    = None);
  (* Top-bit-set fingerprints are negative as int64 — the hex round-trip must
     survive the full unsigned range. *)
  let fp = 0xdeadbeefcafef00dL in
  Alcotest.(check bool) "negative fingerprint" true
    (through Serve.Codec.fp_to_json Serve.Codec.fp_of_json fp = fp);
  let key = (fp, [ 1; 0; 2 ], [ 8; 1; 4 ], 2) in
  Alcotest.(check bool) "eval key" true
    (through Serve.Codec.eval_key_to_json Serve.Codec.eval_key_of_json key = key);
  let band =
    {
      Estimator.bs_ii_base = 3;
      bs_iter_lat = 17;
      bs_total_trip = 4096;
      bs_fu_counts = [ ("fadd", 2); ("fmul", 3) ];
    }
  in
  Alcotest.(check bool) "band summary" true
    (through Serve.Codec.band_summary_to_json Serve.Codec.band_summary_of_json
       band
    = band)

let test_codec_rejects_malformed () =
  let expect_malformed name f =
    match f () with
    | exception Serve.Codec.Malformed _ -> ()
    | _ -> Alcotest.failf "%s: expected Malformed" name
  in
  expect_malformed "bad fingerprint" (fun () ->
      Serve.Codec.fp_of_json (Json.String "not-hex"));
  expect_malformed "missing field" (fun () ->
      Serve.Codec.point_of_json (Json.Obj [ ("lp", Json.Bool true) ]));
  expect_malformed "wrong shape" (fun () ->
      Serve.Codec.eval_key_of_json (Json.String "nope"))

(* ---- Protocol -------------------------------------------------------------- *)

let test_protocol_parse () =
  (match
     Sp.request_of_line
       {|{"req":"search","design":{"kernel":"gemm","size":32}}|}
   with
  | Ok (Sp.Search { design = Sp.Kernel { kernel; size }; config }) ->
      Alcotest.(check string) "kernel" "gemm" kernel;
      Alcotest.(check int) "size" 32 size;
      (* Absent config = the scalehls-dse CLI defaults. *)
      Alcotest.(check bool) "default config" true (config = Sp.default_config)
  | _ -> Alcotest.fail "kernel search did not parse");
  (match
     Sp.request_of_line
       {|{"req":"search","design":{"c":"void f() {}","top":"f"},"config":{"seed":7,"samples":4}}|}
   with
  | Ok (Sp.Search { design = Sp.C_source { top; _ }; config }) ->
      Alcotest.(check string) "top" "f" top;
      Alcotest.(check int) "seed override" 7 config.Sp.seed;
      Alcotest.(check int) "samples override" 4 config.Sp.samples;
      Alcotest.(check int) "iterations default" 80 config.Sp.iterations;
      Alcotest.(check string) "strategy default" "exhaustive" config.Sp.strategy
  | _ -> Alcotest.fail "C search did not parse");
  (match
     Sp.request_of_line
       {|{"req":"search","design":{"kernel":"gemm"},"config":{"strategy":"surrogate"}}|}
   with
  | Ok (Sp.Search { config; _ }) ->
      Alcotest.(check string) "strategy override" "surrogate" config.Sp.strategy
  | _ -> Alcotest.fail "strategy search did not parse");
  List.iter
    (fun (line, expect) ->
      match Sp.request_of_line line with
      | Ok r when r = expect -> ()
      | _ -> Alcotest.failf "%s did not parse" line)
    [
      ({|{"req":"status"}|}, Sp.Status);
      ({|{"req":"ping"}|}, Sp.Ping);
      ({|{"req":"checkpoint"}|}, Sp.Checkpoint);
      ({|{"req":"shutdown"}|}, Sp.Shutdown);
    ];
  let expect_error line =
    match Sp.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should not parse" line
  in
  expect_error "not json at all";
  expect_error {|{"req":"warp-core-breach"}|};
  expect_error {|{"design":{"kernel":"gemm"}}|};
  expect_error {|{"req":"search","design":{"neither":1}}|}

let test_protocol_client_roundtrip () =
  (* What the --remote client builds must parse back to the same request. *)
  let design = Sp.Kernel { kernel = "syrk"; size = 16 } in
  let config =
    { Sp.default_config with Sp.seed = 99; symbolic = false; strategy = "surrogate" }
  in
  match
    Sp.request_of_line (Json.to_string (Sp.search_request ~design ~config))
  with
  | Ok (Sp.Search s) ->
      Alcotest.(check bool) "design survives" true (s.design = design);
      Alcotest.(check bool) "config survives" true (s.config = config)
  | _ -> Alcotest.fail "client-built search did not round-trip"

(* ---- Store ----------------------------------------------------------------- *)

let with_temp_store f =
  let path = Filename.temp_file "scalehls-serve-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let populate store =
  let cache = Serve.Store.cache_for store "xc7z020" in
  Eval_cache.add cache (0x1122334455667788L, [ 0; 1 ], [ 2; 4 ], 3)
    (Some (ev 100 5 true));
  Eval_cache.add cache (0xfeedfacefeedfaceL, [ 1; 0 ], [ 1; 1 ], 1) None;
  (* Same key shape under another platform must stay segregated. *)
  Eval_cache.add
    (Serve.Store.cache_for store "vu9p-slr")
    (0x1122334455667788L, [ 0; 1 ], [ 2; 4 ], 3)
    (Some (ev 100 5 false));
  Estimator.import_bands (Serve.Store.memos store)
    [
      ( 0xdeadbeefcafef00dL,
        {
          Estimator.bs_ii_base = 2;
          bs_iter_lat = 9;
          bs_total_trip = 64;
          bs_fu_counts = [ ("fmul", 1) ];
        } );
    ]

let sorted_bindings store platform =
  List.sort compare
    (Eval_cache.bindings (Serve.Store.cache_for store platform))

let test_store_roundtrip () =
  with_temp_store @@ fun path ->
  let s1 = Serve.Store.open_ ~path () in
  populate s1;
  let written = Serve.Store.save s1 in
  Alcotest.(check int) "records written" 4 written;
  let s2 = Serve.Store.open_ ~path () in
  Alcotest.(check bool) "evals equal by fingerprint" true
    (sorted_bindings s1 "xc7z020" = sorted_bindings s2 "xc7z020");
  Alcotest.(check bool) "platforms segregated" true
    (sorted_bindings s1 "vu9p-slr" = sorted_bindings s2 "vu9p-slr"
    && sorted_bindings s2 "vu9p-slr" <> sorted_bindings s2 "xc7z020");
  Alcotest.(check bool) "bands equal" true
    (List.sort compare (Estimator.export_bands (Serve.Store.memos s1))
    = List.sort compare (Estimator.export_bands (Serve.Store.memos s2)));
  (* Deterministic serialization: an immediate re-save is byte-identical. *)
  ignore (Serve.Store.save s2);
  let read p = In_channel.with_open_bin p In_channel.input_all in
  let before = read path in
  ignore (Serve.Store.save s2);
  Alcotest.(check bool) "stable bytes" true (read path = before)

let test_store_version_mismatch_cold () =
  with_temp_store @@ fun path ->
  let oc = open_out path in
  output_string oc {|{"magic":"scalehls-store","version":999}|};
  output_char oc '\n';
  output_string oc
    {|{"t":"band","k":"0000000000000001","v":{"ii_base":1,"iter_lat":1,"trip":1,"fu":[]}}|};
  output_char oc '\n';
  close_out oc;
  let s = Serve.Store.open_ ~path () in
  Alcotest.(check int) "nothing loaded" 0
    (Estimator.memo_length (Serve.Store.memos s));
  match Serve.Store.to_status_json s |> Json.member "cold_reason" with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "expected a cold_reason"

let test_store_corruption_tolerated () =
  with_temp_store @@ fun path ->
  let s1 = Serve.Store.open_ ~path () in
  populate s1;
  ignore (Serve.Store.save s1);
  (* Simulate a writer killed mid-append: valid records followed by garbage
     and a truncated line. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "this is not json\n";
  output_string oc {|{"t":"eval","platform":"xc7z020"}|};
  output_char oc '\n';
  output_string oc {|{"t":"band","k":"00|};
  close_out oc;
  let s2 = Serve.Store.open_ ~path () in
  Alcotest.(check bool) "good records survive" true
    (sorted_bindings s1 "xc7z020" = sorted_bindings s2 "xc7z020");
  match Serve.Store.to_status_json s2 |> Json.member "skipped_lines" with
  | Some (Json.Int n) -> Alcotest.(check int) "bad lines counted" 3 n
  | _ -> Alcotest.fail "skipped_lines missing from status"

(* ---- Scheduler ------------------------------------------------------------- *)

(* The point-granular scheduler must NOT serialize evaluations: two jobs'
   evals run inside [with_eval] at the same time (proven by a condition-
   variable rendezvous — each thread blocks inside its eval until the other
   arrives, so the test deadlocks if with_eval excludes), and the accounting
   balances afterwards. *)
let test_scheduler_concurrent_evals () =
  let s = Serve.Scheduler.create () in
  let lock = Mutex.create () in
  let both_inside = Condition.create () in
  let inside = ref 0 in
  let peak_active = ref 0 in
  let rendezvous label () =
    Serve.Scheduler.with_eval ~label s (fun () ->
        Mutex.lock lock;
        incr inside;
        let active, _ = Serve.Scheduler.stats s in
        if active > !peak_active then peak_active := active;
        if !inside < 2 then
          while !inside < 2 do
            Condition.wait both_inside lock
          done
        else Condition.broadcast both_inside;
        Mutex.unlock lock)
  in
  let t1 = Thread.create (rendezvous "job-a") () in
  let t2 = Thread.create (rendezvous "job-b") () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check int) "both evals ran simultaneously" 2 !inside;
  Alcotest.(check int) "active count saw the overlap" 2 !peak_active;
  let active, granted = Serve.Scheduler.stats s in
  Alcotest.(check int) "nothing active after" 0 active;
  Alcotest.(check int) "grants counted" 2 granted;
  (* note_wait feeds the serve turn-wait histogram without blocking. *)
  Serve.Scheduler.note_wait s 0.001;
  Serve.Scheduler.note_wait s 0.002

(* ---- Jobs ------------------------------------------------------------------ *)

let test_jobs_lifecycle () =
  let t = Serve.Jobs.create ~keep:2 () in
  let j1 = Serve.Jobs.submit t ~label:"a" in
  let j2 = Serve.Jobs.submit t ~label:"b" in
  Serve.Jobs.start t j1;
  Serve.Jobs.progress t j1 ~explored:10 ~frontier_size:3;
  Serve.Jobs.finish t j1;
  Serve.Jobs.start t j2;
  Serve.Jobs.fail t j2 "boom";
  let queued, running, done_, failed = Serve.Jobs.counts t in
  Alcotest.(check (list int)) "counts" [ 0; 0; 1; 1 ]
    [ queued; running; done_; failed ];
  (* Finished jobs beyond [keep] age out; live jobs never do. *)
  for i = 0 to 4 do
    Serve.Jobs.finish t (Serve.Jobs.submit t ~label:(string_of_int i))
  done;
  let live = Serve.Jobs.submit t ~label:"live" in
  ignore (Serve.Jobs.submit t ~label:"also-live");
  let _, _, done_, failed = Serve.Jobs.counts t in
  Alcotest.(check int) "bounded history" 2 (done_ + failed);
  match Serve.Jobs.to_status_json t with
  | Json.List rows ->
      Alcotest.(check int) "status rows" 4 (List.length rows);
      Alcotest.(check bool) "live job listed" true
        (List.exists
           (fun r -> Json.member "label" r = Some (Json.String "live"))
           rows);
      ignore live
  | _ -> Alcotest.fail "status must be a list"

(* ---- The headline property: warm replay ------------------------------------ *)

let check_store_warm_run_bit_identical ~strategy () =
  with_temp_store @@ fun path ->
  Sys.remove path;
  let search store =
    let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
    Dse.run ~samples:8 ~iterations:10 ~seed:7 ?strategy
      ~cache:(Serve.Store.cache_for store "xc7z020")
      ~memos:(Serve.Store.memos store)
      ctx m ~top:"gemm" ~platform:P.xc7z020
  in
  let s1 = Serve.Store.open_ ~path () in
  let r1 = search s1 in
  ignore (Serve.Store.save s1);
  let s2 = Serve.Store.open_ ~path () in
  let r2 = search s2 in
  Alcotest.(check bool) "identical frontier" true (r1.Dse.pareto = r2.Dse.pareto);
  Alcotest.(check bool) "identical best" true (r1.Dse.best = r2.Dse.best);
  Alcotest.(check int) "same exploration" r1.Dse.explored r2.Dse.explored;
  Alcotest.(check int) "cold run starts empty" 0 r1.Dse.stats.Dse.cache_hits;
  (* Deterministic replay: the warm run proposes exactly the cold run's
     points, so every single one is served from the restored store. *)
  Alcotest.(check int) "warm run evaluates nothing" 0
    r2.Dse.stats.Dse.cache_misses;
  Alcotest.(check bool) "warm hits nonzero" true
    (r2.Dse.stats.Dse.cache_hits > 0)

let test_store_warm_run_bit_identical () =
  check_store_warm_run_bit_identical ~strategy:None ()

(* The same replay contract must hold for a learning strategy: warm-store
   merges reach [Strategy.observe] in the cold run's merge order, so the
   surrogate's RLS state — and every shortlist it derives — replays exactly,
   down to a zero-miss warm run. *)
let test_store_warm_run_surrogate () =
  check_store_warm_run_bit_identical ~strategy:(Some (Qor_ml.surrogate ())) ()

let suite =
  ( "serve",
    [
      Alcotest.test_case "codec round-trips" `Quick test_codec_roundtrips;
      Alcotest.test_case "codec rejects malformed" `Quick
        test_codec_rejects_malformed;
      Alcotest.test_case "protocol parses requests" `Quick test_protocol_parse;
      Alcotest.test_case "protocol client round-trip" `Quick
        test_protocol_client_roundtrip;
      Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
      Alcotest.test_case "store version mismatch goes cold" `Quick
        test_store_version_mismatch_cold;
      Alcotest.test_case "store tolerates corruption" `Quick
        test_store_corruption_tolerated;
      Alcotest.test_case "scheduler concurrent evals" `Quick
        test_scheduler_concurrent_evals;
      Alcotest.test_case "jobs lifecycle" `Quick test_jobs_lifecycle;
      Alcotest.test_case "warm store replays bit-identical" `Quick
        test_store_warm_run_bit_identical;
      Alcotest.test_case "warm store replays the surrogate bit-identical" `Quick
        test_store_warm_run_surrogate;
    ] )
