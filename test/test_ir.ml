(* Tests of the IR core: contexts, attributes, types, construction, walking,
   cloning, verification, and the interpreter. *)

open Mir
open Dialects
open Helpers

(* ---- Types / attrs ----------------------------------------------------------- *)

let test_ty_bits () =
  Alcotest.(check int) "f32" 32 (Ty.bits Ty.F32);
  Alcotest.(check int) "i8" 8 (Ty.bits Ty.I8);
  Alcotest.(check int) "memref bits" (4 * 4 * 32)
    (Ty.storage_bits (Ty.memref [ 4; 4 ] Ty.F32))

let test_ty_equal () =
  Alcotest.(check bool) "same memref" true
    (Ty.equal (Ty.memref [ 2; 3 ] Ty.F32) (Ty.memref [ 2; 3 ] Ty.F32));
  Alcotest.(check bool) "different shape" false
    (Ty.equal (Ty.memref [ 2; 3 ] Ty.F32) (Ty.memref [ 3; 2 ] Ty.F32));
  Alcotest.(check bool) "different memspace" false
    (Ty.equal (Ty.memref [ 2 ] Ty.F32) (Ty.memref ~memspace:Ty.Memspace.dram [ 2 ] Ty.F32))

let test_memspace_ports () =
  Alcotest.(check int) "single port" 1 (Ty.Memspace.ports Ty.Memspace.bram_s1p);
  Alcotest.(check int) "true dual port" 2 (Ty.Memspace.ports Ty.Memspace.bram_t2p);
  Alcotest.(check int) "dram" 1 (Ty.Memspace.ports Ty.Memspace.dram)

let test_attr_roundtrip () =
  let a = Attr.Dict [ ("x", Attr.Int 3); ("y", Attr.Arr [ Attr.Bool true; Attr.Str "s" ]) ] in
  Alcotest.(check bool) "equal self" true (Attr.equal a a);
  Alcotest.(check int) "dict find" 3
    (Attr.as_int (Option.get (Attr.dict_find "x" a)))

(* ---- Construction / ctx -------------------------------------------------------- *)

let test_ctx_fresh () =
  let ctx = Ir.Ctx.create () in
  let a = Ir.Ctx.fresh ctx Ty.F32 and b = Ir.Ctx.fresh ctx Ty.F32 in
  Alcotest.(check bool) "distinct ids" true (a.Ir.vid <> b.Ir.vid)

let test_ctx_seed () =
  let ctx = Ir.Ctx.create () in
  let op, _ = Arith.constant_i ctx 1 in
  let m = Ir.module_ [ Func.func_raw ~name:"f" ~args:[] ~outputs:[] [ op; Func.return_ [] ] ] in
  let ctx2 = Ir.Ctx.of_op m in
  let v = Ir.Ctx.fresh ctx2 Ty.F32 in
  Alcotest.(check bool) "seeded past existing" true (v.Ir.vid > (Ir.result op).Ir.vid)

let test_module_funcs () =
  let ctx = Ir.Ctx.create () in
  let f1 = Func.func ctx ~name:"a" ~inputs:[] ~outputs:[] (fun _ -> [ Func.return_ [] ]) in
  let f2 = Func.func ctx ~name:"b" ~inputs:[] ~outputs:[] (fun _ -> [ Func.return_ [] ]) in
  let m = Ir.module_ [ f1; f2 ] in
  Alcotest.(check int) "two funcs" 2 (List.length (Ir.module_funcs m));
  Alcotest.(check bool) "find" true (Option.is_some (Ir.find_func m "b"));
  let f2' = Func.func ctx ~name:"b" ~inputs:[ Ty.F32 ] ~outputs:[] (fun _ -> [ Func.return_ [] ]) in
  let m' = Ir.replace_func m f2' in
  let found = Ir.find_func_exn m' "b" in
  Alcotest.(check int) "replaced arity" 1 (List.length (Func.func_args found))

(* ---- Walking ------------------------------------------------------------------- *)

let sample_func ctx =
  Func.func ctx ~name:"walkme" ~inputs:[ Ty.memref [ 8 ] Ty.F32 ] ~outputs:[]
    (fun args ->
      let mem = List.hd args in
      [
        Affine_d.for_const ctx ~lb:0 ~ub:8 (fun iv ->
            let lop, lv = Affine_d.load_id ctx mem [ iv ] in
            let aop, av = Arith.addf ctx lv lv in
            [ lop; aop; Affine_d.store_id ctx av mem [ iv ]; Affine_d.yield ]);
        Func.return_ [];
      ])

let test_walk_collect () =
  let ctx = Ir.Ctx.create () in
  let f = sample_func ctx in
  Alcotest.(check int) "loads" 1 (Walk.count (fun o -> o.Ir.name = "affine.load") f);
  Alcotest.(check int) "loops" 1 (Walk.count Affine_d.is_for f);
  Alcotest.(check bool) "exists addf" true (Walk.exists (fun o -> o.Ir.name = "arith.addf") f)

let test_free_values () =
  let ctx = Ir.Ctx.create () in
  let f = sample_func ctx in
  let loop = List.hd (Walk.collect Affine_d.is_for f) in
  let frees = Walk.free_values loop in
  (* the loop body uses the memref argument, defined outside *)
  let arg = List.hd (Func.func_args f) in
  Alcotest.(check bool) "memref is free in loop" true (Ir.Value_set.mem arg.Ir.vid frees);
  let iv = Affine_d.induction_var loop in
  Alcotest.(check bool) "iv is not free" false (Ir.Value_set.mem iv.Ir.vid frees)

let test_substitute_uses () =
  let ctx = Ir.Ctx.create () in
  let c1, v1 = Arith.constant_i ctx 1 in
  let c2, v2 = Arith.constant_i ctx 2 in
  let add, _ = Arith.addi ctx v1 v1 in
  let f = Func.func_raw ~name:"s" ~args:[] ~outputs:[] [ c1; c2; add; Func.return_ [] ] in
  let f' = Walk.substitute_uses (Ir.Value_map.singleton v1.Ir.vid v2) f in
  let add' = List.hd (Walk.collect (fun o -> o.Ir.name = "arith.addi") f') in
  Alcotest.(check bool) "both operands rewritten" true
    (List.for_all (fun (v : Ir.value) -> v.Ir.vid = v2.Ir.vid) add'.Ir.operands)

(* ---- Clone --------------------------------------------------------------------- *)

let test_clone_fresh_ids () =
  let ctx = Ir.Ctx.create () in
  let f = sample_func ctx in
  let loop = List.hd (Walk.collect Affine_d.is_for f) in
  let clone = Clone.op ctx loop in
  let orig_defs = Walk.defined_values loop in
  let clone_defs = Walk.defined_values clone in
  Alcotest.(check bool) "disjoint definitions" true
    (Ir.Value_set.is_empty (Ir.Value_set.inter orig_defs clone_defs))

let test_clone_preserves_free_uses () =
  let ctx = Ir.Ctx.create () in
  let f = sample_func ctx in
  let loop = List.hd (Walk.collect Affine_d.is_for f) in
  let clone = Clone.op ctx loop in
  let arg = List.hd (Func.func_args f) in
  Alcotest.(check bool) "free memref use survives" true
    (Ir.Value_set.mem arg.Ir.vid (Walk.free_values clone))

let test_clone_semantics () =
  (* duplicating the loop doubles the doubling: A[i] becomes 4*A[i] *)
  let ctx = Ir.Ctx.create () in
  let f = sample_func ctx in
  let loop = List.hd (Walk.collect Affine_d.is_for f) in
  let clone = Clone.op ctx loop in
  let f2 = Ir.with_body f [ loop; clone; Func.return_ [] ] in
  let m = Ir.module_ [ f2 ] in
  let buf = Interp.buffer_init [ 8 ] Ty.F32 (fun i -> float_of_int i) in
  ignore (Interp.run_func m "walkme" [ Interp.VBuf buf ]);
  Alcotest.(check (float 1e-9)) "A[3] quadrupled" 12.0 buf.Interp.data.(3)

(* ---- Verifier ------------------------------------------------------------------- *)

let test_verify_ok () =
  let ctx = Ir.Ctx.create () in
  check_verifies ~msg:"sample" (Ir.module_ [ sample_func ctx ])

let test_verify_catches_use_before_def () =
  let ctx = Ir.Ctx.create () in
  let c, v = Arith.constant_i ctx 1 in
  let add, _ = Arith.addi ctx v v in
  (* add placed before its operand's definition *)
  let f = Func.func_raw ~name:"bad" ~args:[] ~outputs:[] [ add; c; Func.return_ [] ] in
  match Verify.verify (Ir.module_ [ f ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted use-before-def"

let test_verify_catches_double_def () =
  let ctx = Ir.Ctx.create () in
  let c, v = Arith.constant_i ctx 1 in
  let c2 = Ir.mk "arith.constant" ~attrs:[ ("value", Attr.Int 2) ] ~operands:[] ~results:[ v ] in
  let f = Func.func_raw ~name:"bad2" ~args:[] ~outputs:[] [ c; c2; Func.return_ [] ] in
  match Verify.verify (Ir.module_ [ f ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted double definition"

let test_verify_catches_out_of_scope () =
  let ctx = Ir.Ctx.create () in
  (* a value defined inside a loop used outside of it *)
  let mem_ty = Ty.memref [ 4 ] Ty.F32 in
  let mem = Ir.Ctx.fresh ctx mem_ty in
  let inner_load = ref None in
  let loop =
    Affine_d.for_const ctx ~lb:0 ~ub:4 (fun iv ->
        let lop, lv = Affine_d.load_id ctx mem [ iv ] in
        inner_load := Some lv;
        [ lop; Affine_d.yield ])
  in
  let escaped, _ = Arith.addf ctx (Option.get !inner_load) (Option.get !inner_load) in
  let f = Func.func_raw ~name:"bad3" ~args:[ mem ] ~outputs:[] [ loop; escaped; Func.return_ [] ] in
  match Verify.verify (Ir.module_ [ f ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted scope escape"

(* ---- Interpreter ----------------------------------------------------------------- *)

let test_interp_arith () =
  let ctx = Ir.Ctx.create () in
  let ops = ref [] in
  let e (op, v) = ops := op :: !ops; v in
  let a = e (Arith.constant_f ctx 3.0) in
  let b = e (Arith.constant_f ctx 4.0) in
  let s = e (Arith.mulf ctx a b) in
  let c = e (Arith.constant_i ctx 7) in
  let d = e (Arith.constant_i ctx 2) in
  let r = e (Arith.remi ctx c d) in
  let ri = e (Arith.sitofp ctx r ~ty:Ty.F32) in
  let total = e (Arith.addf ctx s ri) in
  let f = Func.func_raw ~name:"t" ~args:[] ~outputs:[ Ty.F32 ] (List.rev (Func.return_ [ total ] :: !ops)) in
  match Interp.run_func (Ir.module_ [ f ]) "t" [] with
  | [ Interp.VFloat v ] -> Alcotest.(check (float 1e-9)) "3*4 + 7 mod 2" 13.0 v
  | _ -> Alcotest.fail "expected one float"

let test_interp_if () =
  let src =
    {|
void clampit(float A[8]) {
  for (int i = 0; i < 8; i++) {
    if (A[i] > 2.0) { A[i] = 2.0; } else { A[i] = A[i] + 1.0; }
  }
}
|}
  in
  let _, m = compile_c_affine src in
  let buf = Interp.buffer_init [ 8 ] Ty.F32 (fun i -> float_of_int i) in
  ignore (Interp.run_func m "clampit" [ Interp.VBuf buf ]);
  Alcotest.(check (float 1e-9)) "A[0] bumped" 1.0 buf.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "A[7] clamped" 2.0 buf.Interp.data.(7)

let test_interp_call () =
  let src =
    {|
float square(float x) { return x * x; }
void apply(float A[4]) {
  for (int i = 0; i < 4; i++) {
    A[i] = square(A[i]);
  }
}
|}
  in
  let _, m = compile_c_affine src in
  let buf = Interp.buffer_init [ 4 ] Ty.F32 (fun i -> float_of_int (i + 1)) in
  ignore (Interp.run_func m "apply" [ Interp.VBuf buf ]);
  Alcotest.(check (float 1e-9)) "4^2" 16.0 buf.Interp.data.(3)

let test_interp_init_seed () =
  let ctx = Ir.Ctx.create () in
  let alloc, mem = Memref.alloc ctx [ 8 ] Ty.I8 in
  let alloc = Ir.set_attr alloc "init_seed" (Attr.Int 5) in
  let lop, lv = Affine_d.load_id ctx mem [] in
  (* 1-d load of a 1-d memref needs an index: use constant 0 *)
  ignore (lop, lv);
  let c0op, c0 = Arith.constant_i ctx 0 in
  let lop, lv = Memref.load ctx mem [ c0 ] in
  let f = Func.func_raw ~name:"w" ~args:[] ~outputs:[ Ty.I8 ] [ alloc; c0op; lop; Func.return_ [ lv ] ] in
  match Interp.run_func (Ir.module_ [ f ]) "w" [] with
  | [ Interp.VInt v ] -> Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  | _ -> Alcotest.fail "expected an int"

(* ---- Printer -------------------------------------------------------------------- *)

let test_printer_mentions_structure () =
  let ctx = Ir.Ctx.create () in
  let text = Printer.op_to_string (Ir.module_ [ sample_func ctx ]) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Helpers.contains ~needle text))
    [ "module"; "func"; "affine.for"; "affine.load"; "affine.store"; "sym_name" ]

let suite =
  ( "ir",
    [
      Alcotest.test_case "type bit widths" `Quick test_ty_bits;
      Alcotest.test_case "type equality" `Quick test_ty_equal;
      Alcotest.test_case "memory-space ports" `Quick test_memspace_ports;
      Alcotest.test_case "attribute dict" `Quick test_attr_roundtrip;
      Alcotest.test_case "fresh value ids" `Quick test_ctx_fresh;
      Alcotest.test_case "context seeding" `Quick test_ctx_seed;
      Alcotest.test_case "module function table" `Quick test_module_funcs;
      Alcotest.test_case "walk collection" `Quick test_walk_collect;
      Alcotest.test_case "free-value analysis" `Quick test_free_values;
      Alcotest.test_case "use substitution" `Quick test_substitute_uses;
      Alcotest.test_case "clone mints fresh ids" `Quick test_clone_fresh_ids;
      Alcotest.test_case "clone keeps free uses" `Quick test_clone_preserves_free_uses;
      Alcotest.test_case "clone is a semantic copy" `Quick test_clone_semantics;
      Alcotest.test_case "verifier accepts valid IR" `Quick test_verify_ok;
      Alcotest.test_case "verifier: use before def" `Quick test_verify_catches_use_before_def;
      Alcotest.test_case "verifier: double definition" `Quick test_verify_catches_double_def;
      Alcotest.test_case "verifier: scope escape" `Quick test_verify_catches_out_of_scope;
      Alcotest.test_case "interp: scalar arithmetic" `Quick test_interp_arith;
      Alcotest.test_case "interp: conditionals" `Quick test_interp_if;
      Alcotest.test_case "interp: function calls" `Quick test_interp_call;
      Alcotest.test_case "interp: weight init seeds" `Quick test_interp_init_seed;
      Alcotest.test_case "printer shows structure" `Quick test_printer_mentions_structure;
    ] )
