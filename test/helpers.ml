(* Shared test utilities: kernel compilation, interpreter harnesses, and
   semantic-equivalence checking used across the suites. *)

open Mir
open Scalehls [@@warning "-33"]

let compile_kernel ?(n = 8) kernel =
  let ctx = Ir.Ctx.create () in
  let src = Models.Polybench.source kernel ~n in
  let m = Frontend.Codegen.compile_source ctx src in
  let m = Pass.run_one Frontend.Raise_affine.pass ctx m in
  (ctx, m)

(* Deterministic pseudo-random buffer contents. *)
let fill_pattern seed i = float_of_int ((((i * 7) + seed) mod 11) - 5) /. 2.

(* Build the interpreter arguments of a kernel at size [n]; scalars get fixed
   values, arrays pattern data. Returns (args, output buffers to compare). *)
let kernel_args ?(seed = 3) kernel ~n =
  let shapes = Models.Polybench.arg_shapes kernel ~n in
  let scalars = [ 1.5; 0.5; 2.0; -1.0 ] in
  let next_scalar = ref 0 in
  let bufs = ref [] in
  let args =
    List.mapi
      (fun i shape ->
        match shape with
        | None ->
            let v = List.nth scalars (!next_scalar mod 4) in
            incr next_scalar;
            Interp.VFloat v
        | Some dims ->
            let b = Interp.buffer_init dims Ty.F32 (fill_pattern (seed + i)) in
            bufs := b :: !bufs;
            Interp.VBuf b)
      shapes
  in
  (args, List.rev !bufs)

(* Run [m]'s kernel function on fresh pattern inputs; returns the
   concatenated contents of all array arguments after execution. *)
let run_kernel ?seed kernel ~n m =
  let top = Models.Polybench.name kernel in
  let args, bufs = kernel_args ?seed kernel ~n in
  ignore (Interp.run_func m top args);
  Array.concat (List.map (fun b -> b.Interp.data) bufs)

(* One definition shared with the fuzzing oracle: Mir.Float_compare. *)
let arrays_close ?eps a b = Float_compare.arrays_close ?eps a b

(* The central property: a transformation preserves kernel semantics. *)
let check_semantics ?seed ~msg kernel ~n m_before m_after =
  let want = run_kernel ?seed kernel ~n m_before in
  let got = run_kernel ?seed kernel ~n m_after in
  Alcotest.(check bool) msg true (arrays_close want got)

let check_verifies ~msg m =
  match Verify.verify m with
  | Ok () -> ()
  | Error errors ->
      Alcotest.failf "%s: IR verification failed: %a" msg
        Fmt.(list ~sep:(any "; ") Verify.pp_error)
        errors

(* Small C programs compiled through the front-end for targeted tests. *)
let compile_c_affine src =
  let ctx = Ir.Ctx.create () in
  let m = Frontend.Codegen.compile_source ctx src in
  let m = Pass.run_one Frontend.Raise_affine.pass ctx m in
  (ctx, m)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Substring search (avoids an astring dependency). *)
let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0
