(* DSE engine tests: space construction, Pareto-frontier properties,
   determinism, and actual quality improvement. *)

open Scalehls
open Helpers

module P = Vhls.Platform

(* ---- Pareto frontier properties ------------------------------------------------------ *)

let mk_eval latency dsp feasible =
  {
    Dse.point = { Dse.lp = false; rvb = false; perm = []; tiles = []; target_ii = latency };
    estimate =
      {
        Estimator.latency;
        interval = latency;
        usage = { P.usage_zero with P.u_dsp = dsp };
      };
    feasible;
  }

let test_pareto_basic () =
  let pts = [ mk_eval 10 5 true; mk_eval 5 10 true; mk_eval 10 10 true; mk_eval 20 20 true ] in
  let front = Dse.pareto_frontier pts in
  Alcotest.(check int) "two survivors" 2 (List.length front);
  Alcotest.(check (list int)) "latency sorted" [ 5; 10 ]
    (List.map (fun p -> p.Dse.estimate.Estimator.latency) front)

let test_pareto_drops_infeasible () =
  let pts = [ mk_eval 1 1 false; mk_eval 10 10 true ] in
  let front = Dse.pareto_frontier pts in
  Alcotest.(check int) "infeasible dropped" 1 (List.length front);
  Alcotest.(check int) "kept the feasible" 10
    ((List.hd front).Dse.estimate.Estimator.latency)

let arb_points =
  QCheck.make
    ~print:(fun l -> Fmt.str "%d points" (List.length l))
    QCheck.Gen.(
      list_size (int_range 1 30)
        (map2 (fun l d -> mk_eval (1 + l) (1 + d) true) (int_range 0 50) (int_range 0 50)))

let prop_pareto_no_dominated =
  qtest ~count:200 "no frontier point dominates another" arb_points (fun pts ->
      let front = Dse.pareto_frontier pts in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              a == b
              || not
                   (b.Dse.estimate.Estimator.latency <= a.Dse.estimate.Estimator.latency
                   && Dse.area_of b.Dse.estimate <= Dse.area_of a.Dse.estimate))
            front)
        front)

let prop_pareto_covers =
  qtest ~count:200 "every point is dominated by or on the frontier" arb_points (fun pts ->
      let front = Dse.pareto_frontier pts in
      List.for_all
        (fun p ->
          List.exists
            (fun f ->
              f.Dse.estimate.Estimator.latency <= p.Dse.estimate.Estimator.latency
              && Dse.area_of f.Dse.estimate <= Dse.area_of p.Dse.estimate)
            front)
        pts)

(* ---- Space ----------------------------------------------------------------------------- *)

let test_space_gemm () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let s = Dse.build_space ~max_unroll:64 ctx m ~top:"gemm" in
  Alcotest.(check bool) "several legal perms" true (List.length s.Dse.perms > 1);
  Alcotest.(check int) "three tile dims" 3 (List.length s.Dse.tile_options);
  Alcotest.(check bool) "lp applicable" true (List.length s.Dse.lp_options = 2);
  Alcotest.(check bool) "space is large" true (Dse.space_size s > 100)

let test_space_rvb_only_for_triangular () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let s = Dse.build_space ctx m ~top:"gemm" in
  Alcotest.(check (list bool)) "gemm: rvb not applicable" [ false ] s.Dse.rvb_options;
  let ctx2, m2 = compile_kernel ~n:8 Models.Polybench.Syrk in
  let s2 = Dse.build_space ctx2 m2 ~top:"syrk" in
  Alcotest.(check int) "syrk: rvb is a dimension" 2 (List.length s2.Dse.rvb_options)

let test_neighbors_are_close () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let s = Dse.build_space ctx m ~top:"gemm" in
  let rng = Random.State.make [| 1 |] in
  let pt = Dse.random_point rng s in
  let ns = Dse.neighbors s pt in
  Alcotest.(check bool) "has neighbors" true (ns <> []);
  (* each neighbor differs from pt in a bounded way *)
  List.iter
    (fun n ->
      let diffs =
        (if n.Dse.lp <> pt.Dse.lp then 1 else 0)
        + (if n.Dse.rvb <> pt.Dse.rvb then 1 else 0)
        + (if n.Dse.perm <> pt.Dse.perm then 1 else 0)
        + (if n.Dse.target_ii <> pt.Dse.target_ii then 1 else 0)
        + List.fold_left2 (fun acc a b -> if a <> b then acc + 1 else acc) 0 n.Dse.tiles pt.Dse.tiles
      in
      Alcotest.(check int) "one dimension moved" 1 diffs)
    ns

(* ---- Engine ----------------------------------------------------------------------------- *)

let test_dse_improves_baseline () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let r = Dse.run ~samples:12 ~iterations:20 ~seed:1 ctx m ~top:"gemm" ~platform:P.xc7z020 in
  match r.Dse.best with
  | Some best ->
      let base = Estimator.estimate m ~top:"gemm" in
      Alcotest.(check bool) "at least 5x better" true
        (base.Estimator.latency > 5 * best.Dse.estimate.Estimator.latency);
      Alcotest.(check bool) "feasible" true best.Dse.feasible
  | None -> Alcotest.fail "no feasible point"

let test_dse_deterministic () =
  let run () =
    let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
    let r = Dse.run ~samples:10 ~iterations:10 ~seed:5 ctx m ~top:"gemm" ~platform:P.xc7z020 in
    Option.map (fun b -> (b.Dse.point, b.Dse.estimate.Estimator.latency)) r.Dse.best
  in
  Alcotest.(check bool) "same seed, same result" true (run () = run ())

let test_dse_result_is_valid_ir () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Syrk in
  let r = Dse.run ~samples:10 ~iterations:15 ~seed:2 ctx m ~top:"syrk" ~platform:P.xc7z020 in
  check_verifies ~msg:"dse module" r.Dse.module_;
  check_semantics ~msg:"dse module semantics" Models.Polybench.Syrk ~n:8 m r.Dse.module_

let test_dse_respects_resources () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let r = Dse.run ~samples:16 ~iterations:24 ~seed:3 ctx m ~top:"gemm" ~platform:P.xc7z020 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "pareto point fits the platform" true
        (P.fits P.xc7z020 p.Dse.estimate.Estimator.usage))
    r.Dse.pareto

let suite =
  ( "dse",
    [
      Alcotest.test_case "pareto: basics" `Quick test_pareto_basic;
      Alcotest.test_case "pareto: drops infeasible" `Quick test_pareto_drops_infeasible;
      prop_pareto_no_dominated;
      prop_pareto_covers;
      Alcotest.test_case "space: gemm dimensions" `Quick test_space_gemm;
      Alcotest.test_case "space: rvb only when variable bounds" `Quick test_space_rvb_only_for_triangular;
      Alcotest.test_case "neighbors move one dimension" `Quick test_neighbors_are_close;
      Alcotest.test_case "dse improves baseline" `Slow test_dse_improves_baseline;
      Alcotest.test_case "dse is deterministic" `Slow test_dse_deterministic;
      Alcotest.test_case "dse output is valid + equivalent" `Slow test_dse_result_is_valid_ir;
      Alcotest.test_case "pareto points fit platform" `Slow test_dse_respects_resources;
    ] )
