(* DSE engine tests: space construction, Pareto-frontier properties,
   determinism, and actual quality improvement. *)

open Scalehls
open Helpers

module P = Vhls.Platform

(* ---- Pareto frontier properties ------------------------------------------------------ *)

let mk_eval latency dsp feasible =
  {
    Dse.point = { Dse.lp = false; rvb = false; perm = []; tiles = []; target_ii = latency };
    estimate =
      {
        Estimator.latency;
        interval = latency;
        usage = { P.usage_zero with P.u_dsp = dsp };
      };
    feasible;
  }

let test_pareto_basic () =
  let pts = [ mk_eval 10 5 true; mk_eval 5 10 true; mk_eval 10 10 true; mk_eval 20 20 true ] in
  let front = Dse.pareto_frontier pts in
  Alcotest.(check int) "two survivors" 2 (List.length front);
  Alcotest.(check (list int)) "latency sorted" [ 5; 10 ]
    (List.map (fun p -> p.Dse.estimate.Estimator.latency) front)

let test_pareto_drops_infeasible () =
  let pts = [ mk_eval 1 1 false; mk_eval 10 10 true ] in
  let front = Dse.pareto_frontier pts in
  Alcotest.(check int) "infeasible dropped" 1 (List.length front);
  Alcotest.(check int) "kept the feasible" 10
    ((List.hd front).Dse.estimate.Estimator.latency)

let arb_points =
  QCheck.make
    ~print:(fun l -> Fmt.str "%d points" (List.length l))
    QCheck.Gen.(
      list_size (int_range 1 30)
        (map2 (fun l d -> mk_eval (1 + l) (1 + d) true) (int_range 0 50) (int_range 0 50)))

let prop_pareto_no_dominated =
  qtest ~count:200 "no frontier point dominates another" arb_points (fun pts ->
      let front = Dse.pareto_frontier pts in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              a == b
              || not
                   (b.Dse.estimate.Estimator.latency <= a.Dse.estimate.Estimator.latency
                   && Dse.area_of b.Dse.estimate <= Dse.area_of a.Dse.estimate))
            front)
        front)

(* The O(n log n) sort-and-sweep must agree with the textbook O(n^2)
   dominance filter (modulo the representative kept among duplicate
   (latency, area) pairs, which both collapse to one). *)
let naive_pareto (pts : Dse.evaluated list) : (int * int) list =
  let feas = List.filter (fun (p : Dse.evaluated) -> p.Dse.feasible) pts in
  let dominated (a : Dse.evaluated) (b : Dse.evaluated) =
    b.Dse.estimate.Estimator.latency <= a.Dse.estimate.Estimator.latency
    && Dse.area_of b.Dse.estimate <= Dse.area_of a.Dse.estimate
    && (b.Dse.estimate.Estimator.latency < a.Dse.estimate.Estimator.latency
       || Dse.area_of b.Dse.estimate < Dse.area_of a.Dse.estimate)
  in
  List.filter (fun a -> not (List.exists (dominated a) feas)) feas
  |> List.map (fun (p : Dse.evaluated) ->
         (p.Dse.estimate.Estimator.latency, Dse.area_of p.Dse.estimate))
  |> List.sort_uniq compare

let prop_pareto_matches_naive =
  qtest ~count:200 "sweep frontier = naive O(n^2) frontier" arb_points (fun pts ->
      let fast =
        List.map
          (fun (p : Dse.evaluated) ->
            (p.Dse.estimate.Estimator.latency, Dse.area_of p.Dse.estimate))
          (Dse.pareto_frontier pts)
      in
      fast = naive_pareto pts)

let prop_pareto_covers =
  qtest ~count:200 "every point is dominated by or on the frontier" arb_points (fun pts ->
      let front = Dse.pareto_frontier pts in
      List.for_all
        (fun p ->
          List.exists
            (fun f ->
              f.Dse.estimate.Estimator.latency <= p.Dse.estimate.Estimator.latency
              && Dse.area_of f.Dse.estimate <= Dse.area_of p.Dse.estimate)
            front)
        pts)

(* ---- Space ----------------------------------------------------------------------------- *)

let test_space_gemm () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let s = Dse.build_space ~max_unroll:64 ctx m ~top:"gemm" in
  Alcotest.(check bool) "several legal perms" true (List.length s.Dse.perms > 1);
  Alcotest.(check int) "three tile dims" 3 (List.length s.Dse.tile_options);
  Alcotest.(check bool) "lp applicable" true (List.length s.Dse.lp_options = 2);
  Alcotest.(check bool) "space is large" true (Dse.space_size s > 100)

let test_space_rvb_only_for_triangular () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let s = Dse.build_space ctx m ~top:"gemm" in
  Alcotest.(check (list bool)) "gemm: rvb not applicable" [ false ] s.Dse.rvb_options;
  let ctx2, m2 = compile_kernel ~n:8 Models.Polybench.Syrk in
  let s2 = Dse.build_space ctx2 m2 ~top:"syrk" in
  Alcotest.(check int) "syrk: rvb is a dimension" 2 (List.length s2.Dse.rvb_options)

let test_neighbors_are_close () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let s = Dse.build_space ctx m ~top:"gemm" in
  let rng = Random.State.make [| 1 |] in
  let pt = Dse.random_point rng s in
  let ns = Dse.neighbors s pt in
  Alcotest.(check bool) "has neighbors" true (ns <> []);
  (* each neighbor differs from pt in a bounded way *)
  List.iter
    (fun n ->
      let diffs =
        (if n.Dse.lp <> pt.Dse.lp then 1 else 0)
        + (if n.Dse.rvb <> pt.Dse.rvb then 1 else 0)
        + (if n.Dse.perm <> pt.Dse.perm then 1 else 0)
        + (if n.Dse.target_ii <> pt.Dse.target_ii then 1 else 0)
        + List.fold_left2 (fun acc a b -> if a <> b then acc + 1 else acc) 0 n.Dse.tiles pt.Dse.tiles
      in
      Alcotest.(check int) "one dimension moved" 1 diffs)
    ns

(* ---- Engine ----------------------------------------------------------------------------- *)

let test_dse_improves_baseline () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let r = Dse.run ~samples:12 ~iterations:20 ~seed:1 ctx m ~top:"gemm" ~platform:P.xc7z020 in
  match r.Dse.best with
  | Some best ->
      let base = Estimator.estimate m ~top:"gemm" in
      Alcotest.(check bool) "at least 5x better" true
        (base.Estimator.latency > 5 * best.Dse.estimate.Estimator.latency);
      Alcotest.(check bool) "feasible" true best.Dse.feasible
  | None -> Alcotest.fail "no feasible point"

let test_dse_deterministic () =
  let run () =
    let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
    let r = Dse.run ~samples:10 ~iterations:10 ~seed:5 ctx m ~top:"gemm" ~platform:P.xc7z020 in
    Option.map (fun b -> (b.Dse.point, b.Dse.estimate.Estimator.latency)) r.Dse.best
  in
  Alcotest.(check bool) "same seed, same result" true (run () = run ())

let test_dse_result_is_valid_ir () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Syrk in
  let r = Dse.run ~samples:10 ~iterations:15 ~seed:2 ctx m ~top:"syrk" ~platform:P.xc7z020 in
  check_verifies ~msg:"dse module" r.Dse.module_;
  check_semantics ~msg:"dse module semantics" Models.Polybench.Syrk ~n:8 m r.Dse.module_

let test_dse_respects_resources () =
  let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
  let r = Dse.run ~samples:16 ~iterations:24 ~seed:3 ctx m ~top:"gemm" ~platform:P.xc7z020 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "pareto point fits the platform" true
        (P.fits P.xc7z020 p.Dse.estimate.Estimator.usage))
    r.Dse.pareto

(* ---- Parallel engine -------------------------------------------------------------------- *)

(* The engine's headline guarantee: the worker count is invisible in the
   result. Same seed => same explored count, same Pareto frontier, same best
   point, whether evaluation is sequential or runs on a domain pool. *)
let frontier_sig (r : Dse.result) =
  ( r.Dse.explored,
    Option.map (fun b -> b.Dse.point) r.Dse.best,
    List.map
      (fun p ->
        (p.Dse.point, p.Dse.estimate.Estimator.latency, Dse.area_of p.Dse.estimate))
      r.Dse.pareto )

let check_jobs_invariant kernel ~n ~top =
  let run jobs =
    let ctx, m = compile_kernel ~n kernel in
    Dse.run ~samples:10 ~iterations:16 ~seed:11 ~jobs ctx m ~top ~platform:P.xc7z020
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool)
    (top ^ ": -j 1 and -j 4 agree")
    true
    (frontier_sig r1 = frontier_sig r4)

let test_parallel_deterministic_gemm () =
  check_jobs_invariant Models.Polybench.Gemm ~n:16 ~top:"gemm"

let test_parallel_deterministic_syrk () =
  check_jobs_invariant Models.Polybench.Syrk ~n:8 ~top:"syrk"

(* The -j invariant is a property of the engine, not of one strategy: a
   learning strategy observes every exact result in merge order, so its
   model state — and therefore its proposals — must not depend on the
   worker count either. *)
let test_surrogate_parallel_deterministic () =
  let run jobs =
    let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
    Dse.run ~samples:10 ~iterations:16 ~seed:11 ~jobs
      ~strategy:(Qor_ml.surrogate ()) ctx m ~top:"gemm" ~platform:P.xc7z020
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "surrogate: -j 1 and -j 4 agree" true
    (frontier_sig r1 = frontier_sig r4);
  Alcotest.(check string) "strategy recorded in stats" "surrogate"
    r1.Dse.stats.Dse.strategy

(* The acceptance-criterion test for the async executor: under adversarial
   per-point latency (randomized worker-side sleeps injected via
   [?batch_wrap], scrambling completion order), the -j 4 run's frontier,
   eval-cache contents, and strategy counters must be bit-identical to the
   -j 1 run — for both strategies and across window sizes. The pools are
   built explicitly so the engine's cores clamp can't silently turn the
   parallel arm into a sequential one on small CI machines. *)
let check_adversarial_latency ~name strategy_of =
  let run ~jobs ~window =
    let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
    let cache = Eval_cache.create () in
    let ctr = Atomic.make 0 in
    let jitter f =
      (* Thread-safe, result-independent jitter: 0-10.5 ms per point,
         pseudo-randomized by arrival order so neighboring points finish
         wildly out of submission order. *)
      let n = Atomic.fetch_and_add ctr 1 in
      Unix.sleepf (float_of_int (n * 2654435761 land 7) *. 0.0015);
      f ()
    in
    Parpool.with_pool ~jobs (fun pool ->
        let r =
          Dse.run ~samples:10 ~iterations:16 ~seed:11 ~window
            ~strategy:(strategy_of ()) ~cache ~pool ~batch_wrap:jitter ctx m
            ~top:"gemm" ~platform:P.xc7z020
        in
        ( frontier_sig r,
          List.sort compare (Eval_cache.bindings cache),
          r.Dse.stats.Dse.strategy_counters ))
  in
  List.iter
    (fun window ->
      let f1, b1, c1 = run ~jobs:1 ~window in
      let f4, b4, c4 = run ~jobs:4 ~window in
      let tag what = Printf.sprintf "%s (window %d): %s" name window what in
      Alcotest.(check bool) (tag "frontier bit-identical") true (f1 = f4);
      Alcotest.(check bool) (tag "eval-cache contents bit-identical") true (b1 = b4);
      Alcotest.(check (list (pair string int))) (tag "strategy counters") c1 c4)
    [ Dse.default_window; 6 ]

let test_adversarial_latency_exhaustive () =
  check_adversarial_latency ~name:"exhaustive" (fun () -> Dse.exhaustive)

let test_adversarial_latency_surrogate () =
  check_adversarial_latency ~name:"surrogate" (fun () -> Qor_ml.surrogate ())

let test_run_cache_stats () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let r = Dse.run ~samples:10 ~iterations:12 ~seed:4 ctx m ~top:"gemm" ~platform:P.xc7z020 in
  let s = r.Dse.stats in
  (* one preprocessing run per (lp, rvb) combo, everything else served from
     the cache *)
  Alcotest.(check bool) "pre cache: at most 4 misses" true (s.Dse.pre_misses <= 4);
  Alcotest.(check bool) "pre cache: hits dominate" true (s.Dse.pre_hits > s.Dse.pre_misses);
  (* every explored point is exactly one evaluation-cache miss *)
  Alcotest.(check int) "eval cache: misses = explored" r.Dse.explored s.Dse.cache_misses;
  Alcotest.(check bool) "wall time measured" true (s.Dse.wall_seconds > 0.)

(* ---- Eval_cache ------------------------------------------------------------------------- *)

let test_eval_cache_basics () =
  let c : (int, string) Eval_cache.t = Eval_cache.create () in
  let calls = ref 0 in
  let produce k () =
    incr calls;
    string_of_int (k * 10)
  in
  Alcotest.(check string) "computes on miss" "10" (Eval_cache.find_or_add c 1 (produce 1));
  Alcotest.(check string) "serves from cache" "10" (Eval_cache.find_or_add c 1 (produce 1));
  Alcotest.(check int) "producer ran once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Eval_cache.hits c);
  Alcotest.(check int) "one miss" 1 (Eval_cache.misses c);
  Alcotest.(check bool) "mem does not count" true
    (Eval_cache.mem c 1 && Eval_cache.hits c = 1);
  Eval_cache.add c 2 "twenty";
  Eval_cache.add c 2 "ignored (first writer wins)";
  Alcotest.(check (option string)) "add is insert-if-absent" (Some "twenty")
    (Eval_cache.find_opt c 2);
  Alcotest.(check int) "two entries" 2 (Eval_cache.length c);
  Eval_cache.clear c;
  Alcotest.(check int) "clear resets entries" 0 (Eval_cache.length c);
  Alcotest.(check int) "clear resets stats" 0 (Eval_cache.hits c + Eval_cache.misses c)

let test_eval_cache_concurrent () =
  (* hammer one cache from several domains: every key must memoize to the
     same value, and lookups after the storm must all hit *)
  let c : (int, int) Eval_cache.t = Eval_cache.create () in
  let pool = Parpool.create ~jobs:3 () in
  let keys = List.init 60 (fun i -> i mod 10) in
  let vals = Parpool.map pool (fun k -> Eval_cache.find_or_add c k (fun () -> k * k)) keys in
  Parpool.shutdown pool;
  Alcotest.(check bool) "all values correct" true
    (List.for_all2 (fun k v -> v = k * k) keys vals);
  Alcotest.(check int) "ten distinct entries" 10 (Eval_cache.length c)

(* ---- Parpool ---------------------------------------------------------------------------- *)

let test_parpool_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * 7) mod 13 in
  Parpool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "order preserved" (List.map f xs) (Parpool.map pool f xs);
      (* pool is reusable across batches *)
      Alcotest.(check (list int)) "second batch" (List.map f xs) (Parpool.map pool f xs);
      Alcotest.(check (list int)) "empty batch" [] (Parpool.map pool f []))

let test_parpool_inline_when_sequential () =
  let pool = Parpool.create ~jobs:1 () in
  Alcotest.(check (list int)) "jobs=1 runs inline" [ 2; 4 ]
    (Parpool.map pool (fun x -> 2 * x) [ 1; 2 ]);
  Parpool.shutdown pool

exception Boom of int

let test_parpool_propagates_exceptions () =
  Parpool.with_pool ~jobs:3 (fun pool ->
      let raised =
        try
          ignore
            (Parpool.map pool (fun x -> if x mod 4 = 3 then raise (Boom x) else x)
               (List.init 12 Fun.id));
          None
        with Boom x -> Some x
      in
      (* the first failing submission wins, deterministically *)
      Alcotest.(check (option int)) "first error by submission order" (Some 3) raised;
      (* the pool survives a failed batch *)
      Alcotest.(check (list int)) "pool still usable" [ 1; 2; 3 ]
        (Parpool.map pool Fun.id [ 1; 2; 3 ]))

(* The streaming API under out-of-order completion: earlier submissions
   sleep longer, so workers finish them last — awaiting by id must still
   pair every result with its own task, and error results must carry the
   failing task's exception without poisoning later tasks or the pool. *)
let test_parpool_stream_out_of_order () =
  Parpool.with_pool ~jobs:3 (fun pool ->
      let st = Parpool.stream pool in
      let ids =
        List.init 6 (fun i ->
            ( i,
              Parpool.submit st (fun () ->
                  Unix.sleepf (float_of_int (5 - i) *. 0.01);
                  i * i) ))
      in
      List.iter
        (fun (i, id) ->
          Alcotest.(check int) (Printf.sprintf "task %d result" i) (i * i)
            (Parpool.await st id))
        ids;
      Alcotest.(check int) "results consumed" 0 (Parpool.completed st);
      Alcotest.(check int) "nothing in flight" 0 (Parpool.in_flight st);
      (* Exception propagation: the failing task's error is delivered for
         its id only; unrelated tasks and the pool survive. *)
      let bad = Parpool.submit st (fun () -> raise (Boom 42)) in
      let good = Parpool.submit st (fun () -> 5) in
      (match Parpool.await_result st bad with
      | Error (Boom 42, _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Error (Boom 42)");
      Alcotest.(check int) "later task unaffected" 5 (Parpool.await st good);
      (* [await] re-raises the original exception. *)
      let bad2 = Parpool.submit st (fun () -> raise (Boom 1)) in
      (match Parpool.await st bad2 with
      | exception Boom 1 -> ()
      | _ -> Alcotest.fail "await must re-raise");
      (* [take] consumes exactly once. *)
      let id = Parpool.submit st (fun () -> 9) in
      (match Parpool.await_result st id with
      | Ok 9 -> ()
      | _ -> Alcotest.fail "expected Ok 9");
      Alcotest.(check bool) "take after consume is None" true
        (Parpool.take st id = None);
      (* The pool is reusable after stream errors — including batch map. *)
      Alcotest.(check (list int)) "map still works" [ 0; 2; 4 ]
        (Parpool.map pool (fun x -> 2 * x) [ 0; 1; 2 ]))

(* jobs=1 streams run inline at submit time; a raising task must capture
   its exception into the result (never raise at [submit]). *)
let test_parpool_stream_inline () =
  let pool = Parpool.create ~jobs:1 () in
  let st = Parpool.stream pool in
  let id = Parpool.submit st (fun () -> 3) in
  Alcotest.(check int) "inline result ready" 1 (Parpool.completed st);
  Alcotest.(check int) "inline result" 3 (Parpool.await st id);
  let bad = Parpool.submit st (fun () -> raise (Boom 9)) in
  (match Parpool.await st bad with
  | exception Boom 9 -> ()
  | _ -> Alcotest.fail "inline submit must capture, await must re-raise");
  Parpool.shutdown pool

(* ---- Fingerprinting --------------------------------------------------------------------- *)

let fp = Mir.Fingerprint.op
let fp_eq a b = Int64.equal (fp a) (fp b)

let test_fingerprint_deterministic () =
  (* fresh Ir.Ctx each time: value ids differ, structure does not *)
  let _, m1 = compile_kernel ~n:8 Models.Polybench.Gemm in
  let _, m2 = compile_kernel ~n:8 Models.Polybench.Gemm in
  Alcotest.(check bool) "same module across fresh contexts" true (fp_eq m1 m2);
  let _, m3 = compile_kernel ~n:16 Models.Polybench.Gemm in
  Alcotest.(check bool) "different problem size differs" false (fp_eq m1 m3)

let test_fingerprint_sensitivity () =
  let _, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let mutate_one name f =
    let done_ = ref false in
    Mir.Walk.map_op
      (fun (o : Mir.Ir.op) ->
        if (not !done_) && o.Mir.Ir.name = name then begin
          done_ := true;
          f o
        end
        else o)
      m
  in
  Alcotest.(check bool) "op rename changes hash" false
    (fp_eq m (mutate_one "arith.mulf" (fun o -> { o with Mir.Ir.name = "arith.addf" })));
  Alcotest.(check bool) "attr change changes hash" false
    (fp_eq m
       (mutate_one "affine.for" (fun o -> Mir.Ir.set_attr o "fp_test" (Mir.Attr.Int 1))));
  (* attrs hash their constructor: Int 4 and Float 4. must not collide *)
  let mk a = Mir.Ir.mk "test.attr" ~attrs:[ ("v", a) ] ~operands:[] ~results:[] in
  Alcotest.(check bool) "Int 4 <> Float 4." false
    (fp_eq (mk (Mir.Attr.Int 4)) (mk (Mir.Attr.Float 4.)));
  Alcotest.(check bool) "Int 4 <> Int 5" false
    (fp_eq (mk (Mir.Attr.Int 4)) (mk (Mir.Attr.Int 5)));
  (* result types are part of the structure *)
  let ctx = Mir.Ir.Ctx.create () in
  let mk_typed ty =
    Mir.Ir.mk "test.typed" ~operands:[] ~results:[ Mir.Ir.Ctx.fresh ctx ty ]
  in
  Alcotest.(check bool) "f32 result <> f64 result" false
    (fp_eq (mk_typed Mir.Ty.F32) (mk_typed Mir.Ty.F64))

(* ---- Per-band fingerprints --------------------------------------------------------------- *)

(* The cross-point estimator memo keys each pipelined band by
   [Fingerprint.subtree] with the target II normalized out of the loop
   directive and free-value ranges folded in. These tests pin the key's
   contract: position-independent within a function, insensitive to the
   target II (the ladder-sharing invariant), sensitive to everything else a
   design point can change, and collision-free across structurally
   different bands. *)

let band_keys f =
  Estimator.build_func_info ~with_keys:true f
  |> fun fi ->
  List.map
    (fun br ->
      match br.Estimator.br_key with
      | Some k -> k
      | None -> Alcotest.fail "band unexpectedly not memoizable")
    fi.Estimator.fi_bands

let gemm_band_keys ?(n = 8) pt =
  let ctx = Mir.Ir.Ctx.create () in
  let m = Pipeline.compile_c ctx (Models.Polybench.source Models.Polybench.Gemm ~n) in
  match Dse.apply_point ctx m ~top:"gemm" pt with
  | exception Dse.Inapplicable -> Alcotest.fail "point inapplicable on gemm"
  | m' -> band_keys (Mir.Ir.find_func_exn m' "gemm")

let gemm_pt = { Dse.lp = true; rvb = false; perm = [ 0; 1; 2 ]; tiles = [ 2; 2; 2 ]; target_ii = 1 }

let test_band_fp_reorder_stable () =
  (* Two independent sibling bands over distinct memrefs: each band's key
     must depend only on its own subtree + range environment, so swapping
     the bands swaps the key list without changing either key. *)
  let open Dialects in
  let ctx = Mir.Ir.Ctx.create () in
  let mk_band mem ~ub =
    let loop =
      Affine_d.for_const ctx ~lb:0 ~ub (fun i ->
          let ol, vl = Affine_d.load_id ctx mem [ i ] in
          let oa, va = Arith.addf ctx vl vl in
          let os = Affine_d.store_id ctx va mem [ i ] in
          [ ol; oa; os ])
    in
    Hlscpp.set_loop_directive loop
      { Hlscpp.default_loop_directive with Hlscpp.loop_pipeline = true }
  in
  let mk swapped =
    Func.func ctx ~name:"f"
      ~inputs:[ Mir.Ty.memref [ 8 ] Mir.Ty.F32; Mir.Ty.memref [ 16 ] Mir.Ty.F32 ]
      ~outputs:[]
      (fun args ->
        let a = List.nth args 0 and b = List.nth args 1 in
        let ba = mk_band a ~ub:8 and bb = mk_band b ~ub:16 in
        (if swapped then [ bb; ba ] else [ ba; bb ]) @ [ Func.return_ [] ])
  in
  match (band_keys (mk false), band_keys (mk true)) with
  | [ ka; kb ], [ kb'; ka' ] ->
      Alcotest.(check bool) "band A key position-independent" true (Int64.equal ka ka');
      Alcotest.(check bool) "band B key position-independent" true (Int64.equal kb kb');
      Alcotest.(check bool) "distinct bands get distinct keys" false (Int64.equal ka kb)
  | ks, ks' ->
      Alcotest.failf "expected 2 bands each, got %d and %d" (List.length ks) (List.length ks')

let test_band_fp_tuple_sensitivity () =
  let base = gemm_band_keys gemm_pt in
  Alcotest.(check bool) "gemm has several bands" true (List.length base > 1);
  (* target II is read back at estimation time, never baked into the
     summary: ladder siblings must share every band key *)
  Alcotest.(check bool) "target-II change preserves all keys" true
    (base = gemm_band_keys { gemm_pt with Dse.target_ii = 3 });
  (* any other tuple dimension restructures the nest: no key may survive *)
  let disjoint a b = not (List.exists (fun k -> List.mem k b) a) in
  Alcotest.(check bool) "tile change invalidates every key" true
    (disjoint base (gemm_band_keys { gemm_pt with Dse.tiles = [ 4; 4; 4 ] }));
  Alcotest.(check bool) "perm change invalidates every key" true
    (disjoint base (gemm_band_keys { gemm_pt with Dse.perm = [ 1; 0; 2 ] }))

let test_band_fp_cross_function () =
  (* Fresh contexts, same source, same point: the keys must agree exactly
     (this is what lets one DSE worker reuse another's summaries). A
     different problem size must collide with none of them. *)
  Alcotest.(check bool) "identical bands across fresh contexts" true
    (gemm_band_keys gemm_pt = gemm_band_keys gemm_pt);
  let k8 = gemm_band_keys ~n:8 gemm_pt and k16 = gemm_band_keys ~n:16 gemm_pt in
  Alcotest.(check bool) "different trip counts never collide" false
    (List.exists (fun k -> List.mem k k16) k8)

(* ---- Point canonicalization ------------------------------------------------------------- *)

let test_canonical_points_share_key () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let pre = Dse.preprocess ctx m ~lp:true ~rvb:false in
  (* tile size 3 does not divide the trip count 8: Loop_tile clamps it to 1,
     so these two proposals produce the same transformed module *)
  let raw = { Dse.lp = true; rvb = false; perm = [ 0; 1; 2 ]; tiles = [ 3; 4; 4 ]; target_ii = 1 } in
  let clamped = { raw with Dse.tiles = [ 1; 4; 4 ] } in
  let k1, c1 = Dse.cache_key pre ~top:"gemm" raw in
  let k2, _ = Dse.cache_key pre ~top:"gemm" clamped in
  Alcotest.(check bool) "clamped-equal points share the cache key" true (k1 = k2);
  Alcotest.(check (list int)) "canonical tiles" [ 1; 4; 4 ] c1.Dse.tiles;
  (* and the engine really schedules them once: the band-granular estimator
     memo re-schedules no band for the second, fingerprint-identical point *)
  let memos = Estimator.create_memos () in
  let ev pt = Dse.evaluate ~memos ~pre ctx m ~top:"gemm" ~platform:P.xc7z020 pt in
  (match ev raw with
  | Some _ -> ()
  | None -> Alcotest.fail "raw point did not evaluate");
  let misses_after_first = Estimator.memo_misses memos in
  Alcotest.(check bool) "bands scheduled on first eval" true (misses_after_first > 0);
  (match ev clamped with
  | Some _ -> ()
  | None -> Alcotest.fail "clamped point did not evaluate");
  Alcotest.(check int) "no band re-scheduled for the clamped twin"
    misses_after_first (Estimator.memo_misses memos);
  Alcotest.(check bool) "band memo hit for the clamped twin" true
    (Estimator.memo_hits memos > 0)

(* ---- Symbolic vs materialized evaluation ------------------------------------------------- *)

(* The tentpole invariant: the symbolic unroll path is observationally
   identical to materializing the unrolled body — same transformed modules
   (structural fingerprint), same estimates, same frontier. *)
let check_symbolic_equiv kernel ~n ~top =
  let _, m = compile_kernel ~n kernel in
  let fails = Fuzz.Oracle.dse_symbolic_equiv ~points:8 ~seed:13 m ~top in
  Alcotest.(check (list string))
    (top ^ ": symbolic = materialized") []
    (List.map (Fmt.str "%a" Fuzz.Oracle.pp_failure) fails)

let test_symbolic_equiv_gemm () = check_symbolic_equiv Models.Polybench.Gemm ~n:16 ~top:"gemm"
let test_symbolic_equiv_syrk () = check_symbolic_equiv Models.Polybench.Syrk ~n:8 ~top:"syrk"

let test_run_symbolic_matches_materialized () =
  let run symbolic =
    let ctx, m = compile_kernel ~n:16 Models.Polybench.Gemm in
    Dse.run ~symbolic ~samples:10 ~iterations:16 ~seed:11 ctx m ~top:"gemm"
      ~platform:P.xc7z020
  in
  let rs = run true and rm = run false in
  Alcotest.(check bool) "same frontier either path" true (frontier_sig rs = frontier_sig rm);
  (* gemm is fully within the supported shape: the symbolic path must never
     fall back (the CI bench gate relies on this) *)
  Alcotest.(check int) "no fallback on gemm" 0 rs.Dse.stats.Dse.fallback_points;
  Alcotest.(check bool) "symbolic path exercised" true (rs.Dse.stats.Dse.symbolic_points > 0);
  Alcotest.(check int) "materialized run reports no symbolic points" 0
    rm.Dse.stats.Dse.symbolic_points

let suite =
  ( "dse",
    [
      Alcotest.test_case "pareto: basics" `Quick test_pareto_basic;
      Alcotest.test_case "pareto: drops infeasible" `Quick test_pareto_drops_infeasible;
      prop_pareto_no_dominated;
      prop_pareto_covers;
      prop_pareto_matches_naive;
      Alcotest.test_case "eval cache: basics" `Quick test_eval_cache_basics;
      Alcotest.test_case "eval cache: concurrent" `Quick test_eval_cache_concurrent;
      Alcotest.test_case "parpool: map = sequential map" `Quick test_parpool_matches_sequential;
      Alcotest.test_case "parpool: jobs=1 inline" `Quick test_parpool_inline_when_sequential;
      Alcotest.test_case "parpool: exceptions" `Quick test_parpool_propagates_exceptions;
      Alcotest.test_case "parpool: stream out-of-order" `Quick
        test_parpool_stream_out_of_order;
      Alcotest.test_case "parpool: stream inline" `Quick test_parpool_stream_inline;
      Alcotest.test_case "space: gemm dimensions" `Quick test_space_gemm;
      Alcotest.test_case "space: rvb only when variable bounds" `Quick test_space_rvb_only_for_triangular;
      Alcotest.test_case "neighbors move one dimension" `Quick test_neighbors_are_close;
      Alcotest.test_case "dse improves baseline" `Slow test_dse_improves_baseline;
      Alcotest.test_case "dse is deterministic" `Slow test_dse_deterministic;
      Alcotest.test_case "dse output is valid + equivalent" `Slow test_dse_result_is_valid_ir;
      Alcotest.test_case "pareto points fit platform" `Slow test_dse_respects_resources;
      Alcotest.test_case "dse caches: stats" `Slow test_run_cache_stats;
      Alcotest.test_case "parallel dse: -j invariant (gemm)" `Slow test_parallel_deterministic_gemm;
      Alcotest.test_case "parallel dse: -j invariant (syrk)" `Slow test_parallel_deterministic_syrk;
      Alcotest.test_case "parallel dse: -j invariant (surrogate)" `Slow
        test_surrogate_parallel_deterministic;
      Alcotest.test_case "parallel dse: adversarial latency (exhaustive)" `Slow
        test_adversarial_latency_exhaustive;
      Alcotest.test_case "parallel dse: adversarial latency (surrogate)" `Slow
        test_adversarial_latency_surrogate;
      Alcotest.test_case "fingerprint: deterministic across contexts" `Quick
        test_fingerprint_deterministic;
      Alcotest.test_case "fingerprint: structural sensitivity" `Quick
        test_fingerprint_sensitivity;
      Alcotest.test_case "band fingerprint: reorder-stable" `Quick
        test_band_fp_reorder_stable;
      Alcotest.test_case "band fingerprint: tuple sensitivity" `Quick
        test_band_fp_tuple_sensitivity;
      Alcotest.test_case "band fingerprint: cross-function sanity" `Quick
        test_band_fp_cross_function;
      Alcotest.test_case "canonical points share cache key" `Quick
        test_canonical_points_share_key;
      Alcotest.test_case "symbolic = materialized (gemm)" `Slow test_symbolic_equiv_gemm;
      Alcotest.test_case "symbolic = materialized (syrk)" `Slow test_symbolic_equiv_syrk;
      Alcotest.test_case "symbolic run matches materialized run" `Slow
        test_run_symbolic_matches_materialized;
    ] )
