(* Graph-level tests: dataflow legalization (Figure 4), function splitting,
   graph-to-loop lowering semantics, and the end-to-end DNN flow. *)

open Mir
open Dialects
open Scalehls
open Helpers

(* The Figure 4 five-procedure dataflow with a bypass Proc0 -> Proc3. *)
let figure4 ctx =
  Models.Nn.build ctx ~input_shape:[ 1; 2; 4; 4 ] (fun b input ->
      let p0 = Models.Nn.relu b input in
      let p1 = Models.Nn.relu b p0 in
      let p2 = Models.Nn.relu b p1 in
      let p3 = Models.Nn.add b p2 p0 in
      Models.Nn.relu b p3)

let stages_of f =
  List.filter_map Legalize_dataflow.stage_of (Func.func_body f)

(* ---- Legalize dataflow -------------------------------------------------------------- *)

let test_conservative_matches_fig4b () =
  let ctx = Ir.Ctx.create () in
  let f = Ir.find_func_exn (figure4 ctx) "forward" in
  let f' = Legalize_dataflow.legalize ctx f in
  Alcotest.(check int) "3 stages" 3 (Legalize_dataflow.num_stages f');
  (* Proc1, Proc2, Proc3 share the middle stage *)
  Alcotest.(check (list int)) "stage assignment" [ 0; 1; 1; 1; 2 ] (stages_of f')

let test_aggressive_matches_fig4c () =
  let ctx = Ir.Ctx.create () in
  let f = Ir.find_func_exn (figure4 ctx) "forward" in
  let f' = Legalize_dataflow.legalize ~insert_copy:true ctx f in
  Alcotest.(check int) "5 stages" 5 (Legalize_dataflow.num_stages f');
  Alcotest.(check int) "2 copies inserted" 2
    (Walk.count (fun o -> o.Ir.name = "graph.copy") f')

let test_legalized_edges_adjacent () =
  (* after legalization every producer-consumer edge spans adjacent stages *)
  let check_adjacent f =
    let body = Func.func_body f in
    let stage_of_value = Hashtbl.create 16 in
    List.iter
      (fun (o : Ir.op) ->
        match Legalize_dataflow.stage_of o with
        | Some s -> List.iter (fun (r : Ir.value) -> Hashtbl.replace stage_of_value r.Ir.vid s) o.Ir.results
        | None -> ())
      body;
    List.for_all
      (fun (o : Ir.op) ->
        match Legalize_dataflow.stage_of o with
        | None -> true
        | Some s ->
            List.for_all
              (fun (v : Ir.value) ->
                match Hashtbl.find_opt stage_of_value v.Ir.vid with
                | Some sp -> s - sp <= 1
                | None -> true)
              o.Ir.operands)
      body
  in
  let ctx = Ir.Ctx.create () in
  let f = Ir.find_func_exn (figure4 ctx) "forward" in
  Alcotest.(check bool) "conservative adjacent" true
    (check_adjacent (Legalize_dataflow.legalize ctx f));
  Alcotest.(check bool) "aggressive adjacent" true
    (check_adjacent (Legalize_dataflow.legalize ~insert_copy:true ctx f))

let prop_random_dags_legalize =
  (* random layered chains with random skip edges always legalize to
     adjacent-stage form *)
  let gen = QCheck.Gen.(pair (int_range 3 8) (int_range 0 3)) in
  qtest ~count:50 "random skip-graphs legalize"
    (QCheck.make ~print:(fun (n, k) -> Fmt.str "chain %d skip %d" n k) gen)
    (fun (n, skip) ->
      let ctx = Ir.Ctx.create () in
      let m =
        Models.Nn.build ctx ~input_shape:[ 1; 2; 4; 4 ] (fun b input ->
            let nodes = ref [ input ] in
            let cur = ref input in
            for i = 1 to n do
              let x =
                if i mod 3 = 0 && skip > 0 && List.length !nodes > skip then
                  Models.Nn.add b !cur (List.nth !nodes skip)
                else Models.Nn.relu b !cur
              in
              nodes := x :: !nodes;
              cur := x
            done;
            !cur)
      in
      let f = Ir.find_func_exn m "forward" in
      let check f' =
        let body = Func.func_body f' in
        let stage_of_value = Hashtbl.create 16 in
        List.iter
          (fun (o : Ir.op) ->
            match Legalize_dataflow.stage_of o with
            | Some s ->
                List.iter (fun (r : Ir.value) -> Hashtbl.replace stage_of_value r.Ir.vid s) o.Ir.results
            | None -> ())
          body;
        List.for_all
          (fun (o : Ir.op) ->
            match Legalize_dataflow.stage_of o with
            | None -> true
            | Some s ->
                List.for_all
                  (fun (v : Ir.value) ->
                    match Hashtbl.find_opt stage_of_value v.Ir.vid with
                    | Some sp -> s - sp <= 1 && s - sp >= 0
                    | None -> true)
                  o.Ir.operands)
          body
      in
      check (Legalize_dataflow.legalize ctx f)
      && check (Legalize_dataflow.legalize ~insert_copy:true ctx f))

(* ---- Split function ------------------------------------------------------------------ *)

let test_split_structure () =
  let ctx = Ir.Ctx.create () in
  let m = figure4 ctx in
  let f = Ir.find_func_exn m "forward" in
  let m = Ir.replace_func m (Legalize_dataflow.legalize ~insert_copy:true ctx f) in
  let m' = Split_function.split ~min_gran:1 ctx m ~func_name:"forward" in
  Alcotest.(check int) "top + 5 stages" 6 (List.length (Ir.module_funcs m'));
  let top = Ir.find_func_exn m' "forward" in
  (match Hlscpp.get_func_directive top with
  | Some d -> Alcotest.(check bool) "dataflow set" true d.Hlscpp.dataflow
  | None -> Alcotest.fail "no dataflow directive");
  Alcotest.(check int) "top is all calls" 5 (List.length (List.filter Func.is_call (Func.func_body top)));
  check_verifies ~msg:"split module" m'

let test_split_min_gran () =
  let ctx = Ir.Ctx.create () in
  let m = figure4 ctx in
  let f = Ir.find_func_exn m "forward" in
  let m = Ir.replace_func m (Legalize_dataflow.legalize ~insert_copy:true ctx f) in
  let m' = Split_function.split ~min_gran:2 ctx m ~func_name:"forward" in
  (* 5 stages at gran 2 -> 3 sub-functions *)
  Alcotest.(check int) "top + 3 stages" 4 (List.length (Ir.module_funcs m'))

(* ---- Lowering semantics ---------------------------------------------------------------- *)

(* Run the lowered module on a pattern input and return the output buffer. *)
let run_lowered m ~in_shape ~out_shape =
  let input = Interp.buffer_init in_shape Ty.I8 (fun i -> float_of_int ((i mod 5) - 2)) in
  let output = Interp.alloc_buffer out_shape Ty.I8 in
  ignore (Interp.run_func m "forward" [ Interp.VBuf input; Interp.VBuf output ]);
  (input, output)

let test_lower_relu () =
  let ctx = Ir.Ctx.create () in
  let m = Models.Nn.build ctx ~input_shape:[ 1; 2; 3; 3 ] (fun b x -> Models.Nn.relu b x) in
  let m' = Lower_graph.run ctx m in
  check_verifies ~msg:"lowered relu" m';
  let input, output = run_lowered m' ~in_shape:[ 2; 3; 3 ] ~out_shape:[ 2; 3; 3 ] in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 1e-9)) "relu" (Float.max 0. input.Interp.data.(i)) x)
    output.Interp.data

let test_lower_conv_vs_reference () =
  let ctx = Ir.Ctx.create () in
  let m =
    Models.Nn.build ctx ~input_shape:[ 1; 2; 4; 4 ] (fun b x ->
        Models.Nn.conv2d b ~stride:1 ~pad:1 ~oc:3 ~k:3 x)
  in
  let m' = Lower_graph.run ctx m in
  check_verifies ~msg:"lowered conv" m';
  let input, output = run_lowered m' ~in_shape:[ 2; 4; 4 ] ~out_shape:[ 3; 4; 4 ] in
  (* reference conv with the same deterministic weights *)
  let weight_alloc =
    List.hd (Walk.collect (fun o -> Ir.has_attr o "weight") m')
  in
  let seed = Ir.int_attr weight_alloc "init_seed" in
  let w i = float_of_int ((((i * 131) + seed) mod 7) - 3) in
  let at (b : Interp.buffer) idxs = b.Interp.data.(Interp.linearize b.Interp.shape idxs) in
  let reference oc oy ox =
    let acc = ref 0. in
    for ic = 0 to 1 do
      for kh = 0 to 2 do
        for kw = 0 to 2 do
          let iy = oy + kh - 1 and ix = ox + kw - 1 in
          if iy >= 0 && iy < 4 && ix >= 0 && ix < 4 then
            acc :=
              !acc
              +. at input [ ic; iy; ix ]
                 *. w ((((((oc * 2) + ic) * 3) + kh) * 3) + kw)
        done
      done
    done;
    !acc
  in
  for oc = 0 to 2 do
    for oy = 0 to 3 do
      for ox = 0 to 3 do
        Alcotest.(check (float 1e-6))
          (Fmt.str "conv[%d][%d][%d]" oc oy ox)
          (reference oc oy ox)
          (at output [ oc; oy; ox ])
      done
    done
  done

let test_lower_maxpool () =
  let ctx = Ir.Ctx.create () in
  let m =
    Models.Nn.build ctx ~input_shape:[ 1; 1; 4; 4 ] (fun b x ->
        Models.Nn.maxpool b ~kernel:2 ~stride:2 x)
  in
  let m' = Lower_graph.run ctx m in
  let input, output = run_lowered m' ~in_shape:[ 1; 4; 4 ] ~out_shape:[ 1; 2; 2 ] in
  let at (b : Interp.buffer) idxs = b.Interp.data.(Interp.linearize b.Interp.shape idxs) in
  let want =
    Float.max
      (Float.max (at input [ 0; 0; 0 ]) (at input [ 0; 0; 1 ]))
      (Float.max (at input [ 0; 1; 0 ]) (at input [ 0; 1; 1 ]))
  in
  Alcotest.(check (float 1e-9)) "pool window max" want (at output [ 0; 0; 0 ])

let test_lower_dense () =
  let ctx = Ir.Ctx.create () in
  let m =
    Models.Nn.build ctx ~input_shape:[ 1; 2; 2; 2 ] (fun b x ->
        Models.Nn.dense b ~oc:3 (Models.Nn.flatten b x))
  in
  let m' = Lower_graph.run ctx m in
  check_verifies ~msg:"lowered dense" m';
  let _, output = run_lowered m' ~in_shape:[ 2; 2; 2 ] ~out_shape:[ 3 ] in
  Alcotest.(check int) "output length" 3 (Array.length output.Interp.data)

(* Split + lowered pipeline computes the same as unsplit + lowered. *)
let test_split_preserves_semantics () =
  let ctx = Ir.Ctx.create () in
  let m = figure4 ctx in
  let lowered_plain = Lower_graph.run ctx m in
  let f = Ir.find_func_exn m "forward" in
  let m2 = Ir.replace_func m (Legalize_dataflow.legalize ~insert_copy:true ctx f) in
  let m2 = Split_function.split ~min_gran:1 ctx m2 ~func_name:"forward" in
  let lowered_split = Lower_graph.run ctx m2 in
  check_verifies ~msg:"split+lowered" lowered_split;
  let _, out1 = run_lowered lowered_plain ~in_shape:[ 2; 4; 4 ] ~out_shape:[ 2; 4; 4 ] in
  let _, out2 = run_lowered lowered_split ~in_shape:[ 2; 4; 4 ] ~out_shape:[ 2; 4; 4 ] in
  Alcotest.(check bool) "same result" true (arrays_close out1.Interp.data out2.Interp.data)

(* The full DNN flow (graph + loop + directive) preserves semantics. *)
let test_dnn_flow_semantics () =
  let build ctx =
    Models.Nn.build ctx ~input_shape:[ 1; 2; 4; 4 ] (fun b x ->
        let y = Models.Nn.relu b (Models.Nn.conv2d b ~stride:1 ~pad:1 ~oc:4 ~k:3 x) in
        let z = Models.Nn.add b y (Models.Nn.conv2d b ~stride:1 ~pad:1 ~oc:4 ~k:3 x) in
        Models.Nn.relu b z)
  in
  let platform = Vhls.Platform.vu9p_slr in
  let ctx = Ir.Ctx.create () in
  let m = build ctx in
  let base = Pipeline.dnn_flow ctx m ~config:Pipeline.baseline_config ~platform in
  let opt =
    Pipeline.dnn_flow ctx m
      ~config:{ Pipeline.graph_level = 7; loop_level = 3; directive = true }
      ~platform
  in
  check_verifies ~msg:"optimized dnn" opt;
  let _, out1 = run_lowered base ~in_shape:[ 2; 4; 4 ] ~out_shape:[ 4; 4; 4 ] in
  let _, out2 = run_lowered opt ~in_shape:[ 2; 4; 4 ] ~out_shape:[ 4; 4; 4 ] in
  Alcotest.(check bool) "optimized = baseline output" true
    (arrays_close out1.Interp.data out2.Interp.data)

let test_dnn_flow_improves_throughput () =
  let ctx = Ir.Ctx.create () in
  let m =
    Models.Nn.build ctx ~input_shape:[ 1; 2; 8; 8 ] (fun b x ->
        let y = Models.Nn.relu b (Models.Nn.conv2d b ~stride:1 ~pad:1 ~oc:4 ~k:3 x) in
        Models.Nn.conv2d b ~stride:1 ~pad:1 ~oc:4 ~k:3 y)
  in
  let platform = Vhls.Platform.vu9p_slr in
  let base, _ = Pipeline.dnn_synth ctx m ~config:Pipeline.baseline_config ~platform in
  let opt, _ =
    Pipeline.dnn_synth ctx m
      ~config:{ Pipeline.graph_level = 7; loop_level = 5; directive = true }
      ~platform
  in
  Alcotest.(check bool) "at least 10x throughput" true
    (base.Vhls.Synth.interval > 10 * opt.Vhls.Synth.interval)

(* ---- Models ------------------------------------------------------------------------------ *)

let test_model_parameter_counts () =
  let ctx = Ir.Ctx.create () in
  let resnet = Models.Resnet.build ctx in
  let p = Models.Nn.num_params resnet in
  (* ResNet-18 CIFAR: ~11.2M parameters *)
  Alcotest.(check bool) "resnet params ~11M" true (p > 10_500_000 && p < 11_500_000);
  let vgg = Models.Vgg.build ctx in
  let pv = Models.Nn.num_params vgg in
  Alcotest.(check bool) "vgg params ~15M" true (pv > 14_000_000 && pv < 16_000_000);
  let mob = Models.Mobilenet.build ctx in
  let pm = Models.Nn.num_params mob in
  Alcotest.(check bool) "mobilenet params ~3.2M" true (pm > 3_000_000 && pm < 3_500_000)

let test_weight_placement_budget () =
  let ctx = Ir.Ctx.create () in
  let m = Lower_graph.run ctx (Models.Resnet.build ctx) in
  let m = Resource_alloc.place_weights ~platform:Vhls.Platform.vu9p_slr ctx m in
  let on_chip, off_chip = Resource_alloc.weight_footprint m in
  Alcotest.(check bool) "some weights on chip" true (on_chip > 0);
  Alcotest.(check bool) "fits the budget fraction" true
    (on_chip <= int_of_float (0.56 *. float_of_int Vhls.Platform.vu9p_slr.Vhls.Platform.memory_bits));
  Alcotest.(check bool) "spill covers the rest" true (off_chip > 0)

let suite =
  ( "graph",
    [
      Alcotest.test_case "Figure 4(b): conservative" `Quick test_conservative_matches_fig4b;
      Alcotest.test_case "Figure 4(c): copy insertion" `Quick test_aggressive_matches_fig4c;
      Alcotest.test_case "legalized edges adjacent" `Quick test_legalized_edges_adjacent;
      prop_random_dags_legalize;
      Alcotest.test_case "split: structure + dataflow" `Quick test_split_structure;
      Alcotest.test_case "split: min-gran merging" `Quick test_split_min_gran;
      Alcotest.test_case "lower: relu" `Quick test_lower_relu;
      Alcotest.test_case "lower: conv vs reference" `Quick test_lower_conv_vs_reference;
      Alcotest.test_case "lower: maxpool" `Quick test_lower_maxpool;
      Alcotest.test_case "lower: flatten+dense" `Quick test_lower_dense;
      Alcotest.test_case "split preserves semantics" `Quick test_split_preserves_semantics;
      Alcotest.test_case "dnn flow preserves semantics" `Slow test_dnn_flow_semantics;
      Alcotest.test_case "dnn flow improves throughput" `Slow test_dnn_flow_improves_throughput;
      Alcotest.test_case "model parameter counts" `Quick test_model_parameter_counts;
      Alcotest.test_case "weight placement budget" `Quick test_weight_placement_budget;
    ] )
