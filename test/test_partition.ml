(* Array-partition tests: the affine layout-map encoding of Figure 3, the
   Eq. 1 metric, inter-procedural propagation, and round-trip properties. *)

open Mir
open Dialects
open Scalehls
open Helpers

module A = Affine

(* ---- Figure 3 encodings ---------------------------------------------------------- *)

let test_fig3_cyclic () =
  (* (b): dim 0 cyclic factor 2 on a [4;8] array:
     (d0, d1) -> (d0 mod 2, 0, d0 floordiv 2, d1) *)
  let map = Hlscpp.partition_layout ~shape:[ 4; 8 ] [ Hlscpp.Cyclic 2; Hlscpp.None_p ] in
  Alcotest.(check (list int)) "index (3, 5)" [ 1; 0; 1; 5 ]
    (A.Map.eval map ~dims:[| 3; 5 |] ~syms:[||])

let test_fig3_block () =
  (* (c): dim 1 block factor 4 on an [4;8] array: block size 2 *)
  let map = Hlscpp.partition_layout ~shape:[ 4; 8 ] [ Hlscpp.None_p; Hlscpp.Block 4 ] in
  Alcotest.(check (list int)) "index (1, 5)" [ 0; 2; 1; 1 ]
    (A.Map.eval map ~dims:[| 1; 5 |] ~syms:[||])

let test_partition_roundtrip_cases () =
  List.iter
    (fun spec ->
      let shape = [ 8; 16 ] in
      let map = Hlscpp.partition_layout ~shape spec in
      match Hlscpp.partition_of_layout ~shape map with
      | Some spec' -> Alcotest.(check bool) "decode(encode) = id" true (spec = spec')
      | None -> Alcotest.fail "decode failed")
    [
      [ Hlscpp.None_p; Hlscpp.None_p ];
      [ Hlscpp.Cyclic 2; Hlscpp.None_p ];
      [ Hlscpp.None_p; Hlscpp.Block 4 ];
      [ Hlscpp.Cyclic 4; Hlscpp.Cyclic 8 ];
      [ Hlscpp.Block 2; Hlscpp.Cyclic 4 ];
    ]

let prop_partition_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 3)
        (oneof
           [
             return Hlscpp.None_p;
             map (fun f -> Hlscpp.Cyclic (1 lsl f)) (int_range 1 3);
             map (fun f -> Hlscpp.Block (1 lsl f)) (int_range 1 3);
           ]))
  in
  qtest ~count:200 "partition encode/decode round-trip"
    (QCheck.make ~print:(fun spec -> Fmt.str "[%a]" Fmt.(list ~sep:comma Hlscpp.pp_partition) spec) gen)
    (fun spec ->
      let shape = List.map (fun _ -> 16) spec in
      let map = Hlscpp.partition_layout ~shape spec in
      Hlscpp.partition_of_layout ~shape map = Some spec)

let prop_banks_cover_all_cells =
  (* every logical index maps to a valid (bank, physical) pair; cyclic
     partitions spread consecutive indices over distinct banks *)
  qtest ~count:200 "cyclic partition spreads consecutive indices"
    QCheck.(pair (int_range 1 3) (int_range 0 12))
    (fun (logf, i) ->
      let f = 1 lsl logf in
      let shape = [ 16 ] in
      let mr = Ty.as_memref (Ty.memref ~layout:(Some (Hlscpp.partition_layout ~shape [ Hlscpp.Cyclic f ])) shape Ty.F32) in
      let b1 = Hlscpp.bank_of_indices mr [ i ] in
      let b2 = Hlscpp.bank_of_indices mr [ i + 1 ] in
      b1 >= 0 && b1 < f && (f = 1 || b1 <> b2))

let test_num_banks () =
  let mr shape spec =
    Ty.as_memref
      (Ty.memref ~layout:(Some (Hlscpp.partition_layout ~shape spec)) shape Ty.F32)
  in
  Alcotest.(check int) "2x4 banks" 8
    (Hlscpp.num_banks (mr [ 8; 8 ] [ Hlscpp.Cyclic 2; Hlscpp.Block 4 ]));
  Alcotest.(check int) "unpartitioned" 1
    (Hlscpp.num_banks (Ty.as_memref (Ty.memref [ 8; 8 ] Ty.F32)))

(* ---- Eq. 1 metric ------------------------------------------------------------------ *)

let test_metric_cyclic_vs_block () =
  (* offsets {0,1}: count 2, span 2 -> P = 1 -> cyclic 2 *)
  Alcotest.(check bool) "adjacent -> cyclic" true
    (Array_partition.partition_for_dim [ A.Expr.dim 0; A.Expr.add (A.Expr.dim 0) (A.Expr.const 1) ]
    = Hlscpp.Cyclic 2);
  (* offsets {0,4}: count 2, span 5 -> P < 1 -> block 2 *)
  Alcotest.(check bool) "strided -> block" true
    (Array_partition.partition_for_dim [ A.Expr.dim 0; A.Expr.add (A.Expr.dim 0) (A.Expr.const 4) ]
    = Hlscpp.Block 2);
  (* single access -> none *)
  Alcotest.(check bool) "single -> none" true
    (Array_partition.partition_for_dim [ A.Expr.dim 0 ] = Hlscpp.None_p)

(* ---- The pass on real kernels -------------------------------------------------------- *)

let optimized_gemm () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let pt = { Dse.lp = true; rvb = false; perm = [ 1; 2; 0 ]; tiles = [ 2; 1; 4 ]; target_ii = 1 } in
  (ctx, m, Dse.apply_point ctx m ~top:"gemm" pt)

let test_pass_partitions_unrolled_arrays () =
  let _, _, m' = optimized_gemm () in
  let f = Ir.find_func_exn m' "gemm" in
  let partitioned =
    List.filter
      (fun (v : Ir.value) ->
        match v.Ir.vty with
        | Ty.Memref mr -> Hlscpp.num_banks mr > 1
        | _ -> false)
      (Func.func_args f)
  in
  Alcotest.(check bool) "some argument arrays partitioned" true (partitioned <> [])

let test_pass_is_semantics_neutral () =
  (* partitioning only changes types/layout, not behaviour *)
  let ctx, m = compile_kernel ~n:6 Models.Polybench.Gemm in
  let m1 =
    Pass.run_pipeline [ Loop_perfectization.pass; Canonicalize.pass; Loop_pipeline.pass () ] ctx m
  in
  let m2 = Array_partition.run ctx m1 in
  check_verifies ~msg:"partitioned verifies" m2;
  check_semantics ~msg:"array partition" Models.Polybench.Gemm ~n:6 m1 m2

let test_interprocedural_propagation () =
  (* an array accessed in a pipelined callee gets its partition reflected on
     the caller side of the call *)
  let src =
    {|
void stagef(float A[8]) {
  for (int i = 0; i < 8; i++) {
    A[i] = A[i] + 1.0;
  }
}
void top(float A[8]) {
  stagef(A);
}
|}
  in
  let ctx, m = compile_c_affine src in
  (* unroll + pipeline the callee loop to force a partition demand *)
  let stagef = Ir.find_func_exn m "stagef" in
  let stagef =
    Ir.with_body stagef
      (List.map
         (fun o ->
           if Affine_d.is_for o then
             match Loop_unroll.unroll_by ctx o ~factor:4 with
             | Some o' -> (
                 match Loop_pipeline.pipeline_band ctx ~depth:0 o' with
                 | Some o'' -> o''
                 | None -> o')
             | None -> o
           else o)
         (Func.func_body stagef))
  in
  let m = Ir.replace_func m stagef in
  let m = Pass.run_pipeline [ Canonicalize.pass ] ctx m in
  let m' = Array_partition.run ctx m in
  let callee_arg = List.hd (Func.func_args (Ir.find_func_exn m' "stagef")) in
  let caller_arg = List.hd (Func.func_args (Ir.find_func_exn m' "top")) in
  let banks (v : Ir.value) =
    match v.Ir.vty with Ty.Memref mr -> Hlscpp.num_banks mr | _ -> 0
  in
  Alcotest.(check bool) "callee partitioned" true (banks callee_arg > 1);
  Alcotest.(check int) "caller type matches callee" (banks callee_arg) (banks caller_arg)

let test_dram_arrays_not_partitioned () =
  let ctx = Ir.Ctx.create () in
  let mem_ty = Ty.memref ~memspace:Ty.Memspace.dram [ 8 ] Ty.F32 in
  let f =
    Func.func ctx ~name:"d" ~inputs:[ mem_ty ] ~outputs:[] (fun args ->
        let mem = List.hd args in
        [
          Affine_d.for_const ctx ~lb:0 ~ub:8 (fun iv ->
              let lop, lv = Affine_d.load_id ctx mem [ iv ] in
              [ lop; Affine_d.store_id ctx lv mem [ iv ]; Affine_d.yield ]);
          Func.return_ [];
        ])
  in
  let f =
    Ir.with_body f
      (List.map
         (fun o ->
           if Affine_d.is_for o then
             Option.value ~default:o (Loop_pipeline.pipeline_band ctx ~depth:0 o)
           else o)
         (Func.func_body f))
  in
  let m = Array_partition.run ctx (Ir.module_ [ f ]) in
  let arg = List.hd (Func.func_args (Ir.find_func_exn m "d")) in
  match arg.Ir.vty with
  | Ty.Memref mr -> Alcotest.(check int) "still one bank" 1 (Hlscpp.num_banks mr)
  | _ -> Alcotest.fail "not a memref"

let test_explicit_factors_override () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let m' =
    Array_partition.run
      ~factors:[ (("gemm", 2), [ Hlscpp.Cyclic 4; Hlscpp.None_p ]) ]
      ctx m
  in
  let arg = List.nth (Func.func_args (Ir.find_func_exn m' "gemm")) 2 in
  match arg.Ir.vty with
  | Ty.Memref mr ->
      Alcotest.(check bool) "pinned factor applied" true
        (Hlscpp.partitions_of_memref mr = [ Hlscpp.Cyclic 4; Hlscpp.None_p ])
  | _ -> Alcotest.fail "not a memref"

let suite =
  ( "partition",
    [
      Alcotest.test_case "Figure 3(b): cyclic map" `Quick test_fig3_cyclic;
      Alcotest.test_case "Figure 3(c): block map" `Quick test_fig3_block;
      Alcotest.test_case "encode/decode cases" `Quick test_partition_roundtrip_cases;
      prop_partition_roundtrip;
      prop_banks_cover_all_cells;
      Alcotest.test_case "bank counting" `Quick test_num_banks;
      Alcotest.test_case "Eq.1: cyclic vs block" `Quick test_metric_cyclic_vs_block;
      Alcotest.test_case "pass partitions unrolled arrays" `Quick test_pass_partitions_unrolled_arrays;
      Alcotest.test_case "pass is semantics-neutral" `Quick test_pass_is_semantics_neutral;
      Alcotest.test_case "inter-procedural propagation" `Quick test_interprocedural_propagation;
      Alcotest.test_case "DRAM arrays untouched" `Quick test_dram_arrays_not_partitioned;
      Alcotest.test_case "explicit part-factors" `Quick test_explicit_factors_override;
    ] )
