(* Tests of the ML-based QoR estimator (the paper's future-work item 3). *)

open Scalehls
open Helpers

let test_ols_recovers_linear_map () =
  (* y = 2*x0 - 3*x1 + 5 recovered exactly from exact data *)
  let mk a b = [| a; b; 0.; 0.; 0.; 0.; 0.; 1.0 |] in
  let xs = [ mk 1. 0.; mk 0. 1.; mk 1. 1.; mk 2. 1.; mk 3. 5.; mk 0. 0. ] in
  let ys = List.map (fun x -> (2. *. x.(0)) -. (3. *. x.(1)) +. 5.) xs in
  let model = Qor_ml.fit xs ys in
  List.iter2
    (fun x y ->
      Alcotest.(check (float 1e-3)) "fits training point" y (Qor_ml.predict_log model x))
    xs ys

let test_features_shape () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  ignore ctx;
  let x = Qor_ml.features m ~top:"gemm" in
  Alcotest.(check int) "feature count" Qor_ml.num_features (Array.length x);
  Alcotest.(check (float 1e-9)) "bias" 1.0 x.(Qor_ml.num_features - 1);
  Alcotest.(check bool) "volume positive" true (x.(0) > 0.)

let test_features_sensitive_to_optimization () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let pt = { Dse.lp = true; rvb = false; perm = [ 1; 2; 0 ]; tiles = [ 2; 1; 4 ]; target_ii = 1 } in
  let m' = Dse.apply_point ctx m ~top:"gemm" pt in
  let x0 = Qor_ml.features m ~top:"gemm" and x1 = Qor_ml.features m' ~top:"gemm" in
  Alcotest.(check bool) "pipelined volume appears" true (x1.(1) > x0.(1));
  Alcotest.(check bool) "FU count grows with unrolling" true (x1.(3) > x0.(3))

let test_trained_model_tracks_tool () =
  let ctx = Mir.Ir.Ctx.create () in
  let designs =
    List.map
      (fun k ->
        ( Pipeline.compile_c ctx (Models.Polybench.source k ~n:16),
          Models.Polybench.name k ))
      [ Models.Polybench.Gemm; Models.Polybench.Bicg; Models.Polybench.Gesummv ]
  in
  let model, samples = Qor_ml.train ~points_per_design:10 ~seed:3 ctx designs in
  (* in-sample fit: average ratio well under 4x (log error < 1.4) *)
  let err = Qor_ml.mean_abs_log_error model samples in
  Alcotest.(check bool) (Fmt.str "training log-error %.2f < 1.4" err) true (err < 1.4);
  (* generalization: an unseen kernel's baseline prediction is within 100x of
     the tool (a crude but honest bar for 30 training points). *)
  let unseen = Pipeline.compile_c ctx (Models.Polybench.source Models.Polybench.Syrk ~n:16) in
  let predicted = Qor_ml.predict model unseen ~top:"syrk" in
  let actual = (Vhls.Synth.synthesize unseen ~top:"syrk").Vhls.Synth.latency in
  let ratio =
    float_of_int (max predicted actual) /. float_of_int (max 1 (min predicted actual))
  in
  Alcotest.(check bool) (Fmt.str "unseen ratio %.1f < 100" ratio) true (ratio < 100.)

let suite =
  ( "qor-ml",
    [
      Alcotest.test_case "OLS recovers a linear map" `Quick test_ols_recovers_linear_map;
      Alcotest.test_case "feature extraction" `Quick test_features_shape;
      Alcotest.test_case "features track optimization" `Quick test_features_sensitive_to_optimization;
      Alcotest.test_case "trained model tracks the tool" `Slow test_trained_model_tracks_tool;
    ] )
