(* Tests of the ML-based QoR estimator (the paper's future-work item 3). *)

open Scalehls
open Helpers

let test_ols_recovers_linear_map () =
  (* y = 2*x0 - 3*x1 + 5 recovered exactly from exact data *)
  let mk a b = [| a; b; 0.; 0.; 0.; 0.; 0.; 1.0 |] in
  let xs = [ mk 1. 0.; mk 0. 1.; mk 1. 1.; mk 2. 1.; mk 3. 5.; mk 0. 0. ] in
  let ys = List.map (fun x -> (2. *. x.(0)) -. (3. *. x.(1)) +. 5.) xs in
  let model = Qor_ml.fit xs ys in
  List.iter2
    (fun x y ->
      Alcotest.(check (float 1e-3)) "fits training point" y (Qor_ml.predict_log model x))
    xs ys

let test_features_shape () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  ignore ctx;
  let x = Qor_ml.features m ~top:"gemm" in
  Alcotest.(check int) "feature count" Qor_ml.num_features (Array.length x);
  Alcotest.(check (float 1e-9)) "bias" 1.0 x.(Qor_ml.num_features - 1);
  Alcotest.(check bool) "volume positive" true (x.(0) > 0.)

let test_features_sensitive_to_optimization () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let pt = { Dse.lp = true; rvb = false; perm = [ 1; 2; 0 ]; tiles = [ 2; 1; 4 ]; target_ii = 1 } in
  let m' = Dse.apply_point ctx m ~top:"gemm" pt in
  let x0 = Qor_ml.features m ~top:"gemm" and x1 = Qor_ml.features m' ~top:"gemm" in
  Alcotest.(check bool) "pipelined volume appears" true (x1.(1) > x0.(1));
  Alcotest.(check bool) "FU count grows with unrolling" true (x1.(3) > x0.(3))

let test_trained_model_tracks_tool () =
  let ctx = Mir.Ir.Ctx.create () in
  let designs =
    List.map
      (fun k ->
        ( Pipeline.compile_c ctx (Models.Polybench.source k ~n:16),
          Models.Polybench.name k ))
      [ Models.Polybench.Gemm; Models.Polybench.Bicg; Models.Polybench.Gesummv ]
  in
  let model, samples = Qor_ml.train ~points_per_design:10 ~seed:3 ctx designs in
  (* in-sample fit: average ratio well under 4x (log error < 1.4) *)
  let err = Qor_ml.mean_abs_log_error model samples in
  Alcotest.(check bool) (Fmt.str "training log-error %.2f < 1.4" err) true (err < 1.4);
  (* generalization: an unseen kernel's baseline prediction is within 100x of
     the tool (a crude but honest bar for 30 training points). *)
  let unseen = Pipeline.compile_c ctx (Models.Polybench.source Models.Polybench.Syrk ~n:16) in
  let predicted = Qor_ml.predict model unseen ~top:"syrk" in
  let actual = (Vhls.Synth.synthesize unseen ~top:"syrk").Vhls.Synth.latency in
  let ratio =
    float_of_int (max predicted actual) /. float_of_int (max 1 (min predicted actual))
  in
  Alcotest.(check bool) (Fmt.str "unseen ratio %.1f < 100" ratio) true (ratio < 100.)

(* ---- Online RLS (the surrogate strategy's model) ------------------------------ *)

let test_online_rls_recovers_linear_map () =
  (* y = 5 + 2*x1 - 3*x2 recovered from exact data via Sherman-Morrison
     updates; with tau = 100 the ridge prior leaves a ~1% shrinkage bias. *)
  let t = Qor_ml.Online.create ~dim:3 () in
  let mk a b = [| 1.; a; b |] in
  let f x = 5. +. (2. *. x.(1)) -. (3. *. x.(2)) in
  let xs =
    [ mk 1. 0.; mk 0. 1.; mk 1. 1.; mk 2. 1.; mk 3. 5.; mk 0. 0.; mk 4. 2.; mk 2. 7. ]
  in
  List.iter (fun x -> Qor_ml.Online.observe t x (f x)) xs;
  Alcotest.(check int) "count" (List.length xs) (Qor_ml.Online.count t);
  List.iter
    (fun x ->
      Alcotest.(check (float 0.2)) "predicts training point" (f x)
        (Qor_ml.Online.predict t x))
    xs

let test_online_leverage_shrinks () =
  (* x^T P x is the predictive-variance scale: it must fall monotonically as
     the same direction is observed, and never go negative. *)
  let t = Qor_ml.Online.create ~dim:2 () in
  let x = [| 1.; 2. |] in
  let l0 = Qor_ml.Online.leverage t x in
  Qor_ml.Online.observe t x 1.;
  let l1 = Qor_ml.Online.leverage t x in
  Qor_ml.Online.observe t x 1.;
  let l2 = Qor_ml.Online.leverage t x in
  Alcotest.(check bool) "leverage positive before data" true (l0 > 0.);
  Alcotest.(check bool) "shrinks after first observation" true (l1 < l0);
  Alcotest.(check bool) "keeps shrinking" true (l2 < l1);
  Alcotest.(check bool) "stays non-negative" true (l2 >= 0.)

let test_point_features () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let s = Dse.build_space ctx m ~top:"gemm" in
  let pt1 =
    { Dse.lp = true; rvb = false; perm = [ 0; 1; 2 ]; tiles = [ 1; 1; 1 ]; target_ii = 1 }
  in
  let x1 = Qor_ml.point_features s pt1 in
  Alcotest.(check int) "dimension" Qor_ml.point_dim (Array.length x1);
  Alcotest.(check (float 1e-9)) "bias" 1.0 x1.(0);
  (* More unrolling = fewer pipeline iterations: the unroll feature grows and
     the iteration feature falls, without ever applying the transform. *)
  let x2 = Qor_ml.point_features s { pt1 with Dse.tiles = [ 2; 2; 2 ] } in
  Alcotest.(check bool) "unroll feature grows" true (x2.(3) > x1.(3));
  Alcotest.(check bool) "iteration feature falls" true (x2.(1) < x1.(1))

let test_strategy_registry () =
  Alcotest.(check bool) "exhaustive resolves" true
    (Option.is_some (Qor_ml.strategy_of_name "exhaustive"));
  Alcotest.(check bool) "surrogate resolves" true
    (Option.is_some (Qor_ml.strategy_of_name "surrogate"));
  Alcotest.(check bool) "unknown rejected" true
    (Option.is_none (Qor_ml.strategy_of_name "simulated-annealing"));
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " listed name resolves") true
        (Option.is_some (Qor_ml.strategy_of_name n)))
    Qor_ml.strategy_names

let suite =
  ( "qor-ml",
    [
      Alcotest.test_case "OLS recovers a linear map" `Quick test_ols_recovers_linear_map;
      Alcotest.test_case "feature extraction" `Quick test_features_shape;
      Alcotest.test_case "features track optimization" `Quick test_features_sensitive_to_optimization;
      Alcotest.test_case "trained model tracks the tool" `Slow test_trained_model_tracks_tool;
      Alcotest.test_case "online RLS recovers a linear map" `Quick
        test_online_rls_recovers_linear_map;
      Alcotest.test_case "online RLS leverage shrinks" `Quick test_online_leverage_shrinks;
      Alcotest.test_case "point features" `Quick test_point_features;
      Alcotest.test_case "strategy registry" `Quick test_strategy_registry;
    ] )
