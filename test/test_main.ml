let () =
  Alcotest.run "scalehls"
    [
      Test_affine.suite;
      Test_ir.suite;
      Test_frontend.suite;
      Test_transforms.suite;
      Test_partition.suite;
      Test_estimator.suite;
      Test_dse.suite;
      Test_graph.suite;
      Test_emit.suite;
      Test_lower.suite;
      Test_qor_ml.suite;
      Test_fuzz.suite;
      Test_obs.suite;
      Test_serve.suite;
    ]
