(* QoR estimator and virtual-synthesizer tests: scheduling formulas (Eqs.
   2-4), resource accounting, and estimator-vs-tool agreement. *)

open Mir
open Dialects
open Scalehls
open Helpers

module P = Vhls.Platform

(* ---- Scheduling building blocks ------------------------------------------------ *)

let test_sched_chain_latency () =
  (* load -> mulf -> addf -> store: 2 + 4 + 5 + 1 = 12 *)
  let ctx = Ir.Ctx.create () in
  let mem = Ir.Ctx.fresh ctx (Ty.memref [ 4 ] Ty.F32) in
  let c0op, c0 = Arith.constant_i ctx 0 in
  let lop, lv = Affine_d.load_id ctx mem [ c0 ] in
  let mop, mv = Arith.mulf ctx lv lv in
  let aop, av = Arith.addf ctx mv mv in
  let sop = Affine_d.store_id ctx av mem [ c0 ] in
  let g = Vhls.Sched.build ~delay_of:(fun o -> Vhls.Fu.op_delay o.Ir.name) [ c0op; lop; mop; aop; sop ] in
  Alcotest.(check int) "critical path" 12 (Vhls.Sched.latency g)

let test_sched_parallel_ops () =
  (* two independent loads schedule in parallel: latency = 2, not 4 *)
  let ctx = Ir.Ctx.create () in
  let mem = Ir.Ctx.fresh ctx (Ty.memref [ 4 ] Ty.F32) in
  let mem2 = Ir.Ctx.fresh ctx (Ty.memref [ 4 ] Ty.F32) in
  let c0op, c0 = Arith.constant_i ctx 0 in
  let l1, _ = Affine_d.load_id ctx mem [ c0 ] in
  let l2, _ = Affine_d.load_id ctx mem2 [ c0 ] in
  let g = Vhls.Sched.build ~delay_of:(fun o -> Vhls.Fu.op_delay o.Ir.name) [ c0op; l1; l2 ] in
  Alcotest.(check int) "parallel loads" 2 (Vhls.Sched.latency g)

let test_sched_memory_ordering () =
  (* store then load of the same memref must serialize *)
  let ctx = Ir.Ctx.create () in
  let mem = Ir.Ctx.fresh ctx (Ty.memref [ 4 ] Ty.F32) in
  let c0op, c0 = Arith.constant_i ctx 0 in
  let fop, fv = Arith.constant_f ctx 1.0 in
  let sop = Affine_d.store_id ctx fv mem [ c0 ] in
  let lop, _ = Affine_d.load_id ctx mem [ c0 ] in
  let g = Vhls.Sched.build ~delay_of:(fun o -> Vhls.Fu.op_delay o.Ir.name) [ c0op; fop; sop; lop ] in
  (* store (1) then load (2) -> 3 *)
  Alcotest.(check int) "serialized" 3 (Vhls.Sched.latency g)

let test_alap_respects_deadline () =
  let ctx = Ir.Ctx.create () in
  let aop, av = Arith.constant_f ctx 1.0 in
  let mop, _ = Arith.mulf ctx av av in
  let g = Vhls.Sched.build ~delay_of:(fun o -> Vhls.Fu.op_delay o.Ir.name) [ aop; mop ] in
  let t = Vhls.Sched.alap g ~deadline:10 in
  (* the mul (delay 4) is scheduled as late as possible: start at 6 *)
  Alcotest.(check int) "alap start" 6 t.(1)

(* ---- Loop latency formulas --------------------------------------------------------- *)

let simple_loop_module ?(pipeline = false) ?(ii = 1) ~trip () =
  let ctx = Ir.Ctx.create () in
  let mem_ty = Ty.memref [ trip ] Ty.F32 in
  let f =
    Func.func ctx ~name:"l" ~inputs:[ mem_ty ] ~outputs:[] (fun args ->
        let mem = List.hd args in
        let loop =
          Affine_d.for_const ctx ~lb:0 ~ub:trip (fun iv ->
              let lop, lv = Affine_d.load_id ctx mem [ iv ] in
              let aop, av = Arith.addf ctx lv lv in
              [ lop; aop; Affine_d.store_id ctx av mem [ iv ]; Affine_d.yield ])
        in
        let loop =
          if pipeline then
            Hlscpp.set_loop_directive loop
              { Hlscpp.default_loop_directive with Hlscpp.loop_pipeline = true; loop_target_ii = ii }
          else loop
        in
        [ loop; Func.return_ [] ])
  in
  Ir.module_ [ f ]

let test_nonpipelined_loop_latency () =
  let m = simple_loop_module ~trip:10 () in
  let r = Vhls.Synth.synthesize m ~top:"l" in
  (* body: load 2 + addf 5 + store 1 = 8; iter overhead 1; 10*(8+1)+1 = 91 *)
  Alcotest.(check int) "latency" 91 r.Vhls.Synth.latency

let test_pipelined_loop_latency () =
  let m = simple_loop_module ~pipeline:true ~trip:10 () in
  let r = Vhls.Synth.synthesize m ~top:"l" in
  (* II = max(1, II_dep): A[i] has no loop-carried dep -> II 1.
     latency = 1*(10-1) + 8 + 2 = 19 *)
  Alcotest.(check int) "latency" 19 r.Vhls.Synth.latency

let test_pipelined_target_ii_respected () =
  let m = simple_loop_module ~pipeline:true ~ii:4 ~trip:10 () in
  let r = Vhls.Synth.synthesize m ~top:"l" in
  Alcotest.(check int) "latency with II=4" (4 * 9 + 8 + 2) r.Vhls.Synth.latency

(* II_dep: accumulation into a scalar cell forces II = recurrence length *)
let test_ii_dep_recurrence () =
  let ctx = Ir.Ctx.create () in
  let mem_ty = Ty.memref [ 16 ] Ty.F32 in
  let acc_ty = Ty.memref [ 1 ] Ty.F32 in
  let f =
    Func.func ctx ~name:"r" ~inputs:[ mem_ty; acc_ty ] ~outputs:[] (fun args ->
        let mem = List.nth args 0 and acc = List.nth args 1 in
        let loop =
          Affine_d.for_const ctx ~lb:0 ~ub:16 (fun iv ->
              let lop, lv = Affine_d.load_id ctx mem [ iv ] in
              let c0op, c0 = Arith.constant_i ctx 0 in
              let aop_l, av_l = Affine_d.load_id ctx acc [ c0 ] in
              let addop, sum = Arith.addf ctx av_l lv in
              [ lop; c0op; aop_l; addop; Affine_d.store_id ctx sum acc [ c0 ]; Affine_d.yield ])
        in
        let loop =
          Hlscpp.set_loop_directive loop
            { Hlscpp.default_loop_directive with Hlscpp.loop_pipeline = true }
        in
        [ loop; Func.return_ [] ])
  in
  let m = Ir.module_ [ f ] in
  let func = Ir.find_func_exn m "r" in
  let loop = List.hd (Analysis.Loop_utils.top_loops func) in
  let ii = Vhls.Synth.ii_dep ~scope:func ~chain:[ loop ] loop in
  (* recurrence: load acc (2) + addf (5) + store (1) = 8 at distance 1 *)
  Alcotest.(check int) "II_dep equals recurrence delay" 8 ii

(* II_res: more same-bank accesses per iteration than ports *)
let test_ii_res_port_limit () =
  let ctx = Ir.Ctx.create () in
  let mem_ty = Ty.memref [ 16 ] Ty.F32 in
  let f =
    Func.func ctx ~name:"p" ~inputs:[ mem_ty; Ty.memref [ 16 ] Ty.F32 ] ~outputs:[]
      (fun args ->
        let a = List.nth args 0 and b = List.nth args 1 in
        let loop =
          Affine_d.for_const ctx ~lb:0 ~ub:4 (fun iv ->
              (* four distinct loads of a per iteration, unpartitioned: 4
                 accesses / 2 ports = II_res 2 *)
              let mk_load off =
                Affine_d.load ctx a
                  ~map:(Affine.Map.of_expr ~num_dims:1 (Affine.Expr.add (Affine.Expr.dim 0) (Affine.Expr.const off)))
                  [ iv ]
              in
              let l0, v0 = mk_load 0 in
              let l1, v1 = mk_load 4 in
              let l2, v2 = mk_load 8 in
              let l3, v3 = mk_load 12 in
              let a1, s1 = Arith.addf ctx v0 v1 in
              let a2, s2 = Arith.addf ctx v2 v3 in
              let a3, s3 = Arith.addf ctx s1 s2 in
              [ l0; l1; l2; l3; a1; a2; a3; Affine_d.store_id ctx s3 b [ iv ]; Affine_d.yield ])
        in
        [ loop; Func.return_ [] ])
  in
  let func = List.hd (Ir.module_funcs (Ir.module_ [ f ])) in
  let loop = List.hd (Analysis.Loop_utils.top_loops func) in
  let basis = [ Affine_d.induction_var loop ] in
  Alcotest.(check int) "II_res = ceil(4/2)" 2 (Vhls.Synth.ii_res ~scope:func ~basis loop)

(* ---- Resource accounting ------------------------------------------------------------- *)

let test_memory_usage () =
  let mr = Ty.as_memref (Ty.memref [ 1024 ] Ty.F32) in
  let u = Vhls.Synth.memref_usage mr in
  (* 32 Kb in one bank -> 2 BRAM-18K blocks *)
  Alcotest.(check int) "bram blocks" 2 u.P.u_bram18;
  Alcotest.(check int) "bits" (1024 * 32) u.P.u_bits;
  let dram = Ty.as_memref (Ty.memref ~memspace:Ty.Memspace.dram [ 1024 ] Ty.F32) in
  Alcotest.(check int) "dram costs nothing" 0 (Vhls.Synth.memref_usage dram).P.u_bram18

let test_partitioned_memory_usage () =
  (* 16 banks of a small array still cost >= 16 blocks *)
  let layout = Hlscpp.partition_layout ~shape:[ 64 ] [ Hlscpp.Cyclic 16 ] in
  let mr = Ty.as_memref (Ty.memref ~layout:(Some layout) [ 64 ] Ty.F32) in
  Alcotest.(check int) "one block per bank" 16 (Vhls.Synth.memref_usage mr).P.u_bram18

let test_pipelined_fu_sharing () =
  (* 8 multiplies at II=4 need 2 units *)
  let ctx = Ir.Ctx.create () in
  let cop, c = Arith.constant_f ctx 1.0 in
  let muls = List.init 8 (fun _ -> fst (Arith.mulf ctx c c)) in
  let u = Vhls.Synth.pipelined_fu_usage (cop :: muls) ~ii:4 in
  Alcotest.(check int) "2 units x 3 dsp" 6 u.P.u_dsp

let test_platform_fits () =
  let u = { P.usage_zero with P.u_dsp = 221 } in
  Alcotest.(check bool) "over DSP budget" false (P.fits P.xc7z020 u);
  Alcotest.(check bool) "within budget" true
    (P.fits P.xc7z020 { P.usage_zero with P.u_dsp = 220 })

(* ---- Estimator vs virtual tool -------------------------------------------------------- *)

let test_estimator_matches_synth_on_kernels () =
  List.iter
    (fun k ->
      let ctx, m = compile_kernel ~n:8 k in
      let top = Models.Polybench.name k in
      let pt_space = Dse.build_space ~max_unroll:8 ~max_ii:4 ctx m ~top in
      let rng = Random.State.make [| 11 |] in
      let rec try_point attempts =
        if attempts = 0 then ()
        else
          let pt = Dse.random_point rng pt_space in
          match Dse.apply_point ctx m ~top pt with
          | m' ->
              let e = Estimator.estimate m' ~top in
              let s = Vhls.Synth.synthesize m' ~top in
              let ratio =
                float_of_int (max e.Estimator.latency s.Vhls.Synth.latency)
                /. float_of_int (max 1 (min e.Estimator.latency s.Vhls.Synth.latency))
              in
              Alcotest.(check bool)
                (Fmt.str "%s estimator within 2x of tool (ratio %.2f)" top ratio)
                true (ratio <= 2.0)
          | exception Dse.Inapplicable -> try_point (attempts - 1)
      in
      try_point 6)
    Models.Polybench.all

let test_estimates_monotone_in_trip () =
  let m10 = simple_loop_module ~trip:10 () in
  let m20 = simple_loop_module ~trip:20 () in
  let l10 = (Estimator.estimate m10 ~top:"l").Estimator.latency in
  let l20 = (Estimator.estimate m20 ~top:"l").Estimator.latency in
  Alcotest.(check bool) "larger trip, larger latency" true (l20 > l10)

let test_dataflow_interval () =
  (* two-stage dataflow: interval = max stage latency, latency = sum *)
  let ctx = Ir.Ctx.create () in
  let mem_ty = Ty.memref [ 8 ] Ty.F32 in
  let stage name trip =
    Func.func ctx ~name ~inputs:[ mem_ty ] ~outputs:[] (fun args ->
        let mem = List.hd args in
        [
          Affine_d.for_const ctx ~lb:0 ~ub:trip (fun iv ->
              let lop, lv = Affine_d.load_id ctx mem [ iv ] in
              [ lop; Affine_d.store_id ctx lv mem [ iv ]; Affine_d.yield ]);
          Func.return_ [];
        ])
  in
  let s1 = stage "s1" 8 and s2 = stage "s2" 4 in
  let top =
    Func.func ctx ~name:"top" ~inputs:[ mem_ty ] ~outputs:[] (fun args ->
        let mem = List.hd args in
        let c1, _ = Func.call ctx ~callee:"s1" ~result_tys:[] [ mem ] in
        let c2, _ = Func.call ctx ~callee:"s2" ~result_tys:[] [ mem ] in
        [ c1; c2; Func.return_ [] ])
  in
  let top = Func_pipeline.set_dataflow top in
  let m = Ir.module_ [ s1; s2; top ] in
  let r = Vhls.Synth.synthesize m ~top:"top" in
  let r1 = Vhls.Synth.synthesize m ~top:"s1" in
  let r2 = Vhls.Synth.synthesize m ~top:"s2" in
  Alcotest.(check int) "interval = max stage" (max r1.Vhls.Synth.latency r2.Vhls.Synth.latency)
    r.Vhls.Synth.interval;
  Alcotest.(check int) "latency = sum + handoff"
    (r1.Vhls.Synth.latency + r2.Vhls.Synth.latency + 2)
    r.Vhls.Synth.latency

let suite =
  ( "estimator",
    [
      Alcotest.test_case "chain critical path" `Quick test_sched_chain_latency;
      Alcotest.test_case "parallel ops overlap" `Quick test_sched_parallel_ops;
      Alcotest.test_case "memory ordering serializes" `Quick test_sched_memory_ordering;
      Alcotest.test_case "ALAP schedules late" `Quick test_alap_respects_deadline;
      Alcotest.test_case "non-pipelined loop formula" `Quick test_nonpipelined_loop_latency;
      Alcotest.test_case "pipelined loop formula" `Quick test_pipelined_loop_latency;
      Alcotest.test_case "target II respected" `Quick test_pipelined_target_ii_respected;
      Alcotest.test_case "II_dep: recurrence (Eq.4)" `Quick test_ii_dep_recurrence;
      Alcotest.test_case "II_res: port limit (Eq.3)" `Quick test_ii_res_port_limit;
      Alcotest.test_case "memory usage" `Quick test_memory_usage;
      Alcotest.test_case "partitioned memory usage" `Quick test_partitioned_memory_usage;
      Alcotest.test_case "pipelined FU sharing" `Quick test_pipelined_fu_sharing;
      Alcotest.test_case "platform budget check" `Quick test_platform_fits;
      Alcotest.test_case "estimator vs tool within 2x" `Slow test_estimator_matches_synth_on_kernels;
      Alcotest.test_case "latency monotone in trip count" `Quick test_estimates_monotone_in_trip;
      Alcotest.test_case "dataflow interval semantics" `Quick test_dataflow_interval;
    ] )
