(* Unit and property tests for the affine substrate: expressions, maps,
   integer sets, and the little solvers. *)

module A = Affine
open Helpers

let expr = Alcotest.testable A.Expr.pp A.Expr.equal

(* ---- Generators ------------------------------------------------------------ *)

let gen_expr ~num_dims =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map A.Expr.dim (int_range 0 (num_dims - 1));
        map A.Expr.const (int_range (-20) 20);
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 A.Expr.add (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun e k -> A.Expr.mul e (A.Expr.const k)) (go (depth - 1)) (int_range (-6) 6));
          (1, map2 (fun e k -> A.Expr.mod_ e (A.Expr.const k)) (go (depth - 1)) (int_range 1 9));
          (1, map2 (fun e k -> A.Expr.fdiv e (A.Expr.const k)) (go (depth - 1)) (int_range 1 9));
          (1, map2 (fun e k -> A.Expr.cdiv e (A.Expr.const k)) (go (depth - 1)) (int_range 1 9));
        ]
  in
  go 3

let arb_expr =
  QCheck.make ~print:A.Expr.to_string (gen_expr ~num_dims:3)

let arb_expr_and_point =
  QCheck.make
    ~print:(fun (e, d) ->
      Fmt.str "%a at [%a]" A.Expr.pp e Fmt.(list ~sep:comma int) (Array.to_list d))
    QCheck.Gen.(
      pair (gen_expr ~num_dims:3) (array_size (return 3) (int_range (-15) 15)))

(* ---- Expression tests -------------------------------------------------------- *)

let test_floor_ceil_mod () =
  Alcotest.(check int) "floor 7/2" 3 (A.Expr.floor_div 7 2);
  Alcotest.(check int) "floor -7/2" (-4) (A.Expr.floor_div (-7) 2);
  Alcotest.(check int) "ceil 7/2" 4 (A.Expr.ceil_div 7 2);
  Alcotest.(check int) "ceil -7/2" (-3) (A.Expr.ceil_div (-7) 2);
  Alcotest.(check int) "mod -7 2" 1 (A.Expr.euclid_mod (-7) 2);
  Alcotest.(check int) "mod 7 2" 1 (A.Expr.euclid_mod 7 2)

let test_smart_constructors () =
  Alcotest.check expr "x+0 = x" (A.Expr.dim 0) (A.Expr.add (A.Expr.dim 0) (A.Expr.const 0));
  Alcotest.check expr "x*1 = x" (A.Expr.dim 0) (A.Expr.mul (A.Expr.dim 0) (A.Expr.const 1));
  Alcotest.check expr "x*0 = 0" (A.Expr.const 0) (A.Expr.mul (A.Expr.dim 0) (A.Expr.const 0));
  Alcotest.check expr "x mod 1 = 0" (A.Expr.const 0) (A.Expr.mod_ (A.Expr.dim 0) (A.Expr.const 1))

let test_simplify_linear () =
  (* (d0 + d0) + 2 - d0 simplifies to d0 + 2 *)
  let e =
    A.Expr.sub (A.Expr.add (A.Expr.add (A.Expr.dim 0) (A.Expr.dim 0)) (A.Expr.const 2)) (A.Expr.dim 0)
  in
  Alcotest.check expr "linear normal form"
    (A.Expr.add (A.Expr.dim 0) (A.Expr.const 2))
    (A.Expr.simplify e)

let test_simplify_divmod () =
  (* (16*d0 + 5) mod 16 = 5 *)
  let e =
    A.Expr.mod_
      (A.Expr.add (A.Expr.mul (A.Expr.const 16) (A.Expr.dim 0)) (A.Expr.const 5))
      (A.Expr.const 16)
  in
  Alcotest.check expr "(16d+5) mod 16" (A.Expr.const 5) (A.Expr.simplify e);
  (* (16*d0 + 5) floordiv 16 = d0 *)
  let e =
    A.Expr.fdiv
      (A.Expr.add (A.Expr.mul (A.Expr.const 16) (A.Expr.dim 0)) (A.Expr.const 5))
      (A.Expr.const 16)
  in
  Alcotest.check expr "(16d+5) floordiv 16" (A.Expr.dim 0) (A.Expr.simplify e)

let test_coefficients () =
  let e =
    A.Expr.add
      (A.Expr.add (A.Expr.mul (A.Expr.dim 0) (A.Expr.const 3)) (A.Expr.mul (A.Expr.dim 2) (A.Expr.const (-2))))
      (A.Expr.const 7)
  in
  match A.Expr.coefficients ~num_dims:3 e with
  | Some (coeffs, cst) ->
      Alcotest.(check (array int)) "coeffs" [| 3; 0; -2 |] coeffs;
      Alcotest.(check int) "const" 7 cst
  | None -> Alcotest.fail "expected linear"

let test_is_pure_affine () =
  Alcotest.(check bool) "d0*d1 not affine" false
    (A.Expr.is_pure_affine (A.Expr.Mul (A.Expr.dim 0, A.Expr.dim 1)));
  Alcotest.(check bool) "d0*3 affine" true
    (A.Expr.is_pure_affine (A.Expr.mul (A.Expr.dim 0) (A.Expr.const 3)));
  Alcotest.(check bool) "d0 mod d1 not affine" false
    (A.Expr.is_pure_affine (A.Expr.Mod (A.Expr.dim 0, A.Expr.dim 1)))

(* ---- Map tests --------------------------------------------------------------- *)

let test_map_identity () =
  let m = A.Map.identity 3 in
  Alcotest.(check bool) "is_identity" true (A.Map.is_identity m);
  Alcotest.(check (list int)) "eval id" [ 4; 5; 6 ]
    (A.Map.eval m ~dims:[| 4; 5; 6 |] ~syms:[||])

let test_map_compose () =
  (* f(x,y) = (x+y, x-y); g(x) = (2x, 3x); f.g(x) = (5x, -x) *)
  let f =
    A.Map.make ~num_dims:2 ~num_syms:0
      [ A.Expr.add (A.Expr.dim 0) (A.Expr.dim 1); A.Expr.sub (A.Expr.dim 0) (A.Expr.dim 1) ]
  in
  let g =
    A.Map.make ~num_dims:1 ~num_syms:0
      [ A.Expr.mul (A.Expr.dim 0) (A.Expr.const 2); A.Expr.mul (A.Expr.dim 0) (A.Expr.const 3) ]
  in
  let fg = A.Map.compose f g in
  Alcotest.(check (list int)) "compose eval" [ 35; -7 ]
    (A.Map.eval fg ~dims:[| 7 |] ~syms:[||])

let test_map_permutation () =
  let p = A.Map.permutation [| 2; 0; 1 |] in
  Alcotest.(check (list int)) "perm" [ 30; 10; 20 ]
    (A.Map.eval p ~dims:[| 10; 20; 30 |] ~syms:[||])

(* ---- Set tests --------------------------------------------------------------- *)

let test_set_contains () =
  (* { d0 >= 2 and d0 - d1 == 0 } *)
  let s =
    A.Set_.make ~num_dims:2 ~num_syms:0
      [
        A.Set_.ge_zero (A.Expr.sub (A.Expr.dim 0) (A.Expr.const 2));
        A.Set_.eq_zero (A.Expr.sub (A.Expr.dim 0) (A.Expr.dim 1));
      ]
  in
  Alcotest.(check bool) "in" true (A.Set_.contains s ~dims:[| 3; 3 |] ~syms:[||]);
  Alcotest.(check bool) "out eq" false (A.Set_.contains s ~dims:[| 3; 4 |] ~syms:[||]);
  Alcotest.(check bool) "out ge" false (A.Set_.contains s ~dims:[| 1; 1 |] ~syms:[||])

let test_set_ranges () =
  (* d0 - 3 >= 0 with d0 in [5, 9]: always true. *)
  let s =
    A.Set_.make ~num_dims:1 ~num_syms:0
      [ A.Set_.ge_zero (A.Expr.sub (A.Expr.dim 0) (A.Expr.const 3)) ]
  in
  (match A.Set_.simplify_with_ranges s ~ranges:[| (5, 9) |] with
  | Some s' -> Alcotest.(check int) "dropped" 0 (List.length (A.Set_.constraints s'))
  | None -> Alcotest.fail "should not be empty");
  (* with d0 in [0, 2]: always false. *)
  match A.Set_.simplify_with_ranges s ~ranges:[| (0, 2) |] with
  | None -> ()
  | Some _ -> Alcotest.fail "should be empty"

(* ---- Solver tests -------------------------------------------------------------- *)

let test_range_of_expr () =
  (* 2*d0 - d1 over d0 in [0,3], d1 in [1,2] -> [-2, 5] *)
  let e = A.Expr.sub (A.Expr.mul (A.Expr.const 2) (A.Expr.dim 0)) (A.Expr.dim 1) in
  match A.Solve.range_of_expr ~num_dims:2 ~ranges:[| (0, 3); (1, 2) |] e with
  | Some (lo, hi) ->
      Alcotest.(check int) "lo" (-2) lo;
      Alcotest.(check int) "hi" 5 hi
  | None -> Alcotest.fail "expected range"

let test_gcd_test () =
  (* 2x + 4y + 1 = 0 has no integer solution *)
  Alcotest.(check bool) "no solution" false (A.Solve.gcd_test [| 2; 4 |] 1);
  Alcotest.(check bool) "solution" true (A.Solve.gcd_test [| 2; 4 |] 6)

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (A.Solve.divisors 12);
  Alcotest.(check (list int)) "powers" [ 1; 2; 4; 8 ] (A.Solve.powers_of_two 8)

(* ---- Properties ----------------------------------------------------------------- *)

let prop_simplify_preserves_eval =
  qtest ~count:500 "simplify preserves evaluation" arb_expr_and_point (fun (e, dims) ->
      try A.Expr.eval ~dims ~syms:[||] e = A.Expr.eval ~dims ~syms:[||] (A.Expr.simplify e)
      with Invalid_argument _ -> QCheck.assume_fail ())

let prop_simplify_idempotent =
  qtest ~count:300 "simplify is idempotent" arb_expr (fun e ->
      A.Expr.equal (A.Expr.simplify e) (A.Expr.simplify (A.Expr.simplify e)))

let prop_floor_ceil_relation =
  qtest ~count:300 "ceil(a/b) = -floor(-a/b)"
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) -> A.Expr.ceil_div a b = -A.Expr.floor_div (-a) b)

let prop_mod_in_range =
  qtest ~count:300 "euclid mod in [0, b)"
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) ->
      let m = A.Expr.euclid_mod a b in
      m >= 0 && m < b)

let prop_div_mod_consistent =
  qtest ~count:300 "a = b*floor(a/b) + (a mod b)"
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) -> a = (b * A.Expr.floor_div a b) + A.Expr.euclid_mod a b)

let prop_compose_is_application =
  (* eval (compose f g) x = eval f (eval g x) on single-result pipelines *)
  qtest ~count:300 "map composition = function composition"
    (QCheck.make
       ~print:(fun ((e1, e2), d) ->
         Fmt.str "%a . %a at %d" A.Expr.pp e1 A.Expr.pp e2 d)
       QCheck.Gen.(pair (pair (gen_expr ~num_dims:1) (gen_expr ~num_dims:1)) (int_range (-10) 10)))
    (fun ((e1, e2), x) ->
      try
        let f = A.Map.of_expr ~num_dims:1 e1 and g = A.Map.of_expr ~num_dims:1 e2 in
        let fg = A.Map.compose f g in
        let inner = A.Map.eval1 g ~dims:[| x |] ~syms:[||] in
        A.Map.eval1 fg ~dims:[| x |] ~syms:[||]
        = A.Map.eval1 f ~dims:[| inner |] ~syms:[||]
      with Invalid_argument _ -> QCheck.assume_fail ())

let prop_range_sound =
  qtest ~count:300 "interval bound contains all sampled values"
    (QCheck.make
       ~print:(fun (e, _) -> A.Expr.to_string e)
       QCheck.Gen.(pair (gen_expr ~num_dims:2) (pair (int_range 0 5) (int_range 0 5))))
    (fun (e, (x, y)) ->
      match A.Solve.range_of_expr ~num_dims:2 ~ranges:[| (0, 5); (0, 5) |] e with
      | None -> true
      | Some (lo, hi) ->
          let v = A.Expr.eval ~dims:[| x; y |] ~syms:[||] e in
          lo <= v && v <= hi)

let suite =
  ( "affine",
    [
      Alcotest.test_case "floor/ceil/mod arithmetic" `Quick test_floor_ceil_mod;
      Alcotest.test_case "smart constructors fold" `Quick test_smart_constructors;
      Alcotest.test_case "linear simplification" `Quick test_simplify_linear;
      Alcotest.test_case "div/mod simplification" `Quick test_simplify_divmod;
      Alcotest.test_case "coefficients extraction" `Quick test_coefficients;
      Alcotest.test_case "pure-affine recognition" `Quick test_is_pure_affine;
      Alcotest.test_case "identity map" `Quick test_map_identity;
      Alcotest.test_case "map composition" `Quick test_map_compose;
      Alcotest.test_case "permutation map" `Quick test_map_permutation;
      Alcotest.test_case "set membership" `Quick test_set_contains;
      Alcotest.test_case "set range simplification" `Quick test_set_ranges;
      Alcotest.test_case "interval of linear expr" `Quick test_range_of_expr;
      Alcotest.test_case "gcd dependence test" `Quick test_gcd_test;
      Alcotest.test_case "divisors and powers" `Quick test_divisors;
      prop_simplify_preserves_eval;
      prop_simplify_idempotent;
      prop_floor_ceil_relation;
      prop_mod_in_range;
      prop_div_mod_consistent;
      prop_compose_is_application;
      prop_range_sound;
    ] )
