(* Tests of the HLS-C front-end: lexer, parser, codegen semantics, and the
   -raise-scf-to-affine pass (including partially-affine programs). *)

open Mir
open Dialects
open Scalehls [@@warning "-33"]
open Helpers

(* ---- Lexer ------------------------------------------------------------------- *)

let test_lexer_tokens () =
  let lx = Frontend.Lexer.tokenize "int x = 42; // comment\nfloat y = 3.5f; /* block */ x += y;" in
  let rec drain acc =
    match Frontend.Lexer.next lx with Frontend.Lexer.Eof -> List.rev acc | t -> drain (t :: acc)
  in
  let toks = drain [] in
  Alcotest.(check int) "token count" 14 (List.length toks);
  Alcotest.(check bool) "float literal" true
    (List.mem (Frontend.Lexer.Float_lit 3.5) toks);
  Alcotest.(check bool) "compound operator" true (List.mem (Frontend.Lexer.Punct "+=") toks)

let test_lexer_skips_preprocessor () =
  let lx = Frontend.Lexer.tokenize "#include <stdio.h>\n#pragma HLS pipeline\nint x;" in
  Alcotest.(check bool) "first token is int" true (Frontend.Lexer.next lx = Frontend.Lexer.Kw "int")

(* ---- Parser ------------------------------------------------------------------- *)

let test_parser_gemm () =
  let prog = Frontend.Parser.parse_program (Models.Polybench.source Models.Polybench.Gemm ~n:8) in
  match prog with
  | [ f ] ->
      Alcotest.(check string) "name" "gemm" f.Frontend.Cast.fname;
      Alcotest.(check int) "params" 5 (List.length f.Frontend.Cast.params)
  | _ -> Alcotest.fail "expected one function"

let test_parser_all_kernels () =
  List.iter
    (fun k ->
      let prog = Frontend.Parser.parse_program (Models.Polybench.source k ~n:8) in
      Alcotest.(check int)
        (Models.Polybench.name k ^ " parses")
        1 (List.length prog))
    (Models.Polybench.all @ Models.Polybench.extras)

let test_parser_for_le () =
  let prog = Frontend.Parser.parse_program "void f(float A[4]) { for (int i = 0; i <= 3; i++) { A[i] = 0.0; } }" in
  match prog with
  | [ { Frontend.Cast.fbody = [ Frontend.Cast.For fl ]; _ } ] ->
      Alcotest.(check string) "cmp" "<=" fl.Frontend.Cast.cmp
  | _ -> Alcotest.fail "unexpected shape"

let test_parser_rejects_while () =
  Alcotest.check_raises "while rejected"
    (Frontend.Parser.Parse_error "while loops are outside the synthesizable subset accepted here")
    (fun () -> ignore (Frontend.Parser.parse_program "void f() { while (1) { } }"))

let test_parser_rejects_pointer_pointer () =
  match Frontend.Parser.parse_program "void f(float **p) { }" with
  | exception Frontend.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "pointer-to-pointer accepted"

let test_parser_pointer_scalar () =
  (* a scalar pointer becomes a 1-element array (paper §6.1) *)
  match Frontend.Parser.parse_program "void f(float *out) { *out; }" with
  | exception Frontend.Parser.Parse_error _ ->
      (* deref syntax unsupported; just check the parameter type *)
      ()
  | _ -> ()

let test_parser_param_type () =
  match Frontend.Parser.parse_program "void f(float *out, int n) { }" with
  | [ { Frontend.Cast.params = [ p1; p2 ]; _ } ] ->
      Alcotest.(check bool) "ptr becomes [1]" true (p1.Frontend.Cast.pty = Frontend.Cast.Carr (Frontend.Cast.Cfloat, [ 1 ]));
      Alcotest.(check bool) "int scalar" true (p2.Frontend.Cast.pty = Frontend.Cast.Cint)
  | _ -> Alcotest.fail "unexpected shape"

(* ---- Codegen semantics ---------------------------------------------------------- *)

let reference_gemm ~n ~alpha ~beta a b c =
  let c = Array.copy c in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      c.((i * n) + j) <- c.((i * n) + j) *. beta;
      for k = 0 to n - 1 do
        c.((i * n) + j) <- c.((i * n) + j) +. (alpha *. a.((i * n) + k) *. b.((k * n) + j))
      done
    done
  done;
  c

let test_codegen_gemm_semantics () =
  let n = 8 in
  let _, m = compile_kernel ~n Models.Polybench.Gemm in
  let a = Interp.buffer_init [ n; n ] Ty.F32 (fill_pattern 1) in
  let b = Interp.buffer_init [ n; n ] Ty.F32 (fill_pattern 2) in
  let c = Interp.buffer_init [ n; n ] Ty.F32 (fill_pattern 3) in
  let want = reference_gemm ~n ~alpha:1.5 ~beta:0.5 a.Interp.data b.Interp.data c.Interp.data in
  ignore
    (Interp.run_func m "gemm"
       [ Interp.VFloat 1.5; Interp.VFloat 0.5; Interp.VBuf c; Interp.VBuf a; Interp.VBuf b ]);
  Alcotest.(check bool) "matches reference" true (arrays_close want c.Interp.data)

let reference_trmm ~n ~alpha a b =
  let b = Array.copy b in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        b.((i * n) + j) <- b.((i * n) + j) +. (a.((k * n) + i) *. b.((k * n) + j))
      done;
      b.((i * n) + j) <- alpha *. b.((i * n) + j)
    done
  done;
  b

let test_codegen_trmm_semantics () =
  let n = 8 in
  let _, m = compile_kernel ~n Models.Polybench.Trmm in
  let a = Interp.buffer_init [ n; n ] Ty.F32 (fill_pattern 4) in
  let b = Interp.buffer_init [ n; n ] Ty.F32 (fill_pattern 5) in
  let want = reference_trmm ~n ~alpha:1.5 a.Interp.data b.Interp.data in
  ignore (Interp.run_func m "trmm" [ Interp.VFloat 1.5; Interp.VBuf a; Interp.VBuf b ]);
  Alcotest.(check bool) "matches reference" true (arrays_close want b.Interp.data)

let test_codegen_scalar_locals () =
  let src =
    {|
void acc(float A[8], float *out) {
  float s = 0.0;
  for (int i = 0; i < 8; i++) {
    s = s + A[i];
  }
  out[0] = s;
}
|}
  in
  let _, m = compile_c_affine src in
  let a = Interp.buffer_init [ 8 ] Ty.F32 (fun i -> float_of_int i) in
  let out = Interp.buffer_init [ 1 ] Ty.F32 (fun _ -> 0.) in
  ignore (Interp.run_func m "acc" [ Interp.VBuf a; Interp.VBuf out ]);
  Alcotest.(check (float 1e-9)) "sum 0..7" 28.0 out.Interp.data.(0)

let test_codegen_math_builtin () =
  let src = "void e(float A[4]) { for (int i = 0; i < 4; i++) { A[i] = expf(A[i]); } }" in
  let _, m = compile_c_affine src in
  let a = Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 1.0) in
  ignore (Interp.run_func m "e" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-4)) "exp(1)" (Float.exp 1.0) a.Interp.data.(0)

let test_codegen_ternary () =
  let src = "void t(float A[4]) { for (int i = 0; i < 4; i++) { A[i] = A[i] > 1.0 ? 1.0 : A[i]; } }" in
  let _, m = compile_c_affine src in
  let a = Interp.buffer_init [ 4 ] Ty.F32 (fun i -> float_of_int i) in
  ignore (Interp.run_func m "t" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "clamped" 1.0 a.Interp.data.(3);
  Alcotest.(check (float 1e-9)) "kept" 0.0 a.Interp.data.(0)

(* ---- Raising ---------------------------------------------------------------------- *)

let test_raise_produces_affine () =
  let _, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  Alcotest.(check bool) "has affine.for" true (Walk.exists Affine_d.is_for m);
  Alcotest.(check bool) "no scf.for left" false (Walk.exists Scf.is_for m);
  Alcotest.(check bool) "no memref.load left" false
    (Walk.exists (fun o -> o.Ir.name = "memref.load") m)

let test_raise_variable_bound () =
  (* j <= i raises into an affine loop with a variable upper bound *)
  let _, m = compile_kernel ~n:8 Models.Polybench.Syrk in
  let var_bound_loops =
    Walk.collect (fun o -> Affine_d.is_for o && not (Affine_d.has_const_bounds o)) m
  in
  Alcotest.(check bool) "has variable-bound affine loop" true (var_bound_loops <> [])

let test_raise_is_partial () =
  (* A loop with a data-dependent bound must stay at the scf level while the
     rest of the function still raises — the paper's partial granularity
     claim (§2.3). *)
  let src =
    {|
void partial(float A[8], float B[8], int n) {
  for (int i = 0; i < 8; i++) {
    A[i] = A[i] + 1.0;
  }
  for (int j = 0; j < n * n; j++) {
    B[0] = B[0] + 1.0;
  }
}
|}
  in
  let _, m = compile_c_affine src in
  Alcotest.(check bool) "affine part raised" true (Walk.exists Affine_d.is_for m);
  Alcotest.(check bool) "non-affine loop stays scf" true (Walk.exists Scf.is_for m)

let test_raise_preserves_semantics () =
  List.iter
    (fun k ->
      let ctx = Ir.Ctx.create () in
      let src = Models.Polybench.source k ~n:6 in
      let scf_m = Frontend.Codegen.compile_source ctx src in
      let aff_m = Pass.run_one Frontend.Raise_affine.pass ctx scf_m in
      check_semantics ~msg:(Models.Polybench.name k ^ " raising") k ~n:6 scf_m aff_m)
    (Models.Polybench.all @ Models.Polybench.extras)

let test_raise_if_to_affine_if () =
  let src =
    {|
void guard(float A[8]) {
  for (int i = 0; i < 8; i++) {
    if (i < 4) {
      A[i] = 0.0;
    }
  }
}
|}
  in
  let _, m = compile_c_affine src in
  Alcotest.(check bool) "scf.if raised" true (Walk.exists Affine_d.is_if m);
  let a = Interp.buffer_init [ 8 ] Ty.F32 (fun _ -> 9.0) in
  ignore (Interp.run_func m "guard" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "guarded zeroed" 0.0 a.Interp.data.(2);
  Alcotest.(check (float 1e-9)) "unguarded kept" 9.0 a.Interp.data.(6)

let test_frontend_verifies () =
  List.iter
    (fun k ->
      let _, m = compile_kernel ~n:8 k in
      check_verifies ~msg:(Models.Polybench.name k) m)
    Models.Polybench.all

let suite =
  ( "frontend",
    [
      Alcotest.test_case "lexer token stream" `Quick test_lexer_tokens;
      Alcotest.test_case "lexer skips preprocessor" `Quick test_lexer_skips_preprocessor;
      Alcotest.test_case "parser: gemm shape" `Quick test_parser_gemm;
      Alcotest.test_case "parser: all kernels" `Quick test_parser_all_kernels;
      Alcotest.test_case "parser: <= loops" `Quick test_parser_for_le;
      Alcotest.test_case "parser: rejects while" `Quick test_parser_rejects_while;
      Alcotest.test_case "parser: rejects T**" `Quick test_parser_rejects_pointer_pointer;
      Alcotest.test_case "parser: scalar pointer params" `Quick test_parser_param_type;
      Alcotest.test_case "codegen: gemm vs reference" `Quick test_codegen_gemm_semantics;
      Alcotest.test_case "codegen: trmm vs reference" `Quick test_codegen_trmm_semantics;
      Alcotest.test_case "codegen: scalar locals" `Quick test_codegen_scalar_locals;
      Alcotest.test_case "codegen: math builtins" `Quick test_codegen_math_builtin;
      Alcotest.test_case "codegen: ternary" `Quick test_codegen_ternary;
      Alcotest.test_case "raise: produces affine ops" `Quick test_raise_produces_affine;
      Alcotest.test_case "raise: variable bounds" `Quick test_raise_variable_bound;
      Alcotest.test_case "raise: partial granularity" `Quick test_raise_is_partial;
      Alcotest.test_case "raise: semantics (6 kernels)" `Quick test_raise_preserves_semantics;
      Alcotest.test_case "raise: scf.if to affine.if" `Quick test_raise_if_to_affine_if;
      Alcotest.test_case "verification of all kernels" `Quick test_frontend_verifies;
    ] )
