(* Tests of the loop/directive/misc transform passes. The central property,
   checked over and over: every transform preserves the program semantics
   under the reference interpreter, and the IR stays verifiable. *)

open Mir
open Dialects
open Scalehls
open Helpers

let pass_preserves ~msg ?(n = 6) kernel pass =
  let ctx, m = compile_kernel ~n kernel in
  let m' = Pass.run_one pass ctx m in
  check_verifies ~msg:(msg ^ " verifies") m';
  check_semantics ~msg kernel ~n m m'

(* ---- Loop perfectization -------------------------------------------------------- *)

let test_perfectization_gemm () =
  let ctx, m = compile_kernel ~n:6 Models.Polybench.Gemm in
  let m' = Pass.run_one Loop_perfectization.pass ctx m in
  let f = Ir.find_func_exn m' "gemm" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  Alcotest.(check int) "band depth" 3 (List.length band);
  Alcotest.(check bool) "perfect" true (Affine_d.band_is_perfect band);
  check_semantics ~msg:"gemm perfectization" Models.Polybench.Gemm ~n:6 m m'

let test_perfectization_semantics () =
  List.iter
    (fun k ->
      pass_preserves ~msg:(Models.Polybench.name k ^ " perfectization") k
        Loop_perfectization.pass)
    Models.Polybench.all

let test_perfectization_guards_stores () =
  (* post-statement (TRMM's B[i][j] *= alpha) becomes a last-iteration
     guard once RVB makes the k loop provably non-empty; LP alone must
     refuse (the k = i+1 .. N loop is empty at i = N-1 and sinking would
     drop the store). *)
  let ctx, m = compile_kernel ~n:6 Models.Polybench.Trmm in
  let lp_only = Pass.run_one Loop_perfectization.pass ctx m in
  let f = Ir.find_func_exn lp_only "trmm" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  Alcotest.(check bool) "LP alone leaves the band imperfect" false
    (Affine_d.band_is_perfect band);
  let m' = Pass.run_pipeline [ Remove_var_bound.pass; Loop_perfectization.pass ] ctx m in
  Alcotest.(check bool) "guard inserted" true (Walk.exists Affine_d.is_if m');
  let f' = Ir.find_func_exn m' "trmm" in
  let band' = List.hd (Analysis.Loop_utils.bands f') in
  Alcotest.(check bool) "rvb+lp perfectizes" true (Affine_d.band_is_perfect band');
  check_semantics ~msg:"trmm rvb+lp" Models.Polybench.Trmm ~n:6 m m' 

let test_perfectization_idempotent () =
  let ctx, m = compile_kernel ~n:6 Models.Polybench.Gemm in
  let m1 = Pass.run_one Loop_perfectization.pass ctx m in
  let m2 = Pass.run_one Loop_perfectization.pass ctx m1 in
  Alcotest.(check bool) "fixpoint" true (m1 = m2)

(* ---- Remove variable bound -------------------------------------------------------- *)

let test_rvb_constantizes () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Syrk in
  let m' = Pass.run_one Remove_var_bound.pass ctx m in
  Alcotest.(check bool) "no variable bounds left" false
    (Walk.exists (fun o -> Affine_d.is_for o && not (Affine_d.has_const_bounds o)) m');
  check_semantics ~msg:"syrk rvb" Models.Polybench.Syrk ~n:8 m m'

let test_rvb_semantics () =
  List.iter
    (fun k ->
      pass_preserves ~msg:(Models.Polybench.name k ^ " rvb") k Remove_var_bound.pass)
    [ Models.Polybench.Syrk; Models.Polybench.Syr2k; Models.Polybench.Trmm ]

let test_rvb_after_lp_semantics () =
  List.iter
    (fun k ->
      let ctx, m = compile_kernel ~n:6 k in
      let m' =
        Pass.run_pipeline
          [ Loop_perfectization.pass; Remove_var_bound.pass; Canonicalize.pass ]
          ctx m
      in
      check_verifies ~msg:"lp+rvb verifies" m';
      check_semantics ~msg:(Models.Polybench.name k ^ " lp+rvb") k ~n:6 m m')
    Models.Polybench.all

(* ---- Loop order optimization -------------------------------------------------------- *)

let test_order_opt_gemm_moves_reduction () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let m1 =
    Pass.run_pipeline [ Loop_perfectization.pass; Canonicalize.pass ] ctx m
  in
  let f = Ir.find_func_exn m1 "gemm" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  match Loop_order_opt.optimize_band ~scope:f band with
  | Some perm ->
      (* k (dim 2) must not stay innermost: it carries the accumulation *)
      Alcotest.(check bool) "k moved off innermost" true (List.nth perm 2 <> 2)
  | None -> Alcotest.fail "expected a permutation for gemm"

let test_order_opt_semantics () =
  List.iter
    (fun k ->
      let ctx, m = compile_kernel ~n:6 k in
      let m' =
        Pass.run_pipeline
          [
            Loop_perfectization.pass; Remove_var_bound.pass; Canonicalize.pass;
            Loop_order_opt.pass;
          ]
          ctx m
      in
      check_verifies ~msg:"order-opt verifies" m';
      check_semantics ~msg:(Models.Polybench.name k ^ " order-opt") k ~n:6 m m')
    Models.Polybench.all

let test_explicit_perm_map_legality () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let m1 = Pass.run_pipeline [ Loop_perfectization.pass; Canonicalize.pass ] ctx m in
  let f = Ir.find_func_exn m1 "gemm" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  (* [1;2;0] (the paper's Table 3 gemm row) is legal *)
  (match Loop_order_opt.optimize_band ~perm_map:[ 1; 2; 0 ] ~scope:f band with
  | Some p -> Alcotest.(check (list int)) "accepted" [ 1; 2; 0 ] p
  | None -> Alcotest.fail "legal perm rejected");
  (* applying it preserves semantics *)
  let root = Loop_order_opt.permute_band band [ 1; 2; 0 ] in
  let f' = Analysis.Loop_utils.replace_band_in f ~old_root:(List.hd band) ~new_root:root in
  let m' = Ir.replace_func m1 f' in
  check_verifies ~msg:"permuted verifies" m';
  check_semantics ~msg:"gemm [1;2;0]" Models.Polybench.Gemm ~n:8 m1 m'

let test_permutation_illegal_rejected () =
  (* a loop-carried flow dependence across i forbids reversing (i, j):
     A[i][j] = A[i-1][j] + 1 — moving j outward is fine, but the dependence
     direction (<, =) stays legal under any permutation; build instead
     A[i][j] = A[i-1][j+1]-style skewed dependence (<, >) where swapping
     makes it (>, <): illegal. *)
  let src =
    {|
void skew(float A[8][8]) {
  for (int i = 1; i < 8; i++) {
    for (int j = 0; j < 7; j++) {
      A[i][j] = A[i - 1][j + 1] + 1.0;
    }
  }
}
|}
  in
  let _, m = compile_c_affine src in
  let f = Ir.find_func_exn m "skew" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  let deps = Loop_order_opt.band_deps ~scope:f band in
  Alcotest.(check bool) "swap illegal" false
    (Loop_order_opt.legal_permutation ~deps band [ 1; 0 ])

(* ---- Tiling ---------------------------------------------------------------------- *)

let test_tile_gemm_semantics () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let m1 = Pass.run_pipeline [ Loop_perfectization.pass; Canonicalize.pass ] ctx m in
  let f = Ir.find_func_exn m1 "gemm" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  match Loop_tile.tile_band ctx band ~sizes:[ 2; 4; 2 ] with
  | Some root ->
      let f' = Analysis.Loop_utils.replace_band_in f ~old_root:(List.hd band) ~new_root:root in
      let m' = Pass.run_one Canonicalize.pass ctx (Ir.replace_func m1 f') in
      check_verifies ~msg:"tiled verifies" m';
      check_semantics ~msg:"gemm tiled 2x4x2" Models.Polybench.Gemm ~n:8 m1 m';
      (* 3 tile loops + 3 point loops *)
      let f'' = Ir.find_func_exn m' "gemm" in
      let band' = Affine_d.band (List.hd (Analysis.Loop_utils.top_loops f'')) in
      Alcotest.(check int) "band grew" 6 (List.length band')
  | None -> Alcotest.fail "tiling failed"

let test_tile_non_dividing_clamped () =
  let ctx, m = compile_kernel ~n:6 Models.Polybench.Gemm in
  let m1 = Pass.run_pipeline [ Loop_perfectization.pass; Canonicalize.pass ] ctx m in
  let f = Ir.find_func_exn m1 "gemm" in
  let band = List.hd (Analysis.Loop_utils.bands f) in
  (* 4 does not divide 6: loop stays untiled; 1-tiling everything = None *)
  (match Loop_tile.tile_band ctx band ~sizes:[ 4; 4; 4 ] with
  | Some _ -> Alcotest.fail "expected clamping to leave nothing to tile"
  | None -> ());
  match Loop_tile.tile_band ctx band ~sizes:[ 3; 1; 2 ] with
  | Some root ->
      let f' = Analysis.Loop_utils.replace_band_in f ~old_root:(List.hd band) ~new_root:root in
      let m' = Ir.replace_func m1 f' in
      check_semantics ~msg:"gemm tile 3x1x2" Models.Polybench.Gemm ~n:6 m1 m'
  | None -> Alcotest.fail "dividing sizes should tile"

(* ---- Unrolling ------------------------------------------------------------------- *)

let test_unroll_full_semantics () =
  let src = "void inc(float A[6]) { for (int i = 0; i < 6; i++) { A[i] = A[i] + 1.0; } }" in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one (Loop_unroll.pass ()) ctx m in
  let m' = Pass.run_one Canonicalize.pass ctx m' in
  Alcotest.(check bool) "loop gone" false (Walk.exists Affine_d.is_for m');
  let a = Interp.buffer_init [ 6 ] Ty.F32 (fun i -> float_of_int i) in
  ignore (Interp.run_func m' "inc" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "A[5]" 6.0 a.Interp.data.(5)

let test_unroll_by_factor () =
  let src = "void inc(float A[8]) { for (int i = 0; i < 8; i++) { A[i] = A[i] + 1.0; } }" in
  let ctx, m = compile_c_affine src in
  let f = Ir.find_func_exn m "inc" in
  let loop = List.hd (Analysis.Loop_utils.top_loops f) in
  (match Loop_unroll.unroll_by ctx loop ~factor:4 with
  | Some loop' ->
      Alcotest.(check int) "widened step" 4 (Affine_d.bounds loop').Affine_d.step;
      let f' = Ir.with_body f (List.map (fun o -> if o == loop then loop' else o) (Func.func_body f)) in
      let m' = Pass.run_one Canonicalize.pass ctx (Ir.replace_func m f') in
      check_verifies ~msg:"partial unroll verifies" m';
      let a = Interp.buffer_init [ 8 ] Ty.F32 (fun _ -> 0.) in
      ignore (Interp.run_func m' "inc" [ Interp.VBuf a ]);
      Alcotest.(check bool) "all incremented" true
        (Array.for_all (fun x -> x = 1.0) a.Interp.data)
  | None -> Alcotest.fail "unroll_by failed");
  (* non-dividing factor refused *)
  match Loop_unroll.unroll_by ctx loop ~factor:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "non-dividing factor accepted"

let test_unroll_nested () =
  let ctx, m = compile_kernel ~n:4 Models.Polybench.Gemm in
  let f = Ir.find_func_exn m "gemm" in
  let root = List.hd (Analysis.Loop_utils.top_loops f) in
  match Loop_unroll.unroll_nested ctx root with
  | Some root' ->
      Alcotest.(check int) "only the target loop remains" 1
        (Walk.count Affine_d.is_for root' )
  | None -> Alcotest.fail "unroll_nested failed"

(* ---- Fusion ---------------------------------------------------------------------- *)

let test_fusion_merges () =
  let src =
    {|
void two(float A[8], float B[8]) {
  for (int i = 0; i < 8; i++) { A[i] = A[i] + 1.0; }
  for (int i = 0; i < 8; i++) { B[i] = B[i] * 2.0; }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Loop_fusion.pass ctx m in
  Alcotest.(check int) "one loop" 1 (Walk.count Affine_d.is_for m');
  check_verifies ~msg:"fused verifies" m';
  let a = Interp.buffer_init [ 8 ] Ty.F32 (fun _ -> 1.) in
  let b = Interp.buffer_init [ 8 ] Ty.F32 (fun _ -> 3.) in
  ignore (Interp.run_func m' "two" [ Interp.VBuf a; Interp.VBuf b ]);
  Alcotest.(check (float 1e-9)) "A" 2.0 a.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "B" 6.0 b.Interp.data.(0)

let test_fusion_blocked_by_dependence () =
  (* second loop reads A at shifted indices: element-wise alignment fails *)
  let src =
    {|
void shift(float A[8], float B[8]) {
  for (int i = 0; i < 7; i++) { A[i] = B[i] + 1.0; }
  for (int i = 0; i < 7; i++) { B[i] = A[i + 1] * 2.0; }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Loop_fusion.pass ctx m in
  Alcotest.(check int) "not fused" 2 (Walk.count Affine_d.is_for m')

(* ---- Pipelining ------------------------------------------------------------------- *)

let test_pipeline_annotates () =
  let ctx, m = compile_kernel ~n:4 Models.Polybench.Gemm in
  let m1 = Pass.run_pipeline [ Loop_perfectization.pass; Canonicalize.pass ] ctx m in
  let m' = Pass.run_one (Loop_pipeline.pass ~target_ii:2 ()) ctx m1 in
  let pipelined = Walk.collect Hlscpp.is_pipelined m' in
  Alcotest.(check int) "one pipelined loop" 1 (List.length pipelined);
  (match Hlscpp.get_loop_directive (List.hd pipelined) with
  | Some d -> Alcotest.(check int) "target ii" 2 d.Hlscpp.loop_target_ii
  | None -> Alcotest.fail "no directive");
  let flattened =
    Walk.collect
      (fun o ->
        match Hlscpp.get_loop_directive o with Some d -> d.Hlscpp.flatten | None -> false)
      m'
  in
  Alcotest.(check int) "outer loops flattened" 2 (List.length flattened);
  check_semantics ~msg:"pipelining is semantics-neutral" Models.Polybench.Gemm ~n:4 m1 m'

let test_func_pipeline () =
  let src = "void tiny(float A[4]) { for (int i = 0; i < 4; i++) { A[i] = A[i] + 1.0; } }" in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one (Func_pipeline.pass ~target_ii:1 ()) ctx m in
  let f = Ir.find_func_exn m' "tiny" in
  (match Hlscpp.get_func_directive f with
  | Some d -> Alcotest.(check bool) "pipelined" true d.Hlscpp.pipeline
  | None -> Alcotest.fail "no func directive");
  Alcotest.(check bool) "loops unrolled away" false (Walk.exists Affine_d.is_for f)

(* ---- Redundancy elimination --------------------------------------------------------- *)

let test_store_forward () =
  let src =
    {|
void fwd(float A[4], float B[4]) {
  for (int i = 0; i < 4; i++) {
    A[i] = B[i] + 1.0;
    B[i] = A[i] * 2.0;
  }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let before = Walk.count (fun o -> o.Ir.name = "affine.load") m in
  let m' = Pass.run_one Store_forward.pass ctx m in
  let after = Walk.count (fun o -> o.Ir.name = "affine.load") m' in
  Alcotest.(check bool) "a load was forwarded" true (after < before);
  check_verifies ~msg:"store-forward verifies" m';
  let a = Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 0.) in
  let b = Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 2.) in
  ignore (Interp.run_func m' "fwd" [ Interp.VBuf a; Interp.VBuf b ]);
  Alcotest.(check (float 1e-9)) "A" 3.0 a.Interp.data.(1);
  Alcotest.(check (float 1e-9)) "B" 6.0 b.Interp.data.(1)

let test_dead_store_elimination () =
  let src =
    {|
void ds(float A[4]) {
  for (int i = 0; i < 4; i++) {
    A[i] = 1.0;
    A[i] = 2.0;
  }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Store_forward.pass ctx m in
  Alcotest.(check int) "one store left" 1
    (Walk.count (fun o -> o.Ir.name = "affine.store") m');
  let a = Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 0.) in
  ignore (Interp.run_func m' "ds" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "last store wins" 2.0 a.Interp.data.(0)

let test_writeonly_memref_dropped () =
  let src =
    {|
void wo(float A[4]) {
  float tmp[4];
  for (int i = 0; i < 4; i++) {
    tmp[i] = A[i];
    A[i] = A[i] + 1.0;
  }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Store_forward.pass ctx m in
  Alcotest.(check int) "tmp alloc dropped" 0
    (Walk.count (fun o -> o.Ir.name = "memref.alloc") m')

let test_simplify_memref_access () =
  let src =
    {|
void dup(float A[4], float B[4]) {
  for (int i = 0; i < 4; i++) {
    B[i] = A[i] + A[i];
  }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Simplify_memref.pass ctx m in
  Alcotest.(check int) "duplicate load folded" 1
    (Walk.count (fun o -> o.Ir.name = "affine.load") m');
  check_verifies ~msg:"simplify-memref verifies" m'

let test_simplify_affine_if () =
  let src =
    {|
void si(float A[8]) {
  for (int i = 0; i < 8; i++) {
    if (i >= 0) { A[i] = 1.0; }
    if (i > 8) { A[i] = 2.0; }
  }
}
|}
  in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_pipeline [ Simplify_affine_if.pass; Canonicalize.pass ] ctx m in
  Alcotest.(check int) "both ifs decided" 0 (Walk.count Affine_d.is_if m');
  let a = Interp.buffer_init [ 8 ] Ty.F32 (fun _ -> 0.) in
  ignore (Interp.run_func m' "si" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "true branch kept" 1.0 a.Interp.data.(0)

let test_canonicalize_folds_constants () =
  let src = "void k(float A[4]) { A[1 + 2] = 5.0; }" in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Canonicalize.pass ctx m in
  (* the addi and its constant operands fold into the access map *)
  Alcotest.(check int) "no addi left" 0 (Walk.count (fun o -> o.Ir.name = "arith.addi") m');
  let a = Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 0.) in
  ignore (Interp.run_func m' "k" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "A[3]" 5.0 a.Interp.data.(3)

let test_canonicalize_removes_trip1 () =
  let src = "void t1(float A[4]) { for (int i = 2; i < 3; i++) { A[i] = 7.0; } }" in
  let ctx, m = compile_c_affine src in
  let m' = Pass.run_one Canonicalize.pass ctx m in
  Alcotest.(check int) "loop inlined" 0 (Walk.count Affine_d.is_for m');
  let a = Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 0.) in
  ignore (Interp.run_func m' "t1" [ Interp.VBuf a ]);
  Alcotest.(check (float 1e-9)) "A[2]" 7.0 a.Interp.data.(2)

let test_cse_dedups () =
  let src = "void c(float A[4], float B[4]) { for (int i = 0; i < 4; i++) { A[i] = (B[i] * 2.0) + (B[i] * 2.0); } }" in
  let ctx, m = compile_c_affine src in
  let m1 = Pass.run_one Simplify_memref.pass ctx m in
  let before = Walk.count (fun o -> o.Ir.name = "arith.mulf") m1 in
  let m' = Pass.run_one Cse.pass ctx m1 in
  let after = Walk.count (fun o -> o.Ir.name = "arith.mulf") m' in
  Alcotest.(check int) "two multiplies before" 2 before;
  Alcotest.(check int) "one multiply after" 1 after;
  check_verifies ~msg:"cse verifies" m'

(* ---- The end-to-end property: random DSE points preserve semantics ---------------- *)

let test_random_points_preserve_semantics () =
  let n = 8 in
  List.iter
    (fun kernel ->
      let ctx, m = compile_kernel ~n kernel in
      let top = Models.Polybench.name kernel in
      let space = Dse.build_space ~max_unroll:16 ~max_ii:4 ctx m ~top in
      let rng = Random.State.make [| 7 |] in
      let tried = ref 0 and applied = ref 0 in
      let base =
        {
          Dse.lp = false;
          rvb = false;
          perm = (match space.Dse.perms with p :: _ -> List.init (List.length p) Fun.id | [] -> []);
          tiles = List.map (fun _ -> 1) space.Dse.tile_options;
          target_ii = 1;
        }
      in
      let points = ref [ base ] in
      while !tried < 16 do
        incr tried;
        let pt = match !points with p :: rest -> points := rest; p | [] -> Dse.random_point rng space in
        match Dse.apply_point ctx m ~top pt with
        | m' ->
            incr applied;
            check_verifies ~msg:(top ^ " point verifies") m';
            check_semantics
              ~msg:(Fmt.str "%s under %a" top Dse.pp_point pt)
              kernel ~n m m'
        | exception Dse.Inapplicable -> ()
      done;
      Alcotest.(check bool) (top ^ ": at least one point applied") true (!applied > 0))
    (Models.Polybench.all @ Models.Polybench.extras)

let suite =
  ( "transforms",
    [
      Alcotest.test_case "perfectization: gemm becomes perfect" `Quick test_perfectization_gemm;
      Alcotest.test_case "perfectization: semantics (6 kernels)" `Slow test_perfectization_semantics;
      Alcotest.test_case "perfectization: guards stores" `Quick test_perfectization_guards_stores;
      Alcotest.test_case "perfectization: idempotent" `Quick test_perfectization_idempotent;
      Alcotest.test_case "rvb: removes variable bounds" `Quick test_rvb_constantizes;
      Alcotest.test_case "rvb: semantics (triangular kernels)" `Quick test_rvb_semantics;
      Alcotest.test_case "lp+rvb: semantics (6 kernels)" `Slow test_rvb_after_lp_semantics;
      Alcotest.test_case "order-opt: gemm reduction outward" `Quick test_order_opt_gemm_moves_reduction;
      Alcotest.test_case "order-opt: semantics (6 kernels)" `Slow test_order_opt_semantics;
      Alcotest.test_case "order-opt: explicit perm-map" `Quick test_explicit_perm_map_legality;
      Alcotest.test_case "order-opt: illegal perm rejected" `Quick test_permutation_illegal_rejected;
      Alcotest.test_case "tile: gemm semantics + structure" `Quick test_tile_gemm_semantics;
      Alcotest.test_case "tile: non-dividing sizes clamp" `Quick test_tile_non_dividing_clamped;
      Alcotest.test_case "unroll: full" `Quick test_unroll_full_semantics;
      Alcotest.test_case "unroll: partial by factor" `Quick test_unroll_by_factor;
      Alcotest.test_case "unroll: nested legalization" `Quick test_unroll_nested;
      Alcotest.test_case "fusion: merges aligned loops" `Quick test_fusion_merges;
      Alcotest.test_case "fusion: dependence blocks it" `Quick test_fusion_blocked_by_dependence;
      Alcotest.test_case "pipelining: directives + flatten" `Quick test_pipeline_annotates;
      Alcotest.test_case "func pipelining" `Quick test_func_pipeline;
      Alcotest.test_case "store-forward" `Quick test_store_forward;
      Alcotest.test_case "dead store elimination" `Quick test_dead_store_elimination;
      Alcotest.test_case "write-only memref dropped" `Quick test_writeonly_memref_dropped;
      Alcotest.test_case "simplify-memref-access" `Quick test_simplify_memref_access;
      Alcotest.test_case "simplify-affine-if" `Quick test_simplify_affine_if;
      Alcotest.test_case "canonicalize: constant folding" `Quick test_canonicalize_folds_constants;
      Alcotest.test_case "canonicalize: trip-1 loops" `Quick test_canonicalize_removes_trip1;
      Alcotest.test_case "cse" `Quick test_cse_dedups;
      Alcotest.test_case "random DSE points preserve semantics" `Slow
        test_random_points_preserve_semantics;
    ] )
