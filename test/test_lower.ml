(* Tests of the Figure 1 lowering chain (affine -> scf -> unstructured CFG)
   and of the prebuilt pipelines / transform-library facade. *)

open Mir
open Dialects
open Scalehls
open Helpers

let test_affine_to_scf_semantics () =
  List.iter
    (fun k ->
      let ctx, m = compile_kernel ~n:6 k in
      let m' = Pass.run_one ~verify:true Lower.affine_to_scf ctx m in
      Alcotest.(check bool)
        (Models.Polybench.name k ^ ": no affine ops left")
        false
        (Walk.exists (fun o -> Affine_d.is_for o || Affine_d.is_if o) m');
      check_semantics ~msg:(Models.Polybench.name k ^ " affine->scf") k ~n:6 m m')
    Models.Polybench.all

let test_affine_to_scf_variable_bounds () =
  (* variable bounds materialize as arith ops feeding scf.for *)
  let ctx, m = compile_kernel ~n:6 Models.Polybench.Syrk in
  let m' = Pass.run_one ~verify:true Lower.affine_to_scf ctx m in
  Alcotest.(check bool) "scf loops present" true (Walk.exists Scf.is_for m');
  check_semantics ~msg:"syrk affine->scf" Models.Polybench.Syrk ~n:6 m m'

let test_scf_to_cf_structure () =
  let src = "void foo(float A[8], float B[8]) { for (int i = 0; i < 8; i++) { B[i] = A[i]; } }" in
  let ctx, m = compile_c_affine src in
  let m1 = Pass.run_one Lower.affine_to_scf ctx m in
  let m2 = Pass.run_one Lower.scf_to_cf ctx m1 in
  (* the paper's Figure 1(iii): header + body + exit blocks with branches *)
  Alcotest.(check bool) "br present" true (Walk.exists (fun o -> o.Ir.name = "cf.br") m2);
  Alcotest.(check bool) "cond_br present" true
    (Walk.exists (fun o -> o.Ir.name = "cf.cond_br") m2);
  Alcotest.(check bool) "no structured loops" false
    (Walk.exists (fun o -> Scf.is_for o || Affine_d.is_for o) m2);
  let f = Ir.find_func_exn m2 "foo" in
  Alcotest.(check int) "four basic blocks" 4 (List.length (List.hd f.Ir.regions))

let test_scf_to_cf_if () =
  let src = "void g(float A[4]) { for (int i = 0; i < 4; i++) { if (i < 2) { A[i] = 1.0; } else { A[i] = 2.0; } } }" in
  let ctx, m = compile_c_affine src in
  let m2 =
    Pass.run_pipeline [ Lower.affine_to_scf; Lower.scf_to_cf ] ctx m
  in
  (* loop (3 extra blocks) + if (3 extra blocks) + entry *)
  let f = Ir.find_func_exn m2 "g" in
  Alcotest.(check int) "seven basic blocks" 7 (List.length (List.hd f.Ir.regions))

let test_pipeline_compile_c () =
  let ctx = Ir.Ctx.create () in
  let m = Pipeline.compile_c ctx (Models.Polybench.source Models.Polybench.Gemm ~n:8) in
  check_verifies ~msg:"compile_c result" m;
  (* cleanup ran: the scf-era dead constants are gone *)
  let consts = Walk.count (fun o -> o.Ir.name = "arith.constant") m in
  Alcotest.(check bool) "dead constants pruned" true (consts <= 2)

let test_transform_lib_registry () =
  (* every Table 2 pass name resolves *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Option.is_some (Transform_lib.find_pass name)))
    [
      "legalize-dataflow"; "split-function"; "affine-loop-perfectization";
      "affine-loop-order-opt"; "remove-variable-bound"; "affine-loop-tile";
      "affine-loop-unroll"; "affine-loop-fusion"; "loop-pipelining";
      "func-pipelining"; "array-partition"; "simplify-affine-if";
      "affine-store-forward"; "simplify-memref-access"; "canonicalize"; "cse";
      "raise-scf-to-affine"; "lower-affine-to-scf"; "lower-scf-to-cf";
      "lower-graph";
    ];
  Alcotest.(check bool) "unknown pass rejected" true
    (Option.is_none (Transform_lib.find_pass "no-such-pass"))

let test_multiple_level_dse_pass () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let p = Transform_lib.multiple_level_dse ~samples:6 ~iterations:6 ~seed:1 () in
  let m' = Pass.run_one p ctx m in
  check_verifies ~msg:"dse pass output" m';
  let before = (Estimator.estimate m ~top:"gemm").Estimator.latency in
  let after = (Estimator.estimate m' ~top:"gemm").Estimator.latency in
  Alcotest.(check bool) "improved" true (after < before)

let test_pass_timing_report () =
  let ctx, m = compile_kernel ~n:8 Models.Polybench.Gemm in
  let _, timings =
    Pass.run_timed [ Canonicalize.pass; Cse.pass ] ctx m
  in
  Alcotest.(check int) "two entries" 2 (List.length timings);
  let report = Fmt.str "%a" Pass.pp_timings timings in
  Alcotest.(check bool) "mentions canonicalize" true (contains ~needle:"canonicalize" report);
  Alcotest.(check bool) "has a total" true (contains ~needle:"Total" report)

let suite =
  ( "lower",
    [
      Alcotest.test_case "affine->scf semantics (6 kernels)" `Slow test_affine_to_scf_semantics;
      Alcotest.test_case "affine->scf: variable bounds" `Quick test_affine_to_scf_variable_bounds;
      Alcotest.test_case "scf->cf: Figure 1 structure" `Quick test_scf_to_cf_structure;
      Alcotest.test_case "scf->cf: conditionals" `Quick test_scf_to_cf_if;
      Alcotest.test_case "compile_c pipeline" `Quick test_pipeline_compile_c;
      Alcotest.test_case "Table 2 pass registry" `Quick test_transform_lib_registry;
      Alcotest.test_case "-multiple-level-dse pass" `Slow test_multiple_level_dse_pass;
      Alcotest.test_case "-pass-timing report" `Quick test_pass_timing_report;
    ] )
