(* Tests of the fuzzing subsystem: generator determinism and well-formedness,
   the shared float comparator, the typed interpreter errors and integer
   division semantics, the corpus format and its regression replay, the
   reducer's shrink invariants, and regression units for the two miscompiles
   the fuzzer found (CSE constant type confusion, tile dependence reorder). *)

open Mir
open Dialects
open Scalehls

(* ---- RNG ------------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Fuzz.Rng.create 7 and b = Fuzz.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Fuzz.Rng.int a 1000) (Fuzz.Rng.int b 1000)
  done;
  let c = Fuzz.Rng.create 8 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Fuzz.Rng.int a 1000 <> Fuzz.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seed, different stream" true !differs;
  Alcotest.(check bool) "derive differs from base" true
    (Fuzz.Rng.derive 42 0 <> Fuzz.Rng.derive 42 1);
  let r = Fuzz.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Fuzz.Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10)
  done

(* ---- Generator -------------------------------------------------------------- *)

let test_gen_determinism () =
  (* Identical seed => byte-identical printed IR and identical pipeline. *)
  List.iter
    (fun seed ->
      let p1 = Fuzz.Gen.program ~seed () and p2 = Fuzz.Gen.program ~seed () in
      Alcotest.(check string) "same printed IR"
        (Fuzz.Gen.to_string p1) (Fuzz.Gen.to_string p2);
      let c1 = Fuzz.Gen.config p1 and c2 = Fuzz.Gen.config p2 in
      Alcotest.(check (list string)) "same pipeline"
        c1.Fuzz.Gen.pipeline c2.Fuzz.Gen.pipeline)
    [ 0; 1; 42; 12345 ];
  let a = Fuzz.Gen.to_string (Fuzz.Gen.program ~seed:1 ()) in
  let b = Fuzz.Gen.to_string (Fuzz.Gen.program ~seed:2 ()) in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_gen_well_formed () =
  (* Every generated module verifies and interprets without error. *)
  for seed = 0 to 39 do
    let p = Fuzz.Gen.program ~seed () in
    (match Verify.verify p.Fuzz.Gen.module_ with
    | Ok () -> ()
    | Error es ->
        Alcotest.failf "seed %d does not verify: %a" seed
          Fmt.(list ~sep:sp Verify.pp_error)
          es);
    match Fuzz.Oracle.run_outputs ~seed p.Fuzz.Gen.module_ ~top:p.Fuzz.Gen.top with
    | outs -> Alcotest.(check bool) "has outputs" true (Array.length outs > 0)
    | exception e -> Alcotest.failf "seed %d does not interpret: %s" seed (Printexc.to_string e)
  done

let test_gen_pipelines_valid () =
  for seed = 0 to 19 do
    let p = Fuzz.Gen.program ~seed () in
    let cfg = Fuzz.Gen.config p in
    Alcotest.(check bool) "pipeline nonempty" true (cfg.Fuzz.Gen.pipeline <> []);
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " registered") true
          (Transform_lib.find_pass name <> None);
        match Pass_probe.info name with
        | Some i ->
            Alcotest.(check bool) (name ^ " differential-testable") true
              (i.Pass_probe.preserves_semantics && i.Pass_probe.interpretable_result)
        | None -> Alcotest.failf "%s not classified" name)
      cfg.Fuzz.Gen.pipeline
  done

let test_differential_clean () =
  (* The acceptance property in miniature: a seed sweep of the full
     differential oracle finds nothing (seed 42's first 40 programs). *)
  for i = 0 to 39 do
    let seed = Fuzz.Rng.derive 42 i in
    let p = Fuzz.Gen.program ~seed () in
    let cfg = Fuzz.Gen.config p in
    match
      Fuzz.Oracle.differential ~seed p.Fuzz.Gen.module_ ~top:p.Fuzz.Gen.top
        ~pipeline:cfg.Fuzz.Gen.pipeline
    with
    | [] -> ()
    | f :: _ -> Alcotest.failf "prog seed %d: %a" seed Fuzz.Oracle.pp_failure f
  done

let test_fuzz_pool () =
  let p = Fuzz.Gen.program ~seed:0 () in
  let pool = Pass_probe.fuzz_pool p.Fuzz.Gen.module_ in
  Alcotest.(check bool) "pool nonempty" true (pool <> []);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " excluded") true (not (List.mem name pool)))
    [ "legalize-dataflow"; "split-function"; "lower-graph"; "lower-scf-to-cf" ]

(* ---- Float comparator -------------------------------------------------------- *)

let test_float_compare () =
  let module Fc = Float_compare in
  Alcotest.(check bool) "equal" true (Fc.close 1.0 1.0);
  Alcotest.(check bool) "within eps" true (Fc.close ~eps:1e-3 1.0 1.0005);
  Alcotest.(check bool) "outside eps" false (Fc.close ~eps:1e-6 1.0 1.1);
  Alcotest.(check bool) "relative, large magnitudes" true
    (Fc.close ~eps:1e-3 1000000.0 1000400.0);
  Alcotest.(check bool) "nan ~ nan" true (Fc.close Float.nan Float.nan);
  Alcotest.(check bool) "inf ~ inf" true (Fc.close Float.infinity Float.infinity);
  Alcotest.(check bool) "inf <> -inf" false (Fc.close Float.infinity Float.neg_infinity);
  Alcotest.(check bool) "nan <> 1.0" false (Fc.close Float.nan 1.0);
  Alcotest.(check bool) "ulp adjacent" true
    (Fc.ulp_close ~ulps:1L 1.0 (Float.succ 1.0));
  Alcotest.(check bool) "ulp far" false (Fc.ulp_close ~ulps:4L 1.0 1.1);
  Alcotest.(check bool) "ulp across zero" true
    (Fc.ulp_close ~ulps:2L (Float.succ 0.0) (Float.pred 0.0));
  (match Fc.compare_arrays [| 1.0; 2.0 |] [| 1.0 |] with
  | Some (Fc.Length { want = 2; got = 1 }) -> ()
  | _ -> Alcotest.fail "expected Length mismatch");
  (match Fc.compare_arrays ~eps:1e-6 [| 1.0; 2.0 |] [| 1.0; 2.5 |] with
  | Some (Fc.Element { index = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected Element mismatch at 1");
  Alcotest.(check bool) "arrays close" true
    (Fc.arrays_close [| 1.0; 2.0 |] [| 1.0; 2.0000001 |])

(* ---- Typed interpreter errors and integer division semantics ----------------- *)

(* A zero-arg function computing [ops] and returning [result]. *)
let scalar_fn build =
  let ctx = Ir.Ctx.create () in
  let f =
    Func.func ctx ~name:"f" ~inputs:[] ~outputs:[ Ty.I32 ] (fun _ ->
        let ops, v = build ctx in
        ops @ [ Func.return_ [ v ] ])
  in
  Ir.module_ [ f ]

let eval_int build =
  match Interp.run_func (scalar_fn build) "f" [] with
  | [ Interp.VInt i ] -> i
  | _ -> Alcotest.fail "expected one integer result"

let int_binop f a b =
  eval_int (fun ctx ->
      let oa, va = Arith.constant_i ctx ~ty:Ty.I32 a in
      let ob, vb = Arith.constant_i ctx ~ty:Ty.I32 b in
      let o, v = f ctx va vb in
      ([ oa; ob; o ], v))

let test_int_division_semantics () =
  (* divi/remi truncate toward zero (remainder keeps the dividend's sign);
     floordivi/ceildivi round toward -inf/+inf — the documented semantics. *)
  Alcotest.(check int) "-7 divi 2" (-3) (int_binop Arith.divi (-7) 2);
  Alcotest.(check int) "7 divi 2" 3 (int_binop Arith.divi 7 2);
  Alcotest.(check int) "-7 remi 2" (-1) (int_binop Arith.remi (-7) 2);
  Alcotest.(check int) "7 remi -2" 1 (int_binop Arith.remi 7 (-2));
  Alcotest.(check int) "-7 floordivi 2" (-4) (int_binop Arith.floordivi (-7) 2);
  Alcotest.(check int) "7 floordivi 2" 3 (int_binop Arith.floordivi 7 2);
  Alcotest.(check int) "-7 ceildivi 2" (-3) (int_binop Arith.ceildivi (-7) 2);
  Alcotest.(check int) "7 ceildivi 2" 4 (int_binop Arith.ceildivi 7 2)

let expect_error kind f =
  match f () with
  | (_ : int) -> Alcotest.fail "expected an Interp_error"
  | exception Interp.Interp_error (k, _) ->
      Alcotest.(check string) "error kind"
        (Interp.error_kind_to_string kind)
        (Interp.error_kind_to_string k)

let test_typed_errors () =
  expect_error Interp.Div_by_zero (fun () -> int_binop Arith.divi 1 0);
  expect_error Interp.Div_by_zero (fun () -> int_binop Arith.remi 1 0);
  expect_error Interp.Div_by_zero (fun () -> int_binop Arith.floordivi 1 0);
  (* Integer op on float operands: the strict as_int projection rejects the
     coercion with a Type_error (previously silently truncated). *)
  expect_error Interp.Type_error (fun () ->
      eval_int (fun ctx ->
          let oa, va = Arith.constant_f ctx 1.5 in
          let ob, vb = Arith.constant_f ctx 2.5 in
          let o, v = Arith.addi ctx va vb in
          ([ oa; ob; o ], v)));
  (* Out-of-bounds access reports Bounds_error. *)
  (match
     let ctx = Ir.Ctx.create () in
     let f =
       Func.func ctx ~name:"f" ~inputs:[ Ty.memref [ 4 ] Ty.F32 ] ~outputs:[]
         (fun args ->
           let mem = List.hd args in
           let oc, c = Arith.constant_i ctx 9 in
           let ol, _ = Affine_d.load ctx mem ~map:(Affine.Map.identity 1) [ c ] in
           [ oc; ol; Func.return_ [] ])
     in
     Interp.run_func (Ir.module_ [ f ]) "f"
       [ Interp.VBuf (Interp.buffer_init [ 4 ] Ty.F32 (fun _ -> 0.)) ]
   with
  | _ -> Alcotest.fail "expected Bounds_error"
  | exception Interp.Interp_error (Interp.Bounds_error, _) -> ())

(* ---- Corpus ------------------------------------------------------------------ *)

(* Under `dune runtest` the cwd is the sandboxed test dir (corpus/ is a dep);
   under `dune exec test/test_main.exe` it is the project root. *)
let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_entries () =
  let corpus = corpus_dir () in
  Sys.readdir corpus |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare
  |> List.map (fun f ->
         match Fuzz.Corpus.load (Filename.concat corpus f) with
         | Ok e -> e
         | Error msg -> Alcotest.failf "%s: %s" f msg)

let test_corpus_roundtrip () =
  let e =
    {
      Fuzz.Corpus.name = "x";
      oracle = Fuzz.Corpus.Interp_diff;
      seed = 7;
      pipeline = [ "cse"; "canonicalize" ];
      note = "a note";
      gen = Fuzz.Corpus.gen_current;
    }
  in
  match Fuzz.Corpus.of_string (Fuzz.Corpus.to_string ~ir:"some\nir" e) with
  | Ok e' ->
      Alcotest.(check string) "name" e.Fuzz.Corpus.name e'.Fuzz.Corpus.name;
      Alcotest.(check int) "seed" e.Fuzz.Corpus.seed e'.Fuzz.Corpus.seed;
      Alcotest.(check (list string)) "pipeline" e.Fuzz.Corpus.pipeline e'.Fuzz.Corpus.pipeline;
      Alcotest.(check string) "note" e.Fuzz.Corpus.note e'.Fuzz.Corpus.note
  | Error msg -> Alcotest.fail msg

let test_corpus_replay () =
  let entries = corpus_entries () in
  Alcotest.(check bool) "corpus nonempty" true (List.length entries >= 4);
  List.iter
    (fun (e : Fuzz.Corpus.entry) ->
      match Fuzz.Corpus.replay e with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s regressed: %a" e.Fuzz.Corpus.name Fuzz.Oracle.pp_failure f)
    entries

(* ---- Reducer ------------------------------------------------------------------ *)

let test_reducer_invariants () =
  (* Shrink a generated program against a synthetic structural oracle (the
     module contains an affine.store). Invariants: the reduced case still
     fails the oracle, still verifies, and is strictly smaller whenever any
     shrink was accepted. *)
  let p = Fuzz.Gen.program ~seed:5 () in
  let cfg = Fuzz.Gen.config p in
  let still_fails (c : Fuzz.Reduce.candidate) =
    Walk.exists (fun o -> o.Ir.name = "affine.store") c.Fuzz.Reduce.module_
  in
  let c0 =
    { Fuzz.Reduce.module_ = p.Fuzz.Gen.module_; pipeline = cfg.Fuzz.Gen.pipeline }
  in
  let o = Fuzz.Reduce.run ~still_fails c0 in
  Alcotest.(check bool) "still fails" true (still_fails o.Fuzz.Reduce.reduced);
  Alcotest.(check bool) "still verifies" true
    (match Verify.verify o.Fuzz.Reduce.reduced.Fuzz.Reduce.module_ with
    | Ok () -> true
    | Error _ -> false);
  Alcotest.(check bool) "strictly smaller" true
    (o.Fuzz.Reduce.final_size < o.Fuzz.Reduce.initial_size);
  Alcotest.(check bool) "steps ran" true (o.Fuzz.Reduce.steps > 0);
  (* The synthetic oracle ignores the pipeline, so reduction drops it all. *)
  Alcotest.(check (list string)) "pipeline emptied" []
    o.Fuzz.Reduce.reduced.Fuzz.Reduce.pipeline;
  (* Local minimum: re-running the reducer shrinks nothing further. *)
  let o2 = Fuzz.Reduce.run ~still_fails o.Fuzz.Reduce.reduced in
  Alcotest.(check int) "fixpoint" o.Fuzz.Reduce.final_size o2.Fuzz.Reduce.final_size

let test_reducer_rejects_passing_input () =
  let p = Fuzz.Gen.program ~seed:5 () in
  let c0 = { Fuzz.Reduce.module_ = p.Fuzz.Gen.module_; pipeline = [] } in
  match Fuzz.Reduce.run ~still_fails:(fun _ -> false) c0 with
  | (_ : Fuzz.Reduce.outcome) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---- Regression units for the two fuzzer-found miscompiles ------------------- *)

let test_cse_keeps_typed_constants () =
  (* `4 : index` and `4.0 : f32` print their value attrs identically; CSE
     must not merge them (found by fuzzing: full unrolling mints index
     constants that collided with float constants). *)
  let ctx = Ir.Ctx.create () in
  let f =
    Func.func ctx ~name:"f" ~inputs:[ Ty.memref [ 8 ] Ty.F32 ] ~outputs:[]
      (fun args ->
        let mem = List.hd args in
        let oi, vi = Arith.constant_i ctx 4 in
        let og, vg = Arith.constant_f ctx 4.0 in
        let ol, vl = Affine_d.load ctx mem ~map:(Affine.Map.identity 1) [ vi ] in
        let oa, va = Arith.addf ctx vl vg in
        let os = Affine_d.store ctx va mem ~map:(Affine.Map.identity 1) [ vi ] in
        [ oi; og; ol; oa; os; Func.return_ [] ])
  in
  let m = Ir.module_ [ f ] in
  let m' = Pass.run_one Cse.pass (Ir.Ctx.of_op m) m in
  let constants = Walk.collect Arith.is_constant m' in
  Alcotest.(check int) "both constants survive" 2 (List.length constants);
  (* And the result still interprets identically. *)
  let args () = [ Interp.VBuf (Interp.buffer_init [ 8 ] Ty.F32 float_of_int) ] in
  let run m =
    let a = args () in
    ignore (Interp.run_func m "f" a);
    Fuzz.Oracle.outputs_of_args a
  in
  Alcotest.(check bool) "semantics preserved" true
    (Float_compare.arrays_close (run m) (run m'))

let test_tile_pass_skips_illegal_band () =
  (* A 2-loop band with a backward dependence (A[i][j] reads A[i-1][j+1],
     distance (1,-1)): not fully permutable, so the standalone tile pass must
     leave it alone (found by fuzzing: tiling reordered dependent
     iterations). *)
  let ctx = Ir.Ctx.create () in
  let mk_func () =
    Func.func ctx ~name:"f" ~inputs:[ Ty.memref [ 8; 8 ] Ty.F32 ] ~outputs:[]
      (fun args ->
        let mem = List.hd args in
        [
          Affine_d.for_const ctx ~lb:1 ~ub:8 (fun i ->
              [
                Affine_d.for_const ctx ~lb:0 ~ub:7 (fun j ->
                    let map_r =
                      Affine.Map.make ~num_dims:2 ~num_syms:0
                        [
                          Affine.Expr.sub (Affine.Expr.dim 0) (Affine.Expr.const 1);
                          Affine.Expr.add (Affine.Expr.dim 1) (Affine.Expr.const 1);
                        ]
                    in
                    let ol, vl = Affine_d.load ctx mem ~map:map_r [ i; j ] in
                    let os =
                      Affine_d.store ctx vl mem ~map:(Affine.Map.identity 2) [ i; j ]
                    in
                    [ ol; os; Affine_d.yield ]);
                Affine_d.yield;
              ]);
          Func.return_ [];
        ])
  in
  let m = Ir.module_ [ mk_func () ] in
  let m' = Pass.run_one (Loop_tile.pass ~tile_size:2) (Ir.Ctx.of_op m) m in
  Alcotest.(check int) "band untouched (still 2 loops)" 2
    (Walk.count (fun o -> o.Ir.name = "affine.for") m');
  (* Sanity for the gate itself: a dependence-free band must still tile, with
     identical semantics. *)
  let ctx2 = Ir.Ctx.create () in
  let legal =
    Func.func ctx2 ~name:"g"
      ~inputs:[ Ty.memref [ 8; 8 ] Ty.F32; Ty.memref [ 8; 8 ] Ty.F32 ]
      ~outputs:[]
      (fun args ->
        let a = List.nth args 0 and b = List.nth args 1 in
        [
          Affine_d.for_const ctx2 ~lb:0 ~ub:8 (fun i ->
              [
                Affine_d.for_const ctx2 ~lb:0 ~ub:8 (fun j ->
                    let ol, vl = Affine_d.load ctx2 a ~map:(Affine.Map.identity 2) [ i; j ] in
                    let on, vn = Arith.negf ctx2 vl in
                    let os = Affine_d.store ctx2 vn b ~map:(Affine.Map.identity 2) [ i; j ] in
                    [ ol; on; os; Affine_d.yield ]);
                Affine_d.yield;
              ]);
          Func.return_ [];
        ])
  in
  let lm = Ir.module_ [ legal ] in
  let lm' = Pass.run_one (Loop_tile.pass ~tile_size:2) (Ir.Ctx.of_op lm) lm in
  Alcotest.(check bool) "legal band still tiled" true
    (Walk.count (fun o -> o.Ir.name = "affine.for") lm'
    > Walk.count (fun o -> o.Ir.name = "affine.for") lm);
  let run m =
    let args =
      [
        Interp.VBuf (Interp.buffer_init [ 8; 8 ] Ty.F32 float_of_int);
        Interp.VBuf (Interp.buffer_init [ 8; 8 ] Ty.F32 (fun _ -> 0.));
      ]
    in
    ignore (Interp.run_func m "g" args);
    Fuzz.Oracle.outputs_of_args args
  in
  Alcotest.(check bool) "tiled semantics preserved" true
    (Float_compare.arrays_close (run lm) (run lm'))

(* ---- QoR oracles -------------------------------------------------------------- *)

let test_qor_oracles_clean () =
  for seed = 0 to 9 do
    let p = Fuzz.Gen.program ~seed () in
    let m = p.Fuzz.Gen.module_ and top = p.Fuzz.Gen.top in
    (match Fuzz.Oracle.qor_pipelining_monotone m ~top with
    | [] -> ()
    | f :: _ -> Alcotest.failf "seed %d: %a" seed Fuzz.Oracle.pp_failure f);
    match Fuzz.Oracle.qor_estimator_agrees m ~top with
    | [] -> ()
    | f :: _ -> Alcotest.failf "seed %d: %a" seed Fuzz.Oracle.pp_failure f
  done

let test_dse_oracle_clean () =
  let p = Fuzz.Gen.program ~seed:3 () in
  match
    Fuzz.Oracle.dse_jobs_deterministic ~seed:3 p.Fuzz.Gen.module_ ~top:p.Fuzz.Gen.top
  with
  | [] -> ()
  | f :: _ -> Alcotest.failf "%a" Fuzz.Oracle.pp_failure f

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "rng: determinism + ranges" `Quick test_rng_determinism;
      Alcotest.test_case "gen: same seed, same stream" `Quick test_gen_determinism;
      Alcotest.test_case "gen: verifies + interprets (40 seeds)" `Quick test_gen_well_formed;
      Alcotest.test_case "gen: pipelines valid" `Quick test_gen_pipelines_valid;
      Alcotest.test_case "differential: clean seed sweep" `Slow test_differential_clean;
      Alcotest.test_case "probe: fuzz pool excludes non-testable" `Quick test_fuzz_pool;
      Alcotest.test_case "float-compare: eps/ulp/non-finite" `Quick test_float_compare;
      Alcotest.test_case "interp: integer division semantics" `Quick test_int_division_semantics;
      Alcotest.test_case "interp: typed errors" `Quick test_typed_errors;
      Alcotest.test_case "corpus: format round-trip" `Quick test_corpus_roundtrip;
      Alcotest.test_case "corpus: replay (fixed findings stay fixed)" `Slow test_corpus_replay;
      Alcotest.test_case "reduce: shrink invariants" `Quick test_reducer_invariants;
      Alcotest.test_case "reduce: rejects passing input" `Quick test_reducer_rejects_passing_input;
      Alcotest.test_case "regression: cse keeps typed constants" `Quick test_cse_keeps_typed_constants;
      Alcotest.test_case "regression: tile skips non-permutable band" `Quick test_tile_pass_skips_illegal_band;
      Alcotest.test_case "qor: metamorphic oracles clean" `Quick test_qor_oracles_clean;
      Alcotest.test_case "dse: -j determinism oracle clean" `Slow test_dse_oracle_clean;
    ] )
