(* Tests for the observability layer (lib/obs) and its integration with the
   pass manager and the parallel pool: clock monotonicity, span recording and
   deterministic cross-domain merging, metrics aggregation under domain
   contention, Chrome trace / metrics JSONL well-formedness, and the
   PassInstrumentation hook ordering. *)

open Mir
open Scalehls
open Helpers

(* Tracing is process-global state; every test that enables it must leave it
   disabled and empty so the rest of the suite observes the default-off
   fast path. *)
let with_tracing f =
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.reset ())
    f

(* ---- Clock ---------------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld then %Ld" !prev t;
    prev := t
  done;
  let (), dt = Obs.Clock.time_s (fun () -> Sys.opaque_identity (ignore (Sys.opaque_identity 1))) in
  Alcotest.(check bool) "time_s non-negative" true (dt >= 0.);
  let t0 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "since_s non-negative" true (Obs.Clock.since_s t0 >= 0.)

(* ---- Spans: single-domain nesting ----------------------------------------- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.Trace.with_span ~cat:"t" "outer" (fun () ->
        Obs.Trace.with_span ~cat:"t" "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "span returns value" 42 r;
  let evs = Obs.Trace.events () in
  let find name = List.find (fun e -> e.Obs.Trace.name = name) evs in
  let outer = find "outer" and inner = find "inner" in
  (* merged order is (ts, tid, seq): the outer span starts first *)
  Alcotest.(check string) "outer sorts first" "outer" (List.hd evs).Obs.Trace.name;
  let ends e = Int64.add e.Obs.Trace.ts e.Obs.Trace.dur in
  Alcotest.(check bool) "inner starts inside outer" true
    (Int64.compare outer.Obs.Trace.ts inner.Obs.Trace.ts <= 0);
  Alcotest.(check bool) "inner ends inside outer" true
    (Int64.compare (ends inner) (ends outer) <= 0)

let test_span_exception () =
  with_tracing @@ fun () ->
  (try Obs.Trace.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  let evs = Obs.Trace.events () in
  let e = List.find (fun e -> e.Obs.Trace.name = "boom") evs in
  Alcotest.(check bool) "error arg recorded" true
    (List.mem_assoc "error" e.Obs.Trace.args)

let test_span_disabled_is_transparent () =
  Obs.Trace.reset ();
  (* disabled: spans neither record nor perturb the result *)
  let r = Obs.Trace.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "value through disabled span" 7 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.events ()))

(* ---- Spans under the pool: deterministic cross-domain merge --------------- *)

let test_span_parpool () =
  with_tracing @@ fun () ->
  let n = 30 in
  let out =
    Parpool.with_pool ~jobs:3 (fun pool ->
        Parpool.map pool
          (fun i ->
            Obs.Trace.with_span ~cat:"t" "work"
              ~args:[ ("i", Obs.Json.Int i) ]
              (fun () -> i * i))
          (List.init n Fun.id))
  in
  Alcotest.(check (list int)) "map results ordered" (List.init n (fun i -> i * i)) out;
  (* flush after with_pool: workers are joined, buffers are safe *)
  let evs =
    List.filter (fun e -> e.Obs.Trace.name = "work") (Obs.Trace.events ())
  in
  Alcotest.(check int) "one span per task" n (List.length evs);
  let indices =
    List.sort compare
      (List.filter_map
         (fun e ->
           match List.assoc_opt "i" e.Obs.Trace.args with
           | Some (Obs.Json.Int i) -> Some i
           | _ -> None)
         evs)
  in
  Alcotest.(check (list int)) "every task index appears once" (List.init n Fun.id) indices;
  (* the merge is a total order: within a tid, seq strictly increases *)
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt last e.Obs.Trace.tid with
      | Some s when s >= e.Obs.Trace.seq ->
          Alcotest.failf "tid %d: seq %d after %d" e.Obs.Trace.tid e.Obs.Trace.seq s
      | _ -> ());
      Hashtbl.replace last e.Obs.Trace.tid e.Obs.Trace.seq)
    evs;
  (* two flushes of the same buffers agree exactly *)
  let again =
    List.filter (fun e -> e.Obs.Trace.name = "work") (Obs.Trace.events ())
  in
  Alcotest.(check bool) "flush is deterministic" true (evs = again)

(* ---- Metrics -------------------------------------------------------------- *)

let test_counter_across_domains () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "test" in
  let c = Obs.Metrics.counter reg "hits" in
  let jobs = 4 and per_task = 250 in
  Parpool.with_pool ~jobs (fun pool ->
      ignore
        (Parpool.map pool
           (fun _ ->
             (* re-resolve by name on the worker: same cell *)
             let c' = Obs.Metrics.counter (Obs.Metrics.registry "test") "hits" in
             for _ = 1 to per_task do
               Obs.Metrics.incr c'
             done)
           (List.init (2 * jobs) Fun.id)));
  Alcotest.(check (float 0.0)) "no lost increments"
    (float_of_int (2 * jobs * per_task))
    (Obs.Metrics.value c);
  Obs.Metrics.reset ()

let test_metrics_types () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "test" in
  let g = Obs.Metrics.gauge reg "level" in
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge holds last value" 2.5 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram reg "lat" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 3.0; 2.0 ];
  (* same (registry, name) resolves to the same instrument *)
  let g' = Obs.Metrics.gauge (Obs.Metrics.registry "test") "level" in
  Alcotest.(check (float 0.0)) "get-or-create returns same cell" 2.5
    (Obs.Metrics.gauge_value g');
  (* a name can't silently change type *)
  (match Obs.Metrics.counter reg "level" with
  | _ -> Alcotest.fail "type clash not detected"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.reset ()

let test_metrics_jsonl () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "test" in
  Obs.Metrics.add (Obs.Metrics.counter reg "n") 3.;
  Obs.Metrics.set (Obs.Metrics.gauge reg "rate") 0.75;
  Obs.Metrics.observe (Obs.Metrics.histogram reg "lat") 0.5;
  let path = Filename.temp_file "obs_metrics" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Obs.Metrics.reset ())
    (fun () ->
      Obs.Metrics.write_jsonl path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one row per metric" 3 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.of_string line with
          | Error msg -> Alcotest.failf "bad JSONL row %S: %s" line msg
          | Ok row ->
              List.iter
                (fun key ->
                  if Obs.Json.member key row = None then
                    Alcotest.failf "row missing %S: %s" key line)
                [ "registry"; "metric"; "type" ])
        lines;
      (* histogram rows carry the summary fields *)
      let hist =
        List.find
          (fun l -> contains ~needle:"\"histogram\"" l)
          lines
      in
      match Obs.Json.of_string hist with
      | Ok row ->
          List.iter
            (fun key ->
              if Obs.Json.member key row = None then
                Alcotest.failf "histogram row missing %S" key)
            [ "count"; "sum"; "min"; "max"; "mean" ]
      | Error msg -> Alcotest.failf "bad histogram row: %s" msg)

(* ---- Chrome trace export -------------------------------------------------- *)

let test_chrome_trace_json () =
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_tracing (fun () ->
          Obs.Trace.with_span ~cat:"t" "a" (fun () ->
              Obs.Trace.with_span ~cat:"t" "b" ignore);
          Obs.Trace.instant ~cat:"t" "mark";
          Obs.Trace.counter ~cat:"t" "gaugeish" [ ("x", 3.0) ];
          Obs.Trace.write_chrome path);
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string raw with
      | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
      | Ok doc -> (
          match Obs.Json.member "traceEvents" doc with
          | Some (Obs.Json.List evs) ->
              Alcotest.(check bool) "has events" true (List.length evs >= 4);
              List.iter
                (fun ev ->
                  List.iter
                    (fun key ->
                      if Obs.Json.member key ev = None then
                        Alcotest.failf "event missing %S: %s" key
                          (Obs.Json.to_string ev))
                    [ "name"; "ph"; "pid"; "tid" ];
                  match Obs.Json.member "ph" ev with
                  | Some (Obs.Json.String "X") ->
                      let num key =
                        match Option.bind (Obs.Json.member key ev) Obs.Json.to_float_opt with
                        | Some v -> v
                        | None -> Alcotest.failf "X event missing numeric %S" key
                      in
                      Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.);
                      Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.)
                  | _ -> ())
                evs;
              let names =
                List.filter_map
                  (fun ev ->
                    match Obs.Json.member "name" ev with
                    | Some (Obs.Json.String s) -> Some s
                    | _ -> None)
                  evs
              in
              List.iter
                (fun expected ->
                  Alcotest.(check bool) (expected ^ " present") true
                    (List.mem expected names))
                [ "thread_name"; "a"; "b"; "mark"; "gaugeish" ]
          | _ -> Alcotest.fail "no traceEvents array"))

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", String "a\"b\\c\nd");
          ("i", Int (-42));
          ("f", Float 1.5);
          ("whole", Float 3.0);
          ("b", Bool true);
          ("n", Null);
          ("l", List [ Int 1; String "x"; Obj [] ]);
        ])
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg
  | Ok v' ->
      (* integral floats intentionally reparse as Int *)
      let expect =
        Obs.Json.(
          Obj
            [
              ("s", String "a\"b\\c\nd");
              ("i", Int (-42));
              ("f", Float 1.5);
              ("whole", Int 3);
              ("b", Bool true);
              ("n", Null);
              ("l", List [ Int 1; String "x"; Obj [] ]);
            ])
      in
      Alcotest.(check bool) "roundtrip" true (v' = expect);
      (match Obs.Json.of_string "{\"a\": }" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed JSON");
      match Obs.Json.of_string "{} trailing" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted trailing garbage"

(* ---- Op statistics -------------------------------------------------------- *)

let test_op_stats () =
  let _ctx, m = compile_kernel (Models.Polybench.of_name "gemm") ~n:4 in
  let s = Op_stats.collect m in
  Alcotest.(check bool) "counts ops" true (s.Op_stats.ops > 0);
  Alcotest.(check bool) "counts blocks" true (s.Op_stats.blocks > 0);
  Alcotest.(check bool) "affine dialect present" true
    (List.mem_assoc "affine" s.Op_stats.by_dialect);
  let total_by_name = List.fold_left (fun a (_, c) -> a + c) 0 s.Op_stats.by_name in
  Alcotest.(check int) "by_name sums to ops" s.Op_stats.ops total_by_name;
  let d = Op_stats.diff ~before:s ~after:s in
  Alcotest.(check int) "self-diff ops" 0 d.Op_stats.ops;
  Alcotest.(check (list (pair string int))) "self-diff by_name empty" [] d.Op_stats.by_name;
  Alcotest.(check string) "dialect of qualified name" "affine" (Op_stats.dialect_of "affine.for");
  Alcotest.(check string) "dialect of bare name" "builtin" (Op_stats.dialect_of "module")

(* ---- Pass manager integration --------------------------------------------- *)

let ident name = Pass.make name (fun _ m -> m)

let test_instrumentation_ordering () =
  let _ctx, m = compile_c_affine "void f(float a[4]) { a[0] = 1.0f; }" in
  let log = ref [] in
  let note tag name _m = log := (tag ^ ":" ^ name) :: !log in
  Pass.clear_instrumentations ();
  Pass.register_instrumentation
    (Pass.instrumentation ~before_pipeline:(note "bP") ~after_pipeline:(note "aP")
       ~before_pass:(note "bp") ~after_pass:(note "ap") ());
  Fun.protect ~finally:Pass.clear_instrumentations @@ fun () ->
  let ctx = Ir.Ctx.create () in
  ignore (Pass.run_pipeline ~name:"pipe" [ ident "one"; ident "two" ] ctx m);
  Alcotest.(check (list string)) "hook ordering"
    [ "bP:pipe"; "bp:one"; "ap:one"; "bp:two"; "ap:two"; "aP:pipe" ]
    (List.rev !log)

let test_pass_spans () =
  let _ctx, m = compile_c_affine "void f(float a[4]) { for (int i = 0; i < 4; i++) a[i] = 0.0f; }" in
  let ctx = Ir.Ctx.create () in
  with_tracing @@ fun () ->
  ignore (Pass.run_pipeline ~name:"pipe" [ ident "one"; ident "two" ] ctx m);
  let evs = Obs.Trace.events () in
  let names = List.map (fun e -> e.Obs.Trace.name) evs in
  Alcotest.(check bool) "pipeline span" true (List.mem "pipe" names);
  Alcotest.(check bool) "pass spans" true
    (List.mem "pass:one" names && List.mem "pass:two" names);
  let span = List.find (fun e -> e.Obs.Trace.name = "pass:one") evs in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " arg present") true
        (List.mem_assoc key span.Obs.Trace.args))
    [ "pass_ms"; "verify_ms"; "ops"; "delta_ops"; "by_dialect" ];
  (* identity pass: the recorded delta is zero *)
  match List.assoc "delta_ops" span.Obs.Trace.args with
  | Obs.Json.Int 0 -> ()
  | j -> Alcotest.failf "identity pass delta_ops = %s" (Obs.Json.to_string j)

let test_pp_timings_aggregation () =
  let ts =
    [
      { Pass.label = "canonicalize"; seconds = 0.5 };
      { Pass.label = "loop-unroll"; seconds = 0.25 };
      { Pass.label = "canonicalize"; seconds = 0.25 };
    ]
  in
  let out = Fmt.str "%a" Pass.pp_timings ts in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report contains %S" needle) true
        (contains ~needle out))
    [
      "Pass execution timing report";
      "Total Execution Time: 1.0000 seconds";
      "canonicalize (2 runs)";
      "( 75.0%)";
      "( 25.0%)";
      "(100.0%)  Total";
    ];
  (* repeated labels fold into one line *)
  let occurrences needle hay =
    let rec go i acc =
      if i + String.length needle > String.length hay then acc
      else if String.sub hay i (String.length needle) = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one aggregated line" 1 (occurrences "canonicalize" out)

(* ---- Traced DSE smoke ----------------------------------------------------- *)

let test_traced_dse () =
  let ctx = Ir.Ctx.create () in
  let kernel = Models.Polybench.of_name "gemm" in
  let m = Pipeline.compile_c ctx (Models.Polybench.source kernel ~n:4) in
  Obs.Metrics.reset ();
  let r =
    with_tracing (fun () ->
        Dse.run ~samples:4 ~iterations:4 ~seed:1 ctx m ~top:"gemm"
          ~platform:Vhls.Platform.xc7z020)
  in
  Alcotest.(check bool) "explored points" true (r.Dse.explored > 0)

let test_traced_dse_events () =
  let ctx = Ir.Ctx.create () in
  let kernel = Models.Polybench.of_name "gemm" in
  let m = Pipeline.compile_c ctx (Models.Polybench.source kernel ~n:4) in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
    (fun () ->
      let r =
        Dse.run ~samples:4 ~iterations:4 ~seed:1 ctx m ~top:"gemm"
          ~platform:Vhls.Platform.xc7z020
      in
      Obs.Trace.disable ();
      let evs = Obs.Trace.events () in
      let count name = List.length (List.filter (fun e -> e.Obs.Trace.name = name) evs) in
      Alcotest.(check int) "one evaluate span per explored point" r.Dse.explored
        (count "dse.evaluate");
      Alcotest.(check bool) "frontier counter samples" true (count "dse.frontier" > 0);
      Alcotest.(check bool) "pass sub-spans recorded" true
        (List.exists
           (fun e -> contains ~needle:"pass:" e.Obs.Trace.name)
           evs);
      (* the always-on metrics side recorded the same exploration *)
      let explored =
        Obs.Metrics.value (Obs.Metrics.counter (Obs.Metrics.registry "dse") "points.explored")
      in
      Alcotest.(check (float 0.0)) "points.explored counter" (float_of_int r.Dse.explored) explored)

let suite =
  ( "obs",
    [
      Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span closes on exception" `Quick test_span_exception;
      Alcotest.test_case "disabled spans are transparent" `Quick test_span_disabled_is_transparent;
      Alcotest.test_case "span merge across pool domains" `Quick test_span_parpool;
      Alcotest.test_case "counter aggregation across domains" `Quick test_counter_across_domains;
      Alcotest.test_case "metric types and get-or-create" `Quick test_metrics_types;
      Alcotest.test_case "metrics JSONL export" `Quick test_metrics_jsonl;
      Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_trace_json;
      Alcotest.test_case "json roundtrip and errors" `Quick test_json_roundtrip;
      Alcotest.test_case "op stats collect and diff" `Quick test_op_stats;
      Alcotest.test_case "instrumentation hook ordering" `Quick test_instrumentation_ordering;
      Alcotest.test_case "pass spans with IR deltas" `Quick test_pass_spans;
      Alcotest.test_case "pass timing report aggregation" `Quick test_pp_timings_aggregation;
      Alcotest.test_case "traced DSE runs" `Quick test_traced_dse;
      Alcotest.test_case "traced DSE records evaluate spans" `Quick test_traced_dse_events;
    ] )
