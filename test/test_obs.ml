(* Tests for the observability layer (lib/obs) and its integration with the
   pass manager and the parallel pool: clock monotonicity, span recording and
   deterministic cross-domain merging, metrics aggregation under domain
   contention, Chrome trace / metrics JSONL well-formedness, and the
   PassInstrumentation hook ordering. *)

open Mir
open Scalehls
open Helpers

(* Tracing is process-global state; every test that enables it must leave it
   disabled and empty so the rest of the suite observes the default-off
   fast path. *)
let with_tracing f =
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.reset ())
    f

(* ---- Clock ---------------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld then %Ld" !prev t;
    prev := t
  done;
  let (), dt = Obs.Clock.time_s (fun () -> Sys.opaque_identity (ignore (Sys.opaque_identity 1))) in
  Alcotest.(check bool) "time_s non-negative" true (dt >= 0.);
  let t0 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "since_s non-negative" true (Obs.Clock.since_s t0 >= 0.)

(* ---- Spans: single-domain nesting ----------------------------------------- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.Trace.with_span ~cat:"t" "outer" (fun () ->
        Obs.Trace.with_span ~cat:"t" "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "span returns value" 42 r;
  let evs = Obs.Trace.events () in
  let find name = List.find (fun e -> e.Obs.Trace.name = name) evs in
  let outer = find "outer" and inner = find "inner" in
  (* merged order is (ts, tid, seq): the outer span starts first *)
  Alcotest.(check string) "outer sorts first" "outer" (List.hd evs).Obs.Trace.name;
  let ends e = Int64.add e.Obs.Trace.ts e.Obs.Trace.dur in
  Alcotest.(check bool) "inner starts inside outer" true
    (Int64.compare outer.Obs.Trace.ts inner.Obs.Trace.ts <= 0);
  Alcotest.(check bool) "inner ends inside outer" true
    (Int64.compare (ends inner) (ends outer) <= 0)

let test_span_exception () =
  with_tracing @@ fun () ->
  (try Obs.Trace.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  let evs = Obs.Trace.events () in
  let e = List.find (fun e -> e.Obs.Trace.name = "boom") evs in
  Alcotest.(check bool) "error arg recorded" true
    (List.mem_assoc "error" e.Obs.Trace.args)

let test_span_disabled_is_transparent () =
  Obs.Trace.reset ();
  (* disabled: spans neither record nor perturb the result *)
  let r = Obs.Trace.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "value through disabled span" 7 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.events ()))

(* ---- Spans under the pool: deterministic cross-domain merge --------------- *)

let test_span_parpool () =
  with_tracing @@ fun () ->
  let n = 30 in
  let out =
    Parpool.with_pool ~jobs:3 (fun pool ->
        Parpool.map pool
          (fun i ->
            Obs.Trace.with_span ~cat:"t" "work"
              ~args:[ ("i", Obs.Json.Int i) ]
              (fun () -> i * i))
          (List.init n Fun.id))
  in
  Alcotest.(check (list int)) "map results ordered" (List.init n (fun i -> i * i)) out;
  (* flush after with_pool: workers are joined, buffers are safe *)
  let evs =
    List.filter (fun e -> e.Obs.Trace.name = "work") (Obs.Trace.events ())
  in
  Alcotest.(check int) "one span per task" n (List.length evs);
  let indices =
    List.sort compare
      (List.filter_map
         (fun e ->
           match List.assoc_opt "i" e.Obs.Trace.args with
           | Some (Obs.Json.Int i) -> Some i
           | _ -> None)
         evs)
  in
  Alcotest.(check (list int)) "every task index appears once" (List.init n Fun.id) indices;
  (* the merge is a total order: within a tid, seq strictly increases *)
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt last e.Obs.Trace.tid with
      | Some s when s >= e.Obs.Trace.seq ->
          Alcotest.failf "tid %d: seq %d after %d" e.Obs.Trace.tid e.Obs.Trace.seq s
      | _ -> ());
      Hashtbl.replace last e.Obs.Trace.tid e.Obs.Trace.seq)
    evs;
  (* two flushes of the same buffers agree exactly *)
  let again =
    List.filter (fun e -> e.Obs.Trace.name = "work") (Obs.Trace.events ())
  in
  Alcotest.(check bool) "flush is deterministic" true (evs = again)

(* ---- Metrics -------------------------------------------------------------- *)

let test_counter_across_domains () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "test" in
  let c = Obs.Metrics.counter reg "hits" in
  let jobs = 4 and per_task = 250 in
  Parpool.with_pool ~jobs (fun pool ->
      ignore
        (Parpool.map pool
           (fun _ ->
             (* re-resolve by name on the worker: same cell *)
             let c' = Obs.Metrics.counter (Obs.Metrics.registry "test") "hits" in
             for _ = 1 to per_task do
               Obs.Metrics.incr c'
             done)
           (List.init (2 * jobs) Fun.id)));
  Alcotest.(check (float 0.0)) "no lost increments"
    (float_of_int (2 * jobs * per_task))
    (Obs.Metrics.value c);
  Obs.Metrics.reset ()

let test_metrics_types () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "test" in
  let g = Obs.Metrics.gauge reg "level" in
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge holds last value" 2.5 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram reg "lat" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 3.0; 2.0 ];
  (* same (registry, name) resolves to the same instrument *)
  let g' = Obs.Metrics.gauge (Obs.Metrics.registry "test") "level" in
  Alcotest.(check (float 0.0)) "get-or-create returns same cell" 2.5
    (Obs.Metrics.gauge_value g');
  (* a name can't silently change type *)
  (match Obs.Metrics.counter reg "level" with
  | _ -> Alcotest.fail "type clash not detected"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.reset ()

let test_metrics_jsonl () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "test" in
  Obs.Metrics.add (Obs.Metrics.counter reg "n") 3.;
  Obs.Metrics.set (Obs.Metrics.gauge reg "rate") 0.75;
  Obs.Metrics.observe (Obs.Metrics.histogram reg "lat") 0.5;
  let path = Filename.temp_file "obs_metrics" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Obs.Metrics.reset ())
    (fun () ->
      Obs.Metrics.write_jsonl path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      (* exports also carry collector-maintained series (e.g. the trace
         drop counter) — count only the rows of this test's registry *)
      let lines =
        List.filter
          (fun l -> contains ~needle:"\"registry\":\"test\"" l)
          (List.rev !lines)
      in
      Alcotest.(check int) "one row per metric" 3 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.of_string line with
          | Error msg -> Alcotest.failf "bad JSONL row %S: %s" line msg
          | Ok row ->
              List.iter
                (fun key ->
                  if Obs.Json.member key row = None then
                    Alcotest.failf "row missing %S: %s" key line)
                [ "registry"; "metric"; "type" ])
        lines;
      (* histogram rows carry the summary fields *)
      let hist =
        List.find
          (fun l -> contains ~needle:"\"histogram\"" l)
          lines
      in
      match Obs.Json.of_string hist with
      | Ok row ->
          List.iter
            (fun key ->
              if Obs.Json.member key row = None then
                Alcotest.failf "histogram row missing %S" key)
            [ "count"; "sum"; "min"; "max"; "mean" ]
      | Error msg -> Alcotest.failf "bad histogram row: %s" msg)

(* ---- Chrome trace export -------------------------------------------------- *)

let test_chrome_trace_json () =
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_tracing (fun () ->
          Obs.Trace.with_span ~cat:"t" "a" (fun () ->
              Obs.Trace.with_span ~cat:"t" "b" ignore);
          Obs.Trace.instant ~cat:"t" "mark";
          Obs.Trace.counter ~cat:"t" "gaugeish" [ ("x", 3.0) ];
          Obs.Trace.write_chrome path);
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string raw with
      | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
      | Ok doc -> (
          match Obs.Json.member "traceEvents" doc with
          | Some (Obs.Json.List evs) ->
              Alcotest.(check bool) "has events" true (List.length evs >= 4);
              List.iter
                (fun ev ->
                  List.iter
                    (fun key ->
                      if Obs.Json.member key ev = None then
                        Alcotest.failf "event missing %S: %s" key
                          (Obs.Json.to_string ev))
                    [ "name"; "ph"; "pid"; "tid" ];
                  match Obs.Json.member "ph" ev with
                  | Some (Obs.Json.String "X") ->
                      let num key =
                        match Option.bind (Obs.Json.member key ev) Obs.Json.to_float_opt with
                        | Some v -> v
                        | None -> Alcotest.failf "X event missing numeric %S" key
                      in
                      Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.);
                      Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.)
                  | _ -> ())
                evs;
              let names =
                List.filter_map
                  (fun ev ->
                    match Obs.Json.member "name" ev with
                    | Some (Obs.Json.String s) -> Some s
                    | _ -> None)
                  evs
              in
              List.iter
                (fun expected ->
                  Alcotest.(check bool) (expected ^ " present") true
                    (List.mem expected names))
                [ "thread_name"; "a"; "b"; "mark"; "gaugeish" ]
          | _ -> Alcotest.fail "no traceEvents array"))

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", String "a\"b\\c\nd");
          ("i", Int (-42));
          ("f", Float 1.5);
          ("whole", Float 3.0);
          ("b", Bool true);
          ("n", Null);
          ("l", List [ Int 1; String "x"; Obj [] ]);
        ])
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg
  | Ok v' ->
      (* integral floats intentionally reparse as Int *)
      let expect =
        Obs.Json.(
          Obj
            [
              ("s", String "a\"b\\c\nd");
              ("i", Int (-42));
              ("f", Float 1.5);
              ("whole", Int 3);
              ("b", Bool true);
              ("n", Null);
              ("l", List [ Int 1; String "x"; Obj [] ]);
            ])
      in
      Alcotest.(check bool) "roundtrip" true (v' = expect);
      (match Obs.Json.of_string "{\"a\": }" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed JSON");
      match Obs.Json.of_string "{} trailing" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted trailing garbage"

(* ---- Op statistics -------------------------------------------------------- *)

let test_op_stats () =
  let _ctx, m = compile_kernel (Models.Polybench.of_name "gemm") ~n:4 in
  let s = Op_stats.collect m in
  Alcotest.(check bool) "counts ops" true (s.Op_stats.ops > 0);
  Alcotest.(check bool) "counts blocks" true (s.Op_stats.blocks > 0);
  Alcotest.(check bool) "affine dialect present" true
    (List.mem_assoc "affine" s.Op_stats.by_dialect);
  let total_by_name = List.fold_left (fun a (_, c) -> a + c) 0 s.Op_stats.by_name in
  Alcotest.(check int) "by_name sums to ops" s.Op_stats.ops total_by_name;
  let d = Op_stats.diff ~before:s ~after:s in
  Alcotest.(check int) "self-diff ops" 0 d.Op_stats.ops;
  Alcotest.(check (list (pair string int))) "self-diff by_name empty" [] d.Op_stats.by_name;
  Alcotest.(check string) "dialect of qualified name" "affine" (Op_stats.dialect_of "affine.for");
  Alcotest.(check string) "dialect of bare name" "builtin" (Op_stats.dialect_of "module")

(* ---- Pass manager integration --------------------------------------------- *)

let ident name = Pass.make name (fun _ m -> m)

let test_instrumentation_ordering () =
  let _ctx, m = compile_c_affine "void f(float a[4]) { a[0] = 1.0f; }" in
  let log = ref [] in
  let note tag name _m = log := (tag ^ ":" ^ name) :: !log in
  Pass.clear_instrumentations ();
  Pass.register_instrumentation
    (Pass.instrumentation ~before_pipeline:(note "bP") ~after_pipeline:(note "aP")
       ~before_pass:(note "bp") ~after_pass:(note "ap") ());
  Fun.protect ~finally:Pass.clear_instrumentations @@ fun () ->
  let ctx = Ir.Ctx.create () in
  ignore (Pass.run_pipeline ~name:"pipe" [ ident "one"; ident "two" ] ctx m);
  Alcotest.(check (list string)) "hook ordering"
    [ "bP:pipe"; "bp:one"; "ap:one"; "bp:two"; "ap:two"; "aP:pipe" ]
    (List.rev !log)

let test_pass_spans () =
  let _ctx, m = compile_c_affine "void f(float a[4]) { for (int i = 0; i < 4; i++) a[i] = 0.0f; }" in
  let ctx = Ir.Ctx.create () in
  with_tracing @@ fun () ->
  ignore (Pass.run_pipeline ~name:"pipe" [ ident "one"; ident "two" ] ctx m);
  let evs = Obs.Trace.events () in
  let names = List.map (fun e -> e.Obs.Trace.name) evs in
  Alcotest.(check bool) "pipeline span" true (List.mem "pipe" names);
  Alcotest.(check bool) "pass spans" true
    (List.mem "pass:one" names && List.mem "pass:two" names);
  let span = List.find (fun e -> e.Obs.Trace.name = "pass:one") evs in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " arg present") true
        (List.mem_assoc key span.Obs.Trace.args))
    [ "pass_ms"; "verify_ms"; "ops"; "delta_ops"; "by_dialect" ];
  (* identity pass: the recorded delta is zero *)
  match List.assoc "delta_ops" span.Obs.Trace.args with
  | Obs.Json.Int 0 -> ()
  | j -> Alcotest.failf "identity pass delta_ops = %s" (Obs.Json.to_string j)

let test_pp_timings_aggregation () =
  let ts =
    [
      { Pass.label = "canonicalize"; seconds = 0.5 };
      { Pass.label = "loop-unroll"; seconds = 0.25 };
      { Pass.label = "canonicalize"; seconds = 0.25 };
    ]
  in
  let out = Fmt.str "%a" Pass.pp_timings ts in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report contains %S" needle) true
        (contains ~needle out))
    [
      "Pass execution timing report";
      "Total Execution Time: 1.0000 seconds";
      "canonicalize (2 runs)";
      "( 75.0%)";
      "( 25.0%)";
      "(100.0%)  Total";
    ];
  (* repeated labels fold into one line *)
  let occurrences needle hay =
    let rec go i acc =
      if i + String.length needle > String.length hay then acc
      else if String.sub hay i (String.length needle) = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one aggregated line" 1 (occurrences "canonicalize" out)

(* ---- Traced DSE smoke ----------------------------------------------------- *)

let test_traced_dse () =
  let ctx = Ir.Ctx.create () in
  let kernel = Models.Polybench.of_name "gemm" in
  let m = Pipeline.compile_c ctx (Models.Polybench.source kernel ~n:4) in
  Obs.Metrics.reset ();
  let r =
    with_tracing (fun () ->
        Dse.run ~samples:4 ~iterations:4 ~seed:1 ctx m ~top:"gemm"
          ~platform:Vhls.Platform.xc7z020)
  in
  Alcotest.(check bool) "explored points" true (r.Dse.explored > 0)

let test_traced_dse_events () =
  let ctx = Ir.Ctx.create () in
  let kernel = Models.Polybench.of_name "gemm" in
  let m = Pipeline.compile_c ctx (Models.Polybench.source kernel ~n:4) in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
    (fun () ->
      let r =
        Dse.run ~samples:4 ~iterations:4 ~seed:1 ctx m ~top:"gemm"
          ~platform:Vhls.Platform.xc7z020
      in
      Obs.Trace.disable ();
      let evs = Obs.Trace.events () in
      let count name = List.length (List.filter (fun e -> e.Obs.Trace.name = name) evs) in
      Alcotest.(check int) "one evaluate span per explored point" r.Dse.explored
        (count "dse.evaluate");
      Alcotest.(check bool) "frontier counter samples" true (count "dse.frontier" > 0);
      Alcotest.(check bool) "pass sub-spans recorded" true
        (List.exists
           (fun e -> contains ~needle:"pass:" e.Obs.Trace.name)
           evs);
      (* the always-on metrics side recorded the same exploration *)
      let explored =
        Obs.Metrics.value (Obs.Metrics.counter (Obs.Metrics.registry "dse") "points.explored")
      in
      Alcotest.(check (float 0.0)) "points.explored counter" (float_of_int r.Dse.explored) explored)

(* ---- Ring cap and drop accounting ----------------------------------------- *)

let test_trace_ring_cap () =
  let old_cap = Obs.Trace.cap () in
  Obs.Trace.set_cap 64;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_cap old_cap;
      Obs.Trace.disable ();
      Obs.Trace.reset ())
    (fun () ->
      Obs.Trace.reset ();
      Obs.Trace.enable ();
      let dropped0 = Obs.Trace.dropped_spans () in
      for i = 1 to 200 do
        Obs.Trace.instant ~cat:"t" (Printf.sprintf "e%d" i)
      done;
      Obs.Trace.disable ();
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "ring keeps exactly cap events" 64 (List.length evs);
      Alcotest.(check int) "overwritten spans are counted" 136
        (Obs.Trace.dropped_spans () - dropped0);
      (* the survivors are the newest events, still in order *)
      Alcotest.(check string) "oldest survivor" "e137"
        (List.hd evs).Obs.Trace.name;
      Alcotest.(check string) "newest survivor" "e200"
        (List.nth evs 63).Obs.Trace.name;
      (* the drop total reaches the metrics registry through the collector *)
      ignore (Obs.Metrics.snapshot ());
      let c =
        Obs.Metrics.value
          (Obs.Metrics.counter (Obs.Metrics.registry "trace") "dropped_spans")
      in
      Alcotest.(check bool) "trace/dropped_spans counter mirrors the total" true
        (int_of_float c >= Obs.Trace.dropped_spans () - dropped0))

(* ---- Histogram quantiles ---------------------------------------------------- *)

let test_histogram_quantiles () =
  Obs.Metrics.reset ();
  Fun.protect ~finally:Obs.Metrics.reset @@ fun () ->
  let reg = Obs.Metrics.registry "test" in
  (* single-valued histogram: every quantile collapses to that value *)
  let h1 = Obs.Metrics.histogram reg "const" in
  for _ = 1 to 100 do
    Obs.Metrics.observe h1 0.5
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f of constant" q)
        0.5
        (Obs.Metrics.quantile h1 q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* two well-separated log buckets: the median must land between them and
     the extreme quantiles are exact (clamped to observed min/max) *)
  let h2 = Obs.Metrics.histogram reg "split" in
  for _ = 1 to 50 do
    Obs.Metrics.observe h2 0.001
  done;
  for _ = 1 to 50 do
    Obs.Metrics.observe h2 1.0
  done;
  Alcotest.(check (float 1e-9)) "q0 = min" 0.001 (Obs.Metrics.quantile h2 0.0);
  Alcotest.(check (float 1e-9)) "q1 = max" 1.0 (Obs.Metrics.quantile h2 1.0);
  Alcotest.(check bool) "p25 in the low bucket" true
    (Obs.Metrics.quantile h2 0.25 < 0.01);
  Alcotest.(check bool) "p90 in the high bucket" true
    (Obs.Metrics.quantile h2 0.9 > 0.1);
  (* quantiles are monotone in q *)
  let qs = List.map (Obs.Metrics.quantile h2) [ 0.1; 0.25; 0.5; 0.75; 0.9 ] in
  ignore
    (List.fold_left
       (fun prev v ->
         Alcotest.(check bool) "monotone quantiles" true (v >= prev);
         v)
       0. qs);
  (* values beyond the largest finite bucket land in +Inf and clamp to max *)
  let h3 = Obs.Metrics.histogram reg "overflow" in
  Obs.Metrics.observe h3 1e9;
  Obs.Metrics.observe h3 2e9;
  Alcotest.(check (float 1.0)) "overflow clamps to observed max" 2e9
    (Obs.Metrics.quantile h3 1.0);
  let p99 = Obs.Metrics.quantile h3 0.99 in
  Alcotest.(check bool) "overflow p99 within observed range" true
    (p99 >= 1e9 && p99 <= 2e9)

let test_histogram_cross_domain_merge () =
  Obs.Metrics.reset ();
  Fun.protect ~finally:Obs.Metrics.reset @@ fun () ->
  let jobs = 4 and per_task = 250 in
  Parpool.with_pool ~jobs (fun pool ->
      ignore
        (Parpool.map pool
           (fun task ->
             let h =
               Obs.Metrics.histogram (Obs.Metrics.registry "test") "merged"
             in
             for i = 1 to per_task do
               (* distinct magnitudes per task so every domain hits several
                  buckets *)
               Obs.Metrics.observe h (float_of_int (task + 1) *. 0.001 *. float_of_int i)
             done)
           (List.init (2 * jobs) Fun.id)));
  let h = Obs.Metrics.histogram (Obs.Metrics.registry "test") "merged" in
  Alcotest.(check int) "no lost observations" (2 * jobs * per_task)
    (Obs.Metrics.histogram_count h);
  let p50 = Obs.Metrics.quantile h 0.5 in
  Alcotest.(check bool) "merged median within observed range" true
    (p50 >= 0.001 && p50 <= 2.0)

(* ---- Prometheus exposition -------------------------------------------------- *)

let prom_name_legal name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let test_prometheus_exposition () =
  Obs.Metrics.reset ();
  Fun.protect ~finally:Obs.Metrics.reset @@ fun () ->
  let reg = Obs.Metrics.registry "test" in
  (* a name needing sanitization and a label value needing escaping *)
  Obs.Metrics.add (Obs.Metrics.counter reg "weird.name-1") 3.;
  Obs.Metrics.set
    (Obs.Metrics.gauge ~labels:[ ("k", "a\"b\\c\nd") ] reg "labeled")
    1.5;
  let h = Obs.Metrics.histogram reg "lat" in
  List.iter (Obs.Metrics.observe h) [ 0.002; 0.004; 0.5 ];
  let out = Obs.Metrics.to_prometheus () in
  let lines = String.split_on_char '\n' out in
  (* every sample line: legal metric name, optional labels, numeric value *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some b, Some sp -> min b sp
          | Some b, None -> b
          | None, Some sp -> sp
          | None, None -> String.length line
        in
        let name = String.sub line 0 name_end in
        Alcotest.(check bool)
          (Printf.sprintf "legal metric name %S" name)
          true (prom_name_legal name);
        let value_part =
          match String.rindex_opt line ' ' with
          | Some sp -> String.sub line (sp + 1) (String.length line - sp - 1)
          | None -> ""
        in
        Alcotest.(check bool)
          (Printf.sprintf "numeric value in %S" line)
          true
          (value_part = "+Inf" || value_part = "NaN"
          || float_of_string_opt value_part <> None)
      end)
    lines;
  (* sanitized name, escaped label value *)
  Alcotest.(check bool) "sanitized metric name" true
    (contains ~needle:"scalehls_test_weird_name_1 3" out);
  Alcotest.(check bool) "escaped label value" true
    (contains ~needle:"scalehls_test_labeled{k=\"a\\\"b\\\\c\\nd\"} 1.5" out);
  (* histogram: cumulative buckets ending in +Inf == count, sum/count and
     quantile gauges present *)
  let bucket_counts =
    List.filter_map
      (fun line ->
        if
          String.length line > 0 && line.[0] <> '#'
          && contains ~needle:"scalehls_test_lat_bucket{" line
        then
          match String.rindex_opt line ' ' with
          | Some sp ->
              float_of_string_opt
                (String.sub line (sp + 1) (String.length line - sp - 1))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "has bucket lines" true (List.length bucket_counts > 1);
  ignore
    (List.fold_left
       (fun prev c ->
         Alcotest.(check bool) "cumulative buckets nondecreasing" true (c >= prev);
         c)
       0. bucket_counts);
  Alcotest.(check (float 1e-9)) "last bucket is the count" 3.
    (List.nth bucket_counts (List.length bucket_counts - 1));
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle out))
    [
      "# TYPE scalehls_test_lat histogram";
      "le=\"+Inf\"";
      "scalehls_test_lat_sum";
      "scalehls_test_lat_count 3";
      "scalehls_test_lat_p50";
      "scalehls_test_lat_p99";
    ];
  (* deterministic: a second scrape of unchanged state is identical *)
  Alcotest.(check string) "deterministic output" out (Obs.Metrics.to_prometheus ())

(* ---- Crash-safe exports ------------------------------------------------------ *)

let test_write_atomic () =
  let path = Filename.temp_file "obs_atomic" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Metrics.write_atomic path (fun oc -> output_string oc "first\n");
      Alcotest.(check bool) "no tmp file left" false
        (Sys.file_exists (path ^ ".tmp"));
      (* a crash mid-write must leave the previous content intact *)
      (try
         Obs.Metrics.write_atomic path (fun oc ->
             output_string oc "partial";
             failwith "disk full")
       with Failure _ -> ());
      let ic = open_in path in
      let content = input_line ic in
      close_in ic;
      Alcotest.(check string) "old content survives a failed write" "first" content;
      Alcotest.(check bool) "failed write removes its tmp" false
        (Sys.file_exists (path ^ ".tmp")))

(* ---- Search-quality event log ------------------------------------------------ *)

let test_events_roundtrip () =
  let path = Filename.temp_file "obs_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Events.close ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      (* disabled: emit is a no-op and must not evaluate the field thunk *)
      Obs.Events.emit "ghost" (fun () -> Alcotest.fail "thunk forced while disabled");
      Obs.Events.configure path;
      Obs.Events.emit "a" (fun () -> [ ("x", Obs.Json.Int 1) ]);
      Obs.Events.emit "b" (fun () -> [ ("y", Obs.Json.String "two") ]);
      Obs.Events.close ();
      Obs.Events.emit "ghost" (fun () -> Alcotest.fail "thunk forced after close");
      match Obs.Analyze.parse_jsonl path with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok rows ->
          Alcotest.(check int) "two events" 2 (List.length rows);
          List.iteri
            (fun i row ->
              (match Obs.Json.member "seq" row with
              | Some (Obs.Json.Int s) -> Alcotest.(check int) "seq" i s
              | _ -> Alcotest.fail "missing seq");
              match Obs.Json.member "ts_s" row with
              | Some j when Obs.Json.to_float_opt j <> None ->
                  Alcotest.(check bool) "ts_s >= 0" true
                    (Option.get (Obs.Json.to_float_opt j) >= 0.)
              | _ -> Alcotest.fail "missing ts_s")
            rows;
          (* appending after reopen accumulates (daemon restart semantics) *)
          Obs.Events.configure path;
          Obs.Events.emit "c" (fun () -> []);
          Obs.Events.close ();
          (match Obs.Analyze.parse_jsonl path with
          | Ok rows' -> Alcotest.(check int) "append mode" 3 (List.length rows')
          | Error msg -> Alcotest.failf "reparse failed: %s" msg);
          (* a corrupt line is a hard error, never skipped *)
          let oc = open_out_gen [ Open_append ] 0o644 path in
          output_string oc "{broken\n";
          close_out oc;
          match Obs.Analyze.parse_jsonl path with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "accepted a corrupt event line")

(* ---- Analyzer ----------------------------------------------------------------- *)

let test_analyze_hv_properties () =
  let hv = Obs.Analyze.log_hv2 ~ref_latency:1000 ~ref_area:16 in
  Alcotest.(check (float 1e-12)) "empty frontier" 0. (hv []);
  Alcotest.(check (float 1e-12)) "point at the reference contributes nothing" 0.
    (hv [ (1000, 8) ]);
  Alcotest.(check (float 1e-12)) "point beyond the area budget contributes nothing"
    0.
    (hv [ (10, 16) ]);
  let one = hv [ (10, 8) ] in
  let two = hv [ (10, 8); (100, 4) ] in
  Alcotest.(check bool) "positive volume" true (one > 0.);
  Alcotest.(check bool) "extending the frontier adds volume" true (two > one)

(* The acceptance link: the HV timeline scalehls-report reconstructs from the
   event log must end at exactly the engine's own hypervolume of the final
   frontier, given the same reference point. *)
let test_analyze_hv_matches_dse () =
  let ctx = Ir.Ctx.create () in
  let kernel = Models.Polybench.of_name "gemm" in
  let m = Pipeline.compile_c ctx (Models.Polybench.source kernel ~n:4) in
  let path = Filename.temp_file "obs_dse_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Events.close ();
      Obs.Metrics.reset ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      Obs.Events.configure path;
      let r =
        Dse.run ~samples:4 ~iterations:6 ~seed:1 ctx m ~top:"gemm"
          ~platform:Vhls.Platform.xc7z020
      in
      Obs.Events.close ();
      let ref_latency = 4096 and ref_area = Vhls.Platform.xc7z020.Vhls.Platform.dsp in
      let engine_hv = Dse.log_hypervolume ~ref_latency ~ref_area r.Dse.pareto in
      match Obs.Analyze.parse_jsonl path with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok rows -> (
          match Obs.Analyze.jobs_of_events ~ref_latency ~ref_area rows with
          | [ jt ] ->
              Alcotest.(check (float 1e-9))
                "report HV == engine HV" engine_hv
                (Obs.Analyze.final_hv jt);
              Alcotest.(check int) "explored count" r.Dse.explored
                jt.Obs.Analyze.jt_explored;
              Alcotest.(check bool) "monotone HV curve" true
                (let hvs = List.map (fun rd -> rd.Obs.Analyze.rd_hv) jt.Obs.Analyze.jt_rounds in
                 List.for_all2 (fun a b -> b >= a -. 1e-12)
                   (List.filteri (fun i _ -> i < List.length hvs - 1) hvs)
                   (List.tl hvs))
          | jts -> Alcotest.failf "expected one job, got %d" (List.length jts)))

let suite =
  ( "obs",
    [
      Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span closes on exception" `Quick test_span_exception;
      Alcotest.test_case "disabled spans are transparent" `Quick test_span_disabled_is_transparent;
      Alcotest.test_case "span merge across pool domains" `Quick test_span_parpool;
      Alcotest.test_case "counter aggregation across domains" `Quick test_counter_across_domains;
      Alcotest.test_case "metric types and get-or-create" `Quick test_metrics_types;
      Alcotest.test_case "metrics JSONL export" `Quick test_metrics_jsonl;
      Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_trace_json;
      Alcotest.test_case "json roundtrip and errors" `Quick test_json_roundtrip;
      Alcotest.test_case "op stats collect and diff" `Quick test_op_stats;
      Alcotest.test_case "instrumentation hook ordering" `Quick test_instrumentation_ordering;
      Alcotest.test_case "pass spans with IR deltas" `Quick test_pass_spans;
      Alcotest.test_case "pass timing report aggregation" `Quick test_pp_timings_aggregation;
      Alcotest.test_case "traced DSE runs" `Quick test_traced_dse;
      Alcotest.test_case "traced DSE records evaluate spans" `Quick test_traced_dse_events;
      Alcotest.test_case "trace ring cap and drop accounting" `Quick test_trace_ring_cap;
      Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
      Alcotest.test_case "histogram merge across domains" `Quick
        test_histogram_cross_domain_merge;
      Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
      Alcotest.test_case "atomic export writes" `Quick test_write_atomic;
      Alcotest.test_case "events log roundtrip" `Quick test_events_roundtrip;
      Alcotest.test_case "analyzer hypervolume properties" `Quick
        test_analyze_hv_properties;
      Alcotest.test_case "report HV matches engine HV" `Quick
        test_analyze_hv_matches_dse;
    ] )
