(** The shared observability CLI surface of every ScaleHLS binary:
    [--trace FILE] (Chrome trace_event JSON for chrome://tracing / Perfetto)
    and [--metrics FILE] (metrics as JSON Lines), with the [SCALEHLS_TRACE] /
    [SCALEHLS_METRICS] environment variables as flagless fallbacks. *)

open Cmdliner

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans (per-pass, per-DSE-point, ...) and write a Chrome \
           trace_event JSON to $(docv) on exit — loadable in chrome://tracing \
           or ui.perfetto.dev. The $(b,SCALEHLS_TRACE) environment variable \
           sets a default.")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write all collected metrics (cache hit rates, worker utilization, \
           campaign counters, ...) as JSON Lines to $(docv) on exit. The \
           $(b,SCALEHLS_METRICS) environment variable sets a default.")

(** Wrap a binary's work: enables tracing when requested and flushes the
    trace/metrics files plus a stderr summary on the way out (crash
    included). *)
let with_obs ~trace ~metrics f = Obs.Report.run ~trace ~metrics f
