(** The shared observability CLI surface of every ScaleHLS binary:
    [--trace FILE] (Chrome trace_event JSON for chrome://tracing / Perfetto)
    and [--metrics FILE] (metrics as JSON Lines), with the [SCALEHLS_TRACE] /
    [SCALEHLS_METRICS] environment variables as flagless fallbacks. *)

open Cmdliner

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans (per-pass, per-DSE-point, ...) and write a Chrome \
           trace_event JSON to $(docv) on exit — loadable in chrome://tracing \
           or ui.perfetto.dev. The $(b,SCALEHLS_TRACE) environment variable \
           sets a default.")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write all collected metrics (cache hit rates, worker utilization, \
           campaign counters, ...) as JSON Lines to $(docv) on exit. The \
           $(b,SCALEHLS_METRICS) environment variable sets a default.")

let events =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Append search-quality timeline events (hypervolume per round, \
           frontier snapshots, surrogate calibration) as JSON Lines to \
           $(docv) while the search runs — the input of \
           $(b,scalehls-report). The $(b,SCALEHLS_EVENTS) environment \
           variable sets a default.")

(* The SIGINT/SIGTERM handlers raise {!Obs.Report.Terminated} so termination
   unwinds through every [Fun.protect] finalizer on the stack — in
   particular the exporter in {!Obs.Report.run}, which flushes the
   [--trace] / [--metrics] files. A [Signal_default] handler would kill the
   process between two writes and lose them. *)
let install_termination_handlers () =
  let raising signal =
    Sys.Signal_handle (fun _ -> raise (Obs.Report.Terminated signal))
  in
  List.iter
    (fun signal ->
      (* Non-Unix platforms reject handler installation; termination then
         simply stays abrupt. *)
      try Sys.set_signal signal (raising signal) with Invalid_argument _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(** Wrap a binary's work: enables tracing when requested and flushes the
    trace/metrics files plus a stderr summary on the way out — on normal
    exit, on a crash, and on SIGINT/SIGTERM (conventional 128+N exit code).
    Long-running binaries that want a graceful shutdown instead (the serve
    daemon) override the handlers inside [f]. *)
let with_obs ?(events = None) ~trace ~metrics f =
  install_termination_handlers ();
  try Obs.Report.run ~events ~trace ~metrics f
  with Obs.Report.Terminated signal ->
    let name = if signal = Sys.sigterm then "SIGTERM" else "SIGINT" in
    Fmt.epr "terminated by %s@." name;
    if signal = Sys.sigterm then 143 else 130
