(* scalehls-dse: the automated DSE driver (the -multiple-level-dse flow).
   Reads HLS-C (or a named PolyBench kernel), explores the design space under
   the platform constraints, and reports the Pareto frontier plus the chosen
   design point — the per-kernel machinery behind Table 3. *)

open Cmdliner
open Mir
open Scalehls

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let platform_of_name = function
  | "xc7z020" -> Vhls.Platform.xc7z020
  | "vu9p" | "vu9p-slr" -> Vhls.Platform.vu9p_slr
  | p ->
      Fmt.epr "unknown platform %s (xc7z020 | vu9p-slr)@." p;
      exit 2

(* The --remote client: ship the search to a running scalehls-serve daemon
   and render its streamed responses. Config fields mirror the local flags,
   so the daemon's answer (warm cache or not) is bit-identical to the
   in-process run — including the Pareto-frontier block below, printed by
   the same code path on the decoded points. *)
let print_remote_result j =
  let module Json = Obs.Json in
  let int k = match Json.member k j with Some (Json.Int i) -> i | _ -> 0 in
  let wall_s =
    match Json.member "wall_s" j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.
  in
  Fmt.pr "explored %d design points in %.2fs (server wall time)@."
    (int "explored") wall_s;
  (match Json.member "stats" j with
  | Some s ->
      let stat k = match Json.member k s with Some (Json.Int i) -> i | _ -> 0 in
      Fmt.pr "remote caches: eval %d/%d hits, estimator memo %d/%d hits@."
        (stat "cache_hits")
        (stat "cache_hits" + stat "cache_misses")
        (stat "est_memo_hits")
        (stat "est_memo_hits" + stat "est_memo_misses")
  | None -> ());
  (match Json.member "best" j with
  | Some Json.Null | None -> Fmt.pr "no feasible design point found@."
  | Some b ->
      let b = Serve.Codec.evaluated_of_json b in
      Fmt.pr "best point: %a@." Dse.pp_point b.Dse.point;
      Fmt.pr "estimate  : %a@." Estimator.pp_estimate b.Dse.estimate);
  let pareto =
    match Json.member "pareto" j with
    | Some (Json.List l) -> List.map Serve.Codec.evaluated_of_json l
    | _ -> []
  in
  Fmt.pr "@.Pareto frontier (latency-increasing):@.";
  List.iter
    (fun p ->
      Fmt.pr "  latency=%-10d dsp=%-5d %a@." p.Dse.estimate.Estimator.latency
        p.Dse.estimate.Estimator.usage.Vhls.Platform.u_dsp Dse.pp_point
        p.Dse.point)
    pareto;
  0

let run_remote socket input kernel size top platform samples iterations seed
    symbolic strategy window =
  let module Json = Obs.Json in
  (* After the result, if this client is tracing, pull the daemon's spans for
     our job and merge them into the local trace file (under their own pid),
     so one Chrome trace shows both halves of the remote search. *)
  let job_id = ref None in
  let design =
    match (input, kernel) with
    | Some path, _ ->
        let top =
          match top with
          | Some t -> t
          | None -> Filename.remove_extension (Filename.basename path)
        in
        Serve.Protocol.C_source { src = read_file path; top }
    | None, Some k -> Serve.Protocol.Kernel { kernel = k; size }
    | None, None ->
        Fmt.epr "provide an input file or --kernel NAME@.";
        exit 2
  in
  let config =
    {
      Serve.Protocol.samples;
      iterations;
      seed;
      symbolic;
      platform;
      strategy;
      window;
    }
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with Unix.Unix_error (e, _, _) ->
     Fmt.epr "cannot connect to %s: %s@." socket (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc
    (Json.to_string (Serve.Protocol.search_request ~design ~config));
  output_char oc '\n';
  flush oc;
  let fetch_remote_trace () =
    match !job_id with
    | Some jid when Obs.Trace.enabled () -> (
        output_string oc
          (Json.to_string (Serve.Protocol.trace_request ~job:jid));
        output_char oc '\n';
        flush oc;
        match input_line ic with
        | exception (End_of_file | Sys_error _) ->
            Fmt.epr "remote: connection closed before the trace arrived@."
        | line -> (
            match Json.of_string line with
            | Error msg -> Fmt.epr "remote: undecodable trace: %s@." msg
            | Ok j -> (
                match (Json.member "enabled" j, Json.member "events" j) with
                | Some (Json.Bool false), _ ->
                    Fmt.epr
                      "remote: daemon runs without --trace, no spans to merge@."
                | _, Some (Json.List events) ->
                    Obs.Trace.add_external events;
                    Fmt.epr "remote: merged %d daemon spans for job %d@."
                      (List.length events) jid
                | _ -> ())))
    | _ -> ()
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) ->
        Fmt.epr "connection closed before a result@.";
        1
    | line -> (
        match Json.of_string line with
        | Error msg ->
            Fmt.epr "undecodable response: %s@." msg;
            1
        | Ok j -> (
            match Json.member "resp" j with
            | Some (Json.String "ack") ->
                (match Json.member "job" j with
                | Some (Json.Int id) -> job_id := Some id
                | _ -> ());
                loop ()
            | Some (Json.String "frontier") ->
                (match (Json.member "explored" j, Json.member "points" j) with
                | Some (Json.Int explored), Some (Json.List points) ->
                    Fmt.epr "remote: %d points explored, frontier size %d@."
                      explored (List.length points)
                | _ -> ());
                loop ()
            | Some (Json.String "error") ->
                let msg =
                  match Json.member "message" j with
                  | Some (Json.String m) -> m
                  | _ -> "unknown error"
                in
                Fmt.epr "remote error: %s@." msg;
                1
            | Some (Json.String "result") ->
                let rc = print_remote_result j in
                fetch_remote_trace ();
                rc
            | _ -> loop ()))
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) loop

let run input kernel size top platform samples iterations seed jobs symbolic
    strategy window profile emit remote trace metrics events =
  Obs_flags.with_obs ~events ~trace ~metrics @@ fun () ->
  match remote with
  | Some socket ->
      run_remote socket input kernel size top platform samples iterations seed
        symbolic strategy window
  | None ->
  let ctx = Ir.Ctx.create () in
  let src, top =
    match (input, kernel) with
    | Some path, _ ->
        let top =
          match top with
          | Some t -> t
          | None -> Filename.remove_extension (Filename.basename path)
        in
        (read_file path, top)
    | None, Some k ->
        let k = Models.Polybench.of_name k in
        (Models.Polybench.source k ~n:size, Models.Polybench.name k)
    | None, None ->
        Fmt.epr "provide an input file or --kernel NAME@.";
        exit 2
  in
  let platform = platform_of_name platform in
  let strategy_impl =
    match Qor_ml.strategy_of_name strategy with
    | Some s -> s
    | None ->
        Fmt.epr "unknown strategy %s (%s)@." strategy
          (String.concat " | " Qor_ml.strategy_names);
        exit 2
  in
  let m = Pipeline.compile_c ctx src in
  let r, dt =
    Obs.Clock.time_s (fun () ->
        Dse.run ~samples ~iterations ~seed ~jobs ~symbolic ~window
          ~strategy:strategy_impl ctx m ~top ~platform)
  in
  Fmt.pr "explored %d design points in %.2fs (%.1f points/s, %d worker%s)@."
    r.Dse.explored dt
    (float_of_int r.Dse.explored /. Float.max 1e-9 dt)
    r.Dse.stats.Dse.jobs
    (if r.Dse.stats.Dse.jobs = 1 then "" else "s");
  if profile then begin
    let s = r.Dse.stats in
    (* The cache/evaluation/stage numbers come from the "dse" metrics
       registry — the same series `--metrics` exports and the serve daemon
       scrapes — so the profile can never drift from the exported telemetry.
       For this single-run process the registry totals equal the run's
       stats; strategy counters and fallback reasons keep the per-run stats
       (their registry names are strategy-qualified). *)
    let reg = Obs.Metrics.registry "dse" in
    let c name = int_of_float (Obs.Metrics.value (Obs.Metrics.counter reg name)) in
    Fmt.pr "strategy   : %s (%s)@." s.Dse.strategy
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s %d" k v)
            s.Dse.strategy_counters));
    let est_hits = c "est_memo.hits" and est_misses = c "est_memo.misses" in
    Fmt.pr "evaluation : %d symbolic, %d fallback, %d estimator-memo hit%s@."
      (c "points.symbolic") (c "points.fallback") est_hits
      (if est_hits = 1 then "" else "s");
    List.iter
      (fun (reason, n) -> Fmt.pr "  fallback because %s: %d@." reason n)
      s.Dse.fallback_reasons;
    Fmt.pr "caches     : eval %d/%d hits (%.0f%%), pre %d/%d@."
      (c "eval_cache.hits")
      (c "eval_cache.hits" + c "eval_cache.misses")
      (100. *. Dse.hit_rate (c "eval_cache.hits") (c "eval_cache.misses"))
      (c "pre_cache.hits")
      (c "pre_cache.hits" + c "pre_cache.misses");
    (* Memo granularity: the transform memo works per (perm, tiles) module
       (target-II ladder siblings share one), the estimator memo per
       pipelined band. *)
    Fmt.pr "transforms : %d shared / %d built (%.0f%% of points reused a sibling's module)@."
      (c "tf_memo.hits") (c "tf_memo.misses")
      (100. *. Dse.hit_rate (c "tf_memo.hits") (c "tf_memo.misses"));
    let evaluated = max 1 (c "eval_cache.misses") in
    Fmt.pr
      "bands      : %d reused / %d re-scheduled (%.0f%% band hit rate, %.1f bands re-scheduled per point)@."
      est_hits est_misses
      (100. *. Dse.hit_rate est_hits est_misses)
      (float_of_int est_misses /. float_of_int evaluated);
    Fmt.pr "workers    : %a@."
      Fmt.(
        list ~sep:comma (fun fmt (i, f) -> pf fmt "#%d %.0f%% busy" i (100. *. f)))
      s.Dse.worker_busy;
    let eval_h = Obs.Metrics.histogram reg "evaluate_seconds" in
    if Obs.Metrics.histogram_count eval_h > 0 then
      Fmt.pr "evaluate   : p50 %.4fs, p99 %.4fs per point@."
        (Obs.Metrics.quantile eval_h 0.5)
        (Obs.Metrics.quantile eval_h 0.99);
    Fmt.pr "per stage  :@.";
    List.iter
      (fun (stage, _) ->
        Fmt.pr "  %-10s %6.2fs@." stage
          (Obs.Metrics.value (Obs.Metrics.counter reg ("stage_seconds." ^ stage))))
      s.Dse.stage_seconds
  end;
  (match r.Dse.best with
  | Some b ->
      let base = Vhls.Synth.synthesize m ~top in
      let opt = Vhls.Synth.synthesize r.Dse.module_ ~top in
      Fmt.pr "best point: %a@." Dse.pp_point b.Dse.point;
      Fmt.pr "estimate  : %a@." Estimator.pp_estimate b.Dse.estimate;
      Fmt.pr "synthesis : %a@." Vhls.Synth.pp_report opt;
      Fmt.pr "baseline  : %a@." Vhls.Synth.pp_report base;
      Fmt.pr "speedup   : %.1fx@."
        (float_of_int base.Vhls.Synth.latency /. float_of_int (max 1 opt.Vhls.Synth.latency))
  | None -> Fmt.pr "no feasible design point found@.");
  Fmt.pr "@.Pareto frontier (latency-increasing):@.";
  List.iter
    (fun p ->
      Fmt.pr "  latency=%-10d dsp=%-5d %a@." p.Dse.estimate.Estimator.latency
        p.Dse.estimate.Estimator.usage.Vhls.Platform.u_dsp Dse.pp_point p.Dse.point)
    r.Dse.pareto;
  (match emit with
  | Some path ->
      let oc = open_out path in
      output_string oc (Emit.Emit_cpp.emit_module r.Dse.module_);
      close_out oc;
      Fmt.pr "@.emitted optimized HLS C++ to %s@." path
  | None -> ());
  0

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.c" ~doc:"HLS-C input file")
let kernel = Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"NAME" ~doc:"PolyBench kernel (bicg|gemm|gesummv|syr2k|syrk|trmm)")
let size = Arg.(value & opt int 64 & info [ "size" ] ~docv:"N" ~doc:"Problem size for --kernel")
let top = Arg.(value & opt (some string) None & info [ "top" ] ~docv:"FUNC" ~doc:"Top function")
let platform = Arg.(value & opt string "xc7z020" & info [ "platform" ] ~doc:"Target platform")
let samples = Arg.(value & opt int 32 & info [ "samples" ] ~doc:"Initial random samples")
let iterations = Arg.(value & opt int 80 & info [ "iterations" ] ~doc:"Neighbor-traversal steps")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed")
let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel point evaluation (1 = sequential, 0 = \
           one per core). The result is identical for any value: same seed, \
           same frontier.")
let window =
  Arg.(
    value & opt int Scalehls.Dse.default_window
    & info [ "window" ] ~docv:"N"
        ~doc:
          "In-flight evaluation window of the asynchronous executor: the \
           strategy proposes up to $(docv) points ahead while results commit \
           strictly in order, so the frontier is a pure function of \
           (--seed, --window) — independent of $(b,--jobs) and worker \
           timing. Larger windows keep more workers busy; $(b,0) removes \
           the bound and restores the legacy batch-synchronous rounds. \
           Changing the window (like changing the seed) changes the search \
           trajectory.")

let symbolic =
  Term.app (Term.const not)
    Arg.(
      value & flag
      & info [ "no-symbolic-eval" ]
          ~doc:
            "Evaluate every design point by materializing the fully-unrolled \
             body instead of the (default) symbolic unroll model. The two \
             paths produce identical results; this flag exists as an escape \
             hatch and for benchmarking the speedup.")

let strategy =
  Arg.(
    value & opt string "exhaustive"
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:
          "Search strategy: $(b,exhaustive) (the paper's sample + \
           Pareto-neighbor traversal) or $(b,surrogate) (an online \
           recursive-least-squares model ranks each round's candidate pool \
           and only the predicted-frontier shortlist is evaluated exactly — \
           same frontier quality for a fraction of the exact evaluations). \
           Both are deterministic for a given seed, local or $(b,--remote).")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a per-stage wall-time breakdown of the exploration \
           (transform, unroll, cleanup, partition, estimate, pareto) plus \
           symbolic/fallback evaluation counters.")

let emit = Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"OUT.cpp" ~doc:"Emit optimized HLS C++")

let remote =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"SOCKET"
        ~doc:
          "Run the search on a scalehls-serve daemon listening on the \
           Unix-domain socket $(docv) instead of in-process. The search \
           config is taken from the same flags; frontier updates stream to \
           stderr and the final Pareto frontier matches the in-process \
           output bit-for-bit ($(b,--jobs), $(b,--profile) and $(b,--emit) \
           are daemon-side concerns and are ignored).")

let cmd =
  let doc = "ScaleHLS automated design space exploration" in
  Cmd.v (Cmd.info "scalehls-dse" ~doc)
    Term.(
      const run $ input $ kernel $ size $ top $ platform $ samples $ iterations
      $ seed $ jobs $ symbolic $ strategy $ window $ profile $ emit $ remote
      $ Obs_flags.trace $ Obs_flags.metrics $ Obs_flags.events)

let () = exit (Cmd.eval' cmd)
