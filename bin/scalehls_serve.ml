(* scalehls-serve: the persistent DSE daemon. Listens on a Unix-domain
   socket for line-delimited JSON requests (searches over PolyBench kernels
   or HLS-C, status, checkpoint, shutdown), runs concurrent searches
   round-robin over one shared worker pool, and keeps a disk-backed
   fingerprint cache so repeated or similar designs evaluate warm across
   restarts. `scalehls-dse --remote SOCKET` is the matching client. *)

open Cmdliner

let run socket store jobs checkpoint_every metrics_port trace metrics events =
  Obs_flags.with_obs ~events ~trace ~metrics @@ fun () ->
  let server =
    Serve.Server.create ~socket ?store_path:store ~jobs ~checkpoint_every
      ~metrics_port ()
  in
  (* Override the raising handlers installed by [with_obs]: the daemon
     drains running searches and checkpoints the store before exiting. The
     flip is one atomic store, safe from the handler context. *)
  let graceful = Sys.Signal_handle (fun _ -> Serve.Server.stop server) in
  List.iter
    (fun signal ->
      try Sys.set_signal signal graceful with Invalid_argument _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  Serve.Server.run server;
  0

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (created; stale files are replaced).")

let store =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:
          "Disk-backed cache file (JSON Lines). Loaded at startup when it \
           exists — a restarted daemon serves previously-seen designs from \
           cache — and checkpointed periodically, on $(b,shutdown) requests \
           and on SIGINT/SIGTERM. Without this flag the cache is in-memory \
           only.")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains shared by all searches (0 = one per core). \
           Concurrent searches interleave on the pool batch-by-batch, so \
           each still reproduces its sequential result bit-for-bit.")

let checkpoint_every =
  Arg.(
    value & opt float 60.
    & info [ "checkpoint-every" ] ~docv:"SECONDS"
        ~doc:"Periodic store-checkpoint interval (0 disables; shutdown still saves).")

let metrics_port =
  Arg.(
    value & opt int 0
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve the live Prometheus text exposition (queue depth, batch \
           latency quantiles, store hit rates, checkpoint age, per-worker \
           busy fractions) over HTTP on 127.0.0.1:$(docv) — a scrape \
           endpoint for a running daemon. 0 (the default) disables the \
           listener; the socket protocol's $(b,metrics) request works \
           either way.")

let cmd =
  let doc = "persistent ScaleHLS DSE service over a Unix-domain socket" in
  Cmd.v (Cmd.info "scalehls-serve" ~doc)
    Term.(
      const run $ socket $ store $ jobs $ checkpoint_every $ metrics_port
      $ Obs_flags.trace $ Obs_flags.metrics $ Obs_flags.events)

let () = exit (Cmd.eval' cmd)
