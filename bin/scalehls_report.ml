(* scalehls-report: offline analyzer for the observability artifacts the
   other binaries produce. Reads any combination of an --events JSONL
   timeline, a --trace Chrome JSON, and a --metrics JSONL, and renders
   per-job search-quality timelines (hypervolume over evaluations, frontier
   size, surrogate calibration), a pass-timing rollup, and the final
   metrics — as text, a self-contained HTML page, or a JSON summary for CI
   assertions. Any parse error is fatal (exit 1): a report that silently
   skips a corrupt artifact would hide exactly the failures it exists to
   surface. *)

open Cmdliner
module Json = Obs.Json
module Analyze = Obs.Analyze

let fail fmt = Fmt.kstr (fun msg -> Fmt.epr "scalehls-report: %s@." msg; exit 1) fmt

let load_events path ref_latency ref_area =
  match Analyze.parse_jsonl path with
  | Error msg -> fail "events: %s" msg
  | Ok rows -> Analyze.jobs_of_events ?ref_latency ?ref_area rows

let load_trace path =
  match Analyze.parse_trace path with
  | Error msg -> fail "trace: %s" msg
  | Ok t -> t

let load_metrics path =
  match Analyze.parse_jsonl path with Error msg -> fail "metrics: %s" msg | Ok rows -> rows

let run events trace metrics html summary_json ref_latency ref_area =
  if events = None && trace = None && metrics = None then
    fail "nothing to report on: pass --events, --trace and/or --metrics";
  let jobs =
    match events with
    | Some p -> load_events p ref_latency ref_area
    | None -> []
  in
  let rollup =
    match trace with Some p -> Analyze.span_rollup (load_trace p) | None -> []
  in
  let metrics_rows = match metrics with Some p -> load_metrics p | None -> [] in
  (match summary_json with
  | Some path ->
      Obs.Metrics.write_atomic path (fun oc ->
          output_string oc (Json.to_string (Analyze.summary_json ~jobs ~rollup));
          output_char oc '\n')
  | None -> ());
  (match html with
  | Some path ->
      Obs.Metrics.write_atomic path (fun oc ->
          output_string oc (Analyze.render_html ~jobs ~rollup ~metrics_rows));
      Fmt.epr "report: wrote %s@." path
  | None -> ());
  (* The text report, on stdout. *)
  if jobs <> [] then begin
    Fmt.pr "=== Search-quality timelines ===@.";
    List.iter (fun jt -> Fmt.pr "%a" Analyze.pp_job jt) jobs
  end;
  if rollup <> [] then begin
    Fmt.pr "@.=== Pass-timing rollup (top spans by total time) ===@.";
    Fmt.pr "%a" Analyze.pp_rollup rollup
  end;
  if metrics_rows <> [] then
    Fmt.pr "@.=== Metrics: %d series ===@." (List.length metrics_rows);
  0

let events =
  Arg.(
    value
    & opt (some file) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:"Search-quality event log (JSONL) written by --events.")

let trace =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Chrome trace_event JSON written by --trace.")

let metrics =
  Arg.(
    value
    & opt (some file) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Metrics JSONL written by --metrics.")

let html =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"OUT"
        ~doc:
          "Write a self-contained HTML report (inline-SVG hypervolume \
           curves, calibration and pass-timing tables) to $(docv).")

let summary_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary-json" ] ~docv:"OUT"
        ~doc:
          "Write the machine-readable summary (per-job final hypervolume, \
           curves, span rollup) to $(docv) — for CI assertions via jq.")

let ref_latency =
  Arg.(
    value
    & opt (some int) None
    & info [ "ref-latency" ] ~docv:"CYCLES"
        ~doc:
          "Hypervolume reference latency. Pass the hv_ref_latency recorded \
           in a bench's BENCH_dse.json to make final HV comparable with its \
           frontier hypervolume; the default is 2x the worst frontier \
           latency seen per job.")

let ref_area =
  Arg.(
    value
    & opt (some int) None
    & info [ "ref-area" ] ~docv:"DSP"
        ~doc:
          "Hypervolume reference area (DSPs). Defaults to the platform DSP \
           budget recorded in each job's start event.")

let cmd =
  let doc = "analyze ScaleHLS observability artifacts into a search-health report" in
  Cmd.v (Cmd.info "scalehls-report" ~doc)
    Term.(
      const run $ events $ trace $ metrics $ html $ summary_json $ ref_latency
      $ ref_area)

let () = exit (Cmd.eval' cmd)
